file(REMOVE_RECURSE
  "CMakeFiles/bigittle_exd.dir/bigittle_exd.cpp.o"
  "CMakeFiles/bigittle_exd.dir/bigittle_exd.cpp.o.d"
  "bigittle_exd"
  "bigittle_exd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigittle_exd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
