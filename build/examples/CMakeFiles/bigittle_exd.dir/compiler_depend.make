# Empty compiler generated dependencies file for bigittle_exd.
# This may be replaced when dependencies are built.
