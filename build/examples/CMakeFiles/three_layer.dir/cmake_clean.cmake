file(REMOVE_RECURSE
  "CMakeFiles/three_layer.dir/three_layer.cpp.o"
  "CMakeFiles/three_layer.dir/three_layer.cpp.o.d"
  "three_layer"
  "three_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
