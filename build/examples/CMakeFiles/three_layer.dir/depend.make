# Empty dependencies file for three_layer.
# This may be replaced when dependencies are built.
