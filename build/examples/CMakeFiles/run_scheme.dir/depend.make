# Empty dependencies file for run_scheme.
# This may be replaced when dependencies are built.
