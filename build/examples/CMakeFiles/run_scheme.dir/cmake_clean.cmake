file(REMOVE_RECURSE
  "CMakeFiles/run_scheme.dir/run_scheme.cpp.o"
  "CMakeFiles/run_scheme.dir/run_scheme.cpp.o.d"
  "run_scheme"
  "run_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
