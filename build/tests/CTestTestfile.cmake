# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_linalg "/root/repo/build/tests/test_linalg")
set_tests_properties(test_linalg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;yukta_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_control "/root/repo/build/tests/test_control")
set_tests_properties(test_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;yukta_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_robust "/root/repo/build/tests/test_robust")
set_tests_properties(test_robust PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;29;yukta_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sysid "/root/repo/build/tests/test_sysid")
set_tests_properties(test_sysid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;38;yukta_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_platform "/root/repo/build/tests/test_platform")
set_tests_properties(test_platform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;44;yukta_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_controllers "/root/repo/build/tests/test_controllers")
set_tests_properties(test_controllers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;51;yukta_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;58;yukta_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;64;yukta_add_test;/root/repo/tests/CMakeLists.txt;0;")
