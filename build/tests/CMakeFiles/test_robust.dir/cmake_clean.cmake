file(REMOVE_RECURSE
  "CMakeFiles/test_robust.dir/robust/edge_cases_test.cpp.o"
  "CMakeFiles/test_robust.dir/robust/edge_cases_test.cpp.o.d"
  "CMakeFiles/test_robust.dir/robust/hinf_test.cpp.o"
  "CMakeFiles/test_robust.dir/robust/hinf_test.cpp.o.d"
  "CMakeFiles/test_robust.dir/robust/mu_test.cpp.o"
  "CMakeFiles/test_robust.dir/robust/mu_test.cpp.o.d"
  "CMakeFiles/test_robust.dir/robust/ssv_design_test.cpp.o"
  "CMakeFiles/test_robust.dir/robust/ssv_design_test.cpp.o.d"
  "CMakeFiles/test_robust.dir/robust/worst_case_test.cpp.o"
  "CMakeFiles/test_robust.dir/robust/worst_case_test.cpp.o.d"
  "test_robust"
  "test_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
