file(REMOVE_RECURSE
  "CMakeFiles/test_sysid.dir/sysid/sysid_test.cpp.o"
  "CMakeFiles/test_sysid.dir/sysid/sysid_test.cpp.o.d"
  "CMakeFiles/test_sysid.dir/sysid/validate_test.cpp.o"
  "CMakeFiles/test_sysid.dir/sysid/validate_test.cpp.o.d"
  "test_sysid"
  "test_sysid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
