file(REMOVE_RECURSE
  "CMakeFiles/test_controllers.dir/controllers/heuristics_test.cpp.o"
  "CMakeFiles/test_controllers.dir/controllers/heuristics_test.cpp.o.d"
  "CMakeFiles/test_controllers.dir/controllers/pid_test.cpp.o"
  "CMakeFiles/test_controllers.dir/controllers/pid_test.cpp.o.d"
  "CMakeFiles/test_controllers.dir/controllers/runtime_test.cpp.o"
  "CMakeFiles/test_controllers.dir/controllers/runtime_test.cpp.o.d"
  "test_controllers"
  "test_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
