file(REMOVE_RECURSE
  "CMakeFiles/test_control.dir/control/hinf_norm_test.cpp.o"
  "CMakeFiles/test_control.dir/control/hinf_norm_test.cpp.o.d"
  "CMakeFiles/test_control.dir/control/interconnect_test.cpp.o"
  "CMakeFiles/test_control.dir/control/interconnect_test.cpp.o.d"
  "CMakeFiles/test_control.dir/control/realization_test.cpp.o"
  "CMakeFiles/test_control.dir/control/realization_test.cpp.o.d"
  "CMakeFiles/test_control.dir/control/solvers_test.cpp.o"
  "CMakeFiles/test_control.dir/control/solvers_test.cpp.o.d"
  "CMakeFiles/test_control.dir/control/state_space_test.cpp.o"
  "CMakeFiles/test_control.dir/control/state_space_test.cpp.o.d"
  "test_control"
  "test_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
