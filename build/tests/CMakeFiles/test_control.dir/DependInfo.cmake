
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/control/hinf_norm_test.cpp" "tests/CMakeFiles/test_control.dir/control/hinf_norm_test.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/hinf_norm_test.cpp.o.d"
  "/root/repo/tests/control/interconnect_test.cpp" "tests/CMakeFiles/test_control.dir/control/interconnect_test.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/interconnect_test.cpp.o.d"
  "/root/repo/tests/control/realization_test.cpp" "tests/CMakeFiles/test_control.dir/control/realization_test.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/realization_test.cpp.o.d"
  "/root/repo/tests/control/solvers_test.cpp" "tests/CMakeFiles/test_control.dir/control/solvers_test.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/solvers_test.cpp.o.d"
  "/root/repo/tests/control/state_space_test.cpp" "tests/CMakeFiles/test_control.dir/control/state_space_test.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/state_space_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/control/CMakeFiles/yukta_control.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/yukta_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
