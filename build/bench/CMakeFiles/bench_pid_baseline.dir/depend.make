# Empty dependencies file for bench_pid_baseline.
# This may be replaced when dependencies are built.
