file(REMOVE_RECURSE
  "CMakeFiles/bench_pid_baseline.dir/bench_pid_baseline.cpp.o"
  "CMakeFiles/bench_pid_baseline.dir/bench_pid_baseline.cpp.o.d"
  "bench_pid_baseline"
  "bench_pid_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pid_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
