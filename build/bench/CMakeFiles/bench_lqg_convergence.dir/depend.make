# Empty dependencies file for bench_lqg_convergence.
# This may be replaced when dependencies are built.
