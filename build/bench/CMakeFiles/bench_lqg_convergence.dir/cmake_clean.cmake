file(REMOVE_RECURSE
  "CMakeFiles/bench_lqg_convergence.dir/bench_lqg_convergence.cpp.o"
  "CMakeFiles/bench_lqg_convergence.dir/bench_lqg_convergence.cpp.o.d"
  "bench_lqg_convergence"
  "bench_lqg_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lqg_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
