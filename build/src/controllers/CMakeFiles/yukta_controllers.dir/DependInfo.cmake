
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controllers/fixed_point.cpp" "src/controllers/CMakeFiles/yukta_controllers.dir/fixed_point.cpp.o" "gcc" "src/controllers/CMakeFiles/yukta_controllers.dir/fixed_point.cpp.o.d"
  "/root/repo/src/controllers/heuristics.cpp" "src/controllers/CMakeFiles/yukta_controllers.dir/heuristics.cpp.o" "gcc" "src/controllers/CMakeFiles/yukta_controllers.dir/heuristics.cpp.o.d"
  "/root/repo/src/controllers/layer_controllers.cpp" "src/controllers/CMakeFiles/yukta_controllers.dir/layer_controllers.cpp.o" "gcc" "src/controllers/CMakeFiles/yukta_controllers.dir/layer_controllers.cpp.o.d"
  "/root/repo/src/controllers/lqg_runtime.cpp" "src/controllers/CMakeFiles/yukta_controllers.dir/lqg_runtime.cpp.o" "gcc" "src/controllers/CMakeFiles/yukta_controllers.dir/lqg_runtime.cpp.o.d"
  "/root/repo/src/controllers/multilayer.cpp" "src/controllers/CMakeFiles/yukta_controllers.dir/multilayer.cpp.o" "gcc" "src/controllers/CMakeFiles/yukta_controllers.dir/multilayer.cpp.o.d"
  "/root/repo/src/controllers/optimizer.cpp" "src/controllers/CMakeFiles/yukta_controllers.dir/optimizer.cpp.o" "gcc" "src/controllers/CMakeFiles/yukta_controllers.dir/optimizer.cpp.o.d"
  "/root/repo/src/controllers/pid.cpp" "src/controllers/CMakeFiles/yukta_controllers.dir/pid.cpp.o" "gcc" "src/controllers/CMakeFiles/yukta_controllers.dir/pid.cpp.o.d"
  "/root/repo/src/controllers/ssv_runtime.cpp" "src/controllers/CMakeFiles/yukta_controllers.dir/ssv_runtime.cpp.o" "gcc" "src/controllers/CMakeFiles/yukta_controllers.dir/ssv_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/robust/CMakeFiles/yukta_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/yukta_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/yukta_control.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/yukta_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
