file(REMOVE_RECURSE
  "libyukta_controllers.a"
)
