file(REMOVE_RECURSE
  "CMakeFiles/yukta_controllers.dir/fixed_point.cpp.o"
  "CMakeFiles/yukta_controllers.dir/fixed_point.cpp.o.d"
  "CMakeFiles/yukta_controllers.dir/heuristics.cpp.o"
  "CMakeFiles/yukta_controllers.dir/heuristics.cpp.o.d"
  "CMakeFiles/yukta_controllers.dir/layer_controllers.cpp.o"
  "CMakeFiles/yukta_controllers.dir/layer_controllers.cpp.o.d"
  "CMakeFiles/yukta_controllers.dir/lqg_runtime.cpp.o"
  "CMakeFiles/yukta_controllers.dir/lqg_runtime.cpp.o.d"
  "CMakeFiles/yukta_controllers.dir/multilayer.cpp.o"
  "CMakeFiles/yukta_controllers.dir/multilayer.cpp.o.d"
  "CMakeFiles/yukta_controllers.dir/optimizer.cpp.o"
  "CMakeFiles/yukta_controllers.dir/optimizer.cpp.o.d"
  "CMakeFiles/yukta_controllers.dir/pid.cpp.o"
  "CMakeFiles/yukta_controllers.dir/pid.cpp.o.d"
  "CMakeFiles/yukta_controllers.dir/ssv_runtime.cpp.o"
  "CMakeFiles/yukta_controllers.dir/ssv_runtime.cpp.o.d"
  "libyukta_controllers.a"
  "libyukta_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yukta_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
