# Empty compiler generated dependencies file for yukta_controllers.
# This may be replaced when dependencies are built.
