file(REMOVE_RECURSE
  "libyukta_core.a"
)
