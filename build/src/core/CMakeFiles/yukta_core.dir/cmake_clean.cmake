file(REMOVE_RECURSE
  "CMakeFiles/yukta_core.dir/cache.cpp.o"
  "CMakeFiles/yukta_core.dir/cache.cpp.o.d"
  "CMakeFiles/yukta_core.dir/design_flow.cpp.o"
  "CMakeFiles/yukta_core.dir/design_flow.cpp.o.d"
  "CMakeFiles/yukta_core.dir/report.cpp.o"
  "CMakeFiles/yukta_core.dir/report.cpp.o.d"
  "CMakeFiles/yukta_core.dir/schemes.cpp.o"
  "CMakeFiles/yukta_core.dir/schemes.cpp.o.d"
  "CMakeFiles/yukta_core.dir/spec.cpp.o"
  "CMakeFiles/yukta_core.dir/spec.cpp.o.d"
  "CMakeFiles/yukta_core.dir/training.cpp.o"
  "CMakeFiles/yukta_core.dir/training.cpp.o.d"
  "CMakeFiles/yukta_core.dir/validation.cpp.o"
  "CMakeFiles/yukta_core.dir/validation.cpp.o.d"
  "libyukta_core.a"
  "libyukta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yukta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
