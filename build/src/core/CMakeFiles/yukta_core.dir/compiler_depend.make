# Empty compiler generated dependencies file for yukta_core.
# This may be replaced when dependencies are built.
