file(REMOVE_RECURSE
  "CMakeFiles/yukta_sysid.dir/arx.cpp.o"
  "CMakeFiles/yukta_sysid.dir/arx.cpp.o.d"
  "CMakeFiles/yukta_sysid.dir/excitation.cpp.o"
  "CMakeFiles/yukta_sysid.dir/excitation.cpp.o.d"
  "CMakeFiles/yukta_sysid.dir/validate.cpp.o"
  "CMakeFiles/yukta_sysid.dir/validate.cpp.o.d"
  "libyukta_sysid.a"
  "libyukta_sysid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yukta_sysid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
