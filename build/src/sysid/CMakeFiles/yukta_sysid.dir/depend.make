# Empty dependencies file for yukta_sysid.
# This may be replaced when dependencies are built.
