file(REMOVE_RECURSE
  "libyukta_sysid.a"
)
