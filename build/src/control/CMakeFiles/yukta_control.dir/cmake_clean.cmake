file(REMOVE_RECURSE
  "CMakeFiles/yukta_control.dir/balance.cpp.o"
  "CMakeFiles/yukta_control.dir/balance.cpp.o.d"
  "CMakeFiles/yukta_control.dir/discretize.cpp.o"
  "CMakeFiles/yukta_control.dir/discretize.cpp.o.d"
  "CMakeFiles/yukta_control.dir/hinf_norm.cpp.o"
  "CMakeFiles/yukta_control.dir/hinf_norm.cpp.o.d"
  "CMakeFiles/yukta_control.dir/interconnect.cpp.o"
  "CMakeFiles/yukta_control.dir/interconnect.cpp.o.d"
  "CMakeFiles/yukta_control.dir/lqg.cpp.o"
  "CMakeFiles/yukta_control.dir/lqg.cpp.o.d"
  "CMakeFiles/yukta_control.dir/lyapunov.cpp.o"
  "CMakeFiles/yukta_control.dir/lyapunov.cpp.o.d"
  "CMakeFiles/yukta_control.dir/realization.cpp.o"
  "CMakeFiles/yukta_control.dir/realization.cpp.o.d"
  "CMakeFiles/yukta_control.dir/riccati.cpp.o"
  "CMakeFiles/yukta_control.dir/riccati.cpp.o.d"
  "CMakeFiles/yukta_control.dir/state_space.cpp.o"
  "CMakeFiles/yukta_control.dir/state_space.cpp.o.d"
  "libyukta_control.a"
  "libyukta_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yukta_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
