
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/balance.cpp" "src/control/CMakeFiles/yukta_control.dir/balance.cpp.o" "gcc" "src/control/CMakeFiles/yukta_control.dir/balance.cpp.o.d"
  "/root/repo/src/control/discretize.cpp" "src/control/CMakeFiles/yukta_control.dir/discretize.cpp.o" "gcc" "src/control/CMakeFiles/yukta_control.dir/discretize.cpp.o.d"
  "/root/repo/src/control/hinf_norm.cpp" "src/control/CMakeFiles/yukta_control.dir/hinf_norm.cpp.o" "gcc" "src/control/CMakeFiles/yukta_control.dir/hinf_norm.cpp.o.d"
  "/root/repo/src/control/interconnect.cpp" "src/control/CMakeFiles/yukta_control.dir/interconnect.cpp.o" "gcc" "src/control/CMakeFiles/yukta_control.dir/interconnect.cpp.o.d"
  "/root/repo/src/control/lqg.cpp" "src/control/CMakeFiles/yukta_control.dir/lqg.cpp.o" "gcc" "src/control/CMakeFiles/yukta_control.dir/lqg.cpp.o.d"
  "/root/repo/src/control/lyapunov.cpp" "src/control/CMakeFiles/yukta_control.dir/lyapunov.cpp.o" "gcc" "src/control/CMakeFiles/yukta_control.dir/lyapunov.cpp.o.d"
  "/root/repo/src/control/realization.cpp" "src/control/CMakeFiles/yukta_control.dir/realization.cpp.o" "gcc" "src/control/CMakeFiles/yukta_control.dir/realization.cpp.o.d"
  "/root/repo/src/control/riccati.cpp" "src/control/CMakeFiles/yukta_control.dir/riccati.cpp.o" "gcc" "src/control/CMakeFiles/yukta_control.dir/riccati.cpp.o.d"
  "/root/repo/src/control/state_space.cpp" "src/control/CMakeFiles/yukta_control.dir/state_space.cpp.o" "gcc" "src/control/CMakeFiles/yukta_control.dir/state_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/yukta_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
