# Empty compiler generated dependencies file for yukta_control.
# This may be replaced when dependencies are built.
