file(REMOVE_RECURSE
  "libyukta_control.a"
)
