# Empty compiler generated dependencies file for yukta_linalg.
# This may be replaced when dependencies are built.
