file(REMOVE_RECURSE
  "CMakeFiles/yukta_linalg.dir/cmatrix.cpp.o"
  "CMakeFiles/yukta_linalg.dir/cmatrix.cpp.o.d"
  "CMakeFiles/yukta_linalg.dir/eig.cpp.o"
  "CMakeFiles/yukta_linalg.dir/eig.cpp.o.d"
  "CMakeFiles/yukta_linalg.dir/expm.cpp.o"
  "CMakeFiles/yukta_linalg.dir/expm.cpp.o.d"
  "CMakeFiles/yukta_linalg.dir/lu.cpp.o"
  "CMakeFiles/yukta_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/yukta_linalg.dir/matrix.cpp.o"
  "CMakeFiles/yukta_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/yukta_linalg.dir/qr.cpp.o"
  "CMakeFiles/yukta_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/yukta_linalg.dir/svd.cpp.o"
  "CMakeFiles/yukta_linalg.dir/svd.cpp.o.d"
  "CMakeFiles/yukta_linalg.dir/vector.cpp.o"
  "CMakeFiles/yukta_linalg.dir/vector.cpp.o.d"
  "libyukta_linalg.a"
  "libyukta_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yukta_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
