file(REMOVE_RECURSE
  "libyukta_linalg.a"
)
