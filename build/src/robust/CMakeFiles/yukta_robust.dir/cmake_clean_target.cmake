file(REMOVE_RECURSE
  "libyukta_robust.a"
)
