
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/robust/dk.cpp" "src/robust/CMakeFiles/yukta_robust.dir/dk.cpp.o" "gcc" "src/robust/CMakeFiles/yukta_robust.dir/dk.cpp.o.d"
  "/root/repo/src/robust/hinf.cpp" "src/robust/CMakeFiles/yukta_robust.dir/hinf.cpp.o" "gcc" "src/robust/CMakeFiles/yukta_robust.dir/hinf.cpp.o.d"
  "/root/repo/src/robust/mu.cpp" "src/robust/CMakeFiles/yukta_robust.dir/mu.cpp.o" "gcc" "src/robust/CMakeFiles/yukta_robust.dir/mu.cpp.o.d"
  "/root/repo/src/robust/ssv_design.cpp" "src/robust/CMakeFiles/yukta_robust.dir/ssv_design.cpp.o" "gcc" "src/robust/CMakeFiles/yukta_robust.dir/ssv_design.cpp.o.d"
  "/root/repo/src/robust/uncertainty.cpp" "src/robust/CMakeFiles/yukta_robust.dir/uncertainty.cpp.o" "gcc" "src/robust/CMakeFiles/yukta_robust.dir/uncertainty.cpp.o.d"
  "/root/repo/src/robust/weights.cpp" "src/robust/CMakeFiles/yukta_robust.dir/weights.cpp.o" "gcc" "src/robust/CMakeFiles/yukta_robust.dir/weights.cpp.o.d"
  "/root/repo/src/robust/worst_case.cpp" "src/robust/CMakeFiles/yukta_robust.dir/worst_case.cpp.o" "gcc" "src/robust/CMakeFiles/yukta_robust.dir/worst_case.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/control/CMakeFiles/yukta_control.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/yukta_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
