file(REMOVE_RECURSE
  "CMakeFiles/yukta_robust.dir/dk.cpp.o"
  "CMakeFiles/yukta_robust.dir/dk.cpp.o.d"
  "CMakeFiles/yukta_robust.dir/hinf.cpp.o"
  "CMakeFiles/yukta_robust.dir/hinf.cpp.o.d"
  "CMakeFiles/yukta_robust.dir/mu.cpp.o"
  "CMakeFiles/yukta_robust.dir/mu.cpp.o.d"
  "CMakeFiles/yukta_robust.dir/ssv_design.cpp.o"
  "CMakeFiles/yukta_robust.dir/ssv_design.cpp.o.d"
  "CMakeFiles/yukta_robust.dir/uncertainty.cpp.o"
  "CMakeFiles/yukta_robust.dir/uncertainty.cpp.o.d"
  "CMakeFiles/yukta_robust.dir/weights.cpp.o"
  "CMakeFiles/yukta_robust.dir/weights.cpp.o.d"
  "CMakeFiles/yukta_robust.dir/worst_case.cpp.o"
  "CMakeFiles/yukta_robust.dir/worst_case.cpp.o.d"
  "libyukta_robust.a"
  "libyukta_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yukta_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
