# Empty compiler generated dependencies file for yukta_robust.
# This may be replaced when dependencies are built.
