file(REMOVE_RECURSE
  "CMakeFiles/yukta_platform.dir/apps.cpp.o"
  "CMakeFiles/yukta_platform.dir/apps.cpp.o.d"
  "CMakeFiles/yukta_platform.dir/board.cpp.o"
  "CMakeFiles/yukta_platform.dir/board.cpp.o.d"
  "CMakeFiles/yukta_platform.dir/config.cpp.o"
  "CMakeFiles/yukta_platform.dir/config.cpp.o.d"
  "CMakeFiles/yukta_platform.dir/dvfs.cpp.o"
  "CMakeFiles/yukta_platform.dir/dvfs.cpp.o.d"
  "CMakeFiles/yukta_platform.dir/power_thermal.cpp.o"
  "CMakeFiles/yukta_platform.dir/power_thermal.cpp.o.d"
  "CMakeFiles/yukta_platform.dir/scheduler.cpp.o"
  "CMakeFiles/yukta_platform.dir/scheduler.cpp.o.d"
  "CMakeFiles/yukta_platform.dir/sensors.cpp.o"
  "CMakeFiles/yukta_platform.dir/sensors.cpp.o.d"
  "CMakeFiles/yukta_platform.dir/tmu.cpp.o"
  "CMakeFiles/yukta_platform.dir/tmu.cpp.o.d"
  "CMakeFiles/yukta_platform.dir/trace_io.cpp.o"
  "CMakeFiles/yukta_platform.dir/trace_io.cpp.o.d"
  "CMakeFiles/yukta_platform.dir/workload.cpp.o"
  "CMakeFiles/yukta_platform.dir/workload.cpp.o.d"
  "libyukta_platform.a"
  "libyukta_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yukta_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
