# Empty compiler generated dependencies file for yukta_platform.
# This may be replaced when dependencies are built.
