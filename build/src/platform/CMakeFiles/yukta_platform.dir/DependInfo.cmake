
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/apps.cpp" "src/platform/CMakeFiles/yukta_platform.dir/apps.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/apps.cpp.o.d"
  "/root/repo/src/platform/board.cpp" "src/platform/CMakeFiles/yukta_platform.dir/board.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/board.cpp.o.d"
  "/root/repo/src/platform/config.cpp" "src/platform/CMakeFiles/yukta_platform.dir/config.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/config.cpp.o.d"
  "/root/repo/src/platform/dvfs.cpp" "src/platform/CMakeFiles/yukta_platform.dir/dvfs.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/dvfs.cpp.o.d"
  "/root/repo/src/platform/power_thermal.cpp" "src/platform/CMakeFiles/yukta_platform.dir/power_thermal.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/power_thermal.cpp.o.d"
  "/root/repo/src/platform/scheduler.cpp" "src/platform/CMakeFiles/yukta_platform.dir/scheduler.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/scheduler.cpp.o.d"
  "/root/repo/src/platform/sensors.cpp" "src/platform/CMakeFiles/yukta_platform.dir/sensors.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/sensors.cpp.o.d"
  "/root/repo/src/platform/tmu.cpp" "src/platform/CMakeFiles/yukta_platform.dir/tmu.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/tmu.cpp.o.d"
  "/root/repo/src/platform/trace_io.cpp" "src/platform/CMakeFiles/yukta_platform.dir/trace_io.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/trace_io.cpp.o.d"
  "/root/repo/src/platform/workload.cpp" "src/platform/CMakeFiles/yukta_platform.dir/workload.cpp.o" "gcc" "src/platform/CMakeFiles/yukta_platform.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/yukta_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
