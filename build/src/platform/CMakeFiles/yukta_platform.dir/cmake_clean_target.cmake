file(REMOVE_RECURSE
  "libyukta_platform.a"
)
