// Fault plans, the deterministic injector, and end-to-end robustness:
// same plan => bit-identical records at any worker count, and the
// supervised stack strictly beats the unsupervised one on constraint
// violation under every injected-fault scenario.
// yukta-lint: allow-file(sensor-construction) tests forge readings
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/schemes.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "platform/apps.h"
#include "runner/sweep.h"

namespace yukta::fault {
namespace {

using platform::HardwareInputs;
using platform::PlacementPolicy;
using platform::SensorReadings;

TEST(FaultPlan, ParsesTheDocumentedGrammar)
{
    FaultPlan plan = FaultPlan::parse(
        "seed=7;p_big:nan@20+10;temp:stuck@40+15;act:ignore@60+5");
    EXPECT_EQ(plan.seed, 7u);
    ASSERT_EQ(plan.windows.size(), 3u);
    EXPECT_EQ(plan.windows[0].target, FaultTarget::kPowerBig);
    EXPECT_EQ(plan.windows[0].kind, FaultKind::kNan);
    EXPECT_EQ(plan.windows[0].start, 20.0);
    EXPECT_EQ(plan.windows[0].duration, 10.0);
    EXPECT_EQ(plan.windows[1].target, FaultTarget::kTemp);
    EXPECT_EQ(plan.windows[1].kind, FaultKind::kStuck);
    EXPECT_EQ(plan.windows[2].target, FaultTarget::kActuator);
    EXPECT_EQ(plan.windows[2].kind, FaultKind::kActIgnore);
}

TEST(FaultPlan, EmptySpecYieldsEmptyPlan)
{
    FaultPlan plan = FaultPlan::parse("");
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, CanonicalRoundTripIsStable)
{
    const std::string spec =
        "seed=3;p_little:spike@10+5*6.5;tick:double@30+10";
    FaultPlan plan = FaultPlan::parse(spec);
    const std::string canon = plan.canonical();
    EXPECT_EQ(FaultPlan::parse(canon).canonical(), canon);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("bogus:nan@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:bogus@0+1"),
                 std::invalid_argument);
    // Kind/target class mismatches.
    EXPECT_THROW(FaultPlan::parse("p_big:ignore@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("act:nan@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("tick:drop@0+1"),
                 std::invalid_argument);
    // Bad windows and magnitudes.
    EXPECT_THROW(FaultPlan::parse("p_big:nan@0+0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:nan@-1+5"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("act:partial@0+5*1.5"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:nan"), std::invalid_argument);
}

TEST(FaultPlan, RejectsNumbersOutsidePlainDecimalNotation)
{
    // strtod-isms that must NOT pass as schedule times: non-finite
    // literals, hex floats, overflow to infinity, and whitespace.
    EXPECT_THROW(FaultPlan::parse("p_big:nan@nan+6"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:nan@30+inf"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:nan@30+infinity"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:nan@0x10+6"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:nan@30+0x2"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:nan@1e999+6"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:nan@ 30+6"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:spike@0+10*inf"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:spike@0+10*0x8"),
                 std::invalid_argument);
    // Exponent notation is still plain decimal and stays accepted.
    EXPECT_EQ(FaultPlan::parse("p_big:nan@1e1+6").windows[0].start, 10.0);
}

TEST(FaultPlan, RejectsEmptyClausesAndMalformedSeeds)
{
    EXPECT_THROW(FaultPlan::parse(";p_big:nan@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("seed=1;;p_big:nan@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("seed=-1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("seed= 1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("seed=0x10"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("seed="), std::invalid_argument);
    // The empty spec (no fault plan at all) stays valid, as does a
    // trailing separator-free multi-clause plan.
    EXPECT_TRUE(FaultPlan::parse("").windows.empty());
    EXPECT_EQ(
        FaultPlan::parse("seed=2;p_big:nan@0+1;act:ignore@2+1").windows
            .size(),
        2u);
}

SensorReadings
cleanObs(double base)
{
    SensorReadings obs;
    obs.p_big = 2.0 + base;
    obs.p_little = 0.2 + base;
    obs.temp = 55.0 + base;
    obs.instr_big = 100.0 + base;
    obs.instr_little = 25.0 + base;
    return obs;
}

TEST(FaultInjector, NanInfAndDropCorruptOnlyTheTarget)
{
    FaultInjector inj(FaultPlan::parse(
        "p_big:nan@0+10;temp:inf@0+10;p_little:drop@0+10"));
    SensorReadings out = inj.corruptReadings(1.0, cleanObs(0.0));
    EXPECT_TRUE(std::isnan(out.p_big));
    EXPECT_TRUE(std::isinf(out.temp));
    EXPECT_EQ(out.p_little, 0.0);
    EXPECT_EQ(out.instr_big, 100.0);
    EXPECT_EQ(out.instr_little, 25.0);
    EXPECT_EQ(inj.stats().corrupted_ticks, 1u);
    EXPECT_EQ(inj.stats().corrupted_fields, 3u);
}

TEST(FaultInjector, StuckLatchesTheWindowEntryValue)
{
    FaultInjector inj(FaultPlan::parse("p_big:stuck@5+10"));
    SensorReadings before = inj.corruptReadings(0.0, cleanObs(0.0));
    EXPECT_EQ(before.p_big, 2.0);
    SensorReadings entry = inj.corruptReadings(5.0, cleanObs(1.0));
    EXPECT_EQ(entry.p_big, 3.0);
    SensorReadings later = inj.corruptReadings(10.0, cleanObs(7.0));
    EXPECT_EQ(later.p_big, 3.0);  // still the entry value
    EXPECT_EQ(later.temp, 62.0);  // other fields live
    SensorReadings after = inj.corruptReadings(16.0, cleanObs(9.0));
    EXPECT_EQ(after.p_big, 11.0);
}

TEST(FaultInjector, FreezeAllStalesTheWholeSnapshot)
{
    FaultInjector inj(FaultPlan::parse("all:freeze@5+10"));
    (void)inj.corruptReadings(5.0, cleanObs(1.0));
    SensorReadings later = inj.corruptReadings(10.0, cleanObs(4.0));
    EXPECT_EQ(later.p_big, 3.0);
    EXPECT_EQ(later.temp, 56.0);
    EXPECT_EQ(later.instr_big, 101.0);
    EXPECT_EQ(later.instr_little, 26.0);
}

TEST(FaultInjector, SpikeScalesByMagnitudeWithSeededJitter)
{
    FaultInjector inj(FaultPlan::parse("seed=9;p_big:spike@0+10*8"));
    SensorReadings out = inj.corruptReadings(1.0, cleanObs(0.0));
    // mag 8 with +-25% jitter: 2.0 * 8 * [0.75, 1.25].
    EXPECT_GE(out.p_big, 2.0 * 8.0 * 0.74);
    EXPECT_LE(out.p_big, 2.0 * 8.0 * 1.26);

    // Identical plans replay identical jitter sequences.
    FaultInjector a(FaultPlan::parse("seed=9;p_big:spike@0+10*8"));
    FaultInjector b(FaultPlan::parse("seed=9;p_big:spike@0+10*8"));
    for (int i = 0; i < 8; ++i) {
        const double t = 0.5 * i;
        SensorReadings ra = a.corruptReadings(t, cleanObs(0.1 * i));
        SensorReadings rb = b.corruptReadings(t, cleanObs(0.1 * i));
        EXPECT_EQ(ra.p_big, rb.p_big);
    }
}

TEST(FaultInjector, ActuatorIgnoreKeepsThePreviousCommand)
{
    FaultInjector inj(FaultPlan::parse("act:ignore@0+10"));
    HardwareInputs prev;
    prev.big_cores = 1;
    prev.freq_big = 1.0;
    HardwareInputs cmd;
    cmd.big_cores = 4;
    cmd.freq_big = 2.0;
    HardwareInputs got = inj.corruptHardware(1.0, prev, cmd);
    EXPECT_EQ(got.big_cores, 1u);
    EXPECT_EQ(got.freq_big, 1.0);
    EXPECT_GE(inj.stats().actuator_faults, 1u);

    HardwareInputs clean = inj.corruptHardware(12.0, prev, cmd);
    EXPECT_EQ(clean.big_cores, 4u);
}

TEST(FaultInjector, ActuatorPartialBlendsTowardTheCommand)
{
    FaultInjector inj(FaultPlan::parse("act:partial@0+10*0.5"));
    HardwareInputs prev;
    prev.freq_big = 1.0;
    prev.freq_little = 0.8;
    HardwareInputs cmd = prev;
    cmd.freq_big = 2.0;
    HardwareInputs got = inj.corruptHardware(1.0, prev, cmd);
    EXPECT_NEAR(got.freq_big, 1.5, 1e-12);
    EXPECT_NEAR(got.freq_little, 0.8, 1e-12);
}

TEST(FaultInjector, QuantStuckFreezesOnlyDvfs)
{
    FaultInjector inj(FaultPlan::parse("act:quantstuck@0+10"));
    HardwareInputs prev;
    prev.big_cores = 1;
    prev.freq_big = 1.0;
    HardwareInputs cmd;
    cmd.big_cores = 4;
    cmd.freq_big = 2.0;
    HardwareInputs got = inj.corruptHardware(1.0, prev, cmd);
    EXPECT_EQ(got.big_cores, 4u);   // core command applies
    EXPECT_EQ(got.freq_big, 1.0);   // DVFS write ignored
}

TEST(FaultInjector, TimingFaultsDropTicks)
{
    FaultInjector miss(FaultPlan::parse("tick:miss@5+3"));
    EXPECT_FALSE(miss.dropTick(0.0, 0));
    EXPECT_TRUE(miss.dropTick(5.0, 10));
    EXPECT_TRUE(miss.dropTick(7.5, 15));
    EXPECT_FALSE(miss.dropTick(8.0, 16));
    EXPECT_EQ(miss.stats().dropped_ticks, 2u);

    FaultInjector dbl(FaultPlan::parse("tick:double@0+10"));
    EXPECT_FALSE(dbl.dropTick(0.0, 0));
    EXPECT_TRUE(dbl.dropTick(0.5, 1));
    EXPECT_FALSE(dbl.dropTick(1.0, 2));
    EXPECT_TRUE(dbl.dropTick(1.5, 3));
}

// ---------------------------------------------------------------- //
// End-to-end: injector + supervisor through the sweep engine.      //
// ---------------------------------------------------------------- //

core::Artifacts
heuristicArtifacts()
{
    core::Artifacts art;
    art.cfg = platform::BoardConfig::odroidXu3();
    return art;
}

std::string
eventLog(const controllers::SupervisorReport& report)
{
    std::ostringstream os;
    for (const auto& e : report.events) {
        os << e.period << "|" << e.time << "|"
           << controllers::supervisorModeName(e.from) << ">"
           << controllers::supervisorModeName(e.to) << "|" << e.reason
           << ";";
    }
    return os.str();
}

TEST(FaultRunner, RecordsAndEventLogsAreWorkerCountInvariant)
{
    const core::Artifacts art = heuristicArtifacts();
    runner::SweepSpec spec;
    spec.schemes = {core::Scheme::kDecoupledHeuristic,
                    core::Scheme::kCoordinatedHeuristic};
    spec.workloads = {"swaptions"};
    spec.seeds = {1, 2};
    spec.max_seconds = 30.0;
    spec.fault_plan = "seed=11;p_big:drop@5+10;temp:nan@8+6";
    spec.supervised = true;

    runner::RunnerOptions options;
    options.use_cache = false;

    options.workers = 1;
    runner::SweepResult serial = runner::runSweep(art, spec, options);
    options.workers = 4;
    runner::SweepResult parallel = runner::runSweep(art, spec, options);

    ASSERT_EQ(serial.records.size(), 4u);
    ASSERT_EQ(parallel.records.size(), serial.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        const auto& a = serial.records[i];
        const auto& b = parallel.records[i];
        EXPECT_EQ(a.key, b.key);
        EXPECT_EQ(a.metrics.exd, b.metrics.exd);
        EXPECT_EQ(a.metrics.energy, b.metrics.energy);
        EXPECT_EQ(a.metrics.violation_time, b.metrics.violation_time);
        EXPECT_EQ(a.metrics.faults.corrupted_fields,
                  b.metrics.faults.corrupted_fields);
        EXPECT_EQ(eventLog(a.metrics.supervisor),
                  eventLog(b.metrics.supervisor));
        EXPECT_FALSE(eventLog(a.metrics.supervisor).empty());
    }
}

TEST(FaultRunner, SupervisedStrictlyBeatsUnsupervisedUnderDropout)
{
    const core::Artifacts art = heuristicArtifacts();
    const FaultPlan plan =
        FaultPlan::parse("seed=15;p_big:drop@5+30;p_little:drop@5+30");
    platform::Workload workload(platform::AppCatalog::get("swaptions"));

    auto unsup = core::makeSystem(core::Scheme::kDecoupledHeuristic, art,
                                  workload, 1);
    unsup.attachFaultInjector(plan);
    const auto mu = unsup.run(60.0);

    auto sup = core::makeSystem(core::Scheme::kDecoupledHeuristic, art,
                                workload, 1);
    sup.attachFaultInjector(plan);
    sup.enableSupervisor();
    const auto ms = sup.run(60.0);

    // The decoupled baseline runs at max settings and cannot see the
    // dropout (0 W compares as "under the cap"), so it violates; the
    // supervisor detects the implausible floor and degrades.
    EXPECT_GT(mu.violation_time, 0.0);
    EXPECT_LT(ms.violation_time, mu.violation_time);
    EXPECT_TRUE(ms.supervised);
    EXPECT_GT(ms.supervisor.invalid_ticks, 0);
    EXPECT_GT(ms.supervisor.timeDegraded(), 0.0);
}

TEST(FaultRunner, SupervisedStackNeverFeedsNaNToTheBoard)
{
    const core::Artifacts art = heuristicArtifacts();
    const FaultPlan plan = FaultPlan::parse(
        "seed=16;all:freeze@5+5;p_big:nan@12+10;temp:nan@14+8;"
        "perf_big:nan@20+5;act:partial@10+20*0.5");
    platform::Workload workload(platform::AppCatalog::get("swaptions"));
    auto sys = core::makeSystem(core::Scheme::kCoordinatedHeuristic, art,
                                workload, 1);
    sys.attachFaultInjector(plan);
    sys.enableSupervisor();
    const auto m = sys.run(40.0);
    EXPECT_EQ(sys.board().rejectedInputCount(), 0u);
    EXPECT_GT(m.faults.corrupted_ticks, 0u);
}

TEST(FaultRunner, TimingFaultsAreCountedOnBothSides)
{
    const core::Artifacts art = heuristicArtifacts();
    const FaultPlan plan = FaultPlan::parse("seed=17;tick:miss@5+4");
    platform::Workload workload(platform::AppCatalog::get("swaptions"));
    auto sys = core::makeSystem(core::Scheme::kCoordinatedHeuristic, art,
                                workload, 1);
    sys.attachFaultInjector(plan);
    sys.enableSupervisor();
    const auto m = sys.run(30.0);
    EXPECT_EQ(m.faults.dropped_ticks, 8u);  // 4 s / 0.5 s ticks
    EXPECT_EQ(m.supervisor.skipped_ticks,
              static_cast<long>(m.faults.dropped_ticks));
}

TEST(FaultRunner, MalformedPlanFailsOnlyItsOwnRun)
{
    const core::Artifacts art = heuristicArtifacts();
    std::vector<runner::RunSpec> runs(2);
    runs[0].scheme = core::Scheme::kCoordinatedHeuristic;
    runs[0].workload = "swaptions";
    runs[0].max_seconds = 10.0;
    runs[1] = runs[0];
    runs[1].fault_plan = "p_big:bogus@0+1";

    runner::RunnerOptions options;
    options.use_cache = false;
    auto result = runner::runAll(art, runs, "faulttest", options);
    EXPECT_EQ(result.records[0].status,
              runner::TaskOutcome::Status::kOk);
    EXPECT_EQ(result.records[1].status,
              runner::TaskOutcome::Status::kError);
    EXPECT_EQ(result.records[1].error_type, "std::invalid_argument");
    EXPECT_NE(result.records[1].error.find("FaultPlan"),
              std::string::npos);
}

TEST(FaultRunner, FaultPlanAndSupervisionChangeTheRunKey)
{
    runner::RunSpec base;
    base.scheme = core::Scheme::kYuktaFull;
    base.workload = "swaptions";
    runner::RunSpec faulted = base;
    faulted.fault_plan = "seed=11;p_big:nan@5+5";
    runner::RunSpec supervised = faulted;
    supervised.supervised = true;
    EXPECT_NE(runner::runKey(base, "t"), runner::runKey(faulted, "t"));
    EXPECT_NE(runner::runKey(faulted, "t"),
              runner::runKey(supervised, "t"));
}

TEST(FaultRunner, RobustnessMetricsSurviveTheCacheRoundTrip)
{
    controllers::RunMetrics m;
    m.exec_time = 10.0;
    m.energy = 5.0;
    m.exd = 50.0;
    m.completed = true;
    m.periods = 20;
    m.violation_time = 2.5;
    m.supervised = true;
    m.faults.corrupted_ticks = 7;
    m.faults.corrupted_fields = 9;
    m.faults.actuator_faults = 3;
    m.faults.dropped_ticks = 2;
    m.supervisor.transition_count = 4;
    m.supervisor.invalid_ticks = 7;
    m.supervisor.repaired_fields = 9;
    m.supervisor.repaired_commands = 1;
    m.supervisor.skipped_ticks = 2;
    m.supervisor.time_nominal = 6.0;
    m.supervisor.time_hold = 1.0;
    m.supervisor.time_fallback = 2.0;
    m.supervisor.time_safe = 1.0;

    const std::string path =
        ::testing::TempDir() + "yukta_fault_roundtrip.txt";
    ASSERT_TRUE(runner::saveRunMetrics(path, m));
    auto loaded = runner::loadRunMetrics(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->violation_time, m.violation_time);
    EXPECT_EQ(loaded->supervised, m.supervised);
    EXPECT_EQ(loaded->faults.corrupted_fields,
              m.faults.corrupted_fields);
    EXPECT_EQ(loaded->supervisor.transition_count,
              m.supervisor.transition_count);
    EXPECT_EQ(loaded->supervisor.time_fallback,
              m.supervisor.time_fallback);
}

/** @return the parse error text for @p spec ("" when it parses). */
std::string
parseError(const std::string& spec)
{
    try {
        (void)FaultPlan::parse(spec);
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    return "";
}

TEST(FaultPlan, ParsesBoardMachineTargets)
{
    FaultPlan plan = FaultPlan::parse(
        "seed=9;board3:crash@10+5;board0:degrade@2+8*0.25;"
        "board12:hang@4+2*1");
    EXPECT_EQ(plan.seed, 9u);
    ASSERT_EQ(plan.windows.size(), 3u);
    EXPECT_EQ(plan.windows[0].target, FaultTarget::kBoard);
    EXPECT_EQ(plan.windows[0].kind, FaultKind::kBoardCrash);
    EXPECT_EQ(plan.windows[0].board, 3);
    EXPECT_EQ(plan.windows[0].magnitude, 0.0);  // queue dropped
    EXPECT_EQ(plan.windows[1].kind, FaultKind::kBoardDegrade);
    EXPECT_EQ(plan.windows[1].board, 0);
    EXPECT_EQ(plan.windows[1].magnitude, 0.25);
    EXPECT_EQ(plan.windows[2].kind, FaultKind::kShardHang);
    EXPECT_EQ(plan.windows[2].board, 12);
    EXPECT_EQ(plan.windows[2].magnitude, 1.0);  // persistent
}

TEST(FaultPlan, BoardCanonicalRoundTripIsStable)
{
    const std::string spec =
        "seed=5;board2:crash@10+5*1;board0:hang@1+2";
    FaultPlan plan = FaultPlan::parse(spec);
    const std::string canon = plan.canonical();
    // The board index survives the round trip.
    EXPECT_NE(canon.find("board2:crash"), std::string::npos);
    EXPECT_NE(canon.find("board0:hang"), std::string::npos);
    EXPECT_EQ(FaultPlan::parse(canon).canonical(), canon);
}

TEST(FaultPlan, RejectsMalformedBoardClauses)
{
    // Bare namespace, malformed/oversized indices.
    EXPECT_THROW(FaultPlan::parse("board:crash@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("boardx:crash@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("board1x:crash@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("board1234567:crash@0+1"),
                 std::invalid_argument);
    // Machine kinds only apply to board targets and vice versa.
    EXPECT_THROW(FaultPlan::parse("board1:nan@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("p_big:crash@0+1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("act:hang@0+1"),
                 std::invalid_argument);
    // Degrade magnitude is the remaining capacity fraction.
    EXPECT_THROW(FaultPlan::parse("board1:degrade@0+1*1.5"),
                 std::invalid_argument);
    // A positive crash/hang magnitude is a mode flag and stays legal.
    EXPECT_EQ(FaultPlan::parse("board1:crash@0+1*2").windows[0].magnitude,
              2.0);
}

TEST(FaultPlan, ErrorsNameByteOffsetAndClause)
{
    // "seed=3;" occupies bytes 0-6; the bad clause starts at byte 7.
    const std::string err =
        parseError("seed=3;board1:crash@5+-2;board0:hang@1+1");
    EXPECT_NE(err.find("at byte 7"), std::string::npos) << err;
    EXPECT_NE(err.find("clause 'board1:crash@5+-2'"), std::string::npos)
        << err;

    // First clause errors report byte 0.
    EXPECT_NE(parseError("bogus:nan@0+1").find("at byte 0"),
              std::string::npos);

    // Offsets track clause starts, not error positions: the third
    // clause of this spec begins at byte 21.
    const std::string err2 =
        parseError("seed=3;p_big:nan@0+1;boardx:crash@0+1");
    EXPECT_NE(err2.find("at byte 21"), std::string::npos) << err2;
    EXPECT_NE(err2.find("boardx"), std::string::npos) << err2;
}

}  // namespace
}  // namespace yukta::fault
