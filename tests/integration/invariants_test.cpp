// Cross-module property tests: algebraic identities that must hold
// across the linalg/control/robust/platform stack.
#include <cmath>

#include <gtest/gtest.h>

#include "control/discretize.h"
#include "control/hinf_norm.h"
#include "control/interconnect.h"
#include "control/riccati.h"
#include "controllers/fixed_point.h"
#include "linalg/eig.h"
#include "linalg/svd.h"
#include "linalg/test_util.h"
#include "platform/scheduler.h"

namespace yukta {
namespace {

using control::StateSpace;
using linalg::Matrix;
using linalg::Vector;

/** Bilinear transform preserves the H-infinity norm. */
class BilinearNormProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BilinearNormProperty, NormPreserved)
{
    unsigned seed = GetParam();
    Matrix raw = test::randomMatrix(3, 3, seed);
    Matrix a = raw - (linalg::spectralAbscissa(raw) + 0.4) *
                         Matrix::identity(3);
    StateSpace g(a, test::randomMatrix(3, 2, seed + 1),
                 test::randomMatrix(2, 3, seed + 2), Matrix(2, 2), 0.0);
    StateSpace gd = control::c2d(g, 0.7);
    EXPECT_NEAR(control::hinfNormExact(g), control::hinfNormExact(gd),
                1e-3 * control::hinfNormExact(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BilinearNormProperty,
                         ::testing::Values(61u, 62u, 63u, 64u));

/** Series interconnection norm is submultiplicative. */
class SeriesNormProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SeriesNormProperty, Submultiplicative)
{
    unsigned seed = GetParam();
    auto mk = [&](unsigned s) {
        Matrix raw = test::randomMatrix(3, 3, s);
        Matrix a = raw - (linalg::spectralAbscissa(raw) + 0.5) *
                             Matrix::identity(3);
        return StateSpace(a, test::randomMatrix(3, 2, s + 1),
                          test::randomMatrix(2, 3, s + 2), Matrix(2, 2),
                          0.0);
    };
    StateSpace g1 = mk(seed);
    StateSpace g2 = mk(seed + 100);
    StateSpace ser = control::series(g1, g2);
    double n1 = control::hinfNormExact(g1);
    double n2 = control::hinfNormExact(g2);
    double ns = control::hinfNormExact(ser);
    EXPECT_LE(ns, n1 * n2 * (1.0 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeriesNormProperty,
                         ::testing::Values(71u, 72u, 73u));

/** DARE solutions transported through the bilinear map solve a CARE. */
TEST(RiccatiConsistency, DareMatchesLqrCostDirection)
{
    // Both solvers agree on the scalar problem where closed forms
    // exist: care a=0,g=1,q=1 -> x=1; dare a=1,b=1,q=1,r->inf pushes
    // x -> q ladder. Cross-check residual symmetry instead.
    auto c = control::care(Matrix{{0.0}}, Matrix{{1.0}}, Matrix{{1.0}});
    ASSERT_TRUE(c.has_value());
    EXPECT_NEAR(c->x(0, 0), 1.0, 1e-9);
    auto d = control::dare(Matrix{{0.5}}, Matrix{{1.0}}, Matrix{{1.0}},
                           Matrix{{1.0}});
    ASSERT_TRUE(d.has_value());
    // Scalar DARE: x = a^2 x r/(r + x) ... closed form check via
    // residual already done in RiccatiResult; assert stabilizing.
    EXPECT_TRUE(d->stabilizing);
}

/**
 * Exhaustive scheduler sweep: thread conservation and feasibility for
 * every (threads, big_on, little_on, tpc) combination.
 */
class SchedulerSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SchedulerSweep, ConservesAndBoundsThreads)
{
    auto [threads, big_on, little_on] = GetParam();
    for (double tb = 0.0; tb <= threads; tb += 1.0) {
        for (double tpc : {1.0, 1.5, 2.0, 4.0, 8.0}) {
            platform::PlacementPolicy pol{tb, tpc, tpc};
            platform::Placement p = platform::placeThreads(
                pol, threads, big_on, little_on);
            EXPECT_EQ(p.threadsOn(platform::ClusterId::kBig) +
                          p.threadsOn(platform::ClusterId::kLittle),
                      static_cast<std::size_t>(threads));
            EXPECT_LE(p.busyCores(platform::ClusterId::kBig),
                      static_cast<std::size_t>(big_on));
            EXPECT_LE(p.busyCores(platform::ClusterId::kLittle),
                      static_cast<std::size_t>(little_on));
            // Every thread's core index is valid.
            for (std::size_t t = 0; t < p.thread_cluster.size(); ++t) {
                std::size_t limit =
                    p.thread_cluster[t] == platform::ClusterId::kBig
                        ? big_on
                        : little_on;
                EXPECT_LT(p.thread_core[t], limit);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, SchedulerSweep,
    ::testing::Combine(::testing::Values(0, 1, 4, 8, 16),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 4)));

/** Fixed-point accuracy degrades gracefully with controller order. */
class FixedPointAccuracy : public ::testing::TestWithParam<int>
{
};

TEST_P(FixedPointAccuracy, TracksDoubleWithinTolerance)
{
    int n = GetParam();
    Matrix a = (0.8 / n) * test::randomMatrix(n, n, 3000 + n);
    Matrix b = test::randomMatrix(n, 7, 3001 + n);
    Matrix c = test::randomMatrix(4, n, 3002 + n);
    Matrix d = test::randomMatrix(4, 7, 3003 + n);
    StateSpace k(a, b, c, d, 0.5);
    controllers::FixedPointSsv fx(k);
    Vector x = Vector::zeros(n);
    double worst = 0.0;
    for (int t = 0; t < 50; ++t) {
        Vector dy(7);
        for (int i = 0; i < 7; ++i) {
            dy[i] = std::sin(0.1 * t + i);
        }
        Vector ref = control::stepOnce(k, x, dy);
        Vector got = fx.stepDouble(dy);
        for (std::size_t i = 0; i < 4; ++i) {
            worst = std::max(worst, std::abs(ref[i] - got[i]));
        }
    }
    EXPECT_LT(worst, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Orders, FixedPointAccuracy,
                         ::testing::Values(4, 8, 12, 20, 32));

}  // namespace
}  // namespace yukta
