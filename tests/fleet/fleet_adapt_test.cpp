// The online adaptation loop through the fleet: drift-triggered
// re-synthesis and bumpless hot-swap run end to end inside FleetSim,
// the armed loop is invisible on the shipped plant (bit-identical
// digests), checkpoints carry the adapter (RLS, CUSUM, swapped
// controller text) across the swap, restore refuses an
// adaptation-armed mismatch, and the batched tick engine re-stages a
// swapped member bit-identically to the scalar path.
#include <filesystem>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "fault/plan.h"
#include "fleet/artifacts.h"
#include "fleet/fleet.h"

namespace {

using yukta::fleet::CheckpointConfig;
using yukta::fleet::FleetConfig;
using yukta::fleet::FleetMetrics;
using yukta::fleet::FleetSim;

/**
 * Small adaptive fleet with a compressed adaptation timeline: armed
 * at 15 s (warmup + calibration), optional permanent 2.2x power
 * drift at 20 s, settle/swap within ~15 s of detection. 120 s total
 * leaves a long post-swap tail.
 */
FleetConfig
adaptConfig(bool adapt, bool drift, int boards = 1)
{
    FleetConfig cfg;
    cfg.boards = boards;
    cfg.sim_seconds = 120.0;
    cfg.seed = 5;
    cfg.adapt = adapt;
    cfg.adapt_options.warmup_ticks = 10;
    cfg.adapt_options.calibration_ticks = 20;
    cfg.adapt_options.settle_ticks = 20;
    cfg.adapt_options.swap_delay_ticks = 4;
    cfg.adapt_options.cooldown_ticks = 40;
    if (drift) {
        cfg.faults =
            yukta::fault::FaultPlan::parse("board0:drift@20+9999*2.2");
    }
    return cfg;
}

std::string
checkpointDir(const std::string& tag)
{
    const std::string dir =
        ::testing::TempDir() + "yukta_adapt_ckpt_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// Drift -> CUSUM fire -> pool re-synthesis -> bumpless hot-swap, all
// inside a fleet run, deterministically across worker counts.
TEST(FleetAdapt, HotSwapRunsEndToEndAcrossWorkerCounts)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    FleetMetrics serial;
    FleetMetrics parallel;
    {
        FleetSim sim(adaptConfig(true, true), artifacts);
        serial = sim.run(1);
    }
    {
        FleetSim sim(adaptConfig(true, true), artifacts);
        parallel = sim.run(4);
    }
    EXPECT_GE(serial.adapt.drift_events, 1);
    EXPECT_GE(serial.adapt.syntheses, 1);
    EXPECT_GE(serial.adapt.swaps, 1);
    // The synthesis job runs on the pool; the simulated outcome must
    // not know how many workers ran it.
    EXPECT_EQ(serial.digest(), parallel.digest());
    EXPECT_EQ(serial.adapt.swaps, parallel.adapt.swaps);
}

// On the plant the shipped model describes, the armed loop must be
// invisible: no drift events and a digest bit-identical to the
// disarmed run (adapt is excluded from the run's canonical identity).
TEST(FleetAdapt, ArmedLoopIsInvisibleWithoutDrift)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    FleetMetrics armed;
    FleetMetrics disarmed;
    {
        FleetSim sim(adaptConfig(true, false), artifacts);
        armed = sim.run(2);
    }
    {
        FleetSim sim(adaptConfig(false, false), artifacts);
        disarmed = sim.run(2);
    }
    EXPECT_EQ(armed.adapt.drift_events, 0);
    EXPECT_EQ(armed.adapt.swaps, 0);
    EXPECT_EQ(armed.digest(), disarmed.digest());
}

// A checkpoint taken after the hot-swap must restore into a fresh
// process-equivalent sim -- swapped controller re-materialized from
// its canonical text, RLS/CUSUM state resumed -- and finish
// bit-identical to the uninterrupted run.
TEST(FleetAdapt, CheckpointResumeAcrossSwapIsBitIdentical)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    const std::string dir = checkpointDir("swap");
    // 120 epochs = 60 s: past detection (~20 s), settle (10 s), and
    // the swap; well before the end.
    const int split = 120;
    std::uint64_t base = 0;
    long long base_swaps = 0;
    {
        CheckpointConfig ckpt;
        ckpt.every_epochs = split;
        ckpt.dir = dir;
        FleetSim sim(adaptConfig(true, true), artifacts);
        FleetMetrics m = sim.run(2, ckpt);
        base = m.digest();
        base_swaps = m.adapt.swaps;
    }
    ASSERT_GE(base_swaps, 1) << "split must land after the swap";
    std::uint64_t resumed = 0;
    {
        FleetSim sim(adaptConfig(true, true), artifacts);
        sim.restoreCheckpoint(dir + "/fleet-" + std::to_string(split) +
                              ".ckpt");
        EXPECT_EQ(sim.epoch(), split);
        resumed = sim.run(1).digest();
    }
    EXPECT_EQ(base, resumed);
    std::filesystem::remove_all(dir);
}

// A checkpoint records whether each board carried an adapter;
// restoring it into a sim with adaptation configured differently
// must refuse rather than silently drop (or invent) adapter state.
TEST(FleetAdapt, RestoreRefusesAdaptationMismatch)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    const std::string dir = checkpointDir("mismatch");
    const int split = 60;
    {
        CheckpointConfig ckpt;
        ckpt.every_epochs = split;
        ckpt.dir = dir;
        FleetSim sim(adaptConfig(true, true), artifacts);
        (void)sim.run(2, ckpt);
    }
    const std::string path =
        dir + "/fleet-" + std::to_string(split) + ".ckpt";
    {
        FleetSim sim(adaptConfig(false, true), artifacts);
        EXPECT_THROW(sim.restoreCheckpoint(path), std::runtime_error);
    }
    {
        // The adapt-armed sim restores its own checkpoint fine.
        FleetSim sim(adaptConfig(true, true), artifacts);
        sim.restoreCheckpoint(path);
        EXPECT_EQ(sim.epoch(), split);
    }
    std::filesystem::remove_all(dir);

    // And the converse: a checkpoint from a non-adaptive run must not
    // restore into an adapt-armed sim.
    const std::string dir2 = checkpointDir("mismatch2");
    {
        CheckpointConfig ckpt;
        ckpt.every_epochs = split;
        ckpt.dir = dir2;
        FleetSim sim(adaptConfig(false, true), artifacts);
        (void)sim.run(2, ckpt);
    }
    {
        FleetSim sim(adaptConfig(true, true), artifacts);
        EXPECT_THROW(
            sim.restoreCheckpoint(dir2 + "/fleet-" +
                                  std::to_string(split) + ".ckpt"),
            std::runtime_error);
    }
    std::filesystem::remove_all(dir2);
}

// The batched tick engine must re-stage the swapped member and keep
// every board bit-identical to the scalar path -- a swap on board 0
// must not perturb the other members of the shard.
TEST(FleetAdapt, BatchedTickReStagesSwappedMemberBitIdentically)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    FleetConfig batched = adaptConfig(true, true, 4);
    batched.shards = 1;  // All four boards share one batched shard.
    FleetConfig scalar = batched;
    scalar.batch_tick = false;

    FleetMetrics mb;
    FleetMetrics ms;
    {
        FleetSim sim(batched, artifacts);
        mb = sim.run(2);
    }
    {
        FleetSim sim(scalar, artifacts);
        ms = sim.run(2);
    }
    ASSERT_GE(mb.adapt.swaps, 1) << "the swap must actually happen";
    EXPECT_EQ(mb.digest(), ms.digest());
    EXPECT_EQ(mb.adapt.swaps, ms.adapt.swaps);
}

}  // namespace
