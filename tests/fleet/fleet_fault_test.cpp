// Fleet fault tolerance: the board-crash fault domain (dark boards,
// queue loss, supervisor-ladder cold reboots), watchdog-guarded shard
// execution (transient hangs recovered, persistent hangs marked
// lost), and checkpoint/resume -- the crash-restore property is
// bit-identical digests across seeds, worker counts, and the
// checkpoint split point.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "controllers/supervisor.h"
#include "fault/plan.h"
#include "fleet/artifacts.h"
#include "fleet/fleet.h"

namespace {

using yukta::controllers::SupervisorEvent;
using yukta::controllers::SupervisorMode;
using yukta::fleet::CheckpointConfig;
using yukta::fleet::FleetConfig;
using yukta::fleet::FleetMetrics;
using yukta::fleet::FleetSim;

/** Small faulted fleet with test-friendly watchdog wall deadlines. */
FleetConfig
smallConfig(std::uint32_t seed, const std::string& faults)
{
    FleetConfig cfg;
    cfg.boards = 3;
    cfg.sim_seconds = 4.0;  // 8 epochs.
    cfg.seed = seed;
    cfg.arrivals.profile.base_rate = 6.0;
    cfg.watchdog_timeout_s = 0.05;
    cfg.watchdog_backoff_s = 0.02;
    if (!faults.empty()) {
        cfg.faults = yukta::fault::FaultPlan::parse(faults);
    }
    return cfg;
}

/** Fresh empty checkpoint directory under the test temp root. */
std::string
checkpointDir(const std::string& tag)
{
    const std::string dir =
        ::testing::TempDir() + "yukta_fleet_ckpt_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// The tentpole property: run-to-T and run-to-T/k + restore +
// run-to-T yield bit-identical digests, across seeds, worker counts
// (the baseline and resumed legs deliberately use different counts),
// fault schedules, and the checkpoint split epoch.
TEST(FleetFaults, CrashRestoreDigestIdentityAcrossSeedsAndWorkers)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    const std::size_t workers[] = {1, 2, 4};
    const std::string fault_spec =
        "board1:crash@1+1.5;board0:hang@2+1;board2:degrade@0.5+2*0.4";

    for (std::uint32_t seed = 1; seed <= 21; ++seed) {
        // Odd seeds run the full fault schedule; even seeds are
        // healthy, so both regimes cross the checkpoint machinery.
        FleetConfig cfg =
            smallConfig(seed, seed % 2 == 1 ? fault_spec : "");
        const std::size_t w_base = workers[seed % 3];
        const std::size_t w_resume = workers[(seed + 1) % 3];
        // Split epoch cycles through [1, 7] of the 8-epoch run.
        const int split = 1 + static_cast<int>(seed % 7);
        const std::string dir =
            checkpointDir("seeds_" + std::to_string(seed));

        std::uint64_t base = 0;
        {
            FleetSim sim(cfg, artifacts);
            CheckpointConfig ckpt;
            ckpt.every_epochs = split;
            ckpt.dir = dir;
            base = sim.run(w_base, ckpt).digest();
        }
        std::uint64_t resumed = 0;
        {
            FleetSim sim(cfg, artifacts);
            sim.restoreCheckpoint(dir + "/fleet-" +
                                  std::to_string(split) + ".ckpt");
            EXPECT_EQ(sim.epoch(), split);
            resumed = sim.run(w_resume).digest();
        }
        EXPECT_EQ(base, resumed)
            << "seed " << seed << " split " << split << " workers "
            << w_base << "->" << w_resume;
        std::filesystem::remove_all(dir);
    }
}

// Faulted runs must stay a pure function of the config: identical
// digests for any worker count, and for any wall-clock watchdog
// deadline (the deadline bounds real time, never the result).
TEST(FleetFaults, FaultedRunIsBitIdenticalForAnyWorkerCount)
{
    FleetConfig cfg = smallConfig(
        9, "board0:crash@1+1;board1:hang@2+1;board2:hang@0.5+1*1;"
           "board0:degrade@2.5+1*0.3");
    cfg.boards = 4;
    const auto artifacts = yukta::fleet::fleetArtifacts();

    const std::size_t workers[] = {1, 2, 4};
    const double timeouts[] = {0.03, 0.05, 0.08};
    std::uint64_t digests[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
        FleetConfig c = cfg;
        c.watchdog_timeout_s = timeouts[i];
        FleetSim sim(c, artifacts);
        digests[i] = sim.run(workers[i]).digest();
    }
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[0], digests[2]);
}

TEST(FleetFaults, SupervisedCrashColdRebootsThroughLadder)
{
    FleetConfig cfg = smallConfig(5, "board0:crash@1+1");
    cfg.supervised = true;
    const auto artifacts = yukta::fleet::fleetArtifacts();

    FleetSim sim(cfg, artifacts);
    const FleetMetrics m = sim.run(2);

    EXPECT_EQ(m.faults.crashes, 1);
    EXPECT_EQ(m.faults.reboots, 1);
    EXPECT_EQ(sim.board(0).reboots, 1);
    EXPECT_FALSE(sim.board(0).down);

    // The replacement instance re-entered service at the bottom of
    // the supervisor ladder: its log opens with the cold-boot
    // transition into kSafe.
    const auto* sup = sim.board(0).system.supervisor();
    ASSERT_NE(sup, nullptr);
    const std::vector<SupervisorEvent>& events = sup->report().events;
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events[0].to, SupervisorMode::kSafe);
    EXPECT_NE(events[0].reason.find("cold reboot"), std::string::npos);

    // The unsupervised boards never crashed and carry no reboots.
    EXPECT_EQ(sim.board(1).reboots, 0);
    EXPECT_EQ(sim.board(2).reboots, 0);
}

// Supervision + fault-aware routing must strictly cut SLO-violation
// time versus a fault-blind fleet in a board-crash scenario: the
// blind fleet keeps routing demand into the dark board.
TEST(FleetFaults, AwareBeatsBlindOnCrashSlo)
{
    FleetConfig cfg = smallConfig(3, "board1:crash@1+2");
    cfg.boards = 4;
    cfg.sim_seconds = 8.0;
    cfg.arrivals.profile.base_rate = 10.0;
    const auto artifacts = yukta::fleet::fleetArtifacts();

    FleetMetrics aware;
    FleetMetrics blind;
    {
        FleetSim sim(cfg, artifacts);
        aware = sim.run(2);
    }
    {
        FleetConfig b = cfg;
        b.fault_aware = false;
        FleetSim sim(b, artifacts);
        blind = sim.run(2);
    }
    EXPECT_GT(blind.slo_violation_time, 0.0);
    EXPECT_LT(aware.slo_violation_time, blind.slo_violation_time);
    // Both fleets saw the same crash; only the response differed.
    EXPECT_EQ(aware.faults.crashes, 1);
    EXPECT_EQ(blind.faults.crashes, 1);
}

TEST(FleetFaults, WatchdogRecoversTransientHangEpochs)
{
    const std::string spec = "board0:hang@1+1";
    const auto artifacts = yukta::fleet::fleetArtifacts();

    FleetMetrics aware;
    {
        FleetSim sim(smallConfig(7, spec), artifacts);
        aware = sim.run(2);
    }
    // A transient hang stalls the first attempt of each window epoch;
    // the watchdog detects it and the retry steps the board, so no
    // epoch is lost. The 1 s window spans 2 epochs.
    EXPECT_EQ(aware.faults.lost_epochs, 0);
    EXPECT_EQ(aware.faults.watchdog_timeouts, 2);
    EXPECT_EQ(aware.faults.shard_retries, 2);

    FleetMetrics blind;
    {
        FleetConfig b = smallConfig(7, spec);
        b.fault_aware = false;
        FleetSim sim(b, artifacts);
        blind = sim.run(2);
    }
    // Fault-blind: nothing notices the stall; both window epochs are
    // silently lost.
    EXPECT_EQ(blind.faults.lost_epochs, 2);
    EXPECT_EQ(blind.faults.watchdog_timeouts, 0);
    EXPECT_EQ(blind.faults.shard_retries, 0);
}

TEST(FleetFaults, PersistentHangMarksBoardLostForTheWindow)
{
    // Persistent hang (magnitude > 0) over 2 s = 4 epochs.
    FleetConfig cfg = smallConfig(7, "board0:hang@1+2*1");
    const auto artifacts = yukta::fleet::fleetArtifacts();
    FleetSim sim(cfg, artifacts);
    const FleetMetrics m = sim.run(2);

    // Epoch 1: both watchdog attempts time out, the board is declared
    // lost; epochs 2-4 of the window skip it without blocking.
    EXPECT_EQ(m.faults.watchdog_timeouts, 2);
    EXPECT_EQ(m.faults.shard_retries, 1);
    EXPECT_EQ(m.faults.lost_epochs, 4);
    // After the window the board serves again.
    EXPECT_EQ(sim.board(0).lost_until, 3.0);
}

TEST(FleetFaults, DegradeCutsServiceCapacity)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    FleetConfig cfg = smallConfig(11, "");
    cfg.arrivals.profile.base_rate = 10.0;

    FleetMetrics healthy;
    {
        FleetSim sim(cfg, artifacts);
        healthy = sim.run(2);
    }
    FleetConfig deg = cfg;
    deg.faults = yukta::fault::FaultPlan::parse("board0:degrade@0+4*0.2");
    FleetMetrics degraded;
    {
        FleetSim sim(deg, artifacts);
        degraded = sim.run(2);
    }
    EXPECT_EQ(degraded.faults.degraded_epochs, 8);
    EXPECT_LT(degraded.served_gi, healthy.served_gi);
}

TEST(FleetFaults, CheckpointTamperAndMismatchRejected)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    const FleetConfig cfg = smallConfig(13, "board1:crash@1+1");
    const std::string dir = checkpointDir("tamper");
    const std::string path = dir + "/fleet.ckpt";
    {
        FleetSim sim(cfg, artifacts);
        CheckpointConfig ckpt;
        ckpt.every_epochs = 4;
        ckpt.dir = dir;
        (void)sim.run(1, ckpt);
        // run() wrote fleet-4.ckpt; also exercise the direct call.
        sim.saveCheckpoint(path);
    }

    // A valid snapshot restores (sanity for the negative cases).
    {
        FleetSim sim(cfg, artifacts);
        sim.restoreCheckpoint(dir + "/fleet-4.ckpt");
        EXPECT_EQ(sim.epoch(), 4);
        // The end-of-run snapshot restores to the final epoch.
        sim.restoreCheckpoint(path);
        EXPECT_EQ(sim.epoch(), 8);
    }

    // Flipped payload byte: the digest stamp must catch it.
    {
        std::ifstream in(path, std::ios::binary);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const std::size_t mid = text.size() / 2;
        text[mid] = text[mid] == 'x' ? 'y' : 'x';
        std::ofstream out(path + ".bad", std::ios::binary);
        out << text;
    }
    {
        FleetSim sim(cfg, artifacts);
        EXPECT_THROW(sim.restoreCheckpoint(path + ".bad"),
                     std::runtime_error);
    }

    // A different config (seed) must be refused before any state is
    // deserialized.
    {
        FleetConfig other = cfg;
        other.seed = 14;
        FleetSim sim(other, artifacts);
        EXPECT_THROW(sim.restoreCheckpoint(path), std::runtime_error);
    }

    // Missing file.
    {
        FleetSim sim(cfg, artifacts);
        EXPECT_THROW(sim.restoreCheckpoint(dir + "/absent.ckpt"),
                     std::runtime_error);
    }
    std::filesystem::remove_all(dir);
}

TEST(FleetFaults, ConstructorRejectsBadFaultPlans)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    // Non-board targets never reach the fleet.
    {
        FleetConfig cfg = smallConfig(1, "");
        cfg.faults = yukta::fault::FaultPlan::parse("p_big:nan@0+1");
        EXPECT_THROW(FleetSim(cfg, artifacts), std::invalid_argument);
    }
    // Board index outside the fleet.
    {
        FleetConfig cfg = smallConfig(1, "board7:crash@0+1");
        EXPECT_THROW(FleetSim(cfg, artifacts), std::invalid_argument);
    }
    // Watchdog attempts must allow at least one try.
    {
        FleetConfig cfg = smallConfig(1, "");
        cfg.watchdog_attempts = 0;
        EXPECT_THROW(FleetSim(cfg, artifacts), std::invalid_argument);
    }
}

}  // namespace
