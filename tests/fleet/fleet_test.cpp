// Fleet simulator invariants: deterministic arrivals, the admission
// capacity bound, cluster target shaping, and the two end-to-end
// properties the subsystem exists for -- bit-identical results for
// any worker count, and admission strictly reducing SLO-violation
// time under overload.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "fleet/admission.h"
#include "fleet/arrivals.h"
#include "fleet/artifacts.h"
#include "fleet/cluster.h"
#include "fleet/fleet.h"
#include "platform/board.h"

namespace {

using yukta::fleet::AdmissionConfig;
using yukta::fleet::AdmissionController;
using yukta::fleet::ArrivalConfig;
using yukta::fleet::ArrivalGenerator;
using yukta::fleet::BoardTelemetry;
using yukta::fleet::ClusterConfig;
using yukta::fleet::ClusterController;
using yukta::fleet::FleetConfig;
using yukta::fleet::FleetMetrics;
using yukta::fleet::FleetSim;
using yukta::fleet::Request;

TEST(Arrivals, SameKeyYieldsIdenticalRequestsRegardlessOfCallOrder)
{
    ArrivalConfig cfg;
    cfg.profile.base_rate = 6.0;
    const ArrivalGenerator gen(cfg, 42);

    const auto first = gen.epochArrivals(3, 7, 3.5, 0.5);
    // Query other (board, epoch) pairs in between: the generator is
    // stateless, so they must not perturb the original stream.
    (void)gen.epochArrivals(0, 0, 0.0, 0.5);
    (void)gen.epochArrivals(9, 7, 3.5, 0.5);
    const auto again = gen.epochArrivals(3, 7, 3.5, 0.5);

    ASSERT_EQ(first.size(), again.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].arrival_time, again[i].arrival_time);
        EXPECT_EQ(first[i].demand_gi, again[i].demand_gi);
        EXPECT_EQ(first[i].origin, again[i].origin);
    }
}

TEST(Arrivals, RequestsAreWellFormedAndInsideTheEpoch)
{
    ArrivalConfig cfg;
    cfg.profile.base_rate = 10.0;
    cfg.profile.amplitude = 0.5;
    cfg.profile.period_seconds = 30.0;
    const ArrivalGenerator gen(cfg, 7);

    int total = 0;
    for (int epoch = 0; epoch < 40; ++epoch) {
        const double t0 = 0.5 * epoch;
        for (int board = 0; board < 4; ++board) {
            for (const Request& r :
                 gen.epochArrivals(board, epoch, t0, 0.5)) {
                EXPECT_GE(r.arrival_time, t0);
                EXPECT_LT(r.arrival_time, t0 + 0.5);
                EXPECT_GT(r.demand_gi, 0.0);
                EXPECT_EQ(r.remaining_gi, r.demand_gi);
                EXPECT_EQ(r.origin, board);
                ++total;
            }
        }
    }
    // Mean is 10/s * 4 boards * 20 s = 800; being anywhere near it
    // proves the Poisson sampler is live.
    EXPECT_GT(total, 400);
    EXPECT_LT(total, 1600);
}

TEST(Arrivals, DifferentSeedsDecorrelateTheStream)
{
    ArrivalConfig cfg;
    cfg.profile.base_rate = 20.0;
    const ArrivalGenerator a(cfg, 1);
    const ArrivalGenerator b(cfg, 2);
    const auto ra = a.epochArrivals(0, 0, 0.0, 0.5);
    const auto rb = b.epochArrivals(0, 0, 0.0, 0.5);
    bool differs = ra.size() != rb.size();
    for (std::size_t i = 0; !differs && i < ra.size(); ++i) {
        differs = ra[i].arrival_time != rb[i].arrival_time ||
                  ra[i].demand_gi != rb[i].demand_gi;
    }
    EXPECT_TRUE(differs);
}

// The invariant the admission layer is built around: the projected
// depth of every board stays <= capacity at admission time, across
// seeds, demands, and hop-limited re-routing.
TEST(Admission, NeverAcceptsPastCapacityAcrossSeeds)
{
    const int boards = 5;
    AdmissionConfig cfg;
    cfg.queue_capacity_gi = 4.0;
    cfg.max_hops = 3;

    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
        AdmissionController admission(cfg, boards);
        std::vector<double> depth(boards, 0.0);
        std::mt19937 rng(seed);
        std::uniform_real_distribution<double> demand(0.05, 3.0);
        std::uniform_int_distribution<int> origin(0, boards - 1);
        std::uniform_real_distribution<double> drain(0.0, 1.5);

        for (int i = 0; i < 2000; ++i) {
            Request r;
            r.demand_gi = demand(rng);
            r.remaining_gi = r.demand_gi;
            r.origin = origin(rng);
            const int dest = admission.route(r, depth);
            if (dest >= 0) {
                ASSERT_GE(dest, 0);
                ASSERT_LT(dest, boards);
            }
            for (double d : depth) {
                ASSERT_LE(d, cfg.queue_capacity_gi + 1e-12);
            }
            // Simulate service draining some backlog between requests.
            for (double& d : depth) {
                d = std::max(0.0, d - drain(rng) * 0.1);
            }
        }
        const auto& stats = admission.stats();
        EXPECT_EQ(stats.offered, 2000);
        EXPECT_EQ(stats.accepted + stats.rejected, stats.offered);
        EXPECT_GT(stats.rejected, 0);  // capacity 4 with demand ~1.5
    }
}

TEST(Admission, DisabledAcceptsEverythingAtOrigin)
{
    AdmissionConfig cfg;
    cfg.enabled = false;
    cfg.queue_capacity_gi = 0.5;
    AdmissionController admission(cfg, 3);
    std::vector<double> depth(3, 0.0);
    for (int i = 0; i < 50; ++i) {
        Request r;
        r.demand_gi = 2.0;
        r.remaining_gi = 2.0;
        r.origin = i % 3;
        EXPECT_EQ(admission.route(r, depth), r.origin);
    }
    EXPECT_EQ(admission.stats().rejected, 0);
    EXPECT_EQ(admission.stats().rerouted, 0);
}

TEST(Cluster, HotBoardsGetHigherTargetsInsideTheEnvelope)
{
    const yukta::platform::BoardConfig board;
    ClusterController cluster(ClusterConfig{}, board, 4);

    std::vector<BoardTelemetry> telemetry(4);
    telemetry[2].queued_gi = 30.0;   // the hot board
    telemetry[2].arrival_gi_ema = 4.0;
    for (int b = 0; b < 4; ++b) {
        if (b != 2) {
            telemetry[b].arrival_gi_ema = 0.5;
        }
    }

    const auto targets = cluster.computeTargets(telemetry);
    ASSERT_EQ(targets.size(), 4u);
    for (const auto& t : targets) {
        ASSERT_EQ(t.size(), 4u);
        EXPECT_GE(t[0], 0.5);                               // BIPS
        EXPECT_LE(t[0], 12.0);
        EXPECT_GE(t[1], 0.3);                               // P_big
        EXPECT_LE(t[1], 0.93 * board.power_limit_big);
        EXPECT_GE(t[2], 0.05);                              // P_little
        EXPECT_LE(t[2], 0.93 * board.power_limit_little);
        EXPECT_LT(t[3], board.temp_limit);                  // T target
    }
    // The hot board is pushed up relative to every idle board.
    for (int b = 0; b < 4; ++b) {
        if (b != 2) {
            EXPECT_GT(targets[2][0], targets[b][0]);
            EXPECT_GE(targets[2][1], targets[b][1]);
        }
    }
}

TEST(Cluster, UniformDemandKeepsTheFairSharePoint)
{
    const yukta::platform::BoardConfig board;
    ClusterController cluster(ClusterConfig{}, board, 8);
    std::vector<BoardTelemetry> telemetry(8);
    for (auto& t : telemetry) {
        t.arrival_gi_ema = 1.0;
    }
    const auto targets = cluster.computeTargets(telemetry);
    for (const auto& t : targets) {
        EXPECT_NEAR(t[0], 3.0, 1e-12);  // fair share == nominal BIPS
    }
}

// End-to-end: the fleet result must be a pure function of the config,
// independent of how many pool workers step the shards. This box has
// few cores, so the worker counts are explicit, not derived.
TEST(Fleet, RunIsBitIdenticalForAnyWorkerCount)
{
    FleetConfig cfg;
    cfg.boards = 6;
    cfg.sim_seconds = 6.0;
    cfg.seed = 11;
    cfg.arrivals.profile.base_rate = 6.0;
    const auto artifacts = yukta::fleet::fleetArtifacts();

    std::uint64_t digest1 = 0;
    std::uint64_t digest2 = 0;
    std::uint64_t digest4 = 0;
    {
        FleetSim sim(cfg, artifacts);
        digest1 = sim.run(1).digest();
    }
    {
        FleetSim sim(cfg, artifacts);
        digest2 = sim.run(2).digest();
    }
    {
        FleetSim sim(cfg, artifacts);
        digest4 = sim.run(4).digest();
    }
    EXPECT_EQ(digest1, digest2);
    EXPECT_EQ(digest1, digest4);
}

TEST(Fleet, AdmissionStrictlyReducesSloViolationUnderOverload)
{
    FleetConfig cfg;
    cfg.boards = 4;
    cfg.sim_seconds = 12.0;
    cfg.seed = 3;
    cfg.arrivals.profile.base_rate = 14.0;  // far past service rate
    const auto artifacts = yukta::fleet::fleetArtifacts();

    FleetMetrics with;
    FleetMetrics without;
    {
        FleetSim sim(cfg, artifacts);
        with = sim.run(2);
    }
    {
        FleetConfig off = cfg;
        off.admission.enabled = false;
        FleetSim sim(off, artifacts);
        without = sim.run(2);
    }
    EXPECT_GT(without.slo_violation_time, 0.0);
    EXPECT_LT(with.slo_violation_time, without.slo_violation_time);
    EXPECT_GT(with.admission.rejected, 0);
    EXPECT_EQ(with.admission.accepted + with.admission.rejected,
              with.admission.offered);
}

TEST(Fleet, IdleAdmissionIsANoOp)
{
    // Capacity far above the run's whole offered mass: the admission
    // path evaluates every request yet can never reject, so the run
    // must be bit-identical to one with admission disabled.
    FleetConfig cfg;
    cfg.boards = 4;
    cfg.sim_seconds = 6.0;
    cfg.seed = 5;
    cfg.arrivals.profile.base_rate = 2.0;
    cfg.admission.queue_capacity_gi = 1e6;
    const auto artifacts = yukta::fleet::fleetArtifacts();

    std::uint64_t on = 0;
    std::uint64_t off = 0;
    {
        FleetSim sim(cfg, artifacts);
        on = sim.run(2).digest();
    }
    {
        FleetConfig disabled = cfg;
        disabled.admission.enabled = false;
        FleetSim sim(disabled, artifacts);
        off = sim.run(2).digest();
    }
    EXPECT_EQ(on, off);
}

}  // namespace
