// Batched shard ticking vs per-board scalar stepping: the fleet
// digest is a pure function of the config, so flipping the batch_tick
// execution knob (or the worker count, or resuming from a checkpoint
// written under the other mode) must never move a single bit. This is
// the PR 8 seed/worker/split harness with a batch axis threaded
// through it.
#include <cstdint>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "fault/plan.h"
#include "fleet/artifacts.h"
#include "fleet/fleet.h"

namespace {

using yukta::fleet::CheckpointConfig;
using yukta::fleet::FleetConfig;
using yukta::fleet::FleetSim;

/** Small faulted fleet, mirroring the fault-domain test harness. */
FleetConfig
smallConfig(std::uint32_t seed, const std::string& faults)
{
    FleetConfig cfg;
    cfg.boards = 3;
    cfg.sim_seconds = 4.0;  // 8 epochs.
    cfg.seed = seed;
    cfg.arrivals.profile.base_rate = 6.0;
    cfg.watchdog_timeout_s = 0.05;
    cfg.watchdog_backoff_s = 0.02;
    if (!faults.empty()) {
        cfg.faults = yukta::fault::FaultPlan::parse(faults);
    }
    return cfg;
}

std::string
checkpointDir(const std::string& tag)
{
    const std::string dir =
        ::testing::TempDir() + "yukta_fleet_batch_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

TEST(FleetBatch, BatchTickIsTheDefault)
{
    EXPECT_TRUE(FleetConfig{}.batch_tick);
}

// The headline identity: one faulted config, every worker count, both
// tick modes -- six runs, one digest.
TEST(FleetBatch, BatchMatchesScalarDigestForAllWorkerCounts)
{
    FleetConfig cfg = smallConfig(
        9, "board0:crash@1+1;board1:hang@2+1;board2:degrade@0.5+2*0.4");
    cfg.boards = 4;
    const auto artifacts = yukta::fleet::fleetArtifacts();

    std::uint64_t want = 0;
    for (bool batch : {false, true}) {
        for (std::size_t workers : {1u, 2u, 4u}) {
            FleetConfig c = cfg;
            c.batch_tick = batch;
            FleetSim sim(c, artifacts);
            const std::uint64_t got = sim.run(workers).digest();
            if (want == 0) {
                want = got;
            }
            EXPECT_EQ(got, want) << (batch ? "batch" : "scalar")
                                 << " workers=" << workers;
        }
    }
}

// The PR 8 crash-restore sweep with a batch axis: the baseline leg
// checkpoints under one tick mode and the resumed leg finishes under
// the other (batch_tick is an execution knob outside the canonical
// config, so snapshots interoperate), with different worker counts on
// each side. 21 seeds x alternating mode pairs.
TEST(FleetBatch, CrossModeCheckpointRestoreDigestIdentity)
{
    const auto artifacts = yukta::fleet::fleetArtifacts();
    const std::size_t workers[] = {1, 2, 4};
    const std::string fault_spec =
        "board1:crash@1+1.5;board0:hang@2+1;board2:degrade@0.5+2*0.4";

    for (std::uint32_t seed = 1; seed <= 21; ++seed) {
        FleetConfig cfg =
            smallConfig(seed, seed % 2 == 1 ? fault_spec : "");
        const std::size_t w_base = workers[seed % 3];
        const std::size_t w_resume = workers[(seed + 1) % 3];
        const int split = 1 + static_cast<int>(seed % 7);
        // Odd seeds checkpoint under batch and resume scalar; even
        // seeds the other way around.
        const bool base_batch = seed % 2 == 1;
        const std::string dir =
            checkpointDir("seed_" + std::to_string(seed));

        std::uint64_t base = 0;
        {
            FleetConfig c = cfg;
            c.batch_tick = base_batch;
            FleetSim sim(c, artifacts);
            CheckpointConfig ckpt;
            ckpt.every_epochs = split;
            ckpt.dir = dir;
            base = sim.run(w_base, ckpt).digest();
        }
        std::uint64_t resumed = 0;
        {
            FleetConfig c = cfg;
            c.batch_tick = !base_batch;
            FleetSim sim(c, artifacts);
            sim.restoreCheckpoint(dir + "/fleet-" +
                                  std::to_string(split) + ".ckpt");
            EXPECT_EQ(sim.epoch(), split);
            resumed = sim.run(w_resume).digest();
        }
        EXPECT_EQ(base, resumed)
            << "seed " << seed << " split " << split << " "
            << (base_batch ? "batch->scalar" : "scalar->batch")
            << " workers " << w_base << "->" << w_resume;
        std::filesystem::remove_all(dir);
    }
}

}  // namespace
