#include "control/state_space.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/test_util.h"

namespace yukta::control {
namespace {

using linalg::Complex;
using linalg::Matrix;
using linalg::Vector;

StateSpace
scalarLag(double pole, double ts)
{
    // y(T+1) = pole * y(T) + (1 - pole) * u(T): unity DC gain lag.
    return StateSpace(Matrix{{pole}}, Matrix{{1.0 - pole}}, Matrix{{1.0}},
                      Matrix{{0.0}}, ts);
}

TEST(StateSpace, DimensionValidation)
{
    Matrix a(2, 2);
    Matrix b(2, 1);
    Matrix c(1, 2);
    Matrix d(1, 1);
    EXPECT_NO_THROW(StateSpace(a, b, c, d, 1.0));
    EXPECT_THROW(StateSpace(Matrix(2, 3), b, c, d, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(StateSpace(a, Matrix(3, 1), c, d, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(StateSpace(a, b, Matrix(1, 3), d, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(StateSpace(a, b, c, Matrix(2, 2), 1.0),
                 std::invalid_argument);
    EXPECT_THROW(StateSpace(a, b, c, d, -1.0), std::invalid_argument);
}

TEST(StateSpace, GainSystemHasNoStates)
{
    StateSpace g = StateSpace::gain(Matrix{{2.0, 0.0}, {0.0, 3.0}}, 1.0);
    EXPECT_EQ(g.numStates(), 0u);
    EXPECT_EQ(g.numInputs(), 2u);
    EXPECT_TRUE(g.dcGain().isApprox(Matrix{{2.0, 0.0}, {0.0, 3.0}}));
}

TEST(StateSpace, PolesOfDiagonalSystem)
{
    StateSpace sys(Matrix::diag({0.5, -0.25}), Matrix(2, 1), Matrix(1, 2),
                   Matrix(1, 1), 1.0);
    auto p = sys.poles();
    ASSERT_EQ(p.size(), 2u);
}

TEST(StateSpace, StabilityDiscrete)
{
    EXPECT_TRUE(scalarLag(0.9, 1.0).isStable());
    EXPECT_FALSE(scalarLag(1.1, 1.0).isStable());
    EXPECT_FALSE(scalarLag(1.0, 1.0).isStable());
}

TEST(StateSpace, StabilityContinuous)
{
    StateSpace stable(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                      Matrix{{0.0}});
    StateSpace unstable(Matrix{{0.5}}, Matrix{{1.0}}, Matrix{{1.0}},
                        Matrix{{0.0}});
    EXPECT_TRUE(stable.isStable());
    EXPECT_FALSE(unstable.isStable());
}

TEST(StateSpace, DcGainOfLag)
{
    EXPECT_NEAR(scalarLag(0.7, 1.0).dcGain()(0, 0), 1.0, 1e-12);
}

TEST(StateSpace, FreqResponseContinuousIntegratorLike)
{
    // G(s) = 1/(s+1): |G(j1)| = 1/sqrt(2).
    StateSpace g(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    auto r = g.freqResponse(1.0);
    EXPECT_NEAR(std::abs(r(0, 0)), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(StateSpace, FreqResponseDiscreteAtNyquist)
{
    // y(T+1) = u(T): G(z) = 1/z; at w*ts = pi, G = -1.
    StateSpace g(Matrix{{0.0}}, Matrix{{1.0}}, Matrix{{1.0}}, Matrix{{0.0}},
                 1.0);
    auto r = g.freqResponse(M_PI);
    EXPECT_NEAR(r(0, 0).real(), -1.0, 1e-12);
    EXPECT_NEAR(r(0, 0).imag(), 0.0, 1e-12);
}

TEST(StateSpace, DualSwapsPorts)
{
    StateSpace g(Matrix::identity(2), test::randomMatrix(2, 3, 50),
                 test::randomMatrix(4, 2, 51), Matrix(4, 3), 1.0);
    StateSpace d = g.dual();
    EXPECT_EQ(d.numInputs(), 4u);
    EXPECT_EQ(d.numOutputs(), 3u);
}

TEST(StateSpace, ScaledAppliesGains)
{
    StateSpace g = scalarLag(0.5, 1.0);
    StateSpace s = g.scaled(Matrix{{2.0}}, Matrix{{3.0}});
    EXPECT_NEAR(s.dcGain()(0, 0), 6.0, 1e-12);
}

TEST(Simulate, LagStepConvergesToDc)
{
    StateSpace g = scalarLag(0.8, 1.0);
    auto y = stepResponse(g, 0, 100);
    EXPECT_NEAR(y.back()[0], 1.0, 1e-8);
    // Monotone approach for a first-order lag.
    for (std::size_t i = 1; i < y.size(); ++i) {
        EXPECT_GE(y[i][0] + 1e-12, y[i - 1][0]);
    }
}

TEST(Simulate, RejectsContinuous)
{
    StateSpace g(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    EXPECT_THROW(simulate(g, {Vector{1.0}}), std::invalid_argument);
}

TEST(Simulate, StepOnceChecksDimensions)
{
    StateSpace g = scalarLag(0.8, 1.0);
    Vector x = Vector::zeros(1);
    EXPECT_THROW(stepOnce(g, x, Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(Simulate, StepResponseBadIndexThrows)
{
    EXPECT_THROW(stepResponse(scalarLag(0.5, 1.0), 3, 5),
                 std::invalid_argument);
}

TEST(Simulate, MatchesManualRecursion)
{
    StateSpace g(Matrix{{0.5, 0.1}, {0.0, 0.3}}, Matrix{{1.0}, {0.5}},
                 Matrix{{1.0, 1.0}}, Matrix{{0.2}}, 1.0);
    std::vector<Vector> u = {Vector{1.0}, Vector{-1.0}, Vector{0.5}};
    auto y = simulate(g, u);
    // Manual recursion.
    Vector x = Vector::zeros(2);
    for (std::size_t t = 0; t < u.size(); ++t) {
        Vector expect = g.c * x + g.d * u[t];
        EXPECT_NEAR(y[t][0], expect[0], 1e-12);
        x = g.a * x + g.b * u[t];
    }
}

/** Property: frequency response at w=0 equals dcGain for stable systems. */
class FreqDcProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(FreqDcProperty, MatchesAtZero)
{
    double pole = GetParam();
    StateSpace g = scalarLag(pole, 0.5);
    auto r = g.freqResponse(0.0);
    EXPECT_NEAR(r(0, 0).real(), g.dcGain()(0, 0), 1e-12);
    EXPECT_NEAR(r(0, 0).imag(), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Poles, FreqDcProperty,
                         ::testing::Values(0.1, 0.5, 0.9, -0.3, 0.99));

}  // namespace
}  // namespace yukta::control
