// Property suite: the batched Hessenberg frequency-response engine
// must agree with the pointwise (dense csolve) oracle to 1e-10
// relative error on every grid point, across random stable systems,
// repeated eigenvalues, and near-singular (zI - A) shifts.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "control/state_space.h"
#include "linalg/cmatrix.h"
#include "linalg/matrix.h"
#include "support/prng.h"

namespace {

using yukta::control::StateSpace;
using yukta::control::logSpacedFrequencies;
using yukta::linalg::CMatrix;
using yukta::linalg::Matrix;
using yukta::testsupport::SplitMix64;
using yukta::testsupport::randomMatrix;
using yukta::testsupport::randomStableContinuous;
using yukta::testsupport::randomStableDiscrete;

/** Largest relative deviation of batch vs the pointwise oracle. */
double
batchVsPointwise(const StateSpace& sys, const std::vector<double>& freqs)
{
    const std::vector<CMatrix> batch = sys.freqResponseBatch(freqs);
    double worst = 0.0;
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        // yukta-lint: allow(freq-loop) pointwise oracle comparison
        const CMatrix ref = sys.freqResponse(freqs[i]);
        const double denom = std::max(ref.maxAbs(), 1.0);
        worst = std::max(worst, (batch[i] - ref).maxAbs() / denom);
    }
    return worst;
}

/** A case grid: log-spaced plus a few uniform draws. */
std::vector<double>
caseGrid(SplitMix64& rng, double hi)
{
    std::vector<double> freqs = logSpacedFrequencies(1e-3, hi, 8);
    for (int i = 0; i < 4; ++i) {
        freqs.push_back(rng.uniform(1e-3, hi));
    }
    return freqs;
}

class FreqBatchProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FreqBatchProperty, RandomStableContinuousSystems)
{
    SplitMix64 rng(GetParam());
    for (int rep = 0; rep < 30; ++rep) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 8));
        const std::size_t m =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        const std::size_t p =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        StateSpace sys(randomStableContinuous(rng, n),
                       randomMatrix(rng, n, m), randomMatrix(rng, p, n),
                       randomMatrix(rng, p, m), 0.0);
        EXPECT_LT(batchVsPointwise(sys, caseGrid(rng, 1e3)), 1e-10)
            << "rep=" << rep;
    }
}

TEST_P(FreqBatchProperty, RandomStableDiscreteSystems)
{
    SplitMix64 rng(GetParam() ^ 0xd15c0u);
    for (int rep = 0; rep < 30; ++rep) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 8));
        const std::size_t m =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        const std::size_t p =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        const double ts = rng.uniform(0.05, 1.0);
        StateSpace sys(randomStableDiscrete(rng, n),
                       randomMatrix(rng, n, m), randomMatrix(rng, p, n),
                       randomMatrix(rng, p, m), ts);
        EXPECT_LT(batchVsPointwise(sys, caseGrid(rng, M_PI / ts)), 1e-10)
            << "rep=" << rep;
    }
}

TEST_P(FreqBatchProperty, RepeatedEigenvalues)
{
    SplitMix64 rng(GetParam() ^ 0x2e9eau);
    for (int rep = 0; rep < 10; ++rep) {
        // Upper-triangular A with one repeated stable eigenvalue:
        // defective (Jordan-like), the classic hard case for
        // similarity-based response evaluation.
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(2, 6));
        const double lambda = rng.uniform(-2.0, -0.2);
        Matrix a(n, n);
        for (std::size_t i = 0; i < n; ++i) {
            a(i, i) = lambda;
            for (std::size_t j = i + 1; j < n; ++j) {
                a(i, j) = rng.uniform(-1.0, 1.0);
            }
        }
        StateSpace sys(a, randomMatrix(rng, n, 2),
                       randomMatrix(rng, 2, n), Matrix(2, 2), 0.0);
        EXPECT_LT(batchVsPointwise(sys, caseGrid(rng, 1e3)), 1e-10)
            << "rep=" << rep;
    }
}

TEST_P(FreqBatchProperty, NearSingularShifts)
{
    SplitMix64 rng(GetParam() ^ 0x51934u);
    for (int rep = 0; rep < 10; ++rep) {
        // Lightly damped resonance: poles at -eps +- j w0. Probing at
        // exactly w0 leaves (jw0 I - A) with condition ~ w0 / eps.
        const double w0 = rng.uniform(0.5, 20.0);
        const double eps = 1e-5;
        Matrix a{{-eps, w0}, {-w0, -eps}};
        Matrix b{{1.0}, {0.5}};
        Matrix c{{1.0, 0.0}};
        StateSpace sys(a, b, c, Matrix(1, 1), 0.0);
        std::vector<double> freqs = caseGrid(rng, 1e3);
        freqs.push_back(w0);
        freqs.push_back(w0 * (1.0 + 1e-7));
        EXPECT_LT(batchVsPointwise(sys, freqs), 1e-10) << "rep=" << rep;
    }
}

TEST(FreqBatch, StaticGainSystems)
{
    Matrix g{{2.0, -1.0}, {0.5, 3.0}};
    StateSpace sys = StateSpace::gain(g);
    const std::vector<double> freqs = {0.1, 1.0, 10.0};
    const std::vector<CMatrix> batch = sys.freqResponseBatch(freqs);
    ASSERT_EQ(batch.size(), freqs.size());
    for (const CMatrix& r : batch) {
        EXPECT_TRUE(r.isApprox(CMatrix(g), 0.0));
    }
}

TEST(FreqBatch, EmptyGridIsEmpty)
{
    Matrix a{{-1.0}};
    StateSpace sys(a, Matrix(1, 1), Matrix(1, 1), Matrix(1, 1), 0.0);
    EXPECT_TRUE(sys.freqResponseBatch({}).empty());
}

TEST(LogSpacedFrequencies, PinsEndpointsExactly)
{
    const double ts = 0.7;
    const double hi = M_PI / ts;
    std::vector<double> w = logSpacedFrequencies(1e-4 / ts, hi, 33);
    ASSERT_EQ(w.size(), 33u);
    EXPECT_EQ(w.front(), 1e-4 / ts);
    EXPECT_EQ(w.back(), hi);
    for (std::size_t i = 1; i < w.size(); ++i) {
        EXPECT_GT(w[i], w[i - 1]);
        EXPECT_LE(w[i], hi);  // never past Nyquist
    }
}

TEST(LogSpacedFrequencies, RejectsBadArguments)
{
    EXPECT_THROW(logSpacedFrequencies(0.0, 1.0, 8), std::invalid_argument);
    EXPECT_THROW(logSpacedFrequencies(2.0, 1.0, 8), std::invalid_argument);
    EXPECT_THROW(logSpacedFrequencies(1.0, 2.0, 1), std::invalid_argument);
    EXPECT_THROW(logSpacedFrequencies(1.0, 2.0, 0), std::invalid_argument);
    EXPECT_EQ(logSpacedFrequencies(3.0, 3.0, 1),
              std::vector<double>{3.0});
}

// 5 seeds x (30 + 30 + 10 + 10) = 400 seeded equivalence cases.
INSTANTIATE_TEST_SUITE_P(Seeds, FreqBatchProperty,
                         ::testing::Values(17u, 29u, 43u, 57u, 71u));

}  // namespace
