// Property-based tests for the control-math layer: Lyapunov/Riccati
// solutions are checked by substituting them back into their defining
// equations, discretization by round-tripping through the bilinear
// map, and minimal realization by shape/Markov-parameter invariants.
// Every case is seeded and replayable (tests/support/prng.h).
#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "control/discretize.h"
#include "control/lyapunov.h"
#include "control/realization.h"
#include "control/riccati.h"
#include "control/state_space.h"
#include "linalg/lu.h"
#include "support/prng.h"

namespace yukta::control {
namespace {

using linalg::Matrix;
using testsupport::SplitMix64;

constexpr int kCases = 200;

/** Max-abs relative residual helper: ||r|| / (1 + ||x||). */
double
relResidual(const Matrix& residual, const Matrix& x)
{
    return residual.maxAbs() / (1.0 + x.maxAbs());
}

TEST(ControlProperty, DlyapSolutionSatisfiesItsEquation)
{
    SplitMix64 rng(0xD1A95EEDull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 6));
        const Matrix a = testsupport::randomStableDiscrete(rng, n);
        const Matrix q = testsupport::randomSymmetric(rng, n, 2.0);
        const Matrix x = dlyap(a, q);
        const Matrix residual = a * x * a.transpose() - x + q;
        EXPECT_LT(relResidual(residual, x), 1e-9) << "case " << c;
        EXPECT_LT((x - x.transpose()).maxAbs(), 1e-9) << "case " << c;
    }
}

TEST(ControlProperty, ClyapSolutionSatisfiesItsEquation)
{
    SplitMix64 rng(0xC1A95EEDull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 6));
        const Matrix a = testsupport::randomStableContinuous(rng, n);
        const Matrix q = testsupport::randomSymmetric(rng, n, 2.0);
        const Matrix x = clyap(a, q);
        const Matrix residual = a * x + x * a.transpose() + q;
        EXPECT_LT(relResidual(residual, x), 1e-8) << "case " << c;
    }
}

TEST(ControlProperty, CareSolutionSatisfiesItsEquation)
{
    SplitMix64 rng(0xCA1E5EEDull);
    int solved = 0;
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 4));
        const std::size_t m =
            static_cast<std::size_t>(rng.uniformInt(1, 2));
        const Matrix a = testsupport::randomStableContinuous(rng, n);
        const Matrix b = testsupport::randomMatrix(rng, n, m);
        const Matrix g = b * b.transpose();
        const Matrix q = testsupport::randomSpd(rng, n, 0.05);

        auto result = care(a, g, q);
        ASSERT_TRUE(result.has_value()) << "case " << c;
        const Matrix& x = result->x;
        const Matrix residual =
            a.transpose() * x + x * a - x * g * x + q;
        EXPECT_LT(relResidual(residual, x), 1e-6) << "case " << c;
        EXPECT_LT((x - x.transpose()).maxAbs(), 1e-6 * (1.0 + x.maxAbs()))
            << "case " << c;
        EXPECT_TRUE(result->stabilizing) << "case " << c;
        ++solved;
    }
    EXPECT_EQ(solved, kCases);
}

TEST(ControlProperty, DareSolutionSatisfiesItsEquation)
{
    SplitMix64 rng(0xDA1E5EEDull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 4));
        const std::size_t m =
            static_cast<std::size_t>(rng.uniformInt(1, 2));
        const Matrix a = testsupport::randomStableDiscrete(rng, n);
        const Matrix b = testsupport::randomMatrix(rng, n, m);
        const Matrix q = testsupport::randomSpd(rng, n, 0.05);
        const Matrix r = testsupport::randomSpd(rng, m, 1.0);

        auto result = dare(a, b, q, r);
        ASSERT_TRUE(result.has_value()) << "case " << c;
        const Matrix& x = result->x;
        const Matrix btxa = b.transpose() * x * a;
        const Matrix gain = linalg::solve(
            r + b.transpose() * x * b, btxa);  // (R+B'XB)^{-1} B'XA
        const Matrix residual = a.transpose() * x * a - x -
                                btxa.transpose() * gain + q;
        EXPECT_LT(relResidual(residual, x), 1e-7) << "case " << c;
        EXPECT_LT((x - x.transpose()).maxAbs(), 1e-7 * (1.0 + x.maxAbs()))
            << "case " << c;
    }
}

TEST(ControlProperty, TustinDiscretizeThenInverseRoundTrips)
{
    SplitMix64 rng(0x7057151Eull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 5));
        const std::size_t m =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        const std::size_t p =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        StateSpace sys(testsupport::randomStableContinuous(rng, n),
                       testsupport::randomMatrix(rng, n, m),
                       testsupport::randomMatrix(rng, p, n),
                       testsupport::randomMatrix(rng, p, m));
        const double ts = rng.uniform(0.1, 1.0);

        const StateSpace disc = c2d(sys, ts);
        EXPECT_TRUE(disc.isDiscrete()) << "case " << c;
        EXPECT_EQ(disc.numStates(), n);
        EXPECT_EQ(disc.numInputs(), m);
        EXPECT_EQ(disc.numOutputs(), p);

        const StateSpace back = d2c(disc);
        EXPECT_TRUE(back.isContinuous()) << "case " << c;
        const double tol = 1e-8;
        EXPECT_LT((back.a - sys.a).maxAbs(), tol) << "case " << c;
        EXPECT_LT((back.b - sys.b).maxAbs(), tol) << "case " << c;
        EXPECT_LT((back.c - sys.c).maxAbs(), tol) << "case " << c;
        EXPECT_LT((back.d - sys.d).maxAbs(), tol) << "case " << c;
    }
}

/** Markov parameter h_k = C A^(k-1) B (k >= 1) of a discrete system. */
Matrix
markov(const StateSpace& sys, int k)
{
    Matrix an = Matrix::identity(sys.numStates());
    for (int i = 1; i < k; ++i) {
        an = an * sys.a;
    }
    return sys.c * an * sys.b;
}

TEST(ControlProperty, MinimalRealizationStripsDisconnectedStates)
{
    SplitMix64 rng(0x31415926ull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 4));
        const std::size_t extra =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        const std::size_t m =
            static_cast<std::size_t>(rng.uniformInt(1, 2));
        const std::size_t p =
            static_cast<std::size_t>(rng.uniformInt(1, 2));

        StateSpace core(testsupport::randomStableDiscrete(rng, n),
                        testsupport::randomMatrix(rng, n, m),
                        testsupport::randomMatrix(rng, p, n),
                        testsupport::randomMatrix(rng, p, m), 0.5);

        // Augment with states that neither see the input nor reach
        // the output: they must not survive minimal realization.
        const std::size_t big = n + extra;
        Matrix a2(big, big);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                a2(i, j) = core.a(i, j);
            }
        }
        const Matrix junk = testsupport::randomStableDiscrete(rng, extra);
        for (std::size_t i = 0; i < extra; ++i) {
            for (std::size_t j = 0; j < extra; ++j) {
                a2(n + i, n + j) = junk(i, j);
            }
        }
        Matrix b2(big, m);
        Matrix c2(p, big);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < m; ++j) {
                b2(i, j) = core.b(i, j);
            }
            for (std::size_t j = 0; j < p; ++j) {
                c2(j, i) = core.c(j, i);
            }
        }
        const StateSpace padded(a2, b2, c2, core.d, 0.5);

        const StateSpace minimal = minimalRealization(padded);
        EXPECT_LE(minimal.numStates(), n) << "case " << c;
        EXPECT_EQ(minimal.numInputs(), m) << "case " << c;
        EXPECT_EQ(minimal.numOutputs(), p) << "case " << c;
        EXPECT_TRUE(isControllable(minimal)) << "case " << c;
        EXPECT_TRUE(isObservable(minimal)) << "case " << c;

        // Same input/output behavior: D and the first Markov
        // parameters must match the unpadded system.
        EXPECT_LT((minimal.d - core.d).maxAbs(), 1e-8) << "case " << c;
        for (int k = 1; k <= 6; ++k) {
            EXPECT_LT((markov(minimal, k) - markov(core, k)).maxAbs(),
                      1e-6 * (1.0 + markov(core, k).maxAbs()))
                << "case " << c << " k=" << k;
        }
    }
}

}  // namespace
}  // namespace yukta::control
