// Tests for discretize, lyapunov, riccati, lqg, and balance.
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "control/balance.h"
#include "control/discretize.h"
#include "control/lqg.h"
#include "control/lyapunov.h"
#include "control/riccati.h"
#include "linalg/eig.h"
#include "linalg/test_util.h"

namespace yukta::control {
namespace {

using linalg::Matrix;

TEST(Discretize, RoundTripRecoversSystem)
{
    Matrix a{{-1.0, 0.5}, {0.0, -2.0}};
    Matrix b{{1.0}, {0.5}};
    Matrix c{{1.0, 0.0}};
    Matrix d{{0.1}};
    StateSpace g(a, b, c, d);
    StateSpace gd = c2d(g, 0.5);
    StateSpace gc = d2c(gd);
    EXPECT_TRUE(gc.a.isApprox(a, 1e-9));
    EXPECT_TRUE(gc.b.isApprox(b, 1e-9));
    EXPECT_TRUE(gc.c.isApprox(c, 1e-9));
    EXPECT_TRUE(gc.d.isApprox(d, 1e-9));
}

TEST(Discretize, PreservesDcGain)
{
    StateSpace g(Matrix{{-2.0}}, Matrix{{4.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    StateSpace gd = c2d(g, 0.1);
    EXPECT_NEAR(gd.dcGain()(0, 0), g.dcGain()(0, 0), 1e-10);
}

TEST(Discretize, BilinearMapsFrequencyWithWarping)
{
    // At w, the Tustin map evaluates G at w' = (2/Ts) tan(w Ts / 2).
    StateSpace g(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    double ts = 0.2;
    StateSpace gd = c2d(g, ts);
    double w = 3.0;
    double warped = 2.0 / ts * std::tan(w * ts / 2.0);
    auto rd = gd.freqResponse(w);
    auto rc = g.freqResponse(warped);
    EXPECT_NEAR(std::abs(rd(0, 0) - rc(0, 0)), 0.0, 1e-10);
}

TEST(Discretize, StabilityPreserved)
{
    StateSpace g(Matrix{{-0.5, 1.0}, {-1.0, -0.5}}, Matrix{{1.0}, {0.0}},
                 Matrix{{1.0, 0.0}}, Matrix{{0.0}});
    EXPECT_TRUE(g.isStable());
    EXPECT_TRUE(c2d(g, 1.0).isStable());
}

TEST(Discretize, ArgumentValidation)
{
    StateSpace cont(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                    Matrix{{0.0}});
    EXPECT_THROW(c2d(cont, 0.0), std::invalid_argument);
    EXPECT_THROW(d2c(cont), std::invalid_argument);
    StateSpace disc = c2d(cont, 1.0);
    EXPECT_THROW(c2d(disc, 1.0), std::invalid_argument);
}

TEST(Lyapunov, DlyapSolvesEquation)
{
    Matrix a{{0.5, 0.2}, {0.0, 0.3}};
    Matrix q = test::randomSpd(2, 60);
    Matrix x = dlyap(a, q);
    Matrix resid = a * x * a.transpose() - x + q;
    EXPECT_LT(resid.maxAbs(), 1e-10);
}

TEST(Lyapunov, DlyapRejectsUnstable)
{
    Matrix a{{1.5}};
    EXPECT_THROW(dlyap(a, Matrix{{1.0}}), std::runtime_error);
}

TEST(Lyapunov, ClyapSolvesEquation)
{
    Matrix a{{-1.0, 0.4}, {0.0, -0.5}};
    Matrix q = test::randomSpd(2, 61);
    Matrix x = clyap(a, q);
    Matrix resid = a * x + x * a.transpose() + q;
    EXPECT_LT(resid.maxAbs(), 1e-10);
}

TEST(Riccati, CareScalarKnownSolution)
{
    // a=1, g=1, q=2: x^2 - 2x - 2 = 0 -> x = 1 + sqrt(3).
    auto res = care(Matrix{{1.0}}, Matrix{{1.0}}, Matrix{{2.0}});
    ASSERT_TRUE(res.has_value());
    EXPECT_NEAR(res->x(0, 0), 1.0 + std::sqrt(3.0), 1e-9);
    EXPECT_TRUE(res->stabilizing);
}

TEST(Riccati, CareResidualSmallOnRandomStabilizable)
{
    for (unsigned seed : {70u, 71u, 72u}) {
        int n = 4;
        Matrix a = test::randomMatrix(n, n, seed);
        Matrix b = test::randomMatrix(n, 2, seed + 10);
        Matrix g = b * b.transpose();
        Matrix q = test::randomSpd(n, seed + 20);
        auto res = care(a, g, q);
        ASSERT_TRUE(res.has_value()) << "seed " << seed;
        EXPECT_LT(res->residual, 1e-6 * (1.0 + res->x.maxAbs()));
        EXPECT_TRUE(res->stabilizing);
        EXPECT_TRUE(linalg::isPositiveSemidefinite(res->x, 1e-6));
    }
}

TEST(Riccati, DareScalarKnownSolution)
{
    // a=1, b=1, q=1, r=1: x = 1 + x - x^2/(1+x) -> x = (1+sqrt(5))/2.
    auto res = dare(Matrix{{1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                    Matrix{{1.0}});
    ASSERT_TRUE(res.has_value());
    EXPECT_NEAR(res->x(0, 0), (1.0 + std::sqrt(5.0)) / 2.0, 1e-9);
}

TEST(Riccati, DareResidualSmallOnRandom)
{
    for (unsigned seed : {80u, 81u, 82u}) {
        int n = 5;
        Matrix a = 0.9 * test::randomMatrix(n, n, seed);
        Matrix b = test::randomMatrix(n, 2, seed + 10);
        Matrix q = test::randomSpd(n, seed + 20);
        Matrix r = Matrix::identity(2);
        auto res = dare(a, b, q, r);
        ASSERT_TRUE(res.has_value()) << "seed " << seed;
        EXPECT_LT(res->residual, 1e-7 * (1.0 + res->x.maxAbs()));
        EXPECT_TRUE(res->stabilizing);
    }
}

TEST(Lqr, StabilizesUnstablePlant)
{
    Matrix a{{1.2, 0.1}, {0.0, 0.8}};
    Matrix b{{1.0}, {0.5}};
    auto k = dlqr(a, b, Matrix::identity(2), Matrix::identity(1));
    ASSERT_TRUE(k.has_value());
    Matrix acl = a - b * (*k);
    EXPECT_LT(linalg::spectralRadius(acl), 1.0);
}

TEST(Kalman, GainStabilizesObserver)
{
    Matrix a{{0.95, 0.2}, {0.0, 0.85}};
    Matrix c{{1.0, 0.0}};
    auto kg = kalman(a, c, Matrix::identity(2), Matrix::identity(1));
    ASSERT_TRUE(kg.has_value());
    Matrix aobs = a - kg->l_pred * c;
    EXPECT_LT(linalg::spectralRadius(aobs), 1.0);
    EXPECT_TRUE(linalg::isPositiveSemidefinite(kg->p, 1e-7));
}

TEST(Lqg, ClosedLoopStable)
{
    // Unstable SISO plant; LQG must stabilize it.
    Matrix a{{1.05, 0.3}, {0.0, 0.7}};
    Matrix b{{0.5}, {1.0}};
    Matrix c{{1.0, 0.5}};
    Matrix d{{0.0}};
    StateSpace plant(a, b, c, d, 1.0);
    auto ctrl = lqgSynthesize(plant, LqgWeights{});
    ASSERT_TRUE(ctrl.has_value());

    // Closed loop: x+ = Ax + B u, u = K(y), y = Cx (negative feedback
    // is baked into the controller's -K xhat).
    std::size_t n = 2;
    std::size_t nk = ctrl->numStates();
    Matrix acl(n + nk, n + nk);
    acl.setBlock(0, 0, a + b * ctrl->d * c);
    acl.setBlock(0, n, b * ctrl->c);
    acl.setBlock(n, 0, ctrl->b * c);
    acl.setBlock(n, n, ctrl->a);
    EXPECT_LT(linalg::spectralRadius(acl), 1.0);
}

TEST(Balance, TruncationKeepsDcGainApproximately)
{
    // Build a stable 6-state system with rapidly decaying modes.
    Matrix a = Matrix::diag({0.9, 0.5, 0.3, 0.1, 0.05, 0.01});
    Matrix b = test::randomMatrix(6, 1, 90);
    Matrix c = test::randomMatrix(1, 6, 91);
    StateSpace g(a, b, c, Matrix(1, 1), 1.0);
    auto red = balancedTruncate(g, 3);
    EXPECT_LE(red.sys.numStates(), 3u);
    EXPECT_TRUE(red.sys.isStable());
    EXPECT_NEAR(red.sys.dcGain()(0, 0), g.dcGain()(0, 0),
                0.05 * std::abs(g.dcGain()(0, 0)) + 0.05);
    // Hankel singular values descending.
    for (std::size_t i = 1; i < red.hsv.size(); ++i) {
        EXPECT_LE(red.hsv[i], red.hsv[i - 1] + 1e-12);
    }
}

TEST(Balance, NoopWhenOrderSufficient)
{
    StateSpace g(Matrix{{0.5}}, Matrix{{1.0}}, Matrix{{1.0}}, Matrix{{0.0}},
                 1.0);
    auto red = balancedTruncate(g, 5);
    EXPECT_EQ(red.sys.numStates(), 1u);
}

TEST(Balance, RejectsContinuous)
{
    StateSpace g(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    EXPECT_THROW(balancedTruncate(g, 1), std::invalid_argument);
}

/** Property: DARE cost matrix grows with Q scaling. */
class DareMonotoneProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(DareMonotoneProperty, CostIncreasesWithQ)
{
    double scale = GetParam();
    Matrix a{{0.9, 0.2}, {0.0, 0.7}};
    Matrix b{{1.0}, {0.3}};
    auto x1 = dare(a, b, Matrix::identity(2), Matrix::identity(1));
    auto x2 = dare(a, b, scale * Matrix::identity(2), Matrix::identity(1));
    ASSERT_TRUE(x1 && x2);
    // X2 - X1 should be PSD when scale >= 1.
    EXPECT_TRUE(linalg::isPositiveSemidefinite(x2->x - x1->x, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Scales, DareMonotoneProperty,
                         ::testing::Values(1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace yukta::control
