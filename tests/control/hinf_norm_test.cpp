#include "control/hinf_norm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "control/discretize.h"
#include "linalg/eig.h"
#include "linalg/svd.h"
#include "linalg/test_util.h"

namespace yukta::control {
namespace {

using linalg::Matrix;

TEST(HinfNormExact, FirstOrderDcPeak)
{
    // G(s) = 3/(s+1): norm 3 at DC.
    StateSpace g(Matrix{{-1.0}}, Matrix{{3.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    EXPECT_NEAR(hinfNormExact(g), 3.0, 1e-5);
}

TEST(HinfNormExact, ResonantPeakAnalytic)
{
    // Second-order resonance: peak = 1 / (2 zeta sqrt(1 - zeta^2)).
    double zeta = 0.02;
    Matrix a{{0.0, 1.0}, {-1.0, -2.0 * zeta}};
    Matrix b{{0.0}, {1.0}};
    Matrix c{{1.0, 0.0}};
    StateSpace g(a, b, c, Matrix(1, 1));
    double expect = 1.0 / (2.0 * zeta * std::sqrt(1.0 - zeta * zeta));
    // The sweep in robust/hinf.h can clip such a narrow peak; the
    // Hamiltonian bisection must nail it.
    EXPECT_NEAR(hinfNormExact(g, 1e-8), expect, 1e-3 * expect);
}

TEST(HinfNormExact, FeedthroughOnly)
{
    StateSpace g(Matrix{{-1.0}}, Matrix{{0.0}}, Matrix{{1.0}},
                 Matrix{{2.5}});
    EXPECT_NEAR(hinfNormExact(g), 2.5, 1e-4);
}

TEST(HinfNormExact, DiscreteViaBilinear)
{
    // Discrete lag with DC gain 4.
    StateSpace g(Matrix{{0.5}}, Matrix{{2.0}}, Matrix{{1.0}}, Matrix{{0.0}},
                 0.5);
    EXPECT_NEAR(hinfNormExact(g), 4.0, 1e-4);
}

TEST(HinfNormExact, RejectsUnstable)
{
    StateSpace g(Matrix{{0.5}}, Matrix{{1.0}}, Matrix{{1.0}}, Matrix{{0.0}});
    EXPECT_THROW(hinfNormExact(g), std::invalid_argument);
}

TEST(HinfNormExact, HamiltonianTestBrackets)
{
    StateSpace g(Matrix{{-1.0}}, Matrix{{3.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    // Below the norm: crossing exists; above: none.
    EXPECT_TRUE(gammaHamiltonianHasImaginaryEigenvalue(g, 2.0));
    EXPECT_FALSE(gammaHamiltonianHasImaginaryEigenvalue(g, 3.5));
}

/** Property: exact norm >= sigma_max at any sampled frequency. */
class HinfNormProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HinfNormProperty, DominatesSampledResponse)
{
    unsigned seed = GetParam();
    // Random stable 4-state MIMO system: shift A left of the axis.
    Matrix raw = test::randomMatrix(4, 4, seed);
    double shift = linalg::spectralAbscissa(raw) + 0.3;
    Matrix a = raw - shift * Matrix::identity(4);
    StateSpace g(a, test::randomMatrix(4, 2, seed + 1),
                 test::randomMatrix(2, 4, seed + 2), Matrix(2, 2), 0.0);
    ASSERT_TRUE(g.isStable());
    double norm = hinfNormExact(g, 1e-7);
    for (double w : {0.0, 0.05, 0.3, 1.0, 3.0, 10.0, 50.0}) {
        // yukta-lint: allow(freq-loop) pointwise oracle comparison
        double s = linalg::sigmaMax(g.freqResponse(w));
        EXPECT_LE(s, norm * (1.0 + 1e-5)) << "w=" << w;
    }
    // And the norm is actually attained somewhere near the sweep max.
    double sweep = 0.0;
    for (int i = 0; i <= 400; ++i) {
        double w = std::pow(10.0, -3.0 + 6.0 * i / 400.0);
        // yukta-lint: allow(freq-loop) pointwise oracle comparison
        sweep = std::max(sweep, linalg::sigmaMax(g.freqResponse(w)));
    }
    sweep = std::max(sweep, linalg::sigmaMax(g.dcGain()));
    EXPECT_NEAR(norm, sweep, 0.02 * norm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HinfNormProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace yukta::control
