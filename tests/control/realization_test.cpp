// Tests for realization analysis and ZOH discretization.
#include <cmath>

#include <gtest/gtest.h>

#include "control/discretize.h"
#include "control/realization.h"
#include "linalg/expm.h"
#include "linalg/test_util.h"

namespace yukta::control {
namespace {

using linalg::Matrix;

TEST(Realization, ControllabilityMatrixShape)
{
    StateSpace sys(Matrix::identity(3) * 0.5, test::randomMatrix(3, 2, 1),
                   test::randomMatrix(1, 3, 2), Matrix(1, 2), 1.0);
    Matrix ctrb = controllabilityMatrix(sys);
    EXPECT_EQ(ctrb.rows(), 3u);
    EXPECT_EQ(ctrb.cols(), 6u);
    Matrix obsv = observabilityMatrix(sys);
    EXPECT_EQ(obsv.rows(), 3u);
    EXPECT_EQ(obsv.cols(), 3u);
}

TEST(Realization, DetectsUncontrollableMode)
{
    // Second state is driven by nothing.
    Matrix a{{0.5, 0.0}, {0.0, 0.3}};
    Matrix b{{1.0}, {0.0}};
    Matrix c{{1.0, 1.0}};
    StateSpace sys(a, b, c, Matrix(1, 1), 1.0);
    EXPECT_FALSE(isControllable(sys));
    EXPECT_TRUE(isObservable(sys));
}

TEST(Realization, DetectsUnobservableMode)
{
    Matrix a{{0.5, 0.0}, {0.0, 0.3}};
    Matrix b{{1.0}, {1.0}};
    Matrix c{{1.0, 0.0}};
    StateSpace sys(a, b, c, Matrix(1, 1), 1.0);
    EXPECT_TRUE(isControllable(sys));
    EXPECT_FALSE(isObservable(sys));
}

TEST(Realization, FullRankOnGenericSystem)
{
    StateSpace sys(0.5 * test::randomMatrix(4, 4, 3),
                   test::randomMatrix(4, 2, 4),
                   test::randomMatrix(2, 4, 5), Matrix(2, 2), 1.0);
    EXPECT_TRUE(isControllable(sys));
    EXPECT_TRUE(isObservable(sys));
}

TEST(Realization, NumericalRankOnRankDeficient)
{
    Matrix u = test::randomMatrix(5, 2, 6);
    Matrix v = test::randomMatrix(2, 5, 7);
    EXPECT_EQ(numericalRank(u * v), 2u);
    EXPECT_EQ(numericalRank(Matrix(3, 3)), 0u);
}

TEST(Realization, MinimalRealizationRemovesHiddenModes)
{
    // Augment a 1-state system with an uncontrollable decoupled state.
    Matrix a{{0.5, 0.0}, {0.0, 0.9}};
    Matrix b{{1.0}, {0.0}};
    Matrix c{{2.0, 0.0}};
    StateSpace sys(a, b, c, Matrix(1, 1), 1.0);
    StateSpace min = minimalRealization(sys, 1e-8);
    EXPECT_EQ(min.numStates(), 1u);
    // Transfer behaviour preserved.
    EXPECT_NEAR(min.dcGain()(0, 0), sys.dcGain()(0, 0), 1e-8);
    for (double w : {0.2, 1.0, 2.5}) {
        // yukta-lint: allow(freq-loop) pointwise oracle comparison
        EXPECT_NEAR(std::abs(min.freqResponse(w)(0, 0) -  // yukta-lint: allow(freq-loop)
                             sys.freqResponse(w)(0, 0)),
                    0.0, 1e-8);
    }
}

TEST(Zoh, MatchesAnalyticFirstOrder)
{
    // dx = -a x + u: Ad = e^{-a ts}, Bd = (1 - e^{-a ts}) / a.
    double a = 2.0;
    double ts = 0.3;
    StateSpace sys(Matrix{{-a}}, Matrix{{1.0}}, Matrix{{1.0}},
                   Matrix{{0.0}});
    StateSpace d = c2dZoh(sys, ts);
    EXPECT_NEAR(d.a(0, 0), std::exp(-a * ts), 1e-12);
    EXPECT_NEAR(d.b(0, 0), (1.0 - std::exp(-a * ts)) / a, 1e-12);
    EXPECT_DOUBLE_EQ(d.ts, ts);
}

TEST(Zoh, ExactForPiecewiseConstantInput)
{
    // Simulating the ZOH discretization step-by-step must match the
    // continuous solution at the sample points.
    Matrix a{{-0.5, 1.0}, {-1.0, -0.5}};
    Matrix b{{0.0}, {1.0}};
    Matrix c{{1.0, 0.0}};
    StateSpace sys(a, b, c, Matrix(1, 1));
    double ts = 0.25;
    StateSpace d = c2dZoh(sys, ts);

    // Continuous propagation over one period with constant u = 1:
    // x+ = e^{A ts} x + (int e^{A s} ds) B.
    linalg::Vector x{0.3, -0.2};
    linalg::Vector xd = x;
    linalg::Vector u{1.0};
    // Reference by fine Euler integration.
    linalg::Vector xc = x;
    int fine = 20000;
    for (int i = 0; i < fine; ++i) {
        linalg::Vector dx = a * xc + b * u;
        xc += (ts / fine) * dx;
    }
    stepOnce(d, xd, u);
    EXPECT_TRUE(xd.isApprox(xc, 1e-4));
}

TEST(Zoh, DcGainPreserved)
{
    StateSpace sys(Matrix{{-1.0, 0.3}, {0.0, -2.0}},
                   Matrix{{1.0}, {0.5}}, Matrix{{1.0, 1.0}}, Matrix(1, 1));
    StateSpace d = c2dZoh(sys, 0.5);
    EXPECT_NEAR(d.dcGain()(0, 0), sys.dcGain()(0, 0), 1e-10);
}

TEST(Zoh, Validation)
{
    StateSpace cont(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                    Matrix{{0.0}});
    EXPECT_THROW(c2dZoh(cont, 0.0), std::invalid_argument);
    StateSpace disc = c2dZoh(cont, 0.5);
    EXPECT_THROW(c2dZoh(disc, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace yukta::control
