#include "control/interconnect.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/test_util.h"

namespace yukta::control {
namespace {

using linalg::Complex;
using linalg::Matrix;

StateSpace
lag(double pole, double gain, double ts)
{
    return StateSpace(Matrix{{pole}}, Matrix{{gain * (1.0 - pole)}},
                      Matrix{{1.0}}, Matrix{{0.0}}, ts);
}

/** Frequency-domain check helper: compares responses at several w. */
void
expectSameResponse(const StateSpace& g1, const StateSpace& g2, double tol)
{
    for (double w : {0.0, 0.1, 0.5, 1.0, 2.0}) {
        auto r1 = g1.freqResponse(w);  // yukta-lint: allow(freq-loop)
        auto r2 = g2.freqResponse(w);  // yukta-lint: allow(freq-loop)
        ASSERT_EQ(r1.rows(), r2.rows());
        ASSERT_EQ(r1.cols(), r2.cols());
        EXPECT_TRUE(r1.isApprox(r2, tol)) << "at w=" << w;
    }
}

TEST(Series, GainComposition)
{
    StateSpace g1 = lag(0.5, 2.0, 1.0);
    StateSpace g2 = lag(0.3, 3.0, 1.0);
    StateSpace s = series(g1, g2);
    EXPECT_EQ(s.numStates(), 2u);
    EXPECT_NEAR(s.dcGain()(0, 0), 6.0, 1e-10);
}

TEST(Series, FrequencyDomainMatchesProduct)
{
    StateSpace g1 = lag(0.6, 1.5, 1.0);
    StateSpace g2 = lag(0.2, 0.7, 1.0);
    StateSpace s = series(g1, g2);
    for (double w : {0.1, 0.7, 2.0}) {
        // yukta-lint: allow(freq-loop) pointwise oracle comparison
        auto prod = g2.freqResponse(w) * g1.freqResponse(w);
        // yukta-lint: allow(freq-loop) pointwise oracle comparison
        EXPECT_TRUE(s.freqResponse(w).isApprox(prod, 1e-10));
    }
}

TEST(Series, PortMismatchThrows)
{
    StateSpace g1 = StateSpace::gain(Matrix(2, 1), 1.0);
    StateSpace g2 = StateSpace::gain(Matrix(1, 1), 1.0);
    EXPECT_THROW(series(g1, g2), std::invalid_argument);
}

TEST(Series, TimebaseMismatchThrows)
{
    EXPECT_THROW(series(lag(0.5, 1.0, 1.0), lag(0.5, 1.0, 0.5)),
                 std::invalid_argument);
}

TEST(Parallel, AddsGains)
{
    StateSpace p = parallel(lag(0.5, 2.0, 1.0), lag(0.3, 3.0, 1.0));
    EXPECT_NEAR(p.dcGain()(0, 0), 5.0, 1e-10);
}

TEST(Append, BlockDiagonalPorts)
{
    StateSpace a = append(lag(0.5, 2.0, 1.0), lag(0.3, 3.0, 1.0));
    EXPECT_EQ(a.numInputs(), 2u);
    EXPECT_EQ(a.numOutputs(), 2u);
    Matrix dc = a.dcGain();
    EXPECT_NEAR(dc(0, 0), 2.0, 1e-10);
    EXPECT_NEAR(dc(1, 1), 3.0, 1e-10);
    EXPECT_NEAR(dc(0, 1), 0.0, 1e-12);
}

TEST(Feedback, UnityFeedbackDcGain)
{
    // G with DC gain 4 under unity feedback: T = 4/5. (This discrete
    // loop is high-gain and genuinely unstable; only DC is checked.)
    StateSpace g = lag(0.5, 4.0, 1.0);
    StateSpace k = StateSpace::gain(Matrix::identity(1), 1.0);
    StateSpace t = feedback(g, k);
    EXPECT_NEAR(t.dcGain()(0, 0), 0.8, 1e-10);
}

TEST(Feedback, LowGainLoopStable)
{
    // G(z) = 0.4/(z - 0.5): closed-loop pole at 0.1.
    StateSpace g = lag(0.5, 0.8, 1.0);
    StateSpace k = StateSpace::gain(Matrix::identity(1), 1.0);
    StateSpace t = feedback(g, k);
    EXPECT_TRUE(t.isStable());
    EXPECT_NEAR(t.poles()[0].real(), 0.1, 1e-10);
}

TEST(Feedback, MatchesFrequencyDomainFormula)
{
    StateSpace g = lag(0.7, 2.0, 1.0);
    StateSpace k = lag(0.4, 1.5, 1.0);
    StateSpace t = feedback(g, k);
    for (double w : {0.0, 0.3, 1.0, 2.5}) {
        // yukta-lint: allow(freq-loop) pointwise oracle comparison
        Complex lw = (g.freqResponse(w) * k.freqResponse(w))(0, 0);
        Complex expect = lw / (Complex(1.0, 0.0) + lw);
        // yukta-lint: allow(freq-loop) pointwise oracle comparison
        EXPECT_NEAR(std::abs(t.freqResponse(w)(0, 0) - expect), 0.0, 1e-10);
    }
}

TEST(Feedback, IllPosedThrows)
{
    // G = -1 static gain with unity feedback: I + D = 0.
    StateSpace g = StateSpace::gain(Matrix{{-1.0}}, 1.0);
    StateSpace k = StateSpace::gain(Matrix::identity(1), 1.0);
    EXPECT_THROW(feedback(g, k), std::runtime_error);
}

TEST(LftLower, IdentityPlantPassthrough)
{
    // P = [0 I; I 0] (z = u, y = w): closing with K makes w -> z = K w.
    Matrix d{{0.0, 1.0}, {1.0, 0.0}};
    StateSpace p = StateSpace::gain(d, 1.0);
    StateSpace k = lag(0.5, 2.0, 1.0);
    StateSpace cl = lftLower(p, k, 1, 1);
    expectSameResponse(cl, k, 1e-10);
}

TEST(LftLower, RecoversFeedbackLoop)
{
    // Standard tracking setup: z = r - G u, y = r - G u.
    // Closing with K: z = (I + GK)^{-1} r  (sensitivity).
    StateSpace g = lag(0.5, 4.0, 1.0);
    std::size_t n = g.numStates();
    Matrix a = g.a;
    Matrix b = hstack(Matrix::zeros(n, 1), g.b);
    Matrix c = vstack(-1.0 * g.c, -1.0 * g.c);
    Matrix d{{1.0, 0.0}, {1.0, 0.0}};
    StateSpace p(a, b, c, d, 1.0);

    StateSpace k = StateSpace::gain(Matrix::identity(1), 1.0);
    StateSpace cl = lftLower(p, k, 1, 1);

    // Expected sensitivity: 1 / (1 + G).
    for (double w : {0.0, 0.2, 1.0}) {
        Complex gw = g.freqResponse(w)(0, 0);  // yukta-lint: allow(freq-loop)
        Complex expect = Complex(1.0, 0.0) / (Complex(1.0, 0.0) + gw);
        // yukta-lint: allow(freq-loop) pointwise oracle comparison
        EXPECT_NEAR(std::abs(cl.freqResponse(w)(0, 0) - expect), 0.0, 1e-10);
    }
}

TEST(LftLower, PortMismatchThrows)
{
    StateSpace p = StateSpace::gain(Matrix(2, 2), 1.0);
    StateSpace k = StateSpace::gain(Matrix(2, 1), 1.0);
    EXPECT_THROW(lftLower(p, k, 1, 1), std::invalid_argument);
    EXPECT_THROW(lftLower(p, k, 3, 1), std::invalid_argument);
}

TEST(LftUpper, ClosingWithZeroDeltaKeepsNominal)
{
    // P: 2x2 static plant; Delta = 0 gives the (2,2) block w -> z.
    Matrix d{{0.1, 0.2}, {0.3, 0.4}};
    StateSpace p = StateSpace::gain(d, 1.0);
    StateSpace zero = StateSpace::gain(Matrix(1, 1), 1.0);
    StateSpace cl = lftUpper(p, zero, 1, 1);
    EXPECT_NEAR(cl.dcGain()(0, 0), 0.4, 1e-12);
}

TEST(LftUpper, MatchesManualFormulaStaticCase)
{
    // Static LFT: F_u(P, D) = P22 + P21 D (I - P11 D)^{-1} P12.
    Matrix d{{0.5, 0.2}, {0.3, 0.4}};
    StateSpace p = StateSpace::gain(d, 1.0);
    double delta = 0.6;
    StateSpace ds = StateSpace::gain(Matrix{{delta}}, 1.0);
    StateSpace cl = lftUpper(p, ds, 1, 1);
    double expect = 0.4 + 0.3 * delta / (1.0 - 0.5 * delta) * 0.2;
    EXPECT_NEAR(cl.dcGain()(0, 0), expect, 1e-12);
}

}  // namespace
}  // namespace yukta::control
