#include "platform/board.h"

#include <cmath>

#include <gtest/gtest.h>

#include "platform/apps.h"

namespace yukta::platform {
namespace {

Board
makeBoard(const std::string& app = "blackscholes")
{
    return Board(BoardConfig::odroidXu3(), Workload(AppCatalog::get(app)), 3);
}

TEST(Board, TimeAndEnergyAdvance)
{
    Board b = makeBoard();
    b.run(1.0);
    EXPECT_NEAR(b.elapsed(), 1.0, 1e-9);
    EXPECT_GT(b.energy(), 0.0);
    EXPECT_GT(b.energyDelay(), 0.0);
    EXPECT_FALSE(b.done());
}

TEST(Board, HardwareInputsQuantizedAndClamped)
{
    Board b = makeBoard();
    HardwareInputs in;
    in.big_cores = 9;
    in.little_cores = 0;
    in.freq_big = 1.73;
    in.freq_little = 5.0;
    b.applyHardwareInputs(in);
    const HardwareInputs& req = b.requestedHardware();
    EXPECT_EQ(req.big_cores, 4u);
    EXPECT_EQ(req.little_cores, 1u);
    EXPECT_DOUBLE_EQ(req.freq_big, 1.7);
    EXPECT_DOUBLE_EQ(req.freq_little, 1.4);
}

TEST(Board, LowerFrequencyLowersPowerAndPerformance)
{
    Board fast = makeBoard();
    Board slow = makeBoard();
    HardwareInputs in;
    in.freq_big = 2.0;
    in.freq_little = 1.4;
    fast.applyHardwareInputs(in);
    in.freq_big = 0.6;
    in.freq_little = 0.4;
    slow.applyHardwareInputs(in);
    fast.run(5.0);
    slow.run(5.0);
    EXPECT_GT(fast.energy(), slow.energy());
    EXPECT_GT(fast.perfCounters().total(), slow.perfCounters().total());
}

TEST(Board, PerfScalesWithThreadPlacement)
{
    // All 8 threads on the big cluster vs all on little: big wins.
    Board big_all = makeBoard("gamess");
    Board little_all = makeBoard("gamess");
    big_all.applyPlacementPolicy({8.0, 2.0, 1.0});
    little_all.applyPlacementPolicy({0.0, 1.0, 2.0});
    big_all.run(5.0);
    little_all.run(5.0);
    EXPECT_GT(big_all.perfCounters().instr_big, 1.0);
    EXPECT_GT(little_all.perfCounters().instr_little, 1.0);
    EXPECT_GT(big_all.perfCounters().total(),
              1.5 * little_all.perfCounters().total());
}

TEST(Board, SensorsLagTruth)
{
    Board b = makeBoard();
    b.run(0.1);  // less than one sensor window
    EXPECT_DOUBLE_EQ(b.sensedPowerBig(), 0.0);
    b.run(0.3);
    EXPECT_GT(b.sensedPowerBig(), 0.0);
}

TEST(Board, EmergencyEngagesAtMaxSettings)
{
    // Full throttle on a compute-heavy app must trip the power
    // emergency within a couple of seconds (that is what the
    // Decoupled heuristic leans on).
    Board b = makeBoard("gamess");
    HardwareInputs in;
    in.freq_big = 2.0;
    in.freq_little = 1.4;
    b.applyHardwareInputs(in);
    b.applyPlacementPolicy({8.0, 2.0, 1.0});
    b.run(4.0);
    EXPECT_GT(b.emergencyTime(), 0.0);
    // The applied frequency should have been capped below the request.
    EXPECT_LT(b.appliedHardware().freq_big, 2.0);
}

TEST(Board, SafeOperatingPointStaysCalm)
{
    Board b = makeBoard("streamcluster");
    HardwareInputs in;
    in.freq_big = 0.8;
    in.freq_little = 0.6;
    b.applyHardwareInputs(in);
    b.run(5.0);
    EXPECT_DOUBLE_EQ(b.emergencyTime(), 0.0);
    EXPECT_LT(b.truePowerBig(), b.config().power_limit_big);
}

TEST(Board, WorkloadRunsToCompletion)
{
    // Tiny custom app finishes quickly.
    AppModel tiny;
    tiny.name = "tiny";
    tiny.ipc_big = 2.0;
    tiny.ipc_little = 1.0;
    AppPhase ph;
    ph.num_threads = 2;
    ph.work_per_thread = 1.0;  // 1 giga-instruction
    tiny.phases = {ph};
    Board b(BoardConfig::odroidXu3(), Workload(tiny), 3);
    b.run(60.0);
    EXPECT_TRUE(b.done());
    double t_done = b.elapsed();
    // run() past completion is a no-op.
    b.run(1.0);
    EXPECT_DOUBLE_EQ(b.elapsed(), t_done);
}

TEST(Board, ThreadCountTracksPhases)
{
    Board b = makeBoard("blackscholes");
    EXPECT_EQ(b.threadsRunning(), 1u);  // serial phase
    // Serial phase (25 G instr) completes in well under a minute at
    // full speed.
    b.run(30.0);
    EXPECT_EQ(b.threadsRunning(), 8u);
}

TEST(Board, SpareComputeReflectsPlacement)
{
    Board b = makeBoard("gamess");
    b.applyPlacementPolicy({2.0, 1.0, 1.0});
    b.run(0.01);
    // 2 threads big on 4 cores: SC_big = 2 - (2-4) = 4.
    EXPECT_DOUBLE_EQ(b.spareCompute(ClusterId::kBig), 4.0);
}

TEST(Board, TraceRecordsSamples)
{
    Board b = makeBoard();
    b.enableTrace(0.1);
    b.run(1.0);
    ASSERT_GE(b.trace().size(), 9u);
    const TraceSample& s = b.trace().back();
    EXPECT_GT(s.time, 0.0);
    EXPECT_GT(s.p_big + s.p_little, 0.0);
    EXPECT_GT(s.temp, 20.0);
    EXPECT_GE(s.bips, 0.0);
}

TEST(Board, DeterministicForSameSeed)
{
    Board a(BoardConfig::odroidXu3(),
            Workload(AppCatalog::get("bodytrack")), 42);
    Board b(BoardConfig::odroidXu3(),
            Workload(AppCatalog::get("bodytrack")), 42);
    a.run(3.0);
    b.run(3.0);
    EXPECT_DOUBLE_EQ(a.energy(), b.energy());
    EXPECT_DOUBLE_EQ(a.perfCounters().total(), b.perfCounters().total());
    EXPECT_DOUBLE_EQ(a.sensedPowerBig(), b.sensedPowerBig());
}

TEST(Board, MemoryBoundAppGainsLessFromFrequency)
{
    // Two threads on two big cores keeps both apps inside the power
    // envelope, so the TMU never confounds the comparison.
    auto bips_at = [](const std::string& app, double f) {
        Board b(BoardConfig::odroidXu3(),
                Workload(AppCatalog::getWithThreads(app, 2)), 3);
        HardwareInputs in;
        in.big_cores = 2;
        in.little_cores = 1;
        in.freq_big = f;
        in.freq_little = 0.4;
        b.applyHardwareInputs(in);
        b.applyPlacementPolicy({2.0, 1.0, 1.0});
        b.run(3.0);
        return b.perfCounters().total() / b.elapsed();
    };
    double gamess_gain = bips_at("gamess", 1.6) / bips_at("gamess", 0.8);
    double mcf_gain = bips_at("mcf", 1.6) / bips_at("mcf", 0.8);
    EXPECT_GT(gamess_gain, mcf_gain + 0.2);
}

}  // namespace
}  // namespace yukta::platform
