// Tests for DVFS tables, power/thermal models, workloads, apps,
// scheduler mechanics, sensors, and the TMU.
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "platform/apps.h"
#include "platform/dvfs.h"
#include "platform/power_thermal.h"
#include "platform/scheduler.h"
#include "platform/sensors.h"
#include "platform/tmu.h"
#include "platform/workload.h"

namespace yukta::platform {
namespace {

BoardConfig cfg = BoardConfig::odroidXu3();

TEST(Dvfs, GridMatchesPaper)
{
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    // Big: 0.2..2.0 GHz in 0.1 steps = 19 levels; little: 0.2..1.4 = 13.
    EXPECT_EQ(big.numLevels(), 19u);
    EXPECT_EQ(little.numLevels(), 13u);
    EXPECT_DOUBLE_EQ(big.minFreq(), 0.2);
    EXPECT_DOUBLE_EQ(big.maxFreq(), 2.0);
    EXPECT_DOUBLE_EQ(little.maxFreq(), 1.4);
}

TEST(Dvfs, QuantizeSnapsToGrid)
{
    DvfsTable big(cfg.big);
    EXPECT_DOUBLE_EQ(big.quantize(1.234), 1.2);
    EXPECT_DOUBLE_EQ(big.quantize(1.26), 1.3);
    EXPECT_DOUBLE_EQ(big.quantize(-5.0), 0.2);
    EXPECT_DOUBLE_EQ(big.quantize(9.0), 2.0);
}

TEST(Dvfs, StepUpDownSaturate)
{
    DvfsTable big(cfg.big);
    EXPECT_DOUBLE_EQ(big.stepDown(0.2), 0.2);
    EXPECT_DOUBLE_EQ(big.stepUp(2.0), 2.0);
    EXPECT_DOUBLE_EQ(big.stepDown(1.0, 3), 0.7);
    EXPECT_DOUBLE_EQ(big.stepUp(1.0, 2), 1.2);
}

TEST(Dvfs, VoltageMonotone)
{
    DvfsTable big(cfg.big);
    double prev = 0.0;
    for (double f : big.frequencies()) {
        double v = big.voltage(f);
        EXPECT_GE(v, prev);
        prev = v;
    }
    EXPECT_NEAR(big.voltage(0.2), cfg.big.volt_min, 1e-12);
    EXPECT_NEAR(big.voltage(2.0), cfg.big.volt_max, 1e-12);
}

TEST(Power, CalibrationBindsAtPaperLimits)
{
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    PowerModel pm_big(cfg.big, big);
    PowerModel pm_little(cfg.little, little);

    // Big cluster flat out must exceed the 3.3 W cap...
    ClusterActivity full{4, 2.0, 1.0, 1.0};
    EXPECT_GT(pm_big.clusterPower(full, 60.0), cfg.power_limit_big);
    // ...but a mid-frequency point must fit under it.
    ClusterActivity mid{4, 1.1, 1.0, 1.0};
    EXPECT_LT(pm_big.clusterPower(mid, 60.0), cfg.power_limit_big);

    // Little cluster flat out exceeds 0.33 W; low frequency fits.
    ClusterActivity lfull{4, 1.4, 1.0, 1.0};
    ClusterActivity llow{4, 0.6, 1.0, 1.0};
    EXPECT_GT(pm_little.clusterPower(lfull, 50.0),
              cfg.power_limit_little);
    EXPECT_LT(pm_little.clusterPower(llow, 50.0), cfg.power_limit_little);
}

TEST(Power, MonotoneInFrequencyAndCores)
{
    DvfsTable big(cfg.big);
    PowerModel pm(cfg.big, big);
    double prev = 0.0;
    for (double f : big.frequencies()) {
        ClusterActivity a{4, f, 1.0, 1.0};
        double p = pm.clusterPower(a, 50.0);
        EXPECT_GT(p, prev);
        prev = p;
    }
    for (std::size_t n = 1; n <= 4; ++n) {
        ClusterActivity a{n, 1.0, 1.0, 1.0};
        EXPECT_GT(pm.clusterPower(a, 50.0),
                  pm.clusterPower({n - 1, 1.0, 1.0, 1.0}, 50.0));
    }
}

TEST(Power, LeakageGrowsWithTemperature)
{
    DvfsTable big(cfg.big);
    PowerModel pm(cfg.big, big);
    ClusterActivity a{4, 1.5, 0.5, 1.0};
    EXPECT_GT(pm.leakagePower(a, 80.0), pm.leakagePower(a, 40.0));
}

TEST(Power, ZeroCoresZeroPower)
{
    DvfsTable big(cfg.big);
    PowerModel pm(cfg.big, big);
    ClusterActivity off{0, 1.0, 0.0, 1.0};
    EXPECT_DOUBLE_EQ(pm.clusterPower(off, 50.0), 0.0);
}

TEST(Thermal, ApproachesSteadyState)
{
    ThermalModel tm(cfg.thermal);
    double p = 4.0;
    for (int i = 0; i < 400000; ++i) {
        tm.step(p, 1e-3);
    }
    EXPECT_NEAR(tm.hotspot(), tm.steadyState(p), 0.5);
    // Steady state ~ 25 + 4 * 9 = 61 C.
    EXPECT_NEAR(tm.steadyState(p), 61.0, 1e-9);
}

TEST(Thermal, MaxPowerPushesTowardLimit)
{
    // Sustained max power should threaten the 79 C limit (paper's
    // thermal constraint must actually bind).
    ThermalModel tm(cfg.thermal);
    EXPECT_GT(tm.steadyState(5.8), cfg.temp_limit - 5.0);
}

TEST(Thermal, ResetRestoresAmbient)
{
    ThermalModel tm(cfg.thermal);
    tm.step(10.0, 5.0);
    EXPECT_GT(tm.hotspot(), cfg.thermal.ambient);
    tm.reset();
    EXPECT_DOUBLE_EQ(tm.hotspot(), cfg.thermal.ambient);
}

TEST(Workload, PhaseProgression)
{
    AppModel app = AppCatalog::get("blackscholes");
    Workload w(app);
    // Serial phase: one thread.
    EXPECT_EQ(w.numRunnableThreads(), 1u);
    std::size_t v0 = w.placementVersion();
    // Finish the serial phase.
    w.retire(0, app.phases[0].work_per_thread + 1.0);
    EXPECT_EQ(w.numRunnableThreads(), 8u);
    EXPECT_GT(w.placementVersion(), v0);
    EXPECT_FALSE(w.done());
}

TEST(Workload, BarrierHoldsUntilAllFinish)
{
    AppModel app = AppCatalog::get("blackscholes");
    Workload w(app);
    w.retire(0, 1e9);  // finish serial
    // Finish 7 of 8 parallel threads: still in the same phase.
    for (std::size_t t = 0; t < 7; ++t) {
        w.retire(0, 1e9);  // dense indices shift as threads finish
    }
    EXPECT_EQ(w.numRunnableThreads(), 1u);
    EXPECT_FALSE(w.done());
    w.retire(0, 1e9);
    EXPECT_TRUE(w.done());
    EXPECT_EQ(w.numRunnableThreads(), 0u);
}

TEST(Workload, SpecCopiesIndependent)
{
    Workload w(AppCatalog::get("mcf"));
    EXPECT_EQ(w.numRunnableThreads(), 8u);
    w.retire(0, 1e9);
    // One copy done: it leaves the runnable set immediately.
    EXPECT_EQ(w.numRunnableThreads(), 7u);
}

TEST(Workload, WorkRemainingDecreases)
{
    Workload w(AppCatalog::get("gamess"));
    double w0 = w.workRemaining();
    w.retire(0, 10.0);
    EXPECT_NEAR(w.workRemaining(), w0 - 10.0, 1e-9);
}

TEST(Workload, MixesCombineApps)
{
    Workload w = AppCatalog::getMix("blmc");
    // blackscholes starts serial (1 thread), mcf starts with 4 copies.
    EXPECT_EQ(w.numRunnableThreads(), 5u);
    EXPECT_EQ(w.name(), "blackscholes+mcf");
}

TEST(Apps, CatalogComplete)
{
    EXPECT_EQ(AppCatalog::specApps().size(), 6u);
    EXPECT_EQ(AppCatalog::parsecApps().size(), 8u);
    EXPECT_EQ(AppCatalog::trainingApps().size(), 6u);
    EXPECT_EQ(AppCatalog::evaluationApps().size(), 14u);
    EXPECT_EQ(AppCatalog::mixNames().size(), 4u);
    for (const auto& name : AppCatalog::evaluationApps()) {
        EXPECT_NO_THROW(AppCatalog::get(name));
    }
    EXPECT_THROW(AppCatalog::get("doom"), std::invalid_argument);
    EXPECT_EQ(AppCatalog::shortLabel("blackscholes"), "bla");
    EXPECT_EQ(AppCatalog::shortLabel("mcf"), "mcf");
}

TEST(Apps, LittleIpcBelowBig)
{
    for (const auto& name : AppCatalog::evaluationApps()) {
        AppModel a = AppCatalog::get(name);
        EXPECT_LT(a.ipc_little, a.ipc_big) << name;
        EXPECT_GT(a.totalWork(), 0.0) << name;
    }
}

TEST(Scheduler, SplitsThreadsPerPolicy)
{
    PlacementPolicy pol{5.0, 2.0, 1.0};
    Placement p = placeThreads(pol, 8, 4, 4);
    EXPECT_EQ(p.threadsOn(ClusterId::kBig), 5u);
    EXPECT_EQ(p.threadsOn(ClusterId::kLittle), 3u);
    // 5 threads at ~2 per core -> 3 busy big cores (ceil(5/2)).
    EXPECT_EQ(p.busyCores(ClusterId::kBig), 3u);
    EXPECT_EQ(p.busyCores(ClusterId::kLittle), 3u);
    EXPECT_EQ(p.idleCoresOn(ClusterId::kBig), 1u);
}

TEST(Scheduler, ClampsInfeasiblePolicy)
{
    PlacementPolicy pol{20.0, 1.0, 1.0};
    Placement p = placeThreads(pol, 6, 2, 4);
    EXPECT_EQ(p.threadsOn(ClusterId::kBig), 6u);
    // Only 2 big cores on: threads pile up there.
    EXPECT_EQ(p.busyCores(ClusterId::kBig), 2u);
    EXPECT_THROW(placeThreads(pol, 4, 0, 0), std::invalid_argument);
}

TEST(Scheduler, ConservationOfThreads)
{
    for (std::size_t n : {0u, 1u, 4u, 8u, 16u}) {
        PlacementPolicy pol{3.0, 1.5, 2.0};
        Placement p = placeThreads(pol, n, 4, 4);
        EXPECT_EQ(p.threadsOn(ClusterId::kBig) +
                      p.threadsOn(ClusterId::kLittle),
                  n);
        std::size_t from_cores = 0;
        for (std::size_t c : p.big_core_threads) {
            from_cores += c;
        }
        for (std::size_t c : p.little_core_threads) {
            from_cores += c;
        }
        EXPECT_EQ(from_cores, n);
    }
}

TEST(Scheduler, RoundRobinSpreadsEverywhere)
{
    PlacementPolicy pol = roundRobinPolicy(8, 4, 4);
    Placement p = placeThreads(pol, 8, 4, 4);
    EXPECT_EQ(p.threadsOn(ClusterId::kBig), 4u);
    EXPECT_EQ(p.busyCores(ClusterId::kBig), 4u);
    EXPECT_EQ(p.busyCores(ClusterId::kLittle), 4u);
}

TEST(Scheduler, SpareComputeFormula)
{
    // 4 cores on, 2 busy with 1 thread each: SC = 2 - (2 - 4) = 4.
    PlacementPolicy pol{2.0, 1.0, 1.0};
    Placement p = placeThreads(pol, 2, 4, 4);
    EXPECT_DOUBLE_EQ(spareCompute(p, ClusterId::kBig, 4), 4.0);
    // Overloaded: 8 threads on 2 big cores on: SC = 0 - (8-2) = -6.
    PlacementPolicy pol2{8.0, 4.0, 1.0};
    Placement p2 = placeThreads(pol2, 8, 2, 4);
    EXPECT_DOUBLE_EQ(spareCompute(p2, ClusterId::kBig, 2), -6.0);
}

TEST(Sensors, PowerUpdatesAtSensorPeriod)
{
    SensorConfig scfg = cfg.sensors;
    scfg.power_noise = 0.0;
    scfg.temp_noise = 0.0;
    Sensors s(scfg, /*ambient=*/25.0, 7);
    // Before a full 260 ms window, the reading stays at initial 0.
    for (int i = 0; i < 200; ++i) {
        s.step(1e-3, 4.0, 0.2, 60.0);
    }
    EXPECT_DOUBLE_EQ(s.powerBig(), 0.0);
    for (int i = 0; i < 70; ++i) {
        s.step(1e-3, 4.0, 0.2, 60.0);
    }
    EXPECT_NEAR(s.powerBig(), 4.0, 1e-9);
    EXPECT_NEAR(s.powerLittle(), 0.2, 1e-9);
}

TEST(Sensors, WindowAveragesPower)
{
    SensorConfig scfg = cfg.sensors;
    scfg.power_noise = 0.0;
    Sensors s(scfg, /*ambient=*/25.0, 7);
    // Half window at 2 W, half at 6 W -> average 4 W.
    for (int i = 0; i < 130; ++i) {
        s.step(1e-3, 2.0, 0.1, 50.0);
    }
    for (int i = 0; i < 140; ++i) {
        s.step(1e-3, 6.0, 0.3, 50.0);
    }
    EXPECT_NEAR(s.powerBig(), 4.0, 0.25);
}

TEST(Sensors, ClampsPhysicallyImpossibleReadings)
{
    // Exaggerated noise makes raw windows go negative and temperature
    // samples undershoot ambient; the published readings must stay
    // physical and the clamps must be counted.
    SensorConfig scfg = cfg.sensors;
    scfg.power_noise = 1.0;
    scfg.temp_noise = 40.0;
    Sensors s(scfg, /*ambient=*/25.0, 7);
    for (int i = 0; i < 20000; ++i) {
        s.step(1e-3, 0.05, 0.01, 26.0);
        EXPECT_GE(s.powerBig(), 0.0);
        EXPECT_GE(s.powerLittle(), 0.0);
        EXPECT_GE(s.temperature(), 25.0);
    }
    EXPECT_GT(s.clampedPowerCount(), 0u);
    EXPECT_GT(s.clampedTempCount(), 0u);
}

TEST(Tmu, PowerEmergencyCapsFrequency)
{
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    Tmu tmu(cfg.tmu, cfg, big, little);
    // Sustained 5 W on the big cluster (over 1.15 * 3.3).
    EmergencyCaps caps;
    for (int i = 0; i < 1200; ++i) {
        caps = tmu.step(1e-3, 60.0, 5.0, 0.1, 2.0, 1.4);
    }
    EXPECT_TRUE(caps.active);
    EXPECT_LT(caps.freq_cap_big, 2.0);
    EXPECT_GT(tmu.actionCount(), 0u);
}

TEST(Tmu, ThermalEmergencyActsFasterAndHotplugs)
{
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    Tmu tmu(cfg.tmu, cfg, big, little);
    EmergencyCaps caps;
    for (int i = 0; i < 500; ++i) {
        caps = tmu.step(1e-3, 97.0, 2.0, 0.1, 2.0, 1.4);
    }
    EXPECT_TRUE(caps.active);
    EXPECT_LT(caps.max_big_cores, 4u);
    EXPECT_LT(caps.freq_cap_big, 1.0);
}

TEST(Tmu, ReleasesWithHysteresis)
{
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    Tmu tmu(cfg.tmu, cfg, big, little);
    for (int i = 0; i < 1000; ++i) {
        tmu.step(1e-3, 60.0, 5.0, 0.1, 2.0, 1.4);
    }
    EXPECT_TRUE(tmu.caps().active);
    // Calm conditions: caps recover step by step, but only after the
    // cooldown and one release period per level (reluctant recovery).
    EmergencyCaps caps;
    // Full recovery from the deep cap needs cooldown (5 s) plus one
    // release period (0.8 s) per DVFS level.
    for (int i = 0; i < 25000; ++i) {
        caps = tmu.step(1e-3, 50.0, 1.0, 0.05, caps.freq_cap_big, 1.4);
    }
    EXPECT_FALSE(caps.active);
    EXPECT_GT(tmu.emergencyTime(), 0.0);
}

}  // namespace
}  // namespace yukta::platform
