#include "platform/trace_io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "platform/apps.h"

namespace yukta::platform {
namespace {

std::vector<TraceSample>
makeTrace()
{
    Board b(BoardConfig::odroidXu3(),
            Workload(AppCatalog::get("blackscholes")), 3);
    b.enableTrace(0.1);
    b.run(1.0);
    return b.trace();
}

TEST(TraceIo, RoundTripThroughStreams)
{
    auto trace = makeTrace();
    ASSERT_FALSE(trace.empty());
    std::stringstream ss;
    writeTraceCsv(ss, trace);
    auto loaded = readTraceCsv(ss);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_NEAR(loaded[i].time, trace[i].time, 1e-9);
        EXPECT_NEAR(loaded[i].p_big, trace[i].p_big, 1e-9);
        EXPECT_NEAR(loaded[i].bips, trace[i].bips, 1e-9);
        EXPECT_EQ(loaded[i].big_cores, trace[i].big_cores);
        EXPECT_EQ(loaded[i].emergency, trace[i].emergency);
    }
}

TEST(TraceIo, RoundTripThroughFile)
{
    auto trace = makeTrace();
    std::string path = "trace_io_test.csv";
    ASSERT_TRUE(saveTraceCsv(path, trace));
    auto loaded = loadTraceCsv(path);
    EXPECT_EQ(loaded.size(), trace.size());
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadHeader)
{
    std::stringstream ss("nonsense\n1,2,3\n");
    EXPECT_THROW(readTraceCsv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedRow)
{
    std::stringstream good;
    writeTraceCsv(good, makeTrace());
    std::string text = good.str();
    text += "not,a,valid,row\n";
    std::stringstream bad(text);
    EXPECT_THROW(readTraceCsv(bad), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(loadTraceCsv("/nonexistent/path.csv"),
                 std::runtime_error);
}

}  // namespace
}  // namespace yukta::platform
