// Batched tick engine vs per-instance stepping: randomized
// bit-identity over (order, batch size, seed) for the SSV, LQG, and
// fixed-point runtimes, including batch size 1, widths that are not a
// multiple of the GEMM column block, divergent member states, mixed
// shape-class groups, and NaN-poisoning containment (a poisoned
// member must never contaminate its neighbors' columns, and the
// per-instance finite-state contracts keep firing under
// -DYUKTA_CHECKS=ON).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "controllers/batch_runtime.h"
#include "controllers/fixed_point.h"
#include "controllers/lqg_runtime.h"
#include "controllers/ssv_runtime.h"
#include "linalg/test_util.h"
#include "obs/stateio.h"

namespace yukta::controllers {
namespace {

using control::StateSpace;
using linalg::Matrix;
using linalg::Vector;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/** SplitMix64: cheap deterministic stream per (case, member, step). */
std::uint64_t
splitmix(std::uint64_t& s)
{
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Uniform in [-1, 1). */
double
unitRand(std::uint64_t& s)
{
    return static_cast<double>(splitmix(s) >> 11) * 0x1.0p-52 - 1.0;
}

bool
bitEqual(const Vector& a, const Vector& b)
{
    if (a.size() != b.size()) {
        return false;
    }
    return a.size() == 0 ||
           std::memcmp(a.raw().data(), b.raw().data(),
                       a.size() * sizeof(double)) == 0;
}

/** A random SSV certificate with wide continuous grids. */
robust::SsvController
randomSsvController(std::size_t order, std::size_t n_out,
                    std::size_t n_ext, std::size_t n_in, unsigned seed)
{
    robust::SsvController ctrl;
    const std::size_t m = n_out + n_ext;
    // 0.4 scaling keeps the iterates bounded over the short horizons
    // the tests run; stability is irrelevant to bit-identity.
    Matrix a = 0.4 * test::randomMatrix(order, order, seed);
    Matrix b = test::randomMatrix(order, m, seed + 1);
    Matrix c = test::randomMatrix(n_in, order, seed + 2);
    Matrix d = test::randomMatrix(n_in, m, seed + 3);
    ctrl.k = StateSpace(a, b, c, d, 0.5);
    ctrl.mu_peak = 0.8;
    ctrl.min_s = 1.25;
    ctrl.design_bounds = std::vector<double>(n_out, 2.0);
    ctrl.guaranteed_bounds = std::vector<double>(n_out, 2.0);
    return ctrl;
}

std::vector<InputGrid>
wideGrids(std::size_t n_in)
{
    return std::vector<InputGrid>(n_in, InputGrid{-50.0, 50.0, 0.0});
}

/**
 * Drives @p batch_size identical-shape SSV runtimes for @p steps
 * ticks, scalar vs batched, with per-member input streams (so the
 * member states diverge immediately), and requires bitwise-equal
 * commands and introspection records at every step.
 */
void
checkSsvCase(std::size_t order, std::size_t batch_size, unsigned seed)
{
    const std::size_t n_out = 1 + seed % 3;
    const std::size_t n_ext = seed % 2;
    const std::size_t n_in = 1 + (seed / 3) % 3;
    auto ctrl = randomSsvController(order, n_out, n_ext, n_in, seed);
    auto grids = wideGrids(n_in);
    Vector u_mean = Vector::zeros(n_in);
    Vector e_mean = Vector::zeros(n_ext);

    std::vector<std::unique_ptr<SsvRuntime>> scalar;
    std::vector<std::unique_ptr<SsvRuntime>> batched;
    for (std::size_t i = 0; i < batch_size; ++i) {
        scalar.push_back(std::make_unique<SsvRuntime>(ctrl, grids, u_mean,
                                                      e_mean));
        batched.push_back(std::make_unique<SsvRuntime>(ctrl, grids,
                                                       u_mean, e_mean));
    }

    BatchRuntime batch;
    for (int t = 0; t < 4; ++t) {
        std::vector<Vector> devs;
        std::vector<Vector> exts;
        for (std::size_t i = 0; i < batch_size; ++i) {
            std::uint64_t s = 1000003ULL * seed + 97ULL * i + t;
            Vector dev(n_out);
            for (std::size_t j = 0; j < n_out; ++j) {
                dev[j] = 3.0 * unitRand(s);
            }
            Vector ext(n_ext);
            for (std::size_t j = 0; j < n_ext; ++j) {
                ext[j] = unitRand(s);
            }
            devs.push_back(dev);
            exts.push_back(ext);
            batched[i]->beginInvoke(dev, ext);
            batch.enqueue(*batched[i]);
        }
        EXPECT_EQ(batch.pendingCount(), batch_size);
        EXPECT_EQ(batch.groupCount(), 1u);
        batch.tick();
        EXPECT_EQ(batch.pendingCount(), 0u);
        for (std::size_t i = 0; i < batch_size; ++i) {
            SsvInvokeInfo ref_info;
            SsvInvokeInfo got_info;
            Vector want = scalar[i]->invoke(devs[i], exts[i], &ref_info);
            Vector got = batched[i]->finishInvoke(&got_info);
            ASSERT_TRUE(bitEqual(got, want))
                << "order=" << order << " batch=" << batch_size
                << " seed=" << seed << " member=" << i << " t=" << t;
            ASSERT_TRUE(bitEqual(got_info.x, ref_info.x));
            ASSERT_TRUE(bitEqual(got_info.u_raw, ref_info.u_raw));
            ASSERT_TRUE(bitEqual(got_info.dy, ref_info.dy));
        }
    }
}

void
checkLqgCase(std::size_t order, std::size_t batch_size, unsigned seed)
{
    const std::size_t n_out = 1 + seed % 3;
    const std::size_t n_in = 1 + (seed / 3) % 3;
    Matrix a = 0.4 * test::randomMatrix(order, order, seed + 11);
    Matrix b = test::randomMatrix(order, n_out, seed + 12);
    Matrix c = test::randomMatrix(n_in, order, seed + 13);
    Matrix d = test::randomMatrix(n_in, n_out, seed + 14);
    StateSpace k(a, b, c, d, 0.5);
    auto grids = wideGrids(n_in);
    Vector u_mean = Vector::zeros(n_in);

    std::vector<std::unique_ptr<LqgRuntime>> scalar;
    std::vector<std::unique_ptr<LqgRuntime>> batched;
    for (std::size_t i = 0; i < batch_size; ++i) {
        scalar.push_back(std::make_unique<LqgRuntime>(k, grids, u_mean));
        batched.push_back(std::make_unique<LqgRuntime>(k, grids, u_mean));
    }

    BatchRuntime batch;
    for (int t = 0; t < 4; ++t) {
        std::vector<Vector> devs;
        for (std::size_t i = 0; i < batch_size; ++i) {
            std::uint64_t s = 500009ULL * seed + 31ULL * i + t;
            Vector dev(n_out);
            for (std::size_t j = 0; j < n_out; ++j) {
                dev[j] = 2.0 * unitRand(s);
            }
            devs.push_back(dev);
            batched[i]->beginInvoke(dev);
            batch.enqueue(*batched[i]);
        }
        batch.tick();
        for (std::size_t i = 0; i < batch_size; ++i) {
            LqgInvokeInfo ref_info;
            LqgInvokeInfo got_info;
            Vector want = scalar[i]->invoke(devs[i], &ref_info);
            Vector got = batched[i]->finishInvoke(&got_info);
            ASSERT_TRUE(bitEqual(got, want))
                << "order=" << order << " batch=" << batch_size
                << " seed=" << seed << " member=" << i << " t=" << t;
            ASSERT_TRUE(bitEqual(got_info.x, ref_info.x));
            ASSERT_TRUE(bitEqual(got_info.u_raw, ref_info.u_raw));
            ASSERT_EQ(batched[i]->wastedMoves(), scalar[i]->wastedMoves());
        }
    }
}

void
checkFixedCase(std::size_t order, std::size_t batch_size, unsigned seed)
{
    const std::size_t m = 2 + seed % 3;
    const std::size_t p = 1 + seed % 2;
    Matrix a = 0.4 * test::randomMatrix(order, order, seed + 21);
    Matrix b = test::randomMatrix(order, m, seed + 22);
    Matrix c = test::randomMatrix(p, order, seed + 23);
    Matrix d = test::randomMatrix(p, m, seed + 24);
    StateSpace k(a, b, c, d, 0.5);

    std::vector<std::unique_ptr<FixedPointSsv>> scalar;
    std::vector<std::unique_ptr<FixedPointSsv>> batched;
    for (std::size_t i = 0; i < batch_size; ++i) {
        scalar.push_back(std::make_unique<FixedPointSsv>(k));
        batched.push_back(std::make_unique<FixedPointSsv>(k));
    }

    BatchRuntime batch;
    for (int t = 0; t < 4; ++t) {
        std::vector<std::vector<std::int32_t>> dys;
        for (std::size_t i = 0; i < batch_size; ++i) {
            std::uint64_t s = 900007ULL * seed + 13ULL * i + t;
            std::vector<std::int32_t> dy(m);
            for (std::size_t j = 0; j < m; ++j) {
                dy[j] = FixedPointSsv::toFixed(2.0 * unitRand(s));
            }
            dys.push_back(dy);
            batched[i]->beginStep(dy);
            batch.enqueue(*batched[i]);
        }
        batch.tick();
        for (std::size_t i = 0; i < batch_size; ++i) {
            std::vector<std::int32_t> want = scalar[i]->step(dys[i]);
            std::vector<std::int32_t> got = batched[i]->finishStep();
            ASSERT_EQ(got, want)
                << "order=" << order << " batch=" << batch_size
                << " seed=" << seed << " member=" << i << " t=" << t;
        }
    }
}

// The randomized sweeps: (order, batch size, seed) tuples chosen to
// cover batch size 1, primes, and widths straddling nothing in
// particular -- every width under kGemmColBlock already exercises the
// partial-block path of the packed pass. 80 + 80 + 60 = 220 cases.

TEST(BatchRuntime, SsvRandomizedBitIdentity)
{
    const std::size_t batches[] = {1, 2, 3, 5, 7, 13, 17, 33};
    for (unsigned c = 0; c < 80; ++c) {
        std::size_t order = 1 + c % 12;
        std::size_t batch_size = batches[c % 8];
        checkSsvCase(order, batch_size, 7000 + 17 * c);
    }
}

TEST(BatchRuntime, LqgRandomizedBitIdentity)
{
    const std::size_t batches[] = {1, 2, 4, 6, 9, 11, 21, 40};
    for (unsigned c = 0; c < 80; ++c) {
        std::size_t order = 1 + c % 10;
        std::size_t batch_size = batches[c % 8];
        checkLqgCase(order, batch_size, 9000 + 13 * c);
    }
}

TEST(BatchRuntime, FixedPointRandomizedIdentity)
{
    const std::size_t batches[] = {1, 2, 3, 5, 8, 19};
    for (unsigned c = 0; c < 60; ++c) {
        std::size_t order = 1 + c % 8;
        std::size_t batch_size = batches[c % 6];
        checkFixedCase(order, batch_size, 4000 + 19 * c);
    }
}

TEST(BatchRuntime, MixedShapeClassesSplitIntoGroups)
{
    // Two distinct SSV shapes plus an LQG sharing one engine: three
    // groups, each still bit-identical to its scalar twin.
    auto ctrl_a = randomSsvController(4, 2, 1, 2, 51);
    auto ctrl_b = randomSsvController(6, 1, 0, 3, 52);
    auto grids_a = wideGrids(2);
    auto grids_b = wideGrids(3);
    SsvRuntime sa(ctrl_a, grids_a, Vector::zeros(2), Vector::zeros(1));
    SsvRuntime sa_ref(ctrl_a, grids_a, Vector::zeros(2), Vector::zeros(1));
    SsvRuntime sb(ctrl_b, grids_b, Vector::zeros(3), Vector{});
    SsvRuntime sb_ref(ctrl_b, grids_b, Vector::zeros(3), Vector{});
    StateSpace k = StateSpace::gain(Matrix{{-2.0}}, 0.5);
    LqgRuntime lq(k, wideGrids(1), Vector::zeros(1));
    LqgRuntime lq_ref(k, wideGrids(1), Vector::zeros(1));

    EXPECT_NE(sa.batchKey(), sb.batchKey());

    BatchRuntime batch;
    sa.beginInvoke(Vector{0.5, -0.25}, Vector{0.125});
    batch.enqueue(sa);
    sb.beginInvoke(Vector{1.0}, Vector{});
    batch.enqueue(sb);
    lq.beginInvoke(Vector{0.75});
    batch.enqueue(lq);
    EXPECT_EQ(batch.pendingCount(), 3u);
    EXPECT_EQ(batch.groupCount(), 3u);
    batch.tick();

    EXPECT_TRUE(bitEqual(sa.finishInvoke(),
                         sa_ref.invoke(Vector{0.5, -0.25},
                                       Vector{0.125})));
    EXPECT_TRUE(bitEqual(sb.finishInvoke(),
                         sb_ref.invoke(Vector{1.0}, Vector{})));
    EXPECT_TRUE(bitEqual(lq.finishInvoke(), lq_ref.invoke(Vector{0.75})));
}

TEST(BatchRuntime, SameShapeDivergentStatesShareOneGroup)
{
    // Identical matrices but wildly divergent member states: one
    // group, and the large-state member's column stays its own.
    auto ctrl = randomSsvController(5, 2, 0, 2, 61);
    auto grids = wideGrids(2);
    SsvRuntime a(ctrl, grids, Vector::zeros(2), Vector{});
    SsvRuntime a_ref(ctrl, grids, Vector::zeros(2), Vector{});
    SsvRuntime b(ctrl, grids, Vector::zeros(2), Vector{});
    SsvRuntime b_ref(ctrl, grids, Vector::zeros(2), Vector{});
    EXPECT_EQ(a.batchKey(), b.batchKey());

    // Wind member b (and its scalar twin) far away from the origin.
    for (int t = 0; t < 6; ++t) {
        Vector dev{4.0, -4.0};
        b.invoke(dev, Vector{});
        b_ref.invoke(dev, Vector{});
    }

    BatchRuntime batch;
    Vector dev_a{0.5, 0.25};
    Vector dev_b{-1.5, 2.0};
    a.beginInvoke(dev_a, Vector{});
    batch.enqueue(a);
    b.beginInvoke(dev_b, Vector{});
    batch.enqueue(b);
    EXPECT_EQ(batch.groupCount(), 1u);
    batch.tick();
    EXPECT_TRUE(bitEqual(a.finishInvoke(), a_ref.invoke(dev_a, Vector{})));
    EXPECT_TRUE(bitEqual(b.finishInvoke(), b_ref.invoke(dev_b, Vector{})));
}

TEST(BatchRuntime, EnqueueWithoutBeginThrows)
{
    auto ctrl = randomSsvController(3, 1, 0, 1, 71);
    SsvRuntime rt(ctrl, wideGrids(1), Vector::zeros(1), Vector{});
    BatchRuntime batch;
    EXPECT_THROW(batch.enqueue(rt), std::logic_error);

    StateSpace k = StateSpace::gain(Matrix{{-1.0}}, 0.5);
    LqgRuntime lq(k, wideGrids(1), Vector::zeros(1));
    EXPECT_THROW(batch.enqueue(lq), std::logic_error);

    FixedPointSsv fx(StateSpace(Matrix{{0.5}}, Matrix{{0.25}},
                                Matrix{{1.0}}, Matrix{{0.0}}, 0.5));
    EXPECT_THROW(batch.enqueue(fx), std::logic_error);

    // finishInvoke without beginInvoke is equally rejected.
    EXPECT_THROW(rt.finishInvoke(), std::logic_error);
    EXPECT_THROW(lq.finishInvoke(), std::logic_error);
    EXPECT_THROW(fx.finishStep(), std::logic_error);
}

TEST(BatchRuntime, DoubleEnqueueRejected)
{
    // Once staged, a second enqueue before finishInvoke is a logic
    // error only after the tick marked the linear pass done; staging
    // the same runtime twice pre-tick would double-advance it.
    auto ctrl = randomSsvController(3, 1, 0, 1, 72);
    SsvRuntime rt(ctrl, wideGrids(1), Vector::zeros(1), Vector{});
    BatchRuntime batch;
    rt.beginInvoke(Vector{0.5}, Vector{});
    batch.enqueue(rt);
    batch.tick();
    EXPECT_THROW(batch.enqueue(rt), std::logic_error);
    rt.finishInvoke();
}

/** Poisons an SSV runtime's state vector with NaN via the bit-exact
 * checkpoint path (the front door rejects NaN inputs under checks). */
void
poisonState(SsvRuntime& rt, std::size_t order)
{
    obs::StateWriter w;
    w.f64vec("ssv.x", std::vector<double>(order, kNan));
    w.i64("ssv.over_bound", 0);
    w.boolean("ssv.exhausted", false);
    w.boolean("ssv.bumpless", false);
    w.f64vec("ssv.bumpless_u", {});
    obs::StateReader r(w.dump());
    rt.load(r);
}

TEST(BatchRuntime, NanPoisonedMemberDoesNotContaminateNeighbors)
{
    const std::size_t order = 6;
    auto ctrl = randomSsvController(order, 2, 1, 2, 81);
    auto grids = wideGrids(2);
    std::vector<std::unique_ptr<SsvRuntime>> batched;
    std::vector<std::unique_ptr<SsvRuntime>> scalar;
    for (int i = 0; i < 5; ++i) {
        batched.push_back(std::make_unique<SsvRuntime>(
            ctrl, grids, Vector::zeros(2), Vector::zeros(1)));
        scalar.push_back(std::make_unique<SsvRuntime>(
            ctrl, grids, Vector::zeros(2), Vector::zeros(1)));
    }
    // Poison the middle member (and its scalar twin for symmetry).
    poisonState(*batched[2], order);
    poisonState(*scalar[2], order);

    BatchRuntime batch;
    std::vector<Vector> devs;
    for (int i = 0; i < 5; ++i) {
        std::uint64_t s = 300 + i;
        Vector dev{unitRand(s), unitRand(s)};
        devs.push_back(dev);
        batched[i]->beginInvoke(dev, Vector{0.25});
        batch.enqueue(*batched[i]);
    }
    EXPECT_EQ(batch.groupCount(), 1u);
    batch.tick();

    for (int i = 0; i < 5; ++i) {
        if (i == 2) {
            continue;
        }
        // Clean neighbors: bit-identical to their scalar twins even
        // with a NaN column in the middle of the packed block.
        Vector want = scalar[i]->invoke(devs[i], Vector{0.25});
        Vector got = batched[i]->finishInvoke();
        ASSERT_TRUE(bitEqual(got, want)) << "member=" << i;
        ASSERT_TRUE(std::isfinite(got[0]) && std::isfinite(got[1]));
    }

#ifdef YUKTA_CHECKS
    // The per-instance finite-state contract still fires for the
    // poisoned member alone (ContractViolation is an invalid_argument).
    EXPECT_THROW(batched[2]->finishInvoke(), std::invalid_argument);
#else
    // Without checks the poison stays confined to its own outputs.
    SsvInvokeInfo info;
    batched[2]->finishInvoke(&info);
    EXPECT_TRUE(std::isnan(info.u_raw[0]));
    EXPECT_TRUE(std::isnan(info.x[0]));
#endif
}

TEST(BatchRuntime, TickOnEmptyEngineIsANoOp)
{
    BatchRuntime batch;
    EXPECT_EQ(batch.pendingCount(), 0u);
    EXPECT_EQ(batch.groupCount(), 0u);
    batch.tick();
    EXPECT_EQ(batch.pendingCount(), 0u);
}

TEST(BatchRuntime, BatchKeyStableAcrossInstances)
{
    // Same matrices -> same key; any single-entry perturbation flips
    // it (the fingerprint covers every matrix byte).
    auto ctrl = randomSsvController(4, 2, 1, 2, 91);
    SsvRuntime r1(ctrl, wideGrids(2), Vector::zeros(2), Vector::zeros(1));
    SsvRuntime r2(ctrl, wideGrids(2), Vector::zeros(2), Vector::zeros(1));
    EXPECT_EQ(r1.batchKey(), r2.batchKey());

    auto ctrl2 = ctrl;
    Matrix a2 = ctrl2.k.a;
    a2(0, 0) += 0x1.0p-40;
    ctrl2.k = StateSpace(a2, ctrl2.k.b, ctrl2.k.c, ctrl2.k.d, 0.5);
    SsvRuntime r3(ctrl2, wideGrids(2), Vector::zeros(2),
                  Vector::zeros(1));
    EXPECT_NE(r1.batchKey(), r3.batchKey());
}

}  // namespace
}  // namespace yukta::controllers
