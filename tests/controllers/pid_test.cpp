#include "controllers/pid.h"

#include <gtest/gtest.h>

#include "controllers/layer_controllers.h"

namespace yukta::controllers {
namespace {

TEST(Pid, ProportionalOnly)
{
    Pid pid({2.0, 0.0, 0.0, 0.5}, -10.0, 10.0, 0.5);
    EXPECT_DOUBLE_EQ(pid.step(1.0), 2.0);
    EXPECT_DOUBLE_EQ(pid.step(-0.5), -1.0);
}

TEST(Pid, IntegratorRemovesSteadyError)
{
    // Plant: y += 0.5 u (pure integrator); PI drives error to zero.
    Pid pid({0.5, 0.8, 0.0, 0.5}, -10.0, 10.0, 0.5);
    double y = 0.0;
    double target = 2.0;
    for (int i = 0; i < 200; ++i) {
        double u = pid.step(target - y);
        y += 0.25 * u;
    }
    EXPECT_NEAR(y, target, 5e-3);
}

TEST(Pid, OutputClamped)
{
    Pid pid({100.0, 0.0, 0.0, 0.5}, -1.0, 1.0, 0.5);
    EXPECT_DOUBLE_EQ(pid.step(5.0), 1.0);
    EXPECT_DOUBLE_EQ(pid.step(-5.0), -1.0);
}

TEST(Pid, AntiWindupStopsIntegration)
{
    Pid pid({0.1, 1.0, 0.0, 0.5}, -1.0, 1.0, 0.5);
    // Long saturation episode...
    for (int i = 0; i < 50; ++i) {
        pid.step(10.0);
    }
    double wound = pid.integrator();
    // ...must not wind the integrator beyond the actuator span.
    EXPECT_LE(wound, 2.0);
    // Recovery after the error flips sign is quick.
    double out = 0.0;
    int steps = 0;
    for (; steps < 20; ++steps) {
        out = pid.step(-1.0);
        if (out < 0.5) {
            break;
        }
    }
    EXPECT_LT(steps, 10);
    (void)out;
}

TEST(Pid, ResetClearsState)
{
    Pid pid({1.0, 1.0, 0.5, 0.5}, -5.0, 5.0, 0.5);
    pid.step(2.0);
    pid.step(2.0);
    pid.reset();
    EXPECT_DOUBLE_EQ(pid.integrator(), 0.0);
    // First post-reset step: P + one fresh integrator increment.
    EXPECT_DOUBLE_EQ(pid.step(1.0), 1.5);
}

TEST(SisoPidHw, RespondsInSaneDirections)
{
    auto cfg = platform::BoardConfig::odroidXu3();
    SisoPidHwController ctrl(cfg, makeHwOptimizer(cfg));
    HwSignals s;
    s.perf_bips = 1.0;   // below any plausible target: push f_big up
    s.p_big = 1.0;
    s.p_little = 0.1;
    s.temp = 45.0;
    auto a = ctrl.invoke(s);
    auto b = ctrl.invoke(s);
    EXPECT_GE(b.freq_big, a.freq_big - 1e-12);
    EXPECT_GE(a.freq_big, 0.2);
    EXPECT_LE(a.freq_big, 2.0);
    EXPECT_GE(a.big_cores, 1u);
    EXPECT_LE(a.big_cores, 4u);
}

TEST(SisoPidHw, TemperatureLoopOnlyPullsDown)
{
    auto cfg = platform::BoardConfig::odroidXu3();
    SisoPidHwController ctrl(cfg, makeHwOptimizer(cfg));
    HwSignals hot;
    hot.perf_bips = 5.0;
    hot.p_big = 2.0;
    hot.p_little = 0.1;
    hot.temp = 95.0;  // way over: the temp loop must cut f_big
    auto first = ctrl.invoke(hot);
    auto later = first;
    for (int i = 0; i < 6; ++i) {
        later = ctrl.invoke(hot);
    }
    EXPECT_LT(later.freq_big, 2.0);
}

}  // namespace
}  // namespace yukta::controllers
