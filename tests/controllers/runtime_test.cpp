// Tests for the SSV runtime state machine, input grids, the E x D
// optimizer, LQG runtime, and the fixed-point engine.
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "controllers/fixed_point.h"
#include "controllers/lqg_runtime.h"
#include "controllers/optimizer.h"
#include "controllers/ssv_runtime.h"
#include "linalg/test_util.h"

namespace yukta::controllers {
namespace {

using control::StateSpace;
using linalg::Matrix;
using linalg::Vector;

TEST(InputGrid, QuantizeClampsAndSnaps)
{
    InputGrid g{0.2, 2.0, 0.1};
    EXPECT_DOUBLE_EQ(g.quantize(1.234), 1.2);
    EXPECT_DOUBLE_EQ(g.quantize(5.0), 2.0);
    EXPECT_DOUBLE_EQ(g.quantize(-1.0), 0.2);
    // Continuous grid: clamp only.
    InputGrid c{0.0, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(c.quantize(0.37), 0.37);
    EXPECT_DOUBLE_EQ(c.quantize(2.0), 1.0);
}

TEST(InputGrid, QuantizeIdempotent)
{
    InputGrid g{1.0, 4.0, 1.0};
    for (double v : {-3.0, 0.0, 1.4, 2.5, 3.7, 9.0}) {
        double q = g.quantize(v);
        EXPECT_DOUBLE_EQ(g.quantize(q), q);
    }
}

/** A trivial SSV certificate around an identity-gain controller. */
robust::SsvController
makeTestController()
{
    robust::SsvController ctrl;
    // One state, 3 dy inputs (2 deviations + 1 external), 2 inputs.
    Matrix a{{0.5}};
    Matrix b{{0.2, 0.1, 0.05}};
    Matrix c{{1.0}, {0.5}};
    Matrix d{{0.4, 0.0, 0.0}, {0.0, 0.3, 0.1}};
    ctrl.k = StateSpace(a, b, c, d, 0.5);
    ctrl.mu_peak = 0.8;
    ctrl.min_s = 1.25;
    ctrl.design_bounds = {1.0, 0.5};
    ctrl.guaranteed_bounds = {1.0, 0.5};
    return ctrl;
}

TEST(SsvRuntime, DimensionChecks)
{
    auto ctrl = makeTestController();
    std::vector<InputGrid> grids{{0.0, 4.0, 1.0}, {0.2, 2.0, 0.1}};
    SsvRuntime rt(ctrl, grids, Vector{2.0, 1.0}, Vector{3.0});
    EXPECT_EQ(rt.numOutputsTracked(), 2u);
    EXPECT_EQ(rt.numExternal(), 1u);
    EXPECT_EQ(rt.numInputs(), 2u);
    EXPECT_THROW(rt.invoke(Vector{1.0}, Vector{0.0}),
                 std::invalid_argument);
    EXPECT_THROW(SsvRuntime(ctrl, {grids[0]}, Vector{2.0}, Vector{3.0}),
                 std::invalid_argument);
}

TEST(SsvRuntime, OutputsOnGridAroundOperatingPoint)
{
    auto ctrl = makeTestController();
    std::vector<InputGrid> grids{{0.0, 4.0, 1.0}, {0.2, 2.0, 0.1}};
    SsvRuntime rt(ctrl, grids, Vector{2.0, 1.0}, Vector{3.0});
    Vector u = rt.invoke(Vector{0.5, 0.2}, Vector{3.0});
    // Inputs quantized to grids.
    EXPECT_DOUBLE_EQ(u[0], std::round(u[0]));
    EXPECT_GE(u[0], 0.0);
    EXPECT_LE(u[0], 4.0);
    EXPECT_GE(u[1], 0.2);
    EXPECT_LE(u[1], 2.0);
    // Zero deviations at the operating point keep u near the mean.
    rt.reset();
    Vector u0 = rt.invoke(Vector{0.0, 0.0}, Vector{3.0});
    EXPECT_DOUBLE_EQ(u0[0], 2.0);
    EXPECT_DOUBLE_EQ(u0[1], 1.0);
}

TEST(SsvRuntime, DeviationClampBoundsResponse)
{
    auto ctrl = makeTestController();
    std::vector<InputGrid> grids{{-100.0, 100.0, 0.0},
                                 {-100.0, 100.0, 0.0}};
    SsvRuntime rt(ctrl, grids, Vector{0.0, 0.0}, Vector{0.0});
    Vector small = rt.invoke(Vector{3.0, 1.5}, Vector{0.0});
    rt.reset();
    Vector huge = rt.invoke(Vector{300.0, 150.0}, Vector{0.0});
    // Clamped: the two drive levels coincide at 3x design bounds.
    EXPECT_TRUE(huge.isApprox(small, 1e-12));
}

TEST(SsvRuntime, GuardbandExhaustionMonitor)
{
    auto ctrl = makeTestController();
    std::vector<InputGrid> grids{{0.0, 4.0, 1.0}, {0.2, 2.0, 0.1}};
    SsvRuntime rt(ctrl, grids, Vector{2.0, 1.0}, Vector{3.0});
    EXPECT_FALSE(rt.guardbandExhausted());
    // Sustained deviations beyond the guaranteed bounds trip the flag.
    for (int i = 0; i < 10; ++i) {
        rt.invoke(Vector{5.0, 0.0}, Vector{3.0});
    }
    EXPECT_TRUE(rt.guardbandExhausted());
    rt.reset();
    EXPECT_FALSE(rt.guardbandExhausted());
    // In-bound deviations never trip it.
    for (int i = 0; i < 20; ++i) {
        rt.invoke(Vector{0.3, 0.1}, Vector{3.0});
    }
    EXPECT_FALSE(rt.guardbandExhausted());
}

OptimizerConfig
basicOptConfig()
{
    OptimizerConfig oc;
    oc.initial = {3.0, 2.0};
    oc.min = {0.5, 0.5};
    oc.max = {10.0, 3.0};
    oc.role = {TargetRole::kMaximize, TargetRole::kBudget};
    oc.step = {0.5, 0.2};
    oc.periods_per_move = 1;
    return oc;
}

TEST(Optimizer, ValidatesConfig)
{
    OptimizerConfig oc = basicOptConfig();
    oc.min = {0.5};
    EXPECT_THROW(ExdOptimizer{oc}, std::invalid_argument);
    oc = basicOptConfig();
    oc.periods_per_move = 0;
    EXPECT_THROW(ExdOptimizer{oc}, std::invalid_argument);
}

TEST(Optimizer, AdvancesTargetsAboveMeasurementWhileImproving)
{
    ExdOptimizer opt(basicOptConfig());
    Vector measured{4.0, 2.0};
    // Improving metric: keep advancing; perf target leads measured.
    double metric = 1.0;
    for (int i = 0; i < 5; ++i) {
        metric *= 0.9;
        opt.update(metric, measured);
    }
    EXPECT_GT(opt.targets()[0], measured[0]);
    EXPECT_GT(opt.moves(), 0);
}

TEST(Optimizer, ReversesOnWorseMetric)
{
    ExdOptimizer opt(basicOptConfig());
    Vector measured{4.0, 2.0};
    opt.update(1.0, measured);
    opt.update(0.9, measured);
    int rev_before = opt.reversals();
    // A large worsening (even EMA-filtered) forces a reversal, and the
    // very next move retreats the perf target below the measurement.
    opt.update(5.0, measured);
    EXPECT_GT(opt.reversals(), rev_before);
    EXPECT_LT(opt.targets()[0], measured[0]);
}

TEST(Optimizer, RespectsCeilingsAndFloors)
{
    ExdOptimizer opt(basicOptConfig());
    Vector measured{100.0, 100.0};
    for (int i = 0; i < 30; ++i) {
        opt.update(1.0, measured);
    }
    EXPECT_LE(opt.targets()[0], 10.0);
    EXPECT_LE(opt.targets()[1], 3.0);
}

TEST(Optimizer, FixedAndCeilingRoles)
{
    OptimizerConfig oc = basicOptConfig();
    oc.role = {TargetRole::kFixed, TargetRole::kCeiling};
    ExdOptimizer opt(oc);
    Vector measured{7.7, 2.4};
    for (int i = 0; i < 10; ++i) {
        opt.update(1.0, measured);
    }
    EXPECT_DOUBLE_EQ(opt.targets()[0], 3.0);   // held at initial
    EXPECT_NEAR(opt.targets()[1], 2.4, 1e-9);  // follows measurement
}

TEST(Optimizer, CoordinateModeMovesOneChannel)
{
    OptimizerConfig oc = basicOptConfig();
    oc.coordinate = true;
    ExdOptimizer opt(oc);
    Vector measured{4.0, 2.0};
    opt.update(1.0, measured);
    // Exactly one channel displaced from its anchor.
    int displaced = 0;
    for (std::size_t i = 0; i < 2; ++i) {
        if (std::abs(opt.targets()[i] - measured[i]) > 1e-9) {
            ++displaced;
        }
    }
    EXPECT_EQ(displaced, 1);
}

TEST(Optimizer, ResetRestoresInitialState)
{
    ExdOptimizer opt(basicOptConfig());
    opt.update(1.0, Vector{4.0, 2.0});
    opt.update(0.5, Vector{4.0, 2.0});
    opt.reset();
    EXPECT_EQ(opt.moves(), 0);
    EXPECT_EQ(opt.reversals(), 0);
    EXPECT_DOUBLE_EQ(opt.targets()[0], 3.0);
}

TEST(LqgRuntime, TracksAndCountsWastedMoves)
{
    // Aggressive static controller: u = 5 * dev (via -5 * (y - r)).
    StateSpace k = StateSpace::gain(Matrix{{-5.0}}, 0.5);
    std::vector<InputGrid> grids{{0.0, 2.0, 0.1}};
    LqgRuntime rt(k, grids, Vector{1.0});
    // Small deviation: inside range, no waste.
    Vector u = rt.invoke(Vector{0.1});
    EXPECT_NEAR(u[0], 1.5, 1e-9);
    EXPECT_EQ(rt.wastedMoves(), 0);
    // Large deviation: command beyond the physical range is clamped
    // and counted (the Sec. VI-B "wasted actuation").
    u = rt.invoke(Vector{2.0});
    EXPECT_DOUBLE_EQ(u[0], 2.0);
    EXPECT_EQ(rt.wastedMoves(), 1);
    EXPECT_EQ(rt.totalMoves(), 2);
    rt.reset();
    EXPECT_EQ(rt.wastedMoves(), 0);
}

TEST(FixedPoint, ConversionRoundTrip)
{
    for (double v : {0.0, 1.0, -1.5, 1000.25, -20000.125}) {
        EXPECT_NEAR(FixedPointSsv::fromFixed(FixedPointSsv::toFixed(v)), v,
                    1e-4);
    }
}

TEST(FixedPoint, MatchesDoublePrecisionStateMachine)
{
    // Random small stable controller.
    Matrix a = 0.4 * test::randomMatrix(4, 4, 77);
    Matrix b = test::randomMatrix(4, 3, 78);
    Matrix c = test::randomMatrix(2, 4, 79);
    Matrix d = test::randomMatrix(2, 3, 80);
    StateSpace k(a, b, c, d, 0.5);
    FixedPointSsv fx(k);
    Vector x = Vector::zeros(4);
    for (int t = 0; t < 20; ++t) {
        Vector dy{std::sin(0.3 * t), std::cos(0.2 * t), 0.5};
        Vector u_ref = control::stepOnce(k, x, dy);
        Vector u_fx = fx.stepDouble(dy);
        EXPECT_TRUE(u_fx.isApprox(u_ref, 2e-3)) << "t=" << t;
    }
}

TEST(FixedPoint, PaperCostNumbers)
{
    // N=20, I=4, O+E=7: the paper's Sec. VI-D dimensions.
    Matrix a(20, 20);
    Matrix b(20, 7);
    Matrix c(4, 20);
    Matrix d(4, 7);
    StateSpace k(a, b, c, d, 0.5);
    FixedPointSsv fx(k);
    // (N + I) * (N + O + E) = 24 * 27 = 648 MACs ~ "700 operations".
    EXPECT_EQ(fx.macsPerInvocation(), 648u);
    // Storage: matrices + state = (648 + 20) * 4 B ~ 2.6 KB.
    EXPECT_NEAR(fx.storageBytes(), 2672.0, 1.0);
    EXPECT_GT(fx.opsPerInvocation(), fx.macsPerInvocation());
}

TEST(FixedPoint, StepValidatesSize)
{
    StateSpace k(Matrix(2, 2), Matrix(2, 3), Matrix(1, 2), Matrix(1, 3),
                 0.5);
    FixedPointSsv fx(k);
    EXPECT_THROW(fx.step({1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace yukta::controllers
