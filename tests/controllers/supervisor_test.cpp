// Degradation-ladder semantics: every fault class drives the expected
// transitions, recovery is hysteretic (no oscillation on alternating
// telemetry), the safe state really satisfies the paper's caps, and
// the command guard never lets NaN actuation through.
// yukta-lint: allow-file(sensor-construction) tests forge readings
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "controllers/supervisor.h"
#include "platform/apps.h"

namespace yukta::controllers {
namespace {

using platform::BoardConfig;
using platform::HardwareInputs;
using platform::PlacementPolicy;
using platform::SensorReadings;

const double kNan = std::numeric_limits<double>::quiet_NaN();

BoardConfig boardCfg()
{
    return BoardConfig::odroidXu3();
}

/** Plausible, tick-varying telemetry (defeats the stuck detector). */
SensorReadings
goodObs(int tick)
{
    SensorReadings obs;
    obs.p_big = 1.5 + 0.001 * tick;
    obs.p_little = 0.10 + 0.0001 * tick;
    obs.temp = 50.0 + 0.01 * tick;
    obs.instr_big = 2.0 * (tick + 1);
    obs.instr_little = 0.5 * (tick + 1);
    return obs;
}

double tickTime(int tick)
{
    return kControlPeriod * tick;
}

TEST(Supervisor, CleanTelemetryStaysNominal)
{
    Supervisor sup(boardCfg());
    for (int tick = 0; tick < 20; ++tick) {
        auto d = sup.assess(tick, tickTime(tick), goodObs(tick));
        EXPECT_EQ(d.mode, SupervisorMode::kNominal);
        EXPECT_FALSE(d.reset_primaries);
    }
    EXPECT_EQ(sup.report().transitions(), 0);
    EXPECT_EQ(sup.report().invalid_ticks, 0);
    EXPECT_EQ(sup.report().repaired_fields, 0);
    EXPECT_EQ(sup.report().timeDegraded(), 0.0);
}

TEST(Supervisor, SustainedNanWalksTheWholeLadder)
{
    SupervisorConfig cfg;  // hold_limit=2, fallback_limit=8
    Supervisor sup(boardCfg(), cfg);
    for (int tick = 0; tick < 5; ++tick) {
        sup.assess(tick, tickTime(tick), goodObs(tick));
    }
    for (int tick = 5; tick < 25; ++tick) {
        SensorReadings obs = goodObs(tick);
        obs.p_big = kNan;
        auto d = sup.assess(tick, tickTime(tick), obs);
        // Repaired readings are always finite.
        EXPECT_TRUE(std::isfinite(d.readings.p_big));
    }
    EXPECT_EQ(sup.mode(), SupervisorMode::kSafe);
    const auto& events = sup.report().events;
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].from, SupervisorMode::kNominal);
    EXPECT_EQ(events[0].to, SupervisorMode::kHold);
    EXPECT_NE(events[0].reason.find("p_big:non-finite"),
              std::string::npos);
    EXPECT_EQ(events[1].to, SupervisorMode::kFallback);
    EXPECT_EQ(events[2].to, SupervisorMode::kSafe);
    // Degradation spacing follows the configured budgets.
    EXPECT_EQ(events[0].period, 5);
    EXPECT_EQ(events[1].period, 5 + cfg.hold_limit);
    EXPECT_EQ(events[2].period, 5 + cfg.fallback_limit);
}

TEST(Supervisor, RecoveryClimbsOneRungPerHealthyWindow)
{
    SupervisorConfig cfg;
    Supervisor sup(boardCfg(), cfg);
    int tick = 0;
    for (; tick < 15; ++tick) {
        SensorReadings obs = goodObs(tick);
        obs.temp = kNan;
        sup.assess(tick, tickTime(tick), obs);
    }
    ASSERT_EQ(sup.mode(), SupervisorMode::kSafe);

    bool saw_reset = false;
    for (int good = 0; good < 3 * cfg.recovery_ticks; ++good, ++tick) {
        auto d = sup.assess(tick, tickTime(tick), goodObs(tick));
        saw_reset = saw_reset || d.reset_primaries;
    }
    EXPECT_EQ(sup.mode(), SupervisorMode::kNominal);
    EXPECT_TRUE(saw_reset);
    const auto& events = sup.report().events;
    // kSafe -> kFallback -> kHold -> kNominal, one per window.
    ASSERT_GE(events.size(), 6u);
    const auto n = events.size();
    EXPECT_EQ(events[n - 3].to, SupervisorMode::kFallback);
    EXPECT_EQ(events[n - 2].to, SupervisorMode::kHold);
    EXPECT_EQ(events[n - 1].to, SupervisorMode::kNominal);
    EXPECT_EQ(events[n - 2].period - events[n - 3].period,
              cfg.recovery_ticks);
    EXPECT_EQ(events[n - 1].period - events[n - 2].period,
              cfg.recovery_ticks);
}

TEST(Supervisor, AlternatingTelemetryDoesNotOscillate)
{
    Supervisor sup(boardCfg());
    for (int tick = 0; tick < 40; ++tick) {
        SensorReadings obs = goodObs(tick);
        if (tick % 2 == 1) {
            obs.p_little = kNan;
        }
        sup.assess(tick, tickTime(tick), obs);
    }
    // One drop into kHold; never enough consecutive bad ticks to fall
    // further, never enough consecutive good ticks to climb out.
    EXPECT_EQ(sup.mode(), SupervisorMode::kHold);
    EXPECT_EQ(sup.report().transitions(), 1);
}

TEST(Supervisor, DetectsEverySensorFaultClass)
{
    struct Case {
        const char* name;
        void (*mutate)(SensorReadings&);
        const char* reason;
    };
    const Case cases[] = {
        {"nan", [](SensorReadings& o) { o.p_big = kNan; },
         "p_big:non-finite"},
        {"inf",
         [](SensorReadings& o) {
             o.temp = std::numeric_limits<double>::infinity();
         },
         "temp:non-finite"},
        {"implausible-high",
         [](SensorReadings& o) { o.temp = 200.0; },
         "temp:implausible-high"},
        {"dropout", [](SensorReadings& o) { o.p_big = 0.0; },
         "p_big:implausible-low"},
        {"below-ambient", [](SensorReadings& o) { o.temp = 10.0; },
         "temp:below-ambient"},
        {"spike", [](SensorReadings& o) { o.p_little = 40.0; },
         "p_little:implausible-high"},
        {"counter-reset",
         [](SensorReadings& o) { o.instr_big = 0.001; },
         "instr_big:counter-reset"},
    };
    for (const Case& c : cases) {
        SCOPED_TRACE(c.name);
        Supervisor sup(boardCfg());
        for (int tick = 0; tick < 5; ++tick) {
            sup.assess(tick, tickTime(tick), goodObs(tick));
        }
        SensorReadings obs = goodObs(5);
        c.mutate(obs);
        auto d = sup.assess(5, tickTime(5), obs);
        EXPECT_EQ(d.mode, SupervisorMode::kHold);
        ASSERT_EQ(sup.report().events.size(), 1u);
        EXPECT_NE(sup.report().events[0].reason.find(c.reason),
                  std::string::npos);
        EXPECT_GE(sup.report().repaired_fields, 1);
    }
}

TEST(Supervisor, BitIdenticalRepeatsMeanStuckSensor)
{
    Supervisor sup(boardCfg());
    for (int tick = 0; tick < 12; ++tick) {
        SensorReadings obs = goodObs(tick);
        obs.p_big = 2.0;  // plausible but frozen
        sup.assess(tick, tickTime(tick), obs);
    }
    EXPECT_NE(sup.mode(), SupervisorMode::kNominal);
    ASSERT_GE(sup.report().events.size(), 1u);
    EXPECT_NE(sup.report().events[0].reason.find("p_big:stuck"),
              std::string::npos);
}

TEST(Supervisor, StaleCountersAreInvalid)
{
    Supervisor sup(boardCfg());
    for (int tick = 0; tick < 5; ++tick) {
        sup.assess(tick, tickTime(tick), goodObs(tick));
    }
    SensorReadings frozen = goodObs(4);  // counters did not advance
    frozen.p_big += 0.01;  // keep the analog side varying
    frozen.temp += 0.1;
    auto d = sup.assess(5, tickTime(5), frozen);
    EXPECT_EQ(d.mode, SupervisorMode::kHold);
    EXPECT_NE(sup.report().events[0].reason.find("instr_big:stale"),
              std::string::npos);
}

TEST(Supervisor, ParkedBigClusterIsNotAStaleCounterFault)
{
    // In kSafe the supervisor's own placement parks the big cluster,
    // so instr_big legitimately stops advancing. Without the
    // notePlacement gate that reads as a stale-counter fault and the
    // ladder locks in kSafe forever.
    Supervisor sup(boardCfg());
    for (int tick = 0; tick < 5; ++tick) {
        sup.assess(tick, tickTime(tick), goodObs(tick));
    }
    sup.notePlacement(sup.safePolicy());  // threads_big = 0
    SensorReadings parked = goodObs(5);
    parked.instr_big = goodObs(4).instr_big;  // big counter frozen
    auto d = sup.assess(5, tickTime(5), parked);
    EXPECT_EQ(d.mode, SupervisorMode::kNominal);
    EXPECT_EQ(sup.report().invalid_ticks, 0);

    // Once threads are commanded back onto the big cluster, a frozen
    // counter is a fault again.
    platform::PlacementPolicy busy = sup.safePolicy();
    busy.threads_big = 4.0;
    sup.notePlacement(busy);
    auto d2 = sup.assess(6, tickTime(6), parked);
    EXPECT_EQ(d2.mode, SupervisorMode::kHold);
    EXPECT_NE(sup.report().events[0].reason.find("instr_big:stale"),
              std::string::npos);
}

TEST(Supervisor, WarmupSuppressesFloorChecks)
{
    // The power windows publish their first value after 260 ms, so
    // period 0 legitimately reads 0 W; that must not trip the ladder.
    Supervisor sup(boardCfg());
    SensorReadings cold;
    cold.temp = boardCfg().thermal.ambient;
    auto d = sup.assess(0, 0.0, cold);
    EXPECT_EQ(d.mode, SupervisorMode::kNominal);
    EXPECT_EQ(sup.report().invalid_ticks, 0);
}

TEST(Supervisor, SafeStateSatisfiesTheCapsOnTheBoard)
{
    const BoardConfig cfg = boardCfg();
    Supervisor sup(cfg);
    platform::Workload workload(platform::AppCatalog::get("swaptions"));
    platform::Board board(cfg, workload, /*seed=*/1);
    board.applyHardwareInputs(sup.safeHardware());
    board.applyPlacementPolicy(sup.safePolicy());
    board.run(30.0);
    EXPECT_EQ(board.constraintViolationTime(), 0.0);
    EXPECT_EQ(board.emergencyTime(), 0.0);
}

TEST(Supervisor, GuardReplacesNonFiniteCommands)
{
    Supervisor sup(boardCfg());
    HardwareInputs hw = sup.safeHardware();
    hw.freq_big = kNan;
    hw.freq_little = std::numeric_limits<double>::infinity();
    HardwareInputs fixed = sup.guardHardware(hw);
    EXPECT_TRUE(std::isfinite(fixed.freq_big));
    EXPECT_TRUE(std::isfinite(fixed.freq_little));

    PlacementPolicy policy;
    policy.threads_big = kNan;
    policy.tpc_big = kNan;
    policy.tpc_little = 2.0;
    PlacementPolicy fixed_policy = sup.guardPolicy(policy);
    EXPECT_TRUE(std::isfinite(fixed_policy.threads_big));
    EXPECT_TRUE(std::isfinite(fixed_policy.tpc_big));
    EXPECT_EQ(fixed_policy.tpc_little, 2.0);
    EXPECT_EQ(sup.report().repaired_commands, 4);

    HardwareInputs clean = sup.guardHardware(sup.safeHardware());
    EXPECT_EQ(clean.freq_big, sup.safeHardware().freq_big);
    EXPECT_EQ(sup.report().repaired_commands, 4);
}

TEST(Supervisor, ResetClearsTheLadderAndTheReport)
{
    Supervisor sup(boardCfg());
    for (int tick = 0; tick < 15; ++tick) {
        SensorReadings obs = goodObs(tick);
        obs.p_big = kNan;
        sup.assess(tick, tickTime(tick), obs);
    }
    EXPECT_NE(sup.mode(), SupervisorMode::kNominal);
    sup.reset();
    EXPECT_EQ(sup.mode(), SupervisorMode::kNominal);
    EXPECT_EQ(sup.report().transitions(), 0);
    EXPECT_EQ(sup.report().invalid_ticks, 0);
}

/** goodObs with the analog channels frozen at @p frozen_tick's values
 * (counters keep advancing) -- the telemetry signature of a few held
 * ticks after a controller reset. */
SensorReadings
frozenAnalogObs(int tick, int frozen_tick)
{
    SensorReadings obs = goodObs(tick);
    SensorReadings at = goodObs(frozen_tick);
    obs.p_big = at.p_big;
    obs.p_little = at.p_little;
    obs.temp = at.temp;
    return obs;
}

TEST(Supervisor, ControllerResetDoesNotFalseTripStuckDetector)
{
    // Regression: a controller reset (hot-swap, crash reboot) holds or
    // zeroes commands for a few ticks, so the quantized analog
    // telemetry legitimately repeats bit-identically. Before
    // noteControllerReset() the stuck-sensor streaks kept counting
    // through the reset and the ladder false-tripped on its own
    // recovery.
    SupervisorConfig cfg;

    // Reproduce the false positive: same frozen window, no reset
    // declared.
    {
        Supervisor sup(boardCfg(), cfg);
        for (int tick = 0; tick < 5; ++tick) {
            sup.assess(tick, tickTime(tick), goodObs(tick));
        }
        for (int tick = 5; tick < 5 + cfg.stuck_ticks + 2; ++tick) {
            sup.assess(tick, tickTime(tick), frozenAnalogObs(tick, 5));
        }
        ASSERT_NE(sup.mode(), SupervisorMode::kNominal);
        ASSERT_GE(sup.report().events.size(), 1u);
        EXPECT_NE(sup.report().events[0].reason.find(":stuck"),
                  std::string::npos);
    }

    // With the reset declared, the identical frozen window is forgiven
    // and the ladder never leaves nominal once telemetry resumes.
    {
        Supervisor sup(boardCfg(), cfg);
        for (int tick = 0; tick < 5; ++tick) {
            sup.assess(tick, tickTime(tick), goodObs(tick));
        }
        sup.noteControllerReset();
        int tick = 5;
        for (; tick < 5 + cfg.reset_grace_ticks; ++tick) {
            auto d = sup.assess(tick, tickTime(tick),
                                frozenAnalogObs(tick, 5));
            EXPECT_EQ(d.mode, SupervisorMode::kNominal);
        }
        for (; tick < 5 + cfg.reset_grace_ticks + 10; ++tick) {
            auto d = sup.assess(tick, tickTime(tick), goodObs(tick));
            EXPECT_EQ(d.mode, SupervisorMode::kNominal);
        }
        EXPECT_EQ(sup.report().transitions(), 0);
        EXPECT_EQ(sup.report().invalid_ticks, 0);
    }

    // The grace window is bounded: telemetry still frozen after it
    // expires is a real stuck sensor and must trip.
    {
        Supervisor sup(boardCfg(), cfg);
        for (int tick = 0; tick < 5; ++tick) {
            sup.assess(tick, tickTime(tick), goodObs(tick));
        }
        sup.noteControllerReset();
        int end = 5 + cfg.reset_grace_ticks + cfg.stuck_ticks + 2;
        for (int tick = 5; tick < end; ++tick) {
            sup.assess(tick, tickTime(tick), frozenAnalogObs(tick, 5));
        }
        EXPECT_NE(sup.mode(), SupervisorMode::kNominal);
    }
}

TEST(Supervisor, ModeNames)
{
    EXPECT_EQ(supervisorModeName(SupervisorMode::kNominal), "nominal");
    EXPECT_EQ(supervisorModeName(SupervisorMode::kHold), "hold");
    EXPECT_EQ(supervisorModeName(SupervisorMode::kFallback), "fallback");
    EXPECT_EQ(supervisorModeName(SupervisorMode::kSafe), "safe");
}

}  // namespace
}  // namespace yukta::controllers
