// Exhaustive state-machine test of the supervisor's degradation
// ladder: every (rung, event) pair is enumerated against the expected
// next rung, descent and recovery walk adjacent rungs only, and the
// hysteresis invariant (one rung per full healthy window, counters
// re-earned) holds under randomized good/bad telemetry.
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "controllers/supervisor.h"
#include "support/prng.h"

namespace yukta::controllers {
namespace {

/** Ladder position as an integer: 0 = nominal ... 3 = safe. */
int
rungIndex(SupervisorMode mode)
{
    switch (mode) {
      case SupervisorMode::kNominal:
        return 0;
      case SupervisorMode::kHold:
        return 1;
      case SupervisorMode::kFallback:
        return 2;
      case SupervisorMode::kSafe:
        return 3;
    }
    return -1;
}

/**
 * Drives a Supervisor with synthetic telemetry. Healthy readings
 * wobble tick-to-tick (the stuck-sensor detector treats bit-identical
 * analog values as a fault) and keep the instruction counters
 * advancing; bad readings carry a non-finite big-cluster power.
 */
class LadderDriver
{
  public:
    LadderDriver() : sup_(platform::BoardConfig::odroidXu3(), config()) {}

    /** The explicit knobs the expectations below are written against. */
    static SupervisorConfig config()
    {
        SupervisorConfig cfg;
        cfg.hold_limit = 2;
        cfg.fallback_limit = 8;
        cfg.recovery_ticks = 4;
        cfg.warmup_periods = 2;
        return cfg;
    }

    /** Feeds one tick; @p healthy selects good vs corrupt readings. */
    SupervisorDecision step(bool healthy)
    {
        // yukta-lint: allow(sensor-construction) synthetic telemetry
        platform::SensorReadings obs;
        obs.p_big = 1.0 + 0.001 * static_cast<double>(tick_ % 7);
        obs.p_little = 0.1 + 0.0001 * static_cast<double>(tick_ % 3);
        obs.temp = 50.0 + 0.01 * static_cast<double>(tick_ % 5);
        instr_big_ += 0.5;
        instr_little_ += 0.25;
        obs.instr_big = instr_big_;
        obs.instr_little = instr_little_;
        if (!healthy) {
            obs.p_big = std::numeric_limits<double>::quiet_NaN();
        }
        auto decision = sup_.assess(tick_, 0.5 * tick_, obs);
        ++tick_;
        return decision;
    }

    /**
     * Feeds ticks (bad for lower rungs, good for kNominal) until the
     * supervisor sits on @p target; fails the test if it never does.
     */
    void driveTo(SupervisorMode target)
    {
        for (int i = 0; i < 64; ++i) {
            if (sup_.mode() == target) {
                return;
            }
            step(target == SupervisorMode::kNominal);
        }
        FAIL() << "never reached " << supervisorModeName(target);
    }

    Supervisor& supervisor() { return sup_; }

  private:
    Supervisor sup_;
    int tick_ = 0;
    double instr_big_ = 0.0;
    double instr_little_ = 0.0;
};

/** Asserts every logged transition moved exactly one rung. */
void
expectAdjacentTransitionsOnly(const Supervisor& sup)
{
    for (const SupervisorEvent& e : sup.report().events) {
        EXPECT_EQ(std::abs(rungIndex(e.to) - rungIndex(e.from)), 1)
            << supervisorModeName(e.from) << " -> "
            << supervisorModeName(e.to) << " at period " << e.period;
    }
}

TEST(SupervisorLadder, EveryRungEventPairYieldsTheExpectedNextRung)
{
    const SupervisorConfig cfg = LadderDriver::config();
    struct Case
    {
        SupervisorMode start;
        bool healthy;
        SupervisorMode expected;
    };
    // One event applied right after first reaching the rung: a single
    // tick never jumps rungs, and a single good tick never recovers
    // (the window is recovery_ticks long).
    const Case cases[] = {
        {SupervisorMode::kNominal, true, SupervisorMode::kNominal},
        {SupervisorMode::kNominal, false, SupervisorMode::kHold},
        {SupervisorMode::kHold, true, SupervisorMode::kHold},
        {SupervisorMode::kHold, false, SupervisorMode::kHold},
        {SupervisorMode::kFallback, true, SupervisorMode::kFallback},
        {SupervisorMode::kFallback, false, SupervisorMode::kFallback},
        {SupervisorMode::kSafe, true, SupervisorMode::kSafe},
        {SupervisorMode::kSafe, false, SupervisorMode::kSafe},
    };
    ASSERT_GT(cfg.hold_limit, 1);      // Else (hold, bad) expectation
    ASSERT_GT(cfg.recovery_ticks, 1);  // and (hold, good) shift.
    for (const Case& c : cases) {
        LadderDriver driver;
        driver.driveTo(c.start);
        driver.step(c.healthy);
        EXPECT_EQ(driver.supervisor().mode(), c.expected)
            << supervisorModeName(c.start) << " + "
            << (c.healthy ? "good" : "bad") << " tick";
        expectAdjacentTransitionsOnly(driver.supervisor());
    }
}

TEST(SupervisorLadder, SustainedFaultsDescendRungByRungOnSchedule)
{
    const SupervisorConfig cfg = LadderDriver::config();
    LadderDriver driver;
    driver.driveTo(SupervisorMode::kNominal);

    std::vector<SupervisorMode> seen;
    for (int bad = 1; bad <= cfg.fallback_limit + 2; ++bad) {
        driver.step(false);
        seen.push_back(driver.supervisor().mode());
    }
    // Tick 1 leaves nominal; hold persists through hold_limit bad
    // ticks; fallback persists through fallback_limit; then safe.
    for (int bad = 1; bad <= cfg.fallback_limit + 2; ++bad) {
        SupervisorMode want = SupervisorMode::kHold;
        if (bad > cfg.fallback_limit) {
            want = SupervisorMode::kSafe;
        } else if (bad > cfg.hold_limit) {
            want = SupervisorMode::kFallback;
        }
        EXPECT_EQ(seen[static_cast<std::size_t>(bad - 1)], want)
            << "after " << bad << " bad tick(s)";
    }
    expectAdjacentTransitionsOnly(driver.supervisor());
}

TEST(SupervisorLadder, RecoveryEarnsExactlyOneRungPerHealthyWindow)
{
    const SupervisorConfig cfg = LadderDriver::config();
    LadderDriver driver;
    driver.driveTo(SupervisorMode::kSafe);

    // safe -> fallback -> hold -> nominal: each rung requires a full
    // fresh window; within a window the mode must not move.
    const SupervisorMode rungs[] = {SupervisorMode::kFallback,
                                    SupervisorMode::kHold,
                                    SupervisorMode::kNominal};
    for (SupervisorMode next : rungs) {
        for (int good = 1; good < cfg.recovery_ticks; ++good) {
            const SupervisorMode before = driver.supervisor().mode();
            driver.step(true);
            EXPECT_EQ(driver.supervisor().mode(), before)
                << "recovered early after " << good << " good tick(s)";
        }
        const auto decision = driver.step(true);
        EXPECT_EQ(driver.supervisor().mode(), next);
        EXPECT_EQ(decision.reset_primaries,
                  next == SupervisorMode::kNominal)
            << "primaries must reset exactly on re-entry to nominal";
    }
    expectAdjacentTransitionsOnly(driver.supervisor());
}

TEST(SupervisorLadder, AlternatingTelemetryCannotOscillateTheLadder)
{
    LadderDriver driver;
    driver.driveTo(SupervisorMode::kFallback);
    // good/bad alternation never completes a healthy window, and the
    // bad streak restarts every other tick: the rung must not move.
    for (int i = 0; i < 64; ++i) {
        driver.step(i % 2 == 0);
        EXPECT_EQ(driver.supervisor().mode(), SupervisorMode::kFallback)
            << "tick " << i;
    }
}

TEST(SupervisorLadder, RandomizedTelemetryPreservesLadderInvariants)
{
    const SupervisorConfig cfg = LadderDriver::config();
    testsupport::SplitMix64 rng(0x1ADDE25EEDull);
    LadderDriver driver;
    driver.driveTo(SupervisorMode::kNominal);

    int good_streak = 0;
    int prev = rungIndex(driver.supervisor().mode());
    for (int i = 0; i < 2000; ++i) {
        const bool healthy = rng.uniform(0.0, 1.0) < 0.6;
        driver.step(healthy);
        good_streak = healthy ? good_streak + 1 : 0;

        const int now = rungIndex(driver.supervisor().mode());
        // One rung per tick, in either direction.
        EXPECT_LE(std::abs(now - prev), 1) << "tick " << i;
        // Climbing requires a complete healthy window.
        if (now < prev) {
            EXPECT_GE(good_streak, cfg.recovery_ticks) << "tick " << i;
            good_streak = 0;  // The supervisor re-earns each rung.
        }
        // Descending requires a bad tick.
        if (now > prev) {
            EXPECT_FALSE(healthy) << "tick " << i;
        }
        prev = now;
    }
    expectAdjacentTransitionsOnly(driver.supervisor());
}

}  // namespace
}  // namespace yukta::controllers
