// Tests for the heuristic controllers and the multilayer harness.
#include <gtest/gtest.h>

#include "controllers/heuristics.h"
#include "controllers/multilayer.h"
#include "platform/apps.h"

namespace yukta::controllers {
namespace {

using platform::BoardConfig;
using platform::DvfsTable;
using platform::HardwareInputs;
using platform::PlacementPolicy;

BoardConfig cfg = BoardConfig::odroidXu3();

TEST(CoordinatedHw, RampsUpWhileSafe)
{
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    CoordinatedHwHeuristic h(cfg, big, little);
    HwSignals safe;
    safe.p_big = 1.0;
    safe.p_little = 0.1;
    safe.temp = 45.0;
    safe.threads_big = 4.0;
    safe.tpc_big = 1.0;
    safe.tpc_little = 1.0;
    HardwareInputs first = h.invoke(safe);
    HardwareInputs later = first;
    for (int i = 0; i < 12; ++i) {
        later = h.invoke(safe);
    }
    EXPECT_GE(later.freq_big, first.freq_big);
    // Sized to thread demand: 4 threads at 1/core -> 4 big cores.
    EXPECT_EQ(later.big_cores, 4u);
}

TEST(CoordinatedHw, BacksOffOnViolation)
{
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    CoordinatedHwHeuristic h(cfg, big, little);
    HwSignals hot;
    hot.p_big = 3.6;  // over the 3.3 limit
    hot.p_little = 0.1;
    hot.temp = 60.0;
    hot.threads_big = 4.0;
    hot.tpc_big = 1.0;
    HardwareInputs a = h.invoke(hot);
    HardwareInputs b = h.invoke(hot);
    EXPECT_LT(b.freq_big, a.freq_big + 1e-12);
}

TEST(CoordinatedHw, LeavesMarginBelowLimit)
{
    // At a power just inside the limit, the conservative heuristic
    // must NOT keep raising frequency (it leaves headroom).
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    CoordinatedHwHeuristic h(cfg, big, little);
    HwSignals near;
    near.p_big = 0.85 * cfg.power_limit_big;
    near.p_little = 0.1;
    near.temp = 60.0;
    near.threads_big = 4.0;
    near.tpc_big = 1.0;
    HardwareInputs a = h.invoke(near);
    HardwareInputs b = h.invoke(near);
    EXPECT_LE(b.freq_big, a.freq_big + 1e-12);
}

TEST(CoordinatedOs, CapacityProportionalSplit)
{
    CoordinatedOsHeuristic h(cfg);
    OsSignals s;
    s.num_threads = 8;
    s.big_cores = 4.0;
    s.little_cores = 4.0;
    s.freq_big = 2.0;
    s.freq_little = 1.4;
    PlacementPolicy p = h.invoke(s);
    // Big capacity 4*2*2=16 vs little 5.6: most threads go big.
    EXPECT_GE(p.threads_big, 5.0);
    EXPECT_LE(p.threads_big, 8.0);
    EXPECT_GE(p.tpc_big, 1.0);
}

TEST(CoordinatedOs, ConsolidatesUnderLightLoad)
{
    CoordinatedOsHeuristic h(cfg);
    OsSignals s;
    s.num_threads = 2;
    s.big_cores = 4.0;
    s.little_cores = 4.0;
    s.freq_big = 1.0;
    s.freq_little = 1.0;
    PlacementPolicy p = h.invoke(s);
    EXPECT_GE(p.tpc_little, 2.0);  // packs so cores can power down
}

TEST(DecoupledHw, MaxWhenCalmCutsOnViolation)
{
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    DecoupledHwHeuristic h(cfg, big, little);
    HwSignals calm;
    calm.p_big = 1.0;
    calm.p_little = 0.1;
    calm.temp = 50.0;
    HardwareInputs a = h.invoke(calm);
    EXPECT_DOUBLE_EQ(a.freq_big, 2.0);
    EXPECT_EQ(a.big_cores, 4u);

    HwSignals hot = calm;
    hot.p_big = 4.5;
    HardwareInputs b = h.invoke(hot);
    EXPECT_LT(b.freq_big, 2.0);
    // Cores cut only after sustained violations (frequency first).
    EXPECT_EQ(b.big_cores, 4u);
    h.invoke(hot);
    HardwareInputs d = h.invoke(hot);
    EXPECT_LT(d.big_cores, 4u);

    // Back to max the moment it looks calm (the oscillation driver).
    HardwareInputs e = h.invoke(calm);
    EXPECT_DOUBLE_EQ(e.freq_big, 2.0);
    EXPECT_EQ(e.big_cores, 4u);
}

TEST(DecoupledOs, RoundRobinIgnoresCoreTypes)
{
    DecoupledOsRoundRobin h(cfg);
    OsSignals s;
    s.num_threads = 8;
    // Reports from HW are ignored: the split assumes all cores.
    s.big_cores = 1.0;
    s.little_cores = 1.0;
    PlacementPolicy p = h.invoke(s);
    EXPECT_DOUBLE_EQ(p.threads_big, 4.0);
}

TEST(Multilayer, RunsHeuristicPairToCompletion)
{
    platform::AppModel tiny;
    tiny.name = "tiny";
    tiny.ipc_big = 2.0;
    tiny.ipc_little = 0.7;
    platform::AppPhase ph;
    ph.num_threads = 4;
    ph.work_per_thread = 3.0;
    tiny.phases = {ph};

    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    MultilayerSystem sys(
        platform::Board(cfg, platform::Workload(tiny), 5),
        std::make_unique<CoordinatedHwHeuristic>(cfg, big, little),
        std::make_unique<CoordinatedOsHeuristic>(cfg));
    RunMetrics m = sys.run(120.0);
    EXPECT_TRUE(m.completed);
    EXPECT_GT(m.exec_time, 0.0);
    EXPECT_GT(m.energy, 0.0);
    EXPECT_NEAR(m.exd, m.energy * m.exec_time, 1e-6);
    EXPECT_GT(m.periods, 0);
}

TEST(Multilayer, HonorsTimeBudget)
{
    platform::AppModel big_app;
    big_app.name = "huge";
    big_app.ipc_big = 1.0;
    big_app.ipc_little = 0.4;
    platform::AppPhase ph;
    ph.num_threads = 8;
    ph.work_per_thread = 1e6;
    big_app.phases = {ph};

    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    MultilayerSystem sys(
        platform::Board(cfg, platform::Workload(big_app), 5),
        std::make_unique<DecoupledHwHeuristic>(cfg, big, little),
        std::make_unique<DecoupledOsRoundRobin>(cfg));
    RunMetrics m = sys.run(5.0);
    EXPECT_FALSE(m.completed);
    EXPECT_NEAR(m.exec_time, 5.0, 0.6);
}

TEST(Multilayer, TraceCollectedWhenEnabled)
{
    platform::AppModel tiny;
    tiny.name = "tiny";
    tiny.ipc_big = 2.0;
    tiny.ipc_little = 0.7;
    platform::AppPhase ph;
    ph.num_threads = 2;
    ph.work_per_thread = 50.0;
    tiny.phases = {ph};

    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);
    MultilayerSystem sys(
        platform::Board(cfg, platform::Workload(tiny), 5),
        std::make_unique<CoordinatedHwHeuristic>(cfg, big, little),
        std::make_unique<CoordinatedOsHeuristic>(cfg));
    sys.enableTrace(1.0);
    RunMetrics m = sys.run(10.0);
    EXPECT_GE(m.trace.size(), 8u);
}

}  // namespace
}  // namespace yukta::controllers
