// Streaming mergeable rollups: the fleet's shard-local accumulators.
// The load-bearing property is exactness under merge -- a histogram
// built from N shard-local instances must equal one built serially.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "obs/rollup.h"

namespace {

using yukta::obs::MergeableHistogram;
using yukta::obs::RunningStat;

TEST(MergeableHistogram, CountsSumsAndExtremaTrackObservations)
{
    MergeableHistogram h({1.0, 2.0, 4.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(3.0);
    h.observe(10.0);  // overflow bucket
    EXPECT_EQ(h.count(), 4);
    EXPECT_DOUBLE_EQ(h.sum(), 15.0);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.5);
    EXPECT_DOUBLE_EQ(h.maxValue(), 10.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.75);
    const std::vector<long long> want{1, 1, 1, 1};
    EXPECT_EQ(h.bucketCounts(), want);
}

TEST(MergeableHistogram, EmptyHistogramReportsZeros)
{
    MergeableHistogram h({1.0});
    EXPECT_EQ(h.count(), 0);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(MergeableHistogram, QuantileIsConservativeBucketUpperBound)
{
    MergeableHistogram h({1.0, 2.0, 4.0});
    for (int i = 0; i < 90; ++i) {
        h.observe(0.5);
    }
    for (int i = 0; i < 10; ++i) {
        h.observe(1.5);
    }
    // p50 lands in the first bucket: reported as its UPPER bound.
    EXPECT_DOUBLE_EQ(h.quantile(0.50), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.95), 2.0);
    // The overflow bucket reports the exact recorded maximum.
    h.observe(100.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(MergeableHistogram, MergeIsExactAgainstSerialAccumulation)
{
    const auto bounds = [] {
        return MergeableHistogram::logSpaced(0.01, 1000.0, 9);
    };
    MergeableHistogram serial = bounds();
    MergeableHistogram shard_a = bounds();
    MergeableHistogram shard_b = bounds();
    for (int i = 0; i < 200; ++i) {
        const double v = 0.013 * static_cast<double>(i + 1);
        serial.observe(v);
        (i % 2 == 0 ? shard_a : shard_b).observe(v);
    }
    MergeableHistogram merged = bounds();
    merged.merge(shard_a);
    merged.merge(shard_b);
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_EQ(merged.bucketCounts(), serial.bucketCounts());
    EXPECT_DOUBLE_EQ(merged.minValue(), serial.minValue());
    EXPECT_DOUBLE_EQ(merged.maxValue(), serial.maxValue());
    EXPECT_DOUBLE_EQ(merged.quantile(0.99), serial.quantile(0.99));
    // Bit-identical rendering, not just approximately equal stats.
    EXPECT_EQ(merged.toJson(), serial.toJson());
}

TEST(MergeableHistogram, MergeRejectsMismatchedBounds)
{
    MergeableHistogram a({1.0, 2.0});
    MergeableHistogram b({1.0, 3.0});
    EXPECT_THROW(a.merge(b), std::invalid_argument);
    MergeableHistogram c({1.0});
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(MergeableHistogram, ConstructorValidatesBounds)
{
    EXPECT_THROW(MergeableHistogram(std::vector<double>{}),
                 std::invalid_argument);
    EXPECT_THROW(MergeableHistogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MergeableHistogram, LogSpacedPinsEndpoints)
{
    const MergeableHistogram h = MergeableHistogram::logSpaced(0.01,
                                                              1000.0, 9);
    ASSERT_FALSE(h.bounds().empty());
    EXPECT_DOUBLE_EQ(h.bounds().front(), 0.01);
    EXPECT_DOUBLE_EQ(h.bounds().back(), 1000.0);
    for (std::size_t i = 1; i < h.bounds().size(); ++i) {
        EXPECT_LT(h.bounds()[i - 1], h.bounds()[i]);
    }
}

TEST(RunningStat, AddAndMergeMatchSerial)
{
    RunningStat serial;
    RunningStat a;
    RunningStat b;
    for (int i = 0; i < 100; ++i) {
        const double v = static_cast<double>(i) - 50.0;
        serial.add(v);
        (i < 50 ? a : b).add(v);
    }
    RunningStat merged;
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.count, serial.count);
    EXPECT_DOUBLE_EQ(merged.sum, serial.sum);
    EXPECT_DOUBLE_EQ(merged.min, serial.min);
    EXPECT_DOUBLE_EQ(merged.max, serial.max);
    EXPECT_DOUBLE_EQ(merged.mean(), serial.mean());
    EXPECT_EQ(merged.toJson(), serial.toJson());
}

TEST(RunningStat, MergingAnEmptyStatIsANoOp)
{
    RunningStat s;
    s.add(2.0);
    const std::string before = s.toJson();
    s.merge(RunningStat{});
    EXPECT_EQ(s.toJson(), before);
}

TEST(Fnv1a, MatchesReferenceVectorsAndSeparatesInputs)
{
    // Standard FNV-1a 64-bit reference values.
    EXPECT_EQ(yukta::obs::fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(yukta::obs::fnv1a("a"), 12638187200555641996ull);
    EXPECT_NE(yukta::obs::fnv1a("fleet"), yukta::obs::fnv1a("fleed"));
}

}  // namespace
