// Observability layer: canonical number rendering, trace event
// serialization round trips, sink ordering/thread safety, the JSONL
// and Chrome writers, the metrics registry, and the first-divergence
// trace comparator the golden suite is built on.
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/trace_diff.h"

namespace yukta::obs {
namespace {

TEST(CanonicalNumber, RoundTripsDoublesExactly)
{
    const double values[] = {0.0,      -0.0,   1.0 / 3.0, 0.1,
                             6.25e-31, 2.0,    -17.125,   1e300,
                             5e-324,   M_PI,   123456789.123456789};
    for (double v : values) {
        const std::string s = canonicalNumber(v);
        // strtod, not std::stod: the latter throws on subnormals.
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(CanonicalNumber, NonFiniteRendersAsQuotedStrings)
{
    EXPECT_EQ(canonicalNumber(std::numeric_limits<double>::quiet_NaN()),
              "\"nan\"");
    EXPECT_EQ(canonicalNumber(std::numeric_limits<double>::infinity()),
              "\"inf\"");
    EXPECT_EQ(canonicalNumber(-std::numeric_limits<double>::infinity()),
              "\"-inf\"");
}

TEST(TraceEvent, BuildersPreserveInsertionOrder)
{
    TraceEvent ev(3, 1.5, "hw", "ssv");
    ev.num("a", 1.0).integer("b", -2).str("c", "x\"y").vec("d", {1.0, 2.5});
    ASSERT_EQ(ev.fields().size(), 4u);
    EXPECT_EQ(ev.fields()[0].first, "a");
    EXPECT_EQ(ev.fields()[1].first, "b");
    EXPECT_EQ(ev.fields()[2].first, "c");
    EXPECT_EQ(ev.fields()[3].first, "d");
    EXPECT_EQ(ev.tick(), 3);
    EXPECT_EQ(ev.time(), 1.5);
}

TEST(TraceEvent, JsonRoundTripIsByteIdentical)
{
    TraceEvent ev(7, 3.5, "supervisor", "transition");
    ev.str("from", "nominal")
        .str("to", "hold")
        .num("metric", 1.0 / 3.0)
        .vec("targets", {4.5, -0.25, 1e-17})
        .flags("sat", {0, 1, 0})
        .integer("n", 42);
    const std::string line = ev.toJsonLine();
    auto parsed = TraceEvent::fromJsonLine(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->toJsonLine(), line);
    EXPECT_EQ(parsed->tick(), 7);
    EXPECT_EQ(parsed->layer(), "supervisor");
    EXPECT_EQ(parsed->kind(), "transition");
    ASSERT_EQ(parsed->fields().size(), 6u);
    EXPECT_EQ(parsed->fields()[0].second, "\"nominal\"");
}

TEST(TraceEvent, MalformedLinesAreRejectedNotThrown)
{
    EXPECT_FALSE(TraceEvent::fromJsonLine("").has_value());
    EXPECT_FALSE(TraceEvent::fromJsonLine("not json").has_value());
    EXPECT_FALSE(TraceEvent::fromJsonLine("{\"tick\":1}").has_value());
    EXPECT_FALSE(
        TraceEvent::fromJsonLine("{\"tick\":1,\"time\":0,\"layer\":\"a\"")
            .has_value());
}

TEST(TraceSink, RecordsEventsAtTheCurrentTick)
{
    TraceSink sink("run-a");
    sink.beginTick(0, 0.0);
    sink.record(sink.makeEvent("hw", "ssv").num("u", 1.0));
    sink.beginTick(1, 0.5);
    sink.record(sink.makeEvent("os", "ssv").num("u", 2.0));
    ASSERT_EQ(sink.eventCount(), 2u);
    auto events = sink.events();
    EXPECT_EQ(events[0].tick(), 0);
    EXPECT_EQ(events[0].time(), 0.0);
    EXPECT_EQ(events[1].tick(), 1);
    EXPECT_EQ(events[1].time(), 0.5);
    sink.clear();
    EXPECT_EQ(sink.eventCount(), 0u);
}

TEST(TraceSink, JsonlWriterRoundTripsThroughTheReader)
{
    TraceSink sink("roundtrip");
    sink.beginTick(0, 0.0);
    sink.record(sink.makeEvent("hw", "ssv").vec("u", {1.0, 1.0 / 7.0}));
    sink.beginTick(1, 0.5);
    sink.record(sink.makeEvent("sys", "plant").num("temp", 55.25));

    std::ostringstream os;
    sink.writeJsonl(os);
    std::istringstream is(os.str());
    std::string run_id;
    auto events = readJsonlTrace(is, &run_id);
    ASSERT_TRUE(events.has_value());
    EXPECT_EQ(run_id, "roundtrip");
    ASSERT_EQ(events->size(), 2u);

    // Re-serializing the parsed events reproduces the file body.
    std::ostringstream os2;
    TraceSink copy("roundtrip");
    for (const TraceEvent& ev : *events) {
        copy.record(ev);
    }
    copy.writeJsonl(os2);
    EXPECT_EQ(os2.str(), os.str());
}

TEST(TraceSink, ChromeWriterEmitsValidSkeleton)
{
    TraceSink sink("chrome");
    sink.beginTick(0, 0.0);
    sink.record(sink.makeEvent("hw", "ssv").num("u", 1.0));
    sink.record(sink.makeEvent("os", "ssv").num("u", 2.0));
    std::ostringstream os;
    sink.writeChrome(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("thread_name"), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '\n');
}

TEST(TraceSink, ConcurrentRecordsAllArrive)
{
    TraceSink sink("mt");
    sink.beginTick(0, 0.0);
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
        threads.emplace_back([&sink] {
            for (int i = 0; i < 250; ++i) {
                sink.record(sink.makeEvent("hw", "x"));
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    EXPECT_EQ(sink.eventCount(), 1000u);
}

TEST(Metrics, CountersAndGauges)
{
    MetricsRegistry reg;
    reg.counter("a").add();
    reg.counter("a").add(4);
    reg.gauge("g").set(2.5);
    EXPECT_EQ(reg.counter("a").value(), 5);
    EXPECT_EQ(reg.gauge("g").value(), 2.5);
}

TEST(Metrics, HistogramBucketsObservations)
{
    MetricsRegistry reg;
    Histogram& h = reg.histogram("lat", {1.0, 10.0});
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);
    h.observe(0.25);
    EXPECT_EQ(h.count(), 4);
    EXPECT_EQ(h.sum(), 55.75);
    auto buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0], 2);
    EXPECT_EQ(buckets[1], 1);
    EXPECT_EQ(buckets[2], 1);
}

TEST(Metrics, SnapshotIsNameSortedAcrossKinds)
{
    MetricsRegistry reg;
    reg.gauge("zz").set(1.0);
    reg.counter("aa").add(3);
    reg.histogram("mm").observe(1.0);
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "aa");
    EXPECT_EQ(snap[1].name, "mm");
    EXPECT_EQ(snap[2].name, "zz");
    EXPECT_EQ(snap[0].type, "counter");
    EXPECT_EQ(snap[0].value, 3.0);

    const std::string json = reg.snapshotJson();
    EXPECT_NE(json.find("\"aa\""), std::string::npos);
    EXPECT_LT(json.find("\"aa\""), json.find("\"zz\""));

    reg.clear();
    EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Profile, ScopeMacroCompilesInEveryConfiguration)
{
    // With YUKTA_TRACE=OFF this must compile to nothing; with it ON it
    // records into the global registry. Either way the macro must be
    // usable as a plain statement.
    YUKTA_PROFILE_SCOPE("obs_test_scope");
    SUCCEED();
}

TEST(TraceDiff, IdenticalTracesHaveNoDivergence)
{
    TraceSink a("x");
    a.beginTick(0, 0.0);
    a.record(a.makeEvent("hw", "ssv").num("u", 1.0));
    EXPECT_FALSE(diffTraces(a.events(), a.events()).has_value());
}

TEST(TraceDiff, FirstDivergingFieldIsReported)
{
    TraceSink a("x");
    a.beginTick(0, 0.0);
    a.record(a.makeEvent("hw", "ssv").num("u", 1.0).num("v", 2.0));
    a.beginTick(1, 0.5);
    a.record(a.makeEvent("hw", "ssv").num("u", 1.0).num("v", 2.0));

    TraceSink b("x");
    b.beginTick(0, 0.0);
    b.record(b.makeEvent("hw", "ssv").num("u", 1.0).num("v", 2.0));
    b.beginTick(1, 0.5);
    b.record(b.makeEvent("hw", "ssv").num("u", 1.0).num("v", 2.0 + 1e-12));

    auto d = diffTraces(a.events(), b.events());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->event_index, 1u);
    EXPECT_EQ(d->tick, 1);
    EXPECT_EQ(d->layer, "hw");
    EXPECT_EQ(d->kind, "ssv");
    EXPECT_EQ(d->field, "v");
    const std::string report = describeDivergence(*d);
    EXPECT_NE(report.find("tick 1"), std::string::npos);
    EXPECT_NE(report.find("'v'"), std::string::npos);
}

TEST(TraceDiff, LengthMismatchIsADivergence)
{
    TraceSink a("x");
    a.beginTick(0, 0.0);
    a.record(a.makeEvent("hw", "ssv"));
    a.record(a.makeEvent("os", "ssv"));
    TraceSink b("x");
    b.beginTick(0, 0.0);
    b.record(b.makeEvent("hw", "ssv"));
    auto d = diffTraces(a.events(), b.events());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->event_index, 1u);
    EXPECT_EQ(d->field, "(event-count)");
}

TEST(TraceDiff, StreamsDiffLikeEventVectors)
{
    TraceSink a("x");
    a.beginTick(0, 0.0);
    a.record(a.makeEvent("hw", "ssv").num("u", 0.5));
    std::ostringstream oa;
    a.writeJsonl(oa);

    std::istringstream sa(oa.str());
    std::istringstream sb(oa.str());
    EXPECT_FALSE(diffJsonlStreams(sa, sb).has_value());

    TraceSink c("x");
    c.beginTick(0, 0.0);
    c.record(c.makeEvent("hw", "ssv").num("u", 0.75));
    std::ostringstream oc;
    c.writeJsonl(oc);
    std::istringstream sa2(oa.str());
    std::istringstream sc(oc.str());
    auto d = diffJsonlStreams(sa2, sc);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->field, "u");
}

}  // namespace
}  // namespace yukta::obs
