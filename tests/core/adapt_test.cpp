// OnlineAdapter unit tests on a synthetic SISO plant: the
// monitor -> settle -> synth-ready phase walk, the closed-loop
// calibration window, drift trace events, and mid-phase save/load
// bit-identity (the property fleet checkpoints ride on). The
// synthesis / hot-swap halves run against the real hardware layer in
// tests/fleet/fleet_adapt_test.cpp.
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adapt.h"
#include "obs/stateio.h"
#include "obs/trace.h"
#include "sysid/arx.h"
#include "sysid/excitation.h"

namespace yukta::core {
namespace {

using linalg::Vector;

/**
 * First-order SISO plant y(t) = a1 y(t-1) + b1 u(t-1) + noise, the
 * lag-1 convention identifyArx assumes. The deterministic
 * measurement noise keeps the training residual sigma meaningfully
 * non-zero (a noise-free fit would make every later prediction error
 * look like infinite sigma).
 */
struct Plant
{
    double a1 = 0.6;
    double b1 = 0.5;
    double y1 = 0.0;
    double u1 = 0.0;
    std::mt19937 rng{0xAB5u};

    double step(double u)
    {
        std::normal_distribution<double> dist(0.0, 0.02);
        double y = a1 * y1 + b1 * u1 + dist(rng);
        y1 = y;
        u1 = u;
        return y;
    }
};

sysid::IoData
trainingData()
{
    sysid::IoData data;
    Plant plant;
    for (double ut : sysid::prbs(400, -1.0, 1.0, 3, 0xADA7)) {
        data.u.push_back(Vector{ut});
        data.y.push_back(Vector{plant.step(ut)});
    }
    return data;
}

LayerSpec
sisoSpec()
{
    LayerSpec spec;
    spec.layer_name = "siso";
    spec.inputs.push_back({"u", -1.0, 1.0, 0.0, 1.0});
    spec.outputs.push_back({"y", 0.2, 2.0, false});
    return spec;
}

AdaptOptions
fastOptions()
{
    AdaptOptions opt;
    opt.warmup_ticks = 10;
    opt.calibration_ticks = 10;
    opt.settle_ticks = 10;
    opt.swap_delay_ticks = 2;
    opt.cooldown_ticks = 10;
    opt.cusum.slack_sigma = 2.5;
    opt.cusum.threshold = 20.0;
    return opt;
}

/** Drives @p adapter with @p plant under a PRBS input for @p steps. */
void
drive(OnlineAdapter& adapter, Plant& plant, std::size_t steps,
      unsigned seed)
{
    auto u = sysid::prbs(steps, -1.0, 1.0, 3, 0x5EED + seed);
    for (double ut : u) {
        adapter.observe(Vector{ut}, Vector{plant.step(ut)});
    }
}

TEST(OnlineAdapterTest, StaysInMonitorOnTheShippedPlant)
{
    sysid::IoData data = trainingData();
    sysid::ArxModel shipped = sysid::identifyArx(data, 0.5, {1, 1, 1e-8});
    OnlineAdapter adapter(sisoSpec(), 0, shipped, data, fastOptions());

    Plant plant;
    drive(adapter, plant, 500, 1);
    EXPECT_EQ(adapter.phase(), OnlineAdapter::Phase::kMonitor);
    EXPECT_EQ(adapter.driftEvents(), 0);
    EXPECT_FALSE(adapter.synthesisDue());
}

TEST(OnlineAdapterTest, WalksToSynthReadyOnPlantShift)
{
    sysid::IoData data = trainingData();
    sysid::ArxModel shipped = sysid::identifyArx(data, 0.5, {1, 1, 1e-8});
    OnlineAdapter adapter(sisoSpec(), 0, shipped, data, fastOptions());

    obs::TraceSink sink("adapt-test");
    adapter.setTraceSink(&sink);

    Plant plant;
    drive(adapter, plant, 100, 2);
    ASSERT_EQ(adapter.phase(), OnlineAdapter::Phase::kMonitor);

    // The plant gain doubles: the shipped model's prediction error
    // grows to several training sigma, the CUSUM fires, and after
    // settle_ticks the drifted model snapshot is frozen.
    plant.b1 = 1.0;
    drive(adapter, plant, 100, 3);
    EXPECT_GE(adapter.driftEvents(), 1);
    EXPECT_TRUE(adapter.synthesisDue());
    EXPECT_EQ(adapter.phase(), OnlineAdapter::Phase::kSynthReady);

    // The detection landed in the trace.
    bool saw_drift = false;
    for (const obs::TraceEvent& ev : sink.events()) {
        if (ev.layer() == "adapt" && ev.kind() == "drift") {
            saw_drift = true;
        }
    }
    EXPECT_TRUE(saw_drift);
}

TEST(OnlineAdapterTest, SaveLoadRoundTripIsBitExactMidPhase)
{
    sysid::IoData data = trainingData();
    sysid::ArxModel shipped = sysid::identifyArx(data, 0.5, {1, 1, 1e-8});
    OnlineAdapter a(sisoSpec(), 0, shipped, data, fastOptions());

    // Stop mid-calibration-and-drift: warmup done, calibration done,
    // detector integrating a live shift -- the maximally stateful
    // moment.
    Plant plant_a;
    drive(a, plant_a, 60, 4);
    plant_a.b1 = 1.0;
    drive(a, plant_a, 5, 5);

    obs::StateWriter w1;
    a.save(w1);
    OnlineAdapter b(sisoSpec(), 0, shipped, data, fastOptions());
    obs::StateReader r(w1.dump());
    b.load(r);

    // Continue both in lockstep on identical samples: every
    // subsequent dump must match byte for byte.
    Plant plant_b = plant_a;
    drive(a, plant_a, 50, 6);
    drive(b, plant_b, 50, 6);
    EXPECT_EQ(a.phase(), b.phase());
    EXPECT_EQ(a.driftEvents(), b.driftEvents());
    obs::StateWriter wa;
    obs::StateWriter wb;
    a.save(wa);
    b.save(wb);
    EXPECT_EQ(wa.dump(), wb.dump());
}

TEST(OnlineAdapterTest, CalibrationDisabledKeepsUnitScales)
{
    sysid::IoData data = trainingData();
    sysid::ArxModel shipped = sysid::identifyArx(data, 0.5, {1, 1, 1e-8});
    AdaptOptions opt = fastOptions();
    opt.calibration_ticks = 0;  // Detector arms straight off warmup.
    OnlineAdapter adapter(sisoSpec(), 0, shipped, data, opt);

    Plant plant;
    drive(adapter, plant, 200, 7);
    // Open-loop on the shipped plant the errors match the training
    // residuals, so even uncalibrated the detector stays quiet.
    EXPECT_EQ(adapter.driftEvents(), 0);

    plant.b1 = 1.0;
    drive(adapter, plant, 100, 8);
    EXPECT_GE(adapter.driftEvents(), 1);
}

TEST(OnlineAdapterTest, ValidatesSpecAgainstModelShape)
{
    sysid::IoData data = trainingData();
    sysid::ArxModel shipped = sysid::identifyArx(data, 0.5, {1, 1, 1e-8});
    LayerSpec two_inputs = sisoSpec();
    two_inputs.inputs.push_back({"u2", -1.0, 1.0, 0.0, 1.0});
    EXPECT_THROW(
        OnlineAdapter(two_inputs, 0, shipped, data, fastOptions()),
        std::invalid_argument);
    LayerSpec two_outputs = sisoSpec();
    two_outputs.outputs.push_back({"y2", 0.2, 1.0, false});
    EXPECT_THROW(
        OnlineAdapter(two_outputs, 0, shipped, data, fastOptions()),
        std::invalid_argument);
}

}  // namespace
}  // namespace yukta::core
