// Tests for the Fig. 3 nominal validation step.
#include <random>

#include <gtest/gtest.h>

#include "core/validation.h"

namespace yukta::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

/** A small, well-behaved layer design built directly (no campaign). */
LayerDesign
makeToyDesign()
{
    // Plant: decoupled 2x2 lags with gains, one external channel.
    // y_i(T) = 0.5 y_i(T-1) + g_i u_i(T-1).
    std::vector<Matrix> a_coeffs = {Matrix{{0.5, 0.0}, {0.0, 0.6}}};
    std::vector<Matrix> b_coeffs = {
        Matrix{{0.8, 0.0, 0.05}, {0.0, 0.5, 0.02}}};
    sysid::ArxModel model(a_coeffs, b_coeffs, Vector{2.0, 1.0, 0.0},
                          Vector{3.0, 1.2}, 0.5);

    LayerSpec spec;
    spec.layer_name = "toy";
    spec.inputs = {{"u1", 0.0, 4.0, 0.1, 1.0}, {"u2", 0.0, 2.0, 0.1, 1.0}};
    spec.outputs = {{"y1", 0.2, 4.0, false}, {"y2", 0.2, 2.0, false}};
    spec.external_names = {"e1"};
    spec.guardband = 0.3;
    spec.max_order = 8;

    DesignOptions options;
    options.arx = {1, 1, 1e-8, false, false};
    options.dk.max_iterations = 1;
    options.dk.bisection_steps = 10;
    options.dk.mu_grid = 12;

    // Synthesize through the same path the real flow uses, feeding the
    // model's own simulated data (exact identification).
    sysid::IoData data;
    control::StateSpace ss = model.toStateSpace();
    Vector x = Vector::zeros(ss.numStates());
    std::mt19937 rng(9);
    std::uniform_real_distribution<double> du(-1.0, 1.0);
    for (int t = 0; t < 400; ++t) {
        Vector u{2.0 + 2.0 * du(rng), 1.0 + du(rng), 0.3 * du(rng)};
        Vector uc = u - model.uMean();
        Vector y = control::stepOnce(ss, x, uc) + model.yMean();
        data.u.push_back(u);
        data.y.push_back(y);
    }
    auto design = designSsvLayer(spec, data, 1, options);
    EXPECT_TRUE(design.has_value());
    return *design;
}

TEST(Validation, NominalLoopStableAndBounded)
{
    LayerDesign design = makeToyDesign();
    NominalValidation v = validateNominal(design, 1.0, 150);
    EXPECT_TRUE(v.stable);
    EXPECT_TRUE(v.within_bounds) << summarize(v);
    ASSERT_EQ(v.steady_deviation.size(), 2u);
    for (int s : v.settle_periods) {
        EXPECT_GE(s, 0);
        EXPECT_LT(s, 150);
    }
}

TEST(Validation, SummaryMentionsVerdict)
{
    LayerDesign design = makeToyDesign();
    NominalValidation v = validateNominal(design, 1.0, 100);
    std::string s = summarize(v);
    EXPECT_NE(s.find("stable"), std::string::npos);
    EXPECT_NE(s.find("bounds"), std::string::npos);
}

TEST(Validation, LargeStepsReportHonestly)
{
    LayerDesign design = makeToyDesign();
    // A 30-bound step may or may not settle within the horizon, but
    // the validator must never report out-of-bounds as within.
    NominalValidation v = validateNominal(design, 30.0, 60);
    for (std::size_t i = 0; i < v.steady_deviation.size(); ++i) {
        if (v.steady_deviation[i] > design.spec.outputs[i].bound()) {
            EXPECT_FALSE(v.within_bounds);
        }
    }
}

}  // namespace
}  // namespace yukta::core
