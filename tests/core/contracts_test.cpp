// Tests for the YUKTA_CHECKS contracts layer (src/core/contracts.h).
//
// The binary is built twice by CI: once in the default configuration
// (checks compiled out) and once with -DYUKTA_CHECKS=ON. The #ifdef
// blocks below pick the assertions that apply to each mode, so the
// same source passes in both.
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>

#include <gtest/gtest.h>

#include "controllers/ssv_runtime.h"
#include "core/contracts.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace yukta {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

#ifdef YUKTA_CHECKS
/** The runtime fixture used by runtime_test.cpp, reduced: one state,
 *  3 dy inputs (2 deviations + 1 external), 2 physical inputs. */
controllers::SsvRuntime makeRuntime()
{
    robust::SsvController ctrl;
    linalg::Matrix a{{0.5}};
    linalg::Matrix b{{0.2, 0.1, 0.05}};
    linalg::Matrix c{{1.0}, {0.5}};
    linalg::Matrix d{{0.4, 0.0, 0.0}, {0.0, 0.3, 0.1}};
    ctrl.k = control::StateSpace(a, b, c, d, 0.5);
    ctrl.mu_peak = 0.8;
    ctrl.min_s = 1.25;
    ctrl.design_bounds = {1.0, 0.5};
    ctrl.guaranteed_bounds = {1.0, 0.5};
    std::vector<controllers::InputGrid> grids{{0.0, 4.0, 1.0},
                                              {0.2, 2.0, 0.1}};
    return controllers::SsvRuntime(ctrl, grids, linalg::Vector{2.0, 1.0},
                                   linalg::Vector{3.0});
}
#endif  // YUKTA_CHECKS

TEST(Contracts, ChecksEnabledMatchesBuildMode)
{
#ifdef YUKTA_CHECKS
    EXPECT_TRUE(contracts::checksEnabled());
#else
    EXPECT_FALSE(contracts::checksEnabled());
#endif
}

TEST(Contracts, MessagePartsNotEvaluatedOnSuccess)
{
    // Whether checks are on or off, a satisfied contract must never
    // evaluate its message parts (they may be expensive).
    int calls = 0;
    auto expensive = [&calls]() {
        ++calls;
        return "context";
    };
    YUKTA_REQUIRE(true, expensive());
    YUKTA_ENSURE(true, expensive());
    YUKTA_CHECK_FINITE(1.0, expensive());
    EXPECT_EQ(calls, 0);
}

TEST(Contracts, DescribeConcatenatesParts)
{
    EXPECT_EQ(contracts::describe(), "");
    EXPECT_EQ(contracts::describe("Matrix(", 4, "x", 3, ")"),
              "Matrix(4x3)");
}

TEST(Contracts, ViolationIsInvalidArgument)
{
    // Existing tests expect std::invalid_argument on bad shapes; the
    // contracts build must not change the caught type.
    contracts::ContractViolation v("precondition", "r < rows_", "m.cpp", 7,
                                   "Matrix(4x3) index (5,1)");
    EXPECT_STREQ(v.kind(), "precondition");
    const std::string what = v.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("r < rows_"), std::string::npos);
    EXPECT_NE(what.find("Matrix(4x3) index (5,1)"), std::string::npos);
    EXPECT_NE(what.find("m.cpp:7"), std::string::npos);
    static_assert(std::is_base_of_v<std::invalid_argument,
                                    contracts::ContractViolation>);
}

#ifdef YUKTA_CHECKS

TEST(ContractsOn, RequireThrowsWithDiagnostic)
{
    try {
        YUKTA_REQUIRE(1 + 1 == 3, "arithmetic is broken: ", 1 + 1);
        FAIL() << "YUKTA_REQUIRE did not throw";
    } catch (const contracts::ContractViolation& e) {
        EXPECT_STREQ(e.kind(), "precondition");
        EXPECT_NE(std::string(e.what()).find("arithmetic is broken: 2"),
                  std::string::npos);
    }
}

TEST(ContractsOn, MatrixIndexNamesShape)
{
    linalg::Matrix m(4, 3);
    try {
        (void)m(5, 1);
        FAIL() << "out-of-range access did not throw";
    } catch (const contracts::ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("Matrix(4x3) index (5,1)"),
                  std::string::npos);
    }
    const linalg::Matrix& cm = m;
    EXPECT_THROW((void)cm(0, 3), contracts::ContractViolation);
}

TEST(ContractsOn, MatrixProductMismatchThrows)
{
    linalg::Matrix a(2, 3, 1.0);
    linalg::Matrix b(4, 2, 1.0);
    // API-level validation: fires in every build; the checks build
    // must keep throwing something catchable as std::invalid_argument.
    EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(ContractsOn, LuRejectsNonFiniteInput)
{
    linalg::Matrix a{{1.0, 0.0}, {0.0, kNan}};
    try {
        linalg::Lu lu(a);
        FAIL() << "Lu accepted a NaN matrix";
    } catch (const contracts::ContractViolation& e) {
        EXPECT_STREQ(e.kind(), "finite-check");
    }
}

TEST(ContractsOn, LuSolveRejectsMismatchedRhs)
{
    linalg::Matrix a{{2.0, 0.0}, {0.0, 2.0}};
    linalg::Lu lu(a);
    EXPECT_THROW(lu.solve(linalg::Vector{1.0, 2.0, 3.0}),
                 std::invalid_argument);
    EXPECT_THROW(lu.solve(linalg::Matrix(3, 1, 1.0)),
                 std::invalid_argument);
    EXPECT_THROW(lu.solve(linalg::Vector{1.0, kNan}),
                 contracts::ContractViolation);
}

TEST(ContractsOn, SsvRuntimeDetectsNanPoisoning)
{
    auto rt = makeRuntime();
    // A NaN deviation would silently corrupt x(T+1) = A x(T) + B dy(T)
    // forever; the finite-check turns it into an immediate failure.
    try {
        rt.invoke(linalg::Vector{kNan, 0.0}, linalg::Vector{3.0});
        FAIL() << "NaN deviation was accepted";
    } catch (const contracts::ContractViolation& e) {
        EXPECT_STREQ(e.kind(), "finite-check");
    }
    auto rt2 = makeRuntime();
    EXPECT_THROW(
        rt2.invoke(linalg::Vector{0.1, 0.1}, linalg::Vector{kNan}),
        contracts::ContractViolation);
}

TEST(ContractsOn, SsvRuntimeStillWorksOnCleanInputs)
{
    auto rt = makeRuntime();
    linalg::Vector u = rt.invoke(linalg::Vector{0.5, 0.2},
                                 linalg::Vector{3.0});
    ASSERT_EQ(u.size(), 2u);
    for (std::size_t i = 0; i < u.size(); ++i) {
        EXPECT_TRUE(std::isfinite(u[i]));
    }
}

#else  // !YUKTA_CHECKS

TEST(ContractsOff, MacrosAreFreeNoOps)
{
    // With checks compiled out neither the condition nor the message
    // parts may be evaluated.
    int calls = 0;
    YUKTA_REQUIRE(++calls != 0, "never evaluated");
    YUKTA_ENSURE(++calls != 0, "never evaluated");
    YUKTA_CHECK_FINITE((static_cast<void>(++calls), kNan));
    EXPECT_EQ(calls, 0);
}

TEST(ContractsOff, OutOfRangeIsUncheckedButApiThrowsRemain)
{
    // API-level shape validation stays active in release builds.
    linalg::Matrix a(2, 3, 1.0);
    linalg::Matrix b(4, 2, 1.0);
    EXPECT_THROW(a * b, std::invalid_argument);
}

#endif  // YUKTA_CHECKS

}  // namespace
}  // namespace yukta
