// End-to-end tests of the Yukta core: specs, interface exchange,
// training campaign, design flow, controller cache, and the scheme
// factory. A reduced design (short campaign, coarse D-K options) is
// built once and shared across tests.
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/cache.h"
#include "core/report.h"
#include "core/schemes.h"
#include "core/yukta.h"

#include <sstream>

namespace yukta::core {
namespace {

using platform::AppCatalog;
using platform::BoardConfig;
using platform::Workload;

/** Shares one reduced artifact bundle across all core tests. */
class CoreFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        cfg_ = new BoardConfig(BoardConfig::odroidXu3());
        ArtifactOptions opt;
        opt.cache_tag = "coretest";
        opt.training.apps = {"swaptions", "milc"};
        opt.training.seconds_per_app = 60.0;
        opt.dk.max_iterations = 1;
        opt.dk.mu_grid = 12;
        opt.dk.bisection_steps = 8;
        artifacts_ = new Artifacts(buildArtifacts(*cfg_, opt));
    }

    static void TearDownTestSuite()
    {
        delete artifacts_;
        delete cfg_;
        artifacts_ = nullptr;
        cfg_ = nullptr;
    }

    static BoardConfig* cfg_;
    static Artifacts* artifacts_;
};

BoardConfig* CoreFixture::cfg_ = nullptr;
Artifacts* CoreFixture::artifacts_ = nullptr;

TEST(Spec, TableIIHardwareLayer)
{
    BoardConfig cfg = BoardConfig::odroidXu3();
    LayerSpec spec = hardwareLayerSpec(cfg, {10.0, 4.0, 0.4, 20.0});
    ASSERT_EQ(spec.inputs.size(), 4u);
    EXPECT_EQ(spec.inputs[2].name, "frequency_big");
    EXPECT_DOUBLE_EQ(spec.inputs[2].min, 0.2);
    EXPECT_DOUBLE_EQ(spec.inputs[2].max, 2.0);
    EXPECT_DOUBLE_EQ(spec.inputs[2].step, 0.1);
    ASSERT_EQ(spec.outputs.size(), 4u);
    EXPECT_DOUBLE_EQ(spec.outputs[0].bound_fraction, 0.2);  // perf
    EXPECT_DOUBLE_EQ(spec.outputs[1].bound_fraction, 0.1);  // power
    EXPECT_TRUE(spec.outputs[1].critical);
    EXPECT_EQ(spec.external_names.size(), 3u);
    EXPECT_DOUBLE_EQ(spec.guardband, 0.4);
    EXPECT_THROW(hardwareLayerSpec(cfg, {1.0}), std::invalid_argument);
}

TEST(Spec, TableIIISoftwareLayer)
{
    LayerSpec spec = softwareLayerSpec({5.0, 2.0, 12.0});
    ASSERT_EQ(spec.inputs.size(), 3u);
    EXPECT_EQ(spec.inputs[0].name, "#threads_big");
    ASSERT_EQ(spec.outputs.size(), 3u);
    EXPECT_DOUBLE_EQ(spec.guardband, 0.5);
    EXPECT_EQ(spec.external_names.size(), 4u);
}

TEST(Spec, InterfaceExchangePublishesSignals)
{
    LayerSpec spec = softwareLayerSpec({5.0, 2.0, 12.0});
    InterfaceExchange ex = publishInterface(spec);
    EXPECT_EQ(ex.from_layer, "software");
    EXPECT_EQ(ex.published_inputs.size(), 3u);
    EXPECT_EQ(ex.published_outputs.size(), 3u);
    std::ostringstream os;
    printInterfaceExchange(os, ex);
    EXPECT_NE(os.str().find("#threads_big"), std::string::npos);
}

TEST(Training, CampaignShapesAndRanges)
{
    BoardConfig cfg = BoardConfig::odroidXu3();
    TrainingOptions opt;
    opt.apps = {"swaptions"};
    opt.seconds_per_app = 30.0;
    TrainingData data = runTrainingCampaign(cfg, opt);
    ASSERT_FALSE(data.hw.u.empty());
    EXPECT_EQ(data.hw.u[0].size(), 7u);
    EXPECT_EQ(data.hw.y[0].size(), 4u);
    EXPECT_EQ(data.os.u[0].size(), 7u);
    EXPECT_EQ(data.os.y[0].size(), 3u);
    EXPECT_EQ(data.joint.u[0].size(), 7u);
    EXPECT_EQ(data.joint.y[0].size(), 7u);
    ASSERT_EQ(data.hw_ranges.size(), 4u);
    for (double r : data.hw_ranges) {
        EXPECT_GT(r, 0.0);
    }
}

TEST(Cache, StateSpaceRoundTrip)
{
    control::StateSpace sys(linalg::Matrix{{0.5, 0.1}, {0.0, 0.3}},
                            linalg::Matrix{{1.0}, {2.0}},
                            linalg::Matrix{{1.0, 0.0}},
                            linalg::Matrix{{0.25}}, 0.5);
    std::string path = cachePath("test_ss_roundtrip");
    ASSERT_TRUE(saveStateSpace(path, sys));
    auto loaded = loadStateSpace(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->a.isApprox(sys.a, 1e-15));
    EXPECT_TRUE(loaded->d.isApprox(sys.d, 1e-15));
    EXPECT_DOUBLE_EQ(loaded->ts, 0.5);
    std::remove(path.c_str());
    EXPECT_FALSE(loadStateSpace(path).has_value());
}

TEST(Cache, SsvControllerRoundTrip)
{
    robust::SsvController ctrl;
    ctrl.k = control::StateSpace(linalg::Matrix{{0.5}},
                                 linalg::Matrix{{1.0, 0.5}},
                                 linalg::Matrix{{1.0}},
                                 linalg::Matrix{{0.0, 0.0}}, 0.5);
    ctrl.mu_peak = 1.25;
    ctrl.min_s = 0.8;
    ctrl.gamma = 2.0;
    ctrl.dk_iterations = 3;
    ctrl.design_bounds = {0.5};
    ctrl.guaranteed_bounds = {0.625};
    std::string path = cachePath("test_ssv_roundtrip");
    ASSERT_TRUE(saveSsvController(path, ctrl));
    auto loaded = loadSsvController(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_DOUBLE_EQ(loaded->mu_peak, 1.25);
    EXPECT_EQ(loaded->dk_iterations, 3);
    ASSERT_EQ(loaded->design_bounds.size(), 1u);
    EXPECT_DOUBLE_EQ(loaded->design_bounds[0], 0.5);
    EXPECT_TRUE(loaded->k.a.isApprox(ctrl.k.a, 1e-15));
    std::remove(path.c_str());
}

TEST_F(CoreFixture, ArtifactsCarryCertifiedControllers)
{
    EXPECT_EQ(artifacts_->hw_ssv.controller.k.numOutputs(), 4u);
    EXPECT_EQ(artifacts_->hw_ssv.controller.k.numInputs(), 7u);
    EXPECT_EQ(artifacts_->os_ssv.controller.k.numOutputs(), 3u);
    EXPECT_EQ(artifacts_->os_ssv.controller.k.numInputs(), 7u);
    EXPECT_GT(artifacts_->hw_ssv.controller.mu_peak, 0.0);
    EXPECT_LE(artifacts_->hw_ssv.controller.k.numStates(), 20u);
    // LQG baselines have no external channel.
    EXPECT_EQ(artifacts_->hw_lqg.controller.numInputs(), 4u);
    EXPECT_EQ(artifacts_->os_lqg.controller.numInputs(), 3u);
    EXPECT_EQ(artifacts_->mono_lqg.controller.numInputs(), 7u);
    EXPECT_EQ(artifacts_->mono_lqg.controller.numOutputs(), 7u);
}

TEST_F(CoreFixture, LayerReportMentionsKeyFields)
{
    std::ostringstream os;
    printLayerReport(os, artifacts_->hw_ssv);
    std::string text = os.str();
    EXPECT_NE(text.find("hardware"), std::string::npos);
    EXPECT_NE(text.find("guardband"), std::string::npos);
    EXPECT_NE(text.find("mu_peak"), std::string::npos);
    std::ostringstream os2;
    printSchemeTable(os2);
    EXPECT_NE(os2.str().find("Coordinated heuristic"), std::string::npos);
}

TEST_F(CoreFixture, EverySchemeRuns)
{
    for (Scheme scheme : allSchemes()) {
        auto sys = makeSystem(scheme, *artifacts_,
                              Workload(AppCatalog::getWithThreads(
                                  "blackscholes", 4)),
                              7);
        auto metrics = sys.run(20.0);
        EXPECT_GT(metrics.energy, 0.0) << schemeName(scheme);
        EXPECT_EQ(metrics.periods, 40) << schemeName(scheme);
    }
}

TEST_F(CoreFixture, SchemeNamesMatchPaper)
{
    EXPECT_EQ(schemeName(Scheme::kYuktaFull), "Yukta: HW SSV+OS SSV");
    EXPECT_EQ(schemeName(Scheme::kMonolithicLqg), "Monolithic LQG");
    EXPECT_EQ(allSchemes().size(), 6u);
}

TEST_F(CoreFixture, DesignFitReported)
{
    ASSERT_EQ(artifacts_->hw_ssv.fit.size(), 4u);
    for (double f : artifacts_->hw_ssv.fit) {
        EXPECT_GT(f, 0.0);   // better than predicting the mean
        EXPECT_LE(f, 100.0);
    }
}

}  // namespace
}  // namespace yukta::core
