#include "robust/worst_case.h"

#include <gtest/gtest.h>

#include "linalg/eig.h"
#include "linalg/svd.h"
#include "linalg/test_util.h"
#include "robust/mu.h"

namespace yukta::robust {
namespace {

using linalg::CMatrix;
using linalg::Complex;

TEST(WorstCase, SingleBlockReachesSigmaMax)
{
    CMatrix m = test::randomCMatrix(4, 4, 501);
    BlockStructure s;
    s.add("only", 4, 4);
    auto wc = muLowerBound(m, s);
    // For one full block, mu = sigma_max and the power iteration
    // attains it.
    EXPECT_NEAR(wc.mu_lower, linalg::sigmaMax(m), 1e-6);
}

TEST(WorstCase, PerturbationHasUnitNormBlocks)
{
    CMatrix m = test::randomCMatrix(5, 5, 502);
    BlockStructure s;
    s.add("a", 2, 2);
    s.add("b", 3, 3);
    auto wc = muLowerBound(m, s);
    ASSERT_EQ(wc.blocks.size(), 2u);
    for (const CMatrix& blk : wc.blocks) {
        EXPECT_NEAR(linalg::sigmaMax(blk), 1.0, 1e-9);
    }
}

TEST(WorstCase, CertifiedBySingularity)
{
    // det(I - (1/mu) M Delta) should be ~0 for the returned Delta:
    // equivalently, M * Delta has an eigenvalue of magnitude mu.
    CMatrix m = test::randomCMatrix(4, 4, 503);
    BlockStructure s;
    s.add("a", 2, 2);
    s.add("b", 2, 2);
    auto wc = muLowerBound(m, s);
    ASSERT_GT(wc.mu_lower, 0.0);
    CMatrix delta = assemblePerturbation(s, wc);
    CMatrix loop = m * delta;
    double rho = 0.0;
    for (const Complex& l : linalg::eigenvalues(loop)) {
        rho = std::max(rho, std::abs(l));
    }
    EXPECT_NEAR(rho, wc.mu_lower, 1e-9);
}

TEST(WorstCase, SandwichedByUpperBound)
{
    for (unsigned seed : {504u, 505u, 506u, 507u}) {
        CMatrix m = test::randomCMatrix(6, 6, seed);
        BlockStructure s;
        s.add("a", 2, 2);
        s.add("b", 2, 2);
        s.add("c", 2, 2);
        auto wc = muLowerBound(m, s);
        MuBound b = computeMu(m, s);
        EXPECT_LE(wc.mu_lower, b.upper + 1e-6) << "seed " << seed;
        // The gap should be modest for 3 full blocks.
        EXPECT_GT(wc.mu_lower, 0.3 * b.upper) << "seed " << seed;
    }
}

TEST(WorstCase, ShapeValidation)
{
    BlockStructure s;
    s.add("a", 2, 2);
    EXPECT_THROW(muLowerBound(test::randomCMatrix(3, 2, 1), s),
                 std::invalid_argument);
    WorstCasePerturbation wc;
    EXPECT_THROW(assemblePerturbation(s, wc), std::invalid_argument);
}

TEST(WorstCase, ZeroMatrixGivesZero)
{
    CMatrix m(4, 4);
    BlockStructure s;
    s.add("a", 2, 2);
    s.add("b", 2, 2);
    auto wc = muLowerBound(m, s);
    EXPECT_NEAR(wc.mu_lower, 0.0, 1e-12);
}

}  // namespace
}  // namespace yukta::robust
