#include "robust/hinf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "control/discretize.h"
#include "control/interconnect.h"
#include "linalg/test_util.h"
#include "robust/weights.h"

namespace yukta::robust {
namespace {

using control::StateSpace;
using linalg::Matrix;

/**
 * Builds the classic mixed-sensitivity generalized plant for a SISO
 * plant G with performance weight Wp and control weight wu:
 *   z1 = Wp (r - G u), z2 = wu * u, y = r - G u.
 */
StateSpace
mixedSensitivityPlant(const StateSpace& g, const StateSpace& wp, double wu)
{
    std::size_t n = g.numStates();
    std::size_t nw = wp.numStates();
    // States [xg; xwp].
    Matrix a(n + nw, n + nw);
    a.setBlock(0, 0, g.a);
    a.setBlock(n, 0, -1.0 * (wp.b * g.c));
    a.setBlock(n, n, wp.a);

    // Inputs [r; u].
    Matrix b(n + nw, 2);
    b.setBlock(0, 1, g.b);
    b.setBlock(n, 0, wp.b);
    b.setBlock(n, 1, -1.0 * (wp.b * g.d));

    // Outputs [z1; z2; y].
    Matrix c(3, n + nw);
    c.setBlock(0, 0, -1.0 * (wp.d * g.c));
    c.setBlock(0, n, wp.c);
    c.setBlock(2, 0, -1.0 * g.c);

    Matrix d(3, 2);
    d(0, 0) = wp.d(0, 0);
    d(0, 1) = (-1.0 * (wp.d * g.d))(0, 0);
    d(1, 1) = wu;
    d(2, 0) = 1.0;
    d(2, 1) = -g.d(0, 0);
    return StateSpace(a, b, c, d, 0.0);
}

TEST(HinfNorm, MatchesKnownFirstOrder)
{
    // G(s) = 2/(s+1): peak gain 2 at DC.
    StateSpace g(Matrix{{-1.0}}, Matrix{{2.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    EXPECT_NEAR(hinfNorm(g), 2.0, 1e-6);
}

TEST(HinfNorm, ResonantPeak)
{
    // Second-order resonance with known peak 1/(2 zeta sqrt(1-zeta^2)).
    double zeta = 0.05;
    Matrix a{{0.0, 1.0}, {-1.0, -2.0 * zeta}};
    Matrix b{{0.0}, {1.0}};
    Matrix c{{1.0, 0.0}};
    StateSpace g(a, b, c, Matrix(1, 1), 0.0);
    double expect = 1.0 / (2.0 * zeta * std::sqrt(1.0 - zeta * zeta));
    EXPECT_NEAR(hinfNorm(g, 200), expect, 0.05 * expect);
}

TEST(HinfNorm, DiscreteDcPeak)
{
    // Discrete lag with DC gain 3.
    StateSpace g(Matrix{{0.5}}, Matrix{{1.5}}, Matrix{{1.0}}, Matrix{{0.0}},
                 0.5);
    EXPECT_NEAR(hinfNorm(g), 3.0, 1e-6);
}

TEST(Hinf, SynthesizesForStablePlant)
{
    // G(s) = 1/(s+1); Wp = 0.5/(s+0.1) requires good low-freq tracking.
    StateSpace g(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    StateSpace wp = makeWeight(5.0, 0.1);
    StateSpace p = mixedSensitivityPlant(g, wp, 0.1);
    PlantPartition part{1, 1, 2, 1};
    auto res = hinfSynthesize(p, part, 0.05, 1e4, 22);
    ASSERT_TRUE(res.has_value());
    // Closed loop must be stable and meet the bound.
    StateSpace cl = control::lftLower(p, res->k, part.nz, part.nw);
    EXPECT_TRUE(cl.isStable());
    EXPECT_LE(res->achieved, res->gamma * 1.01);
    // The design should beat gamma = 2 comfortably for this easy spec.
    EXPECT_LT(res->gamma, 2.0);
}

TEST(Hinf, SynthesizesForUnstablePlant)
{
    // Unstable G(s) = 1/(s-1): controller must stabilize.
    StateSpace g(Matrix{{1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    StateSpace wp = makeWeight(2.0, 0.5);
    StateSpace p = mixedSensitivityPlant(g, wp, 0.2);
    PlantPartition part{1, 1, 2, 1};
    auto res = hinfSynthesize(p, part);
    ASSERT_TRUE(res.has_value());
    StateSpace cl = control::lftLower(p, res->k, part.nz, part.nw);
    EXPECT_TRUE(cl.isStable());
}

TEST(Hinf, TrackingPerformanceInTimeDomain)
{
    // The synthesized loop should track a step reference well at DC.
    StateSpace g(Matrix{{-0.5}}, Matrix{{1.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    StateSpace wp = makeWeight(20.0, 0.05);  // ask for ~5% tracking error
    StateSpace p = mixedSensitivityPlant(g, wp, 0.05);
    PlantPartition part{1, 1, 2, 1};
    auto res = hinfSynthesize(p, part);
    ASSERT_TRUE(res.has_value());

    // Sensitivity at DC = |1/(1+GK)(0)| should be <= ~1/20 * gamma.
    StateSpace k = res->k;
    double g0 = g.dcGain()(0, 0);
    double k0 = k.dcGain()(0, 0);
    double sens = std::abs(1.0 / (1.0 + g0 * k0));
    EXPECT_LT(sens, res->gamma / 20.0 + 1e-6);
}

TEST(Hinf, DiscretePlantRoundTrip)
{
    // Same mixed-sensitivity design built in discrete time: the
    // wrapper should detour through d2c and return a discrete K.
    StateSpace g(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    StateSpace wp = makeWeight(5.0, 0.1);
    StateSpace p = mixedSensitivityPlant(g, wp, 0.1);
    StateSpace pd = control::c2d(p, 0.5);
    PlantPartition part{1, 1, 2, 1};
    auto res = hinfSynthesize(pd, part);
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(res->k.isDiscrete());
    StateSpace cl = control::lftLower(pd, res->k, part.nz, part.nw);
    EXPECT_TRUE(cl.isStable());
}

TEST(Hinf, BadPartitionThrows)
{
    StateSpace p = StateSpace::gain(Matrix::identity(3), 0.0);
    EXPECT_THROW(hinfSynthesize(p, PlantPartition{1, 1, 1, 1}),
                 std::invalid_argument);
}

/** Property: achieved norm decreases (weakly) as wu shrinks. */
class HinfWeightProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(HinfWeightProperty, FeasibleAcrossControlWeights)
{
    double wu = GetParam();
    StateSpace g(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                 Matrix{{0.0}});
    StateSpace wp = makeWeight(4.0, 0.2);
    StateSpace p = mixedSensitivityPlant(g, wp, wu);
    PlantPartition part{1, 1, 2, 1};
    auto res = hinfSynthesize(p, part);
    ASSERT_TRUE(res.has_value());
    StateSpace cl = control::lftLower(p, res->k, part.nz, part.nw);
    EXPECT_TRUE(cl.isStable());
}

INSTANTIATE_TEST_SUITE_P(Weights, HinfWeightProperty,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace yukta::robust
