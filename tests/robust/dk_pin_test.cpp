// Pins the D-K synthesis output bit-for-bit against the values the
// pre-batched-engine code produced, proving the batched frequency-
// response engine did not perturb the synthesized controller.
//
// The pinned configuration uses max_iterations = 1 (the golden-trace
// configuration): there the K-step consumes no mu-sweep values, so
// the controller must be IDENTICAL at the bit level. With two or
// more iterations the D-scales fitted from the mu sweep feed the
// next K-step, and the sweep's last-bit roundoff (batched Hessenberg
// vs dense LU arithmetic) legitimately shifts K by ~1e-12 relative
// while gamma and the certified bounds stay put — that path is
// covered by the looser gamma assertion below.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "robust/dk.h"
#include "robust/ssv_design.h"

namespace {

using yukta::control::StateSpace;
using yukta::linalg::Matrix;

/** %.17g canonicalization, same scheme as the golden traces. */
void
appendMatrix(std::string* out, const Matrix& m)
{
    char buf[64];
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            std::snprintf(buf, sizeof buf, "%.17g;", m(r, c));
            *out += buf;
        }
    }
}

std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char ch : s) {
        h ^= ch;
        h *= 1099511628211ull;
    }
    return h;
}

/** The small SSV spec the fingerprint was captured from. */
yukta::robust::SsvSpec
pinnedSpec(int iterations)
{
    Matrix a{{0.6, 0.1}, {0.05, 0.7}};
    Matrix b{{0.5, 0.1, 0.1}, {0.1, 0.4, 0.05}};
    Matrix c{{1.0, 0.2}, {0.1, 1.0}};
    Matrix d(2, 3);
    yukta::robust::SsvSpec spec;
    spec.model = StateSpace(a, b, c, d, 0.5);
    spec.num_inputs = 2;
    spec.num_external = 1;
    spec.in_min = {0.0, 0.0};
    spec.in_max = {4.0, 2.0};
    spec.in_step = {1.0, 0.1};
    spec.in_weight = {1.0, 1.0};
    spec.out_bound = {0.4, 0.3};
    spec.out_range = {2.0, 1.5};
    spec.guardband = 0.4;
    spec.max_order = 12;
    spec.dk.max_iterations = iterations;
    spec.dk.mu_grid = 12;
    spec.dk.bisection_steps = 8;
    return spec;
}

std::optional<yukta::robust::DkResult>
synthesize(int iterations)
{
    yukta::robust::SsvSpec spec = pinnedSpec(iterations);
    StateSpace pc = yukta::robust::buildGeneralizedPlant(spec, true);
    return yukta::robust::dkSynthesize(
        pc, yukta::robust::ssvPartition(spec),
        yukta::robust::ssvBlockStructure(spec), spec.dk);
}

TEST(DkPin, SingleIterationControllerIsBitIdenticalToPrePr)
{
    auto dk = synthesize(1);
    ASSERT_TRUE(dk.has_value());
    ASSERT_EQ(dk->k.numStates(), 8u);

    std::string canon;
    appendMatrix(&canon, dk->k.a);
    appendMatrix(&canon, dk->k.b);
    appendMatrix(&canon, dk->k.c);
    appendMatrix(&canon, dk->k.d);
    char buf[64];
    std::snprintf(buf, sizeof buf, "gamma=%.17g;", dk->gamma);
    canon += buf;

    // Captured from the pre-PR build (dense pointwise csolve path).
    EXPECT_EQ(fnv1a(canon), 0x5877b8583e06308aull)
        << "controller bits drifted from the pre-batched-engine "
           "baseline; canon=" << canon;
    EXPECT_EQ(dk->gamma, 5.8841650536166137);
    // The mu certificate may move in its last bits (batched sweep
    // arithmetic) but not at any meaningful precision.
    EXPECT_NEAR(dk->mu_peak, 3.4952599793293251, 1e-9);
}

TEST(DkPin, TwoIterationGammaIsPreserved)
{
    auto dk = synthesize(2);
    ASSERT_TRUE(dk.has_value());
    // Iteration 2 consumes mu-sweep D-scales, so K's bits may shift
    // at roundoff level; the synthesis outcome must not.
    EXPECT_EQ(dk->gamma, 3.4826209944140172);
    EXPECT_NEAR(dk->mu_peak, 3.477454448934834, 1e-7);
    EXPECT_EQ(dk->k.numStates(), 8u);
}

}  // namespace
