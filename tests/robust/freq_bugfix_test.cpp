// Bugfix regression suite for the frequency-sweep numerics:
//  - hinfNorm must refine narrow resonances to within 1% of the
//    Hamiltonian-bisection answer (hinfNormExact is authoritative;
//    the grid sweep is the fast estimate used inside synthesis
//    loops),
//  - hinfNorm's discrete grid and its refinement probes must never
//    pass the Nyquist rate pi/Ts,
//  - muFrequencySweep's documented (0, pi/Ts] span must hold exactly
//    at both boundaries.
#include <cmath>

#include <gtest/gtest.h>

#include "control/hinf_norm.h"
#include "control/state_space.h"
#include "linalg/svd.h"
#include "robust/hinf.h"
#include "robust/mu.h"
#include "robust/uncertainty.h"

namespace {

using yukta::control::StateSpace;
using yukta::control::hinfNormExact;
using yukta::linalg::Matrix;
using yukta::robust::BlockStructure;
using yukta::robust::MuSweep;
using yukta::robust::hinfNorm;
using yukta::robust::muFrequencySweep;

/**
 * Broad low-pass (DC gain 6) in parallel with a lightly damped
 * resonance (true peak 1 / (2 zeta) = 50 at w0 = 7 rad/s, which
 * falls between the 96-point grid samples). The coarse grid sees
 * the resonance at ~5, below the DC plateau, so a refiner that only
 * chases the global argmax converges on the wrong peak.
 */
StateSpace
plateauPlusResonance()
{
    const double w0 = 7.0;
    const double zeta = 0.01;
    Matrix a{{-0.001, 0.0, 0.0},
             {0.0, 0.0, 1.0},
             {0.0, -w0 * w0, -2.0 * zeta * w0}};
    Matrix b{{1.0}, {0.0}, {w0 * w0}};
    Matrix c{{0.006, 1.0, 0.0}};
    return StateSpace(a, b, c, Matrix(1, 1), 0.0);
}

TEST(HinfNormReconcile, NarrowResonanceRefinesToBisectionAnswer)
{
    StateSpace sys = plateauPlusResonance();
    const double exact = hinfNormExact(sys);
    // Sanity: the resonance (not the DC plateau) carries the norm.
    EXPECT_GT(exact, 45.0);
    EXPECT_LT(exact, 55.0);

    const double grid = hinfNorm(sys, 96);
    EXPECT_NEAR(grid, exact, 0.01 * exact)
        << "grid sweep must refine every local maximum";
}

TEST(HinfNormReconcile, PureResonanceAgreesAcrossGridSizes)
{
    // Single sharp peak: both implementations must agree even when
    // the coarse grid starts far from the resonance tip.
    const double w0 = 3.3;
    const double zeta = 1e-3;
    Matrix a{{0.0, 1.0}, {-w0 * w0, -2.0 * zeta * w0}};
    Matrix b{{0.0}, {w0 * w0}};
    Matrix c{{1.0, 0.0}};
    StateSpace sys(a, b, c, Matrix(1, 1), 0.0);

    const double exact = hinfNormExact(sys);
    EXPECT_NEAR(exact, 1.0 / (2.0 * zeta), 0.01 / (2.0 * zeta));
    for (std::size_t pts : {48u, 96u, 192u}) {
        EXPECT_NEAR(hinfNorm(sys, pts), exact, 0.01 * exact)
            << "grid_points=" << pts;
    }
}

TEST(HinfNormBoundary, DiscretePeakAtNyquistIsHitExactly)
{
    // Pole near z = -1: |G| grows monotonically toward Nyquist and
    // attains 1 / 0.05 = 20 exactly at w = pi/Ts. The refinement
    // probes around the boundary seed must clamp, not alias past it.
    const double ts = 0.5;
    Matrix a{{-0.95}};
    Matrix b{{1.0}};
    Matrix c{{1.0}};
    StateSpace sys(a, b, c, Matrix(1, 1), ts);
    const double norm = hinfNorm(sys, 96);
    EXPECT_NEAR(norm, 20.0, 1e-6);
}

TEST(HinfNormBoundary, ContinuousDcPeakIsCoveredBelowTheGrid)
{
    // Peak at w -> 0+, below the 1e-4 grid floor: the DC closure
    // must still report it.
    Matrix a{{-1e-6}};
    Matrix b{{1.0}};
    Matrix c{{1.0}};
    StateSpace sys(a, b, c, Matrix(1, 1), 0.0);
    EXPECT_NEAR(hinfNorm(sys, 96), 1e6, 1.0);
}

TEST(MuSweepBoundary, DiscreteSpanIsExactlyZeroExclusiveToNyquist)
{
    const double ts = 0.25;
    Matrix a{{0.3, 0.1}, {0.0, -0.4}};
    Matrix b{{1.0, 0.0}, {0.0, 1.0}};
    Matrix c{{1.0, 0.0}, {0.0, 1.0}};
    StateSpace sys(a, b, c, Matrix(2, 2), ts);
    BlockStructure s;
    s.add("model", 1, 1);
    s.add("perf", 1, 1);

    MuSweep sweep = muFrequencySweep(sys, s, 17);
    ASSERT_EQ(sweep.freqs.size(), 17u);
    EXPECT_GT(sweep.freqs.front(), 0.0);          // (0, ...
    EXPECT_EQ(sweep.freqs.front(), 1e-4 / ts);    // documented floor
    EXPECT_EQ(sweep.freqs.back(), M_PI / ts);     // ..., pi/Ts] exact
    for (std::size_t i = 0; i < sweep.freqs.size(); ++i) {
        EXPECT_LE(sweep.freqs[i], M_PI / ts) << "i=" << i;
        if (i > 0) {
            EXPECT_GT(sweep.freqs[i], sweep.freqs[i - 1]);
        }
    }
    EXPECT_EQ(sweep.mu.size(), sweep.freqs.size());
}

TEST(MuSweepBoundary, NyquistSampleUsesZEqualsMinusOne)
{
    // At w = pi/Ts exactly, z = e^{j pi} = -1, so mu at the last
    // grid point must match the response evaluated at z = -1.
    const double ts = 2.0;
    Matrix a{{-0.8}};
    Matrix b{{1.0, 0.5}};
    Matrix c{{1.0}, {0.25}};
    StateSpace sys(a, b, c, Matrix(2, 2), ts);
    BlockStructure s;
    s.add("model", 1, 1);
    s.add("perf", 1, 1);

    MuSweep sweep = muFrequencySweep(sys, s, 9);
    const auto g = sys.evalAt(yukta::linalg::Complex(-1.0, 0.0));
    const double sigma = yukta::linalg::sigmaMax(g);
    // mu upper bound of a full 2x2 structure never exceeds sigma_max
    // and the 1x1-block lower bound keeps it within the same decade.
    EXPECT_LE(sweep.mu.back().upper, sigma * (1.0 + 1e-9));
    EXPECT_GT(sweep.mu.back().upper, 0.0);
}

}  // namespace
