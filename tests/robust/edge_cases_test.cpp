// Edge-case and failure-injection tests for the robust module: the
// synthesis entry points must reject malformed problems loudly and
// fail soft (nullopt) on genuinely infeasible ones.
#include <gtest/gtest.h>

#include "control/discretize.h"
#include "linalg/test_util.h"
#include "robust/hinf.h"
#include "robust/mu.h"
#include "robust/ssv_design.h"
#include "robust/weights.h"

namespace yukta::robust {
namespace {

using control::StateSpace;
using linalg::Matrix;

TEST(HinfEdge, RankDeficientD12Rejected)
{
    // Generalized plant whose D12 column is zero: no control
    // authority in the performance channel at high frequency.
    std::size_t n = 2;
    Matrix a{{-1.0, 0.2}, {0.0, -2.0}};
    Matrix b(n, 2);  // [w, u]
    b(0, 0) = 1.0;
    b(1, 1) = 1.0;
    Matrix c(2, n);  // [z; y]
    c(0, 0) = 1.0;
    c(1, 1) = 1.0;
    Matrix d(2, 2);
    d(1, 0) = 1.0;  // D21 = I (fine); D12 stays zero (bad).
    StateSpace p(a, b, c, d, 0.0);
    auto k = hinfSynthesizeAtGamma(p, PlantPartition{1, 1, 1, 1}, 10.0);
    EXPECT_FALSE(k.has_value());
}

TEST(HinfEdge, NonzeroD11Rejected)
{
    Matrix a{{-1.0}};
    Matrix b{{1.0, 1.0}};
    Matrix c{{1.0}, {1.0}};
    Matrix d{{0.5, 1.0}, {1.0, 0.0}};  // D11 = 0.5 violates the
                                       // strictly-proper construction
    StateSpace p(a, b, c, d, 0.0);
    auto k = hinfSynthesizeAtGamma(p, PlantPartition{1, 1, 1, 1}, 10.0);
    EXPECT_FALSE(k.has_value());
}

TEST(HinfEdge, ContinuousOnlyForFixedGamma)
{
    StateSpace pd = StateSpace::gain(Matrix::identity(2), 0.5);
    EXPECT_THROW(hinfSynthesizeAtGamma(pd, PlantPartition{1, 1, 1, 1}, 1.0),
                 std::invalid_argument);
}

TEST(MuEdge, GridValidation)
{
    StateSpace n = StateSpace::gain(Matrix::identity(2), 0.5);
    BlockStructure s;
    s.add("a", 1, 1);
    s.add("b", 1, 1);
    EXPECT_THROW(muFrequencySweep(n, s, 1), std::invalid_argument);
    BlockStructure wrong;
    wrong.add("a", 3, 3);
    EXPECT_THROW(muFrequencySweep(n, wrong, 8), std::invalid_argument);
}

TEST(SsvEdge, InfeasibleBoundsFailSoft)
{
    // A plant with almost no gain: demanding tight tracking of a
    // nearly-uncontrollable output must not crash -- either a
    // best-effort controller or nullopt is acceptable; exceptions are
    // not.
    Matrix a{{0.5}};
    Matrix b{{1e-8, 1e-8}};
    Matrix c{{1.0}};
    Matrix d(1, 2);
    SsvSpec spec;
    spec.model = StateSpace(a, b, c, d, 0.5);
    spec.num_inputs = 1;
    spec.num_external = 1;
    spec.in_min = {0.0};
    spec.in_max = {1.0};
    spec.in_step = {0.1};
    spec.in_weight = {1.0};
    spec.out_bound = {1e-6};
    spec.out_range = {1.0};
    spec.guardband = 0.4;
    spec.dk.max_iterations = 1;
    spec.dk.bisection_steps = 6;
    spec.dk.mu_grid = 8;
    EXPECT_NO_THROW({
        auto ctrl = ssvSynthesize(spec);
        if (ctrl) {
            // If it returns, the certificate must admit the miss.
            EXPECT_GT(ctrl->mu_peak, 1.0);
        }
    });
}

TEST(SsvEdge, GeneralizedPlantPortOrdering)
{
    // The block structure and partition must tile the plant exactly.
    SsvSpec spec;
    Matrix a{{0.5}};
    Matrix b{{0.3, 0.1}};
    Matrix c{{1.0}};
    Matrix d(1, 2);
    spec.model = StateSpace(a, b, c, d, 0.5);
    spec.num_inputs = 1;
    spec.num_external = 1;
    spec.in_min = {0.0};
    spec.in_max = {1.0};
    spec.in_step = {0.1};
    spec.in_weight = {1.0};
    spec.out_bound = {0.2};
    spec.out_range = {1.0};

    PlantPartition part = ssvPartition(spec);
    BlockStructure s = ssvBlockStructure(spec);
    StateSpace pc = buildGeneralizedPlant(spec, true);
    EXPECT_EQ(part.nw, s.totalOutputs());
    EXPECT_EQ(part.nz, s.totalInputs());
    EXPECT_EQ(pc.numInputs(), part.nw + part.nu);
    EXPECT_EQ(pc.numOutputs(), part.nz + part.ny);
}

TEST(WeightsEdge, DiscretizedWeightKeepsDc)
{
    StateSpace w = makeWeight(7.0, 0.8);
    StateSpace wd = control::c2d(w, 0.5);
    EXPECT_NEAR(wd.dcGain()(0, 0), 7.0, 1e-9);
}

}  // namespace
}  // namespace yukta::robust
