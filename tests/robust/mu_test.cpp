#include "robust/mu.h"

#include "control/discretize.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/svd.h"
#include "linalg/test_util.h"

namespace yukta::robust {
namespace {

using control::StateSpace;
using linalg::CMatrix;
using linalg::Complex;
using linalg::Matrix;

TEST(BlockStructure, OffsetsAndTotals)
{
    BlockStructure s;
    s.add("a", 2, 3);
    s.add("b", 4, 1);
    EXPECT_EQ(s.numBlocks(), 2u);
    EXPECT_EQ(s.totalOutputs(), 6u);
    EXPECT_EQ(s.totalInputs(), 4u);
    EXPECT_EQ(s.inputOffset(0), 0u);
    EXPECT_EQ(s.inputOffset(1), 3u);
    EXPECT_EQ(s.outputOffset(1), 2u);
    EXPECT_THROW(s.inputOffset(2), std::out_of_range);
    EXPECT_THROW(s.add("z", 0, 1), std::invalid_argument);
}

TEST(Mu, SingleFullBlockEqualsSigmaMax)
{
    CMatrix m = test::randomCMatrix(3, 3, 101);
    BlockStructure s;
    s.add("only", 3, 3);
    MuBound b = computeMu(m, s);
    double sig = linalg::sigmaMax(m);
    EXPECT_NEAR(b.upper, sig, 1e-9);
    EXPECT_NEAR(b.lower, sig, 1e-9);
}

TEST(Mu, ShapeMismatchThrows)
{
    BlockStructure s;
    s.add("a", 2, 2);
    EXPECT_THROW(computeMu(test::randomCMatrix(3, 2, 1), s),
                 std::invalid_argument);
    EXPECT_THROW(computeMu(test::randomCMatrix(2, 2, 1), BlockStructure{}),
                 std::invalid_argument);
}

TEST(Mu, UpperAtLeastLower)
{
    for (unsigned seed : {111u, 112u, 113u, 114u}) {
        CMatrix m = test::randomCMatrix(5, 5, seed);
        BlockStructure s;
        s.add("a", 2, 2);
        s.add("b", 3, 3);
        MuBound b = computeMu(m, s);
        EXPECT_GE(b.upper + 1e-12, b.lower);
        EXPECT_LE(b.upper, linalg::sigmaMax(m) + 1e-9);
    }
}

TEST(Mu, BlockDiagonalMatrixIsExact)
{
    // For a block-diagonal M, mu equals the max of block sigmas.
    CMatrix m(4, 4);
    CMatrix m1 = test::randomCMatrix(2, 2, 120);
    CMatrix m2 = test::randomCMatrix(2, 2, 121);
    m.setBlock(0, 0, m1);
    m.setBlock(2, 2, m2);
    BlockStructure s;
    s.add("a", 2, 2);
    s.add("b", 2, 2);
    MuBound b = computeMu(m, s);
    double expect =
        std::max(linalg::sigmaMax(m1), linalg::sigmaMax(m2));
    EXPECT_NEAR(b.upper, expect, 1e-6);
    EXPECT_NEAR(b.lower, expect, 1e-9);
}

TEST(Mu, DScalingHelpsOffDiagonalStructure)
{
    // M with large off-diagonal coupling: D-scaling must beat the
    // plain sigma_max upper bound.
    CMatrix m(2, 2);
    m(0, 0) = Complex(0.5, 0.0);
    m(0, 1) = Complex(10.0, 0.0);
    m(1, 0) = Complex(0.01, 0.0);
    m(1, 1) = Complex(0.5, 0.0);
    BlockStructure s;
    s.add("a", 1, 1);
    s.add("b", 1, 1);
    MuBound b = computeMu(m, s);
    EXPECT_LT(b.upper, 0.95 * linalg::sigmaMax(m));
    // Known: for 2x2 with scalar blocks, mu = |m11| + sqrt(|m12 m21|)
    // when diagonal dominates off-diagonal product appropriately;
    // here the bound should be close to 0.5 + sqrt(0.1) ~ 0.816.
    EXPECT_NEAR(b.upper, 0.5 + std::sqrt(10.0 * 0.01), 0.02);
}

TEST(Mu, SweepFindsResonance)
{
    // Lightly damped discrete resonator: mu (single block = sigma)
    // peaks near the resonant frequency.
    double ts = 0.5;
    double wn = 2.0;
    double zeta = 0.1;
    Matrix a{{0.0, 1.0}, {-wn * wn, -2.0 * zeta * wn}};
    Matrix b{{0.0}, {wn * wn}};
    Matrix c{{1.0, 0.0}};
    StateSpace g(a, b, c, Matrix(1, 1), 0.0);
    StateSpace gd = control::c2d(g, ts);

    BlockStructure s;
    s.add("perf", 1, 1);
    MuSweep sweep = muFrequencySweep(gd, s, 64);
    EXPECT_GT(sweep.peak, 3.0);  // Q ~ 1/(2 zeta) = 5
    EXPECT_NEAR(sweep.peak_freq, wn, 0.8);
    EXPECT_EQ(sweep.freqs.size(), 64u);
}

TEST(Mu, BuildDScalingsShapes)
{
    BlockStructure s;
    s.add("a", 2, 3);
    s.add("b", 1, 1);
    auto [dl, dri] = buildDScalings(s, {2.0, 4.0});
    EXPECT_EQ(dl.rows(), 4u);
    EXPECT_EQ(dri.rows(), 3u);
    EXPECT_DOUBLE_EQ(dl(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(dl(3, 3), 4.0);
    EXPECT_DOUBLE_EQ(dri(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(dri(2, 2), 0.25);
    EXPECT_THROW(buildDScalings(s, {1.0}), std::invalid_argument);
    EXPECT_THROW(buildDScalings(s, {1.0, -1.0}), std::invalid_argument);
}

/** Property: mu is invariant under common scaling of all D blocks. */
class MuScaleProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(MuScaleProperty, ScalesLinearly)
{
    double scale = GetParam();
    CMatrix m = test::randomCMatrix(4, 4, 130);
    BlockStructure s;
    s.add("a", 2, 2);
    s.add("b", 2, 2);
    MuBound b1 = computeMu(m, s);
    MuBound b2 = computeMu(Complex(scale, 0.0) * m, s);
    EXPECT_NEAR(b2.upper, scale * b1.upper, 1e-5 * (1.0 + scale));
}

INSTANTIATE_TEST_SUITE_P(Scales, MuScaleProperty,
                         ::testing::Values(0.5, 1.0, 2.0, 7.0));

}  // namespace
}  // namespace yukta::robust
