// Tests for weights, D-K iteration, and the designer-facing SSV
// synthesis entry point.
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "control/discretize.h"
#include "control/interconnect.h"
#include "linalg/test_util.h"
#include "robust/dk.h"
#include "robust/ssv_design.h"
#include "robust/weights.h"

namespace yukta::robust {
namespace {

using control::StateSpace;
using linalg::Matrix;
using linalg::Vector;

TEST(Weights, MakeWeightGains)
{
    StateSpace w = makeWeight(10.0, 1.0, 0.5);
    EXPECT_NEAR(w.dcGain()(0, 0), 10.0, 1e-10);
    // High-frequency gain approaches hf.
    EXPECT_NEAR(std::abs(w.freqResponse(1e5)(0, 0)), 0.5, 1e-3);
    EXPECT_THROW(makeWeight(1.0, 0.0), std::invalid_argument);
}

TEST(Weights, DiagonalWeightIsDecoupled)
{
    StateSpace w = makeDiagonalWeight({2.0, 3.0}, 1.0);
    Matrix dc = w.dcGain();
    EXPECT_NEAR(dc(0, 0), 2.0, 1e-10);
    EXPECT_NEAR(dc(1, 1), 3.0, 1e-10);
    EXPECT_NEAR(dc(0, 1), 0.0, 1e-12);
    EXPECT_THROW(makeDiagonalWeight({}, 1.0), std::invalid_argument);
}

TEST(Weights, StaticDiagonal)
{
    StateSpace w = staticDiagonal({1.5, -2.0});
    EXPECT_EQ(w.numStates(), 0u);
    EXPECT_NEAR(w.dcGain()(1, 1), -2.0, 1e-12);
}

/** A small two-input, two-output, one-external-signal test model. */
SsvSpec
makeTestSpec(double guardband = 0.4)
{
    // Discrete 2-state coupled plant, [u1 u2 e] -> [y1 y2].
    Matrix a{{0.6, 0.1}, {0.05, 0.7}};
    Matrix b{{0.5, 0.1, 0.1}, {0.1, 0.4, 0.05}};
    Matrix c{{1.0, 0.2}, {0.1, 1.0}};
    Matrix d(2, 3);
    SsvSpec spec;
    spec.model = StateSpace(a, b, c, d, 0.5);
    spec.num_inputs = 2;
    spec.num_external = 1;
    spec.in_min = {0.0, 0.0};
    spec.in_max = {4.0, 2.0};
    spec.in_step = {1.0, 0.1};
    spec.in_weight = {1.0, 1.0};
    spec.out_bound = {0.4, 0.3};
    spec.out_range = {2.0, 1.5};
    spec.guardband = guardband;
    spec.max_order = 12;
    spec.dk.max_iterations = 2;
    spec.dk.mu_grid = 16;
    spec.dk.bisection_steps = 12;
    return spec;
}

TEST(SsvDesign, GeneralizedPlantShapes)
{
    SsvSpec spec = makeTestSpec();
    StateSpace pc = buildGeneralizedPlant(spec, true);
    StateSpace pd = buildGeneralizedPlant(spec, false);
    PlantPartition part = ssvPartition(spec);
    // O=2, I=2, E=1: nw = 2+2+2+1 = 7, nu = 2, nz = 2+2+2+2 = 8,
    // ny = 3.
    EXPECT_EQ(part.nw, 7u);
    EXPECT_EQ(part.nu, 2u);
    EXPECT_EQ(part.nz, 8u);
    EXPECT_EQ(part.ny, 3u);
    EXPECT_EQ(pc.numInputs(), part.nw + part.nu);
    EXPECT_EQ(pc.numOutputs(), part.nz + part.ny);
    EXPECT_TRUE(pc.isContinuous());
    EXPECT_TRUE(pd.isDiscrete());

    // Continuous plant must have D11 = 0 (DGKF assumption).
    Matrix d11 = pc.d.block(0, 0, part.nz, part.nw);
    EXPECT_LT(d11.maxAbs(), 1e-12);
}

TEST(SsvDesign, BlockStructureMatchesPartition)
{
    SsvSpec spec = makeTestSpec();
    BlockStructure s = ssvBlockStructure(spec);
    PlantPartition part = ssvPartition(spec);
    EXPECT_EQ(s.numBlocks(), 3u);
    EXPECT_EQ(s.totalOutputs(), part.nw);
    EXPECT_EQ(s.totalInputs(), part.nz);
}

TEST(SsvDesign, SynthesisProducesCertifiedController)
{
    SsvSpec spec = makeTestSpec();
    auto ctrl = ssvSynthesize(spec);
    ASSERT_TRUE(ctrl.has_value());
    // Controller ports: dy = [r - y (2); e (1)] -> u (2).
    EXPECT_EQ(ctrl->k.numInputs(), 3u);
    EXPECT_EQ(ctrl->k.numOutputs(), 2u);
    EXPECT_TRUE(ctrl->k.isDiscrete());
    EXPECT_LE(ctrl->k.numStates(), 12u);
    EXPECT_GT(ctrl->mu_peak, 0.0);
    EXPECT_NEAR(ctrl->min_s * ctrl->mu_peak, 1.0, 1e-9);
    // Guaranteed bounds = max(1, mu) * B.
    double inflate = std::max(1.0, ctrl->mu_peak);
    EXPECT_NEAR(ctrl->guaranteed_bounds[0], inflate * 0.4, 1e-12);
    EXPECT_NEAR(ctrl->guaranteed_bounds[1], inflate * 0.3, 1e-12);
}

TEST(SsvDesign, ClosedLoopTracksTargets)
{
    SsvSpec spec = makeTestSpec();
    auto ctrl = ssvSynthesize(spec);
    ASSERT_TRUE(ctrl.has_value());

    // Simulate the nominal loop: plant + controller, constant targets.
    StateSpace g = spec.model;
    Vector xg = Vector::zeros(g.numStates());
    Vector xk = Vector::zeros(ctrl->k.numStates());
    Vector y{0.0, 0.0};
    Vector targets{1.0, 0.5};
    double ext = 0.2;
    Vector u{0.0, 0.0};
    for (int t = 0; t < 300; ++t) {
        Vector dy{targets[0] - y[0], targets[1] - y[1], ext};
        u = stepOnce(ctrl->k, xk, dy);
        // Clamp to the input ranges like the real actuators would.
        for (std::size_t i = 0; i < 2; ++i) {
            u[i] = std::min(spec.in_max[i], std::max(spec.in_min[i], u[i]));
        }
        Vector ue{u[0], u[1], ext};
        y = stepOnce(g, xg, ue);
    }
    // Steady-state tracking within the designed bounds.
    EXPECT_LT(std::abs(targets[0] - y[0]), spec.out_bound[0]);
    EXPECT_LT(std::abs(targets[1] - y[1]), spec.out_bound[1]);
}

TEST(SsvDesign, SpecValidation)
{
    SsvSpec spec = makeTestSpec();
    spec.in_weight = {1.0};  // wrong size
    EXPECT_THROW(ssvSynthesize(spec), std::invalid_argument);

    spec = makeTestSpec();
    spec.guardband = -0.1;
    EXPECT_THROW(ssvSynthesize(spec), std::invalid_argument);

    spec = makeTestSpec();
    spec.out_bound = {0.4, -0.3};
    EXPECT_THROW(ssvSynthesize(spec), std::invalid_argument);

    spec = makeTestSpec();
    spec.model = StateSpace(spec.model.a, spec.model.b, spec.model.c,
                            spec.model.d, 0.0);  // continuous
    EXPECT_THROW(ssvSynthesize(spec), std::invalid_argument);
}

TEST(SsvDesign, LargerGuardbandWeakensCertificate)
{
    auto small = ssvSynthesize(makeTestSpec(0.2));
    auto large = ssvSynthesize(makeTestSpec(1.5));
    ASSERT_TRUE(small && large);
    // More uncertainty cannot improve the certified SSV.
    EXPECT_GE(large->mu_peak, small->mu_peak - 0.1);
}

TEST(Dk, StructureMismatchThrows)
{
    SsvSpec spec = makeTestSpec();
    StateSpace pc = buildGeneralizedPlant(spec, true);
    PlantPartition part = ssvPartition(spec);
    BlockStructure wrong;
    wrong.add("only", 1, 1);
    EXPECT_THROW(dkSynthesize(pc, part, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace yukta::robust
