#include "linalg/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/test_util.h"

namespace yukta::linalg {
namespace {

TEST(Svd, DiagonalMatrix)
{
    Matrix a = Matrix::diag({3.0, 1.0, 2.0});
    Svd d = svd(a);
    ASSERT_EQ(d.s.size(), 3u);
    EXPECT_NEAR(d.s[0], 3.0, 1e-10);
    EXPECT_NEAR(d.s[1], 2.0, 1e-10);
    EXPECT_NEAR(d.s[2], 1.0, 1e-10);
}

TEST(Svd, ReconstructsTall)
{
    Matrix a = test::randomMatrix(8, 4, 31);
    Svd d = svd(a);
    Matrix recon = d.u * Matrix::diag(d.s) * d.v.transpose();
    EXPECT_TRUE(recon.isApprox(a, 1e-9));
}

TEST(Svd, ReconstructsWide)
{
    Matrix a = test::randomMatrix(3, 7, 32);
    Svd d = svd(a);
    ASSERT_EQ(d.s.size(), 3u);
    Matrix recon = d.u * Matrix::diag(d.s) * d.v.transpose();
    EXPECT_TRUE(recon.isApprox(a, 1e-9));
}

TEST(Svd, OrthonormalFactors)
{
    Matrix a = test::randomMatrix(6, 4, 33);
    Svd d = svd(a);
    EXPECT_TRUE((d.u.transpose() * d.u).isApprox(Matrix::identity(4), 1e-9));
    EXPECT_TRUE((d.v.transpose() * d.v).isApprox(Matrix::identity(4), 1e-9));
}

TEST(Svd, ComplexReconstruction)
{
    CMatrix a = test::randomCMatrix(5, 3, 34);
    CSvd d = svd(a);
    CMatrix s(3, 3);
    for (std::size_t i = 0; i < 3; ++i) {
        s(i, i) = Complex(d.s[i], 0.0);
    }
    EXPECT_TRUE((d.u * s * d.v.adjoint()).isApprox(a, 1e-9));
    EXPECT_TRUE(
        (d.u.adjoint() * d.u).isApprox(CMatrix::identity(3), 1e-9));
}

TEST(Svd, SingularValuesDescending)
{
    Matrix a = test::randomMatrix(10, 6, 35);
    Svd d = svd(a);
    for (std::size_t i = 0; i + 1 < d.s.size(); ++i) {
        EXPECT_GE(d.s[i], d.s[i + 1]);
    }
}

TEST(Svd, SigmaMaxMatchesFroForRankOne)
{
    Matrix u = test::randomMatrix(5, 1, 36);
    Matrix v = test::randomMatrix(1, 4, 37);
    Matrix a = u * v;  // rank one: sigma_max = ||A||_F
    EXPECT_NEAR(sigmaMax(a), a.normFro(), 1e-9);
}

TEST(Svd, SigmaMinOfIdentity)
{
    EXPECT_NEAR(sigmaMin(Matrix::identity(4)), 1.0, 1e-12);
}

TEST(Svd, EmptyMatrix)
{
    EXPECT_DOUBLE_EQ(sigmaMax(Matrix()), 0.0);
    EXPECT_DOUBLE_EQ(sigmaMax(CMatrix()), 0.0);
}

TEST(Svd, UnitaryInvarianceOfSigmaMax)
{
    CMatrix a = test::randomCMatrix(4, 4, 38);
    // Multiplying by a diagonal unitary phase matrix preserves sigma.
    CMatrix u(4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
        double th = 0.3 * (i + 1);
        u(i, i) = Complex(std::cos(th), std::sin(th));
    }
    EXPECT_NEAR(sigmaMax(u * a), sigmaMax(a), 1e-9);
}

TEST(Pinv, LeftInverseOfFullColumnRank)
{
    Matrix a = test::randomMatrix(7, 3, 39);
    Matrix p = pinv(a);
    EXPECT_TRUE((p * a).isApprox(Matrix::identity(3), 1e-9));
}

TEST(Pinv, HandlesRankDeficiency)
{
    Matrix u = test::randomMatrix(4, 1, 40);
    Matrix v = test::randomMatrix(1, 4, 41);
    Matrix a = u * v;  // rank 1
    Matrix p = pinv(a);
    // Moore-Penrose conditions: A p A = A, p A p = p.
    EXPECT_TRUE((a * p * a).isApprox(a, 1e-8));
    EXPECT_TRUE((p * a * p).isApprox(p, 1e-8));
}

/** Property sweep: sigma_max(A) equals sqrt(lambda_max(A^T A)). */
class SvdSigmaProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SvdSigmaProperty, MatchesGram)
{
    int n = GetParam();
    Matrix a = test::randomMatrix(n, n, 1300 + n);
    Svd d = svd(a);
    // Largest eigenvalue of the Gram matrix = sigma_max^2, verified
    // via the Rayleigh quotient with the corresponding right vector.
    Matrix v0 = d.v.col(0);
    Matrix gram_v = a.transpose() * (a * v0);
    Matrix expected = (d.s[0] * d.s[0]) * v0;
    EXPECT_TRUE(gram_v.isApprox(expected, 1e-7 * (1.0 + d.s[0] * d.s[0])));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdSigmaProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace yukta::linalg
