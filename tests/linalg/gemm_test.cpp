// Blocked GEMM vs the naive operator*: bit-identical products for
// awkward shapes (1 x N, tall/skinny, sizes straddling the column
// block), and the PR 5 0*NaN-propagation contract extended to the
// blocked path. gemmDense additionally pins the no-skip accumulation
// the batched tick engine's bit-identity argument rests on.
#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "test_util.h"

namespace yukta::linalg {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

bool
bitIdentical(const Matrix& a, const Matrix& b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        return false;
    }
    return a.rows() * a.cols() == 0 ||
           std::memcmp(a.data(), b.data(),
                       a.rows() * a.cols() * sizeof(double)) == 0;
}

TEST(Gemm, BlockedMatchesNaiveBitwiseAwkwardShapes)
{
    // Shapes around the kGemmColBlock boundary and degenerate rows /
    // columns. (m, k, n) triples.
    const std::size_t shapes[][3] = {
        {1, 1, 1},
        {1, 3, kGemmColBlock},
        {1, 7, kGemmColBlock - 1},
        {2, 5, kGemmColBlock + 1},
        {40, 2, 3},   // Tall and skinny.
        {3, 2, 40},   // Short and wide.
        {5, 5, 2 * kGemmColBlock + 1},
        {17, 13, 29},
    };
    unsigned seed = 1;
    for (const auto& s : shapes) {
        Matrix a = test::randomMatrix(s[0], s[1], seed++);
        Matrix b = test::randomMatrix(s[1], s[2], seed++);
        EXPECT_TRUE(bitIdentical(gemmBlocked(a, b), a * b))
            << s[0] << "x" << s[1] << " * " << s[1] << "x" << s[2];
        EXPECT_TRUE(bitIdentical(gemmDense(a, b), a * b))
            << "dense " << s[0] << "x" << s[1];
    }
}

TEST(Gemm, BlockedMatchesNaiveWithZeroEntries)
{
    // Plenty of exact zeros so the sparsity skip actually fires, on
    // both sides of the block boundary.
    for (unsigned seed = 0; seed < 8; ++seed) {
        Matrix a = test::randomMatrix(6, 9, 100 + seed);
        Matrix b = test::randomMatrix(9, kGemmColBlock + 3, 200 + seed);
        for (std::size_t i = 0; i < a.rows(); ++i) {
            for (std::size_t j = 0; j < a.cols(); ++j) {
                if ((i + j + seed) % 3 == 0) {
                    a(i, j) = 0.0;
                }
            }
        }
        EXPECT_TRUE(bitIdentical(gemmBlocked(a, b), a * b));
    }
}

TEST(Gemm, ShapeMismatchThrows)
{
    Matrix a(2, 3);
    Matrix b(4, 2);
    EXPECT_THROW(gemmBlocked(a, b), std::invalid_argument);
    EXPECT_THROW(gemmDense(a, b), std::invalid_argument);
}

TEST(Gemm, EmptyDimensions)
{
    Matrix a(0, 0);
    Matrix b(0, 0);
    EXPECT_EQ(gemmBlocked(a, b).rows(), 0u);
    EXPECT_EQ(gemmDense(a, b).rows(), 0u);
}

TEST(Gemm, BlockedZeroRowTimesNanPropagates)
{
    // The PR 5 regression, blocked flavor: a zero row against a
    // NaN-poisoned column must yield NaN, not 0 -- the skip may only
    // fire when the right operand is verified finite.
    Matrix gain{{0.0, 0.0}, {1.0, 0.0}};
    Matrix state{{kNan}, {2.0}};
    Matrix out = gemmBlocked(gain, state);
    EXPECT_TRUE(std::isnan(out(0, 0)));
    EXPECT_TRUE(std::isnan(out(1, 0)));
    EXPECT_FALSE(out.allFinite());
}

TEST(Gemm, BlockedZeroTimesInfPropagatesAsNan)
{
    Matrix lhs{{0.0}};
    Matrix rhs{{kInf}};
    EXPECT_TRUE(std::isnan(gemmBlocked(lhs, rhs)(0, 0)));
}

TEST(Gemm, BlockedFiniteProductsKeepExactBits)
{
    // With finite operands the skip fires and zero rows give exact
    // +0.0, matching the naive product bit-for-bit.
    Matrix lhs{{0.0, 0.0}, {1.5, -2.0}};
    Matrix rhs{{4.0, -0.5}, {1.0, 8.0}};
    Matrix out = gemmBlocked(lhs, rhs);
    EXPECT_TRUE(bitIdentical(out, lhs * rhs));
    EXPECT_EQ(out(0, 0), 0.0);
    EXPECT_FALSE(std::signbit(out(0, 0)));
}

TEST(Gemm, DenseNeverSkips)
{
    // gemmDense mirrors Matrix*Vector (no sparsity skip): a zero
    // coefficient against NaN must poison the output even though the
    // blocked/naive matmul pair would also propagate it. This is the
    // kernel the batched tick engine uses, so 0 * NaN containment
    // cannot depend on a finiteness pre-scan.
    Matrix lhs{{0.0}};
    Matrix rhs{{kNan}};
    EXPECT_TRUE(std::isnan(gemmDense(lhs, rhs)(0, 0)));
}

TEST(Gemm, DenseColumnsMatchMatrixVectorBitwise)
{
    // Column j of gemmDense(A, B) must equal A * B.col(j) exactly:
    // the per-column bit-identity contract the batch engine relies
    // on, checked across shapes and against the exact operator*
    // (Matrix, Vector) implementation.
    unsigned seed = 77;
    for (std::size_t n : {1u, 2u, 5u, 20u}) {
        for (std::size_t cols :
             {1u, 3u, static_cast<unsigned>(kGemmColBlock + 2)}) {
            Matrix a = test::randomMatrix(4, n, seed++);
            Matrix b = test::randomMatrix(n, cols, seed++);
            Matrix prod = gemmDense(a, b);
            for (std::size_t j = 0; j < cols; ++j) {
                Vector col(n);
                for (std::size_t i = 0; i < n; ++i) {
                    col[i] = b(i, j);
                }
                Vector want = a * col;
                for (std::size_t i = 0; i < a.rows(); ++i) {
                    double got = prod(i, j);
                    EXPECT_EQ(std::memcmp(&got, &want[i],
                                          sizeof(double)),
                              0)
                        << "n=" << n << " cols=" << cols << " (" << i
                        << "," << j << ")";
                }
            }
        }
    }
}

}  // namespace
}  // namespace yukta::linalg
