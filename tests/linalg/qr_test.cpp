#include "linalg/qr.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/test_util.h"

namespace yukta::linalg {
namespace {

TEST(Qr, ReconstructsSquare)
{
    Matrix a = test::randomMatrix(5, 5, 10);
    Qr qr(a);
    EXPECT_TRUE((qr.q() * qr.r()).isApprox(a, 1e-10));
}

TEST(Qr, ReconstructsTall)
{
    Matrix a = test::randomMatrix(9, 4, 11);
    Qr qr(a);
    EXPECT_TRUE((qr.q() * qr.r()).isApprox(a, 1e-10));
}

TEST(Qr, QHasOrthonormalColumns)
{
    Matrix a = test::randomMatrix(8, 3, 12);
    Matrix q = Qr(a).q();
    EXPECT_TRUE(
        (q.transpose() * q).isApprox(Matrix::identity(3), 1e-10));
}

TEST(Qr, RIsUpperTriangular)
{
    Matrix r = Qr(test::randomMatrix(6, 4, 13)).r();
    for (std::size_t i = 0; i < r.rows(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            EXPECT_DOUBLE_EQ(r(i, j), 0.0);
        }
    }
}

TEST(Qr, WideMatrixThrows)
{
    EXPECT_THROW(Qr(Matrix(2, 3)), std::invalid_argument);
}

TEST(Qr, ExactSolveOnSquare)
{
    Matrix a = test::randomMatrix(4, 4, 14) + 4.0 * Matrix::identity(4);
    Vector x{1.0, -2.0, 0.5, 3.0};
    Vector b = a * x;
    EXPECT_TRUE(lstsq(a, b).isApprox(x, 1e-9));
}

TEST(Qr, LeastSquaresMatchesNormalEquations)
{
    Matrix a = test::randomMatrix(20, 3, 15);
    Vector b = toVector(test::randomMatrix(20, 1, 16));
    Vector x = lstsq(a, b);
    // Normal equations: A^T A x = A^T b.
    Matrix ata = a.transpose() * a;
    Vector atb = toVector(a.transpose() * b.asColumn());
    EXPECT_TRUE((ata * x).isApprox(atb, 1e-9));
}

TEST(Qr, RankDeficientThrowsOnSolve)
{
    Matrix a(4, 2);
    a(0, 0) = 1.0;
    a(1, 0) = 2.0;  // second column all zeros -> rank 1
    Qr qr(a);
    EXPECT_FALSE(qr.fullRank());
    EXPECT_THROW(qr.solve(Matrix(4, 1)), std::runtime_error);
}

TEST(Qr, OrthonormalizeProducesOrthonormalBasis)
{
    Matrix a = test::randomMatrix(7, 4, 17);
    Matrix q = orthonormalize(a);
    EXPECT_TRUE(
        (q.transpose() * q).isApprox(Matrix::identity(4), 1e-10));
}

/** Property sweep: residual of LS solution is orthogonal to range(A). */
class QrResidualProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(QrResidualProperty, ResidualOrthogonal)
{
    auto [m, n] = GetParam();
    Matrix a = test::randomMatrix(m, n, 900 + m + n);
    Matrix b = test::randomMatrix(m, 1, 901 + m);
    Matrix x = lstsq(a, b);
    Matrix res = b - a * x;
    EXPECT_LT((a.transpose() * res).maxAbs(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrResidualProperty,
    ::testing::Values(std::make_pair(5, 2), std::make_pair(10, 4),
                      std::make_pair(30, 7), std::make_pair(50, 12)));

}  // namespace
}  // namespace yukta::linalg
