#ifndef YUKTA_TESTS_LINALG_TEST_UTIL_H_
#define YUKTA_TESTS_LINALG_TEST_UTIL_H_

/**
 * @file
 * Deterministic random-matrix helpers shared by the linalg tests.
 */

#include <random>

#include "linalg/cmatrix.h"
#include "linalg/matrix.h"

namespace yukta::test {

/** @return an n x m matrix with entries uniform in [-1, 1]. */
inline linalg::Matrix
randomMatrix(std::size_t n, std::size_t m, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    linalg::Matrix a(n, m);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            a(i, j) = dist(rng);
        }
    }
    return a;
}

/** @return a random symmetric positive definite matrix A = B B^T + I. */
inline linalg::Matrix
randomSpd(std::size_t n, unsigned seed)
{
    linalg::Matrix b = randomMatrix(n, n, seed);
    return b * b.transpose() + linalg::Matrix::identity(n);
}

/** @return an n x m complex matrix with entries uniform in [-1,1]^2. */
inline linalg::CMatrix
randomCMatrix(std::size_t n, std::size_t m, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    linalg::CMatrix a(n, m);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            a(i, j) = linalg::Complex(dist(rng), dist(rng));
        }
    }
    return a;
}

}  // namespace yukta::test

#endif  // YUKTA_TESTS_LINALG_TEST_UTIL_H_
