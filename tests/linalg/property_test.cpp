// Property-based tests for the dense linear-algebra kernels: instead
// of a handful of hand-picked matrices, each property runs hundreds
// of seeded random cases (tests/support/prng.h -- replayable, never
// rand()) and asserts an algebraic identity with an explicit bound.
#include <string>

#include <gtest/gtest.h>

#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/vector.h"
#include "support/prng.h"

namespace yukta::linalg {
namespace {

using testsupport::SplitMix64;

constexpr int kCases = 300;

TEST(LinalgProperty, SolveInvertsMultiplyForVectors)
{
    SplitMix64 rng(0xA11CE5EED5ull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 7));
        const Matrix a = testsupport::randomDominant(rng, n);
        const Vector x = testsupport::randomVector(rng, n, 10.0);
        const Vector b = a * x;
        const Vector got = solve(a, b);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(got[i], x[i], 1e-8 * (1.0 + std::abs(x[i])))
                << "case " << c << " n=" << n << " i=" << i;
        }
    }
}

TEST(LinalgProperty, SolveInvertsMultiplyForMatrices)
{
    SplitMix64 rng(0xB0B5EEDull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 6));
        const std::size_t k =
            static_cast<std::size_t>(rng.uniformInt(1, 4));
        const Matrix a = testsupport::randomDominant(rng, n);
        const Matrix x = testsupport::randomMatrix(rng, n, k, 5.0);
        const Matrix got = solve(a, a * x);
        EXPECT_LT((got - x).maxAbs(), 1e-8) << "case " << c;
    }
}

TEST(LinalgProperty, InverseTimesSelfIsIdentity)
{
    SplitMix64 rng(0xC4FE5EEDull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 6));
        const Matrix a = testsupport::randomDominant(rng, n);
        const Matrix left = inverse(a) * a;
        const Matrix right = a * inverse(a);
        EXPECT_LT((left - Matrix::identity(n)).maxAbs(), 1e-9)
            << "case " << c;
        EXPECT_LT((right - Matrix::identity(n)).maxAbs(), 1e-9)
            << "case " << c;
    }
}

TEST(LinalgProperty, DeterminantIsMultiplicative)
{
    SplitMix64 rng(0xDE7E5EEDull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 5));
        const Matrix a = testsupport::randomDominant(rng, n);
        const Matrix b = testsupport::randomDominant(rng, n);
        const double lhs = determinant(a * b);
        const double rhs = determinant(a) * determinant(b);
        EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + std::abs(rhs)))
            << "case " << c;
    }
}

TEST(LinalgProperty, CholeskyFactorReconstructsSpdInput)
{
    SplitMix64 rng(0xC0015EEDull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 6));
        const Matrix a = testsupport::randomSpd(rng, n);
        const Matrix l = cholesky(a);
        EXPECT_LT((l * l.transpose() - a).maxAbs(), 1e-9 * (1.0 + a.maxAbs()))
            << "case " << c;
        // L is lower triangular with positive diagonal.
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_GT(l(i, i), 0.0) << "case " << c;
            for (std::size_t j = i + 1; j < n; ++j) {
                EXPECT_EQ(l(i, j), 0.0) << "case " << c;
            }
        }
    }
}

TEST(LinalgProperty, LeastSquaresMatchesExactSolveOnSquareSystems)
{
    SplitMix64 rng(0x1575EEDull);
    for (int c = 0; c < kCases; ++c) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 6));
        const Matrix a = testsupport::randomDominant(rng, n);
        const Vector b = testsupport::randomVector(rng, n, 3.0);
        const Vector exact = solve(a, b);
        const Vector ls = lstsq(a, b);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(ls[i], exact[i], 1e-7 * (1.0 + std::abs(exact[i])))
                << "case " << c;
        }
    }
}

}  // namespace
}  // namespace yukta::linalg
