#include "linalg/matrix.h"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/test_util.h"

namespace yukta::linalg {
namespace {

TEST(Matrix, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructWithFill)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_DOUBLE_EQ(m(i, j), 1.5);
        }
    }
}

TEST(Matrix, InitializerList)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows)
{
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity)
{
    Matrix i = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(i.trace(), 3.0);
}

TEST(Matrix, DiagBuildsDiagonal)
{
    Matrix d = Matrix::diag({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
    EXPECT_EQ(d.diagonal(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Matrix, AddSubtract)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{4.0, 3.0}, {2.0, 1.0}};
    Matrix s = a + b;
    EXPECT_TRUE(s.isApprox(Matrix{{5.0, 5.0}, {5.0, 5.0}}));
    Matrix d = a - b;
    EXPECT_TRUE(d.isApprox(Matrix{{-3.0, -1.0}, {1.0, 3.0}}));
}

TEST(Matrix, ShapeMismatchThrows)
{
    Matrix a(2, 2);
    Matrix b(2, 3);
    EXPECT_THROW(a += b, std::invalid_argument);
    EXPECT_THROW(a - b, std::invalid_argument);
    EXPECT_THROW(b * b, std::invalid_argument);
}

TEST(Matrix, Multiply)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    Matrix p = a * b;
    EXPECT_TRUE(p.isApprox(Matrix{{19.0, 22.0}, {43.0, 50.0}}));
}

TEST(Matrix, MultiplyIdentityIsNoop)
{
    Matrix a = test::randomMatrix(4, 4, 7);
    EXPECT_TRUE((a * Matrix::identity(4)).isApprox(a));
    EXPECT_TRUE((Matrix::identity(4) * a).isApprox(a));
}

TEST(Matrix, ScalarOps)
{
    Matrix a{{2.0, 4.0}};
    EXPECT_TRUE((2.0 * a).isApprox(Matrix{{4.0, 8.0}}));
    EXPECT_TRUE((a / 2.0).isApprox(Matrix{{1.0, 2.0}}));
    EXPECT_TRUE((-a).isApprox(Matrix{{-2.0, -4.0}}));
}

TEST(Matrix, Transpose)
{
    Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_TRUE(t.transpose().isApprox(a));
}

TEST(Matrix, BlockAndSetBlock)
{
    Matrix a = Matrix::zeros(4, 4);
    Matrix b{{1.0, 2.0}, {3.0, 4.0}};
    a.setBlock(1, 2, b);
    EXPECT_DOUBLE_EQ(a(1, 2), 1.0);
    EXPECT_DOUBLE_EQ(a(2, 3), 4.0);
    EXPECT_TRUE(a.block(1, 2, 2, 2).isApprox(b));
    EXPECT_THROW(a.block(3, 3, 2, 2), std::out_of_range);
    EXPECT_THROW(a.setBlock(3, 3, b), std::out_of_range);
}

TEST(Matrix, RowColExtraction)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_TRUE(a.row(1).isApprox(Matrix{{3.0, 4.0}}));
    EXPECT_TRUE(a.col(0).isApprox(Matrix{{1.0}, {3.0}}));
}

TEST(Matrix, Norms)
{
    Matrix a{{3.0, 4.0}};
    EXPECT_DOUBLE_EQ(a.normFro(), 5.0);
    EXPECT_DOUBLE_EQ(a.normInf(), 7.0);
    EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
}

TEST(Matrix, HstackVstack)
{
    Matrix a{{1.0}, {2.0}};
    Matrix b{{3.0}, {4.0}};
    Matrix h = hstack(a, b);
    EXPECT_EQ(h.cols(), 2u);
    EXPECT_DOUBLE_EQ(h(1, 1), 4.0);
    Matrix v = vstack(a.transpose(), b.transpose());
    EXPECT_EQ(v.rows(), 2u);
    EXPECT_DOUBLE_EQ(v(1, 0), 3.0);
    // Stacking with an empty matrix returns the other operand.
    EXPECT_TRUE(hstack(Matrix(), a).isApprox(a));
    EXPECT_TRUE(vstack(a, Matrix()).isApprox(a));
}

TEST(Matrix, Blkdiag)
{
    Matrix a{{1.0}};
    Matrix b{{2.0, 0.0}, {0.0, 3.0}};
    Matrix d = blkdiag(a, b);
    EXPECT_EQ(d.rows(), 3u);
    EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(d(2, 2), 3.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, KronSizesAndValues)
{
    Matrix a{{1.0, 2.0}};
    Matrix b{{0.0, 3.0}, {4.0, 0.0}};
    Matrix k = kron(a, b);
    EXPECT_EQ(k.rows(), 2u);
    EXPECT_EQ(k.cols(), 4u);
    EXPECT_DOUBLE_EQ(k(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(k(1, 2), 8.0);
}

TEST(Matrix, VecUnvecRoundtrip)
{
    Matrix a = test::randomMatrix(3, 5, 11);
    EXPECT_TRUE(unvec(vec(a), 3, 5).isApprox(a));
}

TEST(Matrix, StreamOutput)
{
    std::ostringstream os;
    os << Matrix{{1.0, 2.0}};
    EXPECT_NE(os.str().find('1'), std::string::npos);
}

/** Property sweep: (A B)^T == B^T A^T over random shapes. */
class MatrixTransposeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MatrixTransposeProperty, ProductTranspose)
{
    auto [n, k, m] = GetParam();
    Matrix a = test::randomMatrix(n, k, 100 + n);
    Matrix b = test::randomMatrix(k, m, 200 + m);
    EXPECT_TRUE(
        (a * b).transpose().isApprox(b.transpose() * a.transpose(), 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixTransposeProperty,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 2, 5), std::make_tuple(7, 7, 7),
                      std::make_tuple(1, 9, 3)));

/** Property sweep: kron is multiplicative, (A (x) B)(C (x) D) = AC (x) BD. */
class KronProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(KronProperty, Multiplicative)
{
    int n = GetParam();
    Matrix a = test::randomMatrix(n, n, 300 + n);
    Matrix b = test::randomMatrix(2, 2, 301 + n);
    Matrix c = test::randomMatrix(n, n, 302 + n);
    Matrix d = test::randomMatrix(2, 2, 303 + n);
    EXPECT_TRUE(
        (kron(a, b) * kron(c, d)).isApprox(kron(a * c, b * d), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Sizes, KronProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace yukta::linalg
