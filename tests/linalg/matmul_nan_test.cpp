// Regression: the matmul sparsity skip must never swallow IEEE
// non-finite propagation. 0 * NaN = NaN and 0 * Inf = NaN, so a
// poisoned operand has to surface in the product even when the other
// factor has zero entries — the supervisor's NaN-poisoning detection
// relies on it.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "linalg/cmatrix.h"
#include "linalg/matrix.h"

namespace yukta::linalg {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(MatmulNan, ZeroRowTimesNanPropagates)
{
    // Zero gain row against a NaN-poisoned state vector: every
    // product entry fed by the NaN must be NaN, not 0.
    Matrix gain{{0.0, 0.0}, {1.0, 0.0}};
    Matrix state{{kNan}, {2.0}};
    Matrix out = gain * state;
    EXPECT_TRUE(std::isnan(out(0, 0)));
    EXPECT_TRUE(std::isnan(out(1, 0)));
    EXPECT_FALSE(out.allFinite());
}

TEST(MatmulNan, ZeroTimesInfPropagatesAsNan)
{
    Matrix lhs{{0.0}};
    Matrix rhs{{kInf}};
    Matrix out = lhs * rhs;
    EXPECT_TRUE(std::isnan(out(0, 0)));
}

TEST(MatmulNan, NanOnLeftAlsoPropagates)
{
    Matrix lhs{{kNan, 0.0}};
    Matrix rhs{{0.0}, {3.0}};
    Matrix out = lhs * rhs;
    EXPECT_TRUE(std::isnan(out(0, 0)));
}

TEST(MatmulNan, FiniteProductsKeepExactBits)
{
    // The skip still fires for verified-finite operands: a zero row
    // yields exact +0.0 entries, bit-for-bit as before the fix.
    Matrix lhs{{0.0, 0.0}, {1.5, -2.0}};
    Matrix rhs{{4.0, -0.5}, {1.0, 8.0}};
    Matrix out = lhs * rhs;
    EXPECT_EQ(out(0, 0), 0.0);
    EXPECT_FALSE(std::signbit(out(0, 0)));
    EXPECT_DOUBLE_EQ(out(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(out(1, 1), -16.75);
}

TEST(MatmulNan, ComplexZeroTimesNanPropagates)
{
    CMatrix lhs(1, 2);
    lhs(0, 0) = Complex(0.0, 0.0);
    lhs(0, 1) = Complex(1.0, 0.0);
    CMatrix rhs(2, 1);
    rhs(0, 0) = Complex(kNan, 0.0);
    rhs(1, 0) = Complex(2.0, 0.0);
    CMatrix out = lhs * rhs;
    EXPECT_TRUE(std::isnan(out(0, 0).real()));
    EXPECT_FALSE(out.allFinite());
}

TEST(MatmulNan, ComplexZeroTimesInfPropagates)
{
    CMatrix lhs(1, 1, Complex(0.0, 0.0));
    CMatrix rhs(1, 1, Complex(kInf, 0.0));
    CMatrix out = lhs * rhs;
    EXPECT_FALSE(out.allFinite());
}

}  // namespace
}  // namespace yukta::linalg
