#include "linalg/eig.h"

#include "linalg/lu.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "linalg/test_util.h"

namespace yukta::linalg {
namespace {

/** Sorts complex values by (real, imag) for comparison. */
std::vector<Complex>
sorted(std::vector<Complex> v)
{
    std::sort(v.begin(), v.end(), [](const Complex& a, const Complex& b) {
        // Tolerance on the real part so that numerically-equal reals
        // (conjugate pairs) are ordered by the imaginary part.
        if (std::abs(a.real() - b.real()) > 1e-7) {
            return a.real() < b.real();
        }
        return a.imag() < b.imag();
    });
    return v;
}

TEST(Eig, DiagonalMatrix)
{
    Matrix a = Matrix::diag({3.0, -1.0, 2.0});
    auto e = sorted(eigenvalues(a));
    EXPECT_NEAR(e[0].real(), -1.0, 1e-10);
    EXPECT_NEAR(e[1].real(), 2.0, 1e-10);
    EXPECT_NEAR(e[2].real(), 3.0, 1e-10);
    for (const auto& l : e) {
        EXPECT_NEAR(l.imag(), 0.0, 1e-10);
    }
}

TEST(Eig, RotationHasComplexPair)
{
    // 90-degree rotation: eigenvalues +-i.
    Matrix a{{0.0, -1.0}, {1.0, 0.0}};
    auto e = sorted(eigenvalues(a));
    EXPECT_NEAR(std::abs(e[0] - Complex(0.0, -1.0)), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(e[1] - Complex(0.0, 1.0)), 0.0, 1e-9);
}

TEST(Eig, CompanionMatrixRoots)
{
    // Companion matrix of z^3 - 6 z^2 + 11 z - 6 = (z-1)(z-2)(z-3).
    Matrix a{{6.0, -11.0, 6.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
    auto e = sorted(eigenvalues(a));
    EXPECT_NEAR(std::abs(e[0] - Complex(1.0, 0.0)), 0.0, 1e-8);
    EXPECT_NEAR(std::abs(e[1] - Complex(2.0, 0.0)), 0.0, 1e-8);
    EXPECT_NEAR(std::abs(e[2] - Complex(3.0, 0.0)), 0.0, 1e-8);
}

TEST(Eig, TraceAndDeterminantConsistency)
{
    Matrix a = test::randomMatrix(8, 8, 21);
    auto e = eigenvalues(a);
    Complex sum(0.0, 0.0);
    for (const auto& l : e) {
        sum += l;
    }
    EXPECT_NEAR(sum.real(), a.trace(), 1e-8);
    EXPECT_NEAR(sum.imag(), 0.0, 1e-8);
}

TEST(Eig, SpectralRadiusOfScaledIdentity)
{
    EXPECT_NEAR(spectralRadius(0.5 * Matrix::identity(4)), 0.5, 1e-12);
}

TEST(Eig, SpectralAbscissaOfStableMatrix)
{
    Matrix a{{-1.0, 5.0}, {0.0, -2.0}};
    EXPECT_NEAR(spectralAbscissa(a), -1.0, 1e-9);
}

TEST(Eig, EmptyMatrix)
{
    EXPECT_TRUE(eigenvalues(Matrix()).empty());
}

TEST(SymmetricEigen, KnownDecomposition)
{
    Matrix a{{2.0, 1.0}, {1.0, 2.0}};
    auto se = symmetricEigen(a);
    EXPECT_NEAR(se.values[0], 1.0, 1e-10);
    EXPECT_NEAR(se.values[1], 3.0, 1e-10);
}

TEST(SymmetricEigen, ReconstructsMatrix)
{
    Matrix a = test::randomSpd(6, 22);
    auto se = symmetricEigen(a);
    Matrix recon =
        se.vectors * Matrix::diag(se.values) * se.vectors.transpose();
    EXPECT_TRUE(recon.isApprox(a, 1e-8));
    // Eigenvectors orthonormal.
    EXPECT_TRUE((se.vectors.transpose() * se.vectors)
                    .isApprox(Matrix::identity(6), 1e-9));
}

TEST(SymmetricEigen, PsdChecks)
{
    EXPECT_TRUE(isPositiveSemidefinite(test::randomSpd(4, 23)));
    Matrix indef{{1.0, 0.0}, {0.0, -0.5}};
    EXPECT_FALSE(isPositiveSemidefinite(indef));
    EXPECT_TRUE(isPositiveSemidefinite(Matrix()));
    EXPECT_NEAR(minSymmetricEigenvalue(indef), -0.5, 1e-10);
}

/** Property sweep: eigenvalues of A and A^T coincide. */
class EigTransposeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(EigTransposeProperty, SameSpectrum)
{
    int n = GetParam();
    Matrix a = test::randomMatrix(n, n, 1000 + n);
    auto e1 = sorted(eigenvalues(a));
    auto e2 = sorted(eigenvalues(a.transpose()));
    ASSERT_EQ(e1.size(), e2.size());
    for (std::size_t i = 0; i < e1.size(); ++i) {
        EXPECT_NEAR(std::abs(e1[i] - e2[i]), 0.0, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigTransposeProperty,
                         ::testing::Values(2, 3, 5, 9, 14, 20));

/** Property sweep: similarity transforms preserve the spectrum. */
class EigSimilarityProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(EigSimilarityProperty, InvariantUnderSimilarity)
{
    int n = GetParam();
    Matrix a = test::randomMatrix(n, n, 1100 + n);
    Matrix t =
        test::randomMatrix(n, n, 1200 + n) + (n + 1.0) * Matrix::identity(n);
    // B = (T A) T^{-1} shares eigenvalues with A; X T = T A is solved
    // as T^T X^T = (T A)^T.
    Matrix ta = t * a;
    Matrix bt = solve(t.transpose(), ta.transpose()).transpose();
    auto e1 = sorted(eigenvalues(a));
    auto e2 = sorted(eigenvalues(bt));
    for (std::size_t i = 0; i < e1.size(); ++i) {
        EXPECT_NEAR(std::abs(e1[i] - e2[i]), 0.0, 2e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSimilarityProperty,
                         ::testing::Values(2, 4, 6, 10));

}  // namespace
}  // namespace yukta::linalg
