#include "linalg/vector.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/test_util.h"

namespace yukta::linalg {
namespace {

TEST(Vector, ConstructAndAccess)
{
    Vector v{1.0, 2.0, 3.0};
    EXPECT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[1], 2.0);
    v[1] = 5.0;
    EXPECT_DOUBLE_EQ(v.at(1), 5.0);
    EXPECT_THROW(v.at(3), std::out_of_range);
}

TEST(Vector, ZerosOnes)
{
    EXPECT_DOUBLE_EQ(Vector::zeros(4).norm2(), 0.0);
    EXPECT_DOUBLE_EQ(Vector::ones(4).norm2(), 2.0);
}

TEST(Vector, Arithmetic)
{
    Vector a{1.0, 2.0};
    Vector b{3.0, 4.0};
    EXPECT_TRUE((a + b).isApprox(Vector{4.0, 6.0}));
    EXPECT_TRUE((b - a).isApprox(Vector{2.0, 2.0}));
    EXPECT_TRUE((2.0 * a).isApprox(Vector{2.0, 4.0}));
    EXPECT_THROW(a += Vector{1.0}, std::invalid_argument);
}

TEST(Vector, DotAndNorm)
{
    Vector a{3.0, 4.0};
    EXPECT_DOUBLE_EQ(a.norm2(), 5.0);
    EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
    EXPECT_DOUBLE_EQ(a.dot(Vector{1.0, 1.0}), 7.0);
    EXPECT_THROW(a.dot(Vector{1.0}), std::invalid_argument);
}

TEST(Vector, MatrixVectorProduct)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    Vector v{1.0, 1.0};
    Vector r = m * v;
    EXPECT_TRUE(r.isApprox(Vector{3.0, 7.0}));
    EXPECT_THROW(m * Vector{1.0}, std::invalid_argument);
}

TEST(Vector, AsColumnAsRowRoundtrip)
{
    Vector v{1.0, 2.0, 3.0};
    EXPECT_EQ(v.asColumn().rows(), 3u);
    EXPECT_EQ(v.asRow().cols(), 3u);
    EXPECT_TRUE(toVector(v.asColumn()).isApprox(v));
    EXPECT_THROW(toVector(Matrix(2, 2)), std::invalid_argument);
}

TEST(Vector, SegmentAndConcat)
{
    Vector v{1.0, 2.0, 3.0, 4.0};
    EXPECT_TRUE(v.segment(1, 2).isApprox(Vector{2.0, 3.0}));
    EXPECT_THROW(v.segment(3, 2), std::out_of_range);
    Vector c = concat(Vector{1.0}, Vector{2.0, 3.0});
    EXPECT_TRUE(c.isApprox(Vector{1.0, 2.0, 3.0}));
}

TEST(Vector, MatVecMatchesMatMat)
{
    Matrix m = test::randomMatrix(5, 4, 42);
    Matrix x = test::randomMatrix(4, 1, 43);
    Vector v = toVector(x);
    EXPECT_TRUE((m * v).asColumn().isApprox(m * x, 1e-12));
}

}  // namespace
}  // namespace yukta::linalg
