#include "linalg/lu.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/test_util.h"

namespace yukta::linalg {
namespace {

TEST(Lu, SolvesKnownSystem)
{
    Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    Vector b{3.0, 5.0};
    Vector x = solve(a, b);
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, InverseTimesMatrixIsIdentity)
{
    Matrix a = test::randomMatrix(6, 6, 1) + 3.0 * Matrix::identity(6);
    Matrix inv = inverse(a);
    EXPECT_TRUE((a * inv).isApprox(Matrix::identity(6), 1e-9));
    EXPECT_TRUE((inv * a).isApprox(Matrix::identity(6), 1e-9));
}

TEST(Lu, DeterminantOfTriangular)
{
    Matrix a{{2.0, 5.0}, {0.0, 3.0}};
    EXPECT_NEAR(determinant(a), 6.0, 1e-12);
}

TEST(Lu, DeterminantSignUnderRowSwap)
{
    // Permutation matrix has determinant -1.
    Matrix p{{0.0, 1.0}, {1.0, 0.0}};
    EXPECT_NEAR(determinant(p), -1.0, 1e-12);
}

TEST(Lu, SingularDetection)
{
    Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    Lu lu(a);
    EXPECT_FALSE(lu.invertible());
    EXPECT_THROW(lu.solve(Matrix::identity(2)), std::runtime_error);
}

TEST(Lu, NonSquareThrows)
{
    EXPECT_THROW(Lu(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, RcondSmallForIllConditioned)
{
    Matrix good = Matrix::identity(3);
    Matrix bad{{1.0, 0.0}, {0.0, 1e-12}};
    EXPECT_GT(Lu(good).rcondEstimate(), 0.5);
    EXPECT_LT(Lu(bad).rcondEstimate(), 1e-10);
}

TEST(Cholesky, ReconstructsSpd)
{
    Matrix a = test::randomSpd(5, 2);
    Matrix l = cholesky(a);
    EXPECT_TRUE((l * l.transpose()).isApprox(a, 1e-9));
    // L must be lower triangular.
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = i + 1; j < 5; ++j) {
            EXPECT_DOUBLE_EQ(l(i, j), 0.0);
        }
    }
}

TEST(Cholesky, RejectsIndefinite)
{
    Matrix a{{1.0, 0.0}, {0.0, -1.0}};
    EXPECT_THROW(cholesky(a), std::runtime_error);
}

TEST(Cholesky, JitterRecoversSemidefinite)
{
    // Rank-1 PSD matrix: plain Cholesky fails, jitter succeeds.
    Matrix a{{1.0, 1.0}, {1.0, 1.0}};
    EXPECT_THROW(cholesky(a), std::runtime_error);
    Matrix l = cholesky(a, 1e-9);
    EXPECT_TRUE((l * l.transpose()).isApprox(a, 1e-3));
}

/** Property sweep: solve(A, A*x) == x for random well-conditioned A. */
class LuSolveProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LuSolveProperty, RoundTrip)
{
    int n = GetParam();
    Matrix a =
        test::randomMatrix(n, n, 500 + n) + (n + 2.0) * Matrix::identity(n);
    Matrix x = test::randomMatrix(n, 3, 600 + n);
    Matrix b = a * x;
    EXPECT_TRUE(solve(a, b).isApprox(x, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSolveProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

/** Property sweep: complex solve round-trips too. */
class CsolveProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CsolveProperty, RoundTrip)
{
    int n = GetParam();
    CMatrix a = test::randomCMatrix(n, n, 700 + n);
    for (int i = 0; i < n; ++i) {
        a(i, i) += Complex(n + 2.0, 0.0);
    }
    CMatrix x = test::randomCMatrix(n, 2, 800 + n);
    CMatrix b = a * x;
    EXPECT_TRUE(csolve(a, b).isApprox(x, 1e-8));
    EXPECT_TRUE((a * cinverse(a)).isApprox(CMatrix::identity(n), 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CsolveProperty,
                         ::testing::Values(1, 2, 4, 7, 12));

}  // namespace
}  // namespace yukta::linalg
