// Hessenberg reduction + shifted Hessenberg solver: structure,
// orthogonality, reconstruction, and agreement with the dense
// complex LU solve.
#include "linalg/hessenberg.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/cmatrix.h"
#include "linalg/matrix.h"
#include "support/prng.h"

namespace {

using yukta::linalg::CMatrix;
using yukta::linalg::Complex;
using yukta::linalg::HessenbergForm;
using yukta::linalg::HessenbergSolver;
using yukta::linalg::Matrix;
using yukta::linalg::hessenbergReduce;
using yukta::testsupport::SplitMix64;
using yukta::testsupport::randomMatrix;

TEST(Hessenberg, ReduceIsExactlyHessenbergAndOrthogonal)
{
    SplitMix64 rng(101);
    for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
        Matrix a = randomMatrix(rng, n, n, 2.0);
        HessenbergForm f = hessenbergReduce(a);

        // Exact zeros below the subdiagonal.
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j + 1 < i; ++j) {
                EXPECT_EQ(f.h(i, j), 0.0) << "n=" << n;
            }
        }
        // Q orthogonal: Q^T Q = I.
        Matrix qtq = f.q.transpose() * f.q;
        EXPECT_TRUE(qtq.isApprox(Matrix::identity(n), 1e-12));
        // Reconstruction: Q H Q^T = A.
        Matrix back = f.q * f.h * f.q.transpose();
        EXPECT_TRUE(back.isApprox(a, 1e-11));
    }
}

TEST(Hessenberg, ReduceRejectsNonSquare)
{
    EXPECT_THROW(hessenbergReduce(Matrix(2, 3)), std::invalid_argument);
}

TEST(Hessenberg, SolverMatchesDenseCsolve)
{
    SplitMix64 rng(202);
    for (int rep = 0; rep < 20; ++rep) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 7));
        const std::size_t m =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        Matrix a = randomMatrix(rng, n, n, 2.0);
        HessenbergForm f = hessenbergReduce(a);
        HessenbergSolver solver(f.h, m);
        CMatrix b(randomMatrix(rng, n, m, 2.0));

        const Complex z(rng.uniform(-3.0, 3.0), rng.uniform(0.1, 3.0));
        const CMatrix& x = solver.solve(z, b);

        // Dense reference: (zI - H) X = B via full-pivot complex LU.
        CMatrix zi_h(n, n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                zi_h(i, j) = Complex(-f.h(i, j), 0.0);
            }
            zi_h(i, i) += z;
        }
        CMatrix ref = yukta::linalg::csolve(zi_h, b);
        EXPECT_TRUE(x.isApprox(ref, 1e-10)) << "rep=" << rep;
    }
}

TEST(Hessenberg, SolverReusesWorkspaceAcrossShifts)
{
    SplitMix64 rng(303);
    const std::size_t n = 6;
    Matrix a = randomMatrix(rng, n, n, 1.5);
    HessenbergForm f = hessenbergReduce(a);
    HessenbergSolver solver(f.h, 2);
    CMatrix b(randomMatrix(rng, n, 2, 1.0));

    // Interleave two shifts repeatedly: each solve must be
    // independent of workspace history.
    const Complex z1(0.0, 0.7);
    const Complex z2(0.0, 5.0);
    CMatrix first_z1 = solver.solve(z1, b);
    CMatrix first_z2 = solver.solve(z2, b);
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(solver.solve(z1, b).isApprox(first_z1, 0.0));
        EXPECT_TRUE(solver.solve(z2, b).isApprox(first_z2, 0.0));
    }
}

TEST(Hessenberg, SolverThrowsOnSingularShift)
{
    // H diagonal {1, 2}: z = 1 makes zI - H exactly singular.
    Matrix h{{1.0, 0.0}, {0.0, 2.0}};
    HessenbergSolver solver(h, 1);
    CMatrix b(2, 1, Complex(1.0, 0.0));
    EXPECT_THROW(solver.solve(Complex(1.0, 0.0), b), std::runtime_error);
}

TEST(Hessenberg, SolverRejectsBadRhsShape)
{
    Matrix h{{1.0, 0.0}, {0.0, 2.0}};
    HessenbergSolver solver(h, 1);
    CMatrix wrong(3, 1, Complex(1.0, 0.0));
    EXPECT_THROW(solver.solve(Complex(0.0, 1.0), wrong),
                 std::invalid_argument);
}

}  // namespace
