#include "linalg/expm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/test_util.h"

namespace yukta::linalg {
namespace {

TEST(Expm, IdentityOfZero)
{
    EXPECT_TRUE(expm(Matrix(3, 3)).isApprox(Matrix::identity(3), 1e-14));
}

TEST(Expm, DiagonalMatrix)
{
    Matrix a = Matrix::diag({1.0, -2.0, 0.5});
    Matrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
    EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
    EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-12);
    EXPECT_NEAR(e(0, 1), 0.0, 1e-13);
}

TEST(Expm, RotationMatrix)
{
    // exp([[0, -t], [t, 0]]) = rotation by t.
    double t = 0.7;
    Matrix a{{0.0, -t}, {t, 0.0}};
    Matrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::cos(t), 1e-12);
    EXPECT_NEAR(e(1, 0), std::sin(t), 1e-12);
    EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-12);
}

TEST(Expm, NilpotentExact)
{
    // exp([[0,1],[0,0]]) = [[1,1],[0,1]].
    Matrix a{{0.0, 1.0}, {0.0, 0.0}};
    Matrix e = expm(a);
    EXPECT_TRUE(e.isApprox(Matrix{{1.0, 1.0}, {0.0, 1.0}}, 1e-13));
}

TEST(Expm, LargeNormTriggersScaling)
{
    // exp(50 I) stays exact through scaling-and-squaring.
    Matrix a = 50.0 * Matrix::identity(2);
    Matrix e = expm(a);
    EXPECT_NEAR(std::log(e(0, 0)), 50.0, 1e-9);
}

TEST(Expm, NonSquareThrows)
{
    EXPECT_THROW(expm(Matrix(2, 3)), std::invalid_argument);
}

/** Property: exp(A)exp(-A) = I. */
class ExpmInverseProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ExpmInverseProperty, InverseIsNegatedExponent)
{
    int n = GetParam();
    Matrix a = test::randomMatrix(n, n, 2000 + n);
    Matrix prod = expm(a) * expm(-1.0 * a);
    EXPECT_TRUE(prod.isApprox(Matrix::identity(n), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExpmInverseProperty,
                         ::testing::Values(1, 2, 4, 7, 10));

/** Property: exp((s+t)A) = exp(sA) exp(tA). */
class ExpmSemigroupProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(ExpmSemigroupProperty, Semigroup)
{
    double s = GetParam();
    Matrix a = test::randomMatrix(4, 4, 2100);
    Matrix lhs = expm((s + 0.5) * a);
    Matrix rhs = expm(s * a) * expm(0.5 * a);
    EXPECT_TRUE(lhs.isApprox(rhs, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Scales, ExpmSemigroupProperty,
                         ::testing::Values(0.1, 1.0, 3.0, 8.0));

}  // namespace
}  // namespace yukta::linalg
