#include <cmath>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/test_util.h"
#include "sysid/arx.h"
#include "sysid/excitation.h"

namespace yukta::sysid {
namespace {

using control::StateSpace;
using linalg::Matrix;
using linalg::Vector;

TEST(Excitation, PrbsTwoLevels)
{
    auto sig = prbs(200, -1.0, 1.0, 1);
    std::set<double> levels(sig.begin(), sig.end());
    EXPECT_LE(levels.size(), 2u);
    for (double v : sig) {
        EXPECT_TRUE(v == -1.0 || v == 1.0);  // yukta-lint: allow(float-eq)
    }
    // Roughly balanced.
    double mean = 0.0;
    for (double v : sig) {
        mean += v;
    }
    EXPECT_LT(std::abs(mean / sig.size()), 0.4);
}

TEST(Excitation, PrbsHoldRepeats)
{
    auto sig = prbs(100, 0.0, 1.0, 5);
    for (std::size_t i = 0; i < sig.size(); ++i) {
        EXPECT_EQ(sig[i], sig[i - i % 5]);
    }
    EXPECT_THROW(prbs(10, 0.0, 1.0, 0), std::invalid_argument);
}

TEST(Excitation, StaircaseStaysOnGrid)
{
    auto sig = randomStaircase(500, 0.2, 2.0, 0.1, 4, 42);
    for (double v : sig) {
        EXPECT_GE(v, 0.2 - 1e-12);
        EXPECT_LE(v, 2.0 + 1e-12);
        double steps = (v - 0.2) / 0.1;
        EXPECT_NEAR(steps, std::round(steps), 1e-9);
    }
}

TEST(Excitation, MultiChannelShapes)
{
    auto sig = multiChannelExcitation(100, {0.0, 1.0}, {1.0, 4.0},
                                      {0.5, 1.0}, 3, 7);
    ASSERT_EQ(sig.size(), 100u);
    EXPECT_EQ(sig[0].size(), 2u);
    EXPECT_THROW(
        multiChannelExcitation(10, {0.0}, {1.0, 2.0}, {0.1}, 3, 7),
        std::invalid_argument);
}

/** Generates data from a known ARX system plus optional noise. */
IoData
simulateKnownSystem(std::size_t steps, double noise, unsigned seed)
{
    // y(t) = 0.6 y(t-1) - 0.1 y(t-2) + 0.5 u(t-1) + 0.2 u(t-2).
    IoData data;
    auto u = prbs(steps, -1.0, 1.0, 3, 0xBEEF + seed);
    std::mt19937 rng(seed);
    std::normal_distribution<double> dist(0.0, noise);
    double y1 = 0.0;
    double y2 = 0.0;
    double u1 = 0.0;
    double u2 = 0.0;
    for (std::size_t t = 0; t < steps; ++t) {
        double y = 0.6 * y1 - 0.1 * y2 + 0.5 * u1 + 0.2 * u2;
        if (noise > 0.0) {
            y += dist(rng);
        }
        data.u.push_back(Vector{u[t]});
        data.y.push_back(Vector{y});
        y2 = y1;
        y1 = y;
        u2 = u1;
        u1 = u[t];
    }
    return data;
}

TEST(Arx, RecoversKnownCoefficients)
{
    IoData data = simulateKnownSystem(600, 0.0, 1);
    ArxOptions opt;
    opt.na = 2;
    opt.nb = 2;
    opt.ridge = 0.0;
    ArxModel m = identifyArx(data, 0.5, opt);
    EXPECT_NEAR(m.aCoeff(0)(0, 0), 0.6, 1e-6);
    EXPECT_NEAR(m.aCoeff(1)(0, 0), -0.1, 1e-6);
    EXPECT_NEAR(m.bCoeff(0)(0, 0), 0.5, 1e-6);
    EXPECT_NEAR(m.bCoeff(1)(0, 0), 0.2, 1e-6);
}

TEST(Arx, FitHighOnCleanData)
{
    IoData data = simulateKnownSystem(600, 0.0, 2);
    ArxModel m = identifyArx(data, 0.5, {2, 2, 1e-9});
    auto pfit = predictionFit(m, data);
    auto sfit = simulationFit(m, data);
    ASSERT_EQ(pfit.size(), 1u);
    EXPECT_GT(pfit[0], 99.0);
    EXPECT_GT(sfit[0], 95.0);
}

TEST(Arx, FitDegradesGracefullyWithNoise)
{
    IoData data = simulateKnownSystem(800, 0.05, 3);
    ArxModel m = identifyArx(data, 0.5, {2, 2, 1e-6});
    auto pfit = predictionFit(m, data);
    EXPECT_GT(pfit[0], 60.0);
    EXPECT_LT(pfit[0], 100.0);
}

TEST(Arx, StateSpaceMatchesPrediction)
{
    IoData data = simulateKnownSystem(400, 0.0, 4);
    ArxModel m = identifyArx(data, 0.5, {2, 2, 1e-9});
    StateSpace ss = m.toStateSpace();
    // Strictly proper, correct port counts.
    EXPECT_EQ(ss.numInputs(), 1u);
    EXPECT_EQ(ss.numOutputs(), 1u);
    EXPECT_LT(ss.d.maxAbs(), 1e-12);
    EXPECT_TRUE(ss.isDiscrete());
    // Free-run simulation reproduces the clean data.
    auto sfit = simulationFit(m, data);
    EXPECT_GT(sfit[0], 99.0);
}

TEST(Arx, MimoIdentification)
{
    // 2-in 2-out coupled discrete plant simulated directly.
    Matrix a{{0.7, 0.1}, {0.0, 0.5}};
    Matrix b{{0.4, 0.1}, {0.2, 0.3}};
    Matrix c{{1.0, 0.0}, {0.3, 1.0}};
    StateSpace plant(a, b, c, Matrix(2, 2), 0.5);

    auto u = multiChannelExcitation(800, {-1.0, -1.0}, {1.0, 1.0},
                                    {0.5, 0.25}, 3, 11);
    IoData data;
    Vector x = Vector::zeros(2);
    for (const auto& ut : u) {
        Vector y = stepOnce(plant, x, ut);
        data.u.push_back(ut);
        data.y.push_back(y);
    }
    ArxModel m = identifyArx(data, 0.5, {4, 4, 1e-8});
    auto pfit = predictionFit(m, data);
    ASSERT_EQ(pfit.size(), 2u);
    EXPECT_GT(pfit[0], 98.0);
    EXPECT_GT(pfit[1], 98.0);
    // The identified state space should be stable like the source.
    EXPECT_TRUE(m.toStateSpace().isStable(1e-6));
}

TEST(Arx, HandlesOperatingPointOffsets)
{
    // Same known system but shifted by constant offsets.
    IoData data = simulateKnownSystem(600, 0.0, 5);
    for (auto& ut : data.u) {
        ut[0] += 3.0;
    }
    for (auto& yt : data.y) {
        yt[0] += 10.0;
    }
    ArxModel m = identifyArx(data, 0.5, {2, 2, 1e-9});
    auto pfit = predictionFit(m, data);
    EXPECT_GT(pfit[0], 99.0);
    // Sample means sit near the applied offsets (PRBS is only roughly
    // balanced, so the tolerance is loose).
    EXPECT_NEAR(m.uMean()[0], 3.0, 0.3);
    EXPECT_NEAR(m.yMean()[0], 10.0, 1.0);
}

TEST(Arx, InputValidation)
{
    IoData data;
    data.u.resize(5, Vector{0.0});
    data.y.resize(4, Vector{0.0});
    EXPECT_THROW(identifyArx(data, 0.5), std::invalid_argument);
    data.y.resize(5, Vector{0.0});
    EXPECT_THROW(identifyArx(data, 0.5), std::invalid_argument);  // short
}

TEST(Arx, PredictRequiresHistory)
{
    IoData data = simulateKnownSystem(100, 0.0, 6);
    ArxModel m = identifyArx(data, 0.5, {2, 2, 1e-9});
    EXPECT_THROW(m.predict({Vector{0.0}}, {Vector{0.0}, Vector{0.0}}),
                 std::invalid_argument);
}

/** Property: identification is exact for arbitrary stable ARX(na). */
class ArxOrderProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ArxOrderProperty, ExactRecoveryAtMatchingOrder)
{
    int na = GetParam();
    std::mt19937 rng(500 + na);
    std::uniform_real_distribution<double> dist(-0.2, 0.2);
    std::vector<double> ac(na);
    for (double& v : ac) {
        v = dist(rng);
    }
    std::vector<double> bc(na);
    for (double& v : bc) {
        v = dist(rng) + 0.3;
    }
    auto u = prbs(800, -1.0, 1.0, 2, 0xC0DE + na);
    IoData data;
    std::vector<double> yh(na, 0.0);
    std::vector<double> uh(na, 0.0);
    for (std::size_t t = 0; t < u.size(); ++t) {
        double y = 0.0;
        for (int k = 0; k < na; ++k) {
            y += ac[k] * yh[k] + bc[k] * uh[k];
        }
        data.u.push_back(Vector{u[t]});
        data.y.push_back(Vector{y});
        for (int k = na - 1; k > 0; --k) {
            yh[k] = yh[k - 1];
            uh[k] = uh[k - 1];
        }
        yh[0] = y;
        uh[0] = u[t];
    }
    ArxModel m = identifyArx(data, 0.5,
                             {static_cast<std::size_t>(na),
                              static_cast<std::size_t>(na), 0.0});
    for (int k = 0; k < na; ++k) {
        EXPECT_NEAR(m.aCoeff(k)(0, 0), ac[k], 1e-5);
        EXPECT_NEAR(m.bCoeff(k)(0, 0), bc[k], 1e-5);
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, ArxOrderProperty,
                         ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace yukta::sysid
