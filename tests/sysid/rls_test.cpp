#include <cmath>
#include <cstddef>
#include <deque>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/test_util.h"
#include "obs/stateio.h"
#include "sysid/arx.h"
#include "sysid/drift.h"
#include "sysid/excitation.h"
#include "sysid/rls.h"

namespace yukta::sysid {
namespace {

using linalg::Matrix;
using linalg::Vector;

/** Coefficients of the known SISO ARX(2) test plant. */
struct Coeffs
{
    double a1;
    double a2;
    double b1;
    double b2;
};

constexpr Coeffs kTruth{0.6, -0.1, 0.5, 0.2};

/**
 * Simulates the known plant through a sequence of coefficient
 * segments with continuous state (for step-change tracking tests).
 */
IoData simulateSegments(
    const std::vector<std::pair<std::size_t, Coeffs>>& segments,
    double noise, unsigned seed)
{
    IoData data;
    std::size_t total = 0;
    for (const auto& seg : segments) {
        total += seg.first;
    }
    auto u = prbs(total, -1.0, 1.0, 3, 0xBEEF + seed);
    std::mt19937 rng(seed);
    std::normal_distribution<double> dist(0.0, noise);
    double y1 = 0.0;
    double y2 = 0.0;
    double u1 = 0.0;
    double u2 = 0.0;
    std::size_t t = 0;
    for (const auto& seg : segments) {
        const Coeffs& c = seg.second;
        for (std::size_t s = 0; s < seg.first; ++s, ++t) {
            double y = c.a1 * y1 + c.a2 * y2 + c.b1 * u1 + c.b2 * u2;
            if (noise > 0.0) {
                y += dist(rng);
            }
            data.u.push_back(Vector{u[t]});
            data.y.push_back(Vector{y});
            y2 = y1;
            y1 = y;
            u2 = u1;
            u1 = u[t];
        }
    }
    return data;
}

IoData simulate(const Coeffs& c, std::size_t steps, double noise,
                unsigned seed)
{
    return simulateSegments({{steps, c}}, noise, seed);
}

/** Zero-coefficient ARX(2) seed sharing the test plant's structure. */
ArxModel zeroSeed()
{
    std::vector<Matrix> a(2, Matrix(1, 1));
    std::vector<Matrix> b(2, Matrix(1, 1));
    return ArxModel(a, b, Vector{0.0}, Vector{0.0}, 0.5, 1);
}

TEST(Rls, ConvergesToBatchLeastSquares)
{
    IoData data = simulate(kTruth, 600, 0.0, 1);
    RlsOptions opt;
    opt.forgetting = 1.0;  // Ordinary least squares, recursively.
    opt.p0 = 1e4;          // Weak prior so the warm start barely biases.
    RlsEstimator est(zeroSeed(), Vector{1.0}, Vector{1.0}, opt);
    for (std::size_t t = 0; t < data.u.size(); ++t) {
        est.update(data.u[t], data.y[t]);
    }
    ASSERT_TRUE(est.primed());
    EXPECT_EQ(est.updates(), data.u.size() - 2);

    ArxModel m = est.model();
    ArxOptions batch_opt;
    batch_opt.na = 2;
    batch_opt.nb = 2;
    batch_opt.ridge = 0.0;
    ArxModel batch = identifyArx(data, 0.5, batch_opt);

    // Both recover the exact plant, so RLS == batch within the prior's
    // vanishing bias.
    EXPECT_NEAR(m.aCoeff(0)(0, 0), kTruth.a1, 1e-4);
    EXPECT_NEAR(m.aCoeff(1)(0, 0), kTruth.a2, 1e-4);
    EXPECT_NEAR(m.bCoeff(0)(0, 0), kTruth.b1, 1e-4);
    EXPECT_NEAR(m.bCoeff(1)(0, 0), kTruth.b2, 1e-4);
    EXPECT_NEAR(m.aCoeff(0)(0, 0), batch.aCoeff(0)(0, 0), 1e-4);
    EXPECT_NEAR(m.bCoeff(0)(0, 0), batch.bCoeff(0)(0, 0), 1e-4);
}

TEST(Rls, ForgettingTracksStepChange)
{
    const Coeffs shifted{0.3, -0.1, 0.8, 0.2};
    IoData data = simulateSegments({{400, kTruth}, {400, shifted}}, 0.0, 2);

    RlsOptions track;
    track.forgetting = 0.97;
    RlsEstimator tracking(zeroSeed(), Vector{1.0}, Vector{1.0}, track);

    RlsOptions ols;
    ols.forgetting = 1.0;
    RlsEstimator averaging(zeroSeed(), Vector{1.0}, Vector{1.0}, ols);

    for (std::size_t t = 0; t < data.u.size(); ++t) {
        tracking.update(data.u[t], data.y[t]);
        averaging.update(data.u[t], data.y[t]);
    }

    ArxModel mt = tracking.model();
    EXPECT_NEAR(mt.aCoeff(0)(0, 0), shifted.a1, 0.05);
    EXPECT_NEAR(mt.bCoeff(0)(0, 0), shifted.b1, 0.05);

    // Without forgetting, the estimate straddles both regimes and ends
    // up strictly farther from the current plant.
    ArxModel ma = averaging.model();
    double err_track = std::abs(mt.aCoeff(0)(0, 0) - shifted.a1) +
                       std::abs(mt.bCoeff(0)(0, 0) - shifted.b1);
    double err_avg = std::abs(ma.aCoeff(0)(0, 0) - shifted.a1) +
                     std::abs(ma.bCoeff(0)(0, 0) - shifted.b1);
    EXPECT_GT(err_avg, err_track);
}

TEST(Rls, TraceCapBoundsCovarianceUnderQuiescence)
{
    RlsOptions opt;
    opt.forgetting = 0.98;
    opt.trace_cap = 1e6;
    opt.min_excitation = 1e-6;
    RlsEstimator est(zeroSeed(), Vector{1.0}, Vector{1.0}, opt);

    IoData warm = simulate(kTruth, 200, 0.0, 3);
    for (std::size_t t = 0; t < warm.u.size(); ++t) {
        est.update(warm.u[t], warm.y[t]);
    }
    // 5000 quiescent steps: unguarded exponential forgetting would
    // inflate trace(P) by (1/0.98)^5000 ~ e^101.
    for (int t = 0; t < 5000; ++t) {
        est.update(Vector{0.0}, Vector{0.0});
    }
    EXPECT_TRUE(std::isfinite(est.covarianceTrace()));
    EXPECT_LE(est.covarianceTrace(), opt.trace_cap * (1.0 + 1e-9));
    // The estimate must not burst either.
    ArxModel m = est.model();
    EXPECT_NEAR(m.aCoeff(0)(0, 0), kTruth.a1, 0.1);
    EXPECT_NEAR(m.bCoeff(0)(0, 0), kTruth.b1, 0.1);
}

TEST(Rls, DirectionalGuardSuspendsForgettingWhenUnexcited)
{
    RlsOptions opt;
    opt.forgetting = 0.98;
    opt.min_excitation = 1e9;  // Every update counts as unexcited.
    RlsEstimator est(zeroSeed(), Vector{1.0}, Vector{1.0}, opt);

    IoData warm = simulate(kTruth, 200, 0.0, 4);
    for (std::size_t t = 0; t < warm.u.size(); ++t) {
        est.update(warm.u[t], warm.y[t]);
    }
    double t0 = est.covarianceTrace();
    for (int t = 0; t < 2000; ++t) {
        est.update(Vector{0.0}, Vector{0.0});
    }
    // With lambda_eff pinned at 1 the RLS update only ever shrinks P.
    EXPECT_LE(est.covarianceTrace(), t0 * (1.0 + 1e-9));
}

TEST(Rls, SaveLoadRoundTripIsBitExact)
{
    IoData data = simulate(kTruth, 400, 0.02, 5);
    RlsOptions opt;
    opt.forgetting = 0.99;
    RlsEstimator a(zeroSeed(), Vector{1.0}, Vector{1.0}, opt);
    for (std::size_t t = 0; t < 300; ++t) {
        a.update(data.u[t], data.y[t]);
    }
    obs::StateWriter w;
    a.save(w);
    RlsEstimator b(zeroSeed(), Vector{1.0}, Vector{1.0}, opt);
    obs::StateReader r(w.dump());
    b.load(r);

    // Continue both in lockstep; trajectories must stay identical.
    for (std::size_t t = 300; t < data.u.size(); ++t) {
        a.update(data.u[t], data.y[t]);
        b.update(data.u[t], data.y[t]);
    }
    EXPECT_EQ(a.updates(), b.updates());
    EXPECT_EQ(a.covarianceTrace(), b.covarianceTrace());
    ArxModel ma = a.model();
    ArxModel mb = b.model();
    for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_EQ(ma.aCoeff(k)(0, 0), mb.aCoeff(k)(0, 0));
        EXPECT_EQ(ma.bCoeff(k)(0, 0), mb.bCoeff(k)(0, 0));
    }
    EXPECT_EQ(ma.intercept()[0], mb.intercept()[0]);
}

/**
 * Replays @p data through @p model's one-step predictor, feeding the
 * errors into @p det. @return number of samples fed.
 */
std::size_t feedPredictionErrors(const ArxModel& model, const IoData& data,
                                 CusumDriftDetector& det)
{
    std::deque<Vector> yh;
    std::deque<Vector> uh;
    std::size_t fed = 0;
    for (std::size_t t = 0; t < data.u.size(); ++t) {
        if (yh.size() >= model.orderA() && uh.size() >= model.orderB()) {
            std::vector<Vector> y_hist(yh.begin(), yh.end());
            std::vector<Vector> u_hist(uh.begin(), uh.end());
            Vector e = data.y[t] - model.predict(y_hist, u_hist);
            det.update(e);
            ++fed;
        }
        yh.push_front(data.y[t]);
        uh.push_front(data.u[t]);
        if (yh.size() > model.orderA()) {
            yh.pop_back();
        }
        if (uh.size() > model.orderB()) {
            uh.pop_back();
        }
    }
    return fed;
}

TEST(Cusum, NoFalseAlarmOnOwnDataAcrossSeeds)
{
    // ARL sanity: on the plant the model was identified on, the
    // statistic must stay silent for every seed.
    int fired = 0;
    for (unsigned seed = 0; seed < 100; ++seed) {
        IoData data = simulate(kTruth, 300, 0.05, 100 + seed);
        ArxOptions opt;
        opt.na = 2;
        opt.nb = 2;
        opt.ridge = 1e-6;
        ArxModel model = identifyArx(data, 0.5, opt);
        CusumDriftDetector det(residualSigma(model, data));
        std::size_t fed = feedPredictionErrors(model, data, det);
        EXPECT_GT(fed, 250u);
        if (det.fired()) {
            ++fired;
        }
        EXPECT_LT(det.maxStat(), CusumOptions{}.threshold);
    }
    EXPECT_EQ(fired, 0);
}

TEST(Cusum, FiresOnPlantShiftAndLatches)
{
    IoData train = simulate(kTruth, 400, 0.02, 7);
    ArxOptions opt;
    opt.na = 2;
    opt.nb = 2;
    ArxModel model = identifyArx(train, 0.5, opt);
    CusumDriftDetector det(residualSigma(model, train));

    // Same structure, input gain nearly doubled: persistent prediction
    // error, so the statistic ramps and crosses.
    const Coeffs shifted{0.6, -0.1, 0.9, 0.2};
    IoData live = simulate(shifted, 400, 0.02, 8);
    feedPredictionErrors(model, live, det);
    EXPECT_TRUE(det.fired());
    EXPECT_GE(det.maxStat(), CusumOptions{}.threshold);

    // Latched until rearm.
    EXPECT_FALSE(det.update(Vector{1e6}));
    EXPECT_TRUE(det.fired());
    det.rearm();
    EXPECT_FALSE(det.fired());
    EXPECT_EQ(det.maxStat(), 0.0);
    // samples() is a lifetime counter; rearm only clears statistics.
    EXPECT_GT(det.samples(), 0u);
}

TEST(Cusum, SaveLoadRoundTripIsBitExact)
{
    CusumOptions opt;
    opt.slack_sigma = 0.5;
    opt.threshold = 1e9;  // Accumulate without firing.
    CusumDriftDetector a({1.0, 2.0}, opt);
    std::mt19937 rng(11);
    std::normal_distribution<double> dist(0.0, 2.0);
    for (int t = 0; t < 200; ++t) {
        a.update(Vector{dist(rng), dist(rng)});
    }
    obs::StateWriter w;
    a.save(w);
    CusumDriftDetector b({1.0, 2.0}, opt);
    obs::StateReader r(w.dump());
    b.load(r);
    EXPECT_EQ(a.maxStat(), b.maxStat());
    EXPECT_EQ(a.samples(), b.samples());
    EXPECT_EQ(a.fired(), b.fired());
    for (int t = 0; t < 50; ++t) {
        Vector e{dist(rng), dist(rng)};
        EXPECT_EQ(a.update(e), b.update(e));
    }
    EXPECT_EQ(a.maxStat(), b.maxStat());
}

TEST(Arx, DegenerateExcitationFailsSoft)
{
    // All input channels constant: any fit would be regularization
    // artifact, so identification must throw the typed error instead
    // of shipping garbage coefficients.
    IoData flat_u;
    for (int t = 0; t < 100; ++t) {
        flat_u.u.push_back(Vector{1.0});
        flat_u.y.push_back(Vector{std::sin(0.3 * t)});
    }
    EXPECT_THROW(identifyArx(flat_u, 0.5, {2, 2, 1e-6}),
                 DegenerateExcitationError);

    // All output channels constant is equally degenerate.
    IoData flat_y;
    auto u = prbs(100, -1.0, 1.0, 3, 0xF00D);
    for (int t = 0; t < 100; ++t) {
        flat_y.u.push_back(Vector{u[t]});
        flat_y.y.push_back(Vector{42.0});
    }
    EXPECT_THROW(identifyArx(flat_y, 0.5, {2, 2, 1e-6}),
                 DegenerateExcitationError);
}

TEST(Arx, SingleDeadChannelDoesNotThrow)
{
    // One constant input next to a live one: fail soft, the dead
    // channel keeps unit scale and the ridge pins its coefficients.
    IoData data = simulate(kTruth, 300, 0.0, 9);
    for (auto& ut : data.u) {
        ut = Vector{ut[0], 5.0};
    }
    ArxModel m = identifyArx(data, 0.5, {2, 2, 1e-6});
    EXPECT_NEAR(m.bCoeff(0)(0, 0), kTruth.b1, 0.05);
    // Dead-channel coefficients pinned near zero by the ridge.
    EXPECT_NEAR(m.bCoeff(0)(0, 1), 0.0, 1e-3);
    auto pfit = predictionFit(m, data);
    EXPECT_GT(pfit[0], 99.0);
}

}  // namespace
}  // namespace yukta::sysid
