#include "sysid/validate.h"

#include <random>

#include <gtest/gtest.h>

#include "sysid/excitation.h"

namespace yukta::sysid {
namespace {

using linalg::Vector;

/** Order-2 ARX data with optional white noise. */
IoData
makeData(std::size_t steps, double noise, unsigned seed)
{
    IoData data;
    auto u = prbs(steps, -1.0, 1.0, 3, 0xFACE + seed);
    std::mt19937 rng(seed);
    std::normal_distribution<double> dist(0.0, noise);
    double y1 = 0.0;
    double y2 = 0.0;
    double u1 = 0.0;
    double u2 = 0.0;
    for (std::size_t t = 0; t < steps; ++t) {
        double y = 0.55 * y1 - 0.15 * y2 + 0.6 * u1 + 0.25 * u2;
        if (noise > 0.0) {
            y += dist(rng);
        }
        data.u.push_back(Vector{u[t]});
        data.y.push_back(Vector{y});
        y2 = y1;
        y1 = y;
        u2 = u1;
        u1 = u[t];
    }
    return data;
}

TEST(OrderSelection, RecoversTrueOrder)
{
    IoData data = makeData(800, 0.02, 1);
    OrderSelection sel = selectOrder(data, 0.5, 5);
    ASSERT_EQ(sel.orders.size(), 5u);
    // The generating system is order 2; BIC should not pick order 1.
    EXPECT_GE(sel.best_order, 2u);
    EXPECT_LE(sel.best_order, 3u);
    EXPECT_THROW(selectOrder(data, 0.5, 0), std::invalid_argument);
}

TEST(Whiteness, WhiteResidualsAtCorrectOrder)
{
    IoData data = makeData(1000, 0.05, 2);
    ArxModel m = identifyArx(data, 0.5, {2, 2, 1e-8});
    WhitenessResult w = residualWhiteness(m, data);
    EXPECT_TRUE(w.white);
    ASSERT_EQ(w.max_autocorr.size(), 1u);
}

TEST(Whiteness, ColoredResidualsAtTooLowOrder)
{
    IoData data = makeData(1000, 0.0, 3);
    ArxModel m = identifyArx(data, 0.5, {1, 1, 1e-8});
    WhitenessResult w = residualWhiteness(m, data);
    EXPECT_FALSE(w.white);
    EXPECT_GT(w.max_autocorr[0], 2.0 / std::sqrt(1000.0));
}

TEST(CrossValidation, GeneralizesOnCleanData)
{
    IoData data = makeData(1000, 0.0, 4);
    auto fit = crossValidationFit(data, 0.5, {2, 2, 1e-8});
    ASSERT_EQ(fit.size(), 1u);
    EXPECT_GT(fit[0], 98.0);
}

TEST(CrossValidation, DetectsOverfitToleranceToNoise)
{
    IoData data = makeData(1000, 0.2, 5);
    auto fit2 = crossValidationFit(data, 0.5, {2, 2, 1e-6});
    // Held-out fit stays meaningful (well below 100, above chance).
    EXPECT_GT(fit2[0], 20.0);
    EXPECT_LT(fit2[0], 95.0);
}

TEST(CrossValidation, Validation)
{
    IoData data = makeData(100, 0.0, 6);
    EXPECT_THROW(crossValidationFit(data, 0.5, {2, 2, 0.0}, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(crossValidationFit(data, 0.5, {2, 2, 0.0}, 0.99),
                 std::invalid_argument);
}

TEST(FrequencyFitTest, IdentifiedModelTracksTruthInFrequencyDomain)
{
    // Identify the order-2 plant from clean data: the identified
    // model's response must sit on top of the truth across the whole
    // Nyquist-capped grid.
    const double ts = 0.5;
    IoData data = makeData(400, 0.0, 7);
    ArxModel model = identifyArx(data, ts, {2, 2, 0.0});
    control::StateSpace truth(
        linalg::Matrix{{0.55, -0.15, 0.6, 0.25},
                       {1.0, 0.0, 0.0, 0.0},
                       {0.0, 0.0, 0.0, 0.0},
                       {0.0, 0.0, 1.0, 0.0}},
        linalg::Matrix{{0.0}, {0.0}, {1.0}, {0.0}},
        linalg::Matrix{{0.55, -0.15, 0.6, 0.25}},
        linalg::Matrix(1, 1), ts);

    FrequencyFit fit =
        frequencyResponseFit(model.toStateSpace(), truth, 48);
    ASSERT_EQ(fit.freqs.size(), 48u);
    ASSERT_EQ(fit.error.size(), 48u);
    EXPECT_EQ(fit.freqs.back(), M_PI / ts);  // Nyquist cap, exact
    EXPECT_LT(fit.worst, 1e-6);
    for (double e : fit.error) {
        EXPECT_LE(e, fit.worst);
    }
}

TEST(FrequencyFitTest, DetectsAWrongModel)
{
    const double ts = 0.5;
    IoData data = makeData(400, 0.0, 8);
    ArxModel model = identifyArx(data, ts, {2, 2, 0.0});
    // A deliberately wrong reference: double the gain.
    control::StateSpace wrong = model.toStateSpace().scaled(
        linalg::Matrix{{2.0}}, linalg::Matrix{{1.0}});
    FrequencyFit fit =
        frequencyResponseFit(model.toStateSpace(), wrong, 32);
    EXPECT_GT(fit.worst, 0.3);
}

TEST(FrequencyFitTest, EndpointsWeighEquallyIntoWorst)
{
    // Pin the endpoint handling: both grid endpoints (1e-4/ts and the
    // Nyquist cap) must carry the same unit weight as interior points,
    // with the error at each matching the analytic per-point formula
    // sigma_max(Gm - Gr) / max_j sigma_max(Gr).  A regression that
    // dropped or down-weighted an endpoint breaks the exact pins.
    const double ts = 0.5;
    // First-order SISO pair H(z) = 1 / (z - a).
    auto first_order = [&](double a) {
        return control::StateSpace(linalg::Matrix{{a}},
                                   linalg::Matrix{{1.0}},
                                   linalg::Matrix{{1.0}},
                                   linalg::Matrix(1, 1), ts);
    };
    control::StateSpace model = first_order(0.5);
    control::StateSpace ref = first_order(0.4);

    FrequencyFit fit = frequencyResponseFit(model, ref, 32);
    ASSERT_EQ(fit.freqs.size(), 32u);
    EXPECT_EQ(fit.freqs.front(), 1e-4 / ts);
    EXPECT_EQ(fit.freqs.back(), M_PI / ts);

    auto h = [&](double a, double w) {
        std::complex<double> z = std::exp(std::complex<double>(0.0, w * ts));
        return 1.0 / (z - a);
    };
    double ref_scale = 0.0;
    for (double w : fit.freqs) {
        ref_scale = std::max(ref_scale, std::abs(h(0.4, w)));
    }
    for (std::size_t i : {std::size_t{0}, fit.freqs.size() - 1}) {
        double w = fit.freqs[i];
        double expected = std::abs(h(0.5, w) - h(0.4, w)) / ref_scale;
        EXPECT_NEAR(fit.error[i], expected, 1e-12);
    }
    // worst is exactly the max over the grid -- no extra weighting.
    double max_err = *std::max_element(fit.error.begin(), fit.error.end());
    EXPECT_EQ(fit.worst, max_err);
    // For this pair the low-frequency endpoint is the worst point
    // (|H1 - H2| peaks near DC where both poles sit closest to z = 1),
    // so omitting or down-weighting it would change `worst`.
    EXPECT_EQ(fit.worst, fit.error.front());
}

TEST(FrequencyFitTest, Validation)
{
    const double ts = 0.5;
    IoData data = makeData(100, 0.0, 9);
    ArxModel model = identifyArx(data, ts, {2, 2, 0.0});
    control::StateSpace m = model.toStateSpace();
    control::StateSpace other_clock(m.a, m.b, m.c, m.d, ts * 2.0);
    EXPECT_THROW(frequencyResponseFit(m, other_clock, 16),
                 std::invalid_argument);
    EXPECT_THROW(frequencyResponseFit(m, m, 1), std::invalid_argument);
    control::StateSpace wide(m.a, linalg::Matrix(m.a.rows(), 2),
                             m.c, linalg::Matrix(1, 2), ts);
    EXPECT_THROW(frequencyResponseFit(m, wide, 16),
                 std::invalid_argument);
}

}  // namespace
}  // namespace yukta::sysid
