#include "sysid/validate.h"

#include <random>

#include <gtest/gtest.h>

#include "sysid/excitation.h"

namespace yukta::sysid {
namespace {

using linalg::Vector;

/** Order-2 ARX data with optional white noise. */
IoData
makeData(std::size_t steps, double noise, unsigned seed)
{
    IoData data;
    auto u = prbs(steps, -1.0, 1.0, 3, 0xFACE + seed);
    std::mt19937 rng(seed);
    std::normal_distribution<double> dist(0.0, noise);
    double y1 = 0.0;
    double y2 = 0.0;
    double u1 = 0.0;
    double u2 = 0.0;
    for (std::size_t t = 0; t < steps; ++t) {
        double y = 0.55 * y1 - 0.15 * y2 + 0.6 * u1 + 0.25 * u2;
        if (noise > 0.0) {
            y += dist(rng);
        }
        data.u.push_back(Vector{u[t]});
        data.y.push_back(Vector{y});
        y2 = y1;
        y1 = y;
        u2 = u1;
        u1 = u[t];
    }
    return data;
}

TEST(OrderSelection, RecoversTrueOrder)
{
    IoData data = makeData(800, 0.02, 1);
    OrderSelection sel = selectOrder(data, 0.5, 5);
    ASSERT_EQ(sel.orders.size(), 5u);
    // The generating system is order 2; BIC should not pick order 1.
    EXPECT_GE(sel.best_order, 2u);
    EXPECT_LE(sel.best_order, 3u);
    EXPECT_THROW(selectOrder(data, 0.5, 0), std::invalid_argument);
}

TEST(Whiteness, WhiteResidualsAtCorrectOrder)
{
    IoData data = makeData(1000, 0.05, 2);
    ArxModel m = identifyArx(data, 0.5, {2, 2, 1e-8});
    WhitenessResult w = residualWhiteness(m, data);
    EXPECT_TRUE(w.white);
    ASSERT_EQ(w.max_autocorr.size(), 1u);
}

TEST(Whiteness, ColoredResidualsAtTooLowOrder)
{
    IoData data = makeData(1000, 0.0, 3);
    ArxModel m = identifyArx(data, 0.5, {1, 1, 1e-8});
    WhitenessResult w = residualWhiteness(m, data);
    EXPECT_FALSE(w.white);
    EXPECT_GT(w.max_autocorr[0], 2.0 / std::sqrt(1000.0));
}

TEST(CrossValidation, GeneralizesOnCleanData)
{
    IoData data = makeData(1000, 0.0, 4);
    auto fit = crossValidationFit(data, 0.5, {2, 2, 1e-8});
    ASSERT_EQ(fit.size(), 1u);
    EXPECT_GT(fit[0], 98.0);
}

TEST(CrossValidation, DetectsOverfitToleranceToNoise)
{
    IoData data = makeData(1000, 0.2, 5);
    auto fit2 = crossValidationFit(data, 0.5, {2, 2, 1e-6});
    // Held-out fit stays meaningful (well below 100, above chance).
    EXPECT_GT(fit2[0], 20.0);
    EXPECT_LT(fit2[0], 95.0);
}

TEST(CrossValidation, Validation)
{
    IoData data = makeData(100, 0.0, 6);
    EXPECT_THROW(crossValidationFit(data, 0.5, {2, 2, 0.0}, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(crossValidationFit(data, 0.5, {2, 2, 0.0}, 0.99),
                 std::invalid_argument);
}

TEST(FrequencyFitTest, IdentifiedModelTracksTruthInFrequencyDomain)
{
    // Identify the order-2 plant from clean data: the identified
    // model's response must sit on top of the truth across the whole
    // Nyquist-capped grid.
    const double ts = 0.5;
    IoData data = makeData(400, 0.0, 7);
    ArxModel model = identifyArx(data, ts, {2, 2, 0.0});
    control::StateSpace truth(
        linalg::Matrix{{0.55, -0.15, 0.6, 0.25},
                       {1.0, 0.0, 0.0, 0.0},
                       {0.0, 0.0, 0.0, 0.0},
                       {0.0, 0.0, 1.0, 0.0}},
        linalg::Matrix{{0.0}, {0.0}, {1.0}, {0.0}},
        linalg::Matrix{{0.55, -0.15, 0.6, 0.25}},
        linalg::Matrix(1, 1), ts);

    FrequencyFit fit =
        frequencyResponseFit(model.toStateSpace(), truth, 48);
    ASSERT_EQ(fit.freqs.size(), 48u);
    ASSERT_EQ(fit.error.size(), 48u);
    EXPECT_EQ(fit.freqs.back(), M_PI / ts);  // Nyquist cap, exact
    EXPECT_LT(fit.worst, 1e-6);
    for (double e : fit.error) {
        EXPECT_LE(e, fit.worst);
    }
}

TEST(FrequencyFitTest, DetectsAWrongModel)
{
    const double ts = 0.5;
    IoData data = makeData(400, 0.0, 8);
    ArxModel model = identifyArx(data, ts, {2, 2, 0.0});
    // A deliberately wrong reference: double the gain.
    control::StateSpace wrong = model.toStateSpace().scaled(
        linalg::Matrix{{2.0}}, linalg::Matrix{{1.0}});
    FrequencyFit fit =
        frequencyResponseFit(model.toStateSpace(), wrong, 32);
    EXPECT_GT(fit.worst, 0.3);
}

TEST(FrequencyFitTest, Validation)
{
    const double ts = 0.5;
    IoData data = makeData(100, 0.0, 9);
    ArxModel model = identifyArx(data, ts, {2, 2, 0.0});
    control::StateSpace m = model.toStateSpace();
    control::StateSpace other_clock(m.a, m.b, m.c, m.d, ts * 2.0);
    EXPECT_THROW(frequencyResponseFit(m, other_clock, 16),
                 std::invalid_argument);
    EXPECT_THROW(frequencyResponseFit(m, m, 1), std::invalid_argument);
    control::StateSpace wide(m.a, linalg::Matrix(m.a.rows(), 2),
                             m.c, linalg::Matrix(1, 2), ts);
    EXPECT_THROW(frequencyResponseFit(m, wide, 16),
                 std::invalid_argument);
}

}  // namespace
}  // namespace yukta::sysid
