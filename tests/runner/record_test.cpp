// JSONL run records and the thread-safe progress reporter.
#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runner/record.h"

namespace yukta::runner {
namespace {

RunRecord
sampleRecord()
{
    RunRecord r;
    r.index = 3;
    r.key = "deadbeefdeadbeef";
    r.scheme = core::Scheme::kYuktaFull;
    r.workload = "blackscholes";
    r.seed = 2;
    r.cache_hit = true;
    r.wall_seconds = 1.5;
    r.metrics.exec_time = 456.0;
    r.metrics.energy = 100.0;
    r.metrics.exd = 45600.0;
    r.metrics.completed = true;
    r.metrics.periods = 912;
    return r;
}

TEST(Record, JsonLineCarriesTheSchema)
{
    const std::string line = toJsonLine(sampleRecord());
    EXPECT_NE(line.find("\"key\":\"deadbeefdeadbeef\""), std::string::npos);
    EXPECT_NE(line.find("\"scheme\":\"Yukta: HW SSV+OS SSV\""),
              std::string::npos);
    EXPECT_NE(line.find("\"workload\":\"blackscholes\""),
              std::string::npos);
    EXPECT_NE(line.find("\"seed\":2"), std::string::npos);
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(line.find("\"cache_hit\":true"), std::string::npos);
    EXPECT_NE(line.find("\"exd\":45600"), std::string::npos);
    EXPECT_NE(line.find("\"completed\":true"), std::string::npos);
    EXPECT_NE(line.find("\"trace_samples\":0"), std::string::npos);
    // One line, no embedded newlines.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    // No error field unless there is an error.
    EXPECT_EQ(line.find("\"error\""), std::string::npos);
    // Clean unsupervised run: no fault or supervisor blocks.
    EXPECT_NE(line.find("\"violation_time\":0"), std::string::npos);
    EXPECT_NE(line.find("\"supervised\":false"), std::string::npos);
    EXPECT_EQ(line.find("\"fault_plan\""), std::string::npos);
    EXPECT_EQ(line.find("\"sup_"), std::string::npos);
}

TEST(Record, FaultAndSupervisorFieldsAppearWhenPresent)
{
    RunRecord r = sampleRecord();
    r.fault_plan = "seed=7;p_big:nan@20+10";
    r.supervised = true;
    r.attempts = 2;
    r.metrics.violation_time = 3.5;
    r.metrics.faults.corrupted_ticks = 20;
    r.metrics.faults.corrupted_fields = 20;
    r.metrics.supervisor.transition_count = 4;
    r.metrics.supervisor.invalid_ticks = 20;
    r.metrics.supervisor.repaired_fields = 20;
    r.metrics.supervisor.time_hold = 1.5;
    r.metrics.supervisor.time_fallback = 8.5;
    const std::string line = toJsonLine(r);
    EXPECT_NE(line.find("\"fault_plan\":\"seed=7;p_big:nan@20+10\""),
              std::string::npos);
    EXPECT_NE(line.find("\"supervised\":true"), std::string::npos);
    EXPECT_NE(line.find("\"attempts\":2"), std::string::npos);
    EXPECT_NE(line.find("\"violation_time\":3.5"), std::string::npos);
    EXPECT_NE(line.find("\"faults_fields\":20"), std::string::npos);
    EXPECT_NE(line.find("\"sup_transitions\":4"), std::string::npos);
    EXPECT_NE(line.find("\"sup_invalid_ticks\":20"), std::string::npos);
    EXPECT_NE(line.find("\"sup_time_degraded\":10"), std::string::npos);
    EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Record, ErrorTypeIsEmittedAlongsideTheError)
{
    RunRecord r = sampleRecord();
    r.status = TaskOutcome::Status::kError;
    r.error = "boom";
    r.error_type = "std::runtime_error";
    const std::string line = toJsonLine(r);
    EXPECT_NE(line.find("\"error\":\"boom\""), std::string::npos);
    EXPECT_NE(line.find("\"error_type\":\"std::runtime_error\""),
              std::string::npos);
}

TEST(Record, ErrorsAreEscaped)
{
    RunRecord r = sampleRecord();
    r.status = TaskOutcome::Status::kError;
    r.error = "bad \"quote\"\nand\tcontrol\x01";
    const std::string line = toJsonLine(r);
    EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(line.find("bad \\\"quote\\\"\\nand\\tcontrol\\u0001"),
              std::string::npos);
    EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Record, WriteJsonLineAppendsNewline)
{
    std::ostringstream os;
    writeJsonLine(os, sampleRecord());
    writeJsonLine(os, sampleRecord());
    const std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Record, ProgressReporterCountsFromAnyThread)
{
    std::ostringstream os;
    ProgressReporter reporter(&os, 8);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            reporter.report(sampleRecord());
            reporter.report(sampleRecord());
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    const std::string out = os.str();
    EXPECT_NE(out.find("[1/8]"), std::string::npos);
    EXPECT_NE(out.find("[8/8]"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 8);
}

TEST(Record, NullStreamDisablesReporting)
{
    ProgressReporter reporter(nullptr, 1);
    reporter.report(sampleRecord());  // Must not crash.
}

}  // namespace
}  // namespace yukta::runner
