// Sweep engine: expansion and key determinism, result-cache round
// trips, corrupted-cache fallback, failure isolation, and the central
// guarantee -- aggregated metrics are bit-identical no matter how many
// workers ran the sweep.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cache.h"
#include "obs/trace.h"
#include "runner/sweep.h"

namespace yukta::runner {
namespace {

/** Points the cache at a private directory for the whole binary. */
class CacheDirEnvironment : public ::testing::Environment
{
  public:
    void SetUp() override
    {
        const std::string dir =
            (std::filesystem::temp_directory_path() / "yukta_runner_test")
                .string();
        std::filesystem::remove_all(dir);
        ASSERT_EQ(setenv("YUKTA_CACHE_DIR", dir.c_str(), 1), 0);
    }
};

::testing::Environment* const cache_env =
    ::testing::AddGlobalTestEnvironment(new CacheDirEnvironment);

/** One reduced artifact bundle shared by the engine tests. */
class SweepFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        core::ArtifactOptions opt;
        opt.cache_tag = "runnertest";
        opt.training.apps = {"swaptions", "milc"};
        opt.training.seconds_per_app = 60.0;
        opt.dk.max_iterations = 1;
        opt.dk.mu_grid = 12;
        opt.dk.bisection_steps = 8;
        artifacts_ = new core::Artifacts(core::buildArtifacts(
            platform::BoardConfig::odroidXu3(), opt));
    }

    static void TearDownTestSuite()
    {
        delete artifacts_;
        artifacts_ = nullptr;
    }

    static runner::SweepSpec smallSweep()
    {
        SweepSpec spec;
        spec.schemes = {core::Scheme::kCoordinatedHeuristic,
                        core::Scheme::kYuktaHwSsvOsHeuristic};
        spec.workloads = {"swaptions", "milc"};
        spec.seeds = {1, 2};
        spec.max_seconds = 240.0;
        spec.artifact_tag = "runnertest";
        return spec;
    }

    static core::Artifacts* artifacts_;
};

core::Artifacts* SweepFixture::artifacts_ = nullptr;

TEST(Sweep, ExpandIsTheSchemeMajorCrossProduct)
{
    SweepSpec spec;
    spec.schemes = {core::Scheme::kCoordinatedHeuristic,
                    core::Scheme::kYuktaFull};
    spec.workloads = {"a", "b", "c"};
    spec.seeds = {7, 9};
    auto runs = expandSweep(spec);
    ASSERT_EQ(runs.size(), 12u);
    EXPECT_EQ(runs[0].workload, "a");
    EXPECT_EQ(runs[0].seed, 7u);
    EXPECT_EQ(runs[1].seed, 9u);
    EXPECT_EQ(runs[2].workload, "b");
    EXPECT_EQ(runs[5].seed, 9u);
    EXPECT_EQ(runs[6].scheme, core::Scheme::kYuktaFull);
    EXPECT_EQ(runs[11].workload, "c");
}

TEST(Sweep, RunKeysAreStableAndSensitiveToEveryAxis)
{
    RunSpec base;
    base.scheme = core::Scheme::kYuktaFull;
    base.workload = "blackscholes";
    base.seed = 1;

    const std::string key = runKey(base, "paper");
    EXPECT_EQ(key, runKey(base, "paper"));
    EXPECT_EQ(key.size(), 16u);

    std::set<std::string> keys{key};
    RunSpec other = base;
    other.scheme = core::Scheme::kDecoupledLqg;
    keys.insert(runKey(other, "paper"));
    other = base;
    other.workload = "gamess";
    keys.insert(runKey(other, "paper"));
    other = base;
    other.seed = 2;
    keys.insert(runKey(other, "paper"));
    other = base;
    other.max_seconds = 600.0;
    keys.insert(runKey(other, "paper"));
    keys.insert(runKey(base, "other-artifacts"));
    EXPECT_EQ(keys.size(), 6u);
}

TEST(Sweep, SchemeIdsRoundTrip)
{
    for (core::Scheme s : core::allSchemes()) {
        auto parsed = schemeFromId(schemeId(s));
        ASSERT_TRUE(parsed.has_value()) << schemeId(s);
        EXPECT_EQ(*parsed, s);
    }
    EXPECT_FALSE(schemeFromId("nonsense").has_value());
}

TEST(Sweep, MetricsCacheRoundTripsBitExactly)
{
    controllers::RunMetrics m;
    m.exec_time = 123.456789012345678;
    m.energy = 1.0 / 3.0;
    m.exd = m.exec_time * m.energy;
    m.completed = true;
    m.emergency_time = 17.25;
    m.periods = 4242;

    const std::string path = core::cachePath("run-roundtrip");
    ASSERT_TRUE(saveRunMetrics(path, m));
    auto loaded = loadRunMetrics(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->exec_time, m.exec_time);
    EXPECT_EQ(loaded->energy, m.energy);
    EXPECT_EQ(loaded->exd, m.exd);
    EXPECT_EQ(loaded->completed, m.completed);
    EXPECT_EQ(loaded->emergency_time, m.emergency_time);
    EXPECT_EQ(loaded->periods, m.periods);
}

TEST(Sweep, CorruptedCacheFilesAreMisses)
{
    auto write = [](const std::string& name, const std::string& body) {
        const std::string path = core::cachePath(name);
        std::ofstream os(path);
        os << body;
        return path;
    };

    EXPECT_FALSE(loadRunMetrics(core::cachePath("run-missing")));
    EXPECT_FALSE(loadRunMetrics(write("run-empty", "")));
    EXPECT_FALSE(loadRunMetrics(write("run-garbage", "not a cache\n")));
    EXPECT_FALSE(
        loadRunMetrics(write("run-badmagic", "yukta-ss 1\n1 2 3 1 0 5\n")));
    EXPECT_FALSE(
        loadRunMetrics(write("run-badversion", "yukta-run 999\n1 2 3\n")));
    // Truncated mid-record: header fine, fields missing.
    EXPECT_FALSE(
        loadRunMetrics(write("run-truncated", "yukta-run 1\n1.5 2.5\n")));
}

TEST_F(SweepFixture, AggregatedMetricsAreIdenticalAcrossWorkerCounts)
{
    RunnerOptions serial;
    serial.workers = 1;
    serial.use_cache = false;
    auto a = runSweep(*artifacts_, smallSweep(), serial);

    RunnerOptions parallel;
    parallel.workers = 4;
    parallel.use_cache = false;
    auto b = runSweep(*artifacts_, smallSweep(), parallel);

    ASSERT_EQ(a.records.size(), 8u);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        const RunRecord& ra = a.records[i];
        const RunRecord& rb = b.records[i];
        EXPECT_EQ(ra.status, TaskOutcome::Status::kOk) << ra.error;
        EXPECT_EQ(ra.key, rb.key);
        EXPECT_EQ(ra.scheme, rb.scheme);
        EXPECT_EQ(ra.workload, rb.workload);
        EXPECT_EQ(ra.seed, rb.seed);
        EXPECT_FALSE(ra.cache_hit);
        EXPECT_FALSE(rb.cache_hit);
        // Bit-identical, not approximately equal.
        EXPECT_EQ(ra.metrics.exec_time, rb.metrics.exec_time);
        EXPECT_EQ(ra.metrics.energy, rb.metrics.energy);
        EXPECT_EQ(ra.metrics.exd, rb.metrics.exd);
        EXPECT_EQ(ra.metrics.completed, rb.metrics.completed);
        EXPECT_EQ(ra.metrics.emergency_time, rb.metrics.emergency_time);
        EXPECT_EQ(ra.metrics.periods, rb.metrics.periods);
    }
}

TEST_F(SweepFixture, RunCacheHitsReproduceLiveMetrics)
{
    SweepSpec spec = smallSweep();
    spec.schemes = {core::Scheme::kCoordinatedHeuristic};
    spec.seeds = {1};

    RunnerOptions options;
    options.workers = 2;
    options.use_cache = true;
    auto cold = runSweep(*artifacts_, spec, options);
    auto warm = runSweep(*artifacts_, spec, options);

    ASSERT_EQ(cold.records.size(), 2u);
    for (std::size_t i = 0; i < cold.records.size(); ++i) {
        EXPECT_EQ(cold.records[i].status, TaskOutcome::Status::kOk);
        EXPECT_TRUE(warm.records[i].cache_hit);
        EXPECT_EQ(cold.records[i].metrics.exd, warm.records[i].metrics.exd);
        EXPECT_EQ(cold.records[i].metrics.exec_time,
                  warm.records[i].metrics.exec_time);
        EXPECT_EQ(cold.records[i].metrics.energy,
                  warm.records[i].metrics.energy);
    }
}

namespace {

/** Reads a whole file into a string ("" when absent). */
std::string
slurp(const std::filesystem::path& path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

}  // namespace

TEST_F(SweepFixture, EventTracesAreBitIdenticalAcrossWorkerCounts)
{
    SweepSpec spec = smallSweep();
    spec.workloads = {"swaptions"};
    spec.seeds = {1};
    spec.supervised = true;
    spec.fault_plan = "seed=3;p_big:nan@30+6";

    const auto base =
        std::filesystem::temp_directory_path() / "yukta_trace_test";
    std::filesystem::remove_all(base);

    RunnerOptions serial;
    serial.workers = 1;
    serial.use_cache = true;  // Must be bypassed: traced runs never cache.
    serial.trace_dir = (base / "serial").string();
    serial.trace_format = "both";
    auto a = runSweep(*artifacts_, spec, serial);

    RunnerOptions parallel = serial;
    parallel.workers = 4;
    parallel.trace_dir = (base / "parallel").string();
    auto b = runSweep(*artifacts_, spec, parallel);

    ASSERT_EQ(a.records.size(), 2u);
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].status, TaskOutcome::Status::kOk)
            << a.records[i].error;
        EXPECT_FALSE(a.records[i].cache_hit);
        EXPECT_FALSE(b.records[i].cache_hit);
        EXPECT_GT(a.records[i].trace_events, 0);
        EXPECT_EQ(a.records[i].trace_events, b.records[i].trace_events);
    }

    // Same file names, bit-identical bytes, regardless of pool size.
    std::vector<std::string> names;
    for (const auto& entry :
         // yukta-audit: allow(dir-iter) names sorted below
         std::filesystem::directory_iterator(serial.trace_dir)) {
        names.push_back(entry.path().filename().string());
    }
    // Directory order is filesystem-dependent; sort so assertion
    // failures point at the same file on every run.
    std::sort(names.begin(), names.end());
    ASSERT_EQ(names.size(), 4u);  // 2 runs x {jsonl, chrome}.
    for (const std::string& name : names) {
        const std::string sa =
            slurp(std::filesystem::path(serial.trace_dir) / name);
        const std::string sb =
            slurp(std::filesystem::path(parallel.trace_dir) / name);
        EXPECT_FALSE(sa.empty()) << name;
        EXPECT_EQ(sa, sb) << name;
    }

    // The JSONL traces parse and carry supervisor + fault events.
    for (const std::string& name : names) {
        if (name.find(".trace.jsonl") == std::string::npos) {
            continue;
        }
        std::ifstream is(std::filesystem::path(serial.trace_dir) / name);
        auto events = obs::readJsonlTrace(is);
        ASSERT_TRUE(events.has_value()) << name;
        bool saw_cmd = false;
        bool saw_fault = false;
        for (const auto& ev : *events) {
            saw_cmd = saw_cmd || (ev.layer() == "sys" && ev.kind() == "cmd");
            saw_fault = saw_fault || ev.layer() == "fault";
        }
        EXPECT_TRUE(saw_cmd) << name;
        EXPECT_TRUE(saw_fault) << name;
    }
}

TEST_F(SweepFixture, OneBadRunIsIsolatedAndReported)
{
    SweepSpec spec;
    spec.schemes = {core::Scheme::kCoordinatedHeuristic};
    spec.workloads = {"swaptions", "no-such-app"};
    spec.seeds = {1};
    spec.max_seconds = 240.0;
    spec.artifact_tag = "runnertest";

    RunnerOptions options;
    options.workers = 2;
    auto result = runSweep(*artifacts_, spec, options);

    ASSERT_EQ(result.records.size(), 2u);
    EXPECT_EQ(result.records[0].status, TaskOutcome::Status::kOk);
    EXPECT_EQ(result.records[1].status, TaskOutcome::Status::kError);
    EXPECT_FALSE(result.records[1].error.empty());
    EXPECT_EQ(result.countStatus(TaskOutcome::Status::kError), 1u);
    EXPECT_NE(result.metricsFor(core::Scheme::kCoordinatedHeuristic,
                                "swaptions", 1),
              nullptr);
    EXPECT_EQ(result.metricsFor(core::Scheme::kCoordinatedHeuristic,
                                "no-such-app", 1),
              nullptr);
}

}  // namespace
}  // namespace yukta::runner
