// Worker-pool semantics: index-aligned outcomes at any worker count,
// exception capture, cooperative per-task timeouts, and completion
// callbacks. These properties are what make sweep results
// order-independent, so they are tested directly at the pool level.
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runner/pool.h"

namespace yukta::runner {
namespace {

TEST(Pool, RunsEveryTaskExactlyOnceAtAnyWorkerCount)
{
    for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        constexpr std::size_t kTasks = 64;
        std::vector<int> results(kTasks, -1);
        std::atomic<int> calls{0};
        std::vector<Task> tasks;
        for (std::size_t i = 0; i < kTasks; ++i) {
            tasks.push_back([&, i](const CancelToken&) {
                results[i] = static_cast<int>(i * i);
                calls.fetch_add(1);
            });
        }
        auto outcomes = runOnPool(tasks, workers);
        EXPECT_EQ(calls.load(), static_cast<int>(kTasks));
        ASSERT_EQ(outcomes.size(), kTasks);
        for (std::size_t i = 0; i < kTasks; ++i) {
            EXPECT_EQ(outcomes[i].status, TaskOutcome::Status::kOk);
            EXPECT_EQ(results[i], static_cast<int>(i * i));
        }
    }
}

TEST(Pool, OneThrowingTaskDoesNotKillTheSweep)
{
    std::vector<Task> tasks;
    tasks.push_back([](const CancelToken&) {});
    tasks.push_back([](const CancelToken&) {
        throw std::runtime_error("controller diverged");
    });
    tasks.push_back([](const CancelToken&) { throw 42; });
    tasks.push_back([](const CancelToken&) {});

    auto outcomes = runOnPool(tasks, 4);
    EXPECT_EQ(outcomes[0].status, TaskOutcome::Status::kOk);
    EXPECT_EQ(outcomes[1].status, TaskOutcome::Status::kError);
    EXPECT_EQ(outcomes[1].error, "controller diverged");
    EXPECT_EQ(outcomes[2].status, TaskOutcome::Status::kError);
    EXPECT_EQ(outcomes[2].error, "unknown exception");
    EXPECT_EQ(outcomes[3].status, TaskOutcome::Status::kOk);
}

TEST(Pool, CooperativeTimeoutStopsAndMarksTheSlowRun)
{
    std::vector<Task> tasks;
    // A "diverging" run that honors the token.
    tasks.push_back([](const CancelToken& token) {
        const auto give_up =
            // yukta-lint: allow(wall-clock) timeout harness needs real time
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (!token.expired() &&
               // yukta-lint: allow(wall-clock) timeout harness needs real time
               std::chrono::steady_clock::now() < give_up) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });
    tasks.push_back([](const CancelToken&) {});

    auto outcomes = runOnPool(tasks, 2, /*timeout_seconds=*/0.05);
    EXPECT_EQ(outcomes[0].status, TaskOutcome::Status::kTimeout);
    EXPECT_LT(outcomes[0].wall_seconds, 5.0);
    EXPECT_EQ(outcomes[1].status, TaskOutcome::Status::kOk);
}

TEST(Pool, NoDeadlineWhenTimeoutDisabled)
{
    std::vector<Task> tasks;
    tasks.push_back([](const CancelToken& token) {
        EXPECT_FALSE(token.expired());
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        EXPECT_FALSE(token.expired());
    });
    auto outcomes = runOnPool(tasks, 1, 0.0);
    EXPECT_EQ(outcomes[0].status, TaskOutcome::Status::kOk);
}

TEST(Pool, CompletionCallbackSeesEveryTaskWithFinalStatus)
{
    constexpr std::size_t kTasks = 16;
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < kTasks; ++i) {
        tasks.push_back([i](const CancelToken&) {
            if (i == 3) {
                throw std::runtime_error("boom");
            }
        });
    }
    std::mutex mutex;
    std::set<std::size_t> seen;
    std::size_t errors = 0;
    auto outcomes = runOnPool(
        tasks, 4, 0.0,
        [&](std::size_t index, const TaskOutcome& outcome) {
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(index);
            if (outcome.status == TaskOutcome::Status::kError) {
                ++errors;
            }
        });
    EXPECT_EQ(seen.size(), kTasks);
    EXPECT_EQ(errors, 1u);
    EXPECT_EQ(outcomes[3].status, TaskOutcome::Status::kError);
}

TEST(Pool, StatusNames)
{
    EXPECT_EQ(taskStatusName(TaskOutcome::Status::kOk), "ok");
    EXPECT_EQ(taskStatusName(TaskOutcome::Status::kError), "error");
    EXPECT_EQ(taskStatusName(TaskOutcome::Status::kTimeout), "timeout");
}

TEST(Pool, OutcomesCarryTheExceptionType)
{
    std::vector<Task> tasks;
    tasks.push_back([](const CancelToken&) {
        throw std::runtime_error("controller diverged");
    });
    tasks.push_back([](const CancelToken&) {
        throw std::invalid_argument("bad plan");
    });
    tasks.push_back([](const CancelToken&) { throw 42; });
    tasks.push_back([](const CancelToken&) {});

    auto outcomes = runOnPool(tasks, 2);
    EXPECT_EQ(outcomes[0].error_type, "std::runtime_error");
    EXPECT_EQ(outcomes[1].error_type, "std::invalid_argument");
    EXPECT_EQ(outcomes[2].error_type, "unknown");
    EXPECT_TRUE(outcomes[3].error_type.empty());
    EXPECT_EQ(outcomes[3].attempts, 1);
}

TEST(Pool, RetrySucceedsAfterTransientFailures)
{
    std::atomic<int> calls{0};
    std::vector<Task> tasks;
    tasks.push_back([&](const CancelToken&) {
        if (calls.fetch_add(1) < 2) {
            throw std::runtime_error("transient");
        }
    });
    RetryPolicy retry;
    retry.max_attempts = 3;
    auto outcomes = runOnPool(tasks, 1, 0.0, {}, retry);
    EXPECT_EQ(outcomes[0].status, TaskOutcome::Status::kOk);
    EXPECT_EQ(outcomes[0].attempts, 3);
    EXPECT_TRUE(outcomes[0].error.empty());
    EXPECT_TRUE(outcomes[0].error_type.empty());
}

TEST(Pool, RetryExhaustionKeepsTheLastError)
{
    std::atomic<int> calls{0};
    std::vector<Task> tasks;
    tasks.push_back([&](const CancelToken&) {
        calls.fetch_add(1);
        throw std::runtime_error("permanent");
    });
    RetryPolicy retry;
    retry.max_attempts = 3;
    auto outcomes = runOnPool(tasks, 1, 0.0, {}, retry);
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(outcomes[0].status, TaskOutcome::Status::kError);
    EXPECT_EQ(outcomes[0].attempts, 3);
    EXPECT_EQ(outcomes[0].error, "permanent");
    EXPECT_EQ(outcomes[0].error_type, "std::runtime_error");
}

TEST(Pool, NoRetryByDefault)
{
    std::atomic<int> calls{0};
    std::vector<Task> tasks;
    tasks.push_back([&](const CancelToken&) {
        calls.fetch_add(1);
        throw std::runtime_error("boom");
    });
    auto outcomes = runOnPool(tasks, 1);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(outcomes[0].attempts, 1);
}

TEST(Pool, ExceptionTypeNameDemanglesDynamicType)
{
    const std::runtime_error e("x");
    const std::exception& base = e;
    EXPECT_EQ(exceptionTypeName(base), "std::runtime_error");
}

}  // namespace
}  // namespace yukta::runner
