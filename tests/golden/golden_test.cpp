// Golden-trace regression suite: replays the pinned scenarios from
// scenario.h and byte-compares their event traces against the
// committed files under tests/golden/. Any divergence is reported as
// the first diverging tick/field; re-bless deliberate behavior
// changes with tools/regen_golden.sh.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "golden/scenario.h"
#include "obs/trace_diff.h"

#ifndef YUKTA_GOLDEN_DIR
#error "YUKTA_GOLDEN_DIR must point at the committed golden traces"
#endif

namespace yukta::golden {
namespace {

/** Points the design/run cache at a private directory. */
class CacheDirEnvironment : public ::testing::Environment
{
  public:
    void SetUp() override
    {
        const std::string dir =
            (std::filesystem::temp_directory_path() / "yukta_golden_test")
                .string();
        std::filesystem::remove_all(dir);
        ASSERT_EQ(setenv("YUKTA_CACHE_DIR", dir.c_str(), 1), 0);
    }
};

::testing::Environment* const cache_env =
    ::testing::AddGlobalTestEnvironment(new CacheDirEnvironment);

/** One artifact bundle shared by every golden test. */
class GoldenFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        artifacts_ = new core::Artifacts(goldenArtifacts());
    }

    static void TearDownTestSuite()
    {
        delete artifacts_;
        artifacts_ = nullptr;
    }

    static std::filesystem::path goldenPath(const std::string& scheme)
    {
        return std::filesystem::path(YUKTA_GOLDEN_DIR) /
               goldenFileName(scheme);
    }

    /** Whole committed golden file as bytes; fails if it is absent. */
    static std::string goldenBytes(const std::string& scheme)
    {
        std::ifstream is(goldenPath(scheme), std::ios::binary);
        EXPECT_TRUE(is.good())
            << "missing " << goldenPath(scheme)
            << " -- run tools/regen_golden.sh to (re)create it";
        std::ostringstream os;
        os << is.rdbuf();
        return os.str();
    }

    /**
     * Runs the scenario live and asserts its trace is byte-identical
     * to the committed golden file, reporting the first diverging
     * tick and field otherwise.
     */
    static void expectMatchesGolden(const std::string& scheme)
    {
        obs::TraceSink sink("golden-" + scheme);
        captureGoldenTrace(scheme, *artifacts_, &sink);
        ASSERT_GT(sink.eventCount(), 0u);

        std::ostringstream live;
        sink.writeJsonl(live);
        const std::string expected = goldenBytes(scheme);
        if (live.str() == expected) {
            return;
        }
        std::istringstream want(expected);
        std::istringstream got(live.str());
        auto d = obs::diffJsonlStreams(want, got);
        ASSERT_TRUE(d.has_value());  // Bytes differ, so events must.
        FAIL() << "golden trace mismatch for scheme '" << scheme
               << "': " << obs::describeDivergence(*d)
               << "\nIf this change is intentional, re-bless with "
                  "tools/regen_golden.sh.";
    }

    static core::Artifacts* artifacts_;
};

core::Artifacts* GoldenFixture::artifacts_ = nullptr;

TEST_F(GoldenFixture, SsvMultilayerTraceMatchesGolden)
{
    expectMatchesGolden("ssv");
}

TEST_F(GoldenFixture, PidBaselineTraceMatchesGolden)
{
    expectMatchesGolden("pid");
}

TEST_F(GoldenFixture, CommittedTracesParseAndCarryBothLayers)
{
    for (const char* scheme : kGoldenSchemes) {
        std::ifstream is(goldenPath(scheme));
        std::string run_id;
        auto events = obs::readJsonlTrace(is, &run_id);
        ASSERT_TRUE(events.has_value()) << scheme;
        EXPECT_EQ(run_id, "golden-" + std::string(scheme));
        bool saw_hw = false;
        bool saw_cmd = false;
        bool saw_plant = false;
        for (const obs::TraceEvent& ev : *events) {
            saw_hw = saw_hw || ev.layer() == "hw";
            saw_cmd = saw_cmd || (ev.layer() == "sys" && ev.kind() == "cmd");
            saw_plant =
                saw_plant || (ev.layer() == "sys" && ev.kind() == "plant");
        }
        EXPECT_TRUE(saw_hw) << scheme;
        EXPECT_TRUE(saw_cmd) << scheme;
        EXPECT_TRUE(saw_plant) << scheme;
    }
}

TEST_F(GoldenFixture, TinyGainPerturbationIsCaughtWithFirstTick)
{
    // A 1e-6 bump on one entry of the synthesized SSV controller's
    // output map must surface as a first-divergent-tick report, not
    // slip through quantization.
    core::Artifacts perturbed = *artifacts_;
    perturbed.hw_ssv.controller.k.c(0, 0) += 1e-6;

    obs::TraceSink sink("golden-ssv");
    captureGoldenTrace("ssv", perturbed, &sink);

    std::istringstream want(goldenBytes("ssv"));
    std::ostringstream live;
    sink.writeJsonl(live);
    std::istringstream got(live.str());
    auto d = obs::diffJsonlStreams(want, got);
    ASSERT_TRUE(d.has_value())
        << "perturbed controller produced a byte-identical trace";
    const std::string report = obs::describeDivergence(*d);
    EXPECT_NE(report.find("tick"), std::string::npos) << report;
    EXPECT_NE(report.find(d->field), std::string::npos) << report;
}

}  // namespace
}  // namespace yukta::golden
