#ifndef YUKTA_TESTS_GOLDEN_SCENARIO_H_
#define YUKTA_TESTS_GOLDEN_SCENARIO_H_

/**
 * @file
 * The canonical golden-trace scenarios, shared verbatim by the
 * regression test (golden_test.cpp) and the re-blessing tool
 * (regen_golden.cpp) so both always run the exact same experiment.
 *
 * Two schemes are pinned: the SSV multilayer stack (the paper's
 * hardware layer) and the SISO PID baseline, both driving the
 * "swaptions" workload from the same seed for a short fixed budget.
 * Everything here must stay deterministic: any change to controller
 * math, plant models, or event emission shows up as a byte diff
 * against the committed traces in this directory and needs a
 * deliberate re-bless via tools/regen_golden.sh.
 */

#include <memory>
#include <stdexcept>
#include <string>

#include "controllers/heuristics.h"
#include "controllers/multilayer.h"
#include "controllers/pid.h"
#include "core/yukta.h"
#include "obs/trace.h"
#include "runner/sweep.h"

namespace yukta::golden {

/** Simulated-time budget: 60 ticks at the 500 ms control period. */
inline constexpr double kGoldenSeconds = 30.0;

/** Board seed shared by every golden scenario. */
inline constexpr std::uint32_t kGoldenSeed = 1;

/** Workload shared by every golden scenario. */
inline const char* const kGoldenWorkload = "swaptions";

/** The pinned scheme identifiers (also the trace file stems). */
inline const char* const kGoldenSchemes[] = {"ssv", "pid"};

/** @return the committed trace file name for @p scheme_id. */
inline std::string
goldenFileName(const std::string& scheme_id)
{
    return "golden-" + scheme_id + ".trace.jsonl";
}

/**
 * Builds the reduced artifact bundle the golden runs execute
 * against. Deliberately cheap (single D-K iteration, coarse mu grid)
 * so the suite stays fast; what matters is that it is bit-stable.
 */
inline core::Artifacts
goldenArtifacts()
{
    core::ArtifactOptions opt;
    opt.cache_tag = "golden";
    opt.training.apps = {"swaptions", "milc"};
    opt.training.seconds_per_app = 60.0;
    opt.dk.max_iterations = 1;
    opt.dk.mu_grid = 12;
    opt.dk.bisection_steps = 8;
    return core::buildArtifacts(platform::BoardConfig::odroidXu3(), opt);
}

/**
 * Instantiates the system for one golden scheme id: "ssv" is the
 * two-layer HW-SSV + OS-heuristic stack, "pid" the SISO PID baseline
 * with the same OS layer.
 * @throws std::invalid_argument on an unknown id.
 */
inline controllers::MultilayerSystem
makeGoldenSystem(const std::string& scheme_id, const core::Artifacts& art)
{
    if (scheme_id == "ssv") {
        return core::makeSystem(core::Scheme::kYuktaHwSsvOsHeuristic, art,
                                runner::makeWorkload(kGoldenWorkload),
                                kGoldenSeed);
    }
    if (scheme_id == "pid") {
        platform::Board board(art.cfg, runner::makeWorkload(kGoldenWorkload),
                              kGoldenSeed);
        return controllers::MultilayerSystem(
            std::move(board),
            std::make_unique<controllers::SisoPidHwController>(
                art.cfg, controllers::makeHwOptimizer(art.cfg)),
            std::make_unique<controllers::CoordinatedOsHeuristic>(art.cfg));
    }
    throw std::invalid_argument("unknown golden scheme '" + scheme_id + "'");
}

/**
 * Runs one golden scenario with event tracing into @p sink (which is
 * cleared first and whose run id should be "golden-<scheme_id>").
 */
inline void
captureGoldenTrace(const std::string& scheme_id, const core::Artifacts& art,
                   obs::TraceSink* sink)
{
    sink->clear();
    controllers::MultilayerSystem system = makeGoldenSystem(scheme_id, art);
    system.attachTraceSink(sink);
    (void)system.run(kGoldenSeconds);
    system.attachTraceSink(nullptr);
}

}  // namespace yukta::golden

#endif  // YUKTA_TESTS_GOLDEN_SCENARIO_H_
