/**
 * @file
 * Regenerates the committed golden traces from the pinned scenarios
 * in scenario.h. Run through tools/regen_golden.sh after a deliberate
 * behavior change; never regenerate to silence an unexplained diff.
 *
 * Usage: yukta-regen-golden <output-dir>
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "golden/scenario.h"

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: yukta-regen-golden <output-dir>\n");
        return 2;
    }
    const std::filesystem::path out_dir = argv[1];
    std::filesystem::create_directories(out_dir);

    using namespace yukta;
    std::fprintf(stderr, "building golden artifacts...\n");
    const core::Artifacts art = golden::goldenArtifacts();

    for (const char* scheme : golden::kGoldenSchemes) {
        obs::TraceSink sink("golden-" + std::string(scheme));
        golden::captureGoldenTrace(scheme, art, &sink);

        const auto path = out_dir / golden::goldenFileName(scheme);
        std::ofstream os(path, std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 1;
        }
        sink.writeJsonl(os);
        std::fprintf(stderr, "wrote %s (%zu events)\n", path.c_str(),
                     sink.eventCount());
    }
    return 0;
}
