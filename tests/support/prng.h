#ifndef YUKTA_TESTS_SUPPORT_PRNG_H_
#define YUKTA_TESTS_SUPPORT_PRNG_H_

/**
 * @file
 * Seeded generators for the property-based tests. Deliberately NOT
 * std::rand() or std::mt19937-with-time: every case is derived from
 * an explicit 64-bit seed, so a failing property prints its case
 * index and replays exactly.
 */

#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace yukta::testsupport {

/** splitmix64: tiny, fast, full-period 64-bit generator. */
class SplitMix64
{
  public:
    /** Seeds the stream; equal seeds yield equal sequences. */
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** @return the next raw 64-bit draw. */
    std::uint64_t next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** @return a uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        const double u =
            static_cast<double>(next() >> 11) * 0x1.0p-53;  // [0, 1)
        return lo + u * (hi - lo);
    }

    /** @return a uniform integer in [lo, hi] (inclusive). */
    int uniformInt(int lo, int hi)
    {
        const auto span = static_cast<std::uint64_t>(hi - lo + 1);
        return lo + static_cast<int>(next() % span);
    }

  private:
    std::uint64_t state_;
};

/** @return an r x c matrix with entries uniform in [-scale, scale). */
inline linalg::Matrix
randomMatrix(SplitMix64& rng, std::size_t r, std::size_t c,
             double scale = 1.0)
{
    linalg::Matrix m(r, c);
    for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
            m(i, j) = rng.uniform(-scale, scale);
        }
    }
    return m;
}

/** @return a length-n vector with entries uniform in [-scale, scale). */
inline linalg::Vector
randomVector(SplitMix64& rng, std::size_t n, double scale = 1.0)
{
    linalg::Vector v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = rng.uniform(-scale, scale);
    }
    return v;
}

/**
 * @return an n x n strictly diagonally dominant matrix -- invertible
 * and well-conditioned, so solve/inverse round trips hold tightly.
 */
inline linalg::Matrix
randomDominant(SplitMix64& rng, std::size_t n)
{
    linalg::Matrix m = randomMatrix(rng, n, n);
    for (std::size_t i = 0; i < n; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            row += m(i, j) < 0.0 ? -m(i, j) : m(i, j);
        }
        m(i, i) += (m(i, i) < 0.0 ? -1.0 : 1.0) * (row + 1.0);
    }
    return m;
}

/** @return a random symmetric n x n matrix, (M + M^T) / 2. */
inline linalg::Matrix
randomSymmetric(SplitMix64& rng, std::size_t n, double scale = 1.0)
{
    linalg::Matrix m = randomMatrix(rng, n, n, scale);
    linalg::Matrix s = m + m.transpose();
    s *= 0.5;
    return s;
}

/** @return a symmetric positive definite matrix M M^T + eps I. */
inline linalg::Matrix
randomSpd(SplitMix64& rng, std::size_t n, double eps = 0.1)
{
    linalg::Matrix m = randomMatrix(rng, n, n);
    linalg::Matrix spd = m * m.transpose();
    for (std::size_t i = 0; i < n; ++i) {
        spd(i, i) += eps;
    }
    return spd;
}

/**
 * @return an n x n matrix with spectral radius < @p rho (a discrete-
 * time stable A), scaled through the infinity norm bound.
 */
inline linalg::Matrix
randomStableDiscrete(SplitMix64& rng, std::size_t n, double rho = 0.9)
{
    linalg::Matrix m = randomMatrix(rng, n, n);
    const double norm = m.normInf();
    if (norm > 0.0) {
        m *= rho / norm;
    }
    return m;
}

/**
 * @return an n x n Hurwitz matrix (all eigenvalue real parts < 0):
 * a random matrix shifted left by its infinity norm plus a margin.
 */
inline linalg::Matrix
randomStableContinuous(SplitMix64& rng, std::size_t n, double margin = 0.5)
{
    linalg::Matrix m = randomMatrix(rng, n, n);
    const double shift = m.normInf() + margin;
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) -= shift;
    }
    return m;
}

}  // namespace yukta::testsupport

#endif  // YUKTA_TESTS_SUPPORT_PRNG_H_
