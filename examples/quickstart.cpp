/**
 * @file
 * Quickstart: synthesize an SSV controller for a small synthetic MIMO
 * plant and watch it track targets under input quantization.
 *
 * This exercises the core robust-control API without the big.LITTLE
 * simulator: define the model, declare bounds / weights / guardband,
 * synthesize, and run the resulting state machine in a loop.
 */

#include <cstdio>

#include "control/state_space.h"
#include "controllers/ssv_runtime.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "robust/ssv_design.h"

using namespace yukta;
using linalg::Matrix;
using linalg::Vector;

int
main()
{
    // A coupled 2-input, 2-output discrete plant (500 ms period), plus
    // one external signal the controller can observe but not control.
    Matrix a{{0.6, 0.1}, {0.05, 0.7}};
    Matrix b{{0.5, 0.1, 0.1}, {0.1, 0.4, 0.05}};
    Matrix c{{1.0, 0.2}, {0.1, 1.0}};
    Matrix d(2, 3);

    robust::SsvSpec spec;
    spec.model = control::StateSpace(a, b, c, d, 0.5);
    spec.num_inputs = 2;
    spec.num_external = 1;
    spec.in_min = {0.0, 0.0};
    spec.in_max = {4.0, 2.0};
    spec.in_step = {1.0, 0.1};  // discrete actuators, like real boards
    spec.in_weight = {1.0, 1.0};
    spec.out_bound = {0.4, 0.3};  // designer deviation bounds B
    spec.out_range = {2.0, 1.5};
    spec.guardband = 0.4;         // +-40% uncertainty guardband
    spec.max_order = 12;

    std::printf("Synthesizing SSV controller (D-K iteration)...\n");
    auto ctrl = robust::ssvSynthesize(spec);
    if (!ctrl) {
        std::printf("synthesis failed\n");
        return 1;
    }
    std::printf("  mu peak      : %.3f  (min(s) = %.3f)\n", ctrl->mu_peak,
                ctrl->min_s);
    std::printf("  gamma        : %.3f\n", ctrl->gamma);
    std::printf("  order        : %zu states\n", ctrl->k.numStates());
    std::printf("  guaranteed   : +-%.3f, +-%.3f\n",
                ctrl->guaranteed_bounds[0], ctrl->guaranteed_bounds[1]);

    // Wrap into the runtime state machine with the physical grids.
    // The operating point (u_mean) anchors the controller mid-range,
    // exactly like the training-data means do in the full design flow.
    controllers::SsvRuntime runtime(
        *ctrl,
        {{0.0, 4.0, 1.0}, {0.0, 2.0, 0.1}},
        Vector{2.0, 1.0},
        Vector{0.0});

    // Closed loop against the true plant: track a step target. The
    // target is chosen reachable on the quantized input grid (the
    // steady-state response to u = [2, 1.0]); asking for off-grid
    // outputs makes the loop dither between adjacent levels instead.
    control::StateSpace plant = spec.model;
    double ext = 0.2;
    linalg::Matrix dc = plant.dcGain();
    Vector targets = dc * Vector{3.0, 1.2, ext};
    Vector x = Vector::zeros(plant.numStates());
    Vector y{0.0, 0.0};

    std::printf("\n t   u1 u2    y1     y2   (targets %.3f, %.3f)\n",
                targets[0], targets[1]);
    for (int t = 0; t < 120; ++t) {
        Vector dev{targets[0] - y[0], targets[1] - y[1]};
        Vector u = runtime.invoke(dev, Vector{ext});
        Vector ue{u[0], u[1], ext};
        y = control::stepOnce(plant, x, ue);
        if (t % 12 == 0) {
            std::printf("%3d  %2.0f %3.1f  %.3f  %.3f\n", t, u[0], u[1],
                        y[0], y[1]);
        }
    }
    std::printf("\nfinal deviations: %+.3f, %+.3f (bounds +-%.1f, +-%.1f)\n",
                targets[0] - y[0], targets[1] - y[1], spec.out_bound[0],
                spec.out_bound[1]);
    std::printf("guardband exhausted: %s\n",
                runtime.guardbandExhausted() ? "yes" : "no");
    return 0;
}
