/**
 * @file
 * yukta-fleet: sharded fleet-simulation driver. Steps N boards (each
 * the full platform + multilayer controller stack) under an open-loop
 * Poisson request workload with a diurnal rate profile, fleet-level
 * admission control, and a cluster controller redistributing
 * per-board power/performance targets. The run result is
 * bit-identical for any --workers value; --digest prints the
 * fingerprint that proves it.
 *
 * Examples:
 *   yukta-fleet --boards=16 --sim-seconds=30
 *   yukta-fleet --boards=100 --sim-seconds=60 --workers=8 \
 *               --rate=14 --amplitude=0.6 --out=fleet.json
 *   yukta-fleet --boards=8 --no-admission --digest
 *   yukta-fleet --boards=8 --faults='board2:crash@10+5' --supervised
 *   yukta-fleet --checkpoint-every=20 --checkpoint-dir=ckpt
 *   yukta-fleet --resume=ckpt/fleet-latest.ckpt
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "fault/plan.h"
#include "fleet/artifacts.h"
#include "fleet/fleet.h"
#include "runner/sweep.h"

using namespace yukta;

namespace {

void
usage()
{
    std::printf(
        "usage: yukta-fleet [options]\n"
        "  --boards=N          board instances (default 16)\n"
        "  --shards=N          shard count (default: one per board)\n"
        "  --workers=N         pool workers (default: hardware\n"
        "                      threads; result is identical for any N)\n"
        "  --sim-seconds=S     simulated time (default 30)\n"
        "  --seed=N            fleet seed (default 1)\n"
        "  --scheme=ID         controller scheme (default yukta-full)\n"
        "  --supervised        enable the per-board supervisor\n"
        "  --rate=R            mean arrivals/sec per board (default 8)\n"
        "  --amplitude=A       diurnal swing fraction [0,1) (default 0)\n"
        "  --day=S             diurnal period seconds (default 240)\n"
        "  --demand=GI         mean request demand (default 1)\n"
        "  --slo=S             latency SLO seconds (default 2)\n"
        "  --capacity=GI       per-board queue capacity (default 8)\n"
        "  --hops=N            admission re-route hops (default 3)\n"
        "  --no-admission      accept everything at its origin\n"
        "  --no-cluster        disable the cluster controller\n"
        "  --cluster-epochs=N  redistribution period (default 8)\n"
        "  --budget=W          fleet power budget (default 70%% of caps)\n"
        "  --hot=B:W           weight board B's arrival rate by W\n"
        "                      (repeatable; skewed-hotspot scenarios)\n"
        "  --faults=SPEC       board-fault schedule, e.g.\n"
        "                      'board2:crash@10+5;board0:hang@20+4'\n"
        "                      (kinds: crash, degrade, hang, drift)\n"
        "  --adapt             online adaptation: RLS sysid + drift\n"
        "                      detection per board, with re-synthesis\n"
        "                      and bumpless controller hot-swap\n"
        "  --fault-blind       disable the watchdog and fault-aware\n"
        "                      routing (the baseline the faults bench\n"
        "                      compares against)\n"
        "  --scalar-tick       tick boards one at a time instead of\n"
        "                      through the batched matrix-matrix pass\n"
        "                      (bit-identical result; for comparison)\n"
        "  --watchdog-attempts=N  shard tries per epoch (default 2)\n"
        "  --checkpoint-every=N   checkpoint every N epochs\n"
        "  --checkpoint-dir=DIR   where checkpoints go (created;\n"
        "                      default 'yukta-fleet-ckpt')\n"
        "  --resume=FILE       restore a checkpoint, then run to the\n"
        "                      configured end (flags must reproduce\n"
        "                      the original run's config)\n"
        "  --out=FILE          write the run JSON to FILE\n"
        "  --digest            print only the determinism digest\n"
        "  --quiet             suppress the summary\n");
}

bool
parseFlag(const char* arg, const char* name, std::string* value)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        *value = arg + n + 1;
        return true;
    }
    return false;
}

}  // namespace

int
main(int argc, char** argv)
{
    fleet::FleetConfig cfg;
    cfg.boards = 16;
    cfg.sim_seconds = 30.0;
    std::size_t workers =
        std::max(1u, std::thread::hardware_concurrency());
    std::string out_file;
    std::string faults_spec;
    std::string resume_path;
    fleet::CheckpointConfig ckpt;
    bool digest_only = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string v;
        const char* a = argv[i];
        if (std::strcmp(a, "--help") == 0) {
            usage();
            return 0;
        } else if (std::strcmp(a, "--supervised") == 0) {
            cfg.supervised = true;
        } else if (std::strcmp(a, "--no-admission") == 0) {
            cfg.admission.enabled = false;
        } else if (std::strcmp(a, "--no-cluster") == 0) {
            cfg.cluster.enabled = false;
        } else if (std::strcmp(a, "--fault-blind") == 0) {
            cfg.fault_aware = false;
        } else if (std::strcmp(a, "--scalar-tick") == 0) {
            cfg.batch_tick = false;
        } else if (std::strcmp(a, "--adapt") == 0) {
            cfg.adapt = true;
        } else if (std::strcmp(a, "--digest") == 0) {
            digest_only = true;
        } else if (std::strcmp(a, "--quiet") == 0) {
            quiet = true;
        } else if (parseFlag(a, "--boards", &v)) {
            cfg.boards = std::atoi(v.c_str());
        } else if (parseFlag(a, "--shards", &v)) {
            cfg.shards = std::atoi(v.c_str());
        } else if (parseFlag(a, "--workers", &v)) {
            workers = static_cast<std::size_t>(std::atol(v.c_str()));
        } else if (parseFlag(a, "--sim-seconds", &v)) {
            cfg.sim_seconds = std::atof(v.c_str());
        } else if (parseFlag(a, "--seed", &v)) {
            cfg.seed = static_cast<std::uint32_t>(std::atol(v.c_str()));
        } else if (parseFlag(a, "--scheme", &v)) {
            auto s = runner::schemeFromId(v);
            if (!s) {
                std::fprintf(stderr, "unknown scheme '%s'\n", v.c_str());
                return 2;
            }
            cfg.scheme = *s;
        } else if (parseFlag(a, "--rate", &v)) {
            cfg.arrivals.profile.base_rate = std::atof(v.c_str());
        } else if (parseFlag(a, "--amplitude", &v)) {
            cfg.arrivals.profile.amplitude = std::atof(v.c_str());
        } else if (parseFlag(a, "--day", &v)) {
            cfg.arrivals.profile.period_seconds = std::atof(v.c_str());
        } else if (parseFlag(a, "--demand", &v)) {
            cfg.arrivals.mean_demand_gi = std::atof(v.c_str());
        } else if (parseFlag(a, "--slo", &v)) {
            cfg.slo_seconds = std::atof(v.c_str());
        } else if (parseFlag(a, "--capacity", &v)) {
            cfg.admission.queue_capacity_gi = std::atof(v.c_str());
        } else if (parseFlag(a, "--hops", &v)) {
            cfg.admission.max_hops = std::atoi(v.c_str());
        } else if (parseFlag(a, "--cluster-epochs", &v)) {
            cfg.cluster.period_epochs = std::atoi(v.c_str());
        } else if (parseFlag(a, "--budget", &v)) {
            cfg.cluster.power_budget_w = std::atof(v.c_str());
        } else if (parseFlag(a, "--hot", &v)) {
            const std::size_t colon = v.find(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr, "--hot wants B:W\n");
                return 2;
            }
            const int b = std::atoi(v.substr(0, colon).c_str());
            const double w = std::atof(v.substr(colon + 1).c_str());
            if (b < 0) {
                std::fprintf(stderr, "--hot board must be >= 0\n");
                return 2;
            }
            if (cfg.arrivals.board_weight.size() <=
                static_cast<std::size_t>(b)) {
                cfg.arrivals.board_weight.resize(
                    static_cast<std::size_t>(b) + 1, 1.0);
            }
            cfg.arrivals.board_weight[static_cast<std::size_t>(b)] = w;
        } else if (parseFlag(a, "--faults", &v)) {
            faults_spec = v;
        } else if (parseFlag(a, "--watchdog-attempts", &v)) {
            cfg.watchdog_attempts = std::atoi(v.c_str());
        } else if (parseFlag(a, "--checkpoint-every", &v)) {
            ckpt.every_epochs = std::atoi(v.c_str());
            if (ckpt.every_epochs <= 0) {
                std::fprintf(stderr,
                             "--checkpoint-every wants a positive "
                             "epoch count\n");
                return 2;
            }
        } else if (parseFlag(a, "--checkpoint-dir", &v)) {
            ckpt.dir = v;
        } else if (parseFlag(a, "--resume", &v)) {
            resume_path = v;
        } else if (parseFlag(a, "--out", &v)) {
            out_file = v;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a);
            usage();
            return 2;
        }
    }

    if (!faults_spec.empty()) {
        try {
            cfg.faults = fault::FaultPlan::parse(faults_spec);
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "--faults: %s\n", e.what());
            return 2;
        }
    }
    if (ckpt.every_epochs > 0) {
        if (ckpt.dir.empty()) ckpt.dir = "yukta-fleet-ckpt";
        std::error_code ec;
        std::filesystem::create_directories(ckpt.dir, ec);
        if (ec) {
            std::fprintf(stderr, "cannot create checkpoint dir %s: %s\n",
                         ckpt.dir.c_str(), ec.message().c_str());
            return 1;
        }
    } else if (!ckpt.dir.empty()) {
        std::fprintf(stderr,
                     "--checkpoint-dir needs --checkpoint-every=N\n");
        return 2;
    }

    if (!quiet && !digest_only) {
        std::fprintf(stderr,
                     "building artifacts (cached after first run)...\n");
    }
    const core::Artifacts artifacts = fleet::fleetArtifacts();

    fleet::FleetSim sim(cfg, artifacts);
    if (!resume_path.empty()) {
        try {
            sim.restoreCheckpoint(resume_path);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "--resume: %s\n", e.what());
            return 1;
        }
        if (!quiet && !digest_only) {
            std::fprintf(stderr, "resumed %s at epoch %d\n",
                         resume_path.c_str(), sim.epoch());
        }
    }
    const fleet::FleetMetrics m = sim.run(workers, ckpt);

    if (digest_only) {
        std::printf("%016llx\n",
                    static_cast<unsigned long long>(m.digest()));
        return 0;
    }

    if (!out_file.empty()) {
        std::ofstream os(out_file);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", out_file.c_str());
            return 1;
        }
        os << m.toJson(true) << "\n";
    }

    if (!quiet) {
        std::printf("boards %d  epochs %d  sim %.1fs  wall %.2fs  "
                    "(%.0f board-ticks/s)\n",
                    m.boards, m.epochs, m.sim_seconds, m.wall_seconds,
                    m.board_ticks_per_sec);
        std::printf("requests: offered %lld  accepted %lld  "
                    "rejected %lld  rerouted %lld  completed %lld\n",
                    m.admission.offered, m.admission.accepted,
                    m.admission.rejected, m.admission.rerouted,
                    m.completed);
        std::printf("latency s: p50 %.3f  p90 %.3f  p99 %.3f  max %.3f\n",
                    m.latency.quantile(0.50), m.latency.quantile(0.90),
                    m.latency.quantile(0.99), m.latency.maxValue());
        std::printf("energy %.1f J  fleet ExD %.1f J*s  "
                    "SLO violation %.1f board-s  backlog %.1f GI\n",
                    m.energy, m.exd, m.slo_violation_time, m.backlog_gi);
        if (!cfg.faults.empty()) {
            std::printf("faults: crashes %lld  reboots %lld  dropped "
                        "%lld  lost epochs %lld  degraded %lld  "
                        "timeouts %lld  retries %lld\n",
                        m.faults.crashes, m.faults.reboots,
                        m.faults.dropped_requests, m.faults.lost_epochs,
                        m.faults.degraded_epochs,
                        m.faults.watchdog_timeouts,
                        m.faults.shard_retries);
        }
        std::printf("cluster rounds %d  constraint violation %.2f s  "
                    "digest %016llx\n",
                    m.cluster_rounds, m.constraint_violation_time,
                    static_cast<unsigned long long>(m.digest()));
    }
    return 0;
}
