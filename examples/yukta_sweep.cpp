/**
 * @file
 * yukta-sweep: parallel experiment-sweep driver. Expands a
 * declarative (scheme x workload x seed) sweep, fans the runs out
 * across a worker pool with a shared on-disk result cache, and prints
 * an aggregated table from the structured run records.
 *
 * Examples:
 *   yukta-sweep --list
 *   yukta-sweep --schemes=coordinated,yukta-full \
 *               --workloads=blackscholes,gamess --seeds=1,2 --workers=4
 *   yukta-sweep --jsonl=sweep.jsonl --no-cache
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/yukta.h"
#include "runner/sweep.h"

using namespace yukta;

namespace {

void
usage()
{
    std::printf(
        "usage: yukta-sweep [options]\n"
        "  --schemes=ID,...     schemes to run (default: the four\n"
        "                       two-layer schemes of Fig. 9)\n"
        "  --workloads=NAME,... apps or mixes (default: the paper's\n"
        "                       evaluation set)\n"
        "  --seeds=N,...        board seeds (default: 1)\n"
        "  --workers=N          pool size (default: hardware threads)\n"
        "  --max-seconds=S      simulated-time budget per run\n"
        "  --trace-interval=S   record traces every S simulated\n"
        "                       seconds (disables the result cache)\n"
        "  --trace=DIR          write one structured per-tick event\n"
        "                       trace per run into DIR (disables the\n"
        "                       result cache)\n"
        "  --trace-format=F     jsonl (default), chrome, or both\n"
        "  --metrics            print the metrics-registry snapshot\n"
        "                       (JSON) after the sweep\n"
        "  --timeout=S          wall-clock timeout per run\n"
        "  --faults=SPEC        inject faults, e.g.\n"
        "                       'seed=1;p_big:nan@10+5;act:ignore@20+4'\n"
        "  --supervised         run the controller supervisor\n"
        "  --attempts=N         retry failed runs up to N attempts\n"
        "  --retry-backoff=S    linear backoff between attempts\n"
        "  --jsonl=FILE         append one JSON record per run\n"
        "  --no-cache           ignore and do not fill the run cache\n"
        "  --quiet              no per-run progress lines\n"
        "  --list               list scheme ids and workloads, exit\n"
        "The cache directory honors YUKTA_CACHE_DIR.\n");
}

std::vector<std::string>
splitCsv(const std::string& s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) {
            out.push_back(item);
        }
    }
    return out;
}

void
listCatalog()
{
    std::printf("schemes:\n");
    for (core::Scheme s : core::allSchemes()) {
        std::printf("  %-14s %s\n", runner::schemeId(s).c_str(),
                    core::schemeName(s).c_str());
    }
    std::printf("workloads (apps):\n ");
    for (const std::string& a : platform::AppCatalog::evaluationApps()) {
        std::printf(" %s", a.c_str());
    }
    std::printf("\nworkloads (mixes):\n ");
    for (const std::string& m : platform::AppCatalog::mixNames()) {
        std::printf(" %s", m.c_str());
    }
    std::printf("\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    runner::SweepSpec spec;
    spec.schemes = {core::Scheme::kCoordinatedHeuristic,
                    core::Scheme::kDecoupledHeuristic,
                    core::Scheme::kYuktaHwSsvOsHeuristic,
                    core::Scheme::kYuktaFull};
    spec.workloads = platform::AppCatalog::evaluationApps();

    runner::RunnerOptions options;
    options.workers = std::max(1u, std::thread::hardware_concurrency());
    options.progress = &std::cerr;

    std::string jsonl_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* prefix) -> const char* {
            return arg.compare(0, std::strlen(prefix), prefix) == 0
                       ? arg.c_str() + std::strlen(prefix)
                       : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            listCatalog();
            return 0;
        } else if (arg == "--no-cache") {
            options.use_cache = false;
        } else if (arg == "--quiet") {
            options.progress = nullptr;
        } else if (const char* schemes_arg = value("--schemes=")) {
            spec.schemes.clear();
            for (const std::string& id : splitCsv(schemes_arg)) {
                auto s = runner::schemeFromId(id);
                if (!s) {
                    std::fprintf(stderr, "unknown scheme id '%s' "
                                 "(see --list)\n", id.c_str());
                    return 2;
                }
                spec.schemes.push_back(*s);
            }
        } else if (const char* workloads_arg = value("--workloads=")) {
            spec.workloads = splitCsv(workloads_arg);
        } else if (const char* seeds_arg = value("--seeds=")) {
            spec.seeds.clear();
            for (const std::string& s : splitCsv(seeds_arg)) {
                spec.seeds.push_back(
                    static_cast<std::uint32_t>(std::strtoul(s.c_str(),
                                                            nullptr, 10)));
            }
        } else if (const char* workers_arg = value("--workers=")) {
            options.workers = std::strtoul(workers_arg, nullptr, 10);
        } else if (const char* max_s_arg = value("--max-seconds=")) {
            spec.max_seconds = std::strtod(max_s_arg, nullptr);
        } else if (const char* interval_arg = value("--trace-interval=")) {
            spec.trace_interval = std::strtod(interval_arg, nullptr);
        } else if (const char* format_arg = value("--trace-format=")) {
            options.trace_format = format_arg;
        } else if (const char* trace_arg = value("--trace=")) {
            options.trace_dir = trace_arg;
        } else if (arg == "--metrics") {
            options.emit_metrics = true;
        } else if (const char* timeout_arg = value("--timeout=")) {
            options.run_timeout_seconds = std::strtod(timeout_arg, nullptr);
        } else if (const char* faults_arg = value("--faults=")) {
            spec.fault_plan = faults_arg;
        } else if (arg == "--supervised") {
            spec.supervised = true;
        } else if (const char* attempts_arg = value("--attempts=")) {
            options.run_attempts =
                static_cast<int>(std::strtol(attempts_arg, nullptr, 10));
        } else if (const char* backoff_arg = value("--retry-backoff=")) {
            options.retry_backoff_seconds = std::strtod(backoff_arg, nullptr);
        } else if (const char* jsonl_arg = value("--jsonl=")) {
            jsonl_path = jsonl_arg;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
            return 2;
        }
    }

    if (spec.schemes.empty() || spec.workloads.empty() ||
        spec.seeds.empty()) {
        std::fprintf(stderr, "empty sweep (no schemes/workloads/seeds)\n");
        return 2;
    }
    if (options.trace_format != "jsonl" && options.trace_format != "chrome" &&
        options.trace_format != "both") {
        std::fprintf(stderr, "bad --trace-format '%s' (want jsonl, "
                     "chrome, or both)\n", options.trace_format.c_str());
        return 2;
    }

    // Validate the fault plan and workload names before paying for
    // artifact synthesis.
    if (!spec.fault_plan.empty()) {
        try {
            (void)fault::FaultPlan::parse(spec.fault_plan);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bad --faults spec: %s\n", e.what());
            return 2;
        }
    }
    for (const std::string& w : spec.workloads) {
        try {
            (void)runner::makeWorkload(w);
        } catch (const std::exception&) {
            std::fprintf(stderr, "unknown workload '%s' (see --list)\n",
                         w.c_str());
            return 2;
        }
    }

    std::ofstream jsonl;
    if (!jsonl_path.empty()) {
        jsonl.open(jsonl_path, std::ios::app);
        if (!jsonl) {
            std::fprintf(stderr, "cannot open '%s'\n", jsonl_path.c_str());
            return 2;
        }
        options.jsonl = &jsonl;
    }

    core::ArtifactOptions art_opts;
    art_opts.cache_tag = "paper";
    auto artifacts =
        core::buildArtifacts(platform::BoardConfig::odroidXu3(), art_opts);

    const auto runs = runner::expandSweep(spec);
    std::fprintf(stderr, "sweep: %zu runs on %zu worker(s)\n", runs.size(),
                 options.workers);

    auto result = runner::runSweep(artifacts, spec, options);

    // Aggregated table: rows = workload x seed, columns = schemes.
    std::printf("%-18s", "workload/seed");
    for (core::Scheme s : spec.schemes) {
        std::printf(" %14s", runner::schemeId(s).c_str());
    }
    std::printf("   (ExD; J*s)\n");
    for (const std::string& w : spec.workloads) {
        for (std::uint32_t seed : spec.seeds) {
            std::ostringstream label;
            label << w << "/" << seed;
            std::printf("%-18s", label.str().c_str());
            for (core::Scheme s : spec.schemes) {
                const auto* m = result.metricsFor(s, w, seed);
                if (m != nullptr) {
                    std::printf(" %14.0f", m->exd);
                } else {
                    std::printf(" %14s", "-");
                }
            }
            std::printf("\n");
        }
    }

    const std::size_t errors =
        result.countStatus(runner::TaskOutcome::Status::kError);
    const std::size_t timeouts =
        result.countStatus(runner::TaskOutcome::Status::kTimeout);
    std::size_t hits = 0;
    double wall = 0.0;
    for (const auto& r : result.records) {
        hits += r.cache_hit ? 1 : 0;
        wall += r.wall_seconds;
    }
    std::printf("\n%zu runs: %zu ok, %zu error, %zu timeout; "
                "%zu cache hit(s); %.1f run-seconds total\n",
                result.records.size(),
                result.records.size() - errors - timeouts, errors,
                timeouts, hits, wall);
    for (const auto& r : result.records) {
        if (r.status == runner::TaskOutcome::Status::kError) {
            std::printf("  error: %s/%s/%u: %s\n",
                        runner::schemeId(r.scheme).c_str(),
                        r.workload.c_str(), r.seed, r.error.c_str());
        }
    }
    if (!options.trace_dir.empty()) {
        std::fprintf(stderr, "traces written to %s/\n",
                     options.trace_dir.c_str());
    }
    if (options.emit_metrics) {
        std::printf("%s\n", result.metrics_json.c_str());
    }
    return errors == 0 && timeouts == 0 ? 0 : 1;
}
