/**
 * @file
 * The Fig. 3 design process, step by step, as two independent teams
 * would run it:
 *
 *   1. each team declares its layer spec (signals, grids, bounds,
 *      weights, external signals, guardband);
 *   2. the teams exchange Interface records;
 *   3. each team runs its characterization campaign and identifies a
 *      black-box model (System Identification);
 *   4. each team synthesizes and validates its SSV controller;
 *   5. the combined system is validated on the board.
 */

#include <cstdio>
#include <iostream>

#include "core/validation.h"
#include "core/yukta.h"

using namespace yukta;

int
main()
{
    auto cfg = platform::BoardConfig::odroidXu3();

    // ---- Step 1: per-team declarations (Tables II and III). ----
    // Ranges come from each team's own characterization; reasonable
    // preliminary values are fine at this step.
    core::LayerSpec hw_spec =
        core::hardwareLayerSpec(cfg, {10.0, 4.0, 0.5, 25.0});
    core::LayerSpec os_spec = core::softwareLayerSpec({5.0, 2.0, 14.0});

    // ---- Step 2: interface exchange. ----
    auto hw_pub = core::publishInterface(hw_spec);
    auto os_pub = core::publishInterface(os_spec);
    std::printf("=== Interface exchange ===\n");
    core::printInterfaceExchange(std::cout, hw_pub);
    core::printInterfaceExchange(std::cout, os_pub);

    // ---- Step 3: characterization + identification. ----
    std::printf("\n=== Characterization campaign (training apps) ===\n");
    core::TrainingOptions topt;
    topt.seconds_per_app = 60.0;
    auto data = core::runTrainingCampaign(cfg, topt);
    std::printf("HW records: %zu samples; OS records: %zu samples\n",
                data.hw.u.size(), data.os.u.size());

    // Refresh the output ranges from the measured data (Sec. IV-A).
    hw_spec = core::hardwareLayerSpec(cfg, data.hw_ranges);
    os_spec = core::softwareLayerSpec(data.os_ranges);

    // ---- Step 4: per-layer synthesis + validation. ----
    std::printf("\n=== Synthesis ===\n");
    core::DesignOptions dopt;
    dopt.dk.max_iterations = 2;
    auto hw_design = core::designSsvLayer(hw_spec, data.hw, 3, dopt);
    auto os_design = core::designSsvLayer(os_spec, data.os, 4, dopt);
    if (!hw_design || !os_design) {
        std::printf("synthesis failed; relax bounds/guardband and retry\n");
        return 1;
    }
    core::printLayerReport(std::cout, *hw_design);
    core::printLayerReport(std::cout, *os_design);

    // Per-layer nominal validation (closed loop against each team's
    // own identified model).
    std::printf("HW nominal validation: %s\n",
                core::summarize(core::validateNominal(*hw_design)).c_str());
    std::printf("OS nominal validation: %s\n",
                core::summarize(core::validateNominal(*os_design)).c_str());


    // ---- Step 5: combine and validate on the board. ----
    std::printf("=== Combined validation run ===\n");
    controllers::MultilayerSystem system(
        platform::Board(cfg,
                        platform::Workload(
                            platform::AppCatalog::get("swaptions")),
                        11),
        std::make_unique<controllers::SsvHwController>(
            core::makeSsvRuntime(*hw_design),
            controllers::makeHwOptimizer(cfg)),
        std::make_unique<controllers::SsvOsController>(
            core::makeSsvRuntime(*os_design),
            controllers::makeOsOptimizer()));
    auto metrics = system.run(600.0);
    std::printf("completed=%d  time %.1f s  energy %.1f J  ExD %.0f  "
                "emergencies %.1f s\n",
                metrics.completed, metrics.exec_time, metrics.energy,
                metrics.exd, metrics.emergency_time);
    return 0;
}
