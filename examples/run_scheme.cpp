/**
 * @file
 * Command-line runner: execute any scheme on any application (or
 * mix), print the metrics, and optionally dump the board trace as
 * CSV for plotting.
 *
 * Usage:
 *   run_scheme [scheme] [app] [seed] [trace.csv]
 *
 *   scheme: coordinated | decoupled | yukta-hw | yukta | lqg | mono
 *           (default: yukta)
 *   app:    any catalog name (blackscholes, mcf, ...) or mix
 *           (blmc, stga, blst, mcga); default blackscholes
 *   seed:   sensor-noise seed (default 1)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/yukta.h"
#include "platform/trace_io.h"

using namespace yukta;

namespace {

core::Scheme
parseScheme(const std::string& name)
{
    if (name == "coordinated") {
        return core::Scheme::kCoordinatedHeuristic;
    }
    if (name == "decoupled") {
        return core::Scheme::kDecoupledHeuristic;
    }
    if (name == "yukta-hw") {
        return core::Scheme::kYuktaHwSsvOsHeuristic;
    }
    if (name == "yukta") {
        return core::Scheme::kYuktaFull;
    }
    if (name == "lqg") {
        return core::Scheme::kDecoupledLqg;
    }
    if (name == "mono") {
        return core::Scheme::kMonolithicLqg;
    }
    std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
    std::exit(2);
}

platform::Workload
parseWorkload(const std::string& name)
{
    for (const std::string& mix : platform::AppCatalog::mixNames()) {
        if (name == mix) {
            return platform::AppCatalog::getMix(name);
        }
    }
    return platform::Workload(platform::AppCatalog::get(name));
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string scheme_name = argc > 1 ? argv[1] : "yukta";
    std::string app = argc > 2 ? argv[2] : "blackscholes";
    std::uint32_t seed =
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 1;
    std::string trace_path = argc > 4 ? argv[4] : "";

    core::Scheme scheme = parseScheme(scheme_name);
    auto cfg = platform::BoardConfig::odroidXu3();

    core::ArtifactOptions options;
    options.cache_tag = "paper";
    auto artifacts = core::buildArtifacts(cfg, options);

    auto system =
        core::makeSystem(scheme, artifacts, parseWorkload(app), seed);
    if (!trace_path.empty()) {
        system.enableTrace(0.5);
    }
    auto m = system.run(1200.0);

    std::printf("%s on %s (seed %u)\n", core::schemeName(scheme).c_str(),
                app.c_str(), seed);
    std::printf("  completed   : %s\n", m.completed ? "yes" : "no");
    std::printf("  time        : %.1f s\n", m.exec_time);
    std::printf("  energy      : %.1f J\n", m.energy);
    std::printf("  E x D       : %.0f J*s\n", m.exd);
    std::printf("  emergencies : %.1f s\n", m.emergency_time);

    if (!trace_path.empty()) {
        if (platform::saveTraceCsv(trace_path, m.trace)) {
            std::printf("  trace       : %s (%zu samples)\n",
                        trace_path.c_str(), m.trace.size());
        } else {
            std::fprintf(stderr, "failed to write %s\n",
                         trace_path.c_str());
            return 1;
        }
    }
    return 0;
}
