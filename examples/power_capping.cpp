/**
 * @file
 * Fixed-target tracking (the Fig. 15(a) use of a Yukta controller):
 * instead of letting the optimizer search for targets, hold the
 * hardware controller at explicit setpoints -- performance 5.5 BIPS,
 * P_big 2.5 W, P_little 0.2 W, T 70 C -- and watch the closed loop
 * keep the outputs near them.
 */

#include <cstdio>
#include <memory>

#include "controllers/heuristics.h"
#include "core/yukta.h"

using namespace yukta;
using linalg::Vector;

int
main()
{
    auto cfg = platform::BoardConfig::odroidXu3();
    core::ArtifactOptions options;
    options.cache_tag = "example";
    auto artifacts = core::buildArtifacts(cfg, options);

    auto hw = std::make_unique<controllers::SsvHwController>(
        core::makeSsvRuntime(artifacts.hw_ssv),
        controllers::makeHwOptimizer(cfg));
    // The Sec. VI-E1 fixed targets.
    Vector targets{5.5, 2.5, 0.2, 70.0};
    hw->holdTargets(targets);

    auto os = std::make_unique<controllers::CoordinatedOsHeuristic>(cfg);
    platform::Board board(
        cfg, platform::Workload(platform::AppCatalog::get("blackscholes")),
        1);
    controllers::MultilayerSystem system(std::move(board), std::move(hw),
                                         std::move(os));
    system.enableTrace(5.0);
    auto metrics = system.run(200.0);

    std::printf("Targets: %.1f BIPS, %.1f W big, %.2f W little, %.0f C\n\n",
                targets[0], targets[1], targets[2], targets[3]);
    std::printf("  time    BIPS   P_big   temp   f_big  cores\n");
    for (const auto& s : metrics.trace) {
        std::printf("%6.1f  %6.2f  %6.2f  %5.1f  %5.1f   %zu+%zu\n", s.time,
                    s.bips, s.p_big, s.temp, s.f_big, s.big_cores,
                    s.little_cores);
    }
    return 0;
}
