/**
 * @file
 * Scalability to several layers (Sec. III-D): "the controller of a
 * given layer communicates mostly or only with the controllers of its
 * two neighboring layers ... as layer i passes signals to layer i+1,
 * such signals already implicitly include the contribution of layers
 * i-1, i-2, etc."
 *
 * This example builds a synthetic three-layer system (think
 * hardware / OS / cluster-manager) as a chain of coupled MIMO plants,
 * designs one SSV controller per layer, and wires each controller's
 * external signals to its *neighbors only*. The middle layer relays:
 * layer 0 and layer 2 never exchange signals directly, yet the
 * combined system tracks all six outputs.
 */

#include <cstdio>

#include "control/state_space.h"
#include "controllers/ssv_runtime.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "robust/ssv_design.h"

using namespace yukta;
using linalg::Matrix;
using linalg::Vector;

namespace {

/**
 * One synthetic layer: 2 actuated inputs, 2 outputs, plus one
 * external channel that couples it to each declared neighbor.
 */
robust::SsvSpec
layerSpec(unsigned seed, std::size_t num_neighbors)
{
    double s1 = 0.1 * static_cast<double>(seed % 3);
    double s2 = 0.05 * static_cast<double>(seed % 5);
    Matrix a{{0.55 + s2, 0.1}, {0.05, 0.65 - s2}};
    // Columns: [u1, u2, e_1..e_k].
    Matrix b(2, 2 + num_neighbors);
    b.setBlock(0, 0, Matrix{{0.5 + s1, 0.1}, {0.1, 0.45 - s1}});
    for (std::size_t k = 0; k < num_neighbors; ++k) {
        b(0, 2 + k) = 0.12;
        b(1, 2 + k) = 0.08;
    }
    Matrix c{{1.0, 0.2}, {0.15, 1.0}};
    Matrix d(2, 2 + num_neighbors);

    robust::SsvSpec spec;
    spec.model = control::StateSpace(a, b, c, d, 0.5);
    spec.num_inputs = 2;
    spec.num_external = num_neighbors;
    spec.in_min = {0.0, 0.0};
    spec.in_max = {4.0, 4.0};
    spec.in_step = {0.25, 0.25};
    spec.in_weight = {1.0, 1.0};
    spec.out_bound = {0.4, 0.4};
    spec.out_range = {2.0, 2.0};
    spec.guardband = 0.4;
    spec.max_order = 10;
    spec.dk.max_iterations = 1;
    spec.dk.bisection_steps = 10;
    spec.dk.mu_grid = 12;
    return spec;
}

}  // namespace

int
main()
{
    // Layer 0 and layer 2 have one neighbor (the middle layer); the
    // middle layer has two.
    robust::SsvSpec specs[3] = {layerSpec(1, 1), layerSpec(2, 2),
                                layerSpec(3, 1)};

    std::printf("Designing three SSV layer controllers "
                "(neighbor-only coordination)...\n");
    std::vector<controllers::SsvRuntime> runtimes;
    for (int i = 0; i < 3; ++i) {
        auto ctrl = robust::ssvSynthesize(specs[i]);
        if (!ctrl) {
            std::printf("layer %d synthesis failed\n", i);
            return 1;
        }
        std::printf("  layer %d: mu %.2f, gamma %.2f, order %zu\n", i,
                    ctrl->mu_peak, ctrl->gamma, ctrl->k.numStates());
        std::vector<controllers::InputGrid> grids = {
            {0.0, 4.0, 0.25}, {0.0, 4.0, 0.25}};
        runtimes.emplace_back(
            *ctrl, grids, Vector{2.0, 2.0},
            Vector::zeros(specs[i].num_external));
    }

    // Closed loop of the three true plants. The coupling: each
    // layer's external input is the *first actuated input* of its
    // neighbor(s) -- the neighbor "publishes" what it is doing.
    control::StateSpace plants[3] = {specs[0].model, specs[1].model,
                                     specs[2].model};
    Vector x[3];
    Vector y[3];
    Vector u[3];
    for (int i = 0; i < 3; ++i) {
        x[i] = Vector::zeros(plants[i].numStates());
        y[i] = Vector::zeros(2);
        u[i] = Vector{2.0, 2.0};
    }
    // Feasible targets: the steady state of a grid-representable
    // input pattern (u = [2.5, 2.0] on every layer), found by letting
    // the coupled true plants settle open loop.
    Vector targets[3];
    {
        Vector xs[3];
        Vector ys[3];
        Vector us{2.5, 2.0};
        for (int i = 0; i < 3; ++i) {
            xs[i] = Vector::zeros(plants[i].numStates());
            ys[i] = Vector::zeros(2);
        }
        for (int t = 0; t < 400; ++t) {
            Vector e0{us[0] - 2.0};
            Vector e1{us[0] - 2.0, us[0] - 2.0};
            ys[0] = control::stepOnce(plants[0], xs[0],
                                      concat(us - Vector{2.0, 2.0}, e0));
            ys[1] = control::stepOnce(plants[1], xs[1],
                                      concat(us - Vector{2.0, 2.0}, e1));
            ys[2] = control::stepOnce(plants[2], xs[2],
                                      concat(us - Vector{2.0, 2.0}, e0));
        }
        for (int i = 0; i < 3; ++i) {
            targets[i] = ys[i];
        }
    }

    std::printf("\n t   y0           y1           y2\n");
    for (int t = 0; t < 200; ++t) {
        // Controllers run with neighbor-published signals (centered
        // around the shared operating point 2.0).
        Vector e0{u[1][0] - 2.0};
        Vector e1{u[0][0] - 2.0, u[2][0] - 2.0};
        Vector e2{u[1][0] - 2.0};
        u[0] = runtimes[0].invoke(targets[0] - y[0], e0);
        u[1] = runtimes[1].invoke(targets[1] - y[1], e1);
        u[2] = runtimes[2].invoke(targets[2] - y[2], e2);

        // True plants evolve with the same couplings.
        Vector ue0 = concat(u[0] - Vector{2.0, 2.0}, e0);
        Vector ue1 = concat(u[1] - Vector{2.0, 2.0}, e1);
        Vector ue2 = concat(u[2] - Vector{2.0, 2.0}, e2);
        y[0] = control::stepOnce(plants[0], x[0], ue0);
        y[1] = control::stepOnce(plants[1], x[1], ue1);
        y[2] = control::stepOnce(plants[2], x[2], ue2);

        if (t % 25 == 0) {
            std::printf("%3d  %.2f %.2f    %.2f %.2f    %.2f %.2f\n", t,
                        y[0][0], y[0][1], y[1][0], y[1][1], y[2][0],
                        y[2][1]);
        }
    }
    std::printf("\nfinal |deviations| per layer:");
    for (int i = 0; i < 3; ++i) {
        Vector d = targets[i] - y[i];
        std::printf("  [%.2f %.2f]", std::abs(d[0]), std::abs(d[1]));
    }
    std::printf("\nAll three loops are stable with neighbor-only "
                "signal exchange -- layer 0 and layer 2 coordinate "
                "through layer 1's published inputs alone. (Residual "
                "offsets reflect the finite DC gain of bound-based "
                "SSV tracking on a quantized 0.25-step grid.)\n");
    return 0;
}
