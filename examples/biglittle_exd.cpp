/**
 * @file
 * The paper's headline flow: design the two-layer Yukta controller for
 * the simulated ODROID XU3 board and minimize Energy x Delay for a
 * PARSEC-style application, comparing against the coordinated
 * heuristic baseline.
 *
 * The first run performs the full design flow (training campaign,
 * system identification, mu-synthesis); later runs reuse the on-disk
 * controller cache (./yukta_cache).
 */

#include <cstdio>

#include "core/yukta.h"

using namespace yukta;

int
main()
{
    auto cfg = platform::BoardConfig::odroidXu3();

    std::printf("Running the Yukta design flow (cached after first run)...\n");
    core::ArtifactOptions options;
    options.cache_tag = "example";
    auto artifacts = core::buildArtifacts(cfg, options);

    std::printf("\nHW layer: mu=%.2f gamma=%.2f order=%zu\n",
                artifacts.hw_ssv.controller.mu_peak,
                artifacts.hw_ssv.controller.gamma,
                artifacts.hw_ssv.controller.k.numStates());
    std::printf("OS layer: mu=%.2f gamma=%.2f order=%zu\n",
                artifacts.os_ssv.controller.mu_peak,
                artifacts.os_ssv.controller.gamma,
                artifacts.os_ssv.controller.k.numStates());

    const char* app = "blackscholes";
    std::printf("\nRunning %s under two schemes (limits: %.2f W big, "
                "%.2f W little, %.0f C)...\n",
                app, cfg.power_limit_big, cfg.power_limit_little,
                cfg.temp_limit);

    for (auto scheme : {core::Scheme::kCoordinatedHeuristic,
                        core::Scheme::kYuktaHwSsvOsHeuristic,
                        core::Scheme::kYuktaFull}) {
        auto system = core::makeSystem(
            scheme, artifacts,
            platform::Workload(platform::AppCatalog::get(app)), 1);
        auto metrics = system.run(900.0);
        std::printf("%-28s  time %6.1f s  energy %7.1f J  ExD %9.0f  "
                    "emergencies %5.1f s\n",
                    core::schemeName(scheme).c_str(), metrics.exec_time,
                    metrics.energy, metrics.exd, metrics.emergency_time);
    }
    return 0;
}
