#!/usr/bin/env bash
# Re-blesses the committed golden traces under tests/golden/ from the
# pinned scenarios in tests/golden/scenario.h.
#
# Only run this after a *deliberate* behavior change (new controller
# math, new trace fields, plant model fix). Never run it to silence a
# diff you cannot explain -- the diff IS the regression report.
#
# Usage: tools/regen_golden.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -S "$repo" -B "$build" >/dev/null
cmake --build "$build" --target yukta-regen-golden -j >/dev/null

"$build/tests/yukta-regen-golden" "$repo/tests/golden"

echo "Golden traces updated. Review the diff, then commit:"
git -C "$repo" status --short tests/golden/
