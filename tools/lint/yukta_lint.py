#!/usr/bin/env python3
"""yukta-lint: project-specific static analysis for the Yukta tree.

Enforces invariants the generic analyzers (clang-tidy, cppcheck)
cannot express:

  header-guard          src headers carry an include guard named after
                        their path (YUKTA_<DIR>_<FILE>_H_).
  header-self-contained every src/**/*.h compiles standalone.
  banned-rand           no rand()/srand(): sweeps must be reproducible,
                        so all randomness goes through seeded <random>
                        engines.
  float-eq              no ==/!= against floating-point literals; use
                        isApprox()/tolerance helpers, or suppress for
                        deliberate exact comparisons (sentinels,
                        sparsity skips).
  cache-bypass          no direct stream writes to cachePath()/
                        cacheDir() targets; the flock'd atomicWriteFile
                        helper is the only way bytes may reach the
                        result cache (concurrent sweep workers would
                        otherwise tear files).
  atomic-write          no truncating file writes (ofstream without
                        ios::app, fopen "w") in src/: build the bytes
                        in memory and publish with the tmp+rename
                        core::atomicWriteFile helper, so a crash mid-
                        write (or a concurrent reader) never sees a
                        torn file. Benches/tests/examples stream
                        freely; append-mode logs are exempt.
  endl-in-loop          no std::endl inside loops: one flush per
                        iteration serializes the hot reporting paths.
  sensor-construction   no SensorReadings construction outside the
                        platform and fault layers; controllers must
                        consume board.readings() or the supervisor's
                        validated snapshots, never forge telemetry.
  freq-loop             no pointwise freqResponse() calls inside a
                        loop: grid sweeps go through the batched
                        StateSpace::freqResponseBatch engine (O(n^2)
                        per point after one Hessenberg reduction).
                        Oracle comparisons in tests suppress the rule
                        explicitly.
  wall-clock            no std::chrono::system_clock/steady_clock (or
                        C time()) outside src/obs and src/runner:
                        simulated time must come from tick counts so
                        every run is bit-reproducible. Wall-clock
                        reads are confined to the observability layer
                        (obs::Stopwatch, profiling) and the pool's
                        deadline machinery.
  doc-comment           public functions declared in src headers carry
                        a doc comment.

Suppressions:
  // yukta-lint: allow(<rule>)        on the offending line
  // yukta-lint: allow-file(<rule>)   anywhere: whole file

Usage:
  tools/lint/yukta_lint.py [options] [paths...]
    --repo DIR     repository root (default: auto-detected)
    --jobs N       parallel header compiles (default: CPU count)
    --no-compile   skip the header-self-contained check
    --compiler CC  compiler for header checks (default: c++)
    --self-test    run the linter against its own fixtures and exit

Exit status: 0 clean, 1 findings, 2 internal/usage error.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys

RULES = (
    "header-guard",
    "header-self-contained",
    "banned-rand",
    "float-eq",
    "cache-bypass",
    "atomic-write",
    "endl-in-loop",
    "sensor-construction",
    "freq-loop",
    "wall-clock",
    "doc-comment",
)

DEFAULT_PATHS = ("src", "bench", "tests", "examples", "tools")
CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".h", ".hpp")

ALLOW_LINE_RE = re.compile(r"yukta-lint:\s*allow\(([\w,-]+)\)")
ALLOW_FILE_RE = re.compile(r"yukta-lint:\s*allow-file\(([\w,-]+)\)")


class Finding:
    """One rule violation at a file/line."""

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving newlines
    and column positions so findings keep exact line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
            elif ch == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
            elif ch == '"':
                state = "string"
                out.append('"')
                i += 1
            elif ch == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(ch)
                i += 1
        elif state == "line-comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\" and nxt:
                out.append("  ")
                i += 2
            elif ch == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
    return "".join(out)


class FileContext:
    """Shared per-file data for the line-based rules."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        with open(path, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.raw_lines = self.text.splitlines()
        self.code = strip_comments_and_strings(self.text)
        self.code_lines = self.code.splitlines()
        self.file_allows = set()
        for m in ALLOW_FILE_RE.finditer(self.text):
            self.file_allows.update(m.group(1).split(","))

    def allowed(self, rule, line_no):
        if rule in self.file_allows:
            return True
        # The marker may sit on the offending line or the one above.
        for no in (line_no, line_no - 1):
            if 1 <= no <= len(self.raw_lines):
                m = ALLOW_LINE_RE.search(self.raw_lines[no - 1])
                if m and rule in m.group(1).split(","):
                    return True
        return False


# --------------------------------------------------------------------
# Pattern rules
# --------------------------------------------------------------------

RAND_RE = re.compile(r"\b(srand|rand)\s*\(")

FLOAT_LIT = r"[0-9]+\.[0-9]*(?:[eE][+-]?[0-9]+)?[fFlL]?|\.[0-9]+(?:[eE][+-]?[0-9]+)?[fFlL]?"
FLOAT_EQ_RE = re.compile(
    r"(?:(?<![<>=!&|+\-*/%^])(==|!=)\s*[+-]?(?:" + FLOAT_LIT + r"))"
    r"|(?:(?:" + FLOAT_LIT + r")\s*(==|!=)(?![=]))")

CACHE_BYPASS_RE = re.compile(
    r"(ofstream|fopen|freopen|FILE\s*\*)[^;\n]*(cachePath|cacheDir)\s*\(")

# Truncating writes: any ofstream open that is not append-mode, and
# fopen with a "w" mode (checked against the raw line, since string
# literals are blanked in the code view). The rule is line-local; an
# append flag on a continuation line needs a suppression marker.
ATOMIC_OFSTREAM_RE = re.compile(r"\bofstream\b(?![^;\n]*\bapp\b)")
ATOMIC_FOPEN_RE = re.compile(r"\bfopen\s*\(")
ATOMIC_FOPEN_WRITE_MODE_RE = re.compile(r"\"w[b+]*\"")

# Only the durable-artifact producers in src/ are held to the atomic
# publish protocol; bench/test/example drivers stream freely, and the
# helper's own implementation is the one place allowed to open the
# temp file directly.
ATOMIC_WRITE_EXEMPT_PREFIXES = (
    "bench" + os.sep,
    "tests" + os.sep,
    "examples" + os.sep,
)

ENDL_RE = re.compile(r"std\s*::\s*endl")
LOOP_KEYWORD_RE = re.compile(r"\b(for|while|do)\b")

# Pointwise frequency response in a loop; deliberately does not match
# freqResponseBatch. The engine's own implementation is exempt.
FREQ_RESPONSE_RE = re.compile(r"\bfreqResponse\s*\(")
FREQ_LOOP_EXEMPT = (
    os.path.join("src", "control", "state_space.cpp"),
    os.path.join("src", "control", "state_space.h"),
)

# Construction sites only: brace temporaries (`SensorReadings{...}`)
# and named declarations (`SensorReadings obs;` / `obs{...}`). Leaves
# alone references, pointers, value/reference parameters, return
# types on their own line, and copy-initialization from a factory
# (`SensorReadings obs = board.readings()`).
SENSOR_CONSTRUCTION_RE = re.compile(
    r"(?<!struct\s)(?<!class\s)"
    r"\bSensorReadings\b\s*(\{|[A-Za-z_]\w*\s*[;{])")

# The telemetry producers themselves are the only layers allowed to
# build readings from scratch.
SENSOR_EXEMPT_PREFIXES = (
    os.path.join("src", "platform") + os.sep,
    os.path.join("src", "fault") + os.sep,
)

# Wall-clock reads. The chrono alternative matches the clock types
# themselves (declaration or ::now()); the C alternative matches
# time(NULL)/time(nullptr)/time(0)/time(&t) call shapes only. The
# fixed-width lookbehind rejects member calls (`ev.time()`,
# `p->time()`) and identifiers merely ending in `time`, while still
# matching `std::time(` (preceded by ':').
WALL_CLOCK_RE = re.compile(
    r"std\s*::\s*chrono\s*::\s*"
    r"(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|(?<![\w.>])time\s*\(\s*(?:NULL\b|nullptr\b|0\s*\)|&)")

# Only the observability layer (Stopwatch, profiling) and the pool's
# timeout machinery may consult real time; everything else derives
# time from tick counts so runs stay bit-reproducible.
WALL_CLOCK_EXEMPT_PREFIXES = (
    os.path.join("src", "obs") + os.sep,
    os.path.join("src", "runner") + os.sep,
)


def check_patterns(ctx, findings):
    for idx, line in enumerate(ctx.code_lines, start=1):
        if RAND_RE.search(line) and not ctx.allowed("banned-rand", idx):
            findings.append(Finding(
                ctx.rel, idx, "banned-rand",
                "rand()/srand() breaks sweep reproducibility; use a "
                "seeded <random> engine"))
        if FLOAT_EQ_RE.search(line) and not ctx.allowed("float-eq", idx):
            findings.append(Finding(
                ctx.rel, idx, "float-eq",
                "floating-point ==/!= against a literal; use "
                "isApprox()/tolerances or suppress a deliberate exact "
                "comparison"))
        if CACHE_BYPASS_RE.search(line) and \
                ctx.rel != os.path.join("src", "core", "cache.cpp") and \
                not ctx.allowed("cache-bypass", idx):
            findings.append(Finding(
                ctx.rel, idx, "cache-bypass",
                "direct write to a cache path; route bytes through "
                "core::atomicWriteFile so concurrent sweeps never see "
                "torn files"))
        raw = ctx.raw_lines[idx - 1] if idx <= len(ctx.raw_lines) else ""
        truncating = ATOMIC_OFSTREAM_RE.search(line) or (
            ATOMIC_FOPEN_RE.search(line)
            and ATOMIC_FOPEN_WRITE_MODE_RE.search(raw))
        if truncating and \
                ctx.rel != os.path.join("src", "core", "cache.cpp") and \
                not ctx.rel.startswith(ATOMIC_WRITE_EXEMPT_PREFIXES) and \
                not ctx.allowed("atomic-write", idx):
            findings.append(Finding(
                ctx.rel, idx, "atomic-write",
                "truncating file write; build the contents in memory "
                "and publish via core::atomicWriteFile (tmp+rename) so "
                "a crash never leaves a torn file, or suppress a "
                "deliberate streaming/append write"))
        if SENSOR_CONSTRUCTION_RE.search(line) and \
                not ctx.rel.startswith(SENSOR_EXEMPT_PREFIXES) and \
                not ctx.allowed("sensor-construction", idx):
            findings.append(Finding(
                ctx.rel, idx, "sensor-construction",
                "SensorReadings constructed outside the platform/fault "
                "layers; consume board.readings() or the supervisor's "
                "validated snapshot instead of forging telemetry"))
        if WALL_CLOCK_RE.search(line) and \
                not ctx.rel.startswith(WALL_CLOCK_EXEMPT_PREFIXES) and \
                not ctx.allowed("wall-clock", idx):
            findings.append(Finding(
                ctx.rel, idx, "wall-clock",
                "wall-clock read outside src/obs and src/runner; "
                "simulation code derives time from tick counts so runs "
                "stay bit-reproducible -- use obs::Stopwatch for "
                "measurement or suppress a deliberate use"))


def check_endl_in_loop(ctx, findings):
    """Flags std::endl and pointwise freqResponse() lexically inside a
    for/while/do body."""
    depth_stack = []  # True per '{' frame opened by a loop header
    pending = ""      # code since the last statement boundary
    parens = 0        # ';' inside for(...) headers is not a boundary
    for idx, line in enumerate(ctx.code_lines, start=1):
        if ENDL_RE.search(line) or FREQ_RESPONSE_RE.search(line):
            in_loop = any(depth_stack) or bool(
                LOOP_KEYWORD_RE.search(line))
            if in_loop and ENDL_RE.search(line) and \
                    not ctx.allowed("endl-in-loop", idx):
                findings.append(Finding(
                    ctx.rel, idx, "endl-in-loop",
                    "std::endl flushes every iteration; stream '\\n' "
                    "and flush once after the loop"))
            if in_loop and FREQ_RESPONSE_RE.search(line) and \
                    ctx.rel not in FREQ_LOOP_EXEMPT and \
                    not ctx.allowed("freq-loop", idx):
                findings.append(Finding(
                    ctx.rel, idx, "freq-loop",
                    "pointwise freqResponse() inside a loop; sweep "
                    "grids through StateSpace::freqResponseBatch, or "
                    "suppress for a deliberate oracle comparison"))
        for ch in line:
            if ch == "(":
                parens += 1
                pending += ch
            elif ch == ")":
                parens = max(0, parens - 1)
                pending += ch
            elif ch == "{":
                # Braces inside parentheses are init-lists
                # (`for (double w : {1.0, 2.0})`), not scopes; they
                # must not swallow the loop keyword.
                if parens > 0:
                    pending += ch
                else:
                    depth_stack.append(
                        bool(LOOP_KEYWORD_RE.search(pending)))
                    pending = ""
            elif ch == "}":
                if parens > 0:
                    pending += ch
                else:
                    if depth_stack:
                        depth_stack.pop()
                    pending = ""
            elif ch == ";" and parens == 0:
                pending = ""
            else:
                pending += ch
        pending += " "


# --------------------------------------------------------------------
# Header rules
# --------------------------------------------------------------------

def expected_guard(rel_to_src):
    stem = re.sub(r"[^A-Za-z0-9]", "_", rel_to_src)
    return "YUKTA_" + re.sub(r"_h$", "", stem, flags=re.I).upper() + "_H_"


def check_header_guard(ctx, src_root, findings):
    rel = os.path.relpath(ctx.path, src_root)
    want = expected_guard(rel)
    m = re.search(r"#ifndef\s+(\w+)", ctx.code)
    if not m:
        if not ctx.allowed("header-guard", 1):
            findings.append(Finding(
                ctx.rel, 1, "header-guard",
                f"missing include guard (expected {want})"))
        return
    got = m.group(1)
    if got != want and not ctx.allowed("header-guard", 1):
        findings.append(Finding(
            ctx.rel, 1, "header-guard",
            f"include guard {got} does not match path (expected {want})"))


def compile_header(args):
    """Worker: returns (rel, error-text or None)."""
    path, rel, src_root, compiler = args
    cmd = [compiler, "-std=c++20", "-fsyntax-only", "-x", "c++",
           "-I", src_root, path]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
    except (subprocess.TimeoutExpired, OSError) as exc:
        return rel, f"could not run {compiler}: {exc}"
    if proc.returncode != 0:
        first = (proc.stderr.strip() or "compile failed").splitlines()[0]
        return rel, first
    return rel, None


# --------------------------------------------------------------------
# doc-comment rule
# --------------------------------------------------------------------

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "static_assert", "alignas", "alignof", "decltype", "noexcept",
    "throw", "new", "delete", "void", "int", "double", "float", "bool",
    "char", "auto", "do", "else", "case", "default", "using", "typedef",
    "namespace", "template", "typename", "static_cast", "const_cast",
    "reinterpret_cast", "dynamic_cast", "requires", "concept", "assert",
    "defined",
}

ACCESS_RE = re.compile(r"^\s*(public|private|protected)\s*:")
CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)[^;{]*$")


def is_doc_line(raw):
    s = raw.strip()
    return s.startswith("//") or s.startswith("/*") or s.endswith("*/") \
        or s.startswith("*")


def check_doc_comments(ctx, findings):
    """Public function declarations in headers need a doc comment.

    Heuristic parser: tracks class/struct scope + access specifier and
    joins continuation lines. A declaration is documented when the
    previous non-blank line is (part of) a comment, carries a trailing
    ///< comment, or directly follows another documented one-line
    declaration (comment groups over accessor blocks). Operators and
    `= default` / `= delete` declarations are exempt.
    """
    lines = ctx.code_lines
    # (kind, access) per '{' frame; kind in {"ns", "class", "other"}
    scope = []
    prev_documented = False
    prev_was_comment = False
    pending_header = ""  # text preceding an unconsumed '{'
    i = 0
    while i < len(lines):
        code = lines[i]
        raw = ctx.raw_lines[i] if i < len(ctx.raw_lines) else ""
        idx = i + 1
        stripped = code.strip()

        if not stripped:
            if raw.strip():
                # Pure comment line: a following declaration counts as
                # documented.
                prev_was_comment = is_doc_line(raw)
            else:
                # Blank line: the comment no longer attaches, and the
                # accessor group (if any) is broken.
                prev_was_comment = False
                prev_documented = False
            i += 1
            continue

        if ACCESS_RE.match(stripped):
            for fr in reversed(scope):
                if fr[0] == "class":
                    fr[1] = ACCESS_RE.match(stripped).group(1)
                    break
            prev_was_comment = False
            prev_documented = False
            i += 1
            continue

        if stripped.startswith("#") or stripped.startswith("}"):
            for ch in stripped:
                if ch == "{":
                    scope.append(["other", ""])
                elif ch == "}" and scope:
                    scope.pop()
            prev_was_comment = False
            prev_documented = False
            i += 1
            continue

        # Join continuation lines until the statement closes.
        joined = stripped
        j = i
        while not re.search(r"[;{}]\s*$", joined) and j + 1 < len(lines):
            j += 1
            joined += " " + lines[j].strip()
            if j - i > 12:
                break

        documented = (prev_was_comment or is_doc_line(raw)
                      or "///<" in (ctx.raw_lines[j]
                                    if j < len(ctx.raw_lines) else "")
                      or prev_documented)

        public_scope = all(
            fr[0] == "ns" or (fr[0] == "class" and fr[1] == "public")
            for fr in scope)

        decl = joined
        is_function = False
        name = ""
        if "(" in decl and not decl.startswith("#"):
            head = decl.split("(", 1)[0]
            m = re.search(r"([A-Za-z_]\w*)\s*$", head)
            if m:
                name = m.group(1)
                is_function = (name not in CPP_KEYWORDS
                               and "operator" not in head
                               and not re.match(r"^\s*(class|struct|enum)\b",
                                                decl))
        exempt = ("= default" in decl or "= delete" in decl
                  or "operator" in decl or decl.startswith("friend"))

        if (is_function and public_scope and not documented and not exempt
                and ctx.rel.endswith(".h")
                and not ctx.allowed("doc-comment", idx)):
            findings.append(Finding(
                ctx.rel, idx, "doc-comment",
                f"public function '{name}' has no doc comment"))

        # Update scope with braces in the joined region.
        header_text = ""
        for k in range(i, j + 1):
            for ch in lines[k]:
                if ch == "{":
                    if re.search(r"\bnamespace\b", header_text):
                        scope.append(["ns", ""])
                    elif CLASS_RE.search(header_text):
                        kind = CLASS_RE.search(header_text).group(1)
                        scope.append(
                            ["class",
                             "public" if kind == "struct" else "private"])
                    else:
                        scope.append(["other", ""])
                    header_text = ""
                elif ch == "}":
                    if scope:
                        scope.pop()
                    header_text = ""
                elif ch == ";":
                    header_text = ""
                else:
                    header_text += ch
            header_text += " "

        prev_documented = documented and is_function and j == i
        prev_was_comment = False
        i = j + 1


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def iter_files(root, paths, exclude_fixtures=True):
    for base in paths:
        full = os.path.join(root, base)
        if os.path.isfile(full):
            if full.endswith(CPP_EXTENSIONS):
                yield full
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = [d for d in dirnames
                           if d not in (".git", "build")
                           and not d.startswith("build")]
            if exclude_fixtures and \
                    os.path.basename(dirpath) == "fixtures":
                continue
            for fn in sorted(filenames):
                if fn.endswith(CPP_EXTENSIONS):
                    yield os.path.join(dirpath, fn)


def lint_tree(root, paths, jobs, compile_headers=True, compiler="c++"):
    findings = []
    src_root = os.path.join(root, "src")
    headers_to_compile = []
    for path in iter_files(root, paths):
        rel = os.path.relpath(path, root)
        try:
            ctx = FileContext(path, rel)
        except OSError as exc:
            findings.append(Finding(rel, 1, "io", str(exc)))
            continue
        check_patterns(ctx, findings)
        check_endl_in_loop(ctx, findings)
        in_src = rel.split(os.sep, 1)[0] == "src"
        if in_src and rel.endswith(".h"):
            check_header_guard(ctx, src_root, findings)
            check_doc_comments(ctx, findings)
            if "header-self-contained" not in ctx.file_allows:
                headers_to_compile.append(
                    (path, rel, src_root, compiler))
    if compile_headers and headers_to_compile:
        with concurrent.futures.ThreadPoolExecutor(jobs) as pool:
            for rel, err in pool.map(compile_header, headers_to_compile):
                if err is not None:
                    findings.append(Finding(
                        rel, 1, "header-self-contained",
                        f"header does not compile standalone: {err}"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def self_test(root, compiler):
    """Lints the fixture files and asserts the expected outcomes."""
    fixture_dir = os.path.join(root, "tools", "lint", "fixtures")
    bad_src = os.path.join(fixture_dir, "bad_fixture.cpp")
    good_src = os.path.join(fixture_dir, "good_fixture.cpp")

    ok = True

    ctx = FileContext(bad_src, os.path.relpath(bad_src, root))
    bad = []
    check_patterns(ctx, bad)
    check_endl_in_loop(ctx, bad)
    got = {f.rule for f in bad}
    want = {"banned-rand", "float-eq", "cache-bypass", "atomic-write",
            "endl-in-loop", "sensor-construction", "freq-loop",
            "wall-clock"}
    for rule in sorted(want):
        status = "ok" if rule in got else "MISSING"
        print(f"self-test: bad_fixture triggers {rule:<18} {status}")
        ok &= rule in got
    unexpected = got - want
    if unexpected:
        print(f"self-test: unexpected rules on bad fixture: {unexpected}")
        ok = False

    ctx = FileContext(good_src, os.path.relpath(good_src, root))
    good = []
    check_patterns(ctx, good)
    check_endl_in_loop(ctx, good)
    print(f"self-test: good_fixture findings = {len(good)} "
          f"{'ok' if not good else 'FAIL'}")
    for f in good:
        print(f"    {f}")
    ok &= not good

    # Header rules against the fixture headers.
    bad_hdr = os.path.join(fixture_dir, "bad_header.h")
    ctx = FileContext(bad_hdr, os.path.relpath(bad_hdr, root))
    hdr = []
    check_header_guard(ctx, fixture_dir, hdr)
    check_doc_comments(ctx, hdr)
    # ctx.rel does not end in src/, so doc rule needs the .h suffix only.
    got = {f.rule for f in hdr}
    for rule in ("header-guard", "doc-comment"):
        status = "ok" if rule in got else "MISSING"
        print(f"self-test: bad_header triggers  {rule:<18} {status}")
        ok &= rule in got
    rel, err = compile_header((bad_hdr, "bad_header.h", fixture_dir,
                               compiler))
    print(f"self-test: bad_header fails standalone compile "
          f"{'ok' if err else 'FAIL'}")
    ok &= err is not None

    good_hdr = os.path.join(fixture_dir, "good_header.h")
    ctx = FileContext(good_hdr, os.path.relpath(good_hdr, root))
    hdr = []
    check_header_guard(ctx, fixture_dir, hdr)
    check_doc_comments(ctx, hdr)
    print(f"self-test: good_header findings = {len(hdr)} "
          f"{'ok' if not hdr else 'FAIL'}")
    for f in hdr:
        print(f"    {f}")
    ok &= not hdr
    rel, err = compile_header((good_hdr, "good_header.h", fixture_dir,
                               compiler))
    print(f"self-test: good_header compiles standalone "
          f"{'ok' if not err else 'FAIL: ' + str(err)}")
    ok &= err is None

    print("self-test:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def find_repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))


def main(argv):
    ap = argparse.ArgumentParser(prog="yukta-lint", add_help=True)
    ap.add_argument("--repo", default=find_repo_root())
    ap.add_argument("--jobs", type=int,
                    default=max(1, os.cpu_count() or 1))
    ap.add_argument("--no-compile", action="store_true")
    ap.add_argument("--compiler", default=os.environ.get("CXX", "c++"))
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS))
    args = ap.parse_args(argv)

    root = os.path.abspath(args.repo)
    if args.self_test:
        return self_test(root, args.compiler)

    paths = args.paths or list(DEFAULT_PATHS)
    findings = lint_tree(root, paths, args.jobs,
                         compile_headers=not args.no_compile,
                         compiler=args.compiler)
    for f in findings:
        print(f)
    if findings:
        print(f"yukta-lint: {len(findings)} finding(s)")
        return 1
    print("yukta-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
