// Clean counterpart of bad_fixture.cpp: the linter must report
// nothing here, including for the suppressed exact comparison.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>

namespace yukta::platform {
struct SensorReadings {
    double p_big = 0.0;
};
}  // namespace yukta::platform

// A member named `time` is not a wall-clock read; the rule matches
// the clock types and the C call shapes only.
struct Event {
    double time() const { return 0.5; }
};

double freqResponse(double w);       // stand-ins: the freq-loop rule
double freqResponseBatch(double w);  // is lexical

// Consuming readings by reference is fine everywhere; only
// construction is restricted to the platform/fault layers.
double readPower(const yukta::platform::SensorReadings& obs)
{
    return obs.p_big;
}

int main()
{
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    double x = dist(rng);

    if (x == 0.0) {  // yukta-lint: allow(float-eq) exact sentinel
        return 1;
    }
    if (std::abs(x - 0.1) < 1e-12) {
        return 2;
    }

    for (int i = 0; i < 3; ++i) {
        std::cout << i << "\n";
        // yukta-lint: allow(freq-loop) deliberate oracle comparison
        x += freqResponse(static_cast<double>(i));
    }
    std::cout << std::endl;  // flush once, outside the loop: fine
    // Batched sweeps never trigger the rule, in or out of loops.
    x += freqResponseBatch(x);

    // Append-mode streams and read-only fopen never truncate, so the
    // atomic-write rule leaves both alone.
    std::ofstream log("run.log", std::ios::app);
    log << x << "\n";
    std::FILE* in = std::fopen("data.bin", "rb");
    if (in != nullptr) {
        std::fclose(in);
    }

    // Simulated timestamps and member accessors are not wall-clock
    // reads; a deliberate read outside src/obs is suppressible.
    Event ev;
    x += ev.time();
    // yukta-lint: allow(wall-clock) deliberate fixture demonstration
    auto real = std::chrono::steady_clock::now();
    (void)real;
    return 0;
}
