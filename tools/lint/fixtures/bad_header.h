#ifndef WRONG_GUARD_NAME
#define WRONG_GUARD_NAME

// Deliberately bad header for --self-test:
//  - include guard does not match the path (header-guard)
//  - uses std::string without including <string>, so it does not
//    compile standalone (header-self-contained)
//  - declares a public function with no doc comment (doc-comment)

namespace fixture {

std::string undocumentedFunction(int value);

}  // namespace fixture

#endif  // WRONG_GUARD_NAME
