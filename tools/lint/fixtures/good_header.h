#ifndef YUKTA_GOOD_HEADER_H_
#define YUKTA_GOOD_HEADER_H_

/**
 * @file
 * Clean fixture header: self-contained, guard matches the path, and
 * every public function is documented.
 */

#include <string>

namespace fixture {

/** @return @p value rendered as a decimal string. */
std::string documentedFunction(int value);

/** A documented class with documented public members. */
class Documented
{
  public:
    /** Creates an empty instance. */
    Documented() = default;

    /** @return the stored label. */
    const std::string& label() const { return label_; }

  private:
    std::string label_;
};

}  // namespace fixture

#endif  // YUKTA_GOOD_HEADER_H_
