// Deliberately bad file: every pattern rule must fire on it.
// Exercised by `yukta_lint.py --self-test` (and the ctest wrapper);
// excluded from normal tree lints.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>

std::string cachePath(const std::string& key);
double freqResponse(double w);  // stand-in: the rule is lexical

namespace yukta::platform {
struct SensorReadings {
    double p_big = 0.0;
};
}  // namespace yukta::platform

int main()
{
    // sensor-construction: only the platform/fault layers may forge
    // telemetry snapshots.
    yukta::platform::SensorReadings forged{};
    forged.p_big = 1.0;

    srand(42);                       // banned-rand
    double x = static_cast<double>(rand());  // banned-rand

    // wall-clock: simulation code must derive time from tick counts.
    auto t0 = std::chrono::steady_clock::now();
    (void)t0;
    std::time_t wall = time(NULL);   // wall-clock (C shape)
    (void)wall;

    if (x == 0.1) {                  // float-eq
        return 1;
    }

    // cache-bypass + atomic-write: writing to the result cache without
    // the atomic helper tears files under concurrent sweep workers.
    std::ofstream out(cachePath("k"));
    out << x;

    // atomic-write (C shape): a truncating fopen can leave a torn
    // file behind a crash mid-write.
    std::FILE* raw = std::fopen("out.bin", "wb");
    if (raw != nullptr) {
        std::fclose(raw);
    }

    for (int i = 0; i < 3; ++i) {
        std::cout << i << std::endl;  // endl-in-loop
        x += freqResponse(static_cast<double>(i));  // freq-loop
    }

    // The init-list braces in the range header must not swallow the
    // loop keyword (regression: the body used to escape loop rules).
    for (double w : {0.5, 1.5}) {
        x += freqResponse(w);         // freq-loop
    }
    return 0;
}
