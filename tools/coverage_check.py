#!/usr/bin/env python3
"""Line-coverage floor check for gcov-instrumented builds.

Walks a -DYUKTA_COVERAGE=ON build tree for .gcda files (so the test
suite must have run first), asks gcov for JSON intermediate records,
merges them per source file (a line counts as covered when any
translation unit executed it), and enforces a floor on the aggregate
line coverage of the audited directories -- by default the controller
and fault-injection layers (including the batched tick engine), where
an untested branch means an unverified degradation path, the linalg
GEMM kernel the batch engine's bit-identity rests on, and the system
identification layer (RLS + drift detection) the online adaptation
loop's no-false-swap guarantee rests on.

Usage:
  tools/coverage_check.py --build-dir build-cov [--floor 70]
      [--prefix src/controllers --prefix src/fault]
      [--summary coverage.md]

Exit status: 0 floor met, 1 floor missed or no data, 2 usage error.
"""

import argparse
import json
import os
import subprocess
import sys

DEFAULT_PREFIXES = ("src/controllers", "src/fault", "src/linalg/gemm.cpp",
                    "src/sysid")


def find_gcda(build_dir):
    """All .gcda files under the build tree (deterministic order)."""
    hits = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                hits.append(os.path.join(root, name))
    return sorted(hits)


def gcov_records(gcda):
    """Yields parsed gcov JSON documents for one .gcda file."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, check=False)
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith(b"{"):
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def merge_coverage(build_dir, repo_root):
    """{repo-relative source: (instrumented set, covered set)}."""
    per_file = {}
    for gcda in find_gcda(build_dir):
        for doc in gcov_records(gcda):
            cwd = doc.get("current_working_directory", "")
            for record in doc.get("files", []):
                path = record.get("file", "")
                if not os.path.isabs(path):
                    path = os.path.join(cwd, path)
                path = os.path.realpath(path)
                rel = os.path.relpath(path, repo_root)
                if rel.startswith(".."):
                    continue  # System/third-party header.
                lines, covered = per_file.setdefault(rel, (set(), set()))
                for ln in record.get("lines", []):
                    number = ln.get("line_number")
                    if number is None:
                        continue
                    lines.add(number)
                    if ln.get("count", 0) > 0:
                        covered.add(number)
    return per_file


def main():
    parser = argparse.ArgumentParser(
        description="enforce a gcov line-coverage floor")
    parser.add_argument("--build-dir", required=True,
                        help="coverage-instrumented build tree (post-ctest)")
    parser.add_argument("--floor", type=float, default=70.0,
                        help="minimum aggregate line coverage in percent")
    parser.add_argument("--prefix", action="append", default=[],
                        help="repo-relative dir to audit (repeatable; "
                             f"default: {', '.join(DEFAULT_PREFIXES)})")
    parser.add_argument("--summary", default="",
                        help="also append a markdown table to this file "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args()

    repo_root = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    prefixes = tuple(args.prefix) or DEFAULT_PREFIXES

    if not os.path.isdir(args.build_dir):
        print(f"coverage: build dir '{args.build_dir}' does not exist",
              file=sys.stderr)
        return 2

    per_file = merge_coverage(args.build_dir, repo_root)
    audited = {
        rel: sets for rel, sets in sorted(per_file.items())
        if any(rel.startswith(p.rstrip("/") + "/") or rel == p
               for p in prefixes)
    }
    if not audited:
        print("coverage: no .gcda data for the audited paths -- did the "
              "tests run in the coverage build?", file=sys.stderr)
        return 1

    rows = []
    total_lines = 0
    total_covered = 0
    for rel, (lines, covered) in audited.items():
        total_lines += len(lines)
        total_covered += len(covered)
        pct = 100.0 * len(covered) / len(lines) if lines else 100.0
        rows.append((rel, len(covered), len(lines), pct))

    aggregate = 100.0 * total_covered / total_lines if total_lines else 0.0
    ok = aggregate >= args.floor

    width = max(len(r[0]) for r in rows)
    print(f"line coverage over {', '.join(prefixes)}:")
    for rel, covered, lines, pct in rows:
        print(f"  {rel:<{width}}  {covered:>5}/{lines:<5}  {pct:6.1f}%")
    print(f"  {'TOTAL':<{width}}  {total_covered:>5}/{total_lines:<5}  "
          f"{aggregate:6.1f}%  (floor {args.floor:.1f}%)")
    print(f"coverage: {'OK' if ok else 'BELOW FLOOR'}")

    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write("### Line coverage (controllers + fault)\n\n")
            fh.write("| file | covered | lines | % |\n")
            fh.write("|---|---:|---:|---:|\n")
            for rel, covered, lines, pct in rows:
                fh.write(f"| `{rel}` | {covered} | {lines} | {pct:.1f} |\n")
            fh.write(f"| **total** | {total_covered} | {total_lines} | "
                     f"**{aggregate:.1f}** |\n\n")
            fh.write(f"Floor: {args.floor:.1f}% — "
                     f"{'✅ met' if ok else '❌ missed'}\n")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
