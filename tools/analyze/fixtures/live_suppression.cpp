// Fixture: every annotation here still masks a real finding, so the
// staleness pass must stay silent.
#include <cstdlib>

int liveSuppression()
{
    int noise = rand();  // yukta-lint: allow(banned-rand)
    const char* home = std::getenv("HOME");  // yukta-audit: allow(getenv)
    return noise + static_cast<int>(home != nullptr);
}
