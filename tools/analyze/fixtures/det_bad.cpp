// Fixture: one violation per determinism/FP source rule.  Audited by
// yukta_audit.py --self-test with rel path src/det/det_bad.cpp.
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <numeric>
#include <random>
#include <unordered_map>
#include <vector>

int detBad(const std::vector<double>& v)
{
    std::unordered_map<int, int> histogram;            // unordered-iter
    std::map<int*, int> by_address;                    // ptr-key
    std::hash<void*> addr_hash;                        // ptr-hash
    static int call_count = 0;                         // static-state
    std::random_device entropy;                        // random-device
    const char* home = std::getenv("HOME");            // getenv
    std::filesystem::directory_iterator entries{"."};  // dir-iter
    double total = std::reduce(v.begin(), v.end());    // fp-reduce
    float narrowed = 0.0F;                             // float-acc

    ++call_count;
    histogram[0] = static_cast<int>(entropy());
    by_address[&histogram[0]] = 1;
    narrowed += static_cast<float>(total);
    return call_count + static_cast<int>(addr_hash(nullptr) != 0U) +
           static_cast<int>(home != nullptr) +
           static_cast<int>(std::distance(
               std::filesystem::begin(entries),
               std::filesystem::end(entries))) +
           static_cast<int>(narrowed);
}
