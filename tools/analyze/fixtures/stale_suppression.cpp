// Fixture: every annotation here is dead -- the code it once excused
// is gone -- so the staleness pass must flag all three.
int staleSuppression()
{
    int x = 2;  // yukta-lint: allow(banned-rand) rand() removed long ago
    int y = 3;  // yukta-audit: allow(getenv) getenv() removed long ago
    return x + y;  // yukta-audit: allow(no-such-rule)
}
