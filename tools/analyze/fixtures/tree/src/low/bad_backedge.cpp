// Deliberate layer back-edge: low may not include top.
#include "top/top.h"

int badBackedge() { return topValue(); }
