#include "low/low.h"

int lowTwice() { return lowValue() + lowValue(); }
