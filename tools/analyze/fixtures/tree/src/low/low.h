#ifndef FIXTURE_LOW_H_
#define FIXTURE_LOW_H_

// Bottom-layer fixture: depends on nothing.
inline int lowValue() { return 1; }

#endif  // FIXTURE_LOW_H_
