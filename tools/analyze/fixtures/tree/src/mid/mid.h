#ifndef FIXTURE_MID_H_
#define FIXTURE_MID_H_

// Declared edge mid -> low: clean.
#include "low/low.h"

inline int midValue() { return lowValue() + 1; }

#endif  // FIXTURE_MID_H_
