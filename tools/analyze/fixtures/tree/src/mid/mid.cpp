#include "mid/mid.h"

int midTwice() { return midValue() + midValue(); }
