// Deliberate skip-layer include: low is below top but is not one of
// top's declared direct dependencies.
#include "low/low.h"

int skipLayer() { return lowValue(); }
