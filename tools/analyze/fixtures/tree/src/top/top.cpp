#include "top/top.h"

int topTwice() { return topValue() + topValue(); }
