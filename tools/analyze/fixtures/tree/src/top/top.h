#ifndef FIXTURE_TOP_H_
#define FIXTURE_TOP_H_

// Declared edge top -> mid: clean.
#include "mid/mid.h"

inline int topValue() { return midValue() + 1; }

#endif  // FIXTURE_TOP_H_
