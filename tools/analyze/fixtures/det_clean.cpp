// Fixture: deterministic code that must produce zero audit findings.
// Audited by yukta_audit.py --self-test with rel path
// src/det/det_clean.cpp.
#include <map>
#include <numeric>
#include <random>
#include <vector>

namespace {

// Ordered container keyed by value: iteration order is stable.
std::map<int, int> makeTable() { return {{1, 2}, {3, 4}}; }

// Constant tables and helper functions may be static.
static const int kWeights[] = {1, 2, 3};
static constexpr double kScale = 0.5;
static int helper(int x) { return x * kWeights[0]; }

}  // namespace

double detClean(const std::vector<double>& v, unsigned seed)
{
    // Seeded engine: randomness comes from config, not the OS.
    std::mt19937_64 engine(seed);
    double total = std::accumulate(v.begin(), v.end(), 0.0);
    total += kScale * static_cast<double>(helper(
        static_cast<int>(engine() % 7U)));
    for (const auto& [key, value] : makeTable()) {
        total += static_cast<double>(key * value);
    }
    return total;
}
