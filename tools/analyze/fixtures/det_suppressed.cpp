// Fixture: the same violations as det_bad.cpp, each carrying a
// yukta-audit annotation, so the suppressed run reports nothing and
// every annotation is live for the staleness pass.
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <numeric>
#include <random>
#include <unordered_map>
#include <vector>

int detSuppressed(const std::vector<double>& v)
{
    // yukta-audit: allow(unordered-iter) construct-and-lookup only
    std::unordered_map<int, int> histogram;
    std::map<int*, int> by_address;  // yukta-audit: allow(ptr-key)
    std::hash<void*> addr_hash;      // yukta-audit: allow(ptr-hash)
    static int call_count = 0;       // yukta-audit: allow(static-state)
    std::random_device entropy;      // yukta-audit: allow(random-device)
    const char* home = std::getenv("HOME");  // yukta-audit: allow(getenv)
    // yukta-audit: allow(dir-iter) entries sorted before use
    std::filesystem::directory_iterator entries{"."};
    // yukta-audit: allow(fp-reduce) single-threaded overload
    double total = std::reduce(v.begin(), v.end());
    float narrowed = 0.0F;  // yukta-audit: allow(float-acc)

    ++call_count;
    histogram[0] = static_cast<int>(entropy());
    by_address[&histogram[0]] = 1;
    // yukta-audit: allow(float-acc) deliberate narrowing under test
    narrowed += static_cast<float>(total);
    return call_count + static_cast<int>(addr_hash(nullptr) != 0U) +
           static_cast<int>(home != nullptr) +
           static_cast<int>(std::distance(
               std::filesystem::begin(entries),
               std::filesystem::end(entries))) +
           static_cast<int>(narrowed);
}
