#!/usr/bin/env python3
"""yukta-audit: compile-commands-driven determinism & layering analysis.

A second, deeper static-analysis pass that complements yukta-lint:
where the linter greps files, the auditor consumes
build/compile_commands.json, so it sees exactly the translation units
CI compiles, the flags they compile with, and the project include
graph they pull in.

Analyses:

  layering          every #include edge between project files must be
                    declared in the layer DAG (tools/analyze/
                    layers.toml).  Back-edges (including a layer that
                    is not strictly below you) and skip-layer includes
                    (a layer below you that your layer has not
                    declared as a direct dependency) are both errors.
                    The observed layer graph can be emitted as DOT
                    (--dot) and pinned against a golden edge list
                    (--graph-golden).

  determinism       fleet/sweep results are a pure function of config,
                    bit-identical for 1-vs-N workers.  Sources of
                    hidden nondeterminism are banned in simulation
                    code:
                      unordered-iter   unordered_map/unordered_set
                                       (iteration order is
                                       implementation-defined; allow()
                                       only for construct-and-lookup
                                       use that never iterates)
                      ptr-key          ordered containers keyed by
                                       pointer (ASLR-dependent order)
                      ptr-hash         std::hash of a pointer type
                      static-state     mutable function-local static /
                                       thread_local state outside
                                       core+runner
                      random-device    std::random_device (seeds must
                                       come from config)
                      getenv           environment reads outside
                                       runner+tools
                      dir-iter         directory iteration (readdir
                                       order); allow() when the result
                                       is sorted before use

  fp-reproducibility  per-TU compile flags are audited for
                    -ffast-math / -Ofast / -ffp-contract=fast /
                    -march=native drift (fp-flags, fp-drift), and the
                    sources for std::reduce / parallel execution
                    policies (fp-reduce) and float narrowing inside
                    the double pipeline (float-acc).

  stale-suppression every `yukta-lint: allow(...)` and
                    `yukta-audit: allow(...)` annotation must still
                    mask a live finding; an annotation that suppresses
                    nothing is itself an error, so suppressions cannot
                    outlive the code they excused.

Suppressions:
  // yukta-audit: allow(<rule>)        on the offending line or the
                                       line above
  // yukta-audit: allow-file(<rule>)   anywhere: whole file

Usage:
  tools/analyze/yukta_audit.py [options]
    --repo DIR           repository root (default: auto-detected)
    --compdb FILE        compile_commands.json (default:
                         <repo>/build/compile_commands.json)
    --layers FILE        layer config (default: tools/analyze/layers.toml)
    --dot FILE           write the observed layer graph as DOT
    --emit-graph         print the observed layer edge list and exit
    --graph-golden FILE  fail unless the observed layer edge list
                         matches FILE exactly
    --sarif FILE         write findings as SARIF 2.1.0
    --self-test          run against tools/analyze/fixtures/ and exit

Exit status: 0 clean, 1 findings, 2 internal/usage error.
"""

import argparse
import fnmatch
import json
import os
import re
import sys
import tomllib

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "lint"))
import yukta_lint as lint  # noqa: E402  (shared strip/FileContext/rules)

AUDIT_RULES = (
    "layering",
    "unordered-iter",
    "ptr-key",
    "ptr-hash",
    "static-state",
    "random-device",
    "getenv",
    "dir-iter",
    "fp-flags",
    "fp-drift",
    "fp-reduce",
    "float-acc",
    "stale-suppression",
)

ALLOW_LINE_RE = re.compile(r"yukta-audit:\s*allow\(([\w,-]+)\)")
ALLOW_FILE_RE = re.compile(r"yukta-audit:\s*allow-file\(([\w,-]+)\)")

RULE_HELP = {
    "unordered-iter":
        "unordered container: iteration order is implementation-"
        "defined and breaks 1-vs-N digest identity; use std::map/"
        "std::set or a sorted vector, or annotate a construct-and-"
        "lookup-only use",
    "ptr-key":
        "ordered container keyed by pointer: ASLR makes the order "
        "differ across runs; key by a stable id instead",
    "ptr-hash":
        "std::hash of a pointer hashes the address, which differs "
        "across runs; hash a stable id instead",
    "static-state":
        "mutable static/thread_local state is hidden cross-run "
        "coupling; thread it through explicit config/state objects, "
        "or annotate a deliberate process-wide singleton",
    "random-device":
        "std::random_device draws from the OS entropy pool; all "
        "randomness must come from config-carried seeds",
    "getenv":
        "environment read outside runner/tools makes the run a "
        "function of the process environment, not the config",
    "dir-iter":
        "directory iteration order is filesystem-dependent; sort the "
        "entries before use and annotate, or enumerate from config",
    "fp-reduce":
        "std::reduce / parallel execution policies reassociate "
        "floating-point reductions nondeterministically; use "
        "std::accumulate or an explicit loop",
    "float-acc":
        "float narrowing inside the double-precision pipeline loses "
        "bits silently; keep accumulators and temporaries double",
}


class Finding:
    """One audit finding at a file/line."""

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------
# Layer configuration
# --------------------------------------------------------------------

class LayerConfig:
    """Parsed layers.toml: the layer DAG, path overrides, harness
    directories, and per-rule scoping."""

    def __init__(self, data):
        self.deps = {}
        for name, spec in data.get("layers", {}).items():
            self.deps[name] = list(spec.get("deps", []))
        for name, deps in self.deps.items():
            for d in deps:
                if d not in self.deps:
                    raise ValueError(
                        f"layer '{name}' depends on undeclared layer '{d}'")
        self.overrides = list(data.get("overrides", {}).items())
        self.harness = tuple(data.get("harness", []))
        rules = data.get("rules", {})
        self.rule_exempt = {
            name: tuple(spec.get("exempt", []))
            for name, spec in rules.items()}
        self.rule_scope = {
            name: tuple(spec.get("scope", []))
            for name, spec in rules.items() if "scope" in spec}
        self.banned_flags = tuple(
            rules.get("fp-flags", {}).get("banned", []))
        self._check_acyclic()
        self._below = self._transitive_below()

    def _check_acyclic(self):
        state = {}  # 0 visiting, 1 done

        def visit(n, stack):
            if state.get(n) == 1:
                return
            if state.get(n) == 0:
                cycle = " -> ".join(stack + [n])
                raise ValueError(f"layer DAG has a cycle: {cycle}")
            state[n] = 0
            for d in self.deps.get(n, ()):
                visit(d, stack + [n])
            state[n] = 1

        for n in self.deps:
            visit(n, [])

    def _transitive_below(self):
        below = {}

        def walk(n):
            if n in below:
                return below[n]
            acc = set()
            for d in self.deps.get(n, ()):
                acc.add(d)
                acc |= walk(d)
            below[n] = acc
            return acc

        for n in self.deps:
            walk(n)
        return below

    def layer_of(self, rel):
        """Maps a repo-relative path to a layer name, 'harness', or
        None (outside the audited tree)."""
        norm = rel.replace(os.sep, "/")
        for pattern, layer in self.overrides:
            if fnmatch.fnmatch(norm, pattern):
                return layer
        parts = norm.split("/")
        if parts[0] in self.harness:
            return "harness"
        if parts[0] == "src" and len(parts) > 1:
            return parts[1]
        return None

    def strictly_below(self, layer, other):
        return other in self._below.get(layer, set())


def load_layers(path):
    with open(path, "rb") as f:
        return LayerConfig(tomllib.load(f))


# --------------------------------------------------------------------
# compile_commands.json + include graph
# --------------------------------------------------------------------

def load_compdb(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def command_args(entry):
    if "arguments" in entry:
        return list(entry["arguments"])
    # shlex-lite: the exported commands never quote paths with spaces.
    return entry.get("command", "").split()


def include_dirs(entry):
    dirs = []
    args = command_args(entry)
    i = 0
    while i < len(args):
        a = args[i]
        if a == "-I" and i + 1 < len(args):
            dirs.append(args[i + 1])
            i += 2
            continue
        if a.startswith("-I"):
            dirs.append(a[2:])
        i += 1
    base = entry.get("directory", "")
    return [d if os.path.isabs(d) else os.path.join(base, d)
            for d in dirs]


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


class IncludeGraph:
    """Project-file include edges reachable from the compdb TUs."""

    def __init__(self, repo):
        self.repo = repo
        self.files = {}      # rel -> text
        self.edges = set()   # (from_rel, line, to_rel)

    def _rel(self, path):
        path = os.path.realpath(path)
        repo = os.path.realpath(self.repo)
        if not path.startswith(repo + os.sep):
            return None
        return os.path.relpath(path, repo)

    def _read(self, rel):
        if rel not in self.files:
            with open(os.path.join(self.repo, rel), encoding="utf-8",
                      errors="replace") as f:
                self.files[rel] = f.read()
        return self.files[rel]

    def add_tu(self, entry):
        rel = self._rel(entry["file"])
        if rel is None:
            return
        incdirs = include_dirs(entry)
        seen_here = set()
        stack = [rel]
        while stack:
            cur = stack.pop()
            if cur in seen_here:
                continue
            seen_here.add(cur)
            try:
                text = self._read(cur)
            except OSError:
                continue
            cur_dir = os.path.join(self.repo, os.path.dirname(cur))
            for m in INCLUDE_RE.finditer(text):
                target = m.group(1)
                line = text.count("\n", 0, m.start()) + 1
                resolved = None
                for base in [cur_dir] + incdirs:
                    cand = os.path.join(base, target)
                    if os.path.isfile(cand):
                        resolved = self._rel(cand)
                        break
                if resolved is None:
                    continue
                self.edges.add((cur, line, resolved))
                stack.append(resolved)


def check_layering(graph, cfg, findings):
    """Validates every include edge against the declared DAG and
    returns the observed layer-level edge set."""
    observed = set()
    for src_rel, line, dst_rel in sorted(graph.edges):
        src_layer = cfg.layer_of(src_rel)
        dst_layer = cfg.layer_of(dst_rel)
        if src_layer is None or dst_layer is None:
            continue
        if src_layer == "harness":
            continue  # harnesses may see everything
        if dst_layer == "harness":
            findings.append(Finding(
                src_rel, line, "layering",
                f"src layer '{src_layer}' includes harness file "
                f"{dst_rel}; nothing may depend on tests/bench"))
            continue
        if src_layer not in cfg.deps:
            findings.append(Finding(
                src_rel, line, "layering",
                f"file maps to undeclared layer '{src_layer}'; add it "
                f"to tools/analyze/layers.toml"))
            continue
        if dst_layer not in cfg.deps:
            findings.append(Finding(
                src_rel, line, "layering",
                f"include of undeclared layer '{dst_layer}' "
                f"({dst_rel}); add it to tools/analyze/layers.toml"))
            continue
        if src_layer != dst_layer:
            observed.add((src_layer, dst_layer))
        if dst_layer == src_layer or dst_layer in cfg.deps[src_layer]:
            continue
        if cfg.strictly_below(src_layer, dst_layer):
            findings.append(Finding(
                src_rel, line, "layering",
                f"skip-layer include: '{src_layer}' -> '{dst_layer}' "
                f"({dst_rel}) is below but not a declared direct "
                f"dependency; add it to layers.toml or route through "
                f"a declared layer"))
        else:
            findings.append(Finding(
                src_rel, line, "layering",
                f"layer back-edge: '{src_layer}' may not include "
                f"'{dst_layer}' ({dst_rel}); declared deps: "
                f"{sorted(cfg.deps[src_layer])}"))
    return observed


def graph_lines(observed):
    return [f"{a} -> {b}" for a, b in sorted(observed)]


def write_dot(observed, cfg, path):
    lines = ["digraph yukta_layers {", "    rankdir=BT;",
             "    node [shape=box, fontname=\"monospace\"];"]
    for layer in sorted(cfg.deps):
        lines.append(f"    \"{layer}\";")
    for a, b in sorted(observed):
        lines.append(f"    \"{a}\" -> \"{b}\";")
    # Declared-but-unused edges, dashed: the contract is wider than
    # the current graph.
    for layer, deps in sorted(cfg.deps.items()):
        for d in sorted(deps):
            if (layer, d) not in observed:
                lines.append(f"    \"{layer}\" -> \"{d}\" "
                             f"[style=dashed, color=gray];")
    lines.append("}")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


# --------------------------------------------------------------------
# Determinism / FP source rules
# --------------------------------------------------------------------

UNORDERED_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b")
PTR_KEY_RE = re.compile(
    r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+\s*\*")
PTR_HASH_RE = re.compile(r"\bstd\s*::\s*hash\s*<[^<>]*\*\s*>")
RANDOM_DEVICE_RE = re.compile(r"\bstd\s*::\s*random_device\b"
                              r"|(?<!\w)random_device\s+\w")
GETENV_RE = re.compile(r"\b(?:std\s*::\s*)?(?:secure_)?getenv\s*\(")
DIR_ITER_RE = re.compile(
    r"\b(?:recursive_)?directory_iterator\b|\breaddir(?:_r)?\s*\(")
FP_REDUCE_RE = re.compile(r"\bstd\s*::\s*reduce\b"
                          r"|\bstd\s*::\s*execution\s*::")
FLOAT_RE = re.compile(r"\bfloat\b")
STATIC_STATE_RE = re.compile(r"^\s*(?:inline\s+)?"
                             r"(static|thread_local)\b"
                             r"(?:\s+(?:inline|static|thread_local))*"
                             r"(?P<rest>[^;{=()]*)")
CONST_RE = re.compile(r"\b(?:const|constexpr|constinit)\b")


class AuditContext(lint.FileContext):
    """FileContext with yukta-audit allow markers (and a switch that
    ignores them, for the staleness re-run)."""

    def __init__(self, path, rel, honor_allows=True):
        super().__init__(path, rel)
        self.honor_allows = honor_allows
        self.audit_file_allows = set()
        for m in ALLOW_FILE_RE.finditer(self.text):
            self.audit_file_allows.update(m.group(1).split(","))

    def audit_allowed(self, rule, line_no):
        if not self.honor_allows:
            return False
        if rule in self.audit_file_allows:
            return True
        for no in (line_no, line_no - 1):
            if 1 <= no <= len(self.raw_lines):
                m = ALLOW_LINE_RE.search(self.raw_lines[no - 1])
                if m and rule in m.group(1).split(","):
                    return True
        return False


def rule_applies(cfg, rule, rel):
    norm = rel.replace(os.sep, "/")
    scope = cfg.rule_scope.get(rule)
    if scope is not None and not norm.startswith(scope):
        return False
    if norm.startswith(cfg.rule_exempt.get(rule, ())):
        return False
    return True


def check_determinism(ctx, cfg, findings):
    simple = (
        ("unordered-iter", UNORDERED_RE),
        ("ptr-key", PTR_KEY_RE),
        ("ptr-hash", PTR_HASH_RE),
        ("random-device", RANDOM_DEVICE_RE),
        ("getenv", GETENV_RE),
        ("dir-iter", DIR_ITER_RE),
        ("fp-reduce", FP_REDUCE_RE),
        ("float-acc", FLOAT_RE),
    )
    for idx, line in enumerate(ctx.code_lines, start=1):
        for rule, pattern in simple:
            if not pattern.search(line):
                continue
            if not rule_applies(cfg, rule, ctx.rel):
                continue
            if ctx.audit_allowed(rule, idx):
                continue
            findings.append(Finding(ctx.rel, idx, rule, RULE_HELP[rule]))
        m = STATIC_STATE_RE.match(line)
        if m and rule_applies(cfg, "static-state", ctx.rel):
            rest = m.group("rest")
            # `static const ...` tables and `static Foo bar(...)`
            # function declarations/definitions are fine; mutable data
            # declarations (`static T x;`, `static T x = ...`,
            # `static T x{...}`) are the finding.
            tail = line[m.start("rest"):]
            declarator = re.split(r"[=;{]", tail, maxsplit=1)[0]
            is_function = "(" in declarator
            if not CONST_RE.search(rest) and not is_function \
                    and not ctx.audit_allowed("static-state", idx):
                findings.append(Finding(
                    ctx.rel, idx, "static-state",
                    RULE_HELP["static-state"]))


def check_fp_flags(entries, repo, cfg, findings):
    """Per-TU flag audit + cross-TU FP flag drift."""
    fp_prefixes = ("-ffast-math", "-fno-fast-math", "-Ofast",
                   "-ffp-contract", "-funsafe-math-optimizations",
                   "-march", "-mfpmath", "-mtune", "-frounding-math")
    tu_flags = {}
    repo_real = os.path.realpath(repo)
    for entry in entries:
        path = os.path.realpath(entry["file"])
        if not path.startswith(repo_real + os.sep):
            continue
        rel = os.path.relpath(path, repo_real)
        args = command_args(entry)
        fp = sorted({a for a in args if a.startswith(fp_prefixes)})
        tu_flags[rel] = fp
        for flag in args:
            if flag in cfg.banned_flags:
                findings.append(Finding(
                    rel, 1, "fp-flags",
                    f"TU compiled with '{flag}': value-changing FP "
                    f"optimization breaks cross-host bit-"
                    f"reproducibility; remove it from the build"))
    if tu_flags:
        variants = {}
        for rel, fp in tu_flags.items():
            variants.setdefault(tuple(fp), []).append(rel)
        if len(variants) > 1:
            majority = max(variants, key=lambda k: len(variants[k]))
            for fp, rels in sorted(variants.items()):
                if fp == majority:
                    continue
                for rel in sorted(rels):
                    findings.append(Finding(
                        rel, 1, "fp-drift",
                        f"FP-relevant flags {list(fp)} differ from the "
                        f"tree majority {list(majority)}; one TU with "
                        f"different FP semantics poisons bit-identity"))


# --------------------------------------------------------------------
# Stale-suppression analysis
# --------------------------------------------------------------------

class NoAllowContext(lint.FileContext):
    """yukta-lint FileContext that ignores every suppression, so the
    re-run reports what each annotation currently masks."""

    def allowed(self, rule, line_no):
        return False


def lint_findings_unsuppressed(path, rel, src_root):
    ctx = NoAllowContext(path, rel)
    found = []
    lint.check_patterns(ctx, found)
    lint.check_endl_in_loop(ctx, found)
    top = rel.split(os.sep, 1)[0]
    if top == "src" and rel.endswith(".h"):
        lint.check_header_guard(ctx, src_root, found)
        lint.check_doc_comments(ctx, found)
    return found


def audit_findings_unsuppressed(path, rel, cfg):
    ctx = AuditContext(path, rel, honor_allows=False)
    found = []
    check_determinism(ctx, cfg, found)
    return found


ANNOT_RE = re.compile(
    r"yukta-(lint|audit):\s*(allow|allow-file)\(([\w,-]+)\)")

# Rules whose findings this pass cannot recompute line-accurately;
# annotations for them are skipped rather than misreported.
UNCHECKABLE = {"header-self-contained", "layering", "fp-flags",
               "fp-drift", "stale-suppression"}


def check_stale_suppressions(path, rel, src_root, cfg, findings):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    annots = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        for m in ANNOT_RE.finditer(raw):
            tool, kind, rules = m.group(1), m.group(2), m.group(3)
            for rule in rules.split(","):
                annots.append((line_no, tool, kind, rule))
    if not annots:
        return
    lint_found = lint_findings_unsuppressed(path, rel, src_root)
    audit_found = audit_findings_unsuppressed(path, rel, cfg)
    by_tool = {"lint": lint_found, "audit": audit_found}
    known = {"lint": set(lint.RULES), "audit": set(AUDIT_RULES)}
    for line_no, tool, kind, rule in annots:
        if rule in UNCHECKABLE:
            continue
        if rule not in known[tool]:
            findings.append(Finding(
                rel, line_no, "stale-suppression",
                f"annotation allows unknown yukta-{tool} rule "
                f"'{rule}'"))
            continue
        hits = [f for f in by_tool[tool] if f.rule == rule]
        if kind == "allow-file":
            live = bool(hits)
        else:
            # A line marker covers its own line and the next one.
            live = any(f.line in (line_no, line_no + 1) for f in hits)
        if not live:
            findings.append(Finding(
                rel, line_no, "stale-suppression",
                f"suppression 'yukta-{tool}: {kind}({rule})' no "
                f"longer masks a finding; delete it so dead excuses "
                f"cannot accumulate"))


# --------------------------------------------------------------------
# SARIF
# --------------------------------------------------------------------

def write_sarif(findings, path):
    rules_seen = sorted({f.rule for f in findings})
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "yukta-audit",
                "informationUri":
                    "tools/analyze/yukta_audit.py",
                "rules": [{"id": r,
                           "shortDescription": {"text": r}}
                          for r in rules_seen],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace(os.sep, "/")},
                        "region": {"startLine": max(1, f.line)},
                    }}],
            } for f in findings],
        }],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(sarif, f, indent=2)
        f.write("\n")


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def audit(repo, compdb_path, layers_path):
    """Runs every analysis; returns (findings, observed layer edges)."""
    findings = []
    try:
        cfg = load_layers(layers_path)
    except (OSError, ValueError, tomllib.TOMLDecodeError) as exc:
        print(f"yukta-audit: bad layer config: {exc}", file=sys.stderr)
        raise SystemExit(2)
    try:
        entries = load_compdb(compdb_path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"yukta-audit: cannot load {compdb_path}: {exc} "
              f"(configure the build first: cmake -B build -S .)",
              file=sys.stderr)
        raise SystemExit(2)

    graph = IncludeGraph(repo)
    for entry in entries:
        graph.add_tu(entry)

    observed = check_layering(graph, cfg, findings)
    check_fp_flags(entries, repo, cfg, findings)

    src_root = os.path.join(repo, "src")
    for rel in sorted(graph.files):
        path = os.path.join(repo, rel)
        ctx = AuditContext(path, rel)
        check_determinism(ctx, cfg, findings)
        check_stale_suppressions(path, rel, src_root, cfg, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, observed


def find_repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))


def run_self_test(repo):
    """Audits the fixture tree and asserts the expected outcomes."""
    fixdir = os.path.join(repo, "tools", "analyze", "fixtures")
    tree = os.path.join(fixdir, "tree")
    cfg = load_layers(os.path.join(fixdir, "layers_fixture.toml"))
    ok = True

    def expect(label, cond):
        nonlocal ok
        print(f"self-test: {label:<58} {'ok' if cond else 'FAIL'}")
        ok &= bool(cond)

    # ---- layering over the fixture tree ----------------------------
    entries = []
    for tu in ("src/top/top.cpp", "src/top/skip.cpp",
               "src/low/bad_backedge.cpp"):
        entries.append({
            "directory": tree,
            "file": os.path.join(tree, tu),
            "command": f"c++ -I{os.path.join(tree, 'src')} -c {tu}",
        })
    graph = IncludeGraph(tree)
    for e in entries:
        graph.add_tu(e)
    found = []
    observed = check_layering(graph, cfg, found)
    backedges = [f for f in found if "back-edge" in f.message]
    skips = [f for f in found if "skip-layer" in f.message]
    expect("layer back-edge (low includes top) caught", backedges)
    expect("skip-layer include (top includes low) caught", skips)
    expect("clean edges produce no findings",
           len(found) == len(backedges) + len(skips))
    expect("observed graph contains declared edge top->mid",
           ("top", "mid") in observed)

    # ---- determinism rules -----------------------------------------
    def run_det(name):
        path = os.path.join(fixdir, name)
        ctx = AuditContext(path, os.path.join("src", "det", name))
        out = []
        check_determinism(ctx, cfg, out)
        return out

    bad = run_det("det_bad.cpp")
    got = {f.rule for f in bad}
    want = {"unordered-iter", "ptr-key", "ptr-hash", "static-state",
            "random-device", "getenv", "dir-iter", "fp-reduce",
            "float-acc"}
    for rule in sorted(want):
        expect(f"det_bad triggers {rule}", rule in got)
    expect("det_bad triggers nothing else", not (got - want))

    clean = run_det("det_clean.cpp")
    expect("det_clean has no findings", not clean)
    for f in clean:
        print(f"    {f}")

    suppressed = run_det("det_suppressed.cpp")
    expect("det_suppressed: every finding masked", not suppressed)
    for f in suppressed:
        print(f"    {f}")

    # ---- fp flags + drift ------------------------------------------
    fp_entries = [
        {"directory": tree,
         "file": os.path.join(tree, "src/top/top.cpp"),
         "command": "c++ -O2 -ffast-math -c src/top/top.cpp"},
        {"directory": tree,
         "file": os.path.join(tree, "src/top/skip.cpp"),
         "command": "c++ -O2 -march=native -c src/top/skip.cpp"},
        {"directory": tree,
         "file": os.path.join(tree, "src/mid/mid.cpp"),
         "command": "c++ -O2 -c src/mid/mid.cpp"},
        {"directory": tree,
         "file": os.path.join(tree, "src/low/low.cpp"),
         "command": "c++ -O2 -c src/low/low.cpp"},
    ]
    fp_found = []
    check_fp_flags(fp_entries, tree, cfg, fp_found)
    expect("-ffast-math TU caught (fp-flags)",
           any(f.rule == "fp-flags" and "ffast-math" in f.message
               for f in fp_found))
    expect("-march=native TU caught (fp-flags)",
           any(f.rule == "fp-flags" and "march=native" in f.message
               for f in fp_found))
    expect("FP flag drift across TUs caught (fp-drift)",
           any(f.rule == "fp-drift" for f in fp_found))

    # ---- stale suppressions ----------------------------------------
    src_root = os.path.join(fixdir, "src")  # no src headers: ok
    stale = []
    path = os.path.join(fixdir, "stale_suppression.cpp")
    check_stale_suppressions(path, "stale_suppression.cpp", src_root,
                             cfg, stale)
    expect("stale yukta-lint allow caught",
           any("yukta-lint" in f.message for f in stale))
    expect("stale yukta-audit allow caught",
           any("yukta-audit" in f.message for f in stale))
    expect("unknown-rule annotation caught",
           any("unknown" in f.message for f in stale))

    live = []
    path = os.path.join(fixdir, "live_suppression.cpp")
    check_stale_suppressions(path, "live_suppression.cpp", src_root,
                             cfg, live)
    expect("live suppressions produce no staleness findings", not live)
    for f in live:
        print(f"    {f}")

    # ---- cycle detection in the layer config -----------------------
    try:
        LayerConfig({"layers": {"a": {"deps": ["b"]},
                                "b": {"deps": ["a"]}}})
        cycle_caught = False
    except ValueError:
        cycle_caught = True
    expect("layer-DAG cycle rejected", cycle_caught)

    print("self-test:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def main(argv):
    ap = argparse.ArgumentParser(prog="yukta-audit", add_help=True)
    ap.add_argument("--repo", default=find_repo_root())
    ap.add_argument("--compdb", default=None)
    ap.add_argument("--layers", default=None)
    ap.add_argument("--dot", default=None)
    ap.add_argument("--emit-graph", action="store_true")
    ap.add_argument("--graph-golden", default=None)
    ap.add_argument("--sarif", default=None)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    repo = os.path.abspath(args.repo)
    if args.self_test:
        return run_self_test(repo)

    compdb = args.compdb or os.path.join(repo, "build",
                                         "compile_commands.json")
    layers = args.layers or os.path.join(repo, "tools", "analyze",
                                         "layers.toml")
    findings, observed = audit(repo, compdb, layers)

    cfg = load_layers(layers)
    if args.dot:
        write_dot(observed, cfg, args.dot)
    if args.emit_graph:
        for line in graph_lines(observed):
            print(line)
        return 0
    if args.graph_golden:
        with open(args.graph_golden, encoding="utf-8") as f:
            golden = [ln.strip() for ln in f
                      if ln.strip() and not ln.startswith("#")]
        got = graph_lines(observed)
        if golden != got:
            print("yukta-audit: layer graph drifted from golden "
                  f"({args.graph_golden}):")
            for line in sorted(set(golden) - set(got)):
                print(f"  - {line}   (expected, now gone)")
            for line in sorted(set(got) - set(golden)):
                print(f"  + {line}   (new edge; review, then re-bless "
                      f"with --emit-graph)")
            return 1

    if args.sarif:
        write_sarif(findings, args.sarif)
    for f in findings:
        print(f)
    if findings:
        print(f"yukta-audit: {len(findings)} finding(s)")
        return 1
    print("yukta-audit: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
