#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, then the concurrency-sensitive
# runner tests again under ThreadSanitizer (and, optionally, the whole
# suite under ASan/UBSan with YUKTA_CI_ASAN=1).
#
# Usage: ci/run_ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== tier-1: default build + full ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== runner tests under ThreadSanitizer ==="
cmake -B build-tsan -S . -DYUKTA_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_runner
# halt_on_error so a reported race fails CI instead of scrolling by.
TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan -R '^test_runner$' --output-on-failure

if [[ "${YUKTA_CI_ASAN:-0}" == "1" ]]; then
    echo "=== full suite under AddressSanitizer + UBSan ==="
    cmake -B build-asan -S . -DYUKTA_SANITIZE=address,undefined \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build build-asan -j "$JOBS"
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "CI OK"
