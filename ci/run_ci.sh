#!/usr/bin/env bash
# CI entry point:
#   1. static analysis: yukta-lint (always) + clang-tidy / cppcheck
#      when the tools exist on the runner,
#   2. tier-1 build + full ctest,
#   3. contracts build (-DYUKTA_CHECKS=ON -DYUKTA_WERROR=ON) + full
#      ctest with every YUKTA_REQUIRE / YUKTA_ENSURE / CHECK_FINITE
#      active,
#   4. runner tests again under ThreadSanitizer (and, optionally, the
#      whole suite under ASan/UBSan with YUKTA_CI_ASAN=1),
#   5. optionally (YUKTA_CI_COVERAGE=1, the GitHub coverage job sets
#      it), a -DYUKTA_COVERAGE=ON build + ctest and the gcov
#      line-coverage floor on src/controllers + src/fault.
#
# Usage: ci/run_ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== static analysis: yukta-lint ==="
python3 tools/lint/yukta_lint.py --self-test
python3 tools/lint/yukta_lint.py --jobs "$JOBS"

echo "=== tier-1: default build + full ctest ==="
cmake -B build -S . >/dev/null

# The deeper audit consumes the compile_commands.json the configure
# step just exported: layer-DAG conformance (pinned against the
# committed golden graph), determinism bans, per-TU FP flag audit,
# and stale-suppression detection.
echo "=== static analysis: yukta-audit (compile-commands-driven) ==="
python3 tools/analyze/yukta_audit.py --self-test
python3 tools/analyze/yukta_audit.py \
    --compdb build/compile_commands.json \
    --graph-golden tools/analyze/layer_graph.golden

cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== micro-bench smoke: batched vs pointwise freq response ==="
# Correctness-gated (batch must match the pointwise oracle to 1e-10);
# the timings land in the JSON for trend inspection, never gate CI.
./build/bench/bench_micro_freq --quick --out build/BENCH_micro_freq.json

echo "=== micro-bench smoke: per-tick controller cost + batch oracle ==="
# Correctness-gated twice: the fixed-point path must track the double
# oracle, and the batched tick engine must match per-instance stepping
# bit for bit.
./build/bench/bench_micro_tick --quick --out build/BENCH_micro_tick.json

echo "=== fleet smoke: admission gates + 1-vs-N determinism ==="
# Fails unless admission strictly cuts SLO-violation time in every
# overloaded scenario, leaves the un-overloaded one bit-identical,
# and the sharded run digests equal for 1 vs N pool workers.
./build/bench/bench_fleet --quick --out build/BENCH_fleet.json

echo "=== fleet fault smoke: aware-vs-blind gates + resume identity ==="
# Fails unless fault-aware mode strictly cuts SLO-violation time in
# every board-crash scenario, the watchdog recovers hung board-epochs,
# and both the faulted 1-vs-N and the checkpoint/restore digests match.
./build/bench/bench_fleet_faults --quick \
    --out build/BENCH_fleet_faults.json

echo "=== adaptation smoke: drift gates + no-drift/swap identity ==="
# Fails unless online adaptation strictly cuts constraint-violation
# time in every drifted scenario (with a real drift event and an
# installed hot-swap), the armed loop is bit-identical to disarmed on
# the shipped plant, and the 1-vs-N and checkpoint-across-the-swap
# digests match.
./build/bench/bench_adapt --quick --out build/BENCH_adapt.json

echo "=== crash-resume smoke: checkpoint, resume, digest-compare ==="
# Simulates an operator crash-recovery: one run checkpoints mid-flight,
# a second process restores the snapshot with a different worker count
# and runs to the end. The digests must match the uninterrupted run.
CKPT_DIR="build/ci-ckpt"
rm -rf "$CKPT_DIR"
FLEET_ARGS=(--boards=6 --sim-seconds=8 --seed=3 --supervised
            --faults='board1:crash@2+3;board4:hang@5+1')
FULL_DIGEST="$(./build/examples/yukta-fleet "${FLEET_ARGS[@]}" \
    --checkpoint-every=6 --checkpoint-dir="$CKPT_DIR" --digest)"
RESUME_DIGEST="$(./build/examples/yukta-fleet "${FLEET_ARGS[@]}" \
    --resume="$CKPT_DIR/fleet-6.ckpt" --workers=2 --digest)"
if [[ "$FULL_DIGEST" != "$RESUME_DIGEST" ]]; then
    echo "crash-resume smoke FAILED: full $FULL_DIGEST vs resumed $RESUME_DIGEST"
    exit 1
fi
echo "crash-resume digests match: $FULL_DIGEST"

# The generic analyzers read build/compile_commands.json (exported by
# default), so they run after the configure step. Both are gated on
# availability: the dev container ships neither, the GitHub runner
# installs both.
if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== static analysis: clang-tidy ==="
    git ls-files 'src/*.cpp' 'bench/*.cpp' 'tests/*.cpp' \
        | xargs clang-tidy -p build --quiet --warnings-as-errors='*'
else
    echo "=== clang-tidy not installed; skipping ==="
fi

if command -v cppcheck >/dev/null 2>&1; then
    echo "=== static analysis: cppcheck ==="
    cppcheck --project=build/compile_commands.json \
             --enable=warning,portability --inline-suppr \
             --suppress='*:*/googletest/*' --suppress='*:*/benchmark/*' \
             --error-exitcode=1 --quiet -j "$JOBS"
else
    echo "=== cppcheck not installed; skipping ==="
fi

echo "=== contracts build: YUKTA_CHECKS=ON, -Werror + full ctest ==="
cmake -B build-checks -S . -DYUKTA_CHECKS=ON -DYUKTA_WERROR=ON >/dev/null
cmake --build build-checks -j "$JOBS"
ctest --test-dir build-checks --output-on-failure -j "$JOBS"

echo "=== fault matrix: supervised vs unsupervised smoke ==="
# With contracts on, any NaN escaping the supervisor aborts the run;
# the bench itself fails unless supervision strictly reduces
# constraint-violation time in every fault scenario.
./build-checks/bench/bench_faults --quick

echo "=== runner + fleet tests under ThreadSanitizer ==="
# Availability-gated: probe whether this toolchain can link TSan
# before committing to the build (some containers ship a compiler
# without libtsan).
TSAN_PROBE="$(mktemp)"
if echo 'int main() { return 0; }' \
        | c++ -fsanitize=thread -x c++ - -o "$TSAN_PROBE" 2>/dev/null; then
    rm -f "$TSAN_PROBE"
    cmake -B build-tsan -S . -DYUKTA_SANITIZE=thread \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build build-tsan -j "$JOBS" --target test_runner test_fleet
    # halt_on_error so a reported race fails CI instead of scrolling by.
    TSAN_OPTIONS="halt_on_error=1" \
        ctest --test-dir build-tsan -R '^test_runner$' --output-on-failure
    # The fleet's shared-nothing shard phase is the other place real
    # threads touch shared state; the 1-vs-N digest test drives it
    # with 1, 2, and 4 workers, and the batch-vs-scalar test covers
    # the per-shard BatchRuntime instances under the same counts.
    TSAN_OPTIONS="halt_on_error=1" \
        ./build-tsan/tests/test_fleet \
        --gtest_filter='Fleet.RunIsBitIdenticalForAnyWorkerCount:FleetBatch.BatchMatchesScalarDigestForAllWorkerCounts'
else
    rm -f "$TSAN_PROBE"
    echo "=== ThreadSanitizer unavailable on this toolchain; skipping ==="
fi

if [[ "${YUKTA_CI_COVERAGE:-0}" == "1" ]]; then
    echo "=== coverage build + line-coverage floor ==="
    cmake -B build-cov -S . -DYUKTA_COVERAGE=ON >/dev/null
    cmake --build build-cov -j "$JOBS"
    ctest --test-dir build-cov --output-on-failure -j "$JOBS"
    python3 tools/coverage_check.py --build-dir build-cov --floor 80
fi

if [[ "${YUKTA_CI_ASAN:-0}" == "1" ]]; then
    echo "=== full suite under AddressSanitizer + UBSan ==="
    cmake -B build-asan -S . -DYUKTA_SANITIZE=address,undefined \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build build-asan -j "$JOBS"
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
    ./build-asan/bench/bench_faults --quick
fi

echo "CI OK"
