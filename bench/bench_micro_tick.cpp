/**
 * @file
 * Microbenchmark: per-tick cost of one controller invocation for the
 * three runtime implementations -- the SSV state machine (with its
 * deviation clamps, grids, and finiteness contracts), the LQG
 * baseline, and the Q16.16 fixed-point SSV of Sec. VI-D -- at the
 * paper's dimensions (N=20, I=4, O=4, E=3) and a size sweep. Reported
 * as ticks/second/core: how many 500 ms control periods one core can
 * evaluate per wall second, i.e. how many boards one core could
 * control (or the fleet simulator could step) at the controller layer
 * alone.
 *
 * Correctness-gated: the fixed-point state machine must agree with
 * the double-precision oracle within the Q16.16 quantization budget,
 * so CI can run this as a smoke stage without gating on timing.
 *
 * Usage: bench_micro_tick [--quick] [--out PATH]
 */
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "control/state_space.h"
#include "controllers/fixed_point.h"
#include "controllers/lqg_runtime.h"
#include "controllers/ssv_runtime.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "robust/ssv_design.h"

namespace {

using yukta::control::StateSpace;
using yukta::controllers::FixedPointSsv;
using yukta::controllers::InputGrid;
using yukta::controllers::LqgRuntime;
using yukta::controllers::SsvRuntime;
using yukta::linalg::Matrix;
using yukta::linalg::Vector;

/** splitmix64, seeded: the bench must be exactly reproducible. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    double uniform(double lo, double hi)
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
        return lo + u * (hi - lo);
    }

  private:
    std::uint64_t state_;
};

Matrix
randomMatrix(SplitMix64& rng, std::size_t r, std::size_t c, double scale)
{
    Matrix m(r, c);
    for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
            m(i, j) = rng.uniform(-scale, scale);
        }
    }
    return m;
}

/**
 * Random Schur-stable discrete controller: A scaled below unit
 * spectral radius via its infinity norm, B/C/D modest so the Q16.16
 * quantization of every coefficient stays well inside range.
 */
StateSpace
randomStableController(SplitMix64& rng, std::size_t n, std::size_t m,
                       std::size_t p)
{
    Matrix a = randomMatrix(rng, n, n, 1.0);
    const double norm = a.normInf();
    if (norm > 0.0) {
        const double shrink = 0.9 / (norm * 1.1);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                a(i, j) *= shrink;
            }
        }
    }
    return StateSpace(a, randomMatrix(rng, n, m, 0.5),
                      randomMatrix(rng, p, n, 0.5),
                      randomMatrix(rng, p, m, 0.25), 0.5);
}

/** Reads the accumulated seconds of histogram "profile.<name>". */
double
profileSeconds(const std::string& name)
{
    return yukta::obs::globalMetrics()
        .histogram("profile." + name)
        .sum();
}

/** The DVFS-like actuator grids the runtimes quantize against. */
std::vector<InputGrid>
makeGrids(std::size_t inputs)
{
    std::vector<InputGrid> grids(inputs);
    for (std::size_t i = 0; i < inputs; ++i) {
        grids[i].min = -8.0;
        grids[i].max = 8.0;
        grids[i].step = i % 2 == 0 ? 0.1 : 0.0;
    }
    return grids;
}

struct CaseDims
{
    const char* label;
    std::size_t n;  ///< Controller states.
    std::size_t i;  ///< Physical inputs (u).
    std::size_t o;  ///< Tracked outputs.
    std::size_t e;  ///< External signals.
};

struct CaseResult
{
    CaseDims dims{};
    double ssv_ns = 0.0;
    double lqg_ns = 0.0;
    double fixed_ns = 0.0;
    double ssv_ticks_per_sec = 0.0;
    double lqg_ticks_per_sec = 0.0;
    double fixed_ticks_per_sec = 0.0;
    std::size_t fixed_macs = 0;
    std::size_t fixed_storage_bytes = 0;
    double fixed_max_err = 0.0;
};

CaseResult
runCase(const CaseDims& dims, int reps)
{
    SplitMix64 rng(0x7101ull + dims.n * 131 + dims.i * 17 + dims.e);
    const std::size_t ndy = dims.o + dims.e;

    yukta::robust::SsvController cert;
    cert.k = randomStableController(rng, dims.n, ndy, dims.i);
    cert.design_bounds.assign(dims.o, 1.0);
    cert.guaranteed_bounds.assign(dims.o, 2.0);
    SsvRuntime ssv(cert, makeGrids(dims.i), Vector::zeros(dims.i),
                   Vector::zeros(dims.e));

    StateSpace lqg_k =
        randomStableController(rng, dims.n, dims.o, dims.i);
    LqgRuntime lqg(lqg_k, makeGrids(dims.i), Vector::zeros(dims.i));

    FixedPointSsv fixed(cert.k);

    // Pre-generate a deterministic excitation so the timed loops pay
    // no RNG cost; deviations stay inside the design bounds.
    const int excitation = 64;
    std::vector<Vector> devs;
    std::vector<Vector> exts;
    std::vector<Vector> dys;
    for (int s = 0; s < excitation; ++s) {
        Vector d(dims.o);
        for (std::size_t k = 0; k < dims.o; ++k) {
            d[k] = rng.uniform(-0.9, 0.9);
        }
        Vector ex(dims.e);
        for (std::size_t k = 0; k < dims.e; ++k) {
            ex[k] = rng.uniform(-0.5, 0.5);
        }
        Vector dy(ndy);
        for (std::size_t k = 0; k < dims.o; ++k) {
            dy[k] = d[k];
        }
        for (std::size_t k = 0; k < dims.e; ++k) {
            dy[dims.o + k] = ex[k];
        }
        devs.push_back(d);
        exts.push_back(ex);
        dys.push_back(dy);
    }

    CaseResult out;
    out.dims = dims;
    out.fixed_macs = fixed.macsPerInvocation();
    out.fixed_storage_bytes = fixed.storageBytes();

    const std::string tag = dims.label;
    const std::string ssv_name = "bench.tick_ssv." + tag;
    const std::string lqg_name = "bench.tick_lqg." + tag;
    const std::string fix_name = "bench.tick_fixed." + tag;

    double sink = 0.0;
    {
        yukta::obs::ProfileScope scope(ssv_name.c_str());
        for (int r = 0; r < reps; ++r) {
            sink += ssv.invoke(devs[static_cast<std::size_t>(
                                   r % excitation)],
                               exts[static_cast<std::size_t>(
                                   r % excitation)])[0];
        }
    }
    {
        yukta::obs::ProfileScope scope(lqg_name.c_str());
        for (int r = 0; r < reps; ++r) {
            sink += lqg.invoke(
                devs[static_cast<std::size_t>(r % excitation)])[0];
        }
    }
    std::vector<std::vector<std::int32_t>> fixed_dys;
    fixed_dys.reserve(dys.size());
    for (const Vector& dy : dys) {
        std::vector<std::int32_t> q(dy.size());
        for (std::size_t k = 0; k < dy.size(); ++k) {
            q[k] = FixedPointSsv::toFixed(dy[k]);
        }
        fixed_dys.push_back(std::move(q));
    }
    {
        yukta::obs::ProfileScope scope(fix_name.c_str());
        for (int r = 0; r < reps; ++r) {
            sink += FixedPointSsv::fromFixed(
                fixed.step(fixed_dys[static_cast<std::size_t>(
                    r % excitation)])[0]);
        }
    }
    if (!std::isfinite(sink)) {
        std::cerr << "tick loops produced non-finite sink\n";
    }

    // Correctness gate: the fixed-point machine against the
    // double-precision state machine on the same K, same inputs.
    fixed.reset();
    Vector x_ref = Vector::zeros(dims.n);
    for (int s = 0; s < excitation; ++s) {
        const Vector& dy = dys[static_cast<std::size_t>(s)];
        const Vector u_fixed = fixed.stepDouble(dy);
        const Vector u_ref =
            yukta::control::stepOnce(cert.k, x_ref, dy);
        for (std::size_t k = 0; k < u_ref.size(); ++k) {
            out.fixed_max_err = std::max(
                out.fixed_max_err, std::abs(u_fixed[k] - u_ref[k]));
        }
    }

    const double r = static_cast<double>(reps);
    out.ssv_ns = profileSeconds(ssv_name) / r * 1e9;
    out.lqg_ns = profileSeconds(lqg_name) / r * 1e9;
    out.fixed_ns = profileSeconds(fix_name) / r * 1e9;
    out.ssv_ticks_per_sec = out.ssv_ns > 0.0 ? 1e9 / out.ssv_ns : 0.0;
    out.lqg_ticks_per_sec = out.lqg_ns > 0.0 ? 1e9 / out.lqg_ns : 0.0;
    out.fixed_ticks_per_sec =
        out.fixed_ns > 0.0 ? 1e9 / out.fixed_ns : 0.0;
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_micro_tick.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_micro_tick [--quick] [--out PATH]\n";
            return 2;
        }
    }

    const int reps = quick ? 2000 : 200000;
    // "paper" is the prototype of Sec. VI-D; the others bracket it.
    const std::vector<CaseDims> cases_dims = {
        {"small", 8, 4, 4, 3},
        {"paper", 20, 4, 4, 3},
        {"mono", 24, 7, 7, 0},
        {"large", 32, 7, 7, 4},
    };

    std::vector<CaseResult> cases;
    bool ok = true;
    for (const CaseDims& dims : cases_dims) {
        CaseResult r = runCase(dims, reps);
        std::printf(
            "%-6s N=%2zu I=%zu O=%zu E=%zu: ssv %8.1f ns  lqg %8.1f ns"
            "  fixed %8.1f ns  (%.2e ssv ticks/s/core)  fx_err %.2e\n",
            r.dims.label, r.dims.n, r.dims.i, r.dims.o, r.dims.e,
            r.ssv_ns, r.lqg_ns, r.fixed_ns, r.ssv_ticks_per_sec,
            r.fixed_max_err);
        // Q16.16 grid is 2^-16 per coefficient; error compounds over
        // the MAC count and the 64-step trajectory.
        if (r.fixed_max_err > 0.05) {
            std::cerr << "FAIL: fixed-point diverges from the double "
                         "oracle for case " << r.dims.label << "\n";
            ok = false;
        }
        if (r.fixed_macs == 0 || r.fixed_storage_bytes == 0) {
            std::cerr << "FAIL: degenerate cost model for case "
                      << r.dims.label << "\n";
            ok = false;
        }
        cases.push_back(r);
    }

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"micro_tick\",\n"
         << "  \"reps\": " << reps << ",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const CaseResult& r = cases[i];
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "    {\"case\": \"%s\", \"states\": %zu, \"inputs\": %zu, "
            "\"outputs\": %zu, \"external\": %zu, \"ssv_ns\": %.1f, "
            "\"lqg_ns\": %.1f, \"fixed_ns\": %.1f, "
            "\"ssv_ticks_per_sec\": %.0f, \"lqg_ticks_per_sec\": %.0f, "
            "\"fixed_ticks_per_sec\": %.0f, \"fixed_macs\": %zu, "
            "\"fixed_storage_bytes\": %zu, \"fixed_max_err\": %.3e}%s\n",
            r.dims.label, r.dims.n, r.dims.i, r.dims.o, r.dims.e,
            r.ssv_ns, r.lqg_ns, r.fixed_ns, r.ssv_ticks_per_sec,
            r.lqg_ticks_per_sec, r.fixed_ticks_per_sec, r.fixed_macs,
            r.fixed_storage_bytes, r.fixed_max_err,
            i + 1 < cases.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return ok ? 0 : 1;
}
