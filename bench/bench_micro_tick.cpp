/**
 * @file
 * Microbenchmark: per-tick cost of one controller invocation for the
 * three runtime implementations -- the SSV state machine (with its
 * deviation clamps, grids, and finiteness contracts), the LQG
 * baseline, and the Q16.16 fixed-point SSV of Sec. VI-D -- at the
 * paper's dimensions (N=20, I=4, O=4, E=3) and a size sweep, plus the
 * batched tick engine advancing a shard's worth of identical-shape
 * controllers through one blocked matrix-matrix pass. Reported as
 * ticks/second/core: how many 500 ms control periods one core can
 * evaluate per wall second, i.e. how many boards one core could
 * control (or the fleet simulator could step) at the controller layer
 * alone.
 *
 * Timing is best-of-R: each engine's rep loop runs R times and the
 * minimum wall time is reported, so a scheduler hiccup in one
 * repetition cannot inflate the published number.
 *
 * Correctness-gated twice, so CI can run this as a smoke stage
 * without gating on timing: the fixed-point state machine must agree
 * with the double-precision oracle within the Q16.16 quantization
 * budget, and the batched tick must be bit-identical to per-instance
 * stepping.
 *
 * Usage: bench_micro_tick [--quick] [--out PATH]
 */
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "control/state_space.h"
#include "controllers/batch_runtime.h"
#include "controllers/fixed_point.h"
#include "controllers/lqg_runtime.h"
#include "controllers/ssv_runtime.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "obs/stopwatch.h"
#include "robust/ssv_design.h"

namespace {

using yukta::control::StateSpace;
using yukta::controllers::BatchRuntime;
using yukta::controllers::FixedPointSsv;
using yukta::controllers::InputGrid;
using yukta::controllers::LqgRuntime;
using yukta::controllers::SsvRuntime;
using yukta::linalg::Matrix;
using yukta::linalg::Vector;

/** splitmix64, seeded: the bench must be exactly reproducible. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    double uniform(double lo, double hi)
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
        return lo + u * (hi - lo);
    }

  private:
    std::uint64_t state_;
};

Matrix
randomMatrix(SplitMix64& rng, std::size_t r, std::size_t c, double scale)
{
    Matrix m(r, c);
    for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
            m(i, j) = rng.uniform(-scale, scale);
        }
    }
    return m;
}

/**
 * Random Schur-stable discrete controller: A scaled below unit
 * spectral radius via its infinity norm, B/C/D modest so the Q16.16
 * quantization of every coefficient stays well inside range.
 */
StateSpace
randomStableController(SplitMix64& rng, std::size_t n, std::size_t m,
                       std::size_t p)
{
    Matrix a = randomMatrix(rng, n, n, 1.0);
    const double norm = a.normInf();
    if (norm > 0.0) {
        const double shrink = 0.9 / (norm * 1.1);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                a(i, j) *= shrink;
            }
        }
    }
    return StateSpace(a, randomMatrix(rng, n, m, 0.5),
                      randomMatrix(rng, p, n, 0.5),
                      randomMatrix(rng, p, m, 0.25), 0.5);
}

/** Best-of-@p repeats wall-clock seconds of one @p body() run. */
template <typename F>
double
bestOf(int repeats, F&& body)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
        yukta::obs::Stopwatch watch;
        body();
        best = std::min(best, watch.seconds());
    }
    return best;
}

/** The DVFS-like actuator grids the runtimes quantize against. */
std::vector<InputGrid>
makeGrids(std::size_t inputs)
{
    std::vector<InputGrid> grids(inputs);
    for (std::size_t i = 0; i < inputs; ++i) {
        grids[i].min = -8.0;
        grids[i].max = 8.0;
        grids[i].step = i % 2 == 0 ? 0.1 : 0.0;
    }
    return grids;
}

struct CaseDims
{
    const char* label;
    std::size_t n;  ///< Controller states.
    std::size_t i;  ///< Physical inputs (u).
    std::size_t o;  ///< Tracked outputs.
    std::size_t e;  ///< External signals.
};

struct CaseResult
{
    CaseDims dims{};
    double ssv_ns = 0.0;
    double lqg_ns = 0.0;
    double fixed_ns = 0.0;
    double ssv_batch_ns = 0.0;
    double fixed_batch_ns = 0.0;
    double ssv_ticks_per_sec = 0.0;
    double lqg_ticks_per_sec = 0.0;
    double fixed_ticks_per_sec = 0.0;
    double ssv_batch_ticks_per_sec = 0.0;
    double fixed_batch_ticks_per_sec = 0.0;
    std::size_t fixed_macs = 0;
    std::size_t fixed_storage_bytes = 0;
    double fixed_max_err = 0.0;
    bool batch_identical = false;
};

/** Boards per batched tick: a plausible per-worker fleet shard. */
constexpr std::size_t kBatchWidth = 32;

/** Timing repetitions feeding the best-of reduction. */
constexpr int kRepeats = 5;

CaseResult
runCase(const CaseDims& dims, int reps)
{
    SplitMix64 rng(0x7101ull + dims.n * 131 + dims.i * 17 + dims.e);
    const std::size_t ndy = dims.o + dims.e;

    yukta::robust::SsvController cert;
    cert.k = randomStableController(rng, dims.n, ndy, dims.i);
    cert.design_bounds.assign(dims.o, 1.0);
    cert.guaranteed_bounds.assign(dims.o, 2.0);
    SsvRuntime ssv(cert, makeGrids(dims.i), Vector::zeros(dims.i),
                   Vector::zeros(dims.e));

    StateSpace lqg_k =
        randomStableController(rng, dims.n, dims.o, dims.i);
    LqgRuntime lqg(lqg_k, makeGrids(dims.i), Vector::zeros(dims.i));

    FixedPointSsv fixed(cert.k);

    // Pre-generate a deterministic excitation so the timed loops pay
    // no RNG cost; deviations stay inside the design bounds.
    const int excitation = 64;
    std::vector<Vector> devs;
    std::vector<Vector> exts;
    std::vector<Vector> dys;
    for (int s = 0; s < excitation; ++s) {
        Vector d(dims.o);
        for (std::size_t k = 0; k < dims.o; ++k) {
            d[k] = rng.uniform(-0.9, 0.9);
        }
        Vector ex(dims.e);
        for (std::size_t k = 0; k < dims.e; ++k) {
            ex[k] = rng.uniform(-0.5, 0.5);
        }
        Vector dy(ndy);
        for (std::size_t k = 0; k < dims.o; ++k) {
            dy[k] = d[k];
        }
        for (std::size_t k = 0; k < dims.e; ++k) {
            dy[dims.o + k] = ex[k];
        }
        devs.push_back(d);
        exts.push_back(ex);
        dys.push_back(dy);
    }

    CaseResult out;
    out.dims = dims;
    out.fixed_macs = fixed.macsPerInvocation();
    out.fixed_storage_bytes = fixed.storageBytes();

    double sink = 0.0;
    const double ssv_s = bestOf(kRepeats, [&] {
        for (int r = 0; r < reps; ++r) {
            sink += ssv.invoke(devs[static_cast<std::size_t>(
                                   r % excitation)],
                               exts[static_cast<std::size_t>(
                                   r % excitation)])[0];
        }
    });
    const double lqg_s = bestOf(kRepeats, [&] {
        for (int r = 0; r < reps; ++r) {
            sink += lqg.invoke(
                devs[static_cast<std::size_t>(r % excitation)])[0];
        }
    });
    std::vector<std::vector<std::int32_t>> fixed_dys;
    fixed_dys.reserve(dys.size());
    for (const Vector& dy : dys) {
        std::vector<std::int32_t> q(dy.size());
        for (std::size_t k = 0; k < dy.size(); ++k) {
            q[k] = FixedPointSsv::toFixed(dy[k]);
        }
        fixed_dys.push_back(std::move(q));
    }
    const double fixed_s = bestOf(kRepeats, [&] {
        for (int r = 0; r < reps; ++r) {
            sink += FixedPointSsv::fromFixed(
                fixed.step(fixed_dys[static_cast<std::size_t>(
                    r % excitation)])[0]);
        }
    });

    // The batched tick engine over a shard of identical-shape
    // runtimes: reps / width rounds of width member-ticks keeps the
    // member-tick count comparable with the scalar loops.
    std::vector<std::unique_ptr<SsvRuntime>> shard;
    std::vector<std::unique_ptr<FixedPointSsv>> fshard;
    for (std::size_t b = 0; b < kBatchWidth; ++b) {
        shard.push_back(std::make_unique<SsvRuntime>(
            cert, makeGrids(dims.i), Vector::zeros(dims.i),
            Vector::zeros(dims.e)));
        fshard.push_back(std::make_unique<FixedPointSsv>(cert.k));
    }
    BatchRuntime batch;
    const int rounds =
        std::max(1, reps / static_cast<int>(kBatchWidth));
    const double ssv_batch_s = bestOf(kRepeats, [&] {
        for (int r = 0; r < rounds; ++r) {
            for (std::size_t b = 0; b < kBatchWidth; ++b) {
                const auto idx = static_cast<std::size_t>(
                    (r + static_cast<int>(b)) % excitation);
                shard[b]->beginInvoke(devs[idx], exts[idx]);
                batch.enqueue(*shard[b]);
            }
            batch.tick();
            for (std::size_t b = 0; b < kBatchWidth; ++b) {
                sink += shard[b]->finishInvoke()[0];
            }
        }
    });
    const double fixed_batch_s = bestOf(kRepeats, [&] {
        for (int r = 0; r < rounds; ++r) {
            for (std::size_t b = 0; b < kBatchWidth; ++b) {
                fshard[b]->beginStep(fixed_dys[static_cast<std::size_t>(
                    (r + static_cast<int>(b)) % excitation)]);
                batch.enqueue(*fshard[b]);
            }
            batch.tick();
            for (std::size_t b = 0; b < kBatchWidth; ++b) {
                sink += FixedPointSsv::fromFixed(
                    fshard[b]->finishStep()[0]);
            }
        }
    });
    if (!std::isfinite(sink)) {
        std::cerr << "tick loops produced non-finite sink\n";
    }

    // Correctness gate 1: the fixed-point machine against the
    // double-precision state machine on the same K, same inputs.
    fixed.reset();
    Vector x_ref = Vector::zeros(dims.n);
    for (int s = 0; s < excitation; ++s) {
        const Vector& dy = dys[static_cast<std::size_t>(s)];
        const Vector u_fixed = fixed.stepDouble(dy);
        const Vector u_ref =
            yukta::control::stepOnce(cert.k, x_ref, dy);
        for (std::size_t k = 0; k < u_ref.size(); ++k) {
            out.fixed_max_err = std::max(
                out.fixed_max_err, std::abs(u_fixed[k] - u_ref[k]));
        }
    }

    // Correctness gate 2 (the batch oracle): fresh batched runtimes
    // must match fresh scalar twins bit for bit over a divergent
    // multi-step trajectory.
    out.batch_identical = true;
    {
        const std::size_t width = 8;
        std::vector<std::unique_ptr<SsvRuntime>> bat;
        std::vector<std::unique_ptr<SsvRuntime>> ref;
        std::vector<std::unique_ptr<FixedPointSsv>> fbat;
        std::vector<std::unique_ptr<FixedPointSsv>> fref;
        for (std::size_t b = 0; b < width; ++b) {
            bat.push_back(std::make_unique<SsvRuntime>(
                cert, makeGrids(dims.i), Vector::zeros(dims.i),
                Vector::zeros(dims.e)));
            ref.push_back(std::make_unique<SsvRuntime>(
                cert, makeGrids(dims.i), Vector::zeros(dims.i),
                Vector::zeros(dims.e)));
            fbat.push_back(std::make_unique<FixedPointSsv>(cert.k));
            fref.push_back(std::make_unique<FixedPointSsv>(cert.k));
        }
        BatchRuntime oracle;
        for (int t = 0; t < 16 && out.batch_identical; ++t) {
            for (std::size_t b = 0; b < width; ++b) {
                const auto idx = static_cast<std::size_t>(
                    (t + static_cast<int>(3 * b)) % excitation);
                bat[b]->beginInvoke(devs[idx], exts[idx]);
                oracle.enqueue(*bat[b]);
                fbat[b]->beginStep(fixed_dys[idx]);
                oracle.enqueue(*fbat[b]);
            }
            oracle.tick();
            for (std::size_t b = 0; b < width; ++b) {
                const auto idx = static_cast<std::size_t>(
                    (t + static_cast<int>(3 * b)) % excitation);
                const Vector got = bat[b]->finishInvoke();
                const Vector want = ref[b]->invoke(devs[idx], exts[idx]);
                if (got.size() != want.size() ||
                    std::memcmp(got.raw().data(), want.raw().data(),
                                got.size() * sizeof(double)) != 0) {
                    out.batch_identical = false;
                }
                if (fbat[b]->finishStep() != fref[b]->step(fixed_dys[idx])) {
                    out.batch_identical = false;
                }
            }
        }
    }

    const double r = static_cast<double>(reps);
    const double rb = static_cast<double>(rounds) *
                      static_cast<double>(kBatchWidth);
    out.ssv_ns = ssv_s / r * 1e9;
    out.lqg_ns = lqg_s / r * 1e9;
    out.fixed_ns = fixed_s / r * 1e9;
    out.ssv_batch_ns = ssv_batch_s / rb * 1e9;
    out.fixed_batch_ns = fixed_batch_s / rb * 1e9;
    out.ssv_ticks_per_sec = out.ssv_ns > 0.0 ? 1e9 / out.ssv_ns : 0.0;
    out.lqg_ticks_per_sec = out.lqg_ns > 0.0 ? 1e9 / out.lqg_ns : 0.0;
    out.fixed_ticks_per_sec =
        out.fixed_ns > 0.0 ? 1e9 / out.fixed_ns : 0.0;
    out.ssv_batch_ticks_per_sec =
        out.ssv_batch_ns > 0.0 ? 1e9 / out.ssv_batch_ns : 0.0;
    out.fixed_batch_ticks_per_sec =
        out.fixed_batch_ns > 0.0 ? 1e9 / out.fixed_batch_ns : 0.0;
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_micro_tick.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_micro_tick [--quick] [--out PATH]\n";
            return 2;
        }
    }

    const int reps = quick ? 2000 : 200000;
    // "paper" is the prototype of Sec. VI-D; the others bracket it.
    const std::vector<CaseDims> cases_dims = {
        {"small", 8, 4, 4, 3},
        {"paper", 20, 4, 4, 3},
        {"mono", 24, 7, 7, 0},
        {"large", 32, 7, 7, 4},
    };

    std::vector<CaseResult> cases;
    bool ok = true;
    for (const CaseDims& dims : cases_dims) {
        CaseResult r = runCase(dims, reps);
        std::printf(
            "%-6s N=%2zu I=%zu O=%zu E=%zu: ssv %8.1f ns  lqg %8.1f ns"
            "  fixed %8.1f ns  batch %7.1f/%7.1f ns"
            "  (%.2e ssv ticks/s/core)  fx_err %.2e\n",
            r.dims.label, r.dims.n, r.dims.i, r.dims.o, r.dims.e,
            r.ssv_ns, r.lqg_ns, r.fixed_ns, r.ssv_batch_ns,
            r.fixed_batch_ns, r.ssv_batch_ticks_per_sec,
            r.fixed_max_err);
        // Q16.16 grid is 2^-16 per coefficient; error compounds over
        // the MAC count and the 64-step trajectory.
        if (r.fixed_max_err > 0.05) {
            std::cerr << "FAIL: fixed-point diverges from the double "
                         "oracle for case " << r.dims.label << "\n";
            ok = false;
        }
        if (!r.batch_identical) {
            std::cerr << "FAIL: batched tick diverges bitwise from "
                         "per-instance stepping for case "
                      << r.dims.label << "\n";
            ok = false;
        }
        if (r.fixed_macs == 0 || r.fixed_storage_bytes == 0) {
            std::cerr << "FAIL: degenerate cost model for case "
                      << r.dims.label << "\n";
            ok = false;
        }
        cases.push_back(r);
    }

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"micro_tick\",\n"
         << "  \"reps\": " << reps << ",\n  \"repeats\": " << kRepeats
         << ",\n  \"timing\": \"best-of-repeats\",\n"
         << "  \"batch_width\": " << kBatchWidth << ",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const CaseResult& r = cases[i];
        char buf[768];
        std::snprintf(
            buf, sizeof buf,
            "    {\"case\": \"%s\", \"states\": %zu, \"inputs\": %zu, "
            "\"outputs\": %zu, \"external\": %zu, \"ssv_ns\": %.1f, "
            "\"lqg_ns\": %.1f, \"fixed_ns\": %.1f, "
            "\"ssv_batch_ns\": %.1f, \"fixed_batch_ns\": %.1f, "
            "\"ssv_ticks_per_sec\": %.0f, \"lqg_ticks_per_sec\": %.0f, "
            "\"fixed_ticks_per_sec\": %.0f, "
            "\"ssv_batch_ticks_per_sec\": %.0f, "
            "\"fixed_batch_ticks_per_sec\": %.0f, "
            "\"batch_identical\": %s, \"fixed_macs\": %zu, "
            "\"fixed_storage_bytes\": %zu, \"fixed_max_err\": %.3e}%s\n",
            r.dims.label, r.dims.n, r.dims.i, r.dims.o, r.dims.e,
            r.ssv_ns, r.lqg_ns, r.fixed_ns, r.ssv_batch_ns,
            r.fixed_batch_ns, r.ssv_ticks_per_sec, r.lqg_ticks_per_sec,
            r.fixed_ticks_per_sec, r.ssv_batch_ticks_per_sec,
            r.fixed_batch_ticks_per_sec,
            r.batch_identical ? "true" : "false", r.fixed_macs,
            r.fixed_storage_bytes, r.fixed_max_err,
            i + 1 < cases.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return ok ? 0 : 1;
}
