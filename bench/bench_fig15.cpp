/**
 * @file
 * Figure 15: sensitivity to the output deviation bounds.
 *
 *  (a) Fixed-target experiment: hold the hardware targets at
 *      {5.5 BIPS, 2.5 W, 0.2 W, 70 C} (and the OS targets at
 *      {4.5, 1.0, dSC}) and show the performance trace for bounds of
 *      +-20%, +-30%, +-50% (i.e. +-1, +-1.5, +-2.5 BIPS).
 *  (b) E x D of Yukta: HW SSV+OS SSV for the three bound settings,
 *      normalized to Coordinated heuristic.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "controllers/heuristics.h"

using namespace yukta;
using linalg::Vector;

namespace {

core::Artifacts
artifactsForBounds(double perf_bound, double os_bound)
{
    core::ArtifactOptions options;
    options.cache_tag = "paper";
    options.hw_perf_bound = perf_bound;
    options.os_bound = os_bound;
    return core::buildArtifacts(platform::BoardConfig::odroidXu3(),
                                options);
}

}  // namespace

int
main()
{
    auto cfg = platform::BoardConfig::odroidXu3();
    const double bounds[] = {0.2, 0.3, 0.5};

    // ---- (a) fixed-target performance traces. ----
    std::printf("Fig. 15(a): performance trace, fixed targets "
                "(4.5 BIPS, 2.5 W, 0.2 W, 70 C -- the paper uses 5.5 "
                "BIPS, which this board cannot sustain at 2.5 W), "
                "blackscholes.\n");
    for (double b : bounds) {
        auto artifacts = artifactsForBounds(b, b);
        auto hw = std::make_unique<controllers::SsvHwController>(
            core::makeSsvRuntime(artifacts.hw_ssv),
            controllers::makeHwOptimizer(cfg));
        hw->holdTargets(Vector{4.5, 2.5, 0.2, 70.0});
        auto os = std::make_unique<controllers::SsvOsController>(
            core::makeSsvRuntime(artifacts.os_ssv),
            controllers::makeOsOptimizer());
        os->holdTargets(Vector{4.5, 1.0, 1.0});
        controllers::MultilayerSystem system(
            platform::Board(cfg,
                            platform::Workload(
                                platform::AppCatalog::get("blackscholes")),
                            1),
            std::move(hw), std::move(os));
        system.enableTrace(4.0);
        auto m = system.run(160.0);

        std::printf("\n== bounds +-%.0f%% (+-%.1f BIPS) ==\nt(s)\tBIPS\n",
                    100.0 * b, 4.5 * b);
        double err = 0.0;
        std::size_t n = 0;
        for (const auto& s : m.trace) {
            std::printf("%.0f\t%.3f\n", s.time, s.bips);
            if (s.time > 40.0) {  // skip the startup transient
                err += std::abs(s.bips - 4.5);
                ++n;
            }
        }
        std::printf("# mean |deviation| after settling: %.2f BIPS\n",
                    n ? err / n : 0.0);
        std::fflush(stdout);
    }

    // ---- (b) E x D for the three bounds. ----
    std::printf("\nFig. 15(b): normalized E x D (average over the "
                "evaluation apps).\n");
    auto apps = platform::AppCatalog::evaluationApps();
    std::vector<double> base_exd;
    {
        auto artifacts = artifactsForBounds(0.2, 0.2);
        for (const auto& app : apps) {
            auto m = bench::runScheme(
                artifacts, core::Scheme::kCoordinatedHeuristic,
                platform::Workload(platform::AppCatalog::get(app)));
            base_exd.push_back(m.exd);
        }
    }
    for (double b : bounds) {
        auto artifacts = artifactsForBounds(b, b);
        std::vector<double> rel;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            auto m = bench::runScheme(
                artifacts, core::Scheme::kYuktaFull,
                platform::Workload(platform::AppCatalog::get(apps[i])));
            rel.push_back(m.exd / base_exd[i]);
        }
        std::printf("bounds +-%.0f%%: ExD = %.2f (vs Coordinated 1.00)\n",
                    100.0 * b, bench::average(rel));
        std::fflush(stdout);
    }
    std::printf("\nPaper: ExD is 0.50 / 0.59 / 0.70 of the baseline for "
                "+-20%% / +-30%% / +-50%% bounds (wider bounds track "
                "less tightly).\n");
    return 0;
}
