/**
 * @file
 * Regenerates the paper's configuration tables:
 *  - Table II: hardware controller parameters (+ synthesis results),
 *  - Table III: software controller parameters,
 *  - Table IV: the four two-layer schemes,
 * plus the interface-exchange records of Fig. 3.
 */

#include <iostream>

#include "bench_common.h"
#include "core/report.h"

int
main()
{
    using namespace yukta;
    auto artifacts = bench::defaultArtifacts();

    std::printf("==============================================\n");
    std::printf(" Table II: hardware controller (as synthesized)\n");
    std::printf("==============================================\n");
    core::printLayerReport(std::cout, artifacts.hw_ssv);

    std::printf("\n==============================================\n");
    std::printf(" Table III: software controller (as synthesized)\n");
    std::printf("==============================================\n");
    core::printLayerReport(std::cout, artifacts.os_ssv);

    std::printf("\n");
    core::printSchemeTable(std::cout);

    std::printf("\n=== Fig. 3 interface exchange ===\n");
    core::printInterfaceExchange(
        std::cout, core::publishInterface(artifacts.hw_ssv.spec));
    core::printInterfaceExchange(
        std::cout, core::publishInterface(artifacts.os_ssv.spec));
    return 0;
}
