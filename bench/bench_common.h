#ifndef YUKTA_BENCH_BENCH_COMMON_H_
#define YUKTA_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared plumbing for the experiment-reproduction benches: default
 * artifact construction (cached on disk after the first bench runs),
 * scheme execution, and normalized-table printing.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/yukta.h"
#include "runner/sweep.h"

namespace yukta::bench {

/** Time budget per run; generous relative to paper run times. */
inline constexpr double kMaxSeconds = 1200.0;

/**
 * Worker-pool size for sweep-driven benches: YUKTA_WORKERS when set,
 * else every hardware thread.
 */
inline std::size_t
sweepWorkers()
{
    // Worker count shapes wall time only, never results (1-vs-N
    // digest identity is the gated invariant).
    // yukta-audit: allow(getenv)
    if (const char* env = std::getenv("YUKTA_WORKERS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0) {
            return static_cast<std::size_t>(n);
        }
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

/** Engine options shared by the figure benches: parallel workers,
 *  shared run cache, progress on stderr. */
inline runner::RunnerOptions
benchRunnerOptions()
{
    runner::RunnerOptions options;
    options.workers = sweepWorkers();
    options.progress = &std::cerr;
    return options;
}

/**
 * Runs a sweep against the paper-default artifacts and aborts the
 * bench when any run failed: the tables below index results by
 * (scheme, workload) and must not silently print holes.
 */
inline runner::SweepResult
runBenchSweep(const core::Artifacts& artifacts,
              const runner::SweepSpec& spec)
{
    auto result = runner::runSweep(artifacts, spec, benchRunnerOptions());
    for (const auto& r : result.records) {
        if (r.status != runner::TaskOutcome::Status::kOk) {
            std::fprintf(stderr, "run %s/%s/%u failed: %s\n",
                         runner::schemeId(r.scheme).c_str(),
                         r.workload.c_str(), r.seed, r.error.c_str());
            std::exit(1);
        }
    }
    return result;
}

/** Builds (or loads from ./yukta_cache) the paper-default artifacts. */
inline core::Artifacts
defaultArtifacts()
{
    core::ArtifactOptions options;
    options.cache_tag = "paper";
    return core::buildArtifacts(platform::BoardConfig::odroidXu3(),
                                options);
}

/** Runs one scheme on one workload and returns the metrics. */
inline controllers::RunMetrics
runScheme(const core::Artifacts& artifacts, core::Scheme scheme,
          platform::Workload workload, std::uint32_t seed = 1,
          double trace_interval = 0.0)
{
    auto system =
        core::makeSystem(scheme, artifacts, std::move(workload), seed);
    if (trace_interval > 0.0) {
        system.enableTrace(trace_interval);
    }
    return system.run(kMaxSeconds);
}

/** Prints one normalized row: values divided by the baseline column. */
inline void
printNormalizedRow(const std::string& label,
                   const std::vector<double>& values, double baseline)
{
    std::printf("%-16s", label.c_str());
    for (double v : values) {
        std::printf("  %6.2f", baseline > 0.0 ? v / baseline : 0.0);
    }
    std::printf("\n");
}

/** Geometric-mean-free average (the paper uses arithmetic averages). */
inline double
average(const std::vector<double>& v)
{
    if (v.empty()) {
        return 0.0;
    }
    double s = 0.0;
    for (double x : v) {
        s += x;
    }
    return s / static_cast<double>(v.size());
}

}  // namespace yukta::bench

#endif  // YUKTA_BENCH_BENCH_COMMON_H_
