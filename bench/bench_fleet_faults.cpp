/**
 * @file
 * Fleet fault-tolerance benchmark: runs a board-crash / degrade /
 * hang scenario matrix twice -- fault-aware (watchdog + capacity-
 * scaled routing) vs fault-blind -- and emits BENCH_fleet_faults.json
 * with SLO-violation time, fault-domain counters, and tail latency.
 *
 * Correctness-gated, so CI can run it as a smoke stage:
 *  - every board-crash scenario must show the fault-aware mode
 *    *strictly* reducing SLO-violation time vs fault-blind,
 *  - the hang scenario's watchdog must recover strictly more
 *    board-epochs than the blind run loses,
 *  - the flagship faulted run must be bit-identical for 1 vs N pool
 *    workers (the watchdog must not leak wall-clock into results),
 *  - run-to-T must be bit-identical with run-to-T/2, checkpoint,
 *    restore into a fresh process-equivalent sim, run-to-T.
 *
 * Usage: bench_fleet_faults [--quick] [--out PATH]
 */
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fault/plan.h"
#include "fleet/artifacts.h"
#include "fleet/fleet.h"

namespace {

using yukta::core::Artifacts;
using yukta::fleet::CheckpointConfig;
using yukta::fleet::FleetConfig;
using yukta::fleet::FleetMetrics;
using yukta::fleet::FleetSim;

struct Scenario
{
    std::string name;
    std::string faults;  ///< FaultPlan spec (board<i> targets).
    bool crash = false;  ///< Gated: aware SLO strictly < blind SLO.
    bool hang = false;   ///< Gated: aware loses fewer board-epochs.
};

struct ScenarioResult
{
    Scenario scenario;
    FleetMetrics aware;
    FleetMetrics blind;
};

FleetConfig
makeConfig(const Scenario& s, bool aware, int boards,
           double sim_seconds)
{
    FleetConfig cfg;
    cfg.boards = boards;
    cfg.sim_seconds = sim_seconds;
    cfg.seed = 11;
    cfg.supervised = true;
    cfg.arrivals.profile.base_rate = 6.0;
    cfg.admission.queue_capacity_gi = 8.0;
    cfg.faults = yukta::fault::FaultPlan::parse(s.faults);
    cfg.fault_aware = aware;
    cfg.watchdog_timeout_s = 0.05;
    cfg.watchdog_backoff_s = 0.02;
    return cfg;
}

void
printMetrics(const char* tag, const FleetMetrics& m)
{
    std::printf("  %-5s violation %7.1f bs  crashes %2lld  reboots "
                "%2lld  dropped %4lld  lost %4lld  timeouts %3lld  "
                "retries %3lld  p99 %6.2f s\n",
                tag, m.slo_violation_time, m.faults.crashes,
                m.faults.reboots, m.faults.dropped_requests,
                m.faults.lost_epochs, m.faults.watchdog_timeouts,
                m.faults.shard_retries, m.latency.quantile(0.99));
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_fleet_faults.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr
                << "usage: bench_fleet_faults [--quick] [--out PATH]\n";
            return 2;
        }
    }

    const int boards = quick ? 8 : 32;
    const double sim_seconds = quick ? 16.0 : 40.0;
    const std::size_t workers = std::max<std::size_t>(
        4, std::thread::hardware_concurrency());

    // Crash windows sized so the board is dark for a meaningful slice
    // of the run but reboots well before the end (the supervisor
    // ladder and the post-reboot drain are part of what is measured).
    std::vector<Scenario> scenarios;
    scenarios.push_back(
        {"single-crash", "board1:crash@2+6", true, false});
    scenarios.push_back({"double-crash",
                         "board1:crash@2+5;board3:crash@6+5", true,
                         false});
    scenarios.push_back({"crash-storm",
                         "board0:crash@1+4;board2:crash@3+4;"
                         "board4:crash@5+4",
                         true, false});
    scenarios.push_back(
        {"crash-plus-degrade",
         "board1:crash@2+6;board5:degrade@1+10*0.4", true, false});
    scenarios.push_back(
        {"transient-hang", "board2:hang@2+6", false, true});
    scenarios.push_back(
        {"persistent-hang", "board2:hang@2+4*1", false, false});

    std::fprintf(stderr, "building artifacts (cached after the first "
                         "bench run)...\n");
    const Artifacts artifacts = yukta::fleet::fleetArtifacts();

    bool ok = true;
    std::vector<ScenarioResult> results;
    for (const Scenario& s : scenarios) {
        std::printf("%s (%s):\n", s.name.c_str(), s.faults.c_str());
        ScenarioResult r;
        r.scenario = s;
        {
            FleetSim sim(makeConfig(s, true, boards, sim_seconds),
                         artifacts);
            r.aware = sim.run(workers);
        }
        {
            FleetSim sim(makeConfig(s, false, boards, sim_seconds),
                         artifacts);
            r.blind = sim.run(workers);
        }
        printMetrics("aware", r.aware);
        printMetrics("blind", r.blind);

        if (s.crash) {
            if (!(r.blind.slo_violation_time > 0.0)) {
                std::fprintf(stderr,
                             "FAIL: %s: blind run never violated the "
                             "SLO -- the crash did not hurt\n",
                             s.name.c_str());
                ok = false;
            }
            if (!(r.aware.slo_violation_time <
                  r.blind.slo_violation_time)) {
                std::fprintf(stderr,
                             "FAIL: %s: fault-aware mode did not "
                             "strictly reduce SLO violation time "
                             "(%.1f vs %.1f)\n",
                             s.name.c_str(), r.aware.slo_violation_time,
                             r.blind.slo_violation_time);
                ok = false;
            }
        }
        if (s.hang) {
            if (!(r.aware.faults.lost_epochs <
                  r.blind.faults.lost_epochs)) {
                std::fprintf(stderr,
                             "FAIL: %s: watchdog retries did not "
                             "recover board-epochs (%lld vs %lld "
                             "lost)\n",
                             s.name.c_str(), r.aware.faults.lost_epochs,
                             r.blind.faults.lost_epochs);
                ok = false;
            }
        }
        results.push_back(r);
    }

    // Worker-count determinism on the busiest faulted scenario: the
    // watchdog's wall-clock deadline must steer retries only, never
    // the simulated outcome.
    std::printf("faulted worker determinism (1 vs %zu workers):\n",
                workers);
    FleetMetrics serial;
    FleetMetrics parallel;
    {
        FleetSim sim(makeConfig(scenarios[2], true, boards, sim_seconds),
                     artifacts);
        serial = sim.run(1);
    }
    {
        FleetSim sim(makeConfig(scenarios[2], true, boards, sim_seconds),
                     artifacts);
        parallel = sim.run(workers);
    }
    std::printf("  digests %016llx / %016llx\n",
                static_cast<unsigned long long>(serial.digest()),
                static_cast<unsigned long long>(parallel.digest()));
    if (serial.digest() != parallel.digest()) {
        std::fprintf(stderr, "FAIL: faulted fleet run is not "
                             "bit-identical for 1 vs N workers\n");
        ok = false;
    }

    // Crash-resume determinism: full run vs run-to-half, checkpoint,
    // restore into a fresh sim (different worker count), run to the
    // end. Digests must match bit-for-bit.
    std::printf("checkpoint/restore determinism:\n");
    const std::filesystem::path ckpt_dir = "bench-fleet-faults-ckpt";
    std::filesystem::create_directories(ckpt_dir);
    const int half = static_cast<int>(
        sim_seconds / (2.0 * yukta::controllers::kControlPeriod));
    FleetMetrics resumed;
    {
        CheckpointConfig ckpt;
        ckpt.every_epochs = half;
        ckpt.dir = ckpt_dir.string();
        FleetSim sim(makeConfig(scenarios[3], true, boards, sim_seconds),
                     artifacts);
        (void)sim.run(workers, ckpt);
    }
    {
        FleetSim sim(makeConfig(scenarios[3], true, boards, sim_seconds),
                     artifacts);
        sim.restoreCheckpoint(
            (ckpt_dir / ("fleet-" + std::to_string(half) + ".ckpt"))
                .string());
        resumed = sim.run(1);
    }
    const FleetMetrics& full = results[3].aware;
    std::printf("  digests %016llx (full) / %016llx (resumed at epoch "
                "%d)\n",
                static_cast<unsigned long long>(full.digest()),
                static_cast<unsigned long long>(resumed.digest()), half);
    if (full.digest() != resumed.digest()) {
        std::fprintf(stderr, "FAIL: checkpoint/restore run is not "
                             "bit-identical with the uninterrupted "
                             "run\n");
        ok = false;
    }
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir, ec);

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"fleet_faults\",\n  \"boards\": " << boards
         << ",\n  \"sim_seconds\": " << sim_seconds
         << ",\n  \"workers\": " << workers << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        json << "    {\"name\": \"" << r.scenario.name
             << "\", \"faults\": \"" << r.scenario.faults
             << "\", \"crash_gated\": "
             << (r.scenario.crash ? "true" : "false")
             << ",\n     \"fault_aware\": " << r.aware.toJson(true)
             << ",\n     \"fault_blind\": " << r.blind.toJson(true)
             << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"worker_determinism\": {\"digest_serial\": \""
         << std::hex << serial.digest() << "\", \"digest_parallel\": \""
         << parallel.digest() << std::dec
         << "\", \"identical\": "
         << (serial.digest() == parallel.digest() ? "true" : "false")
         << "},\n  \"resume_determinism\": {\"digest_full\": \""
         << std::hex << full.digest() << "\", \"digest_resumed\": \""
         << resumed.digest() << std::dec
         << "\", \"checkpoint_epoch\": " << half
         << ", \"identical\": "
         << (full.digest() == resumed.digest() ? "true" : "false")
         << "}\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return ok ? 0 : 1;
}
