/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. Coordination value: Yukta HW SSV+OS SSV with the external-signal
 *     channel zeroed at runtime (controllers fly blind about the other
 *     layer) versus the full collaborative design.
 *  2. D-K iteration depth: certified mu after 1 vs 3 rounds.
 *  3. Quantization-aware runtime: the SSV runtime's grid snapping vs
 *     emitting raw continuous commands (the actuators clamp silently).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "controllers/heuristics.h"

using namespace yukta;
using linalg::Vector;

namespace {

/** SSV HW controller whose external signals are muted. */
class BlindSsvHwController : public controllers::HwController
{
  public:
    BlindSsvHwController(controllers::SsvRuntime runtime,
                         controllers::ExdOptimizer optimizer,
                         Vector e_mean)
        : inner_(std::move(runtime), std::move(optimizer)),
          e_mean_(std::move(e_mean))
    {
    }

    platform::HardwareInputs invoke(const controllers::HwSignals& s) override
    {
        controllers::HwSignals muted = s;
        muted.threads_big = e_mean_[0];
        muted.tpc_big = e_mean_[1];
        muted.tpc_little = e_mean_[2];
        return inner_.invoke(muted);
    }

    void reset() override { inner_.reset(); }

  private:
    controllers::SsvHwController inner_;
    Vector e_mean_;
};

}  // namespace

int
main()
{
    auto cfg = platform::BoardConfig::odroidXu3();
    auto artifacts = bench::defaultArtifacts();
    const std::vector<std::string> apps = {"blackscholes", "gamess",
                                           "streamcluster"};

    // All standard-scheme runs (ablations 1 and 3 reference them) go
    // through the sweep engine in one parallel batch; only the
    // custom blind-controller systems below run ad hoc.
    runner::SweepSpec sweep;
    sweep.schemes = {core::Scheme::kYuktaHwSsvOsHeuristic,
                     core::Scheme::kDecoupledLqg};
    sweep.workloads = apps;
    sweep.max_seconds = bench::kMaxSeconds;
    auto result = bench::runBenchSweep(artifacts, sweep);

    // ---- 1. Coordination (external signals) ablation. ----
    std::printf("=== Ablation 1: external-signal coordination ===\n");
    for (const std::string& app : apps) {
        const auto& full =
            *result.metricsFor(core::Scheme::kYuktaHwSsvOsHeuristic, app);

        const Vector& mean = artifacts.hw_ssv.model.uMean();
        Vector e_mean = mean.segment(4, 3);
        controllers::MultilayerSystem blind_sys(
            platform::Board(
                cfg, platform::Workload(platform::AppCatalog::get(app)),
                1),
            std::make_unique<BlindSsvHwController>(
                core::makeSsvRuntime(artifacts.hw_ssv),
                controllers::makeHwOptimizer(cfg), e_mean),
            std::make_unique<controllers::CoordinatedOsHeuristic>(cfg));
        auto blind = blind_sys.run(bench::kMaxSeconds);

        std::printf("%-14s coordinated ExD %9.0f | blind ExD %9.0f "
                    "(%.2fx)\n",
                    app.c_str(), full.exd, blind.exd,
                    full.exd > 0 ? blind.exd / full.exd : 0.0);
        std::fflush(stdout);
    }

    // ---- 2. D-K iteration depth. ----
    std::printf("\n=== Ablation 2: D-K iteration depth (HW layer) ===\n");
    for (int rounds : {1, 3}) {
        core::ArtifactOptions options;
        options.cache_tag = "ablation_dk" + std::to_string(rounds);
        options.dk.max_iterations = rounds;
        auto art = core::buildArtifacts(cfg, options);
        std::printf("D-K rounds %d: mu_peak %.3f, gamma %.3f, used %d "
                    "iteration(s)\n",
                    rounds, art.hw_ssv.controller.mu_peak,
                    art.hw_ssv.controller.gamma,
                    art.hw_ssv.controller.dk_iterations);
        std::fflush(stdout);
    }

    // ---- 3. Quantization-aware runtime. ----
    std::printf("\n=== Ablation 3: quantization-aware actuation ===\n");
    std::printf("The SSV runtime snaps to the declared grids; the LQG "
                "runtime emits raw commands that the actuators clamp.\n");
    for (const std::string& app : apps) {
        const auto& ssv =
            *result.metricsFor(core::Scheme::kYuktaHwSsvOsHeuristic, app);
        const auto& lqg =
            *result.metricsFor(core::Scheme::kDecoupledLqg, app);
        std::printf("%-14s quantization-aware ExD %9.0f | oblivious "
                    "(LQG) ExD %9.0f\n",
                    app.c_str(), ssv.exd, lqg.exd);
        std::fflush(stdout);
    }
    return 0;
}
