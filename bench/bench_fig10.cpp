/**
 * @file
 * Figure 10: big-cluster power of blackscholes as a function of time
 * under the four two-layer schemes (sustained limit: 3.3 W). A better
 * controller has fewer/smaller peaks and valleys and holds
 * steady-state power close to the limit.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace yukta;
    auto artifacts = bench::defaultArtifacts();

    const std::vector<core::Scheme> schemes = {
        core::Scheme::kCoordinatedHeuristic,
        core::Scheme::kDecoupledHeuristic,
        core::Scheme::kYuktaHwSsvOsHeuristic,
        core::Scheme::kYuktaFull,
    };

    // Traced runs through the sweep engine (traces bypass the result
    // cache); the per-scheme sections print in Fig. 10 order from the
    // index-ordered records, independent of worker count.
    runner::SweepSpec sweep;
    sweep.schemes = schemes;
    sweep.workloads = {"blackscholes"};
    sweep.max_seconds = bench::kMaxSeconds;
    sweep.trace_interval = 2.0;
    auto result = bench::runBenchSweep(artifacts, sweep);

    for (core::Scheme scheme : schemes) {
        const auto& m = *result.metricsFor(scheme, "blackscholes");

        std::printf("=== %s ===\n", core::schemeName(scheme).c_str());
        std::printf("t(s)\tP_big(W)\n");
        for (const auto& s : m.trace) {
            std::printf("%.0f\t%.3f\n", s.time, s.p_big);
        }

        // Oscillation statistics for the figure's qualitative story.
        double mean = 0.0;
        double peak = 0.0;
        int over = 0;
        for (const auto& s : m.trace) {
            mean += s.p_big;
            peak = std::max(peak, s.p_big);
            if (s.p_big > 3.3) {
                ++over;
            }
        }
        mean /= std::max<std::size_t>(m.trace.size(), 1);
        std::printf("# summary: completion %.1f s, mean P_big %.2f W, "
                    "peak %.2f W, samples over 3.3 W: %d/%zu, "
                    "emergency %.1f s\n\n",
                    m.exec_time, mean, peak, over, m.trace.size(),
                    m.emergency_time);
        std::fflush(stdout);
    }
    std::printf("Paper: completion 270 s (a), 320 s (b), 205 s (c), "
                "180 s (d); steady power closest to 3.3 W under (d).\n");
    return 0;
}
