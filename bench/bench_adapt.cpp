/**
 * @file
 * Online-adaptation benchmark: injects a permanent mid-run plant
 * power shift on a single board and runs the scenario twice -- fixed
 * controller vs the online adaptation loop (RLS sysid + CUSUM drift
 * detection + drift-triggered re-synthesis + bumpless hot-swap) --
 * and emits BENCH_adapt.json.
 *
 * Correctness-gated, so CI can run it as a smoke stage:
 *  - every drifted scenario must show the adaptive run *strictly*
 *    cutting constraint-violation time vs the fixed controller, with
 *    at least one drift event and one installed swap,
 *  - a no-drift run must be bit-identical with adaptation armed vs
 *    disarmed (the CUSUM must not fire on the shipped plant),
 *  - the flagship drifted adaptive run must be bit-identical for
 *    1 vs N pool workers,
 *  - run-to-T must be bit-identical with run-to-T/2, checkpoint
 *    (post-swap), restore into a fresh sim, run-to-T.
 *
 * Magnitudes below 1.8x are indistinguishable from nominal
 * closed-loop error (the detector correctly stays quiet), and at
 * ~3x the drifted plant saturates the identified model's validity;
 * the gate covers the moderate-drift band the loop is built for.
 *
 * Usage: bench_adapt [--quick] [--out PATH]
 */
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fault/plan.h"
#include "fleet/artifacts.h"
#include "fleet/fleet.h"

namespace {

using yukta::core::Artifacts;
using yukta::fleet::CheckpointConfig;
using yukta::fleet::FleetConfig;
using yukta::fleet::FleetMetrics;
using yukta::fleet::FleetSim;

struct Scenario
{
    std::string name;
    double magnitude = 0.0;  ///< Power multiplier; 0 = no drift.
};

struct ScenarioResult
{
    Scenario scenario;
    FleetMetrics fixed;
    FleetMetrics adaptive;
};

std::string
driftSpec(double magnitude)
{
    char buf[64];
    // Permanent shift: the window outlives the run by design. A
    // reverting window would leave the swapped controller stale on
    // the reverted plant -- a different (re-drift) scenario, not the
    // sustained-aging one this bench gates.
    std::snprintf(buf, sizeof(buf), "board0:drift@60+99999*%.2f",
                  magnitude);
    return buf;
}

FleetConfig
makeConfig(const Scenario& s, bool adapt, double sim_seconds)
{
    FleetConfig cfg;
    cfg.boards = 1;
    cfg.sim_seconds = sim_seconds;
    cfg.seed = 1;
    if (s.magnitude > 0.0) {
        cfg.faults = yukta::fault::FaultPlan::parse(driftSpec(s.magnitude));
    }
    cfg.adapt = adapt;
    return cfg;
}

void
printMetrics(const char* tag, const FleetMetrics& m)
{
    std::printf("  %-8s violation %7.1f bs  energy %7.1f J  "
                "drift %lld  synth %lld (cache %lld)  swaps %lld\n",
                tag, m.constraint_violation_time, m.energy,
                m.adapt.drift_events, m.adapt.syntheses,
                m.adapt.cache_hits, m.adapt.swaps);
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_adapt.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_adapt [--quick] [--out PATH]\n";
            return 2;
        }
    }

    // The adaptation timeline (warmup + calibration + detection +
    // settle + swap) occupies the first ~2.5 minutes, and the gate
    // needs a long post-swap window for the violation-time cut to
    // dominate the pre-swap tie; 10 simulated minutes covers both.
    const double sim_seconds = 600.0;
    const std::size_t workers = std::max<std::size_t>(
        4, std::thread::hardware_concurrency());

    std::vector<Scenario> scenarios;
    scenarios.push_back({"drift-2.0x", 2.0});
    scenarios.push_back({"drift-2.2x", 2.2});
    if (!quick) {
        scenarios.push_back({"drift-2.5x", 2.5});
    }

    std::fprintf(stderr, "building artifacts (cached after the first "
                         "bench run)...\n");
    const Artifacts artifacts = yukta::fleet::fleetArtifacts();

    bool ok = true;
    std::vector<ScenarioResult> results;
    for (const Scenario& s : scenarios) {
        std::printf("%s (%s):\n", s.name.c_str(),
                    driftSpec(s.magnitude).c_str());
        ScenarioResult r;
        r.scenario = s;
        {
            FleetSim sim(makeConfig(s, false, sim_seconds), artifacts);
            r.fixed = sim.run(workers);
        }
        {
            FleetSim sim(makeConfig(s, true, sim_seconds), artifacts);
            r.adaptive = sim.run(workers);
        }
        printMetrics("fixed", r.fixed);
        printMetrics("adaptive", r.adaptive);

        if (!(r.fixed.constraint_violation_time > 0.0)) {
            std::fprintf(stderr,
                         "FAIL: %s: the drift never hurt the fixed "
                         "controller\n",
                         s.name.c_str());
            ok = false;
        }
        if (!(r.adaptive.constraint_violation_time <
              r.fixed.constraint_violation_time)) {
            std::fprintf(stderr,
                         "FAIL: %s: adaptation did not strictly cut "
                         "constraint-violation time (%.1f vs %.1f)\n",
                         s.name.c_str(),
                         r.adaptive.constraint_violation_time,
                         r.fixed.constraint_violation_time);
            ok = false;
        }
        if (r.adaptive.adapt.drift_events < 1 ||
            r.adaptive.adapt.swaps < 1) {
            std::fprintf(stderr,
                         "FAIL: %s: the loop did not run end to end "
                         "(%lld drift events, %lld swaps)\n",
                         s.name.c_str(), r.adaptive.adapt.drift_events,
                         r.adaptive.adapt.swaps);
            ok = false;
        }
        results.push_back(r);
    }

    // No-drift identity: on the plant the model was shipped for, the
    // armed loop must be invisible -- zero drift events and a digest
    // bit-identical to the disarmed run.
    std::printf("no-drift identity (armed vs disarmed):\n");
    Scenario nominal{"no-drift", 0.0};
    FleetMetrics armed;
    FleetMetrics disarmed;
    {
        FleetSim sim(makeConfig(nominal, true, sim_seconds), artifacts);
        armed = sim.run(workers);
    }
    {
        FleetSim sim(makeConfig(nominal, false, sim_seconds), artifacts);
        disarmed = sim.run(workers);
    }
    std::printf("  digests %016llx / %016llx, %lld drift events\n",
                static_cast<unsigned long long>(armed.digest()),
                static_cast<unsigned long long>(disarmed.digest()),
                armed.adapt.drift_events);
    if (armed.adapt.drift_events != 0) {
        std::fprintf(stderr, "FAIL: CUSUM fired with no drift "
                             "injected\n");
        ok = false;
    }
    if (armed.digest() != disarmed.digest()) {
        std::fprintf(stderr, "FAIL: armed adaptation perturbed a "
                             "no-drift run\n");
        ok = false;
    }

    // Worker-count determinism on the flagship drifted adaptive run:
    // re-synthesis jobs run on the pool, so the swap (and everything
    // after it) must not depend on worker count.
    std::printf("adaptive worker determinism (1 vs %zu workers):\n",
                workers);
    FleetMetrics serial;
    FleetMetrics parallel;
    {
        FleetSim sim(makeConfig(scenarios[1], true, sim_seconds),
                     artifacts);
        serial = sim.run(1);
    }
    {
        FleetSim sim(makeConfig(scenarios[1], true, sim_seconds),
                     artifacts);
        parallel = sim.run(workers);
    }
    std::printf("  digests %016llx / %016llx\n",
                static_cast<unsigned long long>(serial.digest()),
                static_cast<unsigned long long>(parallel.digest()));
    if (serial.digest() != parallel.digest()) {
        std::fprintf(stderr, "FAIL: drifted adaptive run is not "
                             "bit-identical for 1 vs N workers\n");
        ok = false;
    }

    // Checkpoint/resume determinism across the swap: the half-way
    // checkpoint lands after the hot-swap, so the restored process
    // must re-materialize the swapped controller (and the RLS/CUSUM
    // state) bit-exactly from the checkpoint alone.
    std::printf("checkpoint/restore determinism:\n");
    const std::filesystem::path ckpt_dir = "bench-adapt-ckpt";
    std::filesystem::create_directories(ckpt_dir);
    const int half = static_cast<int>(
        sim_seconds / (2.0 * yukta::controllers::kControlPeriod));
    FleetMetrics resumed;
    {
        CheckpointConfig ckpt;
        ckpt.every_epochs = half;
        ckpt.dir = ckpt_dir.string();
        FleetSim sim(makeConfig(scenarios[1], true, sim_seconds),
                     artifacts);
        (void)sim.run(workers, ckpt);
    }
    {
        FleetSim sim(makeConfig(scenarios[1], true, sim_seconds),
                     artifacts);
        sim.restoreCheckpoint(
            (ckpt_dir / ("fleet-" + std::to_string(half) + ".ckpt"))
                .string());
        resumed = sim.run(1);
    }
    const FleetMetrics& full = results[1].adaptive;
    std::printf("  digests %016llx (full) / %016llx (resumed at epoch "
                "%d)\n",
                static_cast<unsigned long long>(full.digest()),
                static_cast<unsigned long long>(resumed.digest()), half);
    if (full.digest() != resumed.digest()) {
        std::fprintf(stderr, "FAIL: checkpoint/restore across the "
                             "hot-swap is not bit-identical with the "
                             "uninterrupted run\n");
        ok = false;
    }
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir, ec);

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"adapt\",\n  \"sim_seconds\": "
         << sim_seconds << ",\n  \"workers\": " << workers
         << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        json << "    {\"name\": \"" << r.scenario.name
             << "\", \"magnitude\": " << r.scenario.magnitude
             << ",\n     \"fixed\": " << r.fixed.toJson(true)
             << ",\n     \"adaptive\": " << r.adaptive.toJson(true)
             << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"no_drift_identity\": {\"digest_armed\": \""
         << std::hex << armed.digest() << "\", \"digest_disarmed\": \""
         << disarmed.digest() << std::dec
         << "\", \"identical\": "
         << (armed.digest() == disarmed.digest() ? "true" : "false")
         << "},\n  \"worker_determinism\": {\"digest_serial\": \""
         << std::hex << serial.digest() << "\", \"digest_parallel\": \""
         << parallel.digest() << std::dec
         << "\", \"identical\": "
         << (serial.digest() == parallel.digest() ? "true" : "false")
         << "},\n  \"resume_determinism\": {\"digest_full\": \""
         << std::hex << full.digest() << "\", \"digest_resumed\": \""
         << resumed.digest() << std::dec
         << "\", \"checkpoint_epoch\": " << half
         << ", \"identical\": "
         << (full.digest() == resumed.digest() ? "true" : "false")
         << "}\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return ok ? 0 : 1;
}
