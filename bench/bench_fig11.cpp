/**
 * @file
 * Figure 11: performance (BIPS) of blackscholes as a function of time
 * under the four two-layer schemes, with completion times.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace yukta;
    auto artifacts = bench::defaultArtifacts();

    const core::Scheme schemes[] = {
        core::Scheme::kCoordinatedHeuristic,
        core::Scheme::kDecoupledHeuristic,
        core::Scheme::kYuktaHwSsvOsHeuristic,
        core::Scheme::kYuktaFull,
    };

    std::printf("Fig. 11: blackscholes BIPS vs time.\n\n");
    for (core::Scheme scheme : schemes) {
        auto m = bench::runScheme(
            artifacts, scheme,
            platform::Workload(platform::AppCatalog::get("blackscholes")),
            1, 2.0);
        std::printf("=== %s ===\n", core::schemeName(scheme).c_str());
        std::printf("t(s)\tBIPS\n");
        double mean = 0.0;
        for (const auto& s : m.trace) {
            std::printf("%.0f\t%.3f\n", s.time, s.bips);
            mean += s.bips;
        }
        if (!m.trace.empty()) {
            mean /= static_cast<double>(m.trace.size());
        }
        std::printf("# summary: completion %.1f s, mean %.2f BIPS\n\n",
                    m.exec_time, mean);
        std::fflush(stdout);
    }
    std::printf("Paper: completion 270 s (a), ~320 s (b), 205 s (c), "
                "180 s (d); steady-state BIPS rises under the Yukta "
                "schemes.\n");
    return 0;
}
