/**
 * @file
 * Figure 9: Energy x Delay (a) and execution time (b) of the four
 * two-layer schemes over the evaluation applications -- 6 SPEC06
 * programs (8 copies each), 8 PARSEC programs (8 threads each) --
 * with SPEC average (SAv), PARSEC average (PAv), and overall average
 * (Avg). All bars are normalized to Coordinated heuristic.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"

int
main()
{
    using namespace yukta;
    auto artifacts = bench::defaultArtifacts();

    const std::vector<core::Scheme> schemes = {
        core::Scheme::kCoordinatedHeuristic,
        core::Scheme::kDecoupledHeuristic,
        core::Scheme::kYuktaHwSsvOsHeuristic,
        core::Scheme::kYuktaFull,
    };

    auto spec_apps = platform::AppCatalog::specApps();
    auto parsec_apps = platform::AppCatalog::parsecApps();
    std::vector<std::string> apps = spec_apps;
    apps.insert(apps.end(), parsec_apps.begin(), parsec_apps.end());

    // All (scheme x app) runs through the parallel sweep engine; the
    // table below is assembled from the aggregated records.
    runner::SweepSpec sweep;
    sweep.schemes = schemes;
    sweep.workloads = apps;
    sweep.max_seconds = bench::kMaxSeconds;
    auto result = bench::runBenchSweep(artifacts, sweep);

    // rel_exd[scheme][app], rel_time[scheme][app].
    std::vector<std::vector<double>> rel_exd(schemes.size());
    std::vector<std::vector<double>> rel_time(schemes.size());

    std::printf("Fig. 9: schemes = (a) Coordinated heuristic, "
                "(b) Decoupled heuristic, (c) Yukta HW SSV+OS heuristic, "
                "(d) Yukta HW SSV+OS SSV\n\n");
    std::printf("%-14s %10s %10s %10s %10s   %8s %8s %8s %8s\n", "app",
                "ExD(a)", "ExD(b)", "ExD(c)", "ExD(d)", "T(a)", "T(b)",
                "T(c)", "T(d)");

    for (const std::string& app : apps) {
        std::vector<double> exd(schemes.size());
        std::vector<double> time(schemes.size());
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const auto* m = result.metricsFor(schemes[s], app);
            exd[s] = m->exd;
            time[s] = m->exec_time;
        }
        std::printf("%-14s", platform::AppCatalog::shortLabel(app).c_str());
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            std::printf(" %10.2f", exd[s] / exd[0]);
            rel_exd[s].push_back(exd[s] / exd[0]);
        }
        std::printf("  ");
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            std::printf(" %8.2f", time[s] / time[0]);
            rel_time[s].push_back(time[s] / time[0]);
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    auto printAvg = [&](const char* label, std::size_t begin,
                        std::size_t end) {
        std::printf("%-14s", label);
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            std::vector<double> slice(rel_exd[s].begin() + begin,
                                      rel_exd[s].begin() + end);
            std::printf(" %10.2f", bench::average(slice));
        }
        std::printf("  ");
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            std::vector<double> slice(rel_time[s].begin() + begin,
                                      rel_time[s].begin() + end);
            std::printf(" %8.2f", bench::average(slice));
        }
        std::printf("\n");
    };

    std::size_t nspec = spec_apps.size();
    std::size_t nall = apps.size();
    printAvg("SAv", 0, nspec);
    printAvg("PAv", nspec, nall);
    printAvg("Avg", 0, nall);

    std::printf("\nPaper (Avg): ExD (a)=1.00 (b)=1.52 (c)=0.63 (d)=0.50; "
                "time (a)=1.00 (b)=1.30 (c)=0.71 (d)=0.62\n");
    return 0;
}
