/**
 * @file
 * Section VI-B micro-comparisons between the SSV and LQG designs:
 *
 *  - wasted actuation: the fraction of invocations where the LQG
 *    controller commands an input beyond its physical limit and
 *    observes no effect (paper: 9% of time on bodytrack);
 *  - power convergence: sampling intervals for the big-cluster power
 *    to converge to a step target (paper: SSV ~2 intervals, LQG ~6);
 *  - optimizer convergence: intervals until the E x D optimizer
 *    settles (paper: ~30 for SSV vs ~90 for LQG).
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "controllers/heuristics.h"

using namespace yukta;
using linalg::Vector;

namespace {

/**
 * Sampling intervals to re-converge after the thread-burst
 * disturbance (bodytrack's serial phase ending): find the last
 * excursion of |P_big - target| beyond tol after t = 10 s, and count
 * intervals until the power stays within tol for 4 samples.
 */
template <typename MakeHw>
int
powerConvergenceIntervals(const platform::BoardConfig& cfg, MakeHw make_hw,
                          double target, double tol)
{
    auto os = std::make_unique<controllers::CoordinatedOsHeuristic>(cfg);
    platform::Board board(
        cfg,
        platform::Workload(platform::AppCatalog::get("bodytrack")), 1);
    controllers::MultilayerSystem system(std::move(board), make_hw(),
                                         std::move(os));
    system.enableTrace(controllers::kControlPeriod);
    auto m = system.run(120.0);

    int last_excursion = -1;
    for (std::size_t i = 20; i < m.trace.size(); ++i) {
        if (std::abs(m.trace[i].p_big - target) > tol) {
            last_excursion = static_cast<int>(i);
        }
    }
    if (last_excursion < 0) {
        return 0;  // never disturbed
    }
    // Find the excursion episode start: walk back to the preceding
    // within-tol stretch, then count its length.
    int start = last_excursion;
    while (start > 0 &&
           std::abs(m.trace[start - 1].p_big - target) > tol) {
        --start;
    }
    return last_excursion - start + 1;
}

}  // namespace

int
main()
{
    auto cfg = platform::BoardConfig::odroidXu3();
    auto artifacts = bench::defaultArtifacts();
    Vector fixed_targets{5.0, 2.5, 0.2, 70.0};

    // ---- Wasted actuation of the LQG hardware controller. ----
    {
        auto lqg_runtime = core::makeLqgRuntime(artifacts.hw_lqg);
        auto hw = std::make_unique<controllers::LqgHwController>(
            std::move(lqg_runtime), controllers::makeHwOptimizer(cfg));
        controllers::LqgHwController* hw_raw = hw.get();
        auto os = std::make_unique<controllers::CoordinatedOsHeuristic>(cfg);
        controllers::MultilayerSystem system(
            platform::Board(cfg,
                            platform::Workload(
                                platform::AppCatalog::get("bodytrack")),
                            1),
            std::move(hw), std::move(os));
        auto m = system.run(600.0);
        const auto& rt = hw_raw->runtime();
        double frac = rt.totalMoves() > 0
                          ? 100.0 * rt.wastedMoves() / rt.totalMoves()
                          : 0.0;
        std::printf("LQG wasted actuation on bodytrack: %.1f%% of "
                    "invocations (paper: ~9%% of time); run %.1f s\n",
                    frac, m.exec_time);
    }

    // ---- Power convergence to a step target. ----
    int ssv_intervals = powerConvergenceIntervals(
        cfg,
        [&]() {
            auto hw = std::make_unique<controllers::SsvHwController>(
                core::makeSsvRuntime(artifacts.hw_ssv),
                controllers::makeHwOptimizer(cfg));
            hw->holdTargets(fixed_targets);
            return hw;
        },
        2.5, 0.5);
    int lqg_intervals = powerConvergenceIntervals(
        cfg,
        [&]() {
            // LQG has no holdTargets: approximate with a fresh run and
            // the optimizer-free fixed-target SSV procedure applied to
            // the LQG runtime via a small adapter.
            auto hw = std::make_unique<controllers::LqgHwController>(
                core::makeLqgRuntime(artifacts.hw_lqg),
                controllers::makeHwOptimizer(cfg));
            return hw;
        },
        2.5, 0.5);
    std::printf("Power convergence to 2.5 W (sampling intervals): "
                "SSV %d vs LQG %d (paper: 2 vs 6)\n",
                ssv_intervals, lqg_intervals);

    // ---- Optimizer convergence. ----
    {
        auto run_opt = [&](core::Scheme scheme) {
            auto system = core::makeSystem(
                scheme, artifacts,
                platform::Workload(platform::AppCatalog::get("bodytrack")),
                1);
            system.run(600.0);
            return system;
        };
        // Extract convergence via a dedicated run with direct access.
        auto hw = std::make_unique<controllers::SsvHwController>(
            core::makeSsvRuntime(artifacts.hw_ssv),
            controllers::makeHwOptimizer(cfg));
        auto* hw_raw = hw.get();
        controllers::MultilayerSystem ssv_sys(
            platform::Board(cfg,
                            platform::Workload(
                                platform::AppCatalog::get("bodytrack")),
                            1),
            std::move(hw),
            std::make_unique<controllers::CoordinatedOsHeuristic>(cfg));
        ssv_sys.run(600.0);

        auto lqg_hw = std::make_unique<controllers::LqgHwController>(
            core::makeLqgRuntime(artifacts.hw_lqg),
            controllers::makeHwOptimizer(cfg));
        auto* lqg_raw = lqg_hw.get();
        controllers::MultilayerSystem lqg_sys(
            platform::Board(cfg,
                            platform::Workload(
                                platform::AppCatalog::get("bodytrack")),
                            1),
            std::move(lqg_hw),
            std::make_unique<controllers::CoordinatedOsHeuristic>(cfg));
        lqg_sys.run(600.0);

        std::printf("Optimizer settled at move: SSV %d vs LQG %d; "
                    "direction reversals: SSV %d vs LQG %d "
                    "(paper: 30 vs 90 intervals)\n",
                    hw_raw->optimizer().convergedAtMove(),
                    lqg_raw->optimizer().convergedAtMove(),
                    hw_raw->optimizer().reversals(),
                    lqg_raw->optimizer().reversals());
        (void)run_opt;
    }
    return 0;
}
