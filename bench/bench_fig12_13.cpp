/**
 * @file
 * Figures 12 and 13: comparing Yukta against LQG-based designs
 * (Sec. VI-B) -- Coordinated heuristic, Decoupled HW LQG + OS LQG,
 * Monolithic LQG, and Yukta HW SSV + OS SSV -- on E x D (Fig. 12) and
 * execution time (Fig. 13), normalized to Coordinated heuristic.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"

int
main()
{
    using namespace yukta;
    auto artifacts = bench::defaultArtifacts();

    const std::vector<core::Scheme> schemes = {
        core::Scheme::kCoordinatedHeuristic,
        core::Scheme::kDecoupledLqg,
        core::Scheme::kMonolithicLqg,
        core::Scheme::kYuktaFull,
    };
    std::printf("Fig. 12/13: (a) Coordinated heuristic, (b) Decoupled HW "
                "LQG+OS LQG, (c) Monolithic LQG, (d) Yukta HW SSV+OS "
                "SSV.\n\n");
    std::printf("%-14s %9s %9s %9s %9s   %7s %7s %7s %7s\n", "app",
                "ExD(a)", "ExD(b)", "ExD(c)", "ExD(d)", "T(a)", "T(b)",
                "T(c)", "T(d)");

    std::vector<std::vector<double>> rel_exd(schemes.size());
    std::vector<std::vector<double>> rel_time(schemes.size());
    for (const std::string& app : platform::AppCatalog::evaluationApps()) {
        std::vector<double> exd(schemes.size());
        std::vector<double> time(schemes.size());
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            auto m = bench::runScheme(
                artifacts, schemes[s],
                platform::Workload(platform::AppCatalog::get(app)));
            exd[s] = m.exd;
            time[s] = m.exec_time;
        }
        std::printf("%-14s", platform::AppCatalog::shortLabel(app).c_str());
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            std::printf(" %9.2f", exd[s] / exd[0]);
            rel_exd[s].push_back(exd[s] / exd[0]);
        }
        std::printf("  ");
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            std::printf(" %7.2f", time[s] / time[0]);
            rel_time[s].push_back(time[s] / time[0]);
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("%-14s", "Avg");
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        std::printf(" %9.2f", bench::average(rel_exd[s]));
    }
    std::printf("  ");
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        std::printf(" %7.2f", bench::average(rel_time[s]));
    }
    std::printf("\n\nPaper (Avg): ExD (a)=1.00 (b)~1.00 (c)=0.80 "
                "(d)=0.50; time (c)=0.89 (d)=0.62.\n");
    return 0;
}
