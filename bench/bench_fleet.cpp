/**
 * @file
 * Fleet-scale benchmark: steps a sharded multi-board fleet through
 * four request-arrival scenarios (un-overloaded baseline, flat
 * overload, diurnal peak, skewed hotspot), each with the admission
 * layer on and off, and emits BENCH_fleet.json with throughput
 * (board-ticks/sec), admission outcomes, fleet E x D, and tail
 * latency.
 *
 * Correctness-gated, so CI can run it as a smoke stage:
 *  - un-overloaded scenarios must be bit-identical with admission on
 *    and off (admission that never rejects must be a no-op),
 *  - every overloaded scenario must show admission *strictly*
 *    reducing SLO-violation time,
 *  - the flagship run must be bit-identical for 1 vs N pool workers.
 *
 * Usage: bench_fleet [--quick] [--out PATH]
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/artifacts.h"
#include "fleet/fleet.h"

namespace {

using yukta::core::Artifacts;
using yukta::fleet::FleetConfig;
using yukta::fleet::FleetMetrics;
using yukta::fleet::FleetSim;

struct Scenario
{
    std::string name;
    bool overloaded = false;  ///< Expected to accrue SLO violations.
    double rate = 2.0;
    double amplitude = 0.0;
    double day_seconds = 60.0;
    double capacity_gi = 8.0;  ///< Per-board admission capacity.
    std::vector<double> board_weight;
};

struct ScenarioResult
{
    Scenario scenario;
    FleetMetrics on;
    FleetMetrics off;
};

FleetConfig
makeConfig(const Scenario& s, bool admission_on, int boards,
           double sim_seconds)
{
    FleetConfig cfg;
    cfg.boards = boards;
    cfg.sim_seconds = sim_seconds;
    cfg.seed = 7;
    cfg.arrivals.profile.base_rate = s.rate;
    cfg.arrivals.profile.amplitude = s.amplitude;
    cfg.arrivals.profile.period_seconds = s.day_seconds;
    cfg.arrivals.board_weight = s.board_weight;
    cfg.admission.enabled = admission_on;
    cfg.admission.queue_capacity_gi = s.capacity_gi;
    return cfg;
}

void
printMetrics(const char* tag, const FleetMetrics& m)
{
    std::printf("  %-4s violation %7.1f bs  rejected %6lld  rerouted "
                "%5lld  completed %7lld  p99 %7.2f s  ExD %9.0f J*s  "
                "%6.0f ticks/s\n",
                tag, m.slo_violation_time, m.admission.rejected,
                m.admission.rerouted, m.completed,
                m.latency.quantile(0.99), m.exd, m.board_ticks_per_sec);
}

std::string
metricsJson(const FleetMetrics& m)
{
    return m.toJson(true);
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_fleet.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_fleet [--quick] [--out PATH]\n";
            return 2;
        }
    }

    // Flagship scale per the acceptance bar: 100 boards, 60 simulated
    // seconds; --quick shrinks the fleet, not the physics.
    const int boards = quick ? 8 : 100;
    const double sim_seconds = quick ? 20.0 : 60.0;
    // At least 4 workers even on small machines, so the worker-count
    // determinism leg compares a genuinely parallel run against the
    // serial one (the pool oversubscribes cores fine).
    const std::size_t workers = std::max<std::size_t>(
        4, std::thread::hardware_concurrency());

    // The baseline proves enabled-but-idle admission is a no-op.
    // Request demand is exponential (unbounded tail), so a capacity
    // near the SLO eventually clips a single large request at ANY
    // arrival rate; the baseline instead sets capacity well above the
    // whole run's offered mass per board (~60 GI at rate 1), making
    // rejection arithmetically impossible while the admission path
    // still evaluates every request.
    std::vector<Scenario> scenarios;
    scenarios.push_back({"baseline", false, 1.0, 0.0, 60.0, 128.0, {}});
    scenarios.push_back(
        {"flat-overload", true, 16.0, 0.0, 60.0, 8.0, {}});
    scenarios.push_back(
        {"diurnal-peak", true, 7.0, 0.8, sim_seconds, 8.0, {}});
    {
        // One board offered ~6x the fleet mean: the hotspot spills
        // onto ring neighbors through admission re-routing.
        Scenario hot{"hotspot", true, 4.0, 0.0, 60.0, 8.0, {6.0}};
        scenarios.push_back(hot);
    }

    std::fprintf(stderr, "building artifacts (cached after the first "
                         "bench run)...\n");
    const Artifacts artifacts = yukta::fleet::fleetArtifacts();

    bool ok = true;
    std::vector<ScenarioResult> results;
    for (const Scenario& s : scenarios) {
        std::printf("%s (%s, rate %.1f/s, amp %.1f):\n", s.name.c_str(),
                    s.overloaded ? "overloaded" : "un-overloaded",
                    s.rate, s.amplitude);
        ScenarioResult r;
        r.scenario = s;
        {
            FleetSim sim(makeConfig(s, true, boards, sim_seconds),
                         artifacts);
            r.on = sim.run(workers);
        }
        {
            FleetSim sim(makeConfig(s, false, boards, sim_seconds),
                         artifacts);
            r.off = sim.run(workers);
        }
        printMetrics("on", r.on);
        printMetrics("off", r.off);

        if (s.overloaded) {
            if (!(r.off.slo_violation_time > 0.0)) {
                std::fprintf(stderr,
                             "FAIL: %s never violated the SLO without "
                             "admission -- not actually overloaded\n",
                             s.name.c_str());
                ok = false;
            }
            if (!(r.on.slo_violation_time <
                  r.off.slo_violation_time)) {
                std::fprintf(stderr,
                             "FAIL: %s: admission did not strictly "
                             "reduce SLO violation time (%.1f vs "
                             "%.1f)\n",
                             s.name.c_str(), r.on.slo_violation_time,
                             r.off.slo_violation_time);
                ok = false;
            }
        } else {
            if (r.on.digest() != r.off.digest()) {
                std::fprintf(stderr,
                             "FAIL: %s: un-overloaded run is not "
                             "bit-identical with admission on/off "
                             "(%016llx vs %016llx)\n",
                             s.name.c_str(),
                             static_cast<unsigned long long>(
                                 r.on.digest()),
                             static_cast<unsigned long long>(
                                 r.off.digest()));
                ok = false;
            }
        }
        results.push_back(r);
    }

    // Worker-count determinism on the flagship overload scenario.
    std::printf("worker determinism (%d boards, %.0f s, 1 vs %zu "
                "workers):\n",
                boards, sim_seconds, workers);
    FleetMetrics serial;
    FleetMetrics parallel;
    {
        FleetSim sim(makeConfig(scenarios[1], true, boards, sim_seconds),
                     artifacts);
        serial = sim.run(1);
    }
    {
        FleetSim sim(makeConfig(scenarios[1], true, boards, sim_seconds),
                     artifacts);
        parallel = sim.run(workers);
    }
    std::printf("  digests %016llx / %016llx  (%.0f vs %.0f "
                "board-ticks/s)\n",
                static_cast<unsigned long long>(serial.digest()),
                static_cast<unsigned long long>(parallel.digest()),
                serial.board_ticks_per_sec,
                parallel.board_ticks_per_sec);
    if (serial.digest() != parallel.digest()) {
        std::fprintf(stderr, "FAIL: fleet run is not bit-identical "
                             "for 1 vs N workers\n");
        ok = false;
    }

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"fleet\",\n  \"boards\": " << boards
         << ",\n  \"sim_seconds\": " << sim_seconds
         << ",\n  \"workers\": " << workers << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        json << "    {\"name\": \"" << r.scenario.name
             << "\", \"overloaded\": "
             << (r.scenario.overloaded ? "true" : "false")
             << ",\n     \"admission_on\": " << metricsJson(r.on)
             << ",\n     \"admission_off\": " << metricsJson(r.off)
             << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"worker_determinism\": {\"digest_serial\": \""
         << std::hex << serial.digest() << "\", \"digest_parallel\": \""
         << parallel.digest() << std::dec
         << "\", \"identical\": "
         << (serial.digest() == parallel.digest() ? "true" : "false")
         << "}\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return ok ? 0 : 1;
}
