/**
 * @file
 * Figure 16: sensitivity to the uncertainty guardband.
 *
 *  (a) Guaranteed output deviation bounds (certified by the mu
 *      analysis) as the guardband grows from +-40% to +-500%,
 *      normalized to the +-40% design.
 *  (b) E x D of Yukta: HW SSV+OS SSV for selected guardbands,
 *      normalized to Coordinated heuristic.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace yukta;

namespace {

core::Artifacts
artifactsForGuardband(double gb)
{
    core::ArtifactOptions options;
    options.cache_tag = "paper";
    options.hw_guardband = gb;
    return core::buildArtifacts(platform::BoardConfig::odroidXu3(),
                                options);
}

}  // namespace

int
main()
{
    const double guardbands[] = {0.4, 1.0, 2.5, 5.0};

    std::printf("Fig. 16(a): guaranteed bounds vs uncertainty guardband "
                "(normalized to the +-40%% design).\n\n");
    std::printf("%-12s %10s %12s %10s\n", "guardband", "mu_peak",
                "min(s)", "norm.bound");
    double base_bound = -1.0;
    std::vector<core::Artifacts> built;
    for (double gb : guardbands) {
        auto artifacts = artifactsForGuardband(gb);
        double bound = artifacts.hw_ssv.controller.guaranteed_bounds[0];
        if (base_bound < 0.0) {
            base_bound = bound;
        }
        std::printf("+-%-10.0f %10.2f %12.3f %10.2f\n", 100.0 * gb,
                    artifacts.hw_ssv.controller.mu_peak,
                    artifacts.hw_ssv.controller.min_s, bound / base_bound);
        std::fflush(stdout);
        built.push_back(std::move(artifacts));
    }

    std::printf("\nFig. 16(b): normalized E x D per guardband (average "
                "over the evaluation apps).\n");
    auto apps = platform::AppCatalog::evaluationApps();
    std::vector<double> base_exd;
    for (const auto& app : apps) {
        auto m = bench::runScheme(
            built[0], core::Scheme::kCoordinatedHeuristic,
            platform::Workload(platform::AppCatalog::get(app)));
        base_exd.push_back(m.exd);
    }
    for (std::size_t g = 0; g < built.size(); ++g) {
        std::vector<double> rel;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            auto m = bench::runScheme(
                built[g], core::Scheme::kYuktaFull,
                platform::Workload(platform::AppCatalog::get(apps[i])));
            rel.push_back(m.exd / base_exd[i]);
        }
        std::printf("guardband +-%.0f%%: ExD = %.2f\n",
                    100.0 * guardbands[g], bench::average(rel));
        std::fflush(stdout);
    }
    std::printf("\nPaper: the guaranteed bounds grow slowly with the "
                "guardband (similar up to +-250%%), and ExD degrades "
                "for very large guardbands; +-40%% is the default.\n");
    return 0;
}
