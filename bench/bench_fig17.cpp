/**
 * @file
 * Figure 17: big-cluster power vs time for hardware input weights of
 * 0.5, 1, and 2, with the big-cluster power target held at 2.5 W. The
 * workload is blackscholes, whose thread count jumps from 1 to 8 when
 * the serial phase ends -- a sudden power disturbance. Small weights
 * give a ripply response, large weights a sluggish one; weight 1 is
 * the paper's choice.
 */

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "controllers/heuristics.h"

using namespace yukta;
using linalg::Vector;

int
main()
{
    auto cfg = platform::BoardConfig::odroidXu3();
    const double weights[] = {0.5, 1.0, 2.0};

    for (double w : weights) {
        core::ArtifactOptions options;
        options.cache_tag = "paper";
        options.hw_input_weight = w;
        auto artifacts = core::buildArtifacts(cfg, options);

        auto hw = std::make_unique<controllers::SsvHwController>(
            core::makeSsvRuntime(artifacts.hw_ssv),
            controllers::makeHwOptimizer(cfg));
        hw->holdTargets(Vector{5.5, 2.5, 0.2, 70.0});
        auto os = std::make_unique<controllers::CoordinatedOsHeuristic>(cfg);

        controllers::MultilayerSystem system(
            platform::Board(cfg,
                            platform::Workload(
                                platform::AppCatalog::get("blackscholes")),
                            1),
            std::move(hw), std::move(os));
        system.enableTrace(2.0);
        auto m = system.run(160.0);

        std::printf("=== input weights %.1f ===\nt(s)\tP_big(W)\n", w);
        double err = 0.0;
        double move = 0.0;
        double prev = -1.0;
        std::size_t n = 0;
        for (const auto& s : m.trace) {
            std::printf("%.0f\t%.3f\n", s.time, s.p_big);
            if (s.time > 40.0) {
                err += std::abs(s.p_big - 2.5);
                if (prev >= 0.0) {
                    move += std::abs(s.p_big - prev);
                }
                prev = s.p_big;
                ++n;
            }
        }
        std::printf("# mean |P_big - 2.5|: %.2f W; mean step-to-step "
                    "ripple: %.2f W\n\n",
                    n ? err / n : 0.0, n > 1 ? move / (n - 1) : 0.0);
        std::fflush(stdout);
    }
    std::printf("Paper: weights 0.5 oscillate after the 45 s thread "
                "burst, weights 2 stay high for ~40 s before settling, "
                "weights 1 respond at modest speed without "
                "oscillation.\n");
    return 0;
}
