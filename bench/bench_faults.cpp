// Fault matrix: E x D and constraint-violation time, supervised vs
// unsupervised, across the injected-fault scenarios. The contract
// under test: in every fault scenario the supervised stack keeps
// constraint-violation time strictly below the unsupervised one (and
// never feeds the board a non-finite command).
//
//   bench_faults [--quick] [--scheme=ID] [--workload=NAME]
//
// --quick skips artifact synthesis (heuristic schemes only) and
// shortens the runs; it is the CI smoke configuration.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/plan.h"

namespace {

using namespace yukta;

struct Scenario {
    const char* name;
    const char* plan;
};

// Windows sit in the 8-40 s range so every scenario exercises entry,
// dwell, and recovery inside even the --quick budget.
const Scenario kScenarios[] = {
    {"clean", ""},
    {"nan-burst", "seed=11;p_big:nan@10+10;temp:nan@25+10"},
    {"stuck-power", "seed=12;p_big:stuck@10+25"},
    {"stale-telemetry", "seed=13;all:freeze@15+20"},
    {"spike", "seed=14;p_big:spike@10+15*8;p_little:spike@10+15*8"},
    {"dropout", "seed=15;p_big:drop@10+20;p_little:drop@10+20"},
    {"act+sensor", "seed=16;act:ignore@10+10;p_big:nan@12+18"},
    {"tick+sensor", "seed=17;tick:miss@10+6;p_little:drop@12+18"},
};

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string scheme_id = "decoupled";
    std::string workload = "swaptions";
    auto value = [](const char* arg, const char* prefix) -> const char* {
        const std::size_t n = std::strlen(prefix);
        return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (const char* scheme_arg = value(argv[i], "--scheme=")) {
            scheme_id = scheme_arg;
        } else if (const char* workload_arg =
                       value(argv[i], "--workload=")) {
            workload = workload_arg;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    auto scheme = runner::schemeFromId(scheme_id);
    if (!scheme) {
        std::fprintf(stderr, "unknown scheme id %s\n", scheme_id.c_str());
        return 2;
    }

    core::Artifacts artifacts;
    std::string artifact_tag;
    if (quick) {
        // Heuristic schemes need only the board config; skipping the
        // controller synthesis keeps the CI smoke run in seconds.
        artifacts.cfg = platform::BoardConfig::odroidXu3();
        artifact_tag = "bare";
    } else {
        artifacts = bench::defaultArtifacts();
        artifact_tag = "paper";
    }
    const double max_seconds = quick ? 60.0 : 300.0;

    // Every scenario twice: unsupervised, then supervised.
    std::vector<runner::RunSpec> runs;
    for (const Scenario& s : kScenarios) {
        for (bool supervised : {false, true}) {
            runner::RunSpec run;
            run.scheme = *scheme;
            run.workload = workload;
            run.max_seconds = max_seconds;
            run.fault_plan = s.plan;
            run.supervised = supervised;
            runs.push_back(run);
        }
    }

    runner::RunnerOptions options = bench::benchRunnerOptions();
    options.use_cache = !quick;
    auto result = runner::runAll(artifacts, runs, artifact_tag, options);
    for (const auto& r : result.records) {
        if (r.status != runner::TaskOutcome::Status::kOk) {
            std::fprintf(stderr, "run %zu (%s) failed: %s\n", r.index,
                         r.fault_plan.c_str(), r.error.c_str());
            return 1;
        }
    }

    std::printf("Fault matrix: %s on %s, %.0f s budget\n",
                scheme_id.c_str(), workload.c_str(), max_seconds);
    std::printf("%-16s %11s %11s %9s %9s %7s %6s %7s\n", "scenario",
                "ExD unsup", "ExD sup", "viol uns", "viol sup", "invld",
                "trans", "degr s");
    int violations_not_reduced = 0;
    for (std::size_t s = 0; s < std::size(kScenarios); ++s) {
        const auto& unsup = result.records[2 * s].metrics;
        const auto& sup = result.records[2 * s + 1].metrics;
        std::printf("%-16s %11.1f %11.1f %9.2f %9.2f %7ld %6ld %7.1f\n",
                    kScenarios[s].name, unsup.exd, sup.exd,
                    unsup.violation_time, sup.violation_time,
                    sup.supervisor.invalid_ticks,
                    sup.supervisor.transitions(),
                    sup.supervisor.timeDegraded());
        const bool faulted = kScenarios[s].plan[0] != '\0';
        if (faulted && sup.violation_time >= unsup.violation_time &&
            unsup.violation_time > 0.0) {
            std::fprintf(stderr,
                         "FAIL %s: supervised violation %.3f s not "
                         "below unsupervised %.3f s\n",
                         kScenarios[s].name, sup.violation_time,
                         unsup.violation_time);
            ++violations_not_reduced;
        }
    }
    if (violations_not_reduced > 0) {
        return 1;
    }
    std::printf("supervised stack reduced constraint-violation time in "
                "every fault scenario\n");
    return 0;
}
