/**
 * @file
 * Section VI-D: the cost of a hardware implementation of the SSV
 * controller. The paper reports, for N=20 states, I=4 inputs, O=4
 * outputs, E=3 external signals: ~700 32-bit fixed-point operations
 * and ~2.6 KB of storage per ms-level invocation, taking ~28 us on a
 * Cortex-A7 at 20-25 mW.
 *
 * This google-benchmark binary measures the Q16.16 fixed-point state
 * machine at the paper's dimensions (and a sweep of orders), and
 * prints the static op/storage counts.
 */

#include <cstdio>
#include <random>

#include <benchmark/benchmark.h>

#include "control/state_space.h"
#include "controllers/fixed_point.h"
#include "linalg/matrix.h"

using namespace yukta;
using controllers::FixedPointSsv;
using linalg::Matrix;

namespace {

control::StateSpace
randomController(std::size_t n, std::size_t dy, std::size_t u,
                 unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-0.2, 0.2);
    auto rnd = [&](std::size_t r, std::size_t c) {
        Matrix m(r, c);
        for (std::size_t i = 0; i < r; ++i) {
            for (std::size_t j = 0; j < c; ++j) {
                m(i, j) = dist(rng);
            }
        }
        return m;
    };
    return control::StateSpace(rnd(n, n), rnd(n, dy), rnd(u, n),
                               rnd(u, dy), 0.5);
}

void
BM_FixedPointInvocation(benchmark::State& state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    // Paper port counts: I=4, O=4, E=3 -> dy = 7.
    FixedPointSsv fx(randomController(n, 7, 4, 42));
    std::vector<std::int32_t> dy(7);
    for (std::size_t i = 0; i < 7; ++i) {
        dy[i] = FixedPointSsv::toFixed(0.1 * static_cast<double>(i) - 0.3);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(fx.step(dy));
    }
    state.counters["macs/invocation"] =
        static_cast<double>(fx.macsPerInvocation());
    state.counters["storage_bytes"] =
        static_cast<double>(fx.storageBytes());
}

void
BM_DoublePrecisionInvocation(benchmark::State& state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto k = randomController(n, 7, 4, 42);
    linalg::Vector x = linalg::Vector::zeros(n);
    linalg::Vector dy{0.1, -0.2, 0.3, 0.0, 0.1, -0.1, 0.2};
    for (auto _ : state) {
        benchmark::DoNotOptimize(control::stepOnce(k, x, dy));
    }
}

BENCHMARK(BM_FixedPointInvocation)->Arg(8)->Arg(12)->Arg(20)->Arg(32);
BENCHMARK(BM_DoublePrecisionInvocation)->Arg(20);

}  // namespace

int
main(int argc, char** argv)
{
    FixedPointSsv fx(randomController(20, 7, 4, 42));
    std::printf("Sec. VI-D hardware-cost summary (N=20, I=4, O=4, E=3):\n");
    std::printf("  MACs / invocation : %zu (paper: ~700 fixed-point "
                "operations)\n",
                fx.macsPerInvocation());
    std::printf("  storage           : %zu bytes (paper: ~2.6 KB)\n",
                fx.storageBytes());
    std::printf("  (paper: ~28 us per invocation on a Cortex-A7, "
                "~20-25 mW)\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
