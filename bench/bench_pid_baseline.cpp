/**
 * @file
 * Extension experiment: the classic SISO baseline. Secs. I-II position
 * PID/SISO collections as the popular formal approach that "can only
 * monitor one goal and change one parameter" and "cannot manage the
 * interaction between the goals". This bench runs a hardware layer
 * made of four independent PID loops (one output -> one actuator)
 * under the coordinated scheduler, against the MIMO SSV hardware
 * controller, on E x D and limit violations.
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "controllers/heuristics.h"
#include "controllers/pid.h"

using namespace yukta;

int
main()
{
    auto cfg = platform::BoardConfig::odroidXu3();
    auto artifacts = bench::defaultArtifacts();

    std::printf("SISO-PID hardware layer vs MIMO SSV hardware layer "
                "(both under the coordinated scheduler).\n\n");
    std::printf("%-14s %12s %12s %10s %10s\n", "app", "PID ExD",
                "SSV ExD", "PID emerg", "SSV emerg");

    std::vector<double> rel;
    for (const std::string& app : platform::AppCatalog::evaluationApps()) {
        controllers::MultilayerSystem pid_sys(
            platform::Board(
                cfg, platform::Workload(platform::AppCatalog::get(app)),
                1),
            std::make_unique<controllers::SisoPidHwController>(
                cfg, controllers::makeHwOptimizer(cfg)),
            std::make_unique<controllers::CoordinatedOsHeuristic>(cfg));
        auto pid = pid_sys.run(bench::kMaxSeconds);

        auto ssv = bench::runScheme(
            artifacts, core::Scheme::kYuktaHwSsvOsHeuristic,
            platform::Workload(platform::AppCatalog::get(app)));

        std::printf("%-14s %12.0f %12.0f %9.1fs %9.1fs\n",
                    platform::AppCatalog::shortLabel(app).c_str(), pid.exd,
                    ssv.exd, pid.emergency_time, ssv.emergency_time);
        rel.push_back(ssv.exd / std::max(pid.exd, 1.0));
        std::fflush(stdout);
    }
    std::printf("\nSSV/PID E x D ratio (average): %.2f -- the MIMO SSV "
                "design coordinates the coupled goals the SISO loops "
                "fight over.\n",
                bench::average(rel));
    return 0;
}
