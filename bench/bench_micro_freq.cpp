/**
 * @file
 * Microbenchmark: batched (Hessenberg) vs pointwise (dense csolve)
 * frequency response, plus a matmul micro-section sizing the
 * sparsity-skip payoff. Timings are recorded through the PR-4
 * observability machinery (YUKTA_PROFILE_SCOPE -> MetricsRegistry
 * histograms; this translation unit defines YUKTA_TRACE) and emitted
 * as BENCH_micro_freq.json so the speedup trajectory is tracked
 * in-repo.
 *
 * The bench is correctness-checked: it exits non-zero when the
 * batched engine disagrees with the pointwise oracle beyond 1e-10
 * relative, so CI can run it as a smoke stage without gating on
 * timing.
 *
 * Usage: bench_micro_freq [--quick] [--out PATH]
 */
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "control/state_space.h"
#include "linalg/cmatrix.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace {

using yukta::control::StateSpace;
using yukta::control::logSpacedFrequencies;
using yukta::linalg::CMatrix;
using yukta::linalg::Matrix;

/** splitmix64, seeded: the bench must be exactly reproducible. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    double uniform(double lo, double hi)
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
        return lo + u * (hi - lo);
    }

  private:
    std::uint64_t state_;
};

Matrix
randomMatrix(SplitMix64& rng, std::size_t r, std::size_t c)
{
    Matrix m(r, c);
    for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
            m(i, j) = rng.uniform(-1.0, 1.0);
        }
    }
    return m;
}

/** Hurwitz A: shifted left by its infinity norm plus a margin. */
StateSpace
randomStablePlant(SplitMix64& rng, std::size_t n, std::size_t m,
                  std::size_t p)
{
    Matrix a = randomMatrix(rng, n, n);
    const double shift = a.normInf() + 0.5;
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) -= shift;
    }
    return StateSpace(a, randomMatrix(rng, n, m), randomMatrix(rng, p, n),
                      randomMatrix(rng, p, m), 0.0);
}

/** Reads the accumulated seconds of histogram "profile.<name>". */
double
profileSeconds(const std::string& name)
{
    return yukta::obs::globalMetrics()
        .histogram("profile." + name)
        .sum();
}

struct CaseResult
{
    std::size_t order = 0;
    double pointwise_s = 0.0;
    double batch_s = 0.0;
    double speedup = 0.0;
    double max_rel_err = 0.0;
};

CaseResult
runCase(std::size_t order, std::size_t grid_points, int reps)
{
    SplitMix64 rng(0xBEEFull + order);
    StateSpace sys = randomStablePlant(rng, order, 2, 2);
    const std::vector<double> freqs =
        logSpacedFrequencies(1e-3, 1e3, grid_points);

    CaseResult out;
    out.order = order;
    const std::string point_name = "bench.freq_pointwise.n" +
                                   std::to_string(order);
    const std::string batch_name = "bench.freq_batch.n" +
                                   std::to_string(order);

    std::vector<CMatrix> ref;
    std::vector<CMatrix> batch;
    for (int rep = 0; rep < reps; ++rep) {
        {
            yukta::obs::ProfileScope scope(point_name.c_str());
            ref.clear();
            ref.reserve(freqs.size());
            for (double w : freqs) {
                // yukta-lint: allow(freq-loop) this IS the oracle side
                ref.push_back(sys.freqResponse(w));
            }
        }
        {
            yukta::obs::ProfileScope scope(batch_name.c_str());
            batch = sys.freqResponseBatch(freqs);
        }
    }

    for (std::size_t i = 0; i < freqs.size(); ++i) {
        const double denom = std::max(ref[i].maxAbs(), 1.0);
        out.max_rel_err = std::max(
            out.max_rel_err, (batch[i] - ref[i]).maxAbs() / denom);
    }
    out.pointwise_s = profileSeconds(point_name) / reps;
    out.batch_s = profileSeconds(batch_name) / reps;
    out.speedup = out.batch_s > 0.0 ? out.pointwise_s / out.batch_s : 0.0;
    return out;
}

struct MatmulResult
{
    std::size_t n = 0;
    double dense_s = 0.0;
    double zero_heavy_s = 0.0;
};

/**
 * Times the matmul sparsity skip on its best case (a half-zero
 * factor) vs dense operands, so the cost of the NaN-correct skip
 * (one allFinite() scan of the right factor) stays visible.
 */
MatmulResult
runMatmul(std::size_t n, int reps)
{
    SplitMix64 rng(0xCAFEull + n);
    Matrix dense_a = randomMatrix(rng, n, n);
    Matrix dense_b = randomMatrix(rng, n, n);
    Matrix sparse_a = dense_a;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if ((i + j) % 2 == 0) {
                sparse_a(i, j) = 0.0;
            }
        }
    }

    MatmulResult out;
    out.n = n;
    const std::string dense_name = "bench.matmul_dense.n" +
                                   std::to_string(n);
    const std::string sparse_name = "bench.matmul_zero_heavy.n" +
                                    std::to_string(n);
    double sink = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        {
            yukta::obs::ProfileScope scope(dense_name.c_str());
            sink += (dense_a * dense_b)(0, 0);
        }
        {
            yukta::obs::ProfileScope scope(sparse_name.c_str());
            sink += (sparse_a * dense_b)(0, 0);
        }
    }
    if (!std::isfinite(sink)) {
        std::cerr << "matmul produced non-finite sink\n";
    }
    out.dense_s = profileSeconds(dense_name) / reps;
    out.zero_heavy_s = profileSeconds(sparse_name) / reps;
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string out_path = "BENCH_micro_freq.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_micro_freq [--quick] [--out PATH]\n";
            return 2;
        }
    }

    const std::size_t grid_points = 96;
    const int reps = quick ? 5 : 200;
    const std::vector<std::size_t> orders = {4, 8, 12, 16};

    std::vector<CaseResult> cases;
    bool ok = true;
    for (std::size_t order : orders) {
        CaseResult r = runCase(order, grid_points, reps);
        std::printf("order %2zu: pointwise %10.3f us  batch %10.3f us  "
                    "speedup %5.2fx  max_rel_err %.3e\n",
                    r.order, r.pointwise_s * 1e6, r.batch_s * 1e6,
                    r.speedup, r.max_rel_err);
        if (r.max_rel_err > 1e-10) {
            std::cerr << "FAIL: batch disagrees with the pointwise "
                         "oracle at order " << order << "\n";
            ok = false;
        }
        cases.push_back(r);
    }

    std::vector<MatmulResult> matmuls;
    for (std::size_t n : {8u, 32u, 96u}) {
        MatmulResult r = runMatmul(n, reps);
        std::printf("matmul n=%2zu: dense %9.3f us  zero-heavy %9.3f us\n",
                    r.n, r.dense_s * 1e6, r.zero_heavy_s * 1e6);
        matmuls.push_back(r);
    }

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"micro_freq\",\n"
         << "  \"grid_points\": " << grid_points << ",\n"
         << "  \"reps\": " << reps << ",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const CaseResult& r = cases[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"order\": %zu, \"pointwise_us\": %.3f, "
                      "\"batch_us\": %.3f, \"speedup\": %.2f, "
                      "\"max_rel_err\": %.3e}%s\n",
                      r.order, r.pointwise_s * 1e6, r.batch_s * 1e6,
                      r.speedup, r.max_rel_err,
                      i + 1 < cases.size() ? "," : "");
        json << buf;
    }
    json << "  ],\n  \"matmul\": [\n";
    for (std::size_t i = 0; i < matmuls.size(); ++i) {
        const MatmulResult& r = matmuls[i];
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "    {\"n\": %zu, \"dense_us\": %.3f, "
                      "\"zero_heavy_us\": %.3f}%s\n",
                      r.n, r.dense_s * 1e6, r.zero_heavy_s * 1e6,
                      i + 1 < matmuls.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return ok ? 0 : 1;
}
