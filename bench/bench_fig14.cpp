/**
 * @file
 * Figure 14: E x D of the heterogeneous workloads of Sec. VI-C --
 * blmc (blackscholes+mcf), stga (streamcluster+gamess),
 * blst (blackscholes+streamcluster), mcga (mcf+gamess) -- under all
 * heuristic, LQG, and Yukta designs, normalized to Coordinated
 * heuristic.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"

int
main()
{
    using namespace yukta;
    auto artifacts = bench::defaultArtifacts();
    auto schemes = core::allSchemes();

    std::printf("Fig. 14: normalized E x D for heterogeneous mixes.\n\n");
    std::printf("%-8s", "mix");
    for (core::Scheme s : schemes) {
        std::printf("  %-12.12s", core::schemeName(s).c_str());
    }
    std::printf("\n");

    std::vector<std::vector<double>> rel(schemes.size());
    for (const std::string& mix : platform::AppCatalog::mixNames()) {
        std::vector<double> exd(schemes.size());
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            auto m = bench::runScheme(artifacts, schemes[s],
                                      platform::AppCatalog::getMix(mix));
            exd[s] = m.exd;
        }
        std::printf("%-8s", mix.c_str());
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            std::printf("  %-12.2f", exd[s] / exd[0]);
            rel[s].push_back(exd[s] / exd[0]);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-8s", "Avg");
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        std::printf("  %-12.2f", bench::average(rel[s]));
    }
    std::printf("\n\nPaper: Yukta HW SSV+OS SSV reduces E x D by ~47%% on "
                "the mixes (vs 50%% for homogeneous workloads).\n");
    return 0;
}
