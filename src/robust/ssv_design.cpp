#include "robust/ssv_design.h"

#include <cmath>
#include <stdexcept>

#include "control/balance.h"
#include "control/discretize.h"
#include "control/interconnect.h"
#include "robust/weights.h"

namespace yukta::robust {

using control::StateSpace;
using linalg::Matrix;

namespace {

void
validateSpec(const SsvSpec& spec)
{
    std::size_t i = spec.num_inputs;
    std::size_t e = spec.num_external;
    std::size_t o = spec.model.numOutputs();
    if (!spec.model.isDiscrete()) {
        throw std::invalid_argument("ssv: model must be discrete");
    }
    if (spec.model.numInputs() != i + e || i == 0 || o == 0) {
        throw std::invalid_argument("ssv: model ports do not match "
                                    "num_inputs + num_external");
    }
    if (spec.in_min.size() != i || spec.in_max.size() != i ||
        spec.in_step.size() != i || spec.in_weight.size() != i) {
        throw std::invalid_argument("ssv: input spec size mismatch");
    }
    if (spec.out_bound.size() != o || spec.out_range.size() != o) {
        throw std::invalid_argument("ssv: output spec size mismatch");
    }
    if (!spec.out_boost.empty() && spec.out_boost.size() != o) {
        throw std::invalid_argument("ssv: out_boost size mismatch");
    }
    for (std::size_t k = 0; k < i; ++k) {
        if (spec.in_max[k] <= spec.in_min[k] || spec.in_step[k] < 0.0 ||
            spec.in_weight[k] <= 0.0) {
            throw std::invalid_argument("ssv: bad input range/step/weight");
        }
    }
    for (std::size_t k = 0; k < o; ++k) {
        if (spec.out_bound[k] <= 0.0 || spec.out_range[k] <= 0.0) {
            throw std::invalid_argument("ssv: bad output bound/range");
        }
    }
    if (spec.guardband <= 0.0) {
        throw std::invalid_argument("ssv: guardband must be positive");
    }
}

/** Splits a weight system into (A, B, C, D) with possible D != 0. */
struct WeightData
{
    Matrix a, b, c, d;
};

WeightData
weightData(const StateSpace& w)
{
    return {w.a, w.b, w.c, w.d};
}

}  // namespace

PlantPartition
ssvPartition(const SsvSpec& spec)
{
    std::size_t i = spec.num_inputs;
    std::size_t e = spec.num_external;
    std::size_t o = spec.model.numOutputs();
    PlantPartition part;
    part.nw = o + i + o + e;   // d, dq, r, e
    part.nu = i;
    part.nz = o + i + o + i;   // f, fq, z1, z2
    part.ny = o + e;           // y1 = r - y, y2 = e
    return part;
}

BlockStructure
ssvBlockStructure(const SsvSpec& spec)
{
    std::size_t i = spec.num_inputs;
    std::size_t e = spec.num_external;
    std::size_t o = spec.model.numOutputs();
    BlockStructure s;
    s.add("model", o, o);           // d = Delta_u f
    s.add("quant", i, i);           // dq = Delta_in fq
    s.add("perf", o + e, o + i);    // performance block
    return s;
}

StateSpace
buildGeneralizedPlant(const SsvSpec& spec, bool continuous)
{
    validateSpec(spec);
    std::size_t ni = spec.num_inputs;
    std::size_t ne = spec.num_external;
    std::size_t no = spec.model.numOutputs();
    double ts = spec.model.ts;

    // Plant model in the requested timebase.
    StateSpace g = continuous ? control::d2c(spec.model) : spec.model;
    std::size_t n = g.numStates();

    // Input ranges and injection scales.
    std::vector<double> in_range(ni);
    std::vector<double> qstep(ni);
    std::vector<double> wu_gain(ni);
    for (std::size_t k = 0; k < ni; ++k) {
        in_range[k] = spec.in_max[k] - spec.in_min[k];
        // A zero step (continuous input) still gets a tiny channel so
        // the block structure stays non-degenerate.
        qstep[k] = spec.in_step[k] > 0.0 ? spec.in_step[k]
                                         : 1e-4 * in_range[k];
        wu_gain[k] = spec.in_weight[k] / in_range[k];
    }

    // Weight systems (continuous prototypes, discretized on demand).
    std::vector<double> wp_dc(no);
    std::vector<double> wf_dc(no);
    std::vector<double> wq_dc(ni);
    for (std::size_t k = 0; k < no; ++k) {
        double boost = spec.out_boost.empty() ? spec.perf_dc_boost
                                              : spec.out_boost[k];
        wp_dc[k] = boost / spec.out_bound[k];
        wf_dc[k] = spec.guardband / spec.out_range[k];
    }
    for (std::size_t k = 0; k < ni; ++k) {
        wq_dc[k] = 1.0 / in_range[k];
    }
    StateSpace wp = makeDiagonalWeight(wp_dc, spec.perf_corner);
    StateSpace wf = makeDiagonalWeight(wf_dc, spec.unc_corner);
    StateSpace wq = makeDiagonalWeight(wq_dc, spec.unc_corner);
    if (!continuous) {
        wp = control::c2d(wp, ts);
        wf = control::c2d(wf, ts);
        wq = control::c2d(wq, ts);
    }
    WeightData p = weightData(wp);
    WeightData fw = weightData(wf);
    WeightData qw = weightData(wq);

    // Model blocks split by [u; e] columns.
    Matrix bg_u = g.b.block(0, 0, n, ni);
    Matrix bg_e = g.b.block(0, ni, n, ne);
    Matrix dg_u = g.d.block(0, 0, no, ni);
    Matrix dg_e = g.d.block(0, ni, no, ne);

    Matrix s_d = Matrix::diag(std::vector<double>(spec.out_range));
    Matrix s_dq = Matrix::diag(qstep);
    Matrix w_u = Matrix::diag(wu_gain);

    // State layout [xg (n); xp (no); xf (no); xq (ni)].
    std::size_t nn = n + no + no + ni;
    std::size_t off_p = n;
    std::size_t off_f = n + no;
    std::size_t off_q = n + 2 * no;

    // Input layout [d (no); dq (ni); r (no); e (ne); u (ni)].
    std::size_t in_d = 0;
    std::size_t in_dq = no;
    std::size_t in_r = no + ni;
    std::size_t in_e = 2 * no + ni;
    std::size_t in_u = 2 * no + ni + ne;
    std::size_t nin = 2 * no + 2 * ni + ne;

    // Output layout [f (no); fq (ni); z1 (no); z2 (ni); y1 (no);
    // y2 (ne)].
    std::size_t out_f = 0;
    std::size_t out_fq = no;
    std::size_t out_z1 = no + ni;
    std::size_t out_z2 = 2 * no + ni;
    std::size_t out_y1 = 2 * no + 2 * ni;
    std::size_t out_y2 = 3 * no + 2 * ni;
    std::size_t nout = 3 * no + 2 * ni + ne;

    Matrix a(nn, nn);
    Matrix b(nn, nin);
    Matrix c(nout, nn);
    Matrix d(nout, nin);

    Matrix eye_o = Matrix::identity(no);
    Matrix eye_e = Matrix::identity(ne);

    // --- Model states xg.
    a.setBlock(0, 0, g.a);
    b.setBlock(0, in_dq, bg_u * s_dq);
    b.setBlock(0, in_e, bg_e);
    b.setBlock(0, in_u, bg_u);

    // err = r - y_pert = r - Cg xg - Dg_u(u + s_dq dq) - Dg_e e - s_d d.
    // --- Performance weight states xp: xp' = Ap xp + Bp err.
    a.setBlock(off_p, 0, -1.0 * (p.b * g.c));
    a.setBlock(off_p, off_p, p.a);
    b.setBlock(off_p, in_d, -1.0 * (p.b * s_d));
    b.setBlock(off_p, in_dq, -1.0 * (p.b * dg_u * s_dq));
    b.setBlock(off_p, in_r, p.b);
    b.setBlock(off_p, in_e, -1.0 * (p.b * dg_e));
    b.setBlock(off_p, in_u, -1.0 * (p.b * dg_u));

    // --- Uncertainty filter states xf: xf' = Af xf + Bf y_nom.
    a.setBlock(off_f, 0, fw.b * g.c);
    a.setBlock(off_f, off_f, fw.a);
    b.setBlock(off_f, in_dq, fw.b * dg_u * s_dq);
    b.setBlock(off_f, in_e, fw.b * dg_e);
    b.setBlock(off_f, in_u, fw.b * dg_u);

    // --- Quantization filter states xq: xq' = Aq xq + Bq u.
    a.setBlock(off_q, off_q, qw.a);
    b.setBlock(off_q, in_u, qw.b);

    // --- Output f = Cf xf + Df y_nom.
    c.setBlock(out_f, 0, fw.d * g.c);
    c.setBlock(out_f, off_f, fw.c);
    d.setBlock(out_f, in_dq, fw.d * dg_u * s_dq);
    d.setBlock(out_f, in_e, fw.d * dg_e);
    d.setBlock(out_f, in_u, fw.d * dg_u);

    // --- Output fq = Cq xq + Dq u.
    c.setBlock(out_fq, off_q, qw.c);
    d.setBlock(out_fq, in_u, qw.d);

    // --- Output z1 = Cp xp + Dp err.
    c.setBlock(out_z1, 0, -1.0 * (p.d * g.c));
    c.setBlock(out_z1, off_p, p.c);
    d.setBlock(out_z1, in_d, -1.0 * (p.d * s_d));
    d.setBlock(out_z1, in_dq, -1.0 * (p.d * dg_u * s_dq));
    d.setBlock(out_z1, in_r, p.d);
    d.setBlock(out_z1, in_e, -1.0 * (p.d * dg_e));
    d.setBlock(out_z1, in_u, -1.0 * (p.d * dg_u));

    // --- Output z2 = W_u u.
    d.setBlock(out_z2, in_u, w_u);

    // --- Measurement y1 = err.
    c.setBlock(out_y1, 0, -1.0 * g.c);
    d.setBlock(out_y1, in_d, -1.0 * s_d);
    d.setBlock(out_y1, in_dq, -1.0 * (dg_u * s_dq));
    d.setBlock(out_y1, in_r, eye_o);
    d.setBlock(out_y1, in_e, -1.0 * dg_e);
    d.setBlock(out_y1, in_u, -1.0 * dg_u);

    // --- Measurement y2 = e.
    d.setBlock(out_y2, in_e, eye_e);

    return StateSpace(a, b, c, d, continuous ? 0.0 : ts);
}

std::optional<SsvController>
ssvSynthesize(const SsvSpec& spec)
{
    validateSpec(spec);
    PlantPartition part = ssvPartition(spec);
    BlockStructure structure = ssvBlockStructure(spec);

    // K-step plant: continuous, so the DGKF assumptions (D11 = 0)
    // hold by construction.
    StateSpace pc = buildGeneralizedPlant(spec, true);
    auto dk = dkSynthesize(pc, part, structure, spec.dk);
    if (!dk) {
        return std::nullopt;
    }

    // Back to the controller's 500 ms world.
    double ts = spec.model.ts;
    StateSpace kd = control::c2d(dk->k, ts);

    // Validation plant (discrete). Certification is against the
    // designer's declared bounds, not the boosted design weights.
    SsvSpec cert_spec = spec;
    cert_spec.perf_dc_boost = 1.0;
    cert_spec.out_boost.clear();
    StateSpace pd = buildGeneralizedPlant(cert_spec, false);

    auto certify = [&](const StateSpace& k)
        -> std::optional<std::pair<StateSpace, MuSweep>> {
        StateSpace n = control::lftLower(pd, k, part.nz, part.nw);
        if (!n.isStable(1e-9)) {
            return std::nullopt;
        }
        return std::make_pair(n, muFrequencySweep(n, structure,
                                                  spec.dk.mu_grid));
    };

    // Reduce to the runtime order (paper: N = 20) when possible.
    StateSpace k_final = kd;
    std::optional<std::pair<StateSpace, MuSweep>> cert;
    if (kd.numStates() > spec.max_order && kd.isStable()) {
        try {
            auto red = control::balancedTruncate(kd, spec.max_order);
            auto c = certify(red.sys);
            if (c) {
                k_final = red.sys;
                cert = std::move(c);
            }
        } catch (const std::runtime_error&) {
            // fall through to the unreduced controller
        }
    }
    if (!cert) {
        cert = certify(kd);
        k_final = kd;
    }
    if (!cert) {
        return std::nullopt;
    }

    SsvController out;
    out.k = k_final;
    out.sweep = std::move(cert->second);
    out.mu_peak = out.sweep.peak;
    out.min_s = out.mu_peak > 0.0 ? 1.0 / out.mu_peak : 1e300;
    out.gamma = dk->gamma;
    out.structure = structure;
    out.dk_iterations = dk->iterations;
    out.design_bounds = spec.out_bound;
    out.guaranteed_bounds.resize(spec.out_bound.size());
    double inflate = std::max(1.0, out.mu_peak);
    for (std::size_t i = 0; i < spec.out_bound.size(); ++i) {
        out.guaranteed_bounds[i] = inflate * spec.out_bound[i];
    }
    return out;
}

}  // namespace yukta::robust
