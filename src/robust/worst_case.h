#ifndef YUKTA_ROBUST_WORST_CASE_H_
#define YUKTA_ROBUST_WORST_CASE_H_

/**
 * @file
 * Mu lower bounds and worst-case perturbation construction via the
 * standard power iteration on the mu problem (Packard-Doyle). The
 * lower bound certifies that a *specific* structured perturbation of
 * the returned size makes the loop singular, complementing the
 * D-scaling upper bound.
 */

#include <vector>

#include "linalg/cmatrix.h"
#include "robust/uncertainty.h"

namespace yukta::robust {

/** A structured perturbation achieving (approximately) the bound. */
struct WorstCasePerturbation
{
    double mu_lower = 0.0;  ///< Achieved lower bound on mu.
    /** Per-block perturbations, sigma_max(delta_i) = 1/mu_lower. */
    std::vector<linalg::CMatrix> blocks;
};

/**
 * Power-iteration lower bound for mu of @p m with respect to
 * @p structure (full complex blocks).
 *
 * @param m matrix mapping the stacked d channel to the stacked f
 *   channel (rows = totalInputs, cols = totalOutputs).
 * @param iterations power-iteration steps.
 * @return the bound and the worst-case structured perturbation; the
 *   bound is 0 when the iteration degenerates (zero matrix).
 */
WorstCasePerturbation muLowerBound(const linalg::CMatrix& m,
                                   const BlockStructure& structure,
                                   int iterations = 40);

/**
 * Assembles the block-diagonal perturbation matrix
 * (totalOutputs x totalInputs) from per-block pieces.
 */
linalg::CMatrix assemblePerturbation(const BlockStructure& structure,
                                     const WorstCasePerturbation& wc);

}  // namespace yukta::robust

#endif  // YUKTA_ROBUST_WORST_CASE_H_
