#ifndef YUKTA_ROBUST_UNCERTAINTY_H_
#define YUKTA_ROBUST_UNCERTAINTY_H_

/**
 * @file
 * Structured uncertainty descriptions for SSV (mu) analysis.
 *
 * A block structure is an ordered list of full complex blocks. Each
 * block Delta_i maps the plant's i-th perturbation-output channel f_i
 * (of size inputs()) back into its perturbation-input channel d_i (of
 * size outputs()). In Yukta's prototype the structure is
 * {model uncertainty, input quantization, performance}.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace yukta::robust {

/** One full complex uncertainty block. */
struct UncertaintyBlock
{
    std::string name;     ///< For diagnostics ("model", "quant", "perf").
    std::size_t out_dim;  ///< Rows of Delta = size of the d channel.
    std::size_t in_dim;   ///< Cols of Delta = size of the f channel.
};

/** Ordered uncertainty block structure. */
class BlockStructure
{
  public:
    BlockStructure() = default;

    /** Appends a block; returns its index. */
    std::size_t add(std::string name, std::size_t out_dim,
                    std::size_t in_dim);

    /** Block count and read access to block @p i. */
    std::size_t numBlocks() const { return blocks_.size(); }
    const UncertaintyBlock& block(std::size_t i) const { return blocks_[i]; }

    /** Total d-channel width (sum of out_dims): columns of M it sees. */
    std::size_t totalOutputs() const;

    /** Total f-channel width (sum of in_dims): rows of M it sees. */
    std::size_t totalInputs() const;

    /** Row offset of block @p i in the stacked f channel. */
    std::size_t inputOffset(std::size_t i) const;

    /** Column offset of block @p i in the stacked d channel. */
    std::size_t outputOffset(std::size_t i) const;

  private:
    std::vector<UncertaintyBlock> blocks_;
};

}  // namespace yukta::robust

#endif  // YUKTA_ROBUST_UNCERTAINTY_H_
