#include "robust/weights.h"

#include <stdexcept>

#include "control/interconnect.h"

namespace yukta::robust {

using control::StateSpace;
using linalg::Matrix;

StateSpace
makeWeight(double dc, double wc, double hf)
{
    if (wc <= 0.0) {
        throw std::invalid_argument("makeWeight: corner must be positive");
    }
    Matrix a{{-wc}};
    Matrix b{{wc}};
    Matrix c{{dc - hf}};
    Matrix d{{hf}};
    return StateSpace(a, b, c, d, 0.0);
}

StateSpace
makeDiagonalWeight(const std::vector<double>& dc_gains, double wc, double hf)
{
    if (dc_gains.empty()) {
        throw std::invalid_argument("makeDiagonalWeight: empty gain list");
    }
    StateSpace w = makeWeight(dc_gains[0], wc, hf);
    for (std::size_t i = 1; i < dc_gains.size(); ++i) {
        w = control::append(w, makeWeight(dc_gains[i], wc, hf));
    }
    return w;
}

StateSpace
staticDiagonal(const std::vector<double>& gains)
{
    return StateSpace::gain(Matrix::diag(gains), 0.0);
}

}  // namespace yukta::robust
