#include "robust/uncertainty.h"

#include <stdexcept>

namespace yukta::robust {

std::size_t
BlockStructure::add(std::string name, std::size_t out_dim, std::size_t in_dim)
{
    if (out_dim == 0 || in_dim == 0) {
        throw std::invalid_argument("BlockStructure: zero-sized block");
    }
    blocks_.push_back({std::move(name), out_dim, in_dim});
    return blocks_.size() - 1;
}

std::size_t
BlockStructure::totalOutputs() const
{
    std::size_t s = 0;
    for (const auto& b : blocks_) {
        s += b.out_dim;
    }
    return s;
}

std::size_t
BlockStructure::totalInputs() const
{
    std::size_t s = 0;
    for (const auto& b : blocks_) {
        s += b.in_dim;
    }
    return s;
}

std::size_t
BlockStructure::inputOffset(std::size_t i) const
{
    if (i >= blocks_.size()) {
        throw std::out_of_range("BlockStructure: bad block index");
    }
    std::size_t off = 0;
    for (std::size_t k = 0; k < i; ++k) {
        off += blocks_[k].in_dim;
    }
    return off;
}

std::size_t
BlockStructure::outputOffset(std::size_t i) const
{
    if (i >= blocks_.size()) {
        throw std::out_of_range("BlockStructure: bad block index");
    }
    std::size_t off = 0;
    for (std::size_t k = 0; k < i; ++k) {
        off += blocks_[k].out_dim;
    }
    return off;
}

}  // namespace yukta::robust
