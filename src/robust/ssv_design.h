#ifndef YUKTA_ROBUST_SSV_DESIGN_H_
#define YUKTA_ROBUST_SSV_DESIGN_H_

/**
 * @file
 * Designer-facing SSV controller synthesis: the C++ equivalent of the
 * paper's MATLAB workflow (Sec. II-C / IV). The designer provides
 *
 *  - a discrete black-box model mapping [inputs u; external signals e]
 *    to outputs y (from system identification),
 *  - per-input saturation ranges, quantization steps, and weights W,
 *  - per-output deviation bounds B (absolute) and observed ranges,
 *  - an uncertainty guardband Delta (fraction, e.g. 0.4 for +-40%),
 *
 * and receives a discrete SSV controller
 *
 *    x(T+1) = A x(T) + B dy(T),   u(T) = C x(T) + D dy(T)
 *
 * with dy = [targets - outputs; external signals], together with the
 * SSV certificate: mu peak, min(s) = 1/mu, and the worst-case
 * (guaranteed) output deviation bounds mu * B.
 */

#include <optional>
#include <vector>

#include "control/state_space.h"
#include "robust/dk.h"
#include "robust/mu.h"
#include "robust/uncertainty.h"

namespace yukta::robust {

/** Complete synthesis specification for one layer's controller. */
struct SsvSpec
{
    /** Discrete model [u; e] -> y (strictly proper), ts > 0. */
    control::StateSpace model;

    std::size_t num_inputs = 0;   ///< I: actuated inputs (first cols).
    std::size_t num_external = 0; ///< E: external signals (last cols).

    std::vector<double> in_min;     ///< Input saturation floor, size I.
    std::vector<double> in_max;     ///< Input saturation ceiling, size I.
    std::vector<double> in_step;    ///< Input quantization step, size I.
    std::vector<double> in_weight;  ///< Input weights W, size I.

    std::vector<double> out_bound;  ///< Allowed |deviation| per output.
    std::vector<double> out_range;  ///< Observed output range (for
                                    ///< normalizing the uncertainty).

    double guardband = 0.4;    ///< Uncertainty guardband fraction.
    std::size_t max_order = 20;  ///< Runtime controller order cap.

    double perf_corner = 2.0;  ///< Performance weight corner (rad/s).
    double unc_corner = 4.0;   ///< Uncertainty channel corner (rad/s).

    /**
     * Extra DC gain on the performance weight. Asking for error <=
     * bound / boost at DC leaves margin, so the achieved deviation
     * stays inside the designer bound even at gamma slightly above 1.
     */
    double perf_dc_boost = 2.0;

    /**
     * Optional per-output boost override (same length as out_bound).
     * Yukta sets 1.0 for critical outputs whose bounds sit near the
     * actuator quantization (demanding sub-quantum tracking is
     * provably infeasible and only inflates gamma), and
     * perf_dc_boost elsewhere. Empty = perf_dc_boost everywhere.
     */
    std::vector<double> out_boost;

    DkOptions dk;  ///< D-K iteration options.
};

/** A synthesized SSV controller plus its robustness certificate. */
struct SsvController
{
    /** Discrete controller: dy = [r - y; e] -> u. */
    control::StateSpace k;

    double mu_peak = 0.0;  ///< SSV upper bound over frequency.
    double min_s = 0.0;    ///< Paper's min(s) = 1 / SSV.
    double gamma = 0.0;    ///< H-infinity level of the final K-step.

    /** The designer-declared deviation bounds B. */
    std::vector<double> design_bounds;

    /** Worst-case guaranteed deviation bounds: max(1, mu) * B. */
    std::vector<double> guaranteed_bounds;

    MuSweep sweep;             ///< Final mu sweep.
    BlockStructure structure;  ///< {model, quant, perf} blocks.
    int dk_iterations = 0;     ///< D-K rounds used.
};

/**
 * Builds the generalized plant for an SsvSpec.
 *
 * Ports: inputs [d (O); dq (I); r (O); e (E); u (I)],
 *        outputs [f (O); fq (I); z1 (O); z2 (I); y1 = r - y (O);
 *        y2 = e (E)].
 *
 * @param spec the layer specification.
 * @param continuous when true the plant is continuous time (for the
 *   K-step); when false it is discrete (for mu validation).
 */
control::StateSpace buildGeneralizedPlant(const SsvSpec& spec,
                                          bool continuous);

/** @return the H-infinity partition matching buildGeneralizedPlant. */
PlantPartition ssvPartition(const SsvSpec& spec);

/** @return the {model, quant, perf} block structure for the spec. */
BlockStructure ssvBlockStructure(const SsvSpec& spec);

/**
 * Synthesizes the layer's SSV controller.
 *
 * @return the controller and certificate, or std::nullopt when no
 *   stabilizing design exists within the gamma budget.
 * @throws std::invalid_argument on inconsistent specifications.
 */
std::optional<SsvController> ssvSynthesize(const SsvSpec& spec);

}  // namespace yukta::robust

#endif  // YUKTA_ROBUST_SSV_DESIGN_H_
