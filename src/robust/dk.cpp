#include "robust/dk.h"

#include <cmath>
#include <stdexcept>

#include "control/interconnect.h"
#include "core/contracts.h"
#include "linalg/matrix.h"
#include "obs/profile.h"

namespace yukta::robust {

using control::StateSpace;
using linalg::Matrix;

namespace {

/**
 * Applies constant D scalings to the perturbation channels of the
 * generalized plant: rows f_i scaled by d_i, columns d_i by 1/d_i;
 * performance and measurement ports untouched.
 */
StateSpace
scalePlant(const StateSpace& p, const PlantPartition& part,
           const BlockStructure& s, const std::vector<double>& d)
{
    auto [d_left, d_right_inv] = buildDScalings(s, d);
    // Extend to the full port set: the structure covers the first
    // part.nz outputs and part.nw inputs exactly (perf block included
    // with scale pinned at 1), leaving y rows and u columns.
    std::size_t ny = p.numOutputs() - part.nz;
    std::size_t nu = p.numInputs() - part.nw;
    Matrix out_scale = blkdiag(d_left, Matrix::identity(ny));
    Matrix in_scale = blkdiag(d_right_inv, Matrix::identity(nu));
    return p.scaled(out_scale, in_scale);
}

}  // namespace

std::optional<DkResult>
dkSynthesize(const StateSpace& p, const PlantPartition& part,
             const BlockStructure& structure, const DkOptions& options)
{
    YUKTA_PROFILE_SCOPE("dk_synthesize");
    if (structure.totalOutputs() != part.nw ||
        structure.totalInputs() != part.nz) {
        throw std::invalid_argument("dkSynthesize: structure does not "
                                    "cover the perturbation+performance "
                                    "ports");
    }
    if (structure.numBlocks() < 1) {
        throw std::invalid_argument("dkSynthesize: need at least the "
                                    "performance block");
    }
    YUKTA_REQUIRE(options.max_iterations >= 1,
                  "dkSynthesize: max_iterations = ", options.max_iterations);
    YUKTA_REQUIRE(options.gamma_lo > 0.0 &&
                      options.gamma_lo < options.gamma_hi,
                  "dkSynthesize: bad gamma bisection range [",
                  options.gamma_lo, ", ", options.gamma_hi, "]");
    YUKTA_REQUIRE(options.mu_grid >= 2, "dkSynthesize: mu_grid = ",
                  options.mu_grid);

    std::vector<double> d(structure.numBlocks(), 1.0);
    std::optional<DkResult> best;

    for (int iter = 0; iter < options.max_iterations; ++iter) {
        StateSpace scaled = scalePlant(p, part, structure, d);
        auto kres =
            hinfSynthesize(scaled, part, options.gamma_lo, options.gamma_hi,
                           options.bisection_steps);
        if (!kres) {
            break;
        }

        // mu analysis on the *unscaled* closed loop.
        StateSpace n = control::lftLower(p, kres->k, part.nz, part.nw);
        if (!n.isStable(1e-9)) {
            break;
        }
        MuSweep sweep = muFrequencySweep(n, structure, options.mu_grid);

        if (!best || sweep.peak < best->mu_peak) {
            DkResult r;
            r.k = kres->k;
            r.mu_peak = sweep.peak;
            r.min_s = sweep.peak > 0.0 ? 1.0 / sweep.peak : 1e300;
            r.gamma = kres->gamma;
            r.d_scales = d;
            r.sweep = sweep;
            r.iterations = iter + 1;
            best = std::move(r);
        }

        // Constant-D fit: adopt the optimal scalings at the peak
        // frequency for the next K-step.
        std::size_t peak_idx = 0;
        for (std::size_t i = 0; i < sweep.mu.size(); ++i) {
            if (sweep.mu[i].upper >= sweep.mu[peak_idx].upper) {
                peak_idx = i;
            }
        }
        std::vector<double> d_next = sweep.mu[peak_idx].d_scales;
        bool changed = false;
        for (std::size_t i = 0; i < d.size(); ++i) {
            // A degenerate D fit would silently detune every later
            // K-step; the scaled plant stays well-posed only for
            // strictly positive, finite scales.
            YUKTA_REQUIRE(std::isfinite(d_next[i]) && d_next[i] > 0.0,
                          "dkSynthesize: degenerate D scale d[", i,
                          "] = ", d_next[i], " at iteration ", iter);
            if (std::abs(std::log(d_next[i] / d[i])) > 0.05) {
                changed = true;
            }
        }
        d = std::move(d_next);
        if (!changed && iter > 0) {
            break;  // converged
        }
    }
    return best;
}

}  // namespace yukta::robust
