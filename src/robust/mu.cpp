#include "robust/mu.h"

#include <cmath>
#include <stdexcept>

#include "control/state_space.h"
#include "core/contracts.h"
#include "linalg/svd.h"
#include "robust/worst_case.h"

namespace yukta::robust {

using linalg::CMatrix;
using linalg::Matrix;

namespace {

/** sigma_max of the D-scaled matrix for the given per-block scales. */
double
scaledSigma(const CMatrix& m, const BlockStructure& s,
            const std::vector<double>& d)
{
    CMatrix scaled = m;
    // Rows (f channel) scaled by d_i, columns (d channel) by 1/d_j.
    for (std::size_t bi = 0; bi < s.numBlocks(); ++bi) {
        std::size_t r0 = s.inputOffset(bi);
        for (std::size_t r = r0; r < r0 + s.block(bi).in_dim; ++r) {
            for (std::size_t c = 0; c < scaled.cols(); ++c) {
                scaled(r, c) *= d[bi];
            }
        }
    }
    for (std::size_t bj = 0; bj < s.numBlocks(); ++bj) {
        std::size_t c0 = s.outputOffset(bj);
        for (std::size_t c = c0; c < c0 + s.block(bj).out_dim; ++c) {
            for (std::size_t r = 0; r < scaled.rows(); ++r) {
                scaled(r, c) /= d[bj];
            }
        }
    }
    return linalg::sigmaMax(scaled);
}

/** Golden-section minimization of f over [lo, hi]. */
template <typename F>
double
goldenMin(F f, double lo, double hi, int iters)
{
    const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
    double a = lo;
    double b = hi;
    double x1 = b - phi * (b - a);
    double x2 = a + phi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    for (int i = 0; i < iters; ++i) {
        if (f1 < f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - phi * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + phi * (b - a);
            f2 = f(x2);
        }
    }
    return f1 < f2 ? x1 : x2;
}

}  // namespace

MuBound
computeMu(const CMatrix& m, const BlockStructure& s)
{
    if (s.numBlocks() == 0) {
        throw std::invalid_argument("computeMu: empty block structure");
    }
    if (m.rows() != s.totalInputs() || m.cols() != s.totalOutputs()) {
        throw std::invalid_argument("computeMu: M shape does not match "
                                    "the block structure");
    }
    YUKTA_CHECK_FINITE(m, "computeMu: non-finite frequency response");

    MuBound out;
    out.d_scales.assign(s.numBlocks(), 1.0);

    // Lower bound: each block alone gives mu >= sigma_max(M_ii), and
    // the power iteration searches over joint structured directions.
    for (std::size_t i = 0; i < s.numBlocks(); ++i) {
        CMatrix mii = m.block(s.inputOffset(i), s.outputOffset(i),
                              s.block(i).in_dim, s.block(i).out_dim);
        out.lower = std::max(out.lower, linalg::sigmaMax(mii));
    }
    out.lower = std::max(out.lower, muLowerBound(m, s, 30).mu_lower);

    // Upper bound: cyclic coordinate descent over log10(d_i), last
    // block pinned to 1 (D-scaling is invariant to common scale).
    std::vector<double> d(s.numBlocks(), 1.0);
    if (s.numBlocks() > 1) {
        const int sweeps = 3;
        for (int sw = 0; sw < sweeps; ++sw) {
            for (std::size_t i = 0; i + 1 < s.numBlocks(); ++i) {
                double best_log = goldenMin(
                    [&](double lg) {
                        std::vector<double> dd = d;
                        dd[i] = std::pow(10.0, lg);
                        return scaledSigma(m, s, dd);
                    },
                    -4.0, 4.0, 40);
                d[i] = std::pow(10.0, best_log);
            }
        }
    }
    out.d_scales = d;
    out.upper = scaledSigma(m, s, d);
    // The unscaled sigma_max is always a valid upper bound too.
    out.upper = std::min(out.upper, linalg::sigmaMax(m));
    // Guard against numerical inversion of the ordering.
    out.upper = std::max(out.upper, out.lower);
    return out;
}

MuSweep
muFrequencySweep(const control::StateSpace& n, const BlockStructure& s,
                 std::size_t grid_points)
{
    if (n.numInputs() != s.totalOutputs() ||
        n.numOutputs() != s.totalInputs()) {
        throw std::invalid_argument("muFrequencySweep: system ports do not "
                                    "match the block structure");
    }
    if (grid_points < 2) {
        throw std::invalid_argument("muFrequencySweep: need >= 2 points");
    }

    MuSweep out;
    double lo;
    double hi;
    if (n.isDiscrete()) {
        lo = 1e-4 / n.ts;             // near DC, strictly inside (0, pi/Ts]
        hi = M_PI / n.ts;             // Nyquist, hit exactly
    } else {
        lo = 1e-3;
        hi = 1e3;
    }
    out.freqs = control::logSpacedFrequencies(lo, hi, grid_points);
    out.mu.reserve(grid_points);
    const std::vector<CMatrix> resp = n.freqResponseBatch(out.freqs);
    for (std::size_t i = 0; i < grid_points; ++i) {
        MuBound b = computeMu(resp[i], s);
        if (b.upper > out.peak) {
            out.peak = b.upper;
            out.peak_freq = out.freqs[i];
        }
        out.mu.push_back(std::move(b));
    }
    return out;
}

std::pair<Matrix, Matrix>
buildDScalings(const BlockStructure& s, const std::vector<double>& d_scales)
{
    if (d_scales.size() != s.numBlocks()) {
        throw std::invalid_argument("buildDScalings: scale count mismatch");
    }
    std::vector<double> left(s.totalInputs());
    std::vector<double> right_inv(s.totalOutputs());
    for (std::size_t i = 0; i < s.numBlocks(); ++i) {
        if (d_scales[i] <= 0.0) {
            throw std::invalid_argument("buildDScalings: non-positive scale");
        }
        std::size_t r0 = s.inputOffset(i);
        for (std::size_t r = 0; r < s.block(i).in_dim; ++r) {
            left[r0 + r] = d_scales[i];
        }
        std::size_t c0 = s.outputOffset(i);
        for (std::size_t c = 0; c < s.block(i).out_dim; ++c) {
            right_inv[c0 + c] = 1.0 / d_scales[i];
        }
    }
    return {Matrix::diag(left), Matrix::diag(right_inv)};
}

}  // namespace yukta::robust
