#include "robust/worst_case.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "linalg/eig.h"

namespace yukta::robust {

using linalg::CMatrix;
using linalg::Complex;

namespace {

/** Normalizes each block segment of @p v to unit norm (in place). */
void
normalizePerBlock(std::vector<Complex>& v, const BlockStructure& s,
                  bool input_side)
{
    std::size_t off = 0;
    for (std::size_t i = 0; i < s.numBlocks(); ++i) {
        std::size_t len =
            input_side ? s.block(i).in_dim : s.block(i).out_dim;
        double norm = 0.0;
        for (std::size_t k = 0; k < len; ++k) {
            norm += std::norm(v[off + k]);
        }
        norm = std::sqrt(norm);
        if (norm < 1e-300) {
            // Degenerate direction: restart deterministically.
            for (std::size_t k = 0; k < len; ++k) {
                v[off + k] = Complex(1.0 / std::sqrt(double(len)), 0.0);
            }
        } else {
            for (std::size_t k = 0; k < len; ++k) {
                v[off + k] /= norm;
            }
        }
        off += len;
    }
}

}  // namespace

WorstCasePerturbation
muLowerBound(const CMatrix& m, const BlockStructure& s, int iterations)
{
    if (m.rows() != s.totalInputs() || m.cols() != s.totalOutputs()) {
        throw std::invalid_argument("muLowerBound: shape mismatch");
    }
    std::size_t nd = s.totalOutputs();
    std::size_t nf = s.totalInputs();

    WorstCasePerturbation best;
    CMatrix mh = m.adjoint();

    std::mt19937 rng(7);
    std::normal_distribution<double> gauss(0.0, 1.0);

    for (int restart = 0; restart < 3; ++restart) {
        // b lives in the d space (per-block out_dim segments),
        // w in the f space (per-block in_dim segments).
        std::vector<Complex> b(nd);
        for (Complex& x : b) {
            x = Complex(gauss(rng), gauss(rng));
        }
        normalizePerBlock(b, s, /*input_side=*/false);
        std::vector<Complex> w(nf);

        for (int it = 0; it < iterations; ++it) {
            // a = M b (f space), align w per block.
            for (std::size_t r = 0; r < nf; ++r) {
                Complex acc(0.0, 0.0);
                for (std::size_t c = 0; c < nd; ++c) {
                    acc += m(r, c) * b[c];
                }
                w[r] = acc;
            }
            normalizePerBlock(w, s, /*input_side=*/true);
            // z = M^H w (d space), align b per block.
            for (std::size_t r = 0; r < nd; ++r) {
                Complex acc(0.0, 0.0);
                for (std::size_t c = 0; c < nf; ++c) {
                    acc += mh(r, c) * w[c];
                }
                b[r] = acc;
            }
            normalizePerBlock(b, s, /*input_side=*/false);
        }

        // Candidate perturbation: Delta_i = b_i w_i^H (rank one,
        // sigma_max = 1). The certified bound is rho(M Delta).
        WorstCasePerturbation cand;
        cand.blocks.reserve(s.numBlocks());
        for (std::size_t i = 0; i < s.numBlocks(); ++i) {
            std::size_t od = s.block(i).out_dim;
            std::size_t id = s.block(i).in_dim;
            std::size_t oo = s.outputOffset(i);
            std::size_t io = s.inputOffset(i);
            CMatrix blk(od, id);
            for (std::size_t r = 0; r < od; ++r) {
                for (std::size_t c = 0; c < id; ++c) {
                    blk(r, c) = b[oo + r] * std::conj(w[io + c]);
                }
            }
            cand.blocks.push_back(std::move(blk));
        }
        CMatrix delta = assemblePerturbation(s, cand);
        CMatrix loop = m * delta;  // f -> f
        double rho = 0.0;
        for (const Complex& l : linalg::eigenvalues(loop)) {
            rho = std::max(rho, std::abs(l));
        }
        cand.mu_lower = rho;
        if (cand.mu_lower > best.mu_lower) {
            best = std::move(cand);
        }
    }
    return best;
}

CMatrix
assemblePerturbation(const BlockStructure& s,
                     const WorstCasePerturbation& wc)
{
    if (wc.blocks.size() != s.numBlocks()) {
        throw std::invalid_argument("assemblePerturbation: block count");
    }
    CMatrix delta(s.totalOutputs(), s.totalInputs());
    for (std::size_t i = 0; i < s.numBlocks(); ++i) {
        delta.setBlock(s.outputOffset(i), s.inputOffset(i), wc.blocks[i]);
    }
    return delta;
}

}  // namespace yukta::robust
