#ifndef YUKTA_ROBUST_WEIGHTS_H_
#define YUKTA_ROBUST_WEIGHTS_H_

/**
 * @file
 * Shaping weights used when assembling generalized plants. Yukta uses
 * strictly proper first-order performance weights so that the
 * synthesized plant satisfies the D11 = 0 assumption of the DGKF
 * central controller.
 */

#include <vector>

#include "control/state_space.h"

namespace yukta::robust {

/**
 * First-order weight W(s) = hf + (dc - hf) * wc / (s + wc):
 * gain @p dc at DC rolling to @p hf above corner @p wc.
 *
 * @param dc DC gain (> 0 for performance weights).
 * @param wc corner frequency in rad/s (> 0).
 * @param hf high-frequency gain (0 gives a strictly proper weight).
 * @return continuous-time SISO weight.
 */
control::StateSpace makeWeight(double dc, double wc, double hf = 0.0);

/**
 * Diagonal stack of first-order weights with per-channel DC gains and
 * a common corner/high-frequency behaviour.
 */
control::StateSpace makeDiagonalWeight(const std::vector<double>& dc_gains,
                                       double wc, double hf = 0.0);

/** Static diagonal gain as a (continuous) system. */
control::StateSpace staticDiagonal(const std::vector<double>& gains);

}  // namespace yukta::robust

#endif  // YUKTA_ROBUST_WEIGHTS_H_
