#ifndef YUKTA_ROBUST_DK_H_
#define YUKTA_ROBUST_DK_H_

/**
 * @file
 * D-K iteration (mu-synthesis): alternating H-infinity K-steps on a
 * D-scaled plant with constant-D fitting from the mu upper bound.
 * This reproduces the controller-search loop the paper runs in
 * MATLAB: find K, evaluate SSV, and keep tightening until
 * SSV <= 1 (min(s) >= 1) or the iteration budget is exhausted.
 */

#include <optional>
#include <vector>

#include "control/state_space.h"
#include "robust/hinf.h"
#include "robust/mu.h"
#include "robust/uncertainty.h"

namespace yukta::robust {

/** Options for dkSynthesize(). */
struct DkOptions
{
    int max_iterations = 4;       ///< D-K rounds.
    std::size_t mu_grid = 32;     ///< Frequencies in the mu sweep.
    double gamma_lo = 0.05;       ///< Bisection floor.
    double gamma_hi = 1e4;        ///< Bisection ceiling.
    int bisection_steps = 20;     ///< Gamma bisection iterations.
};

/** Result of a mu-synthesis run. */
struct DkResult
{
    control::StateSpace k;          ///< Controller (y -> u).
    double mu_peak = 0.0;           ///< Certified SSV upper-bound peak.
    double min_s = 0.0;             ///< 1 / mu_peak (paper's min(s)).
    double gamma = 0.0;             ///< Final K-step gamma.
    std::vector<double> d_scales;   ///< Final constant D scalings.
    MuSweep sweep;                  ///< Final mu sweep of the loop.
    int iterations = 0;             ///< Rounds actually run.
};

/**
 * Runs D-K iteration on a generalized plant whose input/output ports
 * are ordered [d_1..d_k, w_perf | u] -> [f_1..f_k, z_perf | y], with
 * @p structure listing the uncertainty blocks followed by one
 * performance block.
 *
 * @param p generalized plant (discrete or continuous).
 * @param part H-infinity partition: nw = all perturbation+performance
 *   inputs, nz = all perturbation+performance outputs.
 * @param structure uncertainty blocks + trailing performance block;
 *   totalOutputs() must equal part.nw and totalInputs() part.nz.
 * @return best controller with its SSV certificate, or std::nullopt
 *   when no stabilizing controller is found at any gamma.
 */
std::optional<DkResult> dkSynthesize(const control::StateSpace& p,
                                     const PlantPartition& part,
                                     const BlockStructure& structure,
                                     const DkOptions& options = {});

}  // namespace yukta::robust

#endif  // YUKTA_ROBUST_DK_H_
