#ifndef YUKTA_ROBUST_MU_H_
#define YUKTA_ROBUST_MU_H_

/**
 * @file
 * Structured Singular Value (SSV / mu) analysis.
 *
 * For a complex matrix M and block structure Delta, the SSV is
 *
 *   mu(M) = 1 / min{ sigma_max(Delta) : det(I - M Delta) = 0 },
 *
 * the reciprocal of the smallest structured perturbation that makes
 * the loop singular (Eq. 1 of the paper in its scaled form). We
 * compute the standard D-scaling upper bound
 *
 *   mu(M) <= min_D sigma_max(D_L M D_R^{-1})
 *
 * with one positive scalar per block (exact for <= 3 full blocks,
 * which covers Yukta's {model, quantization, performance} structure),
 * and a power-iteration style lower bound for cross-checking.
 */

#include <vector>

#include "control/state_space.h"
#include "linalg/cmatrix.h"
#include "robust/uncertainty.h"

namespace yukta::robust {

/** Result of a mu computation at one frequency. */
struct MuBound
{
    double upper = 0.0;            ///< D-scaled upper bound.
    double lower = 0.0;            ///< Power-iteration lower bound.
    std::vector<double> d_scales;  ///< Optimal per-block D scalings.
};

/**
 * Computes the mu upper (and lower) bound of @p m with respect to
 * @p structure.
 *
 * @param m complex matrix of shape (totalInputs x totalOutputs) --
 *   i.e. M maps the stacked d channel to the stacked f channel.
 * @throws std::invalid_argument when shapes disagree.
 */
MuBound computeMu(const linalg::CMatrix& m, const BlockStructure& structure);

/** Result of sweeping mu over a frequency grid. */
struct MuSweep
{
    std::vector<double> freqs;  ///< Angular frequencies (rad/s).
    std::vector<MuBound> mu;    ///< Bound per frequency.
    double peak = 0.0;          ///< max over frequencies of mu.upper.
    double peak_freq = 0.0;     ///< argmax frequency.
};

/**
 * Sweeps mu of a (closed-loop) system N over a log frequency grid.
 * For discrete systems the grid spans (0, pi/Ts].
 *
 * @param n system whose input/output dimensions match the structure.
 * @param structure block structure.
 * @param grid_points number of grid frequencies.
 */
MuSweep muFrequencySweep(const control::StateSpace& n,
                         const BlockStructure& structure,
                         std::size_t grid_points = 48);

/**
 * Builds the constant D-scaling matrices (left and right) from
 * per-block scalars, for scaling a plant's perturbation channels.
 *
 * @param structure block structure.
 * @param d_scales one positive scalar per block.
 * @return {d_left (totalInputs sq.), d_right_inv (totalOutputs sq.)}.
 */
std::pair<linalg::Matrix, linalg::Matrix>
buildDScalings(const BlockStructure& structure,
               const std::vector<double>& d_scales);

}  // namespace yukta::robust

#endif  // YUKTA_ROBUST_MU_H_
