#ifndef YUKTA_ROBUST_HINF_H_
#define YUKTA_ROBUST_HINF_H_

/**
 * @file
 * H-infinity output-feedback synthesis via the two-Riccati (DGKF)
 * central controller, with gamma bisection. This is the K-step of
 * Yukta's D-K iteration (mu-synthesis).
 *
 * The synthesis is performed in continuous time, where the DGKF
 * formulas apply; discrete plants are mapped through the bilinear
 * transform (which preserves the H-infinity norm) and the controller
 * is mapped back.
 */

#include <optional>

#include "control/state_space.h"

namespace yukta::robust {

/** Partition of a generalized plant P: [w; u] -> [z; y]. */
struct PlantPartition
{
    std::size_t nw = 0;  ///< Exogenous inputs (first input block).
    std::size_t nu = 0;  ///< Control inputs (last input block).
    std::size_t nz = 0;  ///< Performance outputs (first output block).
    std::size_t ny = 0;  ///< Measured outputs (last output block).
};

/** Result of an H-infinity synthesis. */
struct HinfResult
{
    control::StateSpace k;   ///< Controller (y -> u), same timebase as P.
    double gamma = 0.0;      ///< Guaranteed closed-loop norm bound.
    double achieved = 0.0;   ///< Measured closed-loop norm (freq sweep).
};

/**
 * Approximates the H-infinity norm of a stable system by a dense
 * frequency sweep with local refinement.
 *
 * @param sys stable LTI system.
 * @param grid_points sweep resolution.
 */
double hinfNorm(const control::StateSpace& sys, std::size_t grid_points = 96);

/**
 * Attempts synthesis at a fixed gamma.
 *
 * @param p generalized continuous-time plant.
 * @param part port partition (nw+nu / nz+ny must match P).
 * @param gamma target closed-loop norm.
 * @return controller on success; std::nullopt when the Riccati
 *   conditions fail or the validated closed loop exceeds gamma.
 */
std::optional<control::StateSpace>
hinfSynthesizeAtGamma(const control::StateSpace& p, const PlantPartition& part,
                      double gamma);

/**
 * Bisects gamma in [gamma_lo, gamma_hi] and returns the best
 * controller found. Works for continuous or discrete plants (discrete
 * plants detour through the bilinear transform).
 *
 * @return std::nullopt when even gamma_hi is infeasible.
 */
std::optional<HinfResult> hinfSynthesize(const control::StateSpace& p,
                                         const PlantPartition& part,
                                         double gamma_lo = 0.05,
                                         double gamma_hi = 1e4,
                                         int bisection_steps = 24);

}  // namespace yukta::robust

#endif  // YUKTA_ROBUST_HINF_H_
