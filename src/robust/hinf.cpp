#include "robust/hinf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "control/discretize.h"
#include "control/interconnect.h"
#include "control/riccati.h"
#include "core/contracts.h"
#include "linalg/eig.h"
#include "linalg/lu.h"
#include "linalg/svd.h"
#include "obs/profile.h"

namespace yukta::robust {

using control::StateSpace;
using linalg::Matrix;

namespace {

/** Checks that the partition covers the plant exactly. */
void
validatePartition(const StateSpace& p, const PlantPartition& part)
{
    if (part.nw + part.nu != p.numInputs() ||
        part.nz + part.ny != p.numOutputs() || part.nu == 0 ||
        part.ny == 0 || part.nz == 0 || part.nw == 0) {
        throw std::invalid_argument("hinf: bad plant partition");
    }
}

/** Plant data after partitioning. */
struct Partitioned
{
    Matrix a, b1, b2, c1, c2, d11, d12, d21, d22;
};

Partitioned
split(const StateSpace& p, const PlantPartition& part)
{
    std::size_t n = p.numStates();
    Partitioned out;
    out.a = p.a;
    out.b1 = p.b.block(0, 0, n, part.nw);
    out.b2 = p.b.block(0, part.nw, n, part.nu);
    out.c1 = p.c.block(0, 0, part.nz, n);
    out.c2 = p.c.block(part.nz, 0, part.ny, n);
    out.d11 = p.d.block(0, 0, part.nz, part.nw);
    out.d12 = p.d.block(0, part.nw, part.nz, part.nu);
    out.d21 = p.d.block(part.nz, 0, part.ny, part.nw);
    out.d22 = p.d.block(part.nz, part.nw, part.ny, part.nu);
    return out;
}

}  // namespace

double
hinfNorm(const StateSpace& sys, std::size_t grid_points)
{
    if (grid_points < 2) {
        throw std::invalid_argument("hinfNorm: need >= 2 grid points");
    }
    double lo;
    double hi;
    if (sys.isDiscrete()) {
        lo = 1e-4 / sys.ts;
        hi = M_PI / sys.ts;  // Nyquist: the grid must not pass it.
    } else {
        lo = 1e-4;
        hi = 1e4;
    }
    const std::vector<double> grid =
        control::logSpacedFrequencies(lo, hi, grid_points);
    const std::vector<linalg::CMatrix> resp = sys.freqResponseBatch(grid);
    std::vector<double> sig(grid_points);
    for (std::size_t i = 0; i < grid_points; ++i) {
        sig[i] = linalg::sigmaMax(resp[i]);
    }

    const double llo = std::log10(lo);
    const double lhi = std::log10(hi);
    const double step0 = (lhi - llo) / static_cast<double>(grid_points - 1);
    double peak = 0.0;
    for (double s : sig) {
        peak = std::max(peak, s);
    }

    // Refine around EVERY grid local maximum, not just the global
    // argmax: a narrow resonance can lose the coarse-grid vote to a
    // broad but lower plateau and still carry the true peak.
    struct Seed
    {
        double lw;
        double val;
    };
    std::vector<Seed> seeds;
    for (std::size_t i = 0; i < grid_points; ++i) {
        const bool up = i == 0 || sig[i] >= sig[i - 1];
        const bool down = i + 1 == grid_points || sig[i] >= sig[i + 1];
        if (up && down) {
            seeds.push_back({llo + step0 * static_cast<double>(i), sig[i]});
        }
    }
    for (const Seed& seed : seeds) {
        double peak_lw = seed.lw;
        double local = seed.val;
        double step = step0;
        // Convergent refinement (step shrinks 4x per round) clamped
        // to [llo, lhi] so no probe ever lands past Nyquist.
        for (int r = 0; r < 10 && step > 1e-8; ++r) {
            std::vector<double> lws;
            lws.reserve(9);
            for (int k = -4; k <= 4; ++k) {
                lws.push_back(std::clamp(peak_lw + step * k / 4.0,
                                         llo, lhi));
            }
            std::vector<double> ws;
            ws.reserve(lws.size());
            for (double lw : lws) {
                // Pin clamped boundary probes to the exact grid ends.
                double w = std::pow(10.0, lw);
                if (lw == llo) {
                    w = lo;
                }
                if (lw == lhi) {
                    w = hi;
                }
                ws.push_back(w);
            }
            const std::vector<linalg::CMatrix> rr =
                sys.freqResponseBatch(ws);
            for (std::size_t k = 0; k < rr.size(); ++k) {
                const double s = linalg::sigmaMax(rr[k]);
                if (s > local) {
                    local = s;
                    peak_lw = lws[k];
                }
            }
            step /= 4.0;
        }
        peak = std::max(peak, local);
    }
    // DC (continuous) / z=1 (discrete) is part of the closure.
    peak = std::max(peak, linalg::sigmaMax(sys.dcGain()));
    return peak;
}

std::optional<StateSpace>
hinfSynthesizeAtGamma(const StateSpace& p, const PlantPartition& part,
                      double gamma)
{
    if (!p.isContinuous()) {
        throw std::invalid_argument(
            "hinfSynthesizeAtGamma: continuous plants only");
    }
    validatePartition(p, part);
    Partitioned g = split(p, part);
    std::size_t n = p.numStates();
    if (n == 0) {
        return std::nullopt;
    }

    // --- Port normalization so D12' D12 = I and D21 D21' = I. ---
    // D12 = U1 [S1; 0] V1': substitute u = V1 S1^{-1} u~ and rotate
    // z~ = U1' z (norm-preserving).
    linalg::Svd s12 = linalg::svd(g.d12);
    if (s12.s.empty() || s12.s.back() < 1e-9 * (1.0 + s12.s.front()) ||
        s12.s.size() < part.nu) {
        return std::nullopt;  // D12 not full column rank
    }
    linalg::Svd s21 = linalg::svd(g.d21);
    if (s21.s.empty() || s21.s.back() < 1e-9 * (1.0 + s21.s.front()) ||
        s21.s.size() < part.ny) {
        return std::nullopt;  // D21 not full row rank
    }

    std::vector<double> s1_inv(part.nu);
    for (std::size_t i = 0; i < part.nu; ++i) {
        s1_inv[i] = 1.0 / s12.s[i];
    }
    std::vector<double> s2_inv(part.ny);
    for (std::size_t i = 0; i < part.ny; ++i) {
        s2_inv[i] = 1.0 / s21.s[i];
    }
    // Input transform: u = ru * u~, ru = V1 S1^{-1} (nu x nu).
    Matrix ru = s12.v * Matrix::diag(s1_inv);
    // Output transform: y~ = ry * y, ry = S2^{-1} U2' (ny x ny).
    Matrix ry = Matrix::diag(s2_inv) * s21.u.transpose();

    Matrix b2 = g.b2 * ru;
    Matrix d12 = g.d12 * ru;          // orthonormal columns
    Matrix c2 = ry * g.c2;
    Matrix d21 = ry * g.d21;          // orthonormal rows
    const Matrix& b1 = g.b1;
    const Matrix& c1 = g.c1;

    if (g.d11.maxAbs() > 1e-9) {
        // The central-controller formulas below assume D11 = 0; Yukta
        // builds its generalized plants with strictly proper
        // performance weights so this never triggers in the design
        // flow.
        return std::nullopt;
    }

    double g2 = 1.0 / (gamma * gamma);

    // --- Control Riccati (cross terms folded in). ---
    Matrix d12t_c1 = d12.transpose() * c1;
    Matrix as = g.a - b2 * d12t_c1;
    Matrix c1p = c1 - d12 * d12t_c1;  // (I - D12 D12') C1
    Matrix qx = c1p.transpose() * c1p;
    Matrix gx = b2 * b2.transpose() - g2 * (b1 * b1.transpose());
    auto xres = control::care(as, gx, qx);
    if (!xres || !linalg::isPositiveSemidefinite(xres->x, 1e-6)) {
        return std::nullopt;
    }

    // --- Filter Riccati (dual). ---
    Matrix b1_d21t = b1 * d21.transpose();
    Matrix af = g.a - b1_d21t * c2;
    Matrix b1p = b1 - b1_d21t * d21;  // B1 (I - D21' D21)
    Matrix qy = b1p * b1p.transpose();
    Matrix gy = c2.transpose() * c2 - g2 * (c1.transpose() * c1);
    auto yres = control::care(af.transpose(), gy, qy);
    if (!yres || !linalg::isPositiveSemidefinite(yres->x, 1e-6)) {
        return std::nullopt;
    }

    const Matrix& x = xres->x;
    const Matrix& y = yres->x;

    // Coupling condition rho(XY) < gamma^2.
    if (linalg::spectralRadius(x * y) >= gamma * gamma * (1.0 - 1e-9)) {
        return std::nullopt;
    }

    // --- Central controller. ---
    Matrix f = -1.0 * (d12t_c1 + b2.transpose() * x);
    Matrix l = -1.0 * (b1_d21t + y * c2.transpose());
    Matrix iyx = Matrix::identity(n) - g2 * (y * x);
    linalg::Lu lu(iyx);
    if (!lu.invertible()) {
        return std::nullopt;
    }
    Matrix zl = lu.solve(l);  // Z L, Z = (I - g^-2 Y X)^{-1}

    Matrix c2h = c2 + g2 * (d21 * b1.transpose() * x);
    Matrix ak = g.a + g2 * (b1 * b1.transpose() * x) + b2 * f + zl * c2h;
    Matrix bk = -1.0 * zl;
    Matrix ck = f;
    Matrix dk(part.nu, part.ny);

    // Undo the port normalization: K = ru * K~ * ry.
    StateSpace k(ak, bk * ry, ru * ck, ru * dk * ry, 0.0);

    // Handle D22 != 0: K <- K (I + D22 K)^{-1}.
    if (g.d22.maxAbs() > 1e-12) {
        Matrix i_dk = Matrix::identity(part.ny) + g.d22 * k.d;
        linalg::Lu lu2(i_dk);
        if (!lu2.invertible()) {
            return std::nullopt;
        }
        Matrix m = lu2.inverse();
        Matrix ak2 = k.a - k.b * m * g.d22 * k.c;
        Matrix bk2 = k.b * m;
        Matrix ck2 = (Matrix::identity(part.nu) - k.d * m * g.d22) * k.c;
        Matrix dk2 = k.d * m;
        k = StateSpace(ak2, bk2, ck2, dk2, 0.0);
    }

    // --- A-posteriori validation: closed loop stable and below gamma.
    StateSpace cl = control::lftLower(p, k, part.nz, part.nw);
    if (!cl.isStable(1e-9)) {
        return std::nullopt;
    }
    double achieved = hinfNorm(cl, 64);
    if (achieved > gamma * (1.0 + 1e-4)) {
        return std::nullopt;
    }
    return k;
}

std::optional<HinfResult>
hinfSynthesize(const StateSpace& p, const PlantPartition& part,
               double gamma_lo, double gamma_hi, int bisection_steps)
{
    YUKTA_PROFILE_SCOPE("hinf_synthesize");
    validatePartition(p, part);
    YUKTA_CHECK_FINITE(p.a, "hinfSynthesize: non-finite plant A matrix");
    YUKTA_CHECK_FINITE(p.b, "hinfSynthesize: non-finite plant B matrix");
    YUKTA_CHECK_FINITE(p.c, "hinfSynthesize: non-finite plant C matrix");
    YUKTA_CHECK_FINITE(p.d, "hinfSynthesize: non-finite plant D matrix");
    YUKTA_REQUIRE(bisection_steps >= 1, "hinfSynthesize: bisection_steps = ",
                  bisection_steps);

    const bool discrete = p.isDiscrete();
    StateSpace pc = discrete ? control::d2c(p) : p;

    auto attempt = [&](double gamma) -> std::optional<StateSpace> {
        return hinfSynthesizeAtGamma(pc, part, gamma);
    };

    // Establish feasibility at gamma_hi (with a few enlargements).
    std::optional<StateSpace> best;
    double best_gamma = gamma_hi;
    for (int i = 0; i < 3 && !best; ++i) {
        best = attempt(best_gamma);
        if (!best) {
            best_gamma *= 10.0;
        }
    }
    if (!best) {
        return std::nullopt;
    }

    double lo = gamma_lo;
    double hi = best_gamma;
    for (int i = 0; i < bisection_steps; ++i) {
        double mid = std::sqrt(lo * hi);  // geometric bisection
        auto k = attempt(mid);
        if (k) {
            best = std::move(k);
            best_gamma = mid;
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi / lo < 1.02) {
            break;
        }
    }

    HinfResult out;
    out.k = discrete ? control::c2d(*best, p.ts) : *best;
    out.gamma = best_gamma;
    StateSpace cl = control::lftLower(p, out.k, part.nz, part.nw);
    out.achieved = cl.isStable() ? hinfNorm(cl) : 1e300;
    return out;
}

}  // namespace yukta::robust
