#include "core/spec.h"

#include <stdexcept>

namespace yukta::core {

InterfaceExchange
publishInterface(const LayerSpec& layer)
{
    InterfaceExchange ex;
    ex.from_layer = layer.layer_name;
    ex.published_inputs = layer.inputs;
    ex.published_outputs = layer.outputs;
    return ex;
}

LayerSpec
hardwareLayerSpec(const platform::BoardConfig& cfg,
                  const std::vector<double>& output_ranges, double guardband,
                  double perf_bound_fraction, double input_weight)
{
    if (output_ranges.size() != 4) {
        throw std::invalid_argument("hardwareLayerSpec: need 4 ranges");
    }
    LayerSpec spec;
    spec.layer_name = "hardware";
    // The synthesis weight W_u is weight/range; a 2.5x internal scale
    // keeps the loop bandwidth moderate against the identified model's
    // uncertainty (the designer-facing weight stays the Table II "1").
    double w = 2.5 * input_weight;
    spec.inputs = {
        {"#big cores", 1.0, static_cast<double>(cfg.big.num_cores), 1.0,
         w},
        {"#little cores", 1.0, static_cast<double>(cfg.little.num_cores),
         1.0, w},
        {"frequency_big", cfg.big.freq_min, cfg.big.freq_max,
         cfg.big.freq_step, w},
        {"frequency_little", cfg.little.freq_min, cfg.little.freq_max,
         cfg.little.freq_step, w},
    };
    spec.outputs = {
        {"Performance", perf_bound_fraction, output_ranges[0], false},
        {"Power_big", 0.10, output_ranges[1], true},
        {"Power_little", 0.10, output_ranges[2], true},
        {"Temp", 0.10, output_ranges[3], true},
    };
    spec.external_names = {"#threads_big", "avg #threads/core_big",
                           "avg #threads/core_little"};
    spec.guardband = guardband;
    spec.max_order = 20;
    return spec;
}

LayerSpec
softwareLayerSpec(const std::vector<double>& output_ranges, double guardband,
                  double bound_fraction, double input_weight)
{
    if (output_ranges.size() != 3) {
        throw std::invalid_argument("softwareLayerSpec: need 3 ranges");
    }
    LayerSpec spec;
    spec.layer_name = "software";
    // The synthesis weight W_u is weight/range; placement knobs span
    // 8 discrete levels versus ~18 DVFS levels, so the OS weights are
    // scaled by 2 internally to keep "weight 2 = twice as conservative
    // as the hardware layer" true after normalization.
    double w = 2.0 * input_weight;
    // The packing knobs are *averages* (threads per non-idle core), so
    // their natural quantum is fractional (e.g. 4 threads on 3 cores
    // = 1.33); only the thread count moves in whole units.
    spec.inputs = {
        {"#threads_big", 0.0, 8.0, 1.0, w},
        {"avg #threads/core_big", 1.0, 8.0, 0.25, w},
        {"avg #threads/core_little", 1.0, 8.0, 0.25, w},
    };
    spec.outputs = {
        {"Performance_big", bound_fraction, output_ranges[0], false},
        {"Performance_little", bound_fraction, output_ranges[1], false},
        {"dSpareCompute", bound_fraction, output_ranges[2], false},
    };
    spec.external_names = {"#big cores", "#little cores", "frequency_big",
                           "frequency_little"};
    spec.guardband = guardband;
    spec.max_order = 20;
    return spec;
}

}  // namespace yukta::core
