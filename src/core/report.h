#ifndef YUKTA_CORE_REPORT_H_
#define YUKTA_CORE_REPORT_H_

/**
 * @file
 * Human-readable reports regenerating the paper's configuration
 * tables (II, III, IV) and summarizing synthesis certificates.
 */

#include <iosfwd>

#include "core/design_flow.h"
#include "core/schemes.h"

namespace yukta::core {

/** Prints a Table II/III-style summary of one layer's design. */
void printLayerReport(std::ostream& os, const LayerDesign& design);

/** Prints the Table IV scheme descriptions. */
void printSchemeTable(std::ostream& os);

/** Prints the interface-exchange records (Fig. 3 step 2). */
void printInterfaceExchange(std::ostream& os, const InterfaceExchange& ex);

}  // namespace yukta::core

#endif  // YUKTA_CORE_REPORT_H_
