#include "core/adapt.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/cache.h"
#include "robust/ssv_design.h"

namespace yukta::core {

using linalg::Matrix;
using linalg::Vector;

namespace {

/** FNV-1a 64-bit over a byte string. */
std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

void
hashMatrix(std::ostream& os, const Matrix& m)
{
    os << m.rows() << "," << m.cols() << ";";
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            os << m(r, c) << ",";
        }
    }
}

void
hashVector(std::ostream& os, const Vector& v)
{
    os << v.size() << ";";
    for (std::size_t i = 0; i < v.size(); ++i) {
        os << v[i] << ",";
    }
}

/** The SsvSpec recipe of designSsvLayer, from an explicit model. */
robust::SsvSpec
specFromLayer(const LayerSpec& spec, const sysid::ArxModel& model,
              std::size_t num_external, const robust::DkOptions& dk)
{
    robust::SsvSpec ssv;
    ssv.model = model.toStateSpace();
    ssv.num_inputs = spec.inputs.size();
    ssv.num_external = num_external;
    for (const SignalSpec& in : spec.inputs) {
        ssv.in_min.push_back(in.min);
        ssv.in_max.push_back(in.max);
        ssv.in_step.push_back(in.step);
        ssv.in_weight.push_back(in.weight);
    }
    ssv.perf_dc_boost = spec.perf_boost;
    for (const OutputSpec& out : spec.outputs) {
        ssv.out_bound.push_back(out.bound());
        ssv.out_range.push_back(out.range);
        ssv.out_boost.push_back(out.critical ? 1.0 : ssv.perf_dc_boost);
    }
    ssv.guardband = spec.guardband;
    ssv.max_order = spec.max_order;
    ssv.perf_corner = 1.2;
    ssv.unc_corner = 3.0;
    ssv.dk = dk;
    return ssv;
}

std::vector<controllers::InputGrid>
gridsFromSpecs(const std::vector<SignalSpec>& inputs)
{
    std::vector<controllers::InputGrid> grids;
    grids.reserve(inputs.size());
    for (const SignalSpec& in : inputs) {
        grids.push_back({in.min, in.max, in.step});
    }
    return grids;
}

/** Per-channel standard deviation over @p samples (identifyArx's
    normalization rule: dead channels keep unit scale). */
Vector
channelScales(const std::vector<Vector>& samples, std::size_t width)
{
    Vector mean = Vector::zeros(width);
    for (const Vector& s : samples) {
        for (std::size_t j = 0; j < width; ++j) {
            mean[j] += s[j];
        }
    }
    double n = static_cast<double>(samples.size());
    for (std::size_t j = 0; j < width; ++j) {
        mean[j] /= n;
    }
    Vector var = Vector::zeros(width);
    for (const Vector& s : samples) {
        for (std::size_t j = 0; j < width; ++j) {
            double d = s[j] - mean[j];
            var[j] += d * d;
        }
    }
    Vector scale(width);
    constexpr double kDeadChannel = 1e-9;
    for (std::size_t j = 0; j < width; ++j) {
        double sd = std::sqrt(var[j] / n);
        scale[j] = sd <= kDeadChannel ? 1.0 : sd;
    }
    return scale;
}

void
saveArx(obs::StateWriter& w, const std::string& prefix,
        const sysid::ArxModel& m)
{
    w.u64(prefix + ".na", m.orderA());
    w.u64(prefix + ".nb", m.orderB());
    w.u64(prefix + ".lag0", m.bLag0());
    w.u64(prefix + ".ny", m.numOutputs());
    w.u64(prefix + ".nu", m.numInputs());
    w.f64(prefix + ".ts", m.sampleTime());
    for (std::size_t k = 0; k < m.orderA(); ++k) {
        const Matrix& a = m.aCoeff(k);
        std::vector<double> flat(a.data(), a.data() + a.rows() * a.cols());
        w.f64vec(prefix + ".a", flat);
    }
    for (std::size_t k = 0; k < m.orderB(); ++k) {
        const Matrix& b = m.bCoeff(k);
        std::vector<double> flat(b.data(), b.data() + b.rows() * b.cols());
        w.f64vec(prefix + ".b", flat);
    }
    w.f64vec(prefix + ".umean", m.uMean().raw());
    w.f64vec(prefix + ".ymean", m.yMean().raw());
    w.f64vec(prefix + ".icept", m.intercept().raw());
}

sysid::ArxModel
loadArx(obs::StateReader& r, const std::string& prefix)
{
    std::size_t na = r.u64(prefix + ".na");
    std::size_t nb = r.u64(prefix + ".nb");
    std::size_t lag0 = r.u64(prefix + ".lag0");
    std::size_t ny = r.u64(prefix + ".ny");
    std::size_t nu = r.u64(prefix + ".nu");
    double ts = r.f64(prefix + ".ts");
    auto unflatten = [](const std::vector<double>& v, std::size_t rows,
                        std::size_t cols) {
        if (v.size() != rows * cols) {
            throw std::runtime_error("OnlineAdapter: ARX block mismatch");
        }
        Matrix m(rows, cols);
        for (std::size_t i = 0; i < v.size(); ++i) {
            m.data()[i] = v[i];
        }
        return m;
    };
    std::vector<Matrix> a_coeffs;
    for (std::size_t k = 0; k < na; ++k) {
        a_coeffs.push_back(unflatten(r.f64vec(prefix + ".a"), ny, ny));
    }
    std::vector<Matrix> b_coeffs;
    for (std::size_t k = 0; k < nb; ++k) {
        b_coeffs.push_back(unflatten(r.f64vec(prefix + ".b"), ny, nu));
    }
    Vector u_mean(r.f64vec(prefix + ".umean"));
    Vector y_mean(r.f64vec(prefix + ".ymean"));
    Vector icept(r.f64vec(prefix + ".icept"));
    sysid::ArxModel m(std::move(a_coeffs), std::move(b_coeffs),
                      std::move(u_mean), std::move(y_mean), ts, lag0);
    m.setIntercept(std::move(icept));
    return m;
}

}  // namespace

std::string
adaptCacheKey(const LayerSpec& spec, const sysid::ArxModel& model,
              std::size_t num_external, const robust::DkOptions& dk)
{
    std::ostringstream os;
    os << std::setprecision(17);
    os << "adapt1|" << spec.layer_name << "|" << num_external << "|";
    for (const SignalSpec& in : spec.inputs) {
        os << in.name << "," << in.min << "," << in.max << "," << in.step
           << "," << in.weight << ";";
    }
    os << "|";
    for (const OutputSpec& out : spec.outputs) {
        os << out.name << "," << out.bound_fraction << "," << out.range
           << "," << out.critical << ";";
    }
    os << "|" << spec.guardband << "," << spec.max_order << ","
       << spec.perf_boost;
    os << "|" << dk.max_iterations << "," << dk.mu_grid << "," << dk.gamma_lo
       << "," << dk.gamma_hi << "," << dk.bisection_steps;
    os << "|" << model.orderA() << "," << model.orderB() << ","
       << model.bLag0() << "," << model.sampleTime() << ";";
    for (std::size_t k = 0; k < model.orderA(); ++k) {
        hashMatrix(os, model.aCoeff(k));
    }
    for (std::size_t k = 0; k < model.orderB(); ++k) {
        hashMatrix(os, model.bCoeff(k));
    }
    hashVector(os, model.uMean());
    hashVector(os, model.yMean());
    hashVector(os, model.intercept());

    std::uint64_t h = fnv1a(os.str());
    std::ostringstream key;
    key << "adapt-" << std::hex << std::setw(16) << std::setfill('0') << h;
    return key.str();
}

std::optional<Resynthesis>
resynthesizeSsvLayer(const LayerSpec& spec, const sysid::ArxModel& model,
                     std::size_t num_external, const robust::DkOptions& dk,
                     const std::string& cache_key)
{
    if (!cache_key.empty()) {
        auto cached = loadSsvController(cachePath(cache_key));
        if (cached) {
            // Round-tripping through text is a fixed point, so the
            // hit serves byte-identical text to the original miss.
            return Resynthesis{ssvControllerToText(*cached), true};
        }
    }
    robust::SsvSpec ssv = specFromLayer(spec, model, num_external, dk);
    auto ctrl = robust::ssvSynthesize(ssv);
    if (!ctrl) {
        return std::nullopt;
    }
    if (!cache_key.empty()) {
        saveSsvController(cachePath(cache_key), *ctrl);
    }
    return Resynthesis{ssvControllerToText(*ctrl), false};
}

OnlineAdapter::OnlineAdapter(const LayerSpec& spec,
                             std::size_t num_external,
                             const sysid::ArxModel& shipped,
                             const sysid::IoData& training,
                             const AdaptOptions& options)
    : spec_(spec), num_external_(num_external), opt_(options),
      reference_(shipped),
      rls_(shipped, channelScales(training.u, shipped.numInputs()),
           channelScales(training.y, shipped.numOutputs()), options.rls),
      cusum_(sysid::residualSigma(shipped, training), options.cusum),
      sigma_(sysid::residualSigma(shipped, training)),
      arm_tick_(static_cast<std::size_t>(
          options.warmup_ticks > 0 ? options.warmup_ticks : 0)),
      cal_sum_sq_(shipped.numOutputs(), 0.0),
      cal_scale_(shipped.numOutputs(), 1.0)
{
    if (spec_.inputs.size() + num_external_ != shipped.numInputs()) {
        throw std::invalid_argument(
            "OnlineAdapter: spec inputs + external != model inputs");
    }
    if (spec_.outputs.size() != shipped.numOutputs()) {
        throw std::invalid_argument(
            "OnlineAdapter: spec outputs != model outputs");
    }
}

void
OnlineAdapter::observe(const Vector& u, const Vector& y)
{
    ++tick_;
    // Predict with the lag history *before* this sample enters it:
    // the CUSUM watches the reference model's one-step error.
    if (phase_ == Phase::kMonitor && rls_.primed() && tick_ > arm_tick_) {
        Vector e = y - rls_.predictWith(reference_, u);
        const std::size_t cal = static_cast<std::size_t>(
            opt_.calibration_ticks > 0 ? opt_.calibration_ticks : 0);
        if (cal_count_ < cal) {
            // Calibration window: measure the closed-loop nominal
            // error level so slack/threshold apply in honest units.
            for (std::size_t i = 0; i < e.size(); ++i) {
                double n = e[i] / sigma_[i];
                cal_sum_sq_[i] += n * n;
            }
            if (++cal_count_ == cal) {
                for (std::size_t i = 0; i < cal_scale_.size(); ++i) {
                    cal_scale_[i] = std::max(
                        1.0, std::sqrt(cal_sum_sq_[i] /
                                       static_cast<double>(cal_count_)));
                }
            }
        } else {
            Vector scaled(e.size());
            for (std::size_t i = 0; i < e.size(); ++i) {
                scaled[i] = e[i] / cal_scale_[i];
            }
            if (cusum_.update(scaled)) {
                ++drift_events_;
                drift_tick_ = tick_;
                phase_ = Phase::kSettle;
                if (sink_ != nullptr) {
                    obs::TraceEvent ev = sink_->makeEvent("adapt", "drift");
                    ev.integer("adapt_tick",
                               static_cast<long long>(tick_))
                        .num("cusum_stat", cusum_.maxStat());
                    sink_->record(std::move(ev));
                }
            }
        }
    }
    rls_.update(u, y);
    if (phase_ == Phase::kSettle &&
        tick_ >= drift_tick_ + static_cast<std::size_t>(
                                   opt_.settle_ticks > 0 ? opt_.settle_ticks
                                                         : 0)) {
        snapshot_ = rls_.model();
        phase_ = Phase::kSynthReady;
    }
}

bool
OnlineAdapter::synthesize()
{
    if (phase_ != Phase::kSynthReady || !snapshot_) {
        return false;
    }
    ++syntheses_;
    std::string key =
        opt_.use_cache
            ? adaptCacheKey(spec_, *snapshot_, num_external_, opt_.dk)
            : std::string();
    auto res = resynthesizeSsvLayer(spec_, *snapshot_, num_external_,
                                    opt_.dk, key);
    if (sink_ != nullptr) {
        obs::TraceEvent ev = sink_->makeEvent("adapt", "synthesis");
        ev.integer("adapt_tick", static_cast<long long>(tick_))
            .integer("ok", res.has_value() ? 1 : 0)
            .integer("cache_hit", res && res->cache_hit ? 1 : 0);
        sink_->record(std::move(ev));
    }
    if (!res) {
        phase_ = Phase::kDisabled;
        return false;
    }
    if (res->cache_hit) {
        ++cache_hits_;
    }
    pending_text_ = std::move(res->controller_text);
    swap_due_ = tick_ + static_cast<std::size_t>(
                            opt_.swap_delay_ticks > 0 ? opt_.swap_delay_ticks
                                                      : 0);
    phase_ = Phase::kSwapScheduled;
    return true;
}

controllers::SsvRuntime
OnlineAdapter::runtimeFromText(const std::string& text,
                               const sysid::ArxModel& model) const
{
    auto ctrl = ssvControllerFromText(text);
    if (!ctrl) {
        throw std::runtime_error(
            "OnlineAdapter: unparsable controller text");
    }
    std::size_t ni = spec_.inputs.size();
    const Vector& mean = model.uMean();
    Vector u_mean = mean.segment(0, ni);
    Vector e_mean = mean.segment(ni, mean.size() - ni);
    return controllers::SsvRuntime(*ctrl, gridsFromSpecs(spec_.inputs),
                                   u_mean, e_mean);
}

controllers::SsvRuntime
OnlineAdapter::makePendingRuntime() const
{
    if (phase_ != Phase::kSwapScheduled || !snapshot_) {
        throw std::logic_error(
            "OnlineAdapter::makePendingRuntime: no pending swap");
    }
    return runtimeFromText(pending_text_, *snapshot_);
}

controllers::SsvRuntime
OnlineAdapter::makeInstalledRuntime() const
{
    if (installed_text_.empty()) {
        throw std::logic_error(
            "OnlineAdapter::makeInstalledRuntime: nothing installed");
    }
    // reference_ became the synthesis snapshot at install time, so its
    // means are exactly the installed runtime's means.
    return runtimeFromText(installed_text_, reference_);
}

void
OnlineAdapter::noteSwapped()
{
    if (phase_ != Phase::kSwapScheduled || !snapshot_) {
        throw std::logic_error("OnlineAdapter::noteSwapped: no swap due");
    }
    installed_text_ = std::move(pending_text_);
    pending_text_.clear();
    reference_ = *snapshot_;
    snapshot_.reset();
    cusum_.rearm();
    // The reference changed, so the closed-loop error level must be
    // re-measured before the detector re-arms.
    std::fill(cal_sum_sq_.begin(), cal_sum_sq_.end(), 0.0);
    std::fill(cal_scale_.begin(), cal_scale_.end(), 1.0);
    cal_count_ = 0;
    arm_tick_ = tick_ + static_cast<std::size_t>(
                            opt_.cooldown_ticks > 0 ? opt_.cooldown_ticks
                                                    : 0);
    ++swaps_;
    phase_ = Phase::kMonitor;
}

void
OnlineAdapter::save(obs::StateWriter& w) const
{
    w.i64("adapt.phase", static_cast<long long>(phase_));
    w.u64("adapt.tick", tick_);
    w.u64("adapt.drift_tick", drift_tick_);
    w.u64("adapt.swap_due", swap_due_);
    w.u64("adapt.arm_tick", arm_tick_);
    w.f64vec("adapt.cal_sum", cal_sum_sq_);
    w.u64("adapt.cal_n", cal_count_);
    w.f64vec("adapt.cal_scale", cal_scale_);
    w.i64("adapt.drift_events", drift_events_);
    w.i64("adapt.syntheses", syntheses_);
    w.i64("adapt.cache_hits", cache_hits_);
    w.i64("adapt.swaps", swaps_);
    w.str("adapt.pending", pending_text_);
    w.str("adapt.installed", installed_text_);
    w.boolean("adapt.has_snapshot", snapshot_.has_value());
    if (snapshot_) {
        saveArx(w, "adapt.snap", *snapshot_);
    }
    saveArx(w, "adapt.ref", reference_);
    rls_.save(w);
    cusum_.save(w);
}

void
OnlineAdapter::load(obs::StateReader& r)
{
    phase_ = static_cast<Phase>(r.i64("adapt.phase"));
    tick_ = r.u64("adapt.tick");
    drift_tick_ = r.u64("adapt.drift_tick");
    swap_due_ = r.u64("adapt.swap_due");
    arm_tick_ = r.u64("adapt.arm_tick");
    cal_sum_sq_ = r.f64vec("adapt.cal_sum");
    cal_count_ = r.u64("adapt.cal_n");
    cal_scale_ = r.f64vec("adapt.cal_scale");
    if (cal_sum_sq_.size() != reference_.numOutputs() ||
        cal_scale_.size() != reference_.numOutputs()) {
        throw std::runtime_error("OnlineAdapter: calibration size mismatch");
    }
    drift_events_ = static_cast<long>(r.i64("adapt.drift_events"));
    syntheses_ = static_cast<long>(r.i64("adapt.syntheses"));
    cache_hits_ = static_cast<long>(r.i64("adapt.cache_hits"));
    swaps_ = static_cast<long>(r.i64("adapt.swaps"));
    pending_text_ = r.str("adapt.pending");
    installed_text_ = r.str("adapt.installed");
    if (r.boolean("adapt.has_snapshot")) {
        snapshot_ = loadArx(r, "adapt.snap");
    } else {
        snapshot_.reset();
    }
    reference_ = loadArx(r, "adapt.ref");
    rls_.load(r);
    cusum_.load(r);
}

std::unique_ptr<OnlineAdapter>
makeHwAdapter(const Artifacts& artifacts, const AdaptOptions& options)
{
    const LayerSpec& spec = artifacts.hw_ssv.spec;
    return std::make_unique<OnlineAdapter>(
        spec, spec.external_names.size(), artifacts.hw_ssv.model,
        artifacts.training.hw, options);
}

}  // namespace yukta::core
