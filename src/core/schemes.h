#ifndef YUKTA_CORE_SCHEMES_H_
#define YUKTA_CORE_SCHEMES_H_

/**
 * @file
 * Factory for the two-layer control schemes evaluated in the paper
 * (Table IV plus the Sec. VI-B LQG baselines). buildArtifacts() runs
 * the full design flow once (training campaign, identification,
 * mu-synthesis, LQG synthesis); makeSystem() then instantiates any
 * scheme on a fresh board for one experiment run.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "controllers/multilayer.h"
#include "core/design_flow.h"
#include "core/spec.h"
#include "core/training.h"
#include "platform/workload.h"

namespace yukta::core {

/** The evaluated controller arrangements. */
enum class Scheme
{
    kCoordinatedHeuristic,   ///< Table IV (a) -- the baseline.
    kDecoupledHeuristic,     ///< Table IV (b).
    kYuktaHwSsvOsHeuristic,  ///< Table IV (c).
    kYuktaFull,              ///< Table IV (d): HW SSV + OS SSV.
    kDecoupledLqg,           ///< Sec. VI-B: HW LQG + OS LQG.
    kMonolithicLqg,          ///< Sec. VI-B: single LQG for both layers.
};

/** @return the paper's name for the scheme. */
std::string schemeName(Scheme scheme);

/** All schemes in Fig. 9 order, then the LQG pair. */
std::vector<Scheme> allSchemes();

/** Everything the design flow produces (shared across runs). */
struct Artifacts
{
    platform::BoardConfig cfg;
    TrainingData training;
    LayerDesign hw_ssv;
    LayerDesign os_ssv;
    LqgDesign hw_lqg;
    LqgDesign os_lqg;
    LqgDesign mono_lqg;
};

/** Knobs for buildArtifacts (defaults = the paper's prototype). */
struct ArtifactOptions
{
    double hw_guardband = 0.4;       ///< Table II.
    double os_guardband = 0.5;       ///< Table III.
    double hw_perf_bound = 0.2;      ///< Table II performance bound.
    double os_bound = 0.2;           ///< Table III bounds.
    double hw_input_weight = 1.0;    ///< Table II weights.
    double os_input_weight = 2.0;    ///< Table III weights (the
                                     ///< synthesis normalizes by twice
                                     ///< the range for OS knobs).
    TrainingOptions training;        ///< Campaign options.
    robust::DkOptions dk;            ///< Synthesis options.
    std::string cache_tag = "paper";  ///< "" disables the disk cache.
};

/**
 * Runs the full design flow and returns the artifact bundle.
 * @throws std::runtime_error when any synthesis fails.
 */
Artifacts buildArtifacts(const platform::BoardConfig& cfg,
                         const ArtifactOptions& options = {});

/**
 * Instantiates @p scheme on a fresh board running @p workload.
 * Controllers are built new for each call (no state leaks between
 * runs).
 */
controllers::MultilayerSystem makeSystem(Scheme scheme,
                                         const Artifacts& artifacts,
                                         platform::Workload workload,
                                         std::uint32_t seed = 1);

}  // namespace yukta::core

#endif  // YUKTA_CORE_SCHEMES_H_
