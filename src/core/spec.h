#ifndef YUKTA_CORE_SPEC_H_
#define YUKTA_CORE_SPEC_H_

/**
 * @file
 * Designer-facing layer specifications: the vocabulary of Fig. 3.
 * Each layer's team declares input signals (with allowed discrete
 * values and weights), output signals (with deviation bounds), the
 * external signals it wants from other layers, and its uncertainty
 * guardband. Teams then exchange Interface records describing their
 * published signals.
 */

#include <string>
#include <vector>

#include "platform/config.h"

namespace yukta::core {

/** An actuated input signal: saturation grid + weight (Tables II/III). */
struct SignalSpec
{
    std::string name;
    double min = 0.0;
    double max = 1.0;
    double step = 0.0;   ///< 0 = continuous.
    double weight = 1.0;
};

/** A controlled output signal with its deviation bound. */
struct OutputSpec
{
    std::string name;
    double bound_fraction = 0.2;  ///< Bound as a fraction of the range.
    double range = 1.0;           ///< Observed range (from training).
    bool critical = false;        ///< Tighter bounds (power/temp).

    /** @return the absolute deviation bound. */
    double bound() const { return bound_fraction * range; }
};

/** Everything one team declares about its layer's controller. */
struct LayerSpec
{
    std::string layer_name;
    std::vector<SignalSpec> inputs;
    std::vector<OutputSpec> outputs;
    std::vector<std::string> external_names;
    double guardband = 0.4;
    std::size_t max_order = 20;

    /** DC-tracking demand multiplier for non-critical outputs. */
    double perf_boost = 2.0;
};

/**
 * The meta-information a team publishes to other layers (Fig. 3):
 * the discrete grids of its inputs and the deviation bounds of its
 * outputs, so partners can treat them as external signals or shared
 * outputs.
 */
struct InterfaceExchange
{
    std::string from_layer;
    std::vector<SignalSpec> published_inputs;
    std::vector<OutputSpec> published_outputs;
};

/** @return the exchange record a layer publishes. */
InterfaceExchange publishInterface(const LayerSpec& layer);

/**
 * Hardware-layer spec of Table II: inputs {#big, #little, f_big,
 * f_little} with weight @p input_weight, outputs {BIPS, P_big,
 * P_little, T} with bounds {perf_bound, 10%, 10%, 10%}, external
 * signals = OS inputs, guardband @p guardband.
 *
 * @param output_ranges observed ranges for the four outputs (from
 *   the training characterization).
 */
LayerSpec hardwareLayerSpec(const platform::BoardConfig& cfg,
                            const std::vector<double>& output_ranges,
                            double guardband = 0.4,
                            double perf_bound_fraction = 0.2,
                            double input_weight = 1.0);

/** Software-layer spec of Table III. */
LayerSpec softwareLayerSpec(const std::vector<double>& output_ranges,
                            double guardband = 0.5,
                            double bound_fraction = 0.2,
                            double input_weight = 2.0);

}  // namespace yukta::core

#endif  // YUKTA_CORE_SPEC_H_
