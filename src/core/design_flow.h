#ifndef YUKTA_CORE_DESIGN_FLOW_H_
#define YUKTA_CORE_DESIGN_FLOW_H_

/**
 * @file
 * The Yukta design flow (Fig. 3), end to end:
 *
 *   1. each layer team writes a LayerSpec (inputs + grids, outputs +
 *      bounds, external signals, guardband);
 *   2. teams exchange Interface records;
 *   3. each team identifies a black-box model from the training
 *      campaign (System Identification, Sec. IV-C);
 *   4. each team synthesizes its SSV controller (mu-synthesis);
 *   5. the layers are combined and validated together.
 *
 * The same flow also builds the LQG baselines of Sec. VI-B.
 */

#include <optional>
#include <string>

#include "controllers/layer_controllers.h"
#include "core/spec.h"
#include "core/training.h"
#include "robust/ssv_design.h"
#include "sysid/arx.h"

namespace yukta::core {

/** Everything produced when designing one SSV layer. */
struct LayerDesign
{
    LayerSpec spec;                 ///< What the team declared.
    sysid::ArxModel model;          ///< Identified black-box model.
    std::vector<double> fit;        ///< Prediction fit % per output.
    robust::SsvController controller;  ///< Synthesized + certified.
};

/** Knobs for layer design (defaults = the paper's prototype). */
struct DesignOptions
{
    /** Order-4 model with the paper's direct u(T) term (Sec. IV-C). */
    sysid::ArxOptions arx{4, 4, 1e-4, true, true};
    robust::DkOptions dk;               ///< D-K iteration options.
    std::string cache_key;  ///< Non-empty: try/load the disk cache.
};

/**
 * Designs one layer's SSV controller from its spec and records.
 *
 * @param spec the layer's declaration.
 * @param data identification records; u columns ordered
 *   [actuated inputs..., external signals...].
 * @param num_external trailing external-signal columns in data.u.
 * @return the design, or std::nullopt when synthesis fails.
 */
std::optional<LayerDesign> designSsvLayer(const LayerSpec& spec,
                                          const sysid::IoData& data,
                                          std::size_t num_external,
                                          const DesignOptions& options = {});

/** Wraps a LayerDesign into its runtime form (state machine + grids). */
controllers::SsvRuntime makeSsvRuntime(const LayerDesign& design);

/** An LQG design for a layer (Sec. VI-B baseline). */
struct LqgDesign
{
    sysid::ArxModel model;
    control::StateSpace controller;
    std::vector<controllers::InputGrid> grids;
    linalg::Vector u_mean;
};

/**
 * Designs an LQG controller over the *actuated inputs only* (LQG has
 * no external-signal channel): the external columns of @p data are
 * dropped before identification.
 *
 * @param input_specs actuated input grids/weights.
 * @param output_bounds per-output deviation bounds (sets the output
 *   weighting comparably to the SSV design).
 */
std::optional<LqgDesign>
designLqgLayer(const std::vector<SignalSpec>& input_specs,
               const std::vector<double>& output_bounds,
               const sysid::IoData& data, std::size_t num_external,
               const DesignOptions& options = {});

/** Wraps an LqgDesign into its runtime form. */
controllers::LqgRuntime makeLqgRuntime(const LqgDesign& design);

}  // namespace yukta::core

#endif  // YUKTA_CORE_DESIGN_FLOW_H_
