#include "core/validation.h"

#include <cmath>
#include <sstream>

#include "control/state_space.h"

namespace yukta::core {

using linalg::Vector;

NominalValidation
validateNominal(const LayerDesign& design, double target_scale, int periods)
{
    NominalValidation out;
    control::StateSpace model = design.model.toStateSpace();
    controllers::SsvRuntime runtime = makeSsvRuntime(design);

    std::size_t ni = design.spec.inputs.size();
    std::size_t no = design.spec.outputs.size();
    std::size_t ne = model.numInputs() - ni;

    // Step targets: target_scale bounds away from the operating point.
    Vector targets(no);
    for (std::size_t i = 0; i < no; ++i) {
        targets[i] = design.model.yMean()[i] +
                     target_scale * design.spec.outputs[i].bound();
    }
    // External signals pinned at their operating point.
    Vector ext(ne);
    for (std::size_t i = 0; i < ne; ++i) {
        ext[i] = design.model.uMean()[ni + i];
    }

    Vector x = Vector::zeros(model.numStates());
    Vector y_c = Vector::zeros(no);  // centered outputs
    out.steady_deviation.assign(no, 0.0);
    out.settle_periods.assign(no, -1);
    out.stable = true;

    for (int t = 0; t < periods; ++t) {
        Vector y_phys = y_c + design.model.yMean();
        Vector dev(no);
        bool inside = true;
        for (std::size_t i = 0; i < no; ++i) {
            dev[i] = targets[i] - y_phys[i];
            if (std::abs(dev[i]) > design.spec.outputs[i].bound()) {
                inside = false;
            } else if (out.settle_periods[i] < 0) {
                out.settle_periods[i] = t;
            }
            out.steady_deviation[i] = std::abs(dev[i]);
        }
        (void)inside;

        Vector u_phys = runtime.invoke(dev, ext);
        Vector ue(ni + ne);
        for (std::size_t i = 0; i < ni; ++i) {
            ue[i] = u_phys[i] - design.model.uMean()[i];
        }
        for (std::size_t i = 0; i < ne; ++i) {
            ue[ni + i] = 0.0;  // externals pinned at the mean
        }
        y_c = control::stepOnce(model, x, ue);

        if (y_c.maxAbs() > 1e6) {
            out.stable = false;
            break;
        }
    }

    out.within_bounds = out.stable;
    for (std::size_t i = 0; i < no; ++i) {
        if (out.steady_deviation[i] > design.spec.outputs[i].bound()) {
            out.within_bounds = false;
        }
    }
    out.guardband_exhausted = runtime.guardbandExhausted();
    return out;
}

std::string
summarize(const NominalValidation& v)
{
    std::ostringstream os;
    os << (v.stable ? "stable" : "UNSTABLE") << ", "
       << (v.within_bounds ? "within bounds" : "OUT OF BOUNDS")
       << ", steady |dev|:";
    for (double d : v.steady_deviation) {
        os << " " << d;
    }
    if (v.guardband_exhausted) {
        os << " [guardband exhausted]";
    }
    return os.str();
}

}  // namespace yukta::core
