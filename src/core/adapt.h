#ifndef YUKTA_CORE_ADAPT_H_
#define YUKTA_CORE_ADAPT_H_

/**
 * @file
 * The online adaptation loop: RLS system identification running
 * alongside the shipped controller, prediction-error CUSUM drift
 * detection against the shipped model, drift-triggered D-K
 * re-synthesis, and bumpless hot-swap of the refreshed controller.
 *
 * One OnlineAdapter watches one board's hardware layer. Its life
 * cycle is a deterministic, counter-keyed state machine:
 *
 *   kMonitor        RLS + CUSUM track live telemetry
 *   kSettle         drift declared; RLS converges on the drifted
 *                   plant for settle_ticks more samples
 *   kSynthReady     model snapshot frozen; awaiting synthesis
 *                   (the fleet dispatches it on the runner pool)
 *   kSwapScheduled  controller synthesized; installs swap_delay_ticks
 *                   later (modeled background-synthesis latency)
 *   back to kMonitor against the refreshed reference model
 *   kDisabled       synthesis failed; adaptation stands down
 *
 * Synthesized controllers travel as cache text (17-significant-digit
 * decimal, an exact round trip), so a checkpoint restored on another
 * process re-materializes the bit-identical controller.
 */

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "controllers/ssv_runtime.h"
#include "core/schemes.h"
#include "core/spec.h"
#include "obs/stateio.h"
#include "obs/trace.h"
#include "robust/dk.h"
#include "sysid/arx.h"
#include "sysid/drift.h"
#include "sysid/rls.h"

namespace yukta::core {

/** Tuning for the online adaptation loop. */
struct AdaptOptions
{
    sysid::RlsOptions rls;      ///< Estimator forgetting/windup knobs.
    sysid::CusumOptions cusum;  ///< Drift-detection thresholds.

    /** Ticks before the CUSUM arms (RLS history + power windows). */
    int warmup_ticks = 20;

    /**
     * Post-warmup ticks spent measuring the *closed-loop* nominal
     * prediction-error level per output channel. The CUSUM's training
     * sigmas describe open-loop identification residuals; under the
     * closed loop some channels (e.g. instruction rate) run several
     * sigma hotter with no drift at all. Each channel's sigma is
     * inflated by its calibrated RMS (floored at 1) before the
     * detector arms, so slack/threshold are in honest closed-loop
     * units. Deterministic and counter-keyed: the scale is a pure
     * function of the first warmup+calibration samples. 0 disables
     * calibration (unit scales).
     */
    int calibration_ticks = 60;

    /** Post-drift ticks the RLS gets to converge before the model is
        snapshotted for synthesis. */
    int settle_ticks = 30;

    /** Ticks between synthesis completion and the hot-swap: models the
        background D-K job's latency without breaking determinism. */
    int swap_delay_ticks = 6;

    /** Ticks after a swap before the CUSUM re-arms. */
    int cooldown_ticks = 60;

    /** Synthesis recipe (the fleet passes its reduced recipe). */
    robust::DkOptions dk;

    /** Content-hashed design cache for repeated drift on one model. */
    bool use_cache = true;
};

/** Outcome of a drift-triggered re-synthesis. */
struct Resynthesis
{
    std::string controller_text;  ///< Cache-text form (exact).
    bool cache_hit = false;       ///< Served from the design cache.
};

/**
 * @return a content-hash cache key ("adapt-<hex>") over the model
 * coefficients, the layer spec, and the synthesis options -- repeated
 * drift that converges to the same model hits the same cache entry.
 */
std::string adaptCacheKey(const LayerSpec& spec,
                          const sysid::ArxModel& model,
                          std::size_t num_external,
                          const robust::DkOptions& dk);

/**
 * Re-runs mu-synthesis for @p spec against an online-identified
 * @p model (designSsvLayer's step 4 without the identification).
 * When @p cache_key is non-empty the design cache is consulted first
 * and populated after a fresh synthesis.
 * @return the controller text, or std::nullopt when synthesis fails.
 */
std::optional<Resynthesis>
resynthesizeSsvLayer(const LayerSpec& spec, const sysid::ArxModel& model,
                     std::size_t num_external,
                     const robust::DkOptions& dk,
                     const std::string& cache_key);

/** Per-board adaptation state machine (see file comment). */
class OnlineAdapter
{
  public:
    /** Life-cycle phases (numeric values are checkpointed). */
    enum class Phase
    {
        kMonitor = 0,
        kSettle = 1,
        kSynthReady = 2,
        kSwapScheduled = 3,
        kDisabled = 4,
    };

    /**
     * @param spec hardware-layer declaration (grids, bounds).
     * @param num_external trailing external columns in the u samples.
     * @param shipped the offline-identified model the CUSUM guards.
     * @param training the shipped model's training records; sets the
     *   RLS normalization scales and the CUSUM residual sigmas.
     */
    OnlineAdapter(const LayerSpec& spec, std::size_t num_external,
                  const sysid::ArxModel& shipped,
                  const sysid::IoData& training,
                  const AdaptOptions& options);

    /**
     * Feeds one control tick of plant input @p u (actuated +
     * external, physical units) and measured output @p y.
     * Deterministic and board-local: safe to call from the fleet's
     * parallel shard phase.
     */
    void observe(const linalg::Vector& u, const linalg::Vector& y);

    /** @return true when a synthesis job should be dispatched. */
    bool synthesisDue() const { return phase_ == Phase::kSynthReady; }

    /**
     * Runs the re-synthesis for the frozen model snapshot (pool-task
     * body: deterministic, idempotent, board-local). On success the
     * swap is scheduled swap_delay_ticks ahead; on failure the
     * adapter disables itself.
     * @return true on success.
     */
    bool synthesize();

    /** @return true when the scheduled swap should install now. */
    bool swapDue() const
    {
        return phase_ == Phase::kSwapScheduled && tick_ >= swap_due_;
    }

    /**
     * Materializes the pending (synthesized, not yet installed)
     * controller as a runtime, parsed from the canonical text so
     * every process gets identical bits. Only valid in
     * kSwapScheduled.
     */
    controllers::SsvRuntime makePendingRuntime() const;

    /**
     * Materializes the *installed* controller for checkpoint restore
     * (the restored system needs the swapped runtime in place before
     * its state stream is loaded). Only valid when
     * hasInstalledController().
     */
    controllers::SsvRuntime makeInstalledRuntime() const;

    /**
     * Records that the swap was installed: the reference model
     * becomes the synthesis snapshot, the CUSUM re-arms after the
     * cooldown, and monitoring resumes.
     */
    void noteSwapped();

    /** @return true once a synthesized controller is in force. */
    bool hasInstalledController() const { return !installed_text_.empty(); }

    /** @return the current life-cycle phase. */
    Phase phase() const { return phase_; }
    /** @return samples observed since construction (or load). */
    std::size_t tick() const { return tick_; }
    /** @return lifetime CUSUM trips. */
    long driftEvents() const { return drift_events_; }
    /** @return lifetime re-synthesis jobs run. */
    long syntheses() const { return syntheses_; }
    /** @return syntheses served from the design cache. */
    long cacheHits() const { return cache_hits_; }
    /** @return lifetime hot-swaps installed. */
    long swaps() const { return swaps_; }
    /** @return the detector's current worst per-channel statistic. */
    double cusumStat() const { return cusum_.maxStat(); }

    /**
     * Attaches a trace sink: drift detections and synthesis outcomes
     * are recorded as "adapt" layer events (the hot-swap itself is
     * traced by MultilayerSystem). Pass nullptr to detach. The sink
     * is observational only -- never part of checkpointed state.
     */
    void setTraceSink(obs::TraceSink* sink) { sink_ = sink; }

    /** Serializes the adapter (estimator, detector, phase, texts). */
    void save(obs::StateWriter& w) const;

    /** Restores state written by save(). */
    void load(obs::StateReader& r);

  private:
    LayerSpec spec_;
    std::size_t num_external_ = 0;
    AdaptOptions opt_;
    sysid::ArxModel reference_;  ///< Model the CUSUM guards.
    sysid::RlsEstimator rls_;
    sysid::CusumDriftDetector cusum_;
    std::vector<double> sigma_;  ///< Training residual sigmas.
    Phase phase_ = Phase::kMonitor;
    std::size_t tick_ = 0;
    std::size_t drift_tick_ = 0;
    std::size_t swap_due_ = 0;
    std::size_t arm_tick_ = 0;  ///< Calibration starts at tick_ > this.
    std::vector<double> cal_sum_sq_;  ///< Calibration error accumulator.
    std::size_t cal_count_ = 0;       ///< Calibration samples taken.
    std::vector<double> cal_scale_;   ///< Per-channel sigma inflation.
    std::optional<sysid::ArxModel> snapshot_;  ///< Synthesis input.
    std::string pending_text_;    ///< Synthesized, not yet installed.
    std::string installed_text_;  ///< Controller currently in force.
    long drift_events_ = 0;
    long syntheses_ = 0;
    long cache_hits_ = 0;
    long swaps_ = 0;
    obs::TraceSink* sink_ = nullptr;  ///< Not owned; not checkpointed.

    controllers::SsvRuntime runtimeFromText(
        const std::string& text, const sysid::ArxModel& model) const;
};

/**
 * Builds the hardware-layer adapter for @p artifacts (shipped model =
 * artifacts.hw_ssv). The adaptation loop currently targets the SSV
 * hardware layer -- the layer with the certified guardband that plant
 * drift invalidates.
 */
std::unique_ptr<OnlineAdapter> makeHwAdapter(const Artifacts& artifacts,
                                             const AdaptOptions& options);

}  // namespace yukta::core

#endif  // YUKTA_CORE_ADAPT_H_
