#include "core/schemes.h"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "controllers/heuristics.h"
#include "platform/board.h"
#include "platform/dvfs.h"

namespace yukta::core {

using controllers::MultilayerSystem;
using platform::Board;
using platform::DvfsTable;

std::string
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::kCoordinatedHeuristic:
        return "Coordinated heuristic";
      case Scheme::kDecoupledHeuristic:
        return "Decoupled heuristic";
      case Scheme::kYuktaHwSsvOsHeuristic:
        return "Yukta: HW SSV+OS heuristic";
      case Scheme::kYuktaFull:
        return "Yukta: HW SSV+OS SSV";
      case Scheme::kDecoupledLqg:
        return "Decoupled HW LQG+OS LQG";
      case Scheme::kMonolithicLqg:
        return "Monolithic LQG";
    }
    return "unknown";
}

std::vector<Scheme>
allSchemes()
{
    return {Scheme::kCoordinatedHeuristic, Scheme::kDecoupledHeuristic,
            Scheme::kYuktaHwSsvOsHeuristic, Scheme::kYuktaFull,
            Scheme::kDecoupledLqg, Scheme::kMonolithicLqg};
}

namespace {

std::string
keyFor(const ArtifactOptions& opt, const std::string& layer)
{
    if (opt.cache_tag.empty()) {
        return "";
    }
    std::ostringstream os;
    os << opt.cache_tag << "_" << layer << "_gb"
       << static_cast<int>(100 * opt.hw_guardband) << "_ob"
       << static_cast<int>(100 * opt.os_guardband) << "_pb"
       << static_cast<int>(100 * opt.hw_perf_bound) << "_sb"
       << static_cast<int>(100 * opt.os_bound) << "_wh"
       << static_cast<int>(100 * opt.hw_input_weight) << "_wo"
       << static_cast<int>(100 * opt.os_input_weight);
    return os.str();
}

}  // namespace

Artifacts
buildArtifacts(const platform::BoardConfig& cfg,
               const ArtifactOptions& options)
{
    Artifacts art;
    art.cfg = cfg;
    art.training = runTrainingCampaign(cfg, options.training);

    // --- SSV layers (Tables II and III). ---
    LayerSpec hw_spec =
        hardwareLayerSpec(cfg, art.training.hw_ranges, options.hw_guardband,
                          options.hw_perf_bound, options.hw_input_weight);
    LayerSpec os_spec =
        softwareLayerSpec(art.training.os_ranges, options.os_guardband,
                          options.os_bound, options.os_input_weight);

    DesignOptions hw_opts;
    hw_opts.dk = options.dk;
    hw_opts.cache_key = keyFor(options, "hwssv");
    auto hw = designSsvLayer(hw_spec, art.training.hw, 3, hw_opts);
    if (!hw) {
        throw std::runtime_error("buildArtifacts: HW SSV synthesis failed");
    }
    art.hw_ssv = std::move(*hw);

    DesignOptions os_opts;
    os_opts.dk = options.dk;
    os_opts.cache_key = keyFor(options, "osssv");
    auto os = designSsvLayer(os_spec, art.training.os, 4, os_opts);
    if (!os) {
        throw std::runtime_error("buildArtifacts: OS SSV synthesis failed");
    }
    art.os_ssv = std::move(*os);

    // --- LQG baselines (Sec. VI-B). ---
    auto bounds = [](const LayerSpec& spec) {
        std::vector<double> b;
        for (const OutputSpec& o : spec.outputs) {
            b.push_back(o.bound());
        }
        return b;
    };

    DesignOptions lqg_hw_opts;
    lqg_hw_opts.cache_key = keyFor(options, "hwlqg");
    auto hw_lqg = designLqgLayer(hw_spec.inputs, bounds(hw_spec),
                                 art.training.hw, 3, lqg_hw_opts);
    if (!hw_lqg) {
        throw std::runtime_error("buildArtifacts: HW LQG synthesis failed");
    }
    art.hw_lqg = std::move(*hw_lqg);

    DesignOptions lqg_os_opts;
    lqg_os_opts.cache_key = keyFor(options, "oslqg");
    auto os_lqg = designLqgLayer(os_spec.inputs, bounds(os_spec),
                                 art.training.os, 4, lqg_os_opts);
    if (!os_lqg) {
        throw std::runtime_error("buildArtifacts: OS LQG synthesis failed");
    }
    art.os_lqg = std::move(*os_lqg);

    // Monolithic LQG: all 7 inputs and outputs in one loop.
    std::vector<SignalSpec> joint_inputs = hw_spec.inputs;
    for (const SignalSpec& s : os_spec.inputs) {
        joint_inputs.push_back(s);
    }
    std::vector<double> joint_bounds = bounds(hw_spec);
    for (double b : bounds(os_spec)) {
        joint_bounds.push_back(b);
    }
    DesignOptions mono_opts;
    mono_opts.cache_key = keyFor(options, "monolqg");
    auto mono = designLqgLayer(joint_inputs, joint_bounds,
                               art.training.joint, 0, mono_opts);
    if (!mono) {
        throw std::runtime_error(
            "buildArtifacts: monolithic LQG synthesis failed");
    }
    art.mono_lqg = std::move(*mono);

    return art;
}

MultilayerSystem
makeSystem(Scheme scheme, const Artifacts& art, platform::Workload workload,
           std::uint32_t seed)
{
    const platform::BoardConfig& cfg = art.cfg;
    Board board(cfg, std::move(workload), seed);
    DvfsTable big(cfg.big);
    DvfsTable little(cfg.little);

    using namespace controllers;
    switch (scheme) {
      case Scheme::kCoordinatedHeuristic:
        return MultilayerSystem(
            std::move(board),
            std::make_unique<CoordinatedHwHeuristic>(cfg, big, little),
            std::make_unique<CoordinatedOsHeuristic>(cfg));

      case Scheme::kDecoupledHeuristic:
        return MultilayerSystem(
            std::move(board),
            std::make_unique<DecoupledHwHeuristic>(cfg, big, little),
            std::make_unique<DecoupledOsRoundRobin>(cfg));

      case Scheme::kYuktaHwSsvOsHeuristic:
        return MultilayerSystem(
            std::move(board),
            std::make_unique<SsvHwController>(makeSsvRuntime(art.hw_ssv),
                                              makeHwOptimizer(cfg)),
            std::make_unique<CoordinatedOsHeuristic>(cfg));

      case Scheme::kYuktaFull:
        return MultilayerSystem(
            std::move(board),
            std::make_unique<SsvHwController>(makeSsvRuntime(art.hw_ssv),
                                              makeHwOptimizer(cfg)),
            std::make_unique<SsvOsController>(makeSsvRuntime(art.os_ssv),
                                              makeOsOptimizer()));

      case Scheme::kDecoupledLqg:
        return MultilayerSystem(
            std::move(board),
            std::make_unique<LqgHwController>(makeLqgRuntime(art.hw_lqg),
                                              makeHwOptimizer(cfg)),
            std::make_unique<LqgOsController>(makeLqgRuntime(art.os_lqg),
                                              makeOsOptimizer()));

      case Scheme::kMonolithicLqg:
        return MultilayerSystem(
            std::move(board),
            std::make_unique<MonolithicLqgController>(
                makeLqgRuntime(art.mono_lqg),
                makeMonolithicOptimizer(cfg)));
    }
    throw std::invalid_argument("makeSystem: unknown scheme");
}

}  // namespace yukta::core
