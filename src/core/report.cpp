#include "core/report.h"

#include <iomanip>
#include <ostream>

namespace yukta::core {

void
printLayerReport(std::ostream& os, const LayerDesign& design)
{
    const LayerSpec& spec = design.spec;
    os << "=== Layer: " << spec.layer_name << " ===\n";
    os << "Inputs (signal, range, step, weight):\n";
    for (const SignalSpec& in : spec.inputs) {
        os << "  " << std::left << std::setw(28) << in.name << " ["
           << in.min << ", " << in.max << "] step " << in.step
           << "  weight " << in.weight << "\n";
    }
    os << "Outputs (signal, bound, guaranteed bound):\n";
    for (std::size_t i = 0; i < spec.outputs.size(); ++i) {
        const OutputSpec& out = spec.outputs[i];
        double guaranteed =
            i < design.controller.guaranteed_bounds.size()
                ? design.controller.guaranteed_bounds[i]
                : out.bound();
        os << "  " << std::left << std::setw(28) << out.name << " +-"
           << std::setprecision(3) << 100.0 * out.bound_fraction << "% ("
           << out.bound() << " abs), guaranteed " << guaranteed << "\n";
    }
    os << "External signals:";
    for (const std::string& e : spec.external_names) {
        os << " [" << e << "]";
    }
    os << "\nUncertainty guardband: +-" << 100.0 * spec.guardband << "%\n";
    os << "Model: ARX(" << design.model.orderA() << ","
       << design.model.orderB() << "), prediction fit %:";
    for (double f : design.fit) {
        os << " " << std::setprecision(3) << f;
    }
    os << "\nSSV certificate: mu_peak " << std::setprecision(4)
       << design.controller.mu_peak << ", min(s) "
       << design.controller.min_s << ", gamma "
       << design.controller.gamma << ", controller order "
       << design.controller.k.numStates() << ", D-K iterations "
       << design.controller.dk_iterations << "\n";
}

void
printSchemeTable(std::ostream& os)
{
    os << "=== Table IV: two-layer controller schemes ===\n";
    os << "(a) Coordinated heuristic : OS scheduler with power/perf "
          "heuristics using core number/type/frequency; HW raises "
          "frequency and cores while safe using the thread "
          "distribution.\n";
    os << "(b) Decoupled heuristic   : OS round-robin placement; HW "
          "performance-governor at maximum, threshold rules cut "
          "frequency then cores on violations.\n";
    os << "(c) Yukta HW SSV + OS heuristic : SSV hardware controller "
          "(Sec. IV-A) under the coordinated heuristic scheduler.\n";
    os << "(d) Yukta HW SSV + OS SSV : both layers SSV (Secs. IV-A, "
          "IV-B), coordinating through external signals.\n";
}

void
printInterfaceExchange(std::ostream& os, const InterfaceExchange& ex)
{
    os << "Interface published by layer '" << ex.from_layer << "':\n";
    for (const SignalSpec& in : ex.published_inputs) {
        os << "  input  " << std::left << std::setw(28) << in.name << " ["
           << in.min << ", " << in.max << "] step " << in.step << "\n";
    }
    for (const OutputSpec& out : ex.published_outputs) {
        os << "  output " << std::left << std::setw(28) << out.name
           << " bound +-" << 100.0 * out.bound_fraction << "% of range "
           << out.range << "\n";
    }
}

}  // namespace yukta::core
