#ifndef YUKTA_CORE_CACHE_H_
#define YUKTA_CORE_CACHE_H_

/**
 * @file
 * Plain-text (de)serialization of synthesized controllers, so the
 * benchmark binaries do not re-run system identification and
 * mu-synthesis on every invocation. The cache directory defaults to
 * "./yukta_cache" and can be overridden with the YUKTA_CACHE_DIR
 * environment variable.
 */

#include <optional>
#include <string>

#include "control/state_space.h"
#include "robust/ssv_design.h"

namespace yukta::core {

/** @return the active cache directory (created on demand). */
std::string cacheDir();

/**
 * Writes @p contents to @p path atomically: the bytes land in a
 * unique sibling temp file first and are renamed into place, so
 * concurrent readers (and readers after a crash) only ever see a
 * complete old or complete new file, never a torn write.
 */
bool atomicWriteFile(const std::string& path, const std::string& contents);

/** Writes a state-space system to @p path; returns success. */
bool saveStateSpace(const std::string& path,
                    const control::StateSpace& sys);

/** Reads a state-space system from @p path. */
std::optional<control::StateSpace> loadStateSpace(const std::string& path);

/** Writes an SSV controller (system + certificate scalars). */
bool saveSsvController(const std::string& path,
                       const robust::SsvController& ctrl);

/** Reads an SSV controller. */
std::optional<robust::SsvController>
loadSsvController(const std::string& path);

/**
 * @return the cache-file text form of @p ctrl (the exact bytes
 * saveSsvController writes). Doubles are printed at 17 significant
 * digits, so text -> controller -> text is a fixed point and the
 * parsed controller is bit-identical wherever the text travels --
 * the property the adaptation loop's checkpoints rely on.
 */
std::string ssvControllerToText(const robust::SsvController& ctrl);

/** Parses text produced by ssvControllerToText. */
std::optional<robust::SsvController>
ssvControllerFromText(const std::string& text);

/** @return cacheDir() + "/" + key + ".txt". */
std::string cachePath(const std::string& key);

}  // namespace yukta::core

#endif  // YUKTA_CORE_CACHE_H_
