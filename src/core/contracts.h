#ifndef YUKTA_CORE_CONTRACTS_H_
#define YUKTA_CORE_CONTRACTS_H_

/**
 * @file
 * Debug-contracts layer: YUKTA_REQUIRE / YUKTA_ENSURE / YUKTA_CHECK_FINITE.
 *
 * Robust-control code fails in a characteristic way: a dimension slips
 * or a NaN enters the controller state, and the run keeps going with
 * silently corrupted numbers until the final metrics are garbage. The
 * contracts below turn that corruption into an immediate, attributable
 * failure at the first violated invariant.
 *
 * The macros are active only when the tree is configured with
 * `-DYUKTA_CHECKS=ON` (which defines `YUKTA_CHECKS=1` for every
 * target). In a regular build they expand to `((void)0)` and their
 * argument expressions are not evaluated, so hot paths pay nothing.
 *
 *  - `YUKTA_REQUIRE(cond, ...)` — precondition. Throws
 *    ContractViolation naming the expression, location, and the
 *    optional streamed message parts (e.g. the offending shape).
 *  - `YUKTA_ENSURE(cond, ...)`  — postcondition; same mechanics.
 *  - `YUKTA_CHECK_FINITE(value, ...)` — NaN/Inf poisoning detector.
 *    Accepts anything with a `yuktaAllFinite` overload found by ADL
 *    (double, linalg::Vector, linalg::Matrix, linalg::CMatrix).
 *
 * ContractViolation derives from std::invalid_argument so existing
 * call sites and tests that expect std::invalid_argument (or
 * std::logic_error) on bad inputs keep passing when checks are on.
 * Message parts are only evaluated on failure, even with checks on.
 */

#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace yukta::contracts {

/**
 * Process-wide count of contract checks evaluated (only advances when
 * the tree is built with YUKTA_CHECKS=ON). The observability layer
 * snapshots this into its metrics registry; the counter deliberately
 * lives here, header-only, so contracts stay dependency-free.
 */
inline std::atomic<long long>& checkCount()
{
    static std::atomic<long long> count{0};
    return count;
}

/** Thrown when an active contract is violated. */
class ContractViolation : public std::invalid_argument
{
  public:
    /**
     * @param kind "precondition" | "postcondition" | "finite-check".
     * @param expr stringified violated expression.
     * @param file source file of the contract.
     * @param line source line of the contract.
     * @param detail caller-supplied context (may be empty).
     */
    ContractViolation(const char* kind, const char* expr, const char* file,
                      int line, const std::string& detail)
        : std::invalid_argument(compose(kind, expr, file, line, detail)),
          kind_(kind)
    {
    }

    /** @return the contract kind this violation came from. */
    const char* kind() const { return kind_; }

  private:
    static std::string compose(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& detail)
    {
        std::ostringstream os;
        os << "contract violation (" << kind << "): " << expr;
        if (!detail.empty()) {
            os << " — " << detail;
        }
        os << " [" << file << ":" << line << "]";
        return os.str();
    }

    const char* kind_;
};

/** @return true iff checks were compiled in for this translation unit. */
constexpr bool checksEnabled()
{
#ifdef YUKTA_CHECKS
    return true;
#else
    return false;
#endif
}

/** Concatenates message parts via operator<<; empty for no parts. */
template <typename... Parts>
std::string describe(Parts&&... parts)
{
    if constexpr (sizeof...(parts) == 0) {
        return {};
    } else {
        std::ostringstream os;
        (os << ... << parts);
        return os.str();
    }
}

/** Finite-check customization point: scalar overload. */
inline bool yuktaAllFinite(double v)
{
    return std::isfinite(v);
}

namespace detail {

/** Raises ContractViolation; out-of-line noreturn keeps callers slim. */
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& detail)
{
    throw ContractViolation(kind, expr, file, line, detail);
}

}  // namespace detail
}  // namespace yukta::contracts

#ifdef YUKTA_CHECKS

#define YUKTA_REQUIRE(cond, ...)                                          \
    do { /* yukta-lint: allow(doc-comment) */                             \
        ::yukta::contracts::checkCount().fetch_add(                       \
            1, std::memory_order_relaxed);                                \
        if (!(cond)) {                                                    \
            ::yukta::contracts::detail::fail(                             \
                "precondition", #cond, __FILE__, __LINE__,                \
                ::yukta::contracts::describe(__VA_ARGS__));               \
        }                                                                 \
    } while (0)

#define YUKTA_ENSURE(cond, ...)                                           \
    do {                                                                  \
        ::yukta::contracts::checkCount().fetch_add(                       \
            1, std::memory_order_relaxed);                                \
        if (!(cond)) {                                                    \
            ::yukta::contracts::detail::fail(                             \
                "postcondition", #cond, __FILE__, __LINE__,               \
                ::yukta::contracts::describe(__VA_ARGS__));               \
        }                                                                 \
    } while (0)

#define YUKTA_CHECK_FINITE(value, ...)                                    \
    do {                                                                  \
        ::yukta::contracts::checkCount().fetch_add(                       \
            1, std::memory_order_relaxed);                                \
        using ::yukta::contracts::yuktaAllFinite;                         \
        if (!yuktaAllFinite(value)) {                                     \
            ::yukta::contracts::detail::fail(                             \
                "finite-check", #value, __FILE__, __LINE__,               \
                ::yukta::contracts::describe(__VA_ARGS__));               \
        }                                                                 \
    } while (0)

#else

#define YUKTA_REQUIRE(cond, ...) ((void)0)
#define YUKTA_ENSURE(cond, ...) ((void)0)
#define YUKTA_CHECK_FINITE(value, ...) ((void)0)

#endif  // YUKTA_CHECKS

#endif  // YUKTA_CORE_CONTRACTS_H_
