#include "core/cache.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#ifdef __unix__
#include <unistd.h>
#endif

namespace yukta::core {

using control::StateSpace;
using linalg::Matrix;

namespace {

constexpr int kFormatVersion = 4;

void
writeMatrix(std::ostream& os, const Matrix& m)
{
    os << m.rows() << " " << m.cols() << "\n";
    os << std::setprecision(17);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            os << m(r, c) << (c + 1 == m.cols() ? "\n" : " ");
        }
    }
}

bool
readMatrix(std::istream& is, Matrix& m)
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    if (!(is >> rows >> cols)) {
        return false;
    }
    m = Matrix(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (!(is >> m(r, c))) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace

std::string
cacheDir()
{
    // Cache *location* may come from the environment (hermetic tests
    // redirect it); cache *contents* are keyed purely on config, so
    // results stay environment-independent.
    // yukta-audit: allow(getenv)
    const char* env = std::getenv("YUKTA_CACHE_DIR");
    std::string dir = env != nullptr ? env : "yukta_cache";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

std::string
cachePath(const std::string& key)
{
    return cacheDir() + "/" + key + ".txt";
}

bool
atomicWriteFile(const std::string& path, const std::string& contents)
{
    static std::atomic<unsigned> counter{0};
#ifdef __unix__
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    const std::string tmp = path + ".tmp." + std::to_string(pid) + "." +
                            std::to_string(counter.fetch_add(1));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            return false;
        }
        os << contents;
        os.flush();
        if (!os) {
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        std::filesystem::remove(tmp, ec2);
        return false;
    }
    return true;
}

bool
saveStateSpace(const std::string& path, const StateSpace& sys)
{
    std::ostringstream os;
    os << "yukta-ss " << kFormatVersion << "\n" << sys.ts << "\n";
    writeMatrix(os, sys.a);
    writeMatrix(os, sys.b);
    writeMatrix(os, sys.c);
    writeMatrix(os, sys.d);
    return atomicWriteFile(path, os.str());
}

std::optional<StateSpace>
loadStateSpace(const std::string& path)
{
    std::ifstream is(path);
    if (!is) {
        return std::nullopt;
    }
    std::string magic;
    int version = 0;
    double ts = 0.0;
    if (!(is >> magic >> version >> ts) || magic != "yukta-ss" ||
        version != kFormatVersion) {
        return std::nullopt;
    }
    Matrix a;
    Matrix b;
    Matrix c;
    Matrix d;
    if (!readMatrix(is, a) || !readMatrix(is, b) || !readMatrix(is, c) ||
        !readMatrix(is, d)) {
        return std::nullopt;
    }
    try {
        return StateSpace(a, b, c, d, ts);
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

std::string
ssvControllerToText(const robust::SsvController& ctrl)
{
    std::ostringstream os;
    os << "yukta-ssv " << kFormatVersion << "\n";
    os << std::setprecision(17);
    os << ctrl.mu_peak << " " << ctrl.min_s << " " << ctrl.gamma << " "
       << ctrl.dk_iterations << "\n";
    os << ctrl.design_bounds.size();
    for (double b : ctrl.design_bounds) {
        os << " " << b;
    }
    os << "\n" << ctrl.guaranteed_bounds.size();
    for (double b : ctrl.guaranteed_bounds) {
        os << " " << b;
    }
    os << "\n" << ctrl.k.ts << "\n";
    writeMatrix(os, ctrl.k.a);
    writeMatrix(os, ctrl.k.b);
    writeMatrix(os, ctrl.k.c);
    writeMatrix(os, ctrl.k.d);
    return os.str();
}

bool
saveSsvController(const std::string& path,
                  const robust::SsvController& ctrl)
{
    return atomicWriteFile(path, ssvControllerToText(ctrl));
}

std::optional<robust::SsvController>
ssvControllerFromText(const std::string& text)
{
    std::istringstream is(text);
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != "yukta-ssv" ||
        version != kFormatVersion) {
        return std::nullopt;
    }
    robust::SsvController ctrl;
    std::size_t ndb = 0;
    std::size_t nb = 0;
    if (!(is >> ctrl.mu_peak >> ctrl.min_s >> ctrl.gamma >>
          ctrl.dk_iterations) ||
        !(is >> ndb)) {
        return std::nullopt;
    }
    ctrl.design_bounds.resize(ndb);
    for (double& b : ctrl.design_bounds) {
        if (!(is >> b)) {
            return std::nullopt;
        }
    }
    if (!(is >> nb)) {
        return std::nullopt;
    }
    ctrl.guaranteed_bounds.resize(nb);
    for (double& b : ctrl.guaranteed_bounds) {
        if (!(is >> b)) {
            return std::nullopt;
        }
    }
    double ts = 0.0;
    if (!(is >> ts)) {
        return std::nullopt;
    }
    Matrix a;
    Matrix b;
    Matrix c;
    Matrix d;
    if (!readMatrix(is, a) || !readMatrix(is, b) || !readMatrix(is, c) ||
        !readMatrix(is, d)) {
        return std::nullopt;
    }
    try {
        ctrl.k = StateSpace(a, b, c, d, ts);
    } catch (const std::exception&) {
        return std::nullopt;
    }
    return ctrl;
}

std::optional<robust::SsvController>
loadSsvController(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return ssvControllerFromText(buf.str());
}

}  // namespace yukta::core
