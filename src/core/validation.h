#ifndef YUKTA_CORE_VALIDATION_H_
#define YUKTA_CORE_VALIDATION_H_

/**
 * @file
 * The "validate" steps of Fig. 3: before deployment, each team checks
 * its controller against the nominal identified model (step targets,
 * settling, bound satisfaction), and the combined system is smoke-
 * tested on the board.
 */

#include <string>
#include <vector>

#include "core/design_flow.h"

namespace yukta::core {

/** Outcome of a nominal closed-loop validation run. */
struct NominalValidation
{
    bool stable = false;          ///< No divergence over the horizon.
    bool within_bounds = false;   ///< Steady deviations inside B.
    std::vector<double> steady_deviation;  ///< |dev| at the horizon end.
    std::vector<int> settle_periods;  ///< First period inside bounds
                                      ///< (-1 = never settled).
    bool guardband_exhausted = false;  ///< Runtime monitor tripped.
};

/**
 * Closes the synthesized controller around its own identified model
 * and tracks a step to targets placed @p step_fraction of each output
 * bound... scaled by @p target_scale bounds away from the operating
 * point, for @p periods control periods.
 *
 * @param design a completed layer design.
 * @param target_scale step size in multiples of each output bound.
 * @param periods simulation horizon.
 */
NominalValidation validateNominal(const LayerDesign& design,
                                  double target_scale = 1.5,
                                  int periods = 200);

/** @return a one-line human-readable verdict. */
std::string summarize(const NominalValidation& v);

}  // namespace yukta::core

#endif  // YUKTA_CORE_VALIDATION_H_
