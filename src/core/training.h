#ifndef YUKTA_CORE_TRAINING_H_
#define YUKTA_CORE_TRAINING_H_

/**
 * @file
 * The System Identification characterization runs (Sec. IV-C): the
 * training applications execute on the board while the would-be
 * controller inputs and external signals are excited over their
 * allowed grids, and the would-be outputs are recorded every control
 * period. The records feed MIMO ARX identification.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "platform/config.h"
#include "sysid/arx.h"

namespace yukta::core {

/** Records gathered for every layer from one training campaign. */
struct TrainingData
{
    /** HW layer: u = [nb, nl, fb, fl, thr_b, tpc_b, tpc_l] -> y =
        [BIPS, P_big, P_little, T]. */
    sysid::IoData hw;

    /** OS layer: u = [thr_b, tpc_b, tpc_l, nb, nl, fb, fl] -> y =
        [BIPS_big, BIPS_little, dSC]. */
    sysid::IoData os;

    /** Joint (monolithic) view: all 7 inputs -> all 7 outputs. */
    sysid::IoData joint;

    /** Observed output ranges: [BIPS, P_big, P_little, T]. */
    std::vector<double> hw_ranges;

    /** Observed output ranges: [BIPS_big, BIPS_little, dSC]. */
    std::vector<double> os_ranges;
};

/** Options for the training campaign. */
struct TrainingOptions
{
    std::vector<std::string> apps;   ///< Training apps (default set).
    double seconds_per_app = 120.0;  ///< Simulated time per app.
    std::size_t hold_periods = 4;    ///< Periods each excitation holds
                                     ///< (2 s: clears the 260 ms power
                                     ///< sensor window several times).
    std::uint32_t seed = 2016;       ///< Excitation/noise seed.
};

/**
 * Runs the characterization campaign on fresh boards and returns the
 * collected records.
 */
TrainingData runTrainingCampaign(const platform::BoardConfig& cfg,
                                 const TrainingOptions& options = {});

}  // namespace yukta::core

#endif  // YUKTA_CORE_TRAINING_H_
