#include "core/training.h"

#include <algorithm>
#include <random>

#include "controllers/controller.h"
#include "platform/apps.h"
#include "platform/board.h"

namespace yukta::core {

using controllers::kControlPeriod;
using linalg::Vector;
using platform::ClusterId;

namespace {

/** Tracks min/max per channel. */
class RangeTracker
{
  public:
    explicit RangeTracker(std::size_t n) : lo_(n, 1e300), hi_(n, -1e300) {}

    void observe(const Vector& v)
    {
        for (std::size_t i = 0; i < v.size(); ++i) {
            lo_[i] = std::min(lo_[i], v[i]);
            hi_[i] = std::max(hi_[i], v[i]);
        }
    }

    std::vector<double> ranges() const
    {
        std::vector<double> out(lo_.size());
        for (std::size_t i = 0; i < lo_.size(); ++i) {
            out[i] = std::max(hi_[i] - lo_[i], 1e-3);
        }
        return out;
    }

  private:
    std::vector<double> lo_;
    std::vector<double> hi_;
};

/**
 * Removes per-application operating-point offsets: every app block is
 * shifted so its own mean coincides with the campaign-wide mean. The
 * cross-application IPC/power differences are exactly the slow
 * confounder that would otherwise be soaked up by the AR part of the
 * model and mask the input-to-output gains; they belong to the
 * uncertainty guardband, not the nominal model.
 */
void
centerPerApp(sysid::IoData& data, const std::vector<std::size_t>& blocks)
{
    if (data.u.empty()) {
        return;
    }
    std::size_t nu = data.u[0].size();
    std::size_t ny = data.y[0].size();
    Vector gu = Vector::zeros(nu);
    Vector gy = Vector::zeros(ny);
    for (std::size_t t = 0; t < data.u.size(); ++t) {
        gu += data.u[t];
        gy += data.y[t];
    }
    gu *= 1.0 / static_cast<double>(data.u.size());
    gy *= 1.0 / static_cast<double>(data.y.size());

    std::size_t begin = 0;
    for (std::size_t len : blocks) {
        if (len == 0) {
            continue;
        }
        Vector au = Vector::zeros(nu);
        Vector ay = Vector::zeros(ny);
        for (std::size_t t = begin; t < begin + len; ++t) {
            au += data.u[t];
            ay += data.y[t];
        }
        au *= 1.0 / static_cast<double>(len);
        ay *= 1.0 / static_cast<double>(len);
        for (std::size_t t = begin; t < begin + len; ++t) {
            data.u[t] += gu - au;
            data.y[t] += gy - ay;
        }
        begin += len;
    }
}

}  // namespace

TrainingData
runTrainingCampaign(const platform::BoardConfig& cfg,
                    const TrainingOptions& options)
{
    std::vector<std::string> apps = options.apps;
    if (apps.empty()) {
        apps = platform::AppCatalog::trainingApps();
    }

    TrainingData data;
    RangeTracker hw_ranges(4);
    RangeTracker os_ranges(3);
    std::mt19937 rng(options.seed);
    std::vector<std::size_t> block_lengths;

    // Two campaigns (Fig. 3: each team characterizes the system from
    // its own layer's perspective). The hardware campaign keeps the
    // scheduler spreading threads (tpc ~ 1) so core-count authority is
    // visible; the software campaign excites the placement knobs over
    // their full grids.
    for (std::size_t campaign = 0; campaign < 2; ++campaign) {
    const bool hw_campaign = campaign == 0;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        platform::Board board(
            cfg, platform::Workload(platform::AppCatalog::get(apps[ai])),
            options.seed + static_cast<std::uint32_t>(campaign * 100 + ai));

        std::uniform_int_distribution<int> big_cores(1, 4);
        std::uniform_int_distribution<int> little_cores(1, 4);
        std::uniform_real_distribution<double> fb(cfg.big.freq_min,
                                                  cfg.big.freq_max);
        std::uniform_real_distribution<double> fl(cfg.little.freq_min,
                                                  cfg.little.freq_max);
        // Thread-count excitation is biased toward loaded placements
        // and spreading (tpc 1-2), which is where real schedulers
        // operate: the identified operating point (signal means)
        // becomes the runtime controller's resting posture.
        std::uniform_int_distribution<int> tb_dist(0, 4);  // 4..8
        std::uniform_int_distribution<int> tpc_hw(1, 2);
        std::discrete_distribution<int> tpc_os_dist({0.45, 0.35, 0.15,
                                                     0.05});

        long periods = std::lround(options.seconds_per_app / kControlPeriod);
        double last_total = 0.0;
        double last_big = 0.0;
        double last_little = 0.0;
        std::size_t samples = 0;

        platform::HardwareInputs hw_in;
        platform::PlacementPolicy pol;

        for (long t = 0; t < periods && !board.done(); ++t) {
            if (t % static_cast<long>(options.hold_periods) == 0) {
                hw_in.big_cores = big_cores(rng);
                hw_in.little_cores = little_cores(rng);
                hw_in.freq_big = fb(rng);
                hw_in.freq_little = fl(rng);
                pol.threads_big = 4 + tb_dist(rng);
                if (hw_campaign) {
                    pol.tpc_big = tpc_hw(rng);
                    pol.tpc_little = tpc_hw(rng);
                } else {
                    pol.tpc_big = 1 + tpc_os_dist(rng);
                    pol.tpc_little = 1 + tpc_os_dist(rng);
                }
                board.applyHardwareInputs(hw_in);
                board.applyPlacementPolicy(pol);
            }

            board.run(kControlPeriod);

            // The signals a controller would see at the end of the
            // period.
            const auto& counters = board.perfCounters();
            double bips = (counters.total() - last_total) / kControlPeriod;
            double bips_big =
                (counters.instr_big - last_big) / kControlPeriod;
            double bips_little =
                (counters.instr_little - last_little) / kControlPeriod;
            last_total = counters.total();
            last_big = counters.instr_big;
            last_little = counters.instr_little;

            // The layer inputs / external signals are the *policy*
            // values the controllers exchange at runtime (recording
            // derived quantities like actual threads-per-busy-core
            // would be collinear with the core counts and split their
            // authority in the regression). The thread count is
            // clamped to the runnable threads like the runtime
            // controller's output is.
            double thr_big = std::min(
                pol.threads_big,
                static_cast<double>(board.threadsRunning()));
            double tpc_big_act = pol.tpc_big;
            double tpc_little_act = pol.tpc_little;

            const auto& applied = board.requestedHardware();
            Vector hw_u{static_cast<double>(applied.big_cores),
                        static_cast<double>(applied.little_cores),
                        applied.freq_big,
                        applied.freq_little,
                        thr_big,
                        tpc_big_act,
                        tpc_little_act};
            Vector hw_y{bips, board.sensedPowerBig(),
                        board.sensedPowerLittle(),
                        board.sensedTemperature()};

            double dsc = board.spareCompute(ClusterId::kBig) -
                         board.spareCompute(ClusterId::kLittle);
            Vector os_u{thr_big,
                        tpc_big_act,
                        tpc_little_act,
                        static_cast<double>(applied.big_cores),
                        static_cast<double>(applied.little_cores),
                        applied.freq_big,
                        applied.freq_little};
            Vector os_y{bips_big, bips_little, dsc};

            if (hw_campaign) {
                data.hw.u.push_back(hw_u);
                data.hw.y.push_back(hw_y);
            } else {
                data.os.u.push_back(os_u);
                data.os.y.push_back(os_y);
            }

            // Joint view: inputs ordered [hw inputs, os inputs].
            Vector joint_u{static_cast<double>(applied.big_cores),
                           static_cast<double>(applied.little_cores),
                           applied.freq_big,
                           applied.freq_little,
                           thr_big,
                           tpc_big_act,
                           tpc_little_act};
            Vector joint_y{bips,     board.sensedPowerBig(),
                           board.sensedPowerLittle(),
                           board.sensedTemperature(),
                           bips_big, bips_little,
                           dsc};
            data.joint.u.push_back(joint_u);
            data.joint.y.push_back(joint_y);

            hw_ranges.observe(hw_y);
            os_ranges.observe(os_y);
            ++samples;
        }
        block_lengths.push_back(samples);
    }
    }

    // Per-app centering: the per-campaign layer records use their own
    // block lists; the joint record spans both campaigns.
    std::vector<std::size_t> hw_blocks(block_lengths.begin(),
                                       block_lengths.begin() + apps.size());
    std::vector<std::size_t> os_blocks(block_lengths.begin() + apps.size(),
                                       block_lengths.end());
    centerPerApp(data.hw, hw_blocks);
    centerPerApp(data.os, os_blocks);
    centerPerApp(data.joint, block_lengths);

    data.hw_ranges = hw_ranges.ranges();
    data.os_ranges = os_ranges.ranges();
    return data;
}

}  // namespace yukta::core
