#ifndef YUKTA_CORE_YUKTA_H_
#define YUKTA_CORE_YUKTA_H_

/**
 * @file
 * Umbrella header for the Yukta public API.
 *
 * Typical use (see examples/):
 *
 *   auto cfg = yukta::platform::BoardConfig::odroidXu3();
 *   auto artifacts = yukta::core::buildArtifacts(cfg);
 *   auto system = yukta::core::makeSystem(
 *       yukta::core::Scheme::kYuktaFull, artifacts,
 *       yukta::platform::Workload(
 *           yukta::platform::AppCatalog::get("blackscholes")));
 *   auto metrics = system.run(600.0);
 */

#include "controllers/multilayer.h"
#include "controllers/supervisor.h"
#include "core/design_flow.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "core/report.h"
#include "core/schemes.h"
#include "core/spec.h"
#include "core/training.h"
#include "platform/apps.h"
#include "platform/board.h"
#include "robust/ssv_design.h"

#endif  // YUKTA_CORE_YUKTA_H_
