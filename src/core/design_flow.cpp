#include "core/design_flow.h"

#include <stdexcept>

#include "control/lqg.h"
#include "core/cache.h"

namespace yukta::core {

using controllers::InputGrid;
using linalg::Matrix;
using linalg::Vector;

namespace {

std::vector<InputGrid>
gridsFromSpecs(const std::vector<SignalSpec>& inputs)
{
    std::vector<InputGrid> grids;
    grids.reserve(inputs.size());
    for (const SignalSpec& in : inputs) {
        grids.push_back({in.min, in.max, in.step});
    }
    return grids;
}

/** Strips the trailing @p num_external columns from each u sample. */
sysid::IoData
dropExternalColumns(const sysid::IoData& data, std::size_t num_external)
{
    sysid::IoData out;
    out.y = data.y;
    out.u.reserve(data.u.size());
    for (const Vector& u : data.u) {
        out.u.push_back(u.segment(0, u.size() - num_external));
    }
    return out;
}

}  // namespace

std::optional<LayerDesign>
designSsvLayer(const LayerSpec& spec, const sysid::IoData& data,
               std::size_t num_external, const DesignOptions& options)
{
    if (data.u.empty() || data.u[0].size() !=
                              spec.inputs.size() + num_external) {
        throw std::invalid_argument(
            "designSsvLayer: data does not match the spec's inputs + "
            "external signals");
    }
    if (data.y.empty() || data.y[0].size() != spec.outputs.size()) {
        throw std::invalid_argument(
            "designSsvLayer: data does not match the spec's outputs");
    }

    LayerDesign design;
    design.spec = spec;

    // Step 3 of Fig. 3: black-box model from the training records.
    design.model =
        sysid::identifyArx(data, controllers::kControlPeriod, options.arx);
    design.fit = sysid::predictionFit(design.model, data);

    // Optional disk cache for the expensive synthesis step.
    if (!options.cache_key.empty()) {
        auto cached = loadSsvController(cachePath(options.cache_key));
        if (cached) {
            design.controller = std::move(*cached);
            return design;
        }
    }

    // Step 4: mu-synthesis from the spec.
    robust::SsvSpec ssv;
    ssv.model = design.model.toStateSpace();
    ssv.num_inputs = spec.inputs.size();
    ssv.num_external = num_external;
    for (const SignalSpec& in : spec.inputs) {
        ssv.in_min.push_back(in.min);
        ssv.in_max.push_back(in.max);
        ssv.in_step.push_back(in.step);
        ssv.in_weight.push_back(in.weight);
    }
    ssv.perf_dc_boost = spec.perf_boost;
    for (const OutputSpec& out : spec.outputs) {
        ssv.out_bound.push_back(out.bound());
        ssv.out_range.push_back(out.range);
        // Critical outputs (powers/temperature) keep their declared
        // bound as-is: their bounds already sit near the actuator
        // quantization, and extra DC demand is infeasible.
        ssv.out_boost.push_back(out.critical ? 1.0 : ssv.perf_dc_boost);
    }
    ssv.guardband = spec.guardband;
    ssv.max_order = spec.max_order;
    // Moderate closed-loop bandwidth: the 500 ms loop with ~300 ms
    // sensor latency cannot support corners near Nyquist.
    ssv.perf_corner = 1.2;
    ssv.unc_corner = 3.0;
    ssv.dk = options.dk;

    auto ctrl = robust::ssvSynthesize(ssv);
    if (!ctrl) {
        return std::nullopt;
    }
    design.controller = std::move(*ctrl);

    if (!options.cache_key.empty()) {
        saveSsvController(cachePath(options.cache_key), design.controller);
    }
    return design;
}

controllers::SsvRuntime
makeSsvRuntime(const LayerDesign& design)
{
    std::size_t ni = design.spec.inputs.size();
    const Vector& mean = design.model.uMean();
    Vector u_mean = mean.segment(0, ni);
    Vector e_mean = mean.segment(ni, mean.size() - ni);
    return controllers::SsvRuntime(design.controller,
                                   gridsFromSpecs(design.spec.inputs),
                                   u_mean, e_mean);
}

std::optional<LqgDesign>
designLqgLayer(const std::vector<SignalSpec>& input_specs,
               const std::vector<double>& output_bounds,
               const sysid::IoData& data, std::size_t num_external,
               const DesignOptions& options)
{
    if (data.u.empty() ||
        data.u[0].size() != input_specs.size() + num_external) {
        throw std::invalid_argument("designLqgLayer: data/spec mismatch");
    }
    if (data.y.empty() || data.y[0].size() != output_bounds.size()) {
        throw std::invalid_argument("designLqgLayer: bad output bounds");
    }

    LqgDesign design;
    design.grids = gridsFromSpecs(input_specs);

    // LQG has no external-signal channel: identify over the actuated
    // inputs only.
    sysid::IoData own = num_external > 0
                            ? dropExternalColumns(data, num_external)
                            : data;
    design.model =
        sysid::identifyArx(own, controllers::kControlPeriod, options.arx);
    design.u_mean = design.model.uMean();

    if (!options.cache_key.empty()) {
        auto cached = loadStateSpace(cachePath(options.cache_key));
        if (cached) {
            design.controller = std::move(*cached);
            return design;
        }
    }

    control::StateSpace plant = design.model.toStateSpace();

    // Output weights comparable to the SSV bounds; input weights
    // comparable to the SSV input weights (Sec. VI-B).
    control::LqgWeights weights;
    std::size_t ny = output_bounds.size();
    Matrix wy(ny, ny);
    for (std::size_t i = 0; i < ny; ++i) {
        double b = std::max(output_bounds[i], 1e-6);
        wy(i, i) = 1.0 / (b * b);
    }
    weights.q = plant.c.transpose() * wy * plant.c;
    std::size_t nu = input_specs.size();
    Matrix wu(nu, nu);
    for (std::size_t i = 0; i < nu; ++i) {
        double range = input_specs[i].max - input_specs[i].min;
        double w = input_specs[i].weight / std::max(range, 1e-6);
        wu(i, i) = w * w;
    }
    weights.r = wu;
    weights.qn = Matrix::identity(plant.numStates());
    weights.rn = 0.1 * Matrix::identity(ny);

    auto k = control::lqgSynthesize(plant, weights);
    if (!k) {
        return std::nullopt;
    }
    design.controller = std::move(*k);

    if (!options.cache_key.empty()) {
        saveStateSpace(cachePath(options.cache_key), design.controller);
    }
    return design;
}

controllers::LqgRuntime
makeLqgRuntime(const LqgDesign& design)
{
    return controllers::LqgRuntime(design.controller, design.grids,
                                   design.u_mean);
}

}  // namespace yukta::core
