#include "controllers/pid.h"

#include <algorithm>
#include <cmath>

#include "core/contracts.h"
#include "obs/trace.h"

#include "controllers/layer_controllers.h"

namespace yukta::controllers {

using platform::HardwareInputs;

Pid::Pid(const Gains& gains, double out_min, double out_max, double ts)
    : gains_(gains), out_min_(out_min), out_max_(out_max), ts_(ts)
{
}

double
Pid::step(double error)
{
    YUKTA_CHECK_FINITE(error, "Pid::step: non-finite error input");
    // Derivative with EMA filtering (no derivative kick handling
    // needed: targets move slowly).
    double raw_d = first_ ? 0.0 : (error - prev_error_) / ts_;
    deriv_ = first_ ? raw_d
                    : gains_.derivative_alpha * deriv_ +
                          (1.0 - gains_.derivative_alpha) * raw_d;
    first_ = false;
    prev_error_ = error;

    double unclamped = gains_.kp * error + integ_ + gains_.kd * deriv_;
    // Conditional integration: freeze the integrator while saturated
    // in the same direction (anti-windup).
    bool sat_hi = unclamped > out_max_ && error > 0.0;
    bool sat_lo = unclamped < out_min_ && error < 0.0;
    if (!sat_hi && !sat_lo) {
        integ_ += gains_.ki * error * ts_;
        double span = out_max_ - out_min_;
        integ_ = std::clamp(integ_, -span, span);
    }
    double out = gains_.kp * error + integ_ + gains_.kd * deriv_;
    out = std::clamp(out, out_min_, out_max_);
    YUKTA_ENSURE(out >= out_min_ && out <= out_max_,
                 "Pid: output ", out, " escapes [", out_min_, ", ",
                 out_max_, "]");
    return out;
}

void
Pid::reset()
{
    integ_ = 0.0;
    prev_error_ = 0.0;
    deriv_ = 0.0;
    first_ = true;
}

namespace {

constexpr double kTs = kControlPeriod;

}  // namespace

SisoPidHwController::SisoPidHwController(const platform::BoardConfig& cfg,
                                         ExdOptimizer optimizer)
    : cfg_(cfg), big_(cfg.big), little_(cfg.little),
      optimizer_(std::move(optimizer)),
      // Output of each loop is a *delta* applied to its own actuator;
      // gains are modest so the loops act like real tuned PIDs.
      perf_loop_({0.12, 0.10, 0.0, 0.5}, -1.0, 1.0, kTs),
      pbig_loop_({0.8, 0.6, 0.0, 0.5}, -2.0, 2.0, kTs),
      plittle_loop_({2.5, 2.0, 0.0, 0.5}, -1.0, 1.0, kTs),
      temp_loop_({0.05, 0.02, 0.0, 0.5}, -1.0, 0.0, kTs)
{
    reset();
}

void
SisoPidHwController::reset()
{
    perf_loop_.reset();
    pbig_loop_.reset();
    plittle_loop_.reset();
    temp_loop_.reset();
    optimizer_.reset();
    last_.big_cores = 2;
    last_.little_cores = 2;
    last_.freq_big = 1.0;
    last_.freq_little = 0.8;
}

void
SisoPidHwController::attachTrace(obs::TraceSink* sink)
{
    trace_ = sink;
    optimizer_.attachTrace(sink, "opt-hw");
}

HardwareInputs
SisoPidHwController::invoke(const HwSignals& s)
{
    linalg::Vector y{s.perf_bips, s.p_big, s.p_little, s.temp};
    const linalg::Vector& targets = optimizer_.update(
        exdMetric(s.p_big + s.p_little, s.perf_bips), y);

    // Each loop owns one actuator; nobody arbitrates conflicts.
    double f_big_delta = perf_loop_.step(targets[0] - s.perf_bips);
    double cores_delta = pbig_loop_.step(targets[1] - s.p_big);
    double f_lit_delta = plittle_loop_.step(targets[2] - s.p_little);
    // Temperature loop can only pull f_big down (negative authority).
    double f_big_cap_delta = temp_loop_.step(targets[3] - s.temp);

    HardwareInputs out;
    // Apply deltas around the currently-requested operating point.
    out.freq_big = big_.quantize(last_.freq_big + f_big_delta +
                                 std::min(0.0, f_big_cap_delta));
    out.big_cores = static_cast<std::size_t>(std::clamp(
        std::lround(static_cast<double>(last_.big_cores) + cores_delta),
        1l, static_cast<long>(cfg_.big.num_cores)));
    out.freq_little =
        little_.quantize(last_.freq_little + f_lit_delta);
    out.little_cores = last_.little_cores;
    last_ = out;
    if (trace_ != nullptr) {
        obs::TraceEvent ev = trace_->makeEvent("hw", "pid");
        ev.vec("y", y.raw())
            .vec("targets", targets.raw())
            .vec("deltas", {f_big_delta, cores_delta, f_lit_delta,
                            f_big_cap_delta})
            .num("integ_perf", perf_loop_.integrator())
            .num("integ_pbig", pbig_loop_.integrator())
            .num("integ_plittle", plittle_loop_.integrator())
            .num("integ_temp", temp_loop_.integrator());
        trace_->record(std::move(ev));
    }
    return out;
}

}  // namespace yukta::controllers
