#include "controllers/heuristics.h"

#include <algorithm>
#include <cmath>

namespace yukta::controllers {

using platform::HardwareInputs;
using platform::PlacementPolicy;

// ----------------------------------------------------------------
// Coordinated heuristic, hardware side.
// ----------------------------------------------------------------

CoordinatedHwHeuristic::CoordinatedHwHeuristic(
    const platform::BoardConfig& cfg, const platform::DvfsTable& big,
    const platform::DvfsTable& little)
    : cfg_(cfg), big_(big), little_(little)
{
    reset();
}

void
CoordinatedHwHeuristic::reset()
{
    state_.big_cores = 2;
    state_.little_cores = 2;
    state_.freq_big = 1.0;
    state_.freq_little = 0.8;
    ramp_tick_ = 0;
}

HardwareInputs
CoordinatedHwHeuristic::invoke(const HwSignals& s)
{
    // Coordination: size the big cluster to the thread demand the OS
    // reports (external signals), instead of blindly using all cores.
    double want_big =
        s.tpc_big > 0.0 ? std::ceil(s.threads_big / s.tpc_big) : 1.0;
    state_.big_cores = static_cast<std::size_t>(
        std::clamp(want_big, 1.0, static_cast<double>(cfg_.big.num_cores)));
    // The OS does not report the little-thread count directly; the
    // heuristic keeps the little cluster sized conservatively: all
    // cores when the big cluster is saturated (spillover expected),
    // half otherwise.
    double want_little = s.threads_big >= 2.0 * state_.big_cores
                             ? static_cast<double>(cfg_.little.num_cores)
                             : std::ceil(cfg_.little.num_cores / 2.0);
    state_.little_cores = static_cast<std::size_t>(std::clamp(
        want_little, 1.0, static_cast<double>(cfg_.little.num_cores)));

    // Raise frequency while safe; back off proportionally on
    // violations. "Safe" leaves a deliberate margin: industry
    // heuristics are tuned conservatively (the paper's Fig. 10(a)
    // shows the coordinated heuristic settling near 2.5 W against the
    // 3.3 W limit).
    double margin_p = 0.80;
    double margin_t = cfg_.temp_limit - 4.0;
    bool big_safe = s.p_big < margin_p * cfg_.power_limit_big &&
                    s.temp < margin_t;
    bool little_safe = s.p_little < margin_p * cfg_.power_limit_little &&
                       s.temp < margin_t;

    if (big_safe) {
        // Ramp slowly (every other invocation), like interactive
        // governors do.
        if (++ramp_tick_ % 2 == 0) {
            state_.freq_big = big_.stepUp(state_.freq_big, 1);
        }
    } else {
        double excess = std::max(s.p_big / cfg_.power_limit_big,
                                 s.temp / cfg_.temp_limit);
        std::size_t steps = excess > 1.05 ? 3 : (excess > 1.0 ? 2 : 1);
        state_.freq_big = big_.stepDown(state_.freq_big, steps);
    }
    if (little_safe) {
        state_.freq_little = little_.stepUp(state_.freq_little, 1);
    } else {
        double excess = s.p_little / cfg_.power_limit_little;
        std::size_t steps = excess > 1.05 ? 3 : (excess > 1.0 ? 2 : 1);
        state_.freq_little = little_.stepDown(state_.freq_little, steps);
    }
    return state_;
}

// ----------------------------------------------------------------
// Coordinated heuristic, OS side (HMP-like, E x D aware).
// ----------------------------------------------------------------

CoordinatedOsHeuristic::CoordinatedOsHeuristic(
    const platform::BoardConfig& cfg)
    : cfg_(cfg)
{
}

PlacementPolicy
CoordinatedOsHeuristic::invoke(const OsSignals& s)
{
    PlacementPolicy policy;
    double threads = static_cast<double>(s.num_threads);
    if (threads <= 0.0) {
        return policy;
    }

    // Capacity-proportional split using the core types and the
    // frequencies the hardware layer reports (the coordination). The
    // split plans against the *physical* core counts: the scheduler
    // expresses demand and the hardware layer brings cores up to meet
    // it (sizing against only the currently-powered cores would
    // deadlock both layers at one core each).
    double phys_big = static_cast<double>(cfg_.big.num_cores);
    double phys_little = static_cast<double>(cfg_.little.num_cores);
    double cap_big = phys_big * s.freq_big * 2.0;  // big ~2x IPC
    double cap_little = phys_little * s.freq_little * 1.0;
    double share =
        cap_big + cap_little > 0.0 ? cap_big / (cap_big + cap_little) : 1.0;
    policy.threads_big = std::round(threads * share);
    policy.threads_big =
        std::clamp(policy.threads_big, 0.0, threads);

    // Packing: spread while cores are plentiful; consolidate under
    // light load so unused cores can be powered down (E x D motive).
    double nb = policy.threads_big;
    double nl = threads - nb;
    if (threads <= 0.5 * (phys_big + phys_little)) {
        policy.tpc_big = std::max(1.0, std::ceil(nb / 2.0) > 0.0 ? 2.0 : 1.0);
        policy.tpc_little = 2.0;
    } else {
        // Spread over all physical cores (real-valued packing knob).
        policy.tpc_big =
            std::max(1.0, nb / std::min(std::max(nb, 1.0), phys_big));
        policy.tpc_little =
            std::max(1.0,
                     nl / std::min(std::max(nl, 1.0), phys_little));
    }
    return policy;
}

// ----------------------------------------------------------------
// Decoupled heuristic, hardware side (performance governor).
// ----------------------------------------------------------------

DecoupledHwHeuristic::DecoupledHwHeuristic(const platform::BoardConfig& cfg,
                                           const platform::DvfsTable& big,
                                           const platform::DvfsTable& little)
    : cfg_(cfg), big_(big), little_(little)
{
    reset();
}

void
DecoupledHwHeuristic::reset()
{
    state_.big_cores = cfg_.big.num_cores;
    state_.little_cores = cfg_.little.num_cores;
    state_.freq_big = big_.maxFreq();
    state_.freq_little = little_.maxFreq();
    violation_streak_ = 0;
}

HardwareInputs
DecoupledHwHeuristic::invoke(const HwSignals& s)
{
    bool violating = s.p_big > cfg_.power_limit_big ||
                     s.p_little > cfg_.power_limit_little ||
                     s.temp > cfg_.temp_limit;
    if (violating) {
        ++violation_streak_;
        // Threshold rules: frequency first, then cores — irrespective
        // of the number of threads.
        state_.freq_big = big_.stepDown(state_.freq_big, 2);
        state_.freq_little = little_.stepDown(state_.freq_little, 1);
        if (violation_streak_ >= 3 && state_.big_cores > 1) {
            --state_.big_cores;
        }
    } else {
        // Back to maximum the moment things look calm: this is what
        // makes the decoupled scheme oscillate against the emergency
        // system (Fig. 10(b)).
        violation_streak_ = 0;
        state_.big_cores = cfg_.big.num_cores;
        state_.little_cores = cfg_.little.num_cores;
        state_.freq_big = big_.maxFreq();
        state_.freq_little = little_.maxFreq();
    }
    return state_;
}

// ----------------------------------------------------------------
// Decoupled heuristic, OS side (round robin).
// ----------------------------------------------------------------

DecoupledOsRoundRobin::DecoupledOsRoundRobin(const platform::BoardConfig& cfg)
    : cfg_(cfg)
{
}

PlacementPolicy
DecoupledOsRoundRobin::invoke(const OsSignals& s)
{
    // No coordination: assume all physical cores are available.
    return platform::roundRobinPolicy(s.num_threads, cfg_.big.num_cores,
                                      cfg_.little.num_cores);
}

}  // namespace yukta::controllers
