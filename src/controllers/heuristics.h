#ifndef YUKTA_CONTROLLERS_HEURISTICS_H_
#define YUKTA_CONTROLLERS_HEURISTICS_H_

/**
 * @file
 * The heuristic controllers of Table IV:
 *
 *  (a) Coordinated heuristic — OS: HMP-style scheduler with power /
 *      performance heuristics using the number, type, and frequency
 *      of cores; HW: raises frequency and core counts while operation
 *      is safe, using the thread distribution to decide.
 *  (b) Decoupled heuristic — OS: round-robin placement; HW: Linux
 *      "performance"-governor style: everything at maximum, with
 *      threshold rules cutting frequency first and then cores on
 *      violations, irrespective of threads.
 */

#include "controllers/controller.h"
#include "platform/config.h"
#include "platform/dvfs.h"

namespace yukta::controllers {

/** HW side of the Coordinated heuristic scheme (Table IV(a)). */
class CoordinatedHwHeuristic : public HwController
{
  public:
    /** Builds the heuristic for @p cfg with both clusters' tables. */
    CoordinatedHwHeuristic(const platform::BoardConfig& cfg,
                           const platform::DvfsTable& big,
                           const platform::DvfsTable& little);

    /** HwController hooks: one 50 ms step; reset clears the ramp. */
    platform::HardwareInputs invoke(const HwSignals& s) override;
    void reset() override;

    /** Checkpoint hooks: ramp state + last actuation. */
    void save(obs::StateWriter& w) const override
    {
        w.u64("coordhw.big_cores", state_.big_cores);
        w.u64("coordhw.little_cores", state_.little_cores);
        w.f64("coordhw.freq_big", state_.freq_big);
        w.f64("coordhw.freq_little", state_.freq_little);
        w.i64("coordhw.ramp_tick", ramp_tick_);
    }
    /** Restores the state written by save(). */
    void load(obs::StateReader& r) override
    {
        state_.big_cores = r.u64("coordhw.big_cores");
        state_.little_cores = r.u64("coordhw.little_cores");
        state_.freq_big = r.f64("coordhw.freq_big");
        state_.freq_little = r.f64("coordhw.freq_little");
        ramp_tick_ = static_cast<int>(r.i64("coordhw.ramp_tick"));
    }

  private:
    platform::BoardConfig cfg_;
    platform::DvfsTable big_;
    platform::DvfsTable little_;
    platform::HardwareInputs state_;
    int ramp_tick_ = 0;
};

/** OS side of the Coordinated heuristic scheme (HMP-like, E x D). */
class CoordinatedOsHeuristic : public OsController
{
  public:
    /** Builds the HMP-like scheduler for @p cfg. */
    explicit CoordinatedOsHeuristic(const platform::BoardConfig& cfg);

    /** One 500 ms step: rebalances threads across the clusters. */
    platform::PlacementPolicy invoke(const OsSignals& s) override;

  private:
    platform::BoardConfig cfg_;
};

/** HW side of the Decoupled heuristic (performance governor). */
class DecoupledHwHeuristic : public HwController
{
  public:
    /** Builds the governor-style heuristic for @p cfg. */
    DecoupledHwHeuristic(const platform::BoardConfig& cfg,
                         const platform::DvfsTable& big,
                         const platform::DvfsTable& little);

    /** HwController hooks: threshold rules; reset clears streaks. */
    platform::HardwareInputs invoke(const HwSignals& s) override;
    void reset() override;

    /** Checkpoint hooks: violation streak + last actuation. */
    void save(obs::StateWriter& w) const override
    {
        w.u64("dechw.big_cores", state_.big_cores);
        w.u64("dechw.little_cores", state_.little_cores);
        w.f64("dechw.freq_big", state_.freq_big);
        w.f64("dechw.freq_little", state_.freq_little);
        w.i64("dechw.violation_streak", violation_streak_);
    }
    /** Restores the state written by save(). */
    void load(obs::StateReader& r) override
    {
        state_.big_cores = r.u64("dechw.big_cores");
        state_.little_cores = r.u64("dechw.little_cores");
        state_.freq_big = r.f64("dechw.freq_big");
        state_.freq_little = r.f64("dechw.freq_little");
        violation_streak_ =
            static_cast<int>(r.i64("dechw.violation_streak"));
    }

  private:
    platform::BoardConfig cfg_;
    platform::DvfsTable big_;
    platform::DvfsTable little_;
    platform::HardwareInputs state_;
    int violation_streak_ = 0;
};

/** OS side of the Decoupled heuristic (round robin, no coordination). */
class DecoupledOsRoundRobin : public OsController
{
  public:
    /** Builds the round-robin placer for @p cfg. */
    explicit DecoupledOsRoundRobin(const platform::BoardConfig& cfg);

    /** One 500 ms step: rotates threads over the cores in order. */
    platform::PlacementPolicy invoke(const OsSignals& s) override;

  private:
    platform::BoardConfig cfg_;
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_HEURISTICS_H_
