#ifndef YUKTA_CONTROLLERS_MULTILAYER_H_
#define YUKTA_CONTROLLERS_MULTILAYER_H_

/**
 * @file
 * The multilayer runtime harness (Fig. 4 / Fig. 7): wires a hardware
 * controller and a software controller (or one monolithic joint
 * controller) to the simulated board, invoking them every 500 ms and
 * ferrying the external signals between layers.
 *
 * Two optional stages sit at the platform boundary:
 *
 *   board -> [FaultInjector] -> [Supervisor] -> controllers
 *   controllers -> [Supervisor guard] -> [FaultInjector] -> board
 *
 * The injector (attachFaultInjector) deterministically corrupts the
 * observations and actuation per a FaultPlan; the supervisor
 * (enableSupervisor) validates what the controllers see and walks the
 * degradation ladder when telemetry goes bad.
 */

#include <memory>
#include <vector>

#include "controllers/controller.h"
#include "controllers/layer_controllers.h"
#include "controllers/supervisor.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "platform/board.h"

namespace yukta::controllers {

/** Outcome of one experiment run. */
struct RunMetrics
{
    double exec_time = 0.0;   ///< Seconds until workload completion.
    double energy = 0.0;      ///< Joules.
    double exd = 0.0;         ///< Energy x Delay (J*s).
    bool completed = false;   ///< false = hit the time budget.
    double emergency_time = 0.0;  ///< Seconds with TMU caps in force.
    int periods = 0;          ///< Controller invocations.
    double violation_time = 0.0;  ///< Seconds any true P/T cap exceeded.
    bool supervised = false;      ///< Supervisor was active.
    fault::FaultStats faults;     ///< Injector tallies (zero if none).
    SupervisorReport supervisor;  ///< Ladder log (empty if none).
    std::vector<platform::TraceSample> trace;  ///< When tracing is on.
};

/** Two-layer (or monolithic) control system bound to a board. */
class MultilayerSystem
{
  public:
    /** Collaborative / decoupled two-layer arrangement. */
    MultilayerSystem(platform::Board board, std::unique_ptr<HwController> hw,
                     std::unique_ptr<OsController> os);

    /** Monolithic arrangement (one controller for both layers). */
    MultilayerSystem(platform::Board board,
                     std::unique_ptr<JointController> joint);

    /** Enables board tracing at @p interval seconds. */
    void enableTrace(double interval);

    /** Injects faults per @p plan at the platform boundary. */
    void attachFaultInjector(const fault::FaultPlan& plan);

    /** Wraps the controllers in a supervisor with @p cfg. */
    void enableSupervisor(const SupervisorConfig& cfg = {});

    /**
     * Attaches @p sink for per-tick structured event tracing and
     * propagates it to every stage (controllers, optimizers,
     * supervisor, injector, board). nullptr detaches everywhere.
     * Events are keyed by (tick, layer, kind) and simulated time
     * only, so a traced run is bit-reproducible.
     */
    void attachTraceSink(obs::TraceSink* sink);

    /** @return the attached trace sink (nullptr when untraced). */
    obs::TraceSink* traceSink() const { return sink_; }

    /**
     * Runs until the workload completes or @p max_seconds elapses.
     * Restarts the period clock, so repeated calls behave as before
     * the incremental API existed.
     */
    RunMetrics run(double max_seconds);

    /**
     * Advances exactly one 500 ms control period (controllers then
     * plant). The incremental form of run() for callers that
     * interleave many systems -- the fleet simulator steps every
     * board one period per epoch. Emits the same trace events in the
     * same order as run(), so a stepped run is byte-identical to a
     * monolithic one.
     */
    void stepPeriod();

    /**
     * First half of stepPeriod(): observation, supervision, and the
     * controllers' front halves. When @p batch is non-null (and no
     * trace sink is attached -- event interleaving must not change),
     * linear-core controllers stage their state-machine pass into it
     * instead of running it; the caller ticks the batch and then
     * calls stepPeriodFinish(). Begin(nullptr) + Finish() is
     * bit-identical to stepPeriod().
     */
    void stepPeriodBegin(BatchRuntime* batch);

    /**
     * Second half of stepPeriod(): controllers' back halves,
     * actuation, and the plant step.
     * @throws std::logic_error without a prior stepPeriodBegin().
     */
    void stepPeriodFinish();

    /** @return metrics accumulated since the period clock restarted. */
    RunMetrics metrics() const;

    /** Control periods stepped since the clock restarted. */
    int periods() const { return periods_; }

    /**
     * Forwards @p targets ([BIPS, P_big, P_little, T]) to the
     * hardware-layer controller -- the hook a cluster controller uses
     * to set this board's operating point. @return false when the
     * arrangement has no compatible hardware controller (monolithic
     * joint loop, heuristics).
     */
    bool holdHwTargets(const linalg::Vector& targets);

    /**
     * Hot-swaps a freshly synthesized SSV hardware runtime into the
     * running system with bumpless transfer: the incoming runtime is
     * armed to repeat the hardware command currently in force, and
     * when a supervisor is attached the ladder drops to kHold and
     * re-earns kNominal tick by tick, so a fault landing mid-swap
     * degrades like any other invalid streak. Emits an "adapt"/"swap"
     * trace event when a sink is attached.
     * @return false when the hardware layer is not an SsvHwController
     * (LQG / heuristic / monolithic arrangements).
     */
    bool hotSwapHwRuntime(SsvRuntime runtime);

    /**
     * Raw hardware-runtime replacement for checkpoint restore:
     * installs the runtime without bumpless arming or ladder routing
     * (the restored state stream carries the exact post-swap state).
     * Must be called before load() so the state sizes match.
     */
    bool installHwRuntime(SsvRuntime runtime);

    /**
     * The hardware command and placement policy currently in force
     * (what applyIfChanged last pushed to the board). The fleet's
     * adaptation loop samples these as the plant inputs.
     */
    const platform::HardwareInputs& lastHardware() const
    {
        return last_hw_;
    }
    /** @return the last placement policy applied to the board. */
    const platform::PlacementPolicy& lastPolicy() const
    {
        return last_policy_;
    }

    /** Access to the simulated board (inspection in tests/benches). */
    platform::Board& board() { return board_; }
    const platform::Board& board() const { return board_; }

    /** Supervisor, or nullptr when not enabled. */
    const Supervisor* supervisor() const { return supervisor_.get(); }

    /** Mutable supervisor access (fleet cold-boot), or nullptr. */
    Supervisor* supervisor() { return supervisor_.get(); }

    /**
     * Appends the full system state — board, both layer controllers
     * (or the joint one), injector, supervisor, and the harness's own
     * inter-period memory — to @p w for checkpointing.
     */
    void save(obs::StateWriter& w) const;

    /**
     * Restores state written by save into a system constructed with
     * the same board config, workload, scheme, and attachments.
     */
    void load(obs::StateReader& r);

  private:
    platform::Board board_;
    std::unique_ptr<HwController> hw_;
    std::unique_ptr<OsController> os_;
    std::unique_ptr<JointController> joint_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<Supervisor> supervisor_;
    obs::TraceSink* sink_ = nullptr;

    platform::HardwareInputs last_hw_;
    platform::PlacementPolicy last_policy_;
    double last_instr_total_ = 0.0;
    double last_instr_big_ = 0.0;
    double last_instr_little_ = 0.0;
    double t_ = 0.0;
    int periods_ = 0;

    /** In-flight period between stepPeriodBegin and stepPeriodFinish. */
    struct PendingTick
    {
        bool in_progress = false;
        bool dropped = false;      ///< Injector timing fault this tick.
        SupervisorMode mode = SupervisorMode::kNominal;
        bool hw_deferred = false;  ///< hw_ staged into the batch.
        bool os_deferred = false;  ///< os_ staged into the batch.
        platform::HardwareInputs hw_in;
        platform::PlacementPolicy policy;
        double instr_big = 0.0;    ///< Observation-space marks.
        double instr_little = 0.0;
    };
    PendingTick pending_;

    HwSignals gatherHw(const platform::SensorReadings& obs) const;
    OsSignals gatherOs(const platform::SensorReadings& obs) const;
    void applyIfChanged(const platform::HardwareInputs& hw,
                        const platform::PlacementPolicy& policy);
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_MULTILAYER_H_
