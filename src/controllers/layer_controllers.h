#ifndef YUKTA_CONTROLLERS_LAYER_CONTROLLERS_H_
#define YUKTA_CONTROLLERS_LAYER_CONTROLLERS_H_

/**
 * @file
 * Concrete layer controllers: SSV- and LQG-based hardware / OS
 * controllers (each paired with an E x D target optimizer, Fig. 5),
 * and the monolithic LQG controller that manages both layers at once
 * (Sec. VI-B).
 */

#include <utility>

#include "controllers/controller.h"
#include "controllers/lqg_runtime.h"
#include "controllers/optimizer.h"
#include "controllers/ssv_runtime.h"

namespace yukta::controllers {

/**
 * Builds the default hardware-layer optimizer: maximize BIPS, budget
 * the two cluster powers below the board limits, hold temperature.
 */
ExdOptimizer makeHwOptimizer(const platform::BoardConfig& cfg);

/** Default OS-layer optimizer: maximize per-cluster BIPS, hold dSC. */
ExdOptimizer makeOsOptimizer();

/** Optimizer for the monolithic LQG: all seven targets in one walk. */
ExdOptimizer makeMonolithicOptimizer(const platform::BoardConfig& cfg);

/** SSV hardware controller (Sec. IV-A) + optimizer. */
class SsvHwController : public HwController
{
  public:
    /** Takes ownership of the synthesized runtime and optimizer. */
    SsvHwController(SsvRuntime runtime, ExdOptimizer optimizer);

    /** HwController hooks: one control period; reset clears state. */
    platform::HardwareInputs invoke(const HwSignals& s) override;
    void reset() override;

    /** Batched-tick split (bit-identical to invoke()). */
    bool beginInvoke(const HwSignals& s, BatchRuntime& batch) override;
    platform::HardwareInputs finishInvoke() override;

    /** Emits per-tick "hw"/"ssv" events to @p sink (nullptr off). */
    void attachTrace(obs::TraceSink* sink) override;

    /** Read access to the wrapped runtime and optimizer. */
    const SsvRuntime& runtime() const { return runtime_; }
    const ExdOptimizer& optimizer() const { return optimizer_; }

    /** Overrides the optimizer with fixed output targets. */
    bool holdTargets(const linalg::Vector& targets) override;

    /**
     * Replaces the wrapped runtime with a freshly synthesized one,
     * arming bumpless transfer against @p u_prev -- the physical
     * command in force at the swap tick. The optimizer and its walked
     * targets persist: the operating point outlives the controller
     * generation.
     */
    void swapRuntime(SsvRuntime runtime, const linalg::Vector& u_prev);

    /**
     * Raw runtime replacement for checkpoint restore: no bumpless
     * arming (the restored state stream carries the exact post-swap
     * runtime state, including any still-pending arm).
     */
    void installRuntime(SsvRuntime runtime);

    /** Checkpoint hooks: runtime + optimizer + hold state. */
    void save(obs::StateWriter& w) const override
    {
        runtime_.save(w);
        optimizer_.save(w);
        w.f64vec("ctl.held_targets", held_targets_.raw());
        w.boolean("ctl.hold", hold_);
    }
    /** Restores the state written by save(). */
    void load(obs::StateReader& r) override
    {
        runtime_.load(r);
        optimizer_.load(r);
        held_targets_ = linalg::Vector(r.f64vec("ctl.held_targets"));
        hold_ = r.boolean("ctl.hold");
    }

  private:
    /** Front half of invoke(): optimizer + staging the runtime. */
    void stage(const HwSignals& s);

    SsvRuntime runtime_;
    ExdOptimizer optimizer_;
    linalg::Vector held_targets_;
    bool hold_ = false;
    obs::TraceSink* trace_ = nullptr;
    linalg::Vector pending_y_, pending_targets_, pending_ext_;
};

/** SSV software controller (Sec. IV-B) + optimizer. */
class SsvOsController : public OsController
{
  public:
    /** Takes ownership of the synthesized runtime and optimizer. */
    SsvOsController(SsvRuntime runtime, ExdOptimizer optimizer);

    /** OsController hooks: one control period; reset clears state. */
    platform::PlacementPolicy invoke(const OsSignals& s) override;
    void reset() override;

    /** Batched-tick split (bit-identical to invoke()). */
    bool beginInvoke(const OsSignals& s, BatchRuntime& batch) override;
    platform::PlacementPolicy finishInvoke() override;

    /** Emits per-tick "os"/"ssv" events to @p sink (nullptr off). */
    void attachTrace(obs::TraceSink* sink) override;

    /** Read access to the wrapped runtime and optimizer. */
    const SsvRuntime& runtime() const { return runtime_; }
    const ExdOptimizer& optimizer() const { return optimizer_; }

    /** Overrides the optimizer with fixed output targets. */
    bool holdTargets(const linalg::Vector& targets) override;

    /** Checkpoint hooks: runtime + optimizer + hold state. */
    void save(obs::StateWriter& w) const override
    {
        runtime_.save(w);
        optimizer_.save(w);
        w.f64vec("ctl.held_targets", held_targets_.raw());
        w.boolean("ctl.hold", hold_);
    }
    /** Restores the state written by save(). */
    void load(obs::StateReader& r) override
    {
        runtime_.load(r);
        optimizer_.load(r);
        held_targets_ = linalg::Vector(r.f64vec("ctl.held_targets"));
        hold_ = r.boolean("ctl.hold");
    }

  private:
    /** Front half of invoke(): optimizer + staging the runtime. */
    void stage(const OsSignals& s);

    SsvRuntime runtime_;
    ExdOptimizer optimizer_;
    linalg::Vector held_targets_;
    bool hold_ = false;
    obs::TraceSink* trace_ = nullptr;
    linalg::Vector pending_y_, pending_targets_, pending_ext_;
    std::size_t pending_threads_ = 0;
};

/** Decoupled-LQG hardware controller (no external signals). */
class LqgHwController : public HwController
{
  public:
    /** Takes ownership of the synthesized runtime and optimizer. */
    LqgHwController(LqgRuntime runtime, ExdOptimizer optimizer);

    /** HwController hooks: one control period; reset clears state. */
    platform::HardwareInputs invoke(const HwSignals& s) override;
    void reset() override;

    /** Batched-tick split (bit-identical to invoke()). */
    bool beginInvoke(const HwSignals& s, BatchRuntime& batch) override;
    platform::HardwareInputs finishInvoke() override;

    /** Emits per-tick "hw"/"lqg" events to @p sink (nullptr off). */
    void attachTrace(obs::TraceSink* sink) override;

    /** Read access to the wrapped runtime and optimizer. */
    const LqgRuntime& runtime() const { return runtime_; }
    const ExdOptimizer& optimizer() const { return optimizer_; }

    /** Overrides the optimizer with fixed output targets. */
    bool holdTargets(const linalg::Vector& targets) override;

    /** Checkpoint hooks: runtime + optimizer + hold state. */
    void save(obs::StateWriter& w) const override
    {
        runtime_.save(w);
        optimizer_.save(w);
        w.f64vec("ctl.held_targets", held_targets_.raw());
        w.boolean("ctl.hold", hold_);
    }
    /** Restores the state written by save(). */
    void load(obs::StateReader& r) override
    {
        runtime_.load(r);
        optimizer_.load(r);
        held_targets_ = linalg::Vector(r.f64vec("ctl.held_targets"));
        hold_ = r.boolean("ctl.hold");
    }

  private:
    /** Front half of invoke(): optimizer + staging the runtime. */
    void stage(const HwSignals& s);

    LqgRuntime runtime_;
    ExdOptimizer optimizer_;
    linalg::Vector held_targets_;
    bool hold_ = false;
    obs::TraceSink* trace_ = nullptr;
    linalg::Vector pending_y_, pending_targets_;
};

/** Decoupled-LQG software controller. */
class LqgOsController : public OsController
{
  public:
    /** Takes ownership of the synthesized runtime and optimizer. */
    LqgOsController(LqgRuntime runtime, ExdOptimizer optimizer);

    /** OsController hooks: one control period; reset clears state. */
    platform::PlacementPolicy invoke(const OsSignals& s) override;
    void reset() override;

    /** Batched-tick split (bit-identical to invoke()). */
    bool beginInvoke(const OsSignals& s, BatchRuntime& batch) override;
    platform::PlacementPolicy finishInvoke() override;

    /** Emits per-tick "os"/"lqg" events to @p sink (nullptr off). */
    void attachTrace(obs::TraceSink* sink) override;

    /** Read access to the wrapped runtime. */
    const LqgRuntime& runtime() const { return runtime_; }

    /** Checkpoint hooks: runtime + optimizer. */
    void save(obs::StateWriter& w) const override
    {
        runtime_.save(w);
        optimizer_.save(w);
    }
    /** Restores the state written by save(). */
    void load(obs::StateReader& r) override
    {
        runtime_.load(r);
        optimizer_.load(r);
    }

  private:
    /** Front half of invoke(): optimizer + staging the runtime. */
    void stage(const OsSignals& s);

    LqgRuntime runtime_;
    ExdOptimizer optimizer_;
    obs::TraceSink* trace_ = nullptr;
    linalg::Vector pending_y_, pending_targets_;
    std::size_t pending_threads_ = 0;
};

/** Controller that manages both layers from one loop. */
class JointController
{
  public:
    virtual ~JointController() = default;

    /** One joint invocation: both layers' commands from one loop. */
    virtual std::pair<platform::HardwareInputs, platform::PlacementPolicy>
    invoke(const HwSignals& hw, const OsSignals& os) = 0;

    /** Resets internal state between runs. */
    virtual void reset() {}

    /** Attaches @p sink for per-tick event tracing (nullptr detaches). */
    virtual void attachTrace(obs::TraceSink* sink) { (void)sink; }

    /** Appends the controller's mutable state to @p w (default none). */
    virtual void save(obs::StateWriter& w) const { (void)w; }

    /** Restores state written by save. */
    virtual void load(obs::StateReader& r) { (void)r; }
};

/**
 * Monolithic LQG (Sec. VI-B): one LQG loop over all seven outputs
 * {BIPS, P_big, P_little, T, BIPS_big, BIPS_little, dSC} and all
 * seven inputs {cores/freqs, placement knobs}.
 */
class MonolithicLqgController : public JointController
{
  public:
    /** Takes ownership of the synthesized runtime and optimizer. */
    MonolithicLqgController(LqgRuntime runtime, ExdOptimizer optimizer);

    /** One joint control period over all seven outputs. */
    std::pair<platform::HardwareInputs, platform::PlacementPolicy>
    invoke(const HwSignals& hw, const OsSignals& os) override;
    /** Resets the LQG state between runs. */
    void reset() override;

    /** Emits per-tick "joint"/"lqg" events to @p sink (nullptr off). */
    void attachTrace(obs::TraceSink* sink) override;

    /** Read access to the wrapped runtime. */
    const LqgRuntime& runtime() const { return runtime_; }

    /** Checkpoint hooks: runtime + optimizer. */
    void save(obs::StateWriter& w) const override
    {
        runtime_.save(w);
        optimizer_.save(w);
    }
    /** Restores the state written by save(). */
    void load(obs::StateReader& r) override
    {
        runtime_.load(r);
        optimizer_.load(r);
    }

  private:
    LqgRuntime runtime_;
    ExdOptimizer optimizer_;
    obs::TraceSink* trace_ = nullptr;
};

/** E x D proxy metric (Power / Perf^2) used by the optimizers. */
double exdMetric(double total_power, double bips);

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_LAYER_CONTROLLERS_H_
