#include "controllers/batch_runtime.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/contracts.h"
#include "linalg/gemm.h"

namespace yukta::controllers {

namespace batch_detail {

std::uint64_t
fnv1aBytes(const void* data, std::size_t len, std::uint64_t seed)
{
    const unsigned char* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

namespace {

std::uint64_t
chainSize(std::uint64_t h, std::size_t v)
{
    const std::uint64_t w = static_cast<std::uint64_t>(v);
    return fnv1aBytes(&w, sizeof(w), h);
}

std::uint64_t
chainMatrix(std::uint64_t h, const linalg::Matrix& m)
{
    h = chainSize(h, m.rows());
    h = chainSize(h, m.cols());
    return fnv1aBytes(m.data(), m.rows() * m.cols() * sizeof(double), h);
}

}  // namespace

std::uint64_t
stateSpaceKey(const control::StateSpace& k)
{
    std::uint64_t h = fnv1aBytes("ss", 2);
    h = chainMatrix(h, k.a);
    h = chainMatrix(h, k.b);
    h = chainMatrix(h, k.c);
    return chainMatrix(h, k.d);
}

std::uint64_t
fixedPointKey(std::size_t n, std::size_t m, std::size_t p,
              const std::vector<std::int32_t>& a,
              const std::vector<std::int32_t>& b,
              const std::vector<std::int32_t>& c,
              const std::vector<std::int32_t>& d)
{
    std::uint64_t h = fnv1aBytes("fx", 2);
    h = chainSize(h, n);
    h = chainSize(h, m);
    h = chainSize(h, p);
    h = fnv1aBytes(a.data(), a.size() * sizeof(std::int32_t), h);
    h = fnv1aBytes(b.data(), b.size() * sizeof(std::int32_t), h);
    h = fnv1aBytes(c.data(), c.size() * sizeof(std::int32_t), h);
    return fnv1aBytes(d.data(), d.size() * sizeof(std::int32_t), h);
}

}  // namespace batch_detail

namespace {

bool
sameSystem(const control::StateSpace& a, const control::StateSpace& b)
{
    auto eq = [](const linalg::Matrix& x, const linalg::Matrix& y) {
        return x.rows() == y.rows() && x.cols() == y.cols() &&
               (x.rows() * x.cols() == 0 ||
                std::memcmp(x.data(), y.data(),
                            x.rows() * x.cols() * sizeof(double)) == 0);
    };
    return eq(a.a, b.a) && eq(a.b, b.b) && eq(a.c, b.c) && eq(a.d, b.d);
}

}  // namespace

void
BatchRuntime::enqueueFloat(std::uint64_t key,
                           const control::StateSpace& sys,
                           FloatMember member)
{
    // Linear scan keeps group discovery deterministic (insertion
    // order) and is trivially fast at fleet group counts (a handful).
    for (FloatGroup& g : float_groups_) {
        if (g.key == key && sameSystem(*g.sys, sys)) {
            g.members.push_back(member);
            return;
        }
    }
    FloatGroup g;
    g.key = key;
    g.sys = &sys;
    g.members.push_back(member);
    float_groups_.push_back(std::move(g));
}

void
BatchRuntime::enqueue(SsvRuntime& rt)
{
    if (!rt.has_pending_ || rt.linear_done_) {
        throw std::logic_error(
            "BatchRuntime::enqueue: SsvRuntime has no staged invocation");
    }
    rt.pending_u_ = linalg::Vector(rt.ctrl_.k.numOutputs());
    enqueueFloat(rt.batch_key_, rt.ctrl_.k,
                 FloatMember{&rt.x_, &rt.pending_dy_, &rt.pending_u_,
                             &rt.linear_done_});
}

void
BatchRuntime::enqueue(LqgRuntime& rt)
{
    if (!rt.has_pending_ || rt.linear_done_) {
        throw std::logic_error(
            "BatchRuntime::enqueue: LqgRuntime has no staged invocation");
    }
    rt.pending_u_ = linalg::Vector(rt.k_.numOutputs());
    enqueueFloat(rt.batch_key_, rt.k_,
                 FloatMember{&rt.x_, &rt.pending_dy_, &rt.pending_u_,
                             &rt.linear_done_});
}

void
BatchRuntime::enqueue(FixedPointSsv& fp)
{
    if (!fp.has_pending_ || fp.linear_done_) {
        throw std::logic_error(
            "BatchRuntime::enqueue: FixedPointSsv has no staged step");
    }
    fp.pending_u_.assign(fp.p_, 0);
    for (FixedGroup& g : fixed_groups_) {
        if (g.key == fp.batch_key_ && g.ref->n_ == fp.n_ &&
            g.ref->m_ == fp.m_ && g.ref->p_ == fp.p_ &&
            g.ref->a_ == fp.a_ && g.ref->b_ == fp.b_ &&
            g.ref->c_ == fp.c_ && g.ref->d_ == fp.d_) {
            g.members.push_back(FixedMember{&fp.x_, &fp.pending_dy_,
                                            &fp.pending_u_,
                                            &fp.linear_done_});
            return;
        }
    }
    FixedGroup g;
    g.key = fp.batch_key_;
    g.ref = &fp;
    g.members.push_back(
        FixedMember{&fp.x_, &fp.pending_dy_, &fp.pending_u_,
                    &fp.linear_done_});
    fixed_groups_.push_back(std::move(g));
}

std::size_t
BatchRuntime::pendingCount() const
{
    std::size_t n = 0;
    for (const FloatGroup& g : float_groups_) {
        n += g.members.size();
    }
    for (const FixedGroup& g : fixed_groups_) {
        n += g.members.size();
    }
    return n;
}

void
BatchRuntime::tickFloatGroup(const FloatGroup& g)
{
    const control::StateSpace& sys = *g.sys;
    const std::size_t n = sys.numStates();
    const std::size_t m = sys.numInputs();
    const std::size_t p = sys.numOutputs();
    const std::size_t cols = g.members.size();

    xpack_.resize(n * cols);
    dypack_.resize(m * cols);
    u_cx_.resize(p * cols);
    u_ddy_.resize(p * cols);
    xn_ax_.resize(n * cols);
    xn_bdy_.resize(n * cols);

    // Gather: member j becomes column j of X (n x cols) and DY
    // (m x cols). Staged sizes were validated in beginInvoke.
    for (std::size_t j = 0; j < cols; ++j) {
        const FloatMember& mem = g.members[j];
        YUKTA_REQUIRE(mem.x->size() == n && mem.dy->size() == m,
                      "BatchRuntime: staged member shape drifted from "
                      "its group");
        for (std::size_t i = 0; i < n; ++i) {
            xpack_[i * cols + j] = (*mem.x)[i];
        }
        for (std::size_t i = 0; i < m; ++i) {
            dypack_[i * cols + j] = (*mem.dy)[i];
        }
    }

    // Four dense passes; each output element accumulates over k
    // ascending with no skipped terms, exactly like Matrix*Vector.
    linalg::gemmDense(sys.c.data(), p, n, xpack_.data(), cols,
                      u_cx_.data());
    linalg::gemmDense(sys.d.data(), p, m, dypack_.data(), cols,
                      u_ddy_.data());
    linalg::gemmDense(sys.a.data(), n, n, xpack_.data(), cols,
                      xn_ax_.data());
    linalg::gemmDense(sys.b.data(), n, m, dypack_.data(), cols,
                      xn_bdy_.data());

    // Scatter: one elementwise add per element, mirroring stepOnce's
    // y = (C x) + (D dy) and x' = (A x) + (B dy). The state update
    // used the packed OLD state, so ordering vs. the u pass is moot.
    for (std::size_t j = 0; j < cols; ++j) {
        const FloatMember& mem = g.members[j];
        for (std::size_t i = 0; i < p; ++i) {
            (*mem.u)[i] = u_cx_[i * cols + j] + u_ddy_[i * cols + j];
        }
        for (std::size_t i = 0; i < n; ++i) {
            (*mem.x)[i] = xn_ax_[i * cols + j] + xn_bdy_[i * cols + j];
        }
        *mem.done = true;
    }
}

void
BatchRuntime::tickFixedGroup(const FixedGroup& g)
{
    const FixedPointSsv& ref = *g.ref;
    const std::size_t n = ref.n_;
    const std::size_t m = ref.m_;
    const std::size_t p = ref.p_;
    const std::size_t cols = g.members.size();

    fxpack_.resize(n * cols);
    fdypack_.resize(m * cols);
    fu_.resize(p * cols);
    fxn_.resize(n * cols);
    facc_.resize(cols);

    for (std::size_t j = 0; j < cols; ++j) {
        const FixedMember& mem = g.members[j];
        YUKTA_REQUIRE(mem.x->size() == n && mem.dy->size() == m,
                      "BatchRuntime: staged fixed-point member shape "
                      "drifted from its group");
        for (std::size_t i = 0; i < n; ++i) {
            fxpack_[i * cols + j] = (*mem.x)[i];
        }
        for (std::size_t i = 0; i < m; ++i) {
            fdypack_[i * cols + j] = (*mem.dy)[i];
        }
    }

    // u = (C x + D dy) >> frac, row by row with 64-bit accumulators;
    // integer addition is exact, so any order matches the scalar
    // path -- this loop keeps the scalar term order anyway.
    for (std::size_t i = 0; i < p; ++i) {
        std::fill(facc_.begin(), facc_.end(), std::int64_t{0});
        for (std::size_t kk = 0; kk < n; ++kk) {
            const std::int64_t cv = ref.c_[i * n + kk];
            const std::int32_t* row = fxpack_.data() + kk * cols;
            for (std::size_t j = 0; j < cols; ++j) {
                facc_[j] += cv * row[j];
            }
        }
        for (std::size_t kk = 0; kk < m; ++kk) {
            const std::int64_t dv = ref.d_[i * m + kk];
            const std::int32_t* row = fdypack_.data() + kk * cols;
            for (std::size_t j = 0; j < cols; ++j) {
                facc_[j] += dv * row[j];
            }
        }
        for (std::size_t j = 0; j < cols; ++j) {
            fu_[i * cols + j] =
                static_cast<std::int32_t>(facc_[j] >> FixedPointSsv::kFracBits);
        }
    }

    // x' = (A x + B dy) >> frac from the packed OLD state.
    for (std::size_t i = 0; i < n; ++i) {
        std::fill(facc_.begin(), facc_.end(), std::int64_t{0});
        for (std::size_t kk = 0; kk < n; ++kk) {
            const std::int64_t av = ref.a_[i * n + kk];
            const std::int32_t* row = fxpack_.data() + kk * cols;
            for (std::size_t j = 0; j < cols; ++j) {
                facc_[j] += av * row[j];
            }
        }
        for (std::size_t kk = 0; kk < m; ++kk) {
            const std::int64_t bv = ref.b_[i * m + kk];
            const std::int32_t* row = fdypack_.data() + kk * cols;
            for (std::size_t j = 0; j < cols; ++j) {
                facc_[j] += bv * row[j];
            }
        }
        for (std::size_t j = 0; j < cols; ++j) {
            fxn_[i * cols + j] =
                static_cast<std::int32_t>(facc_[j] >> FixedPointSsv::kFracBits);
        }
    }

    for (std::size_t j = 0; j < cols; ++j) {
        const FixedMember& mem = g.members[j];
        for (std::size_t i = 0; i < p; ++i) {
            (*mem.u)[i] = fu_[i * cols + j];
        }
        for (std::size_t i = 0; i < n; ++i) {
            (*mem.x)[i] = fxn_[i * cols + j];
        }
        *mem.done = true;
    }
}

void
BatchRuntime::tick()
{
    for (const FloatGroup& g : float_groups_) {
        tickFloatGroup(g);
    }
    for (const FixedGroup& g : fixed_groups_) {
        tickFixedGroup(g);
    }
    float_groups_.clear();
    fixed_groups_.clear();
}

}  // namespace yukta::controllers
