#include "controllers/ssv_runtime.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "controllers/batch_runtime.h"
#include "core/contracts.h"
#include "linalg/qr.h"

namespace yukta::controllers {

using linalg::Vector;

double
InputGrid::quantize(double v) const
{
    YUKTA_REQUIRE(min <= max, "InputGrid: min ", min, " > max ", max);
    double clamped = std::clamp(v, min, max);
    if (step <= 0.0) {
        return clamped;
    }
    double snapped = min + step * std::round((clamped - min) / step);
    return std::clamp(snapped, min, max);
}

SsvRuntime::SsvRuntime(robust::SsvController ctrl,
                       std::vector<InputGrid> grids, Vector u_mean,
                       Vector e_mean)
    : ctrl_(std::move(ctrl)), grids_(std::move(grids)),
      u_mean_(std::move(u_mean)), e_mean_(std::move(e_mean))
{
    std::size_t ni = ctrl_.k.numOutputs();
    std::size_t ndy = ctrl_.k.numInputs();
    if (grids_.size() != ni || u_mean_.size() != ni) {
        throw std::invalid_argument("SsvRuntime: input grid size mismatch");
    }
    if (e_mean_.size() > ndy) {
        throw std::invalid_argument("SsvRuntime: too many external means");
    }
    num_outputs_ = ndy - e_mean_.size();
    x_ = Vector::zeros(ctrl_.k.numStates());
    batch_key_ = batch_detail::stateSpaceKey(ctrl_.k);
}

Vector
SsvRuntime::invoke(const Vector& deviations, const Vector& external,
                   SsvInvokeInfo* info)
{
    beginInvoke(deviations, external);
    return finishInvoke(info);
}

void
SsvRuntime::beginInvoke(const Vector& deviations, const Vector& external)
{
    if (deviations.size() != num_outputs_ ||
        external.size() != e_mean_.size()) {
        throw std::invalid_argument("SsvRuntime::invoke: size mismatch");
    }
    YUKTA_CHECK_FINITE(deviations, "SsvRuntime::invoke: non-finite "
                       "deviation input");
    YUKTA_CHECK_FINITE(external, "SsvRuntime::invoke: non-finite "
                       "external input");
    // dy = [deviations (clamped); external - e_mean].
    Vector dy(num_outputs_ + e_mean_.size());
    for (std::size_t i = 0; i < num_outputs_; ++i) {
        double clamp = i < ctrl_.design_bounds.size()
                           ? kDeviationClamp * ctrl_.design_bounds[i]
                           : 0.0;
        dy[i] = clamp > 0.0
                    ? std::clamp(deviations[i], -clamp, clamp)
                    : deviations[i];
    }
    for (std::size_t i = 0; i < e_mean_.size(); ++i) {
        dy[num_outputs_ + i] = external[i] - e_mean_[i];
    }
    if (bumpless_armed_) {
        bumpless_armed_ = false;
        // Solve C x + D dy = u_prev - u_mean for the smallest x: the
        // output map C is wide (more states than tracked commands), so
        // the system is underdetermined and a tiny ridge picks the
        // minimum-norm solution. The incoming controller then repeats
        // the outgoing controller's command at this tick and deviates
        // only as its own dynamics take over.
        const linalg::Matrix& c = ctrl_.k.c;
        Vector target = ctrl_.k.d * dy;
        for (std::size_t i = 0; i < target.size(); ++i) {
            target[i] = bumpless_u_[i] - u_mean_[i] - target[i];
        }
        constexpr double kRidge = 1e-8;
        linalg::Matrix m(c.rows() + c.cols(), c.cols());
        m.setBlock(0, 0, c);
        Vector rhs = Vector::zeros(c.rows() + c.cols());
        for (std::size_t i = 0; i < c.rows(); ++i) {
            rhs[i] = target[i];
        }
        for (std::size_t i = 0; i < c.cols(); ++i) {
            m(c.rows() + i, i) = kRidge;
        }
        x_ = linalg::lstsq(m, rhs);
        YUKTA_CHECK_FINITE(x_, "SsvRuntime: bumpless-transfer state "
                           "solve produced non-finite x");
    }
    pending_dy_ = std::move(dy);
    pending_dev_ = deviations;
    has_pending_ = true;
    linear_done_ = false;
}

Vector
SsvRuntime::finishInvoke(SsvInvokeInfo* info)
{
    if (!has_pending_) {
        throw std::logic_error(
            "SsvRuntime::finishInvoke: no staged invocation");
    }
    has_pending_ = false;
    // Linear state machine (Eqs. 3-4), unless a BatchRuntime already
    // advanced it (bit-identically) in a batched pass.
    if (!linear_done_) {
        pending_u_ = control::stepOnce(ctrl_.k, x_, pending_dy_);
        linear_done_ = true;
    }
    const Vector& u = pending_u_;
    YUKTA_CHECK_FINITE(x_, "SsvRuntime: controller state poisoned after "
                       "x(T+1) = A x(T) + B dy(T)");
    YUKTA_CHECK_FINITE(u, "SsvRuntime: non-finite controller output");

    if (info != nullptr) {
        info->dy = pending_dy_;
        info->x = x_;
        info->u_raw = Vector(grids_.size());
        info->saturated.assign(grids_.size(), 0);
        info->quantized.assign(grids_.size(), 0);
    }

    // Saturation + quantization of the physical inputs.
    Vector out(grids_.size());
    for (std::size_t i = 0; i < grids_.size(); ++i) {
        const double raw = u[i] + u_mean_[i];
        out[i] = grids_[i].quantize(raw);
        if (info != nullptr) {
            info->u_raw[i] = raw;
            const bool sat = raw < grids_[i].min || raw > grids_[i].max;
            info->saturated[i] = sat ? 1 : 0;
            info->quantized[i] = !sat && out[i] != raw ? 1 : 0;
        }
        YUKTA_ENSURE(out[i] >= grids_[i].min && out[i] <= grids_[i].max,
                     "SsvRuntime: input ", i, " = ", out[i],
                     " escapes saturation range [", grids_[i].min, ", ",
                     grids_[i].max, "]");
    }

    // Guardband-exhaustion monitor: sustained deviations beyond the
    // guaranteed bounds mean the design's Delta was too small.
    bool over = false;
    for (std::size_t i = 0; i < num_outputs_ &&
                            i < ctrl_.guaranteed_bounds.size();
         ++i) {
        if (std::abs(pending_dev_[i]) > ctrl_.guaranteed_bounds[i]) {
            over = true;
            break;
        }
    }
    over_bound_count_ = over ? over_bound_count_ + 1 : 0;
    if (over_bound_count_ >= kExhaustionWindow) {
        exhausted_ = true;
    }
    return out;
}

void
SsvRuntime::reset()
{
    // Deliberately leaves an armed bumpless transfer in place: the
    // supervised swap path resets the primaries on re-entering
    // kNominal, right before the hand-over tick the arm exists for.
    x_ = Vector::zeros(ctrl_.k.numStates());
    over_bound_count_ = 0;
    exhausted_ = false;
}

void
SsvRuntime::armBumpless(Vector u_prev)
{
    if (u_prev.size() != grids_.size()) {
        throw std::invalid_argument(
            "SsvRuntime::armBumpless: size mismatch");
    }
    bumpless_u_ = std::move(u_prev);
    bumpless_armed_ = true;
}

}  // namespace yukta::controllers
