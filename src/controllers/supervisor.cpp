#include "controllers/supervisor.h"

#include <cmath>
#include <utility>

#include "core/contracts.h"
#include "obs/trace.h"

namespace yukta::controllers {

using platform::HardwareInputs;
using platform::PlacementPolicy;
using platform::SensorReadings;

std::string
supervisorModeName(SupervisorMode mode)
{
    switch (mode) {
      case SupervisorMode::kNominal:
        return "nominal";
      case SupervisorMode::kHold:
        return "hold";
      case SupervisorMode::kFallback:
        return "fallback";
      case SupervisorMode::kSafe:
        return "safe";
    }
    return "unknown";
}

Supervisor::Supervisor(const platform::BoardConfig& board_cfg,
                       const SupervisorConfig& cfg)
    : board_cfg_(board_cfg), cfg_(cfg), big_(board_cfg.big),
      little_(board_cfg.little),
      fallback_hw_(board_cfg, big_, little_), fallback_os_(board_cfg)
{
    reset();
}

void
Supervisor::reset()
{
    mode_ = SupervisorMode::kNominal;
    consecutive_bad_ = 0;
    consecutive_good_ = 0;
    have_good_ = false;
    last_good_ = SensorReadings{};  // yukta-lint: allow(sensor-construction)
    last_good_.temp = board_cfg_.thermal.ambient;
    stuck_streak_p_big_ = 0;
    stuck_streak_p_little_ = 0;
    stuck_streak_temp_ = 0;
    reset_grace_ = 0;
    have_prev_ = false;
    expect_big_activity_ = true;
    report_ = SupervisorReport{};
    fallback_hw_.reset();
    fallback_os_.reset();
}

void
Supervisor::coldBoot(int period, double time, const std::string& reason)
{
    reset();
    transition(period, time, SupervisorMode::kSafe, reason);
    // A rebooted board restarts its controllers from scratch; the
    // first post-boot ticks repeat the safe-state commands, which must
    // not read as stuck sensors.
    noteControllerReset();
}

void
Supervisor::noteControllerReset()
{
    reset_grace_ = cfg_.reset_grace_ticks;
    stuck_streak_p_big_ = 0;
    stuck_streak_p_little_ = 0;
    stuck_streak_temp_ = 0;
}

void
Supervisor::noteHotSwap(int period, double time, const std::string& reason)
{
    noteControllerReset();
    if (mode_ == SupervisorMode::kNominal) {
        transition(period, time, SupervisorMode::kHold, reason);
        consecutive_good_ = 0;
    }
}

namespace {

void
saveReadings(obs::StateWriter& w, const std::string& p,
             const SensorReadings& r)
{
    w.f64(p + ".p_big", r.p_big);
    w.f64(p + ".p_little", r.p_little);
    w.f64(p + ".temp", r.temp);
    w.f64(p + ".instr_big", r.instr_big);
    w.f64(p + ".instr_little", r.instr_little);
}

void
loadReadings(obs::StateReader& r, const std::string& p,
             SensorReadings* out)
{
    out->p_big = r.f64(p + ".p_big");
    out->p_little = r.f64(p + ".p_little");
    out->temp = r.f64(p + ".temp");
    out->instr_big = r.f64(p + ".instr_big");
    out->instr_little = r.f64(p + ".instr_little");
}

}  // namespace

void
Supervisor::save(obs::StateWriter& w) const
{
    w.u64("sup.mode", static_cast<std::uint64_t>(mode_));
    w.i64("sup.consecutive_bad", consecutive_bad_);
    w.i64("sup.consecutive_good", consecutive_good_);
    w.boolean("sup.have_good", have_good_);
    saveReadings(w, "sup.last_good", last_good_);
    saveReadings(w, "sup.prev_obs", prev_obs_);
    w.boolean("sup.have_prev", have_prev_);
    w.boolean("sup.expect_big_activity", expect_big_activity_);
    w.i64("sup.stuck_p_big", stuck_streak_p_big_);
    w.i64("sup.stuck_p_little", stuck_streak_p_little_);
    w.i64("sup.stuck_temp", stuck_streak_temp_);
    w.i64("sup.reset_grace", reset_grace_);

    w.u64("sup.events", report_.events.size());
    for (std::size_t i = 0; i < report_.events.size(); ++i) {
        const SupervisorEvent& e = report_.events[i];
        const std::string p = "sup.e" + std::to_string(i);
        w.i64(p + ".period", e.period);
        w.f64(p + ".time", e.time);
        w.u64(p + ".from", static_cast<std::uint64_t>(e.from));
        w.u64(p + ".to", static_cast<std::uint64_t>(e.to));
        w.str(p + ".reason", e.reason);
    }
    w.i64("sup.transition_count", report_.transition_count);
    w.i64("sup.invalid_ticks", report_.invalid_ticks);
    w.i64("sup.repaired_fields", report_.repaired_fields);
    w.i64("sup.repaired_commands", report_.repaired_commands);
    w.i64("sup.skipped_ticks", report_.skipped_ticks);
    w.f64("sup.time_nominal", report_.time_nominal);
    w.f64("sup.time_hold", report_.time_hold);
    w.f64("sup.time_fallback", report_.time_fallback);
    w.f64("sup.time_safe", report_.time_safe);

    fallback_hw_.save(w);
}

void
Supervisor::load(obs::StateReader& r)
{
    mode_ = static_cast<SupervisorMode>(r.u64("sup.mode"));
    consecutive_bad_ = static_cast<int>(r.i64("sup.consecutive_bad"));
    consecutive_good_ = static_cast<int>(r.i64("sup.consecutive_good"));
    have_good_ = r.boolean("sup.have_good");
    loadReadings(r, "sup.last_good", &last_good_);
    loadReadings(r, "sup.prev_obs", &prev_obs_);
    have_prev_ = r.boolean("sup.have_prev");
    expect_big_activity_ = r.boolean("sup.expect_big_activity");
    stuck_streak_p_big_ = static_cast<int>(r.i64("sup.stuck_p_big"));
    stuck_streak_p_little_ =
        static_cast<int>(r.i64("sup.stuck_p_little"));
    stuck_streak_temp_ = static_cast<int>(r.i64("sup.stuck_temp"));
    reset_grace_ = static_cast<int>(r.i64("sup.reset_grace"));

    report_.events.resize(r.u64("sup.events"));
    for (std::size_t i = 0; i < report_.events.size(); ++i) {
        SupervisorEvent& e = report_.events[i];
        const std::string p = "sup.e" + std::to_string(i);
        e.period = static_cast<int>(r.i64(p + ".period"));
        e.time = r.f64(p + ".time");
        e.from = static_cast<SupervisorMode>(r.u64(p + ".from"));
        e.to = static_cast<SupervisorMode>(r.u64(p + ".to"));
        e.reason = r.str(p + ".reason");
    }
    report_.transition_count = r.i64("sup.transition_count");
    report_.invalid_ticks = r.i64("sup.invalid_ticks");
    report_.repaired_fields = r.i64("sup.repaired_fields");
    report_.repaired_commands = r.i64("sup.repaired_commands");
    report_.skipped_ticks = r.i64("sup.skipped_ticks");
    report_.time_nominal = r.f64("sup.time_nominal");
    report_.time_hold = r.f64("sup.time_hold");
    report_.time_fallback = r.f64("sup.time_fallback");
    report_.time_safe = r.f64("sup.time_safe");

    fallback_hw_.load(r);
}

namespace {

/** Appends "field:why" to the (comma-joined) reason list. */
void
note(std::string& reasons, const char* field, const char* why)
{
    if (!reasons.empty()) {
        reasons += ",";
    }
    reasons += field;
    reasons += ":";
    reasons += why;
}

}  // namespace

std::string
Supervisor::validate(int period, const SensorReadings& obs,
                     SensorReadings* repaired)
{
    std::string reasons;
    *repaired = obs;
    const bool warm = period >= cfg_.warmup_periods;
    const double ambient = board_cfg_.thermal.ambient;

    // Exact-repeat streaks: the analog sensors are noisy (new power
    // window every 260 ms, new temperature sample every 100 ms), so a
    // bit-identical value across several ticks means the sensor is
    // stuck, even though each individual reading looks plausible.
    // Inside the post-reset grace window repeats are legitimate (held
    // or zeroed commands freeze the plant), so they are not evidence
    // of a stuck sensor and the streaks stay cleared.
    if (have_prev_ && reset_grace_ == 0) {
        stuck_streak_p_big_ = obs.p_big == prev_obs_.p_big
                                  ? stuck_streak_p_big_ + 1
                                  : 0;
        stuck_streak_p_little_ = obs.p_little == prev_obs_.p_little
                                     ? stuck_streak_p_little_ + 1
                                     : 0;
        stuck_streak_temp_ =
            obs.temp == prev_obs_.temp ? stuck_streak_temp_ + 1 : 0;
    } else if (reset_grace_ > 0) {
        stuck_streak_p_big_ = 0;
        stuck_streak_p_little_ = 0;
        stuck_streak_temp_ = 0;
    }
    prev_obs_ = obs;
    have_prev_ = true;

    auto repair = [&](double& field, double good) {
        field = good;
        ++report_.repaired_fields;
    };

    // --- Big-cluster power. ---
    if (!contracts::yuktaAllFinite(obs.p_big)) {
        note(reasons, "p_big", "non-finite");
        repair(repaired->p_big, last_good_.p_big);
    } else if (obs.p_big > cfg_.max_power_big) {
        note(reasons, "p_big", "implausible-high");
        repair(repaired->p_big, last_good_.p_big);
    } else if (warm && obs.p_big < cfg_.min_power_big) {
        note(reasons, "p_big", "implausible-low");
        repair(repaired->p_big, last_good_.p_big);
    } else if (warm && stuck_streak_p_big_ >= cfg_.stuck_ticks) {
        note(reasons, "p_big", "stuck");
        repair(repaired->p_big, last_good_.p_big);
    }

    // --- Little-cluster power. ---
    if (!contracts::yuktaAllFinite(obs.p_little)) {
        note(reasons, "p_little", "non-finite");
        repair(repaired->p_little, last_good_.p_little);
    } else if (obs.p_little > cfg_.max_power_little) {
        note(reasons, "p_little", "implausible-high");
        repair(repaired->p_little, last_good_.p_little);
    } else if (warm && obs.p_little < cfg_.min_power_little) {
        note(reasons, "p_little", "implausible-low");
        repair(repaired->p_little, last_good_.p_little);
    } else if (warm && stuck_streak_p_little_ >= cfg_.stuck_ticks) {
        note(reasons, "p_little", "stuck");
        repair(repaired->p_little, last_good_.p_little);
    }

    // --- Temperature. ---
    if (!contracts::yuktaAllFinite(obs.temp)) {
        note(reasons, "temp", "non-finite");
        repair(repaired->temp, last_good_.temp);
    } else if (obs.temp > cfg_.max_temp) {
        note(reasons, "temp", "implausible-high");
        repair(repaired->temp, last_good_.temp);
    } else if (obs.temp < ambient - cfg_.temp_floor_margin) {
        note(reasons, "temp", "below-ambient");
        repair(repaired->temp, last_good_.temp);
    } else if (warm && stuck_streak_temp_ >= cfg_.stuck_ticks) {
        note(reasons, "temp", "stuck");
        repair(repaired->temp, last_good_.temp);
    }

    // --- Instruction counters: finite, monotone, advancing. ---
    if (!contracts::yuktaAllFinite(obs.instr_big)) {
        note(reasons, "instr_big", "non-finite");
        repair(repaired->instr_big, last_good_.instr_big);
    } else if (have_good_ && obs.instr_big < last_good_.instr_big) {
        note(reasons, "instr_big", "counter-reset");
        repair(repaired->instr_big, last_good_.instr_big);
    } else if (warm && have_good_ && expect_big_activity_ &&
               reset_grace_ == 0 &&
               obs.instr_big <= last_good_.instr_big) {
        note(reasons, "instr_big", "stale");
        repair(repaired->instr_big, last_good_.instr_big);
    }
    if (!contracts::yuktaAllFinite(obs.instr_little)) {
        note(reasons, "instr_little", "non-finite");
        repair(repaired->instr_little, last_good_.instr_little);
    } else if (have_good_ && obs.instr_little < last_good_.instr_little) {
        note(reasons, "instr_little", "counter-reset");
        repair(repaired->instr_little, last_good_.instr_little);
    }

    return reasons;
}

void
Supervisor::transition(int period, double time, SupervisorMode to,
                       const std::string& reason)
{
    SupervisorEvent e;
    e.period = period;
    e.time = time;
    e.from = mode_;
    e.to = to;
    e.reason = reason;
    if (trace_ != nullptr) {
        obs::TraceEvent ev = trace_->makeEvent("supervisor", "transition");
        ev.str("from", supervisorModeName(e.from))
            .str("to", supervisorModeName(e.to))
            .integer("period", e.period)
            .integer("bad_streak", consecutive_bad_)
            .integer("good_streak", consecutive_good_)
            .str("reason", e.reason);
        trace_->record(std::move(ev));
    }
    report_.events.push_back(std::move(e));
    ++report_.transition_count;
    mode_ = to;
}

SupervisorDecision
Supervisor::assess(int period, double time, const SensorReadings& obs)
{
    SupervisorDecision decision;
    const std::string reasons = validate(period, obs, &decision.readings);
    const bool bad = !reasons.empty();

    if (bad) {
        ++consecutive_bad_;
        consecutive_good_ = 0;
        ++report_.invalid_ticks;
        if (trace_ != nullptr) {
            obs::TraceEvent ev = trace_->makeEvent("supervisor", "invalid");
            ev.str("mode", supervisorModeName(mode_))
                .integer("bad_streak", consecutive_bad_)
                .str("reasons", reasons);
            trace_->record(std::move(ev));
        }
    } else {
        ++consecutive_good_;
        consecutive_bad_ = 0;
        last_good_ = obs;
        have_good_ = true;
    }

    if (bad) {
        switch (mode_) {
          case SupervisorMode::kNominal:
            transition(period, time, SupervisorMode::kHold, reasons);
            break;
          case SupervisorMode::kHold:
            if (consecutive_bad_ > cfg_.hold_limit) {
                transition(period, time, SupervisorMode::kFallback,
                           reasons);
                fallback_hw_.reset();
            }
            break;
          case SupervisorMode::kFallback:
            if (consecutive_bad_ > cfg_.fallback_limit) {
                transition(period, time, SupervisorMode::kSafe, reasons);
            }
            break;
          case SupervisorMode::kSafe:
            break;
        }
    } else if (mode_ != SupervisorMode::kNominal &&
               consecutive_good_ >= cfg_.recovery_ticks) {
        // Hysteretic recovery: one rung per full window of healthy
        // ticks; the counter restarts so each rung is re-earned.
        SupervisorMode up = SupervisorMode::kNominal;
        if (mode_ == SupervisorMode::kSafe) {
            up = SupervisorMode::kFallback;
            fallback_hw_.reset();
        } else if (mode_ == SupervisorMode::kFallback) {
            up = SupervisorMode::kHold;
        }
        transition(period, time, up,
                   "telemetry healthy for " +
                       std::to_string(cfg_.recovery_ticks) + " ticks");
        consecutive_good_ = 0;
        if (up == SupervisorMode::kNominal) {
            decision.reset_primaries = true;
        }
    }

    switch (mode_) {
      case SupervisorMode::kNominal:
        report_.time_nominal += kControlPeriod;
        break;
      case SupervisorMode::kHold:
        report_.time_hold += kControlPeriod;
        break;
      case SupervisorMode::kFallback:
        report_.time_fallback += kControlPeriod;
        break;
      case SupervisorMode::kSafe:
        report_.time_safe += kControlPeriod;
        break;
    }

    if (reset_grace_ > 0) {
        --reset_grace_;
    }

    decision.mode = mode_;
    YUKTA_CHECK_FINITE(decision.readings,
                       "supervisor must hand controllers finite telemetry");
    return decision;
}

HardwareInputs
Supervisor::fallbackHardware(const HwSignals& s)
{
    return fallback_hw_.invoke(s);
}

PlacementPolicy
Supervisor::fallbackPolicy(const OsSignals& s)
{
    return fallback_os_.invoke(s);
}

HardwareInputs
Supervisor::safeHardware() const
{
    HardwareInputs safe;
    safe.big_cores = 1;
    safe.little_cores = board_cfg_.little.num_cores;
    safe.freq_big = big_.minFreq();
    safe.freq_little = little_.minFreq();
    return safe;
}

PlacementPolicy
Supervisor::safePolicy() const
{
    PlacementPolicy safe;
    safe.threads_big = 0.0;
    safe.tpc_big = 1.0;
    safe.tpc_little =
        static_cast<double>(board_cfg_.little.num_cores);
    return safe;
}

HardwareInputs
Supervisor::guardHardware(const HardwareInputs& cmd)
{
    HardwareInputs out = cmd;
    const HardwareInputs safe = safeHardware();
    if (!std::isfinite(out.freq_big)) {
        out.freq_big = safe.freq_big;
        ++report_.repaired_commands;
    }
    if (!std::isfinite(out.freq_little)) {
        out.freq_little = safe.freq_little;
        ++report_.repaired_commands;
    }
    return out;
}

PlacementPolicy
Supervisor::guardPolicy(const PlacementPolicy& cmd)
{
    PlacementPolicy out = cmd;
    const PlacementPolicy safe = safePolicy();
    if (!std::isfinite(out.threads_big)) {
        out.threads_big = safe.threads_big;
        ++report_.repaired_commands;
    }
    if (!std::isfinite(out.tpc_big)) {
        out.tpc_big = safe.tpc_big;
        ++report_.repaired_commands;
    }
    if (!std::isfinite(out.tpc_little)) {
        out.tpc_little = safe.tpc_little;
        ++report_.repaired_commands;
    }
    return out;
}

void
Supervisor::notePlacement(const PlacementPolicy& commanded)
{
    expect_big_activity_ = commanded.threads_big >= 0.5;
}

void
Supervisor::noteSkippedTick()
{
    ++report_.skipped_ticks;
}

}  // namespace yukta::controllers
