#ifndef YUKTA_CONTROLLERS_LQG_RUNTIME_H_
#define YUKTA_CONTROLLERS_LQG_RUNTIME_H_

/**
 * @file
 * Runtime wrapper for LQG controllers (the Sec. VI-B baseline from
 * Pothukuchi et al., ISCA 2016). Deliberately faithful to that
 * design's limitations:
 *
 *  - no external-signal channel (so no cross-layer coordination),
 *  - no knowledge of input saturation or quantization: the raw
 *    command is emitted, the actuators clamp it, and the controller's
 *    internal observer never learns (windup / "wasted actuation"),
 *  - no native uncertainty guardband.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "control/state_space.h"
#include "controllers/ssv_runtime.h"
#include "linalg/vector.h"

namespace yukta::controllers {

/**
 * Optional per-invocation introspection record (tracing only): the
 * updated observer state, the raw command before actuator clamping,
 * and per-input saturation flags. See obs/trace.h.
 */
struct LqgInvokeInfo
{
    linalg::Vector x;      ///< State after the observer update.
    linalg::Vector u_raw;  ///< Physical command before clamping.
    std::vector<int> saturated;  ///< 1 = command left the grid range.
};

/** Runtime LQG tracking controller. */
class LqgRuntime
{
  public:
    /**
     * @param k LQG controller (maps centered output deviations
     *   (y - r) to centered inputs), discrete.
     * @param grids physical actuator ranges (used only for clamping
     *   and for counting wasted actuation -- the controller itself is
     *   oblivious to them).
     * @param u_mean operating-point offset.
     */
    LqgRuntime(control::StateSpace k, std::vector<InputGrid> grids,
               linalg::Vector u_mean);

    /** Shape accessors: tracked outputs and physical inputs. */
    std::size_t numOutputsTracked() const { return k_.numInputs(); }
    std::size_t numInputs() const { return grids_.size(); }

    /**
     * One invocation.
     * @param deviations targets - outputs, size = controller inputs.
     * @param info when non-null, receives the introspection record
     *   (tracing only; no behavioral effect).
     * @return physically applied inputs (clamped by the actuators).
     */
    linalg::Vector invoke(const linalg::Vector& deviations,
                          LqgInvokeInfo* info = nullptr);

    /**
     * First half of invoke(): validates and stages the (negated)
     * deviation input without advancing the observer. Pair with
     * finishInvoke(); a BatchRuntime may run the linear pass for many
     * staged runtimes in one cache-blocked sweep in between.
     */
    void beginInvoke(const linalg::Vector& deviations);

    /**
     * Second half of invoke(): advances the observer over the staged
     * input (unless a BatchRuntime already did) and applies actuator
     * clamping and the wasted-move monitor. Bit-identical to the
     * monolithic invoke() either way.
     * @throws std::logic_error without a prior beginInvoke().
     */
    linalg::Vector finishInvoke(LqgInvokeInfo* info = nullptr);

    /**
     * Fingerprint of the controller matrices: runtimes with equal
     * keys may tick through one batched matrix-matrix pass.
     */
    std::uint64_t batchKey() const { return batch_key_; }

    /** Resets the controller state and the move counters. */
    void reset();

    /** Invocations whose raw command exceeded an actuator range. */
    int wastedMoves() const { return wasted_moves_; }

    /** Total invocations. */
    int totalMoves() const { return total_moves_; }

    /** Appends the mutable runtime state to @p w. */
    void save(obs::StateWriter& w) const
    {
        w.f64vec("lqg.x", x_.raw());
        w.i64("lqg.wasted_moves", wasted_moves_);
        w.i64("lqg.total_moves", total_moves_);
    }

    /** Restores state written by save. */
    void load(obs::StateReader& r)
    {
        x_ = linalg::Vector(r.f64vec("lqg.x"));
        wasted_moves_ = static_cast<int>(r.i64("lqg.wasted_moves"));
        total_moves_ = static_cast<int>(r.i64("lqg.total_moves"));
    }

  private:
    friend class BatchRuntime;

    control::StateSpace k_;
    std::vector<InputGrid> grids_;
    linalg::Vector u_mean_;
    linalg::Vector x_;
    int wasted_moves_ = 0;
    int total_moves_ = 0;
    std::uint64_t batch_key_ = 0;

    // Staged invocation (beginInvoke -> [batch] -> finishInvoke).
    linalg::Vector pending_dy_;  ///< Negated deviations.
    linalg::Vector pending_u_;   ///< Linear output once ticked.
    bool has_pending_ = false;
    bool linear_done_ = false;
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_LQG_RUNTIME_H_
