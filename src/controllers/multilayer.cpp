#include "controllers/multilayer.h"

#include <cmath>

namespace yukta::controllers {

using platform::ClusterId;
using platform::HardwareInputs;
using platform::PlacementPolicy;

MultilayerSystem::MultilayerSystem(platform::Board board,
                                   std::unique_ptr<HwController> hw,
                                   std::unique_ptr<OsController> os)
    : board_(std::move(board)), hw_(std::move(hw)), os_(std::move(os))
{
    last_hw_ = board_.requestedHardware();
    last_policy_ = board_.placementPolicy();
}

MultilayerSystem::MultilayerSystem(platform::Board board,
                                   std::unique_ptr<JointController> joint)
    : board_(std::move(board)), joint_(std::move(joint))
{
    last_hw_ = board_.requestedHardware();
    last_policy_ = board_.placementPolicy();
}

void
MultilayerSystem::enableTrace(double interval)
{
    board_.enableTrace(interval);
}

HwSignals
MultilayerSystem::gatherHw() const
{
    HwSignals s;
    double instr = board_.perfCounters().total();
    s.perf_bips = (instr - last_instr_total_) / kControlPeriod;
    s.p_big = board_.sensedPowerBig();
    s.p_little = board_.sensedPowerLittle();
    s.temp = board_.sensedTemperature();
    // External signals: the OS layer's current inputs.
    s.threads_big = last_policy_.threads_big;
    s.tpc_big = last_policy_.tpc_big;
    s.tpc_little = last_policy_.tpc_little;
    return s;
}

OsSignals
MultilayerSystem::gatherOs() const
{
    OsSignals s;
    s.perf_big = (board_.perfCounters().instr_big - last_instr_big_) /
                 kControlPeriod;
    s.perf_little =
        (board_.perfCounters().instr_little - last_instr_little_) /
        kControlPeriod;
    s.d_spare = board_.spareCompute(ClusterId::kBig) -
                board_.spareCompute(ClusterId::kLittle);
    s.num_threads = board_.threadsRunning();
    s.total_power = board_.sensedPowerBig() + board_.sensedPowerLittle();
    // External signals: the HW layer's current inputs.
    const HardwareInputs& hw = board_.requestedHardware();
    s.big_cores = static_cast<double>(hw.big_cores);
    s.little_cores = static_cast<double>(hw.little_cores);
    s.freq_big = hw.freq_big;
    s.freq_little = hw.freq_little;
    return s;
}

void
MultilayerSystem::applyIfChanged(const HardwareInputs& hw,
                                 const PlacementPolicy& policy)
{
    auto hwDiffers = [&]() {
        return hw.big_cores != last_hw_.big_cores ||
               hw.little_cores != last_hw_.little_cores ||
               std::abs(hw.freq_big - last_hw_.freq_big) > 1e-9 ||
               std::abs(hw.freq_little - last_hw_.freq_little) > 1e-9;
    };
    auto policyDiffers = [&]() {
        return std::abs(policy.threads_big - last_policy_.threads_big) >
                   0.5 ||
               std::abs(policy.tpc_big - last_policy_.tpc_big) > 0.25 ||
               std::abs(policy.tpc_little - last_policy_.tpc_little) > 0.25;
    };
    if (hwDiffers()) {
        board_.applyHardwareInputs(hw);
        last_hw_ = hw;
    }
    if (policyDiffers()) {
        board_.applyPlacementPolicy(policy);
        last_policy_ = policy;
    }
}

RunMetrics
MultilayerSystem::run(double max_seconds)
{
    RunMetrics metrics;
    double t = 0.0;
    while (!board_.done() && t < max_seconds) {
        HwSignals hw_sig = gatherHw();
        OsSignals os_sig = gatherOs();

        HardwareInputs hw_in = last_hw_;
        PlacementPolicy policy = last_policy_;
        if (joint_) {
            auto [h, p] = joint_->invoke(hw_sig, os_sig);
            hw_in = h;
            policy = p;
        } else {
            if (hw_) {
                hw_in = hw_->invoke(hw_sig);
            }
            if (os_) {
                policy = os_->invoke(os_sig);
            }
        }
        applyIfChanged(hw_in, policy);

        last_instr_total_ = board_.perfCounters().total();
        last_instr_big_ = board_.perfCounters().instr_big;
        last_instr_little_ = board_.perfCounters().instr_little;

        board_.run(kControlPeriod);
        t += kControlPeriod;
        ++metrics.periods;
    }

    metrics.exec_time = board_.elapsed();
    metrics.energy = board_.energy();
    metrics.exd = board_.energyDelay();
    metrics.completed = board_.done();
    metrics.emergency_time = board_.emergencyTime();
    metrics.trace = board_.trace();
    return metrics;
}

}  // namespace yukta::controllers
