#include "controllers/multilayer.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/profile.h"
#include "obs/trace.h"

namespace yukta::controllers {

using platform::ClusterId;
using platform::HardwareInputs;
using platform::PlacementPolicy;
using platform::SensorReadings;

MultilayerSystem::MultilayerSystem(platform::Board board,
                                   std::unique_ptr<HwController> hw,
                                   std::unique_ptr<OsController> os)
    : board_(std::move(board)), hw_(std::move(hw)), os_(std::move(os))
{
    last_hw_ = board_.requestedHardware();
    last_policy_ = board_.placementPolicy();
}

MultilayerSystem::MultilayerSystem(platform::Board board,
                                   std::unique_ptr<JointController> joint)
    : board_(std::move(board)), joint_(std::move(joint))
{
    last_hw_ = board_.requestedHardware();
    last_policy_ = board_.placementPolicy();
}

void
MultilayerSystem::enableTrace(double interval)
{
    board_.enableTrace(interval);
}

void
MultilayerSystem::attachFaultInjector(const fault::FaultPlan& plan)
{
    injector_ = std::make_unique<fault::FaultInjector>(plan);
    injector_->attachTrace(sink_);
}

void
MultilayerSystem::enableSupervisor(const SupervisorConfig& cfg)
{
    supervisor_ = std::make_unique<Supervisor>(board_.config(), cfg);
    supervisor_->attachTrace(sink_);
}

void
MultilayerSystem::attachTraceSink(obs::TraceSink* sink)
{
    sink_ = sink;
    if (hw_) {
        hw_->attachTrace(sink);
    }
    if (os_) {
        os_->attachTrace(sink);
    }
    if (joint_) {
        joint_->attachTrace(sink);
    }
    if (supervisor_) {
        supervisor_->attachTrace(sink);
    }
    if (injector_) {
        injector_->attachTrace(sink);
    }
    board_.attachTraceSink(sink);
}

HwSignals
MultilayerSystem::gatherHw(const SensorReadings& obs) const
{
    HwSignals s;
    double instr = obs.instr_big + obs.instr_little;
    s.perf_bips = (instr - last_instr_total_) / kControlPeriod;
    s.p_big = obs.p_big;
    s.p_little = obs.p_little;
    s.temp = obs.temp;
    // External signals: the OS layer's current inputs.
    s.threads_big = last_policy_.threads_big;
    s.tpc_big = last_policy_.tpc_big;
    s.tpc_little = last_policy_.tpc_little;
    return s;
}

OsSignals
MultilayerSystem::gatherOs(const SensorReadings& obs) const
{
    OsSignals s;
    s.perf_big = (obs.instr_big - last_instr_big_) / kControlPeriod;
    s.perf_little = (obs.instr_little - last_instr_little_) / kControlPeriod;
    s.d_spare = board_.spareCompute(ClusterId::kBig) -
                board_.spareCompute(ClusterId::kLittle);
    s.num_threads = board_.threadsRunning();
    s.total_power = obs.p_big + obs.p_little;
    // External signals: the HW layer's current inputs.
    const HardwareInputs& hw = board_.requestedHardware();
    s.big_cores = static_cast<double>(hw.big_cores);
    s.little_cores = static_cast<double>(hw.little_cores);
    s.freq_big = hw.freq_big;
    s.freq_little = hw.freq_little;
    return s;
}

void
MultilayerSystem::applyIfChanged(const HardwareInputs& hw,
                                 const PlacementPolicy& policy)
{
    auto hwDiffers = [&]() {
        return hw.big_cores != last_hw_.big_cores ||
               hw.little_cores != last_hw_.little_cores ||
               std::abs(hw.freq_big - last_hw_.freq_big) > 1e-9 ||
               std::abs(hw.freq_little - last_hw_.freq_little) > 1e-9;
    };
    auto policyDiffers = [&]() {
        return std::abs(policy.threads_big - last_policy_.threads_big) >
                   0.5 ||
               std::abs(policy.tpc_big - last_policy_.tpc_big) > 0.25 ||
               std::abs(policy.tpc_little - last_policy_.tpc_little) > 0.25;
    };
    // NaN-valued commands compare false against the thresholds above
    // and are therefore dropped here; the unsupervised stack survives
    // them, it just keeps flying on its previous settings.
    if (hwDiffers()) {
        board_.applyHardwareInputs(hw);
        last_hw_ = hw;
    }
    if (policyDiffers()) {
        board_.applyPlacementPolicy(policy);
        last_policy_ = policy;
    }
}

bool
MultilayerSystem::holdHwTargets(const linalg::Vector& targets)
{
    return hw_ != nullptr && hw_->holdTargets(targets);
}

bool
MultilayerSystem::hotSwapHwRuntime(SsvRuntime runtime)
{
    auto* ssv = dynamic_cast<SsvHwController*>(hw_.get());
    if (ssv == nullptr) {
        return false;
    }
    linalg::Vector u_prev{static_cast<double>(last_hw_.big_cores),
                          static_cast<double>(last_hw_.little_cores),
                          last_hw_.freq_big, last_hw_.freq_little};
    ssv->swapRuntime(std::move(runtime), u_prev);
    if (supervisor_ != nullptr) {
        supervisor_->noteHotSwap(periods_, t_, "hw controller hot-swap");
    }
    if (sink_ != nullptr) {
        obs::TraceEvent ev = sink_->makeEvent("adapt", "swap");
        ev.integer("period", periods_).vec("u_prev", u_prev.raw());
        sink_->record(std::move(ev));
    }
    return true;
}

bool
MultilayerSystem::installHwRuntime(SsvRuntime runtime)
{
    auto* ssv = dynamic_cast<SsvHwController*>(hw_.get());
    if (ssv == nullptr) {
        return false;
    }
    ssv->installRuntime(std::move(runtime));
    return true;
}

void
MultilayerSystem::stepPeriodBegin(BatchRuntime* batch)
{
    YUKTA_PROFILE_SCOPE("multilayer_tick");
    const double t = t_;
    const int period = periods_;
    pending_ = PendingTick{};
    pending_.in_progress = true;
    // Trace events interleave differently when the layer invocations
    // split (optimizer events land before both layer events instead
    // of between them), so batching is only taken without a sink.
    const bool may_defer = batch != nullptr && sink_ == nullptr;
    if (sink_ != nullptr) {
        sink_->beginTick(period, t);
    }
    if (injector_ && injector_->dropTick(t, period)) {
        // Timing fault: the controllers never run this tick; the
        // plant keeps evolving under the previous commands.
        if (supervisor_) {
            supervisor_->noteSkippedTick();
        }
        pending_.dropped = true;
        return;
    }
    SensorReadings obs = board_.readings();
    if (injector_) {
        obs = injector_->corruptReadings(t, obs);
    }

    SupervisorMode mode = SupervisorMode::kNominal;
    if (supervisor_) {
        SupervisorDecision d = supervisor_->assess(period, t, obs);
        obs = d.readings;
        mode = d.mode;
        if (d.reset_primaries) {
            if (hw_) {
                hw_->reset();
            }
            if (os_) {
                os_->reset();
            }
            if (joint_) {
                joint_->reset();
            }
        }
    }

    HwSignals hw_sig = gatherHw(obs);
    OsSignals os_sig = gatherOs(obs);

    HardwareInputs hw_in = last_hw_;
    PlacementPolicy policy = last_policy_;
    switch (mode) {
      case SupervisorMode::kNominal:
        if (joint_) {
            auto [h, p] = joint_->invoke(hw_sig, os_sig);
            hw_in = h;
            policy = p;
        } else {
            // Both layers observe start-of-period state only, so
            // deferring their linear passes to the shared batch
            // cannot change what either one sees.
            if (hw_) {
                if (may_defer && hw_->beginInvoke(hw_sig, *batch)) {
                    pending_.hw_deferred = true;
                } else {
                    hw_in = hw_->invoke(hw_sig);
                }
            }
            if (os_) {
                if (may_defer && os_->beginInvoke(os_sig, *batch)) {
                    pending_.os_deferred = true;
                } else {
                    policy = os_->invoke(os_sig);
                }
            }
        }
        break;
      case SupervisorMode::kHold:
        break;  // Last commands stay in force.
      case SupervisorMode::kFallback:
        hw_in = supervisor_->fallbackHardware(hw_sig);
        policy = supervisor_->fallbackPolicy(os_sig);
        break;
      case SupervisorMode::kSafe:
        hw_in = supervisor_->safeHardware();
        policy = supervisor_->safePolicy();
        break;
    }

    pending_.mode = mode;
    pending_.hw_in = hw_in;
    pending_.policy = policy;
    pending_.instr_big = obs.instr_big;
    pending_.instr_little = obs.instr_little;
}

void
MultilayerSystem::stepPeriodFinish()
{
    YUKTA_PROFILE_SCOPE("multilayer_tick");
    if (!pending_.in_progress) {
        throw std::logic_error(
            "MultilayerSystem::stepPeriodFinish: no pending period");
    }
    pending_.in_progress = false;
    const double t = t_;
    if (!pending_.dropped) {
        HardwareInputs hw_in = pending_.hw_in;
        PlacementPolicy policy = pending_.policy;
        if (pending_.hw_deferred) {
            hw_in = hw_->finishInvoke();
        }
        if (pending_.os_deferred) {
            policy = os_->finishInvoke();
        }
        const SupervisorMode mode = pending_.mode;

        if (supervisor_) {
            hw_in = supervisor_->guardHardware(hw_in);
            policy = supervisor_->guardPolicy(policy);
            // The supervisor judges counter staleness against the
            // placement it commanded, not what a (possibly
            // faulty) actuator did with it.
            supervisor_->notePlacement(policy);
        }
        if (injector_) {
            hw_in = injector_->corruptHardware(t, last_hw_, hw_in);
            policy = injector_->corruptPolicy(t, last_policy_, policy);
        }
        applyIfChanged(hw_in, policy);
        if (sink_ != nullptr) {
            obs::TraceEvent ev = sink_->makeEvent("sys", "cmd");
            ev.str("mode", supervisor_ != nullptr
                               ? supervisorModeName(mode)
                               : std::string("nominal"))
                .integer("big_cores",
                         static_cast<long long>(hw_in.big_cores))
                .integer("little_cores",
                         static_cast<long long>(hw_in.little_cores))
                .num("freq_big", hw_in.freq_big)
                .num("freq_little", hw_in.freq_little)
                .num("threads_big", policy.threads_big)
                .num("tpc_big", policy.tpc_big)
                .num("tpc_little", policy.tpc_little);
            sink_->record(std::move(ev));
        }

        // Marks advance in observation space, so corrupted (or
        // repaired) counters stay consistent with the BIPS deltas
        // the controllers were shown.
        last_instr_big_ = pending_.instr_big;
        last_instr_little_ = pending_.instr_little;
        last_instr_total_ = pending_.instr_big + pending_.instr_little;
    }

    board_.run(kControlPeriod);
    if (sink_ != nullptr) {
        obs::TraceEvent ev = sink_->makeEvent("sys", "plant");
        ev.num("p_big", board_.truePowerBig())
            .num("p_little", board_.truePowerLittle())
            .num("temp", board_.trueTemperature())
            .num("energy", board_.energy())
            .integer("emergency", board_.emergencyActive() ? 1 : 0);
        sink_->record(std::move(ev));
    }
    t_ += kControlPeriod;
    ++periods_;
}

void
MultilayerSystem::stepPeriod()
{
    stepPeriodBegin(nullptr);
    stepPeriodFinish();
}

RunMetrics
MultilayerSystem::run(double max_seconds)
{
    t_ = 0.0;
    periods_ = 0;
    while (!board_.done() && t_ < max_seconds) {
        stepPeriod();
    }
    return metrics();
}

RunMetrics
MultilayerSystem::metrics() const
{
    RunMetrics metrics;
    metrics.periods = periods_;
    metrics.exec_time = board_.elapsed();
    metrics.energy = board_.energy();
    metrics.exd = board_.energyDelay();
    metrics.completed = board_.done();
    metrics.emergency_time = board_.emergencyTime();
    metrics.violation_time = board_.constraintViolationTime();
    metrics.supervised = supervisor_ != nullptr;
    if (supervisor_) {
        metrics.supervisor = supervisor_->report();
    }
    if (injector_) {
        metrics.faults = injector_->stats();
    }
    metrics.trace = board_.trace();
    return metrics;
}

void
MultilayerSystem::save(obs::StateWriter& w) const
{
    board_.save(w);
    w.boolean("ml.has_joint", joint_ != nullptr);
    if (joint_ != nullptr) {
        joint_->save(w);
    } else {
        hw_->save(w);
        os_->save(w);
    }
    w.boolean("ml.has_injector", injector_ != nullptr);
    if (injector_ != nullptr) {
        injector_->save(w);
    }
    w.boolean("ml.has_supervisor", supervisor_ != nullptr);
    if (supervisor_ != nullptr) {
        supervisor_->save(w);
    }

    w.u64("ml.last_hw.big_cores", last_hw_.big_cores);
    w.u64("ml.last_hw.little_cores", last_hw_.little_cores);
    w.f64("ml.last_hw.freq_big", last_hw_.freq_big);
    w.f64("ml.last_hw.freq_little", last_hw_.freq_little);
    w.f64("ml.last_policy.threads_big", last_policy_.threads_big);
    w.f64("ml.last_policy.tpc_big", last_policy_.tpc_big);
    w.f64("ml.last_policy.tpc_little", last_policy_.tpc_little);
    w.f64("ml.last_instr_total", last_instr_total_);
    w.f64("ml.last_instr_big", last_instr_big_);
    w.f64("ml.last_instr_little", last_instr_little_);
    w.f64("ml.t", t_);
    w.i64("ml.periods", periods_);
}

void
MultilayerSystem::load(obs::StateReader& r)
{
    board_.load(r);
    const bool has_joint = r.boolean("ml.has_joint");
    if (has_joint != (joint_ != nullptr)) {
        throw std::runtime_error(
            "MultilayerSystem::load: arrangement mismatch");
    }
    if (joint_ != nullptr) {
        joint_->load(r);
    } else {
        hw_->load(r);
        os_->load(r);
    }
    const bool has_injector = r.boolean("ml.has_injector");
    if (has_injector != (injector_ != nullptr)) {
        throw std::runtime_error(
            "MultilayerSystem::load: injector presence mismatch");
    }
    if (injector_ != nullptr) {
        injector_->load(r);
    }
    const bool has_supervisor = r.boolean("ml.has_supervisor");
    if (has_supervisor != (supervisor_ != nullptr)) {
        throw std::runtime_error(
            "MultilayerSystem::load: supervisor presence mismatch");
    }
    if (supervisor_ != nullptr) {
        supervisor_->load(r);
    }

    last_hw_.big_cores = r.u64("ml.last_hw.big_cores");
    last_hw_.little_cores = r.u64("ml.last_hw.little_cores");
    last_hw_.freq_big = r.f64("ml.last_hw.freq_big");
    last_hw_.freq_little = r.f64("ml.last_hw.freq_little");
    last_policy_.threads_big = r.f64("ml.last_policy.threads_big");
    last_policy_.tpc_big = r.f64("ml.last_policy.tpc_big");
    last_policy_.tpc_little = r.f64("ml.last_policy.tpc_little");
    last_instr_total_ = r.f64("ml.last_instr_total");
    last_instr_big_ = r.f64("ml.last_instr_big");
    last_instr_little_ = r.f64("ml.last_instr_little");
    t_ = r.f64("ml.t");
    periods_ = static_cast<int>(r.i64("ml.periods"));
}

}  // namespace yukta::controllers
