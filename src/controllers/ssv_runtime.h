#ifndef YUKTA_CONTROLLERS_SSV_RUNTIME_H_
#define YUKTA_CONTROLLERS_SSV_RUNTIME_H_

/**
 * @file
 * The runtime SSV controller state machine (Sec. VI-D):
 *
 *   x(T+1) = A x(T) + B dy(T)
 *   u(T)   = C x(T) + D dy(T)
 *
 * with dy = [targets - outputs; external signals]. On top of the
 * linear update the runtime applies the designer-declared input
 * saturation and quantization, and monitors whether the uncertainty
 * guardband appears exhausted (sustained deviations beyond the
 * guaranteed bounds).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/vector.h"
#include "obs/stateio.h"
#include "robust/ssv_design.h"

namespace yukta::controllers {

class BatchRuntime;

/**
 * Optional per-invocation introspection record (filled on request so
 * the common path pays nothing): the exact dy fed to the state
 * machine, the updated state, the raw command before the input grids,
 * and per-input saturation/quantization flags. Consumed by the
 * observability layer (obs/trace.h) for per-tick events.
 */
struct SsvInvokeInfo
{
    linalg::Vector dy;     ///< Clamped/centered controller input.
    linalg::Vector x;      ///< State after x(T+1) = A x + B dy.
    linalg::Vector u_raw;  ///< Physical command before the grids.
    std::vector<int> saturated;  ///< 1 = raw command left [min, max].
    std::vector<int> quantized;  ///< 1 = grid snapping moved it.
};

/** Per-input saturation/quantization description. */
struct InputGrid
{
    double min = 0.0;
    double max = 1.0;
    double step = 0.0;  ///< 0 = continuous.

    /** @return @p v clamped to [min, max] and snapped to the grid. */
    double quantize(double v) const;
};

/** Runtime wrapper around a synthesized SSV controller. */
class SsvRuntime
{
  public:
    /**
     * @param ctrl synthesized controller (k maps dy -> u, centered).
     * @param grids physical input grids (size = k outputs).
     * @param u_mean operating-point offset added to the controller's
     *   centered output.
     * @param e_mean operating-point offset subtracted from the
     *   external-signal part of dy.
     */
    SsvRuntime(robust::SsvController ctrl, std::vector<InputGrid> grids,
               linalg::Vector u_mean, linalg::Vector e_mean);

    /** Shape accessors: outputs, external signals, inputs, order. */
    std::size_t numOutputsTracked() const { return num_outputs_; }
    std::size_t numExternal() const { return e_mean_.size(); }
    std::size_t numInputs() const { return grids_.size(); }
    std::size_t order() const { return ctrl_.k.numStates(); }

    /**
     * One invocation.
     *
     * Deviations are clamped to a small multiple of the design bounds
     * before entering the state machine: the SSV design only promises
     * behavior for in-bound deviations, and unbounded error drive
     * would wind the controller state up against the actuator
     * saturation.
     *
     * @param deviations targets - outputs (physical units), size O.
     * @param external external signals (physical units), size E.
     * @param info when non-null, receives the per-invocation
     *   introspection record (tracing only; no behavioral effect).
     * @return quantized physical inputs, size I.
     */
    linalg::Vector invoke(const linalg::Vector& deviations,
                          const linalg::Vector& external,
                          SsvInvokeInfo* info = nullptr);

    /**
     * First half of invoke(): validates the inputs and stages the
     * clamped/centered dy for the linear state machine, without
     * advancing it. Pair with finishInvoke(); a BatchRuntime may
     * execute the linear pass for many staged runtimes in one
     * cache-blocked sweep between the two calls.
     */
    void beginInvoke(const linalg::Vector& deviations,
                     const linalg::Vector& external);

    /**
     * Second half of invoke(): advances the linear state machine over
     * the staged dy (unless a BatchRuntime already did) and applies
     * the input grids and the guardband monitor. Bit-identical to the
     * monolithic invoke() either way.
     * @throws std::logic_error without a prior beginInvoke().
     */
    linalg::Vector finishInvoke(SsvInvokeInfo* info = nullptr);

    /**
     * Fingerprint of the controller matrices and shape: runtimes with
     * equal keys share bit-identical (A, B, C, D) and may tick
     * through one batched matrix-matrix pass.
     */
    std::uint64_t batchKey() const { return batch_key_; }

    /** Resets the controller state and the guardband monitor. */
    void reset();

    /**
     * Arms bumpless transfer: at the next beginInvoke() the state x is
     * solved (minimum-norm, regularized) from
     *
     *   C x + D dy = u_prev - u_mean
     *
     * so the command the incoming controller issues at the hand-over
     * tick equals the outgoing controller's last command @p u_prev
     * (physical units) before quantization. The arm survives reset():
     * a supervised swap parks the ladder in kHold and reset_primaries
     * fires when it re-earns kNominal, which must not lose the
     * hand-over state.
     */
    void armBumpless(linalg::Vector u_prev);

    /** @return true while an armed bumpless transfer is pending. */
    bool bumplessArmed() const { return bumpless_armed_; }

    /**
     * @return true when deviations have exceeded the guaranteed
     * bounds for several consecutive invocations: the runtime signal
     * that the uncertainty guardband was too small (Sec. II-B).
     */
    bool guardbandExhausted() const { return exhausted_; }

    /** The certificate of the wrapped controller. */
    const robust::SsvController& certificate() const { return ctrl_; }

    /** Appends the mutable runtime state to @p w. */
    void save(obs::StateWriter& w) const
    {
        w.f64vec("ssv.x", x_.raw());
        w.i64("ssv.over_bound", over_bound_count_);
        w.boolean("ssv.exhausted", exhausted_);
        w.boolean("ssv.bumpless", bumpless_armed_);
        w.f64vec("ssv.bumpless_u", bumpless_u_.raw());
    }

    /** Restores state written by save. */
    void load(obs::StateReader& r)
    {
        x_ = linalg::Vector(r.f64vec("ssv.x"));
        over_bound_count_ = static_cast<int>(r.i64("ssv.over_bound"));
        exhausted_ = r.boolean("ssv.exhausted");
        bumpless_armed_ = r.boolean("ssv.bumpless");
        bumpless_u_ = linalg::Vector(r.f64vec("ssv.bumpless_u"));
    }

  private:
    friend class BatchRuntime;

    robust::SsvController ctrl_;
    std::vector<InputGrid> grids_;
    linalg::Vector u_mean_;
    linalg::Vector e_mean_;
    linalg::Vector x_;
    std::size_t num_outputs_ = 0;
    int over_bound_count_ = 0;
    bool exhausted_ = false;
    std::uint64_t batch_key_ = 0;
    bool bumpless_armed_ = false;
    linalg::Vector bumpless_u_;  ///< Physical u to match at hand-over.

    // Staged invocation (beginInvoke -> [batch] -> finishInvoke).
    linalg::Vector pending_dy_;   ///< Clamped/centered dy.
    linalg::Vector pending_dev_;  ///< Raw deviations (guardband).
    linalg::Vector pending_u_;    ///< Linear output once ticked.
    bool has_pending_ = false;
    bool linear_done_ = false;

    static constexpr int kExhaustionWindow = 8;  ///< Invocations.

    /** Deviation clamp as a multiple of the design bounds. */
    static constexpr double kDeviationClamp = 3.0;
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_SSV_RUNTIME_H_
