#ifndef YUKTA_CONTROLLERS_PID_H_
#define YUKTA_CONTROLLERS_PID_H_

/**
 * @file
 * Classic SISO PID control and a per-layer "collection of SISO
 * loops" scheme. The paper's Sec. I/II position PID and SISO designs
 * as the popular formal baseline that cannot manage interacting
 * goals; this module implements that baseline faithfully so the
 * comparison can be run (see bench_pid_baseline).
 */

#include <vector>

#include "controllers/controller.h"
#include "controllers/optimizer.h"
#include "platform/dvfs.h"

namespace yukta::controllers {

/** Discrete PID with derivative filtering and anti-windup clamping. */
class Pid
{
  public:
    struct Gains
    {
        double kp = 1.0;
        double ki = 0.0;
        double kd = 0.0;
        double derivative_alpha = 0.5;  ///< EMA factor on the D term.
    };

    /**
     * @param gains PID gains.
     * @param out_min, out_max actuator range (integrator clamps here).
     * @param ts sample time in seconds.
     */
    Pid(const Gains& gains, double out_min, double out_max, double ts);

    /** One step: error = target - measurement; returns the output. */
    double step(double error);

    /** Resets integrator, derivative filter, and first-step flag. */
    void reset();

    /** @return the current integrator state (for tests). */
    double integrator() const { return integ_; }

  private:
    Gains gains_;
    double out_min_;
    double out_max_;
    double ts_;
    double integ_ = 0.0;
    double prev_error_ = 0.0;
    double deriv_ = 0.0;
    bool first_ = true;
};

/**
 * Hardware controller built from four independent SISO PID loops,
 * pairing each output with the input that most affects it:
 *   BIPS      -> f_big,
 *   P_big     -> #big cores,
 *   P_little  -> f_little,
 *   Temp      -> (cap on f_big).
 * No coordination channel exists between the loops -- the structural
 * deficiency the paper attributes to SISO collections ([11], [12],
 * [25], [26] in its bibliography).
 */
class SisoPidHwController : public HwController
{
  public:
    /** Builds the four loops and their optimizer for @p cfg. */
    SisoPidHwController(const platform::BoardConfig& cfg,
                        ExdOptimizer optimizer);

    /** HwController hooks: one control period; reset clears loops. */
    platform::HardwareInputs invoke(const HwSignals& s) override;
    void reset() override;

    /** Emits per-tick "hw"/"pid" events to @p sink (nullptr off). */
    void attachTrace(obs::TraceSink* sink) override;

    /** Read access to the target optimizer. */
    const ExdOptimizer& optimizer() const { return optimizer_; }

  private:
    obs::TraceSink* trace_ = nullptr;
    platform::BoardConfig cfg_;
    platform::DvfsTable big_;
    platform::DvfsTable little_;
    ExdOptimizer optimizer_;
    Pid perf_loop_;
    Pid pbig_loop_;
    Pid plittle_loop_;
    Pid temp_loop_;
    platform::HardwareInputs last_;  ///< Current operating point.
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_PID_H_
