#include "controllers/layer_controllers.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "controllers/batch_runtime.h"
#include "obs/trace.h"

namespace yukta::controllers {

using linalg::Vector;
using platform::HardwareInputs;
using platform::PlacementPolicy;

double
exdMetric(double total_power, double bips)
{
    double perf = std::max(bips, 0.05);
    return std::max(total_power, 0.0) / (perf * perf);
}

ExdOptimizer
makeHwOptimizer(const platform::BoardConfig& cfg)
{
    OptimizerConfig oc;
    // Targets: [BIPS, P_big, P_little, Temp].
    oc.initial = {3.0, 0.7 * cfg.power_limit_big,
                  0.7 * cfg.power_limit_little, cfg.temp_limit - 9.0};
    oc.min = {0.5, 0.3, 0.05, 40.0};
    oc.max = {12.0, 0.93 * cfg.power_limit_big,
              0.93 * cfg.power_limit_little, cfg.temp_limit - 4.0};
    oc.role = {TargetRole::kMaximize, TargetRole::kBudget,
               TargetRole::kBudget, TargetRole::kCeiling};
    oc.step = {0.6, 0.25, 0.03, 0.0};
    oc.periods_per_move = 6;
    return ExdOptimizer(oc);
}

ExdOptimizer
makeOsOptimizer()
{
    OptimizerConfig oc;
    // Targets: [BIPS_big, BIPS_little, dSC]. The spare-compute
    // difference is informational: its target follows the measurement
    // (a fixed dSC target would fight thread consolidation, since an
    // all-big placement legitimately drives dSC negative).
    oc.initial = {3.0, 1.0, 0.0};
    oc.min = {0.5, 0.1, -10.0};
    oc.max = {10.0, 4.0, 10.0};
    oc.role = {TargetRole::kMaximize, TargetRole::kMaximize,
               TargetRole::kCeiling};
    oc.step = {0.6, 0.3, 0.0};
    // Coordinate mode: the two cluster-BIPS targets trade off through
    // thread placement, so they must be probed one at a time.
    oc.coordinate = true;
    return ExdOptimizer(oc);
}

ExdOptimizer
makeMonolithicOptimizer(const platform::BoardConfig& cfg)
{
    OptimizerConfig oc;
    // Targets: [BIPS, P_big, P_little, Temp, BIPS_big, BIPS_little,
    // dSC].
    oc.initial = {3.0,  0.7 * cfg.power_limit_big,
                  0.7 * cfg.power_limit_little,
                  cfg.temp_limit - 9.0,
                  3.0,  1.0,
                  1.0};
    oc.min = {0.5, 0.3, 0.05, 40.0, 0.5, 0.1, -10.0};
    oc.max = {12.0, 0.93 * cfg.power_limit_big,
              0.93 * cfg.power_limit_little, cfg.temp_limit - 4.0, 10.0,
              4.0, 10.0};
    oc.role = {TargetRole::kMaximize, TargetRole::kBudget,
               TargetRole::kBudget,   TargetRole::kCeiling,
               TargetRole::kMaximize, TargetRole::kMaximize,
               TargetRole::kCeiling};
    oc.step = {0.5, 0.15, 0.015, 0.0, 0.4, 0.15, 0.0};
    return ExdOptimizer(oc);
}

// ----------------------------------------------------------------
// SSV hardware controller.
// ----------------------------------------------------------------

SsvHwController::SsvHwController(SsvRuntime runtime, ExdOptimizer optimizer)
    : runtime_(std::move(runtime)), optimizer_(std::move(optimizer))
{
}

bool
SsvHwController::holdTargets(const Vector& targets)
{
    held_targets_ = targets;
    hold_ = true;
    return true;
}

void
SsvHwController::attachTrace(obs::TraceSink* sink)
{
    trace_ = sink;
    optimizer_.attachTrace(sink, "opt-hw");
}

void
SsvHwController::stage(const HwSignals& s)
{
    Vector y{s.perf_bips, s.p_big, s.p_little, s.temp};
    Vector targets =
        hold_ ? held_targets_
              : optimizer_.update(
                    exdMetric(s.p_big + s.p_little, s.perf_bips), y);
    Vector dev = targets - y;
    Vector ext{s.threads_big, s.tpc_big, s.tpc_little};
    runtime_.beginInvoke(dev, ext);
    pending_y_ = std::move(y);
    pending_targets_ = std::move(targets);
    pending_ext_ = std::move(ext);
}

bool
SsvHwController::beginInvoke(const HwSignals& s, BatchRuntime& batch)
{
    stage(s);
    batch.enqueue(runtime_);
    return true;
}

HardwareInputs
SsvHwController::finishInvoke()
{
    SsvInvokeInfo info;
    Vector u = runtime_.finishInvoke(trace_ != nullptr ? &info : nullptr);
    if (trace_ != nullptr) {
        obs::TraceEvent ev = trace_->makeEvent("hw", "ssv");
        ev.vec("y", pending_y_.raw())
            .vec("targets", pending_targets_.raw())
            .vec("dy", info.dy.raw())
            .vec("ext", pending_ext_.raw())
            .vec("x", info.x.raw())
            .vec("u_raw", info.u_raw.raw())
            .vec("u", u.raw())
            .flags("sat", info.saturated)
            .flags("quant", info.quantized);
        trace_->record(std::move(ev));
    }

    HardwareInputs out;
    out.big_cores = static_cast<std::size_t>(std::lround(u[0]));
    out.little_cores = static_cast<std::size_t>(std::lround(u[1]));
    out.freq_big = u[2];
    out.freq_little = u[3];
    return out;
}

HardwareInputs
SsvHwController::invoke(const HwSignals& s)
{
    stage(s);
    return finishInvoke();
}

void
SsvHwController::reset()
{
    runtime_.reset();
    optimizer_.reset();
}

void
SsvHwController::swapRuntime(SsvRuntime runtime, const Vector& u_prev)
{
    runtime.armBumpless(u_prev);
    runtime_ = std::move(runtime);
}

void
SsvHwController::installRuntime(SsvRuntime runtime)
{
    runtime_ = std::move(runtime);
}

// ----------------------------------------------------------------
// SSV software controller.
// ----------------------------------------------------------------

SsvOsController::SsvOsController(SsvRuntime runtime, ExdOptimizer optimizer)
    : runtime_(std::move(runtime)), optimizer_(std::move(optimizer))
{
}

bool
SsvOsController::holdTargets(const Vector& targets)
{
    held_targets_ = targets;
    hold_ = true;
    return true;
}

void
SsvOsController::attachTrace(obs::TraceSink* sink)
{
    trace_ = sink;
    optimizer_.attachTrace(sink, "opt-os");
}

void
SsvOsController::stage(const OsSignals& s)
{
    Vector y{s.perf_big, s.perf_little, s.d_spare};
    Vector targets =
        hold_ ? held_targets_
              : optimizer_.update(
                    exdMetric(s.total_power, s.perf_big + s.perf_little),
                    y);
    Vector dev = targets - y;
    Vector ext{s.big_cores, s.little_cores, s.freq_big, s.freq_little};
    runtime_.beginInvoke(dev, ext);
    pending_y_ = std::move(y);
    pending_targets_ = std::move(targets);
    pending_ext_ = std::move(ext);
    pending_threads_ = s.num_threads;
}

bool
SsvOsController::beginInvoke(const OsSignals& s, BatchRuntime& batch)
{
    stage(s);
    batch.enqueue(runtime_);
    return true;
}

PlacementPolicy
SsvOsController::finishInvoke()
{
    SsvInvokeInfo info;
    Vector u = runtime_.finishInvoke(trace_ != nullptr ? &info : nullptr);
    if (trace_ != nullptr) {
        obs::TraceEvent ev = trace_->makeEvent("os", "ssv");
        ev.vec("y", pending_y_.raw())
            .vec("targets", pending_targets_.raw())
            .vec("dy", info.dy.raw())
            .vec("ext", pending_ext_.raw())
            .vec("x", info.x.raw())
            .vec("u_raw", info.u_raw.raw())
            .vec("u", u.raw())
            .flags("sat", info.saturated)
            .flags("quant", info.quantized);
        trace_->record(std::move(ev));
    }

    PlacementPolicy out;
    // Threads assigned to big cannot exceed the runnable threads.
    out.threads_big =
        std::clamp(u[0], 0.0, static_cast<double>(pending_threads_));
    out.tpc_big = std::max(1.0, u[1]);
    out.tpc_little = std::max(1.0, u[2]);
    return out;
}

PlacementPolicy
SsvOsController::invoke(const OsSignals& s)
{
    stage(s);
    return finishInvoke();
}

void
SsvOsController::reset()
{
    runtime_.reset();
    optimizer_.reset();
}

// ----------------------------------------------------------------
// LQG controllers.
// ----------------------------------------------------------------

LqgHwController::LqgHwController(LqgRuntime runtime, ExdOptimizer optimizer)
    : runtime_(std::move(runtime)), optimizer_(std::move(optimizer))
{
}

void
LqgHwController::attachTrace(obs::TraceSink* sink)
{
    trace_ = sink;
    optimizer_.attachTrace(sink, "opt-hw");
}

bool
LqgHwController::holdTargets(const Vector& targets)
{
    held_targets_ = targets;
    hold_ = true;
    return true;
}

void
LqgHwController::stage(const HwSignals& s)
{
    Vector y{s.perf_bips, s.p_big, s.p_little, s.temp};
    Vector targets =
        hold_ ? held_targets_
              : optimizer_.update(
                    exdMetric(s.p_big + s.p_little, s.perf_bips), y);
    runtime_.beginInvoke(targets - y);
    pending_y_ = std::move(y);
    pending_targets_ = std::move(targets);
}

bool
LqgHwController::beginInvoke(const HwSignals& s, BatchRuntime& batch)
{
    stage(s);
    batch.enqueue(runtime_);
    return true;
}

HardwareInputs
LqgHwController::finishInvoke()
{
    LqgInvokeInfo info;
    Vector u = runtime_.finishInvoke(trace_ != nullptr ? &info : nullptr);
    if (trace_ != nullptr) {
        obs::TraceEvent ev = trace_->makeEvent("hw", "lqg");
        ev.vec("y", pending_y_.raw())
            .vec("targets", pending_targets_.raw())
            .vec("x", info.x.raw())
            .vec("u_raw", info.u_raw.raw())
            .vec("u", u.raw())
            .flags("sat", info.saturated);
        trace_->record(std::move(ev));
    }

    HardwareInputs out;
    out.big_cores = static_cast<std::size_t>(std::lround(u[0]));
    out.little_cores = static_cast<std::size_t>(std::lround(u[1]));
    out.freq_big = u[2];
    out.freq_little = u[3];
    return out;
}

HardwareInputs
LqgHwController::invoke(const HwSignals& s)
{
    stage(s);
    return finishInvoke();
}

void
LqgHwController::reset()
{
    runtime_.reset();
    optimizer_.reset();
}

LqgOsController::LqgOsController(LqgRuntime runtime, ExdOptimizer optimizer)
    : runtime_(std::move(runtime)), optimizer_(std::move(optimizer))
{
}

void
LqgOsController::attachTrace(obs::TraceSink* sink)
{
    trace_ = sink;
    optimizer_.attachTrace(sink, "opt-os");
}

void
LqgOsController::stage(const OsSignals& s)
{
    Vector y{s.perf_big, s.perf_little, s.d_spare};
    Vector targets = optimizer_.update(
        exdMetric(s.total_power, s.perf_big + s.perf_little), y);
    runtime_.beginInvoke(targets - y);
    pending_y_ = std::move(y);
    pending_targets_ = std::move(targets);
    pending_threads_ = s.num_threads;
}

bool
LqgOsController::beginInvoke(const OsSignals& s, BatchRuntime& batch)
{
    stage(s);
    batch.enqueue(runtime_);
    return true;
}

PlacementPolicy
LqgOsController::finishInvoke()
{
    LqgInvokeInfo info;
    Vector u = runtime_.finishInvoke(trace_ != nullptr ? &info : nullptr);
    if (trace_ != nullptr) {
        obs::TraceEvent ev = trace_->makeEvent("os", "lqg");
        ev.vec("y", pending_y_.raw())
            .vec("targets", pending_targets_.raw())
            .vec("x", info.x.raw())
            .vec("u_raw", info.u_raw.raw())
            .vec("u", u.raw())
            .flags("sat", info.saturated);
        trace_->record(std::move(ev));
    }

    PlacementPolicy out;
    out.threads_big =
        std::clamp(u[0], 0.0, static_cast<double>(pending_threads_));
    out.tpc_big = std::max(1.0, u[1]);
    out.tpc_little = std::max(1.0, u[2]);
    return out;
}

PlacementPolicy
LqgOsController::invoke(const OsSignals& s)
{
    stage(s);
    return finishInvoke();
}

void
LqgOsController::reset()
{
    runtime_.reset();
    optimizer_.reset();
}

// ----------------------------------------------------------------
// Monolithic LQG.
// ----------------------------------------------------------------

MonolithicLqgController::MonolithicLqgController(LqgRuntime runtime,
                                                 ExdOptimizer optimizer)
    : runtime_(std::move(runtime)), optimizer_(std::move(optimizer))
{
}

void
MonolithicLqgController::attachTrace(obs::TraceSink* sink)
{
    trace_ = sink;
    optimizer_.attachTrace(sink, "opt-joint");
}

std::pair<HardwareInputs, PlacementPolicy>
MonolithicLqgController::invoke(const HwSignals& hw, const OsSignals& os)
{
    Vector y{hw.perf_bips, hw.p_big,      hw.p_little, hw.temp,
             os.perf_big,  os.perf_little, os.d_spare};
    Vector targets = optimizer_.update(
        exdMetric(hw.p_big + hw.p_little, hw.perf_bips), y);
    LqgInvokeInfo info;
    Vector u = runtime_.invoke(targets - y,
                               trace_ != nullptr ? &info : nullptr);
    if (trace_ != nullptr) {
        obs::TraceEvent ev = trace_->makeEvent("joint", "lqg");
        ev.vec("y", y.raw())
            .vec("targets", targets.raw())
            .vec("x", info.x.raw())
            .vec("u_raw", info.u_raw.raw())
            .vec("u", u.raw())
            .flags("sat", info.saturated);
        trace_->record(std::move(ev));
    }

    HardwareInputs hin;
    hin.big_cores = static_cast<std::size_t>(std::lround(u[0]));
    hin.little_cores = static_cast<std::size_t>(std::lround(u[1]));
    hin.freq_big = u[2];
    hin.freq_little = u[3];

    PlacementPolicy pol;
    pol.threads_big =
        std::clamp(u[4], 0.0, static_cast<double>(os.num_threads));
    pol.tpc_big = std::max(1.0, u[5]);
    pol.tpc_little = std::max(1.0, u[6]);
    return {hin, pol};
}

void
MonolithicLqgController::reset()
{
    runtime_.reset();
    optimizer_.reset();
}

}  // namespace yukta::controllers
