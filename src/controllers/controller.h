#ifndef YUKTA_CONTROLLERS_CONTROLLER_H_
#define YUKTA_CONTROLLERS_CONTROLLER_H_

/**
 * @file
 * Runtime controller interfaces. Both layer controllers run as
 * privileged processes invoked every 500 ms (the period dictated by
 * the board's 260 ms power sensors, Sec. V-A).
 *
 * The hardware controller observes {BIPS, P_big, P_little, T} and
 * actuates {#big cores, #little cores, f_big, f_little}; its external
 * signals are the OS controller's inputs. The OS controller observes
 * {BIPS_big, BIPS_little, delta SpareCompute} and actuates the three
 * placement-policy knobs; its external signals are the hardware
 * controller's inputs.
 */

#include <stdexcept>

#include "linalg/vector.h"
#include "obs/stateio.h"
#include "platform/board.h"
#include "platform/scheduler.h"

namespace yukta::obs {
class TraceSink;
}  // namespace yukta::obs

namespace yukta::controllers {

class BatchRuntime;

/** Control period in seconds (Sec. V-A). */
inline constexpr double kControlPeriod = 0.5;

/** Signals visible to the hardware-layer controller each period. */
struct HwSignals
{
    double perf_bips = 0.0;  ///< Total BIPS over the last period.
    double p_big = 0.0;      ///< Sensed big-cluster power (W).
    double p_little = 0.0;   ///< Sensed little-cluster power (W).
    double temp = 25.0;      ///< Sensed hot-spot temperature (C).

    // External signals = the OS controller's inputs (Table II).
    double threads_big = 0.0;
    double tpc_big = 1.0;
    double tpc_little = 1.0;
};

/** Signals visible to the software (OS) controller each period. */
struct OsSignals
{
    double perf_big = 0.0;     ///< Big-cluster BIPS over last period.
    double perf_little = 0.0;  ///< Little-cluster BIPS.
    double d_spare = 0.0;      ///< SC_big - SC_little (Eq. 2).
    std::size_t num_threads = 0;  ///< Runnable threads (OS knows this).

    /**
     * Total board power (W) as read from the power sensors. Not a
     * controlled output of the OS layer -- its E x D optimizer reads
     * it the way any privileged process can.
     */
    double total_power = 0.0;

    // External signals = the HW controller's inputs (Table III).
    double big_cores = 4.0;
    double little_cores = 4.0;
    double freq_big = 2.0;
    double freq_little = 1.4;
};

/** Hardware-layer controller interface. */
class HwController
{
  public:
    virtual ~HwController() = default;

    /** One 500 ms invocation: observe @p s, return actuation. */
    virtual platform::HardwareInputs invoke(const HwSignals& s) = 0;

    /**
     * Batched-tick split: observe @p s and stage the linear pass into
     * @p batch, deferring the rest of the invocation to
     * finishInvoke(). begin + batch.tick() + finish is bit-identical
     * to invoke(). @return false when this controller has no linear
     * core to batch (heuristics); the caller then uses invoke().
     */
    virtual bool beginInvoke(const HwSignals& s, BatchRuntime& batch)
    {
        (void)s;
        (void)batch;
        return false;
    }

    /**
     * Completes an invocation staged by beginInvoke().
     * @throws std::logic_error when unsupported or nothing is staged.
     */
    virtual platform::HardwareInputs finishInvoke()
    {
        throw std::logic_error(
            "HwController::finishInvoke: batching unsupported");
    }

    /** Resets internal state between runs. */
    virtual void reset() {}

    /**
     * Attaches @p sink for per-tick event tracing (nullptr detaches).
     * The default implementation ignores the sink; controllers with
     * internal state worth tracing override it.
     */
    virtual void attachTrace(obs::TraceSink* sink) { (void)sink; }

    /**
     * Pins the output targets to @p targets, bypassing the local
     * E x D optimizer — the hook a *cluster-level* controller uses to
     * set this board's operating point ([BIPS, P_big, P_little, T]
     * for the hardware layer). @return false when this controller has
     * no target mechanism (heuristics); the caller then leaves the
     * board self-governed.
     */
    virtual bool holdTargets(const linalg::Vector& targets)
    {
        (void)targets;
        return false;
    }

    /**
     * Appends the controller's mutable state to @p w for
     * checkpointing. Stateless controllers keep the no-op default.
     */
    virtual void save(obs::StateWriter& w) const { (void)w; }

    /** Restores state written by save. */
    virtual void load(obs::StateReader& r) { (void)r; }
};

/** Software-layer controller interface. */
class OsController
{
  public:
    virtual ~OsController() = default;

    /** One 500 ms invocation: observe @p s, return placement policy. */
    virtual platform::PlacementPolicy invoke(const OsSignals& s) = 0;

    /**
     * Batched-tick split: observe @p s and stage the linear pass into
     * @p batch (see HwController::beginInvoke). @return false when
     * this controller has no linear core to batch.
     */
    virtual bool beginInvoke(const OsSignals& s, BatchRuntime& batch)
    {
        (void)s;
        (void)batch;
        return false;
    }

    /**
     * Completes an invocation staged by beginInvoke().
     * @throws std::logic_error when unsupported or nothing is staged.
     */
    virtual platform::PlacementPolicy finishInvoke()
    {
        throw std::logic_error(
            "OsController::finishInvoke: batching unsupported");
    }

    /** Resets internal state between runs. */
    virtual void reset() {}

    /** Attaches @p sink for per-tick event tracing (nullptr detaches). */
    virtual void attachTrace(obs::TraceSink* sink) { (void)sink; }

    /**
     * Pins the output targets ([BIPS_big, BIPS_little, dSC]) to
     * @p targets, bypassing the local optimizer. @return false when
     * unsupported.
     */
    virtual bool holdTargets(const linalg::Vector& targets)
    {
        (void)targets;
        return false;
    }

    /** Appends the controller's mutable state to @p w (default none). */
    virtual void save(obs::StateWriter& w) const { (void)w; }

    /** Restores state written by save. */
    virtual void load(obs::StateReader& r) { (void)r; }
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_CONTROLLER_H_
