#ifndef YUKTA_CONTROLLERS_SUPERVISOR_H_
#define YUKTA_CONTROLLERS_SUPERVISOR_H_

/**
 * @file
 * Runtime supervisor for the multilayer controller: validates every
 * sensor snapshot before the layer controllers see it, repairs short
 * fault bursts by substituting the last known-good values, and under
 * sustained faults walks a degradation ladder
 *
 *     kNominal -> kHold -> kFallback -> kSafe
 *
 *   kNominal   primaries (SSV/LQG/heuristic) run on validated input
 *   kHold      telemetry invalid: keep the last commands in force
 *   kFallback  still invalid past the hold budget: drive with the
 *              conservative coordinated heuristics instead of the
 *              model-based primaries
 *   kSafe      invalid past the fallback budget: clamp to the safe
 *              state (1 big core, minimum frequencies) which
 *              trivially satisfies the paper's P/T caps
 *
 * Recovery is hysteretic: each rung back up requires a full window of
 * consecutive healthy ticks, so alternating good/bad telemetry cannot
 * make the stack oscillate between modes. Every transition is logged
 * with its period, time, and reason; the log is deterministic for a
 * given fault schedule.
 */

#include <string>
#include <vector>

#include "controllers/controller.h"
#include "controllers/heuristics.h"
#include "platform/board.h"
#include "platform/config.h"
#include "platform/dvfs.h"
#include "platform/scheduler.h"
#include "platform/sensors.h"

namespace yukta::controllers {

/** The supervisor's degradation-ladder rungs. */
enum class SupervisorMode
{
    kNominal,  ///< Primary controllers in charge.
    kHold,     ///< Commands held; waiting out a short burst.
    kFallback, ///< Heuristic fallback controllers in charge.
    kSafe,     ///< Safe-state clamp in force.
};

/** @return a short stable name for @p mode ("nominal", ...). */
std::string supervisorModeName(SupervisorMode mode);

/** Supervisor tuning knobs (ticks are 500 ms control periods). */
struct SupervisorConfig
{
    int hold_limit = 2;       ///< Bad ticks tolerated before fallback.
    int fallback_limit = 8;   ///< Bad ticks tolerated before safe.
    int recovery_ticks = 4;   ///< Healthy ticks per rung back up.
    int warmup_periods = 2;   ///< Ticks before floors are enforced
                              ///< (power windows start empty).
    int stuck_ticks = 3;      ///< Bit-identical analog readings in a
                              ///< row before "stuck" is declared.
    int reset_grace_ticks = 6; ///< Ticks after a controller reset
                               ///< (hot-swap, crash reboot) during
                               ///< which repeat/stale detectors are
                               ///< suspended: held or zeroed outputs
                               ///< legitimately freeze the telemetry.

    // Plausibility bounds; readings outside them are invalid even
    // when finite. Ceilings are the physical envelope of the cluster
    // (comfortably above any reachable operating point, but low
    // enough that a multiplicative spike stays implausible even when
    // the supervisor has already driven power down); floors catch
    // dropout (a powered cluster cannot draw ~zero watts, a heatsink
    // cannot read below ambient).
    double max_power_big = 6.0;      ///< W.
    double max_power_little = 1.0;   ///< W.
    double max_temp = 130.0;         ///< C.
    double min_power_big = 0.05;     ///< W (>= uncore floor).
    double min_power_little = 0.004; ///< W.
    double temp_floor_margin = 2.0;  ///< C below ambient tolerated.
};

/** One logged mode transition. */
struct SupervisorEvent
{
    int period = 0;      ///< Control-period index.
    double time = 0.0;   ///< Simulated seconds.
    SupervisorMode from = SupervisorMode::kNominal;
    SupervisorMode to = SupervisorMode::kNominal;
    std::string reason;  ///< Deterministic description.
};

/** Per-run supervisor summary + full event log. */
struct SupervisorReport
{
    std::vector<SupervisorEvent> events;
    long transition_count = 0;   ///< Persists even when events do not.
    long invalid_ticks = 0;      ///< Ticks with >= 1 invalid field.
    long repaired_fields = 0;    ///< Fields replaced by last-good.
    long repaired_commands = 0;  ///< Non-finite commands sanitized.
    long skipped_ticks = 0;      ///< Timing faults observed.
    double time_nominal = 0.0;   ///< Seconds per mode.
    double time_hold = 0.0;
    double time_fallback = 0.0;
    double time_safe = 0.0;

    /** @return total transition count (cache-safe, unlike events). */
    long transitions() const { return transition_count; }

    /** @return seconds spent anywhere below kNominal. */
    double timeDegraded() const
    {
        return time_hold + time_fallback + time_safe;
    }
};

/** What the supervisor decided for one control tick. */
struct SupervisorDecision
{
    SupervisorMode mode = SupervisorMode::kNominal;
    // yukta-lint: allow(sensor-construction) sanitized pass-through
    platform::SensorReadings readings;  ///< Validated/repaired.
    bool reset_primaries = false;  ///< True on re-entry to kNominal.
};

/** Observation validator + degradation-ladder state machine. */
class Supervisor
{
  public:
    /** Builds the supervisor (and its fallbacks) for @p board_cfg. */
    explicit Supervisor(const platform::BoardConfig& board_cfg,
                        const SupervisorConfig& cfg = {});

    /**
     * Validates @p obs for the tick at (@p period, @p time), updates
     * the ladder, and returns the mode plus the sanitized readings
     * the controller stack must use. The returned readings are always
     * finite.
     */
    SupervisorDecision assess(int period, double time,
                              const platform::SensorReadings& obs);

    /** Fallback hardware controller (kFallback rung). */
    platform::HardwareInputs fallbackHardware(const HwSignals& s);

    /** Fallback OS controller (kFallback rung). */
    platform::PlacementPolicy fallbackPolicy(const OsSignals& s);

    /** Safe-state clamp: 1 big core, all littles, minimum freqs. */
    platform::HardwareInputs safeHardware() const;

    /** Safe-state placement: everything on the little cluster. */
    platform::PlacementPolicy safePolicy() const;

    /**
     * Last line of defense: @p cmd with any non-finite field replaced
     * by its safe-state value (counted as a repaired command). The
     * supervised stack therefore never emits NaN actuation.
     */
    platform::HardwareInputs guardHardware(const platform::HardwareInputs&
                                               cmd);

    /** Placement-side counterpart of guardHardware. */
    platform::PlacementPolicy guardPolicy(const platform::PlacementPolicy&
                                              cmd);

    /**
     * Records the placement command issued this tick. A big-cluster
     * instruction counter that stops advancing is only a fault when
     * the commanded placement keeps threads on the big cluster;
     * without this the safe state (0 big threads) would read as a
     * stale-counter fault and lock the ladder in kSafe forever.
     */
    void notePlacement(const platform::PlacementPolicy& commanded);

    /** Records a control tick lost to a timing fault. */
    void noteSkippedTick();

    /**
     * Declares that the controller stack's state was just reset
     * (hot-swap, crash reboot): for the next reset_grace_ticks the
     * exact-repeat ("stuck") and stale-counter detectors stand down.
     * A reset legitimately repeats or zeroes outputs for a few ticks,
     * which freezes the quantized telemetry bit-identically -- exactly
     * the signature those detectors exist to catch -- and without the
     * grace window the ladder false-trips on its own recovery.
     */
    void noteControllerReset();

    /**
     * Routes a controller hot-swap through the ladder: from kNominal
     * the mode drops to kHold (commands stay in force) and must earn
     * its way back up through the usual recovery window, so a fault
     * that lands mid-swap degrades exactly like any other invalid
     * streak. Also opens the reset grace window. From a degraded mode
     * only the grace window is opened.
     */
    void noteHotSwap(int period, double time, const std::string& reason);

    /**
     * Emits "supervisor" events (invalid ticks, ladder transitions)
     * to @p sink; nullptr detaches.
     */
    void attachTrace(obs::TraceSink* sink) { trace_ = sink; }

    /** @return the current rung. */
    SupervisorMode mode() const { return mode_; }

    /** @return the accumulated report (events + counters). */
    const SupervisorReport& report() const { return report_; }

    /** Resets ladder, counters, and event log between runs. */
    void reset();

    /**
     * Cold-reboot entry point for a board that just came back from a
     * crash (fleet board-crash fault domain): full reset, then the
     * ladder restarts at kSafe — a rebooted board must prove a
     * recovery window of healthy telemetry before the primaries take
     * over, exactly like recovery from sustained corruption. The
     * transition is logged at (@p period, @p time) with @p reason.
     */
    void coldBoot(int period, double time, const std::string& reason);

    /** Appends the full ladder + validator state to @p w. */
    void save(obs::StateWriter& w) const;

    /**
     * Restores state written by save. The event log is restored as
     * counters plus the events recorded so far.
     */
    void load(obs::StateReader& r);

  private:
    platform::BoardConfig board_cfg_;
    SupervisorConfig cfg_;
    platform::DvfsTable big_;
    platform::DvfsTable little_;
    CoordinatedHwHeuristic fallback_hw_;
    CoordinatedOsHeuristic fallback_os_;

    SupervisorMode mode_ = SupervisorMode::kNominal;
    int consecutive_bad_ = 0;
    int consecutive_good_ = 0;
    bool have_good_ = false;
    // yukta-lint: allow(sensor-construction) hold-last-good store
    platform::SensorReadings last_good_;
    // yukta-lint: allow(sensor-construction) stuck-sensor detector
    platform::SensorReadings prev_obs_;
    bool have_prev_ = false;
    bool expect_big_activity_ = true;
    int stuck_streak_p_big_ = 0;
    int stuck_streak_p_little_ = 0;
    int stuck_streak_temp_ = 0;
    int reset_grace_ = 0;
    SupervisorReport report_;
    obs::TraceSink* trace_ = nullptr;

    std::string validate(int period, const platform::SensorReadings& obs,
                         platform::SensorReadings* repaired);
    void transition(int period, double time, SupervisorMode to,
                    const std::string& reason);
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_SUPERVISOR_H_
