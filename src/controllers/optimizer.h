#ifndef YUKTA_CONTROLLERS_OPTIMIZER_H_
#define YUKTA_CONTROLLERS_OPTIMIZER_H_

/**
 * @file
 * The E x D target optimizer of Sec. IV-D. Each controller is paired
 * with an optimizer that walks the *output targets* so the tracked
 * operating point drifts toward minimum Energy x Delay:
 *
 *   "the optimizer keeps increasing Perf_0 a lot while increasing
 *    Power_0 a little. When the result is that E x D has increased,
 *    the optimizer discards the latest move, and moves in the
 *    opposite direction: it decreases Perf_0 a little while
 *    decreasing Power_0 a lot."
 *
 * E x D is proportional to Power / Perf^2, so the harness feeds that
 * instantaneous metric in every evaluation interval.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/vector.h"
#include "obs/stateio.h"

namespace yukta::obs {
class TraceSink;
}  // namespace yukta::obs

namespace yukta::controllers {

/** Role of each target in the optimizer's walk. */
enum class TargetRole
{
    kMaximize,  ///< Perf-like: pushed up a lot / down a little.
    kBudget,    ///< Power-like: pushed up a little / down a lot.
    kFixed,     ///< Held at its initial value (e.g. dSC = 1).
    kCeiling,   ///< Limit-like (temperature): the target follows the
                ///< measurement until the cap, so the channel only
                ///< exerts force when the limit is threatened.
};

/** Configuration of one optimizer instance. */
struct OptimizerConfig
{
    std::vector<double> initial;    ///< Initial targets.
    std::vector<double> min;        ///< Per-target floor.
    std::vector<double> max;        ///< Per-target ceiling (for powers,
                                    ///< keep below the board limit).
    std::vector<TargetRole> role;   ///< Role per target.
    std::vector<double> step;      ///< Base step per target.

    /** Control periods between optimizer moves (settle time). */
    int periods_per_move = 8;

    /** EMA factor for the measured-output anchor (per period). */
    double anchor_alpha = 0.3;

    /**
     * Coordinate mode: perturb one walkable channel per move
     * (round-robin) and keep a direction per channel. Needed when the
     * channels trade off against each other (e.g. moving threads
     * between clusters raises one cluster's BIPS and lowers the
     * other's). Joint mode (false) moves all channels together.
     */
    bool coordinate = false;
};

/** Hill-climbing target optimizer (Fig. 5). */
class ExdOptimizer
{
  public:
    /** Builds the optimizer; targets start at the config anchors. */
    explicit ExdOptimizer(OptimizerConfig cfg);

    /**
     * Called once per control period with the current E x D metric
     * (Power / Perf^2) and the measured outputs. Internally
     * rate-limited to one move per periods_per_move; the metric is
     * smoothed (EMA) against workload noise.
     *
     * Targets are proposed *relative to the measured outputs*, so a
     * move that turned out to hurt E x D is implicitly discarded on
     * the next move ("the optimizer discards the latest move",
     * Sec. IV-D) and the walk can never run away from the reachable
     * operating region.
     *
     * @return the current targets (updated when a move fired).
     */
    const linalg::Vector& update(double exd_metric,
                                 const linalg::Vector& measured);

    /** @return the current targets without updating. */
    const linalg::Vector& targets() const { return targets_; }

    /** Resets to the initial targets. */
    void reset();

    /**
     * Attaches @p sink for target-move tracing; every applied move
     * emits one "<layer>"/"opt_move" event (targets, smoothed metric,
     * direction, reversal flag). nullptr detaches.
     */
    void attachTrace(obs::TraceSink* sink, std::string layer);

    /** @return total optimizer moves taken. */
    int moves() const { return moves_; }

    /** @return direction reversals observed so far. */
    int reversals() const { return reversals_; }

    /**
     * @return the move index at which the optimizer first settled
     * (three consecutive reversals = oscillating around the optimum),
     * or -1 while still searching. Used by the Sec. VI-B comparison
     * (SSV: ~30 intervals; LQG: ~90).
     */
    int convergedAtMove() const { return converged_at_; }

    /** Appends the full walk state to @p w. */
    void save(obs::StateWriter& w) const;

    /** Restores state written by save (trace sink untouched). */
    void load(obs::StateReader& r);

  private:
    OptimizerConfig cfg_;
    linalg::Vector targets_;
    linalg::Vector ema_measured_;  ///< Smoothed operating point.
    bool have_anchor_ = false;
    int direction_ = +1;   ///< +1 = push perf up, -1 = back off.
    std::vector<int> channel_dir_;   ///< Coordinate-mode directions.
    std::size_t next_channel_ = 0;   ///< Coordinate-mode cursor.
    int last_channel_ = -1;          ///< Channel moved last time.
    double last_metric_ = -1.0;
    double ema_metric_ = -1.0;
    int period_count_ = 0;
    int moves_ = 0;
    int reversals_ = 0;
    int recent_reversals_ = 0;
    int converged_at_ = -1;
    obs::TraceSink* trace_ = nullptr;
    std::string trace_layer_;

    void applyMove(const linalg::Vector& measured);
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_OPTIMIZER_H_
