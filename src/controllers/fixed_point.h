#ifndef YUKTA_CONTROLLERS_FIXED_POINT_H_
#define YUKTA_CONTROLLERS_FIXED_POINT_H_

/**
 * @file
 * Fixed-point (Q16.16) implementation of the SSV runtime state
 * machine, used for the hardware-cost study of Sec. VI-D: the paper
 * reports ~700 32-bit fixed-point operations and ~2.6 KB of storage
 * per invocation for N=20, I=4, O=4, E=3.
 */

#include <cstdint>
#include <vector>

#include "control/state_space.h"
#include "linalg/vector.h"

namespace yukta::controllers {

class BatchRuntime;

/** Q16.16 fixed-point SSV state machine. */
class FixedPointSsv
{
  public:
    /** Quantizes the controller matrices into Q16.16. */
    explicit FixedPointSsv(const control::StateSpace& k);

    static constexpr int kFracBits = 16;

    /** Converts a double to Q16.16 (saturating). */
    static std::int32_t toFixed(double v);

    /** Converts Q16.16 back to double. */
    static double fromFixed(std::int32_t v);

    /** Shape accessors: states, dy inputs, and u outputs. */
    std::size_t numStates() const { return n_; }
    std::size_t numInputsDy() const { return m_; }
    std::size_t numOutputsU() const { return p_; }

    /**
     * One invocation of Eqs. 3-4 in fixed point.
     * @param dy deviations + external signals, Q16.16, size m.
     * @return inputs u, Q16.16, size p.
     */
    std::vector<std::int32_t> step(const std::vector<std::int32_t>& dy);

    /**
     * First half of step(): validates and stages @p dy without
     * advancing the state. Pair with finishStep(); a BatchRuntime may
     * run the integer passes for many staged machines in one batched
     * sweep in between.
     */
    void beginStep(const std::vector<std::int32_t>& dy);

    /**
     * Second half of step(): advances over the staged dy (unless a
     * BatchRuntime already did) and returns u. Identical to the
     * monolithic step() either way (integer arithmetic is exact).
     * @throws std::logic_error without a prior beginStep().
     */
    std::vector<std::int32_t> finishStep();

    /**
     * Fingerprint of the quantized matrices: machines with equal keys
     * may tick through one batched pass.
     */
    std::uint64_t batchKey() const { return batch_key_; }

    /** Convenience double-in / double-out wrapper. */
    linalg::Vector stepDouble(const linalg::Vector& dy);

    /** Resets the state vector. */
    void reset();

    /**
     * Multiply-accumulate operations per invocation:
     * (N + I) * (N + O + E) MACs.
     */
    std::size_t macsPerInvocation() const;

    /** Total ops counting multiplies and adds separately. */
    std::size_t opsPerInvocation() const { return 2 * macsPerInvocation(); }

    /** Bytes of matrix + state storage (32-bit words). */
    std::size_t storageBytes() const;

  private:
    friend class BatchRuntime;

    std::size_t n_;  ///< States.
    std::size_t m_;  ///< dy width (O + E).
    std::size_t p_;  ///< u width (I).
    std::vector<std::int32_t> a_, b_, c_, d_;  ///< Row-major Q16.16.
    std::vector<std::int32_t> x_;
    std::uint64_t batch_key_ = 0;

    // Staged step (beginStep -> [batch] -> finishStep).
    std::vector<std::int32_t> pending_dy_;
    std::vector<std::int32_t> pending_u_;
    bool has_pending_ = false;
    bool linear_done_ = false;
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_FIXED_POINT_H_
