#include "controllers/optimizer.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/contracts.h"
#include "obs/trace.h"

namespace yukta::controllers {

ExdOptimizer::ExdOptimizer(OptimizerConfig cfg) : cfg_(std::move(cfg))
{
    std::size_t n = cfg_.initial.size();
    if (cfg_.min.size() != n || cfg_.max.size() != n ||
        cfg_.role.size() != n || cfg_.step.size() != n || n == 0) {
        throw std::invalid_argument("ExdOptimizer: config size mismatch");
    }
    if (cfg_.periods_per_move < 1) {
        throw std::invalid_argument("ExdOptimizer: bad periods_per_move");
    }
    targets_ = linalg::Vector(cfg_.initial);
    channel_dir_.assign(cfg_.initial.size(), +1);
}

void
ExdOptimizer::applyMove(const linalg::Vector& measured)
{
    if (cfg_.coordinate) {
        // Re-anchor every target, then displace a single channel.
        for (std::size_t i = 0; i < targets_.size(); ++i) {
            double base = i < measured.size() ? measured[i] : targets_[i];
            switch (cfg_.role[i]) {
              case TargetRole::kFixed:
                targets_[i] = cfg_.initial[i];
                break;
              case TargetRole::kCeiling:
                targets_[i] = std::clamp(base, cfg_.min[i], cfg_.max[i]);
                break;
              default:
                targets_[i] = std::clamp(base, cfg_.min[i], cfg_.max[i]);
                break;
            }
        }
        // Pick the next walkable channel.
        std::size_t n = targets_.size();
        for (std::size_t tries = 0; tries < n; ++tries) {
            std::size_t i = next_channel_;
            next_channel_ = (next_channel_ + 1) % n;
            if (cfg_.role[i] != TargetRole::kMaximize &&
                cfg_.role[i] != TargetRole::kBudget) {
                continue;
            }
            double base = i < measured.size() ? measured[i] : targets_[i];
            double delta = channel_dir_[i] * cfg_.step[i];
            targets_[i] =
                std::clamp(base + delta, cfg_.min[i], cfg_.max[i]);
            last_channel_ = static_cast<int>(i);
            break;
        }
        ++moves_;
        return;
    }
    // Targets are re-anchored at the measured operating point and
    // displaced in the current direction. Asymmetric steps per
    // Sec. IV-D: advancing raises perf a lot / budgets a little;
    // retreating lowers perf a little / budgets a lot.
    for (std::size_t i = 0; i < targets_.size(); ++i) {
        double base =
            i < measured.size() ? measured[i] : targets_[i];
        double delta = 0.0;
        switch (cfg_.role[i]) {
          case TargetRole::kMaximize:
            delta = direction_ > 0 ? cfg_.step[i] : -0.4 * cfg_.step[i];
            break;
          case TargetRole::kBudget:
            delta = direction_ > 0 ? 0.4 * cfg_.step[i] : -cfg_.step[i];
            break;
          case TargetRole::kFixed:
            targets_[i] = cfg_.initial[i];
            continue;
          case TargetRole::kCeiling:
            targets_[i] = std::clamp(base, cfg_.min[i], cfg_.max[i]);
            continue;
        }
        targets_[i] = std::clamp(base + delta, cfg_.min[i], cfg_.max[i]);
    }
    ++moves_;
}

const linalg::Vector&
ExdOptimizer::update(double exd_metric, const linalg::Vector& measured)
{
    YUKTA_CHECK_FINITE(exd_metric, "ExdOptimizer: non-finite E*D metric");
    YUKTA_CHECK_FINITE(measured, "ExdOptimizer: non-finite measurement");
    // Smooth the metric and the operating-point anchor: workload
    // phases make the instantaneous Power/Perf^2 noisy, and anchoring
    // moves on momentary spikes would let the walk chase its own
    // transients.
    ema_metric_ = ema_metric_ < 0.0
                      ? exd_metric
                      : 0.7 * ema_metric_ + 0.3 * exd_metric;
    if (!have_anchor_) {
        ema_measured_ = measured;
        have_anchor_ = true;
    } else {
        for (std::size_t i = 0;
             i < ema_measured_.size() && i < measured.size(); ++i) {
            ema_measured_[i] = (1.0 - cfg_.anchor_alpha) * ema_measured_[i] +
                               cfg_.anchor_alpha * measured[i];
        }
    }

    if (++period_count_ < cfg_.periods_per_move) {
        return targets_;
    }
    period_count_ = 0;

    bool reversed = false;
    if (last_metric_ >= 0.0 && ema_metric_ > 1.02 * last_metric_) {
        // The last move hurt: flip direction (the re-anchoring to the
        // measured outputs discards the move itself).
        direction_ = -direction_;
        if (cfg_.coordinate && last_channel_ >= 0) {
            channel_dir_[last_channel_] = -channel_dir_[last_channel_];
        }
        ++reversals_;
        ++recent_reversals_;
        reversed = true;
        if (recent_reversals_ >= 2 && converged_at_ < 0) {
            converged_at_ = moves_;
        }
    } else if (last_metric_ >= 0.0) {
        recent_reversals_ = std::max(0, recent_reversals_ - 1);
    }
    last_metric_ = ema_metric_;
    applyMove(ema_measured_);
    if (trace_ != nullptr) {
        obs::TraceEvent ev = trace_->makeEvent(trace_layer_, "opt_move");
        ev.num("metric", ema_metric_)
            .integer("direction", direction_)
            .integer("channel", last_channel_)
            .integer("reversed", reversed ? 1 : 0)
            .integer("move", moves_)
            .vec("targets", targets_.raw());
        trace_->record(std::move(ev));
    }
    return targets_;
}

void
ExdOptimizer::attachTrace(obs::TraceSink* sink, std::string layer)
{
    trace_ = sink;
    trace_layer_ = std::move(layer);
}

void
ExdOptimizer::reset()
{
    targets_ = linalg::Vector(cfg_.initial);
    ema_measured_ = linalg::Vector();
    have_anchor_ = false;
    direction_ = +1;
    last_metric_ = -1.0;
    ema_metric_ = -1.0;
    period_count_ = 0;
    moves_ = 0;
    reversals_ = 0;
    recent_reversals_ = 0;
    converged_at_ = -1;
    channel_dir_.assign(cfg_.initial.size(), +1);
    next_channel_ = 0;
    last_channel_ = -1;
}

void
ExdOptimizer::save(obs::StateWriter& w) const
{
    w.f64vec("opt.targets", targets_.raw());
    w.f64vec("opt.ema_measured", ema_measured_.raw());
    w.boolean("opt.have_anchor", have_anchor_);
    w.i64("opt.direction", direction_);
    std::vector<long long> dirs(channel_dir_.begin(), channel_dir_.end());
    w.i64vec("opt.channel_dir", dirs);
    w.u64("opt.next_channel", next_channel_);
    w.i64("opt.last_channel", last_channel_);
    w.f64("opt.last_metric", last_metric_);
    w.f64("opt.ema_metric", ema_metric_);
    w.i64("opt.period_count", period_count_);
    w.i64("opt.moves", moves_);
    w.i64("opt.reversals", reversals_);
    w.i64("opt.recent_reversals", recent_reversals_);
    w.i64("opt.converged_at", converged_at_);
}

void
ExdOptimizer::load(obs::StateReader& r)
{
    targets_ = linalg::Vector(r.f64vec("opt.targets"));
    ema_measured_ = linalg::Vector(r.f64vec("opt.ema_measured"));
    have_anchor_ = r.boolean("opt.have_anchor");
    direction_ = static_cast<int>(r.i64("opt.direction"));
    const auto dirs = r.i64vec("opt.channel_dir");
    channel_dir_.assign(dirs.begin(), dirs.end());
    next_channel_ = r.u64("opt.next_channel");
    last_channel_ = static_cast<int>(r.i64("opt.last_channel"));
    last_metric_ = r.f64("opt.last_metric");
    ema_metric_ = r.f64("opt.ema_metric");
    period_count_ = static_cast<int>(r.i64("opt.period_count"));
    moves_ = static_cast<int>(r.i64("opt.moves"));
    reversals_ = static_cast<int>(r.i64("opt.reversals"));
    recent_reversals_ = static_cast<int>(r.i64("opt.recent_reversals"));
    converged_at_ = static_cast<int>(r.i64("opt.converged_at"));
}

}  // namespace yukta::controllers
