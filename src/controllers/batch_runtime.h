#ifndef YUKTA_CONTROLLERS_BATCH_RUNTIME_H_
#define YUKTA_CONTROLLERS_BATCH_RUNTIME_H_

/**
 * @file
 * Batched tick engine: advances N staged controller runtimes that
 * share one shape-class (bit-identical (A, B, C, D)) with one
 * cache-blocked matrix-matrix pass per tick instead of N independent
 * matrix-vector passes.
 *
 * States are packed structure-of-arrays: for each group the engine
 * gathers the members' state vectors as columns of an n x N block,
 * the staged inputs as an m x N block, runs four gemmDense passes
 * (C*X, D*DY, A*X, B*DY), and scatters u = CX + DDY and
 * x' = AX + BDY back per member.
 *
 * Bit-identity contract (see DESIGN.md "Batched tick engine"): the
 * batched pass reproduces control::stepOnce exactly because
 *  1. each output element is accumulated over k ascending from +0.0
 *     with no terms skipped (gemmDense mirrors Matrix*Vector, which
 *     has no sparsity skip),
 *  2. C*X and D*DY are two separate reductions combined by a single
 *     final elementwise add (never one fused accumulation), and
 *  3. the state update reads the packed OLD state, exactly like
 *     stepOnce's evaluation of A x(T) before x is overwritten.
 * Columns never mix, so one member's non-finite state cannot
 * contaminate its neighbors, and the per-instance YUKTA_CHECK_FINITE
 * contracts still fire in each runtime's finishInvoke.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "control/state_space.h"
#include "controllers/fixed_point.h"
#include "controllers/lqg_runtime.h"
#include "controllers/ssv_runtime.h"
#include "linalg/vector.h"

namespace yukta::controllers {

namespace batch_detail {

/** FNV-1a over raw bytes, chainable via @p seed. */
std::uint64_t fnv1aBytes(const void* data, std::size_t len,
                         std::uint64_t seed = 14695981039346656037ULL);

/** Fingerprint of a state-space system's shape and matrix bytes. */
std::uint64_t stateSpaceKey(const control::StateSpace& k);

/** Fingerprint of a quantized (Q16.16) SSV state machine. */
std::uint64_t fixedPointKey(std::size_t n, std::size_t m, std::size_t p,
                            const std::vector<std::int32_t>& a,
                            const std::vector<std::int32_t>& b,
                            const std::vector<std::int32_t>& c,
                            const std::vector<std::int32_t>& d);

}  // namespace batch_detail

/**
 * Holds staged runtimes between their beginInvoke and finishInvoke
 * halves and ticks all members of each shape-class group with one
 * blocked matrix-matrix pass. Grouping is by fingerprint plus a deep
 * byte-compare of the matrices, so a (vanishingly unlikely) hash
 * collision degrades to an extra group, never to a wrong answer.
 *
 * Workspaces are preallocated and reused across ticks; the queue is
 * cleared after every tick().
 */
class BatchRuntime
{
  public:
    /**
     * Stages a runtime whose beginInvoke has run but whose linear
     * pass has not. @throws std::logic_error otherwise.
     */
    void enqueue(SsvRuntime& rt);
    void enqueue(LqgRuntime& rt);

    /** Stages a fixed-point state machine after beginStep. */
    void enqueue(FixedPointSsv& fp);

    /**
     * Advances every staged runtime (grouped by shape-class) and
     * clears the queue. Each member's linear output lands in its
     * pending slot, so its finishInvoke consumes the batched result
     * instead of re-running the scalar pass.
     */
    void tick();

    /** Staged runtimes since the last tick(). */
    std::size_t pendingCount() const;

    /** Shape-class groups currently staged. */
    std::size_t groupCount() const
    {
        return float_groups_.size() + fixed_groups_.size();
    }

  private:
    struct FloatMember
    {
        linalg::Vector* x;        ///< Member state (read old, write new).
        const linalg::Vector* dy; ///< Staged input.
        linalg::Vector* u;        ///< Pending linear output slot.
        bool* done;               ///< Member's linear_done_ flag.
    };

    struct FloatGroup
    {
        std::uint64_t key = 0;
        const control::StateSpace* sys = nullptr;
        std::vector<FloatMember> members;
    };

    struct FixedMember
    {
        std::vector<std::int32_t>* x;
        const std::vector<std::int32_t>* dy;
        std::vector<std::int32_t>* u;
        bool* done;
    };

    struct FixedGroup
    {
        std::uint64_t key = 0;
        const FixedPointSsv* ref = nullptr;
        std::vector<FixedMember> members;
    };

    void enqueueFloat(std::uint64_t key, const control::StateSpace& sys,
                      FloatMember member);
    void tickFloatGroup(const FloatGroup& g);
    void tickFixedGroup(const FixedGroup& g);

    std::vector<FloatGroup> float_groups_;
    std::vector<FixedGroup> fixed_groups_;

    // Reused SoA workspaces (sized on demand, never shrunk).
    std::vector<double> xpack_, dypack_, u_cx_, u_ddy_, xn_ax_, xn_bdy_;
    std::vector<std::int32_t> fxpack_, fdypack_, fu_, fxn_;
    std::vector<std::int64_t> facc_;
};

}  // namespace yukta::controllers

#endif  // YUKTA_CONTROLLERS_BATCH_RUNTIME_H_
