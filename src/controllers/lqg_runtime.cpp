#include "controllers/lqg_runtime.h"

#include <cmath>
#include <stdexcept>

#include "controllers/batch_runtime.h"
#include "core/contracts.h"

namespace yukta::controllers {

using linalg::Vector;

LqgRuntime::LqgRuntime(control::StateSpace k, std::vector<InputGrid> grids,
                       Vector u_mean)
    : k_(std::move(k)), grids_(std::move(grids)), u_mean_(std::move(u_mean))
{
    if (grids_.size() != k_.numOutputs() ||
        u_mean_.size() != k_.numOutputs()) {
        throw std::invalid_argument("LqgRuntime: grid size mismatch");
    }
    x_ = Vector::zeros(k_.numStates());
    batch_key_ = batch_detail::stateSpaceKey(k_);
}

Vector
LqgRuntime::invoke(const Vector& deviations, LqgInvokeInfo* info)
{
    beginInvoke(deviations);
    return finishInvoke(info);
}

void
LqgRuntime::beginInvoke(const Vector& deviations)
{
    if (deviations.size() != k_.numInputs()) {
        throw std::invalid_argument("LqgRuntime::invoke: size mismatch");
    }
    YUKTA_CHECK_FINITE(deviations, "LqgRuntime::invoke: non-finite "
                       "deviation input");
    // The LQG regulator drives its measurement to zero; feeding the
    // negated deviation (y - r) makes it a tracker.
    Vector y_in(deviations.size());
    for (std::size_t i = 0; i < deviations.size(); ++i) {
        y_in[i] = -deviations[i];
    }
    pending_dy_ = std::move(y_in);
    has_pending_ = true;
    linear_done_ = false;
}

Vector
LqgRuntime::finishInvoke(LqgInvokeInfo* info)
{
    if (!has_pending_) {
        throw std::logic_error(
            "LqgRuntime::finishInvoke: no staged invocation");
    }
    has_pending_ = false;
    if (!linear_done_) {
        pending_u_ = control::stepOnce(k_, x_, pending_dy_);
        linear_done_ = true;
    }
    const Vector& u_raw = pending_u_;
    YUKTA_CHECK_FINITE(x_, "LqgRuntime: controller state poisoned after "
                       "x(T+1) = A x(T) + B dy(T)");

    ++total_moves_;
    if (info != nullptr) {
        info->x = x_;
        info->u_raw = Vector(grids_.size());
        info->saturated.assign(grids_.size(), 0);
    }
    bool wasted = false;
    Vector out(grids_.size());
    for (std::size_t i = 0; i < grids_.size(); ++i) {
        double cmd = u_raw[i] + u_mean_[i];
        double range = grids_[i].max - grids_[i].min;
        if (cmd > grids_[i].max + 0.05 * range ||
            cmd < grids_[i].min - 0.05 * range) {
            // Command beyond the physical limit: the actuator clamps,
            // the output does not change as the controller expected,
            // and the move is wasted (Sec. VI-B's bodytrack anecdote).
            wasted = true;
        }
        out[i] = grids_[i].quantize(cmd);
        if (info != nullptr) {
            info->u_raw[i] = cmd;
            info->saturated[i] =
                cmd < grids_[i].min || cmd > grids_[i].max ? 1 : 0;
        }
    }
    if (wasted) {
        ++wasted_moves_;
    }
    return out;
}

void
LqgRuntime::reset()
{
    x_ = Vector::zeros(k_.numStates());
    wasted_moves_ = 0;
    total_moves_ = 0;
}

}  // namespace yukta::controllers
