#include "controllers/fixed_point.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "controllers/batch_runtime.h"
#include "core/contracts.h"

namespace yukta::controllers {

namespace {

std::vector<std::int32_t>
quantizeMatrix(const linalg::Matrix& m)
{
    std::vector<std::int32_t> out(m.rows() * m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            out[r * m.cols() + c] = FixedPointSsv::toFixed(m(r, c));
        }
    }
    return out;
}

}  // namespace

FixedPointSsv::FixedPointSsv(const control::StateSpace& k)
    : n_(k.numStates()), m_(k.numInputs()), p_(k.numOutputs()),
      a_(quantizeMatrix(k.a)), b_(quantizeMatrix(k.b)),
      c_(quantizeMatrix(k.c)), d_(quantizeMatrix(k.d)),
      x_(n_, 0)
{
    batch_key_ = batch_detail::fixedPointKey(n_, m_, p_, a_, b_, c_, d_);
}

std::int32_t
FixedPointSsv::toFixed(double v)
{
    YUKTA_CHECK_FINITE(v, "FixedPointSsv::toFixed: quantizing a "
                       "non-finite value");
    double scaled = v * static_cast<double>(1 << kFracBits);
    scaled = std::clamp(scaled, -2147483648.0, 2147483647.0);
    return static_cast<std::int32_t>(std::llround(scaled));
}

double
FixedPointSsv::fromFixed(std::int32_t v)
{
    return static_cast<double>(v) / static_cast<double>(1 << kFracBits);
}

std::vector<std::int32_t>
FixedPointSsv::step(const std::vector<std::int32_t>& dy)
{
    beginStep(dy);
    return finishStep();
}

void
FixedPointSsv::beginStep(const std::vector<std::int32_t>& dy)
{
    if (dy.size() != m_) {
        throw std::invalid_argument("FixedPointSsv::step: size mismatch");
    }
    pending_dy_ = dy;
    has_pending_ = true;
    linear_done_ = false;
}

std::vector<std::int32_t>
FixedPointSsv::finishStep()
{
    if (!has_pending_) {
        throw std::logic_error("FixedPointSsv::finishStep: no staged step");
    }
    has_pending_ = false;
    if (linear_done_) {
        return pending_u_;
    }
    linear_done_ = true;
    const std::vector<std::int32_t>& dy = pending_dy_;
    // u = C x + D dy (64-bit accumulators, one shift per output).
    std::vector<std::int32_t> u(p_);
    for (std::size_t i = 0; i < p_; ++i) {
        std::int64_t acc = 0;
        for (std::size_t j = 0; j < n_; ++j) {
            acc += static_cast<std::int64_t>(c_[i * n_ + j]) * x_[j];
        }
        for (std::size_t j = 0; j < m_; ++j) {
            acc += static_cast<std::int64_t>(d_[i * m_ + j]) * dy[j];
        }
        u[i] = static_cast<std::int32_t>(acc >> kFracBits);
    }
    // x = A x + B dy.
    std::vector<std::int32_t> xn(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        std::int64_t acc = 0;
        for (std::size_t j = 0; j < n_; ++j) {
            acc += static_cast<std::int64_t>(a_[i * n_ + j]) * x_[j];
        }
        for (std::size_t j = 0; j < m_; ++j) {
            acc += static_cast<std::int64_t>(b_[i * m_ + j]) * dy[j];
        }
        xn[i] = static_cast<std::int32_t>(acc >> kFracBits);
    }
    x_ = std::move(xn);
    return u;
}

linalg::Vector
FixedPointSsv::stepDouble(const linalg::Vector& dy)
{
    std::vector<std::int32_t> fixed(dy.size());
    for (std::size_t i = 0; i < dy.size(); ++i) {
        fixed[i] = toFixed(dy[i]);
    }
    std::vector<std::int32_t> u = step(fixed);
    linalg::Vector out(u.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
        out[i] = fromFixed(u[i]);
    }
    return out;
}

void
FixedPointSsv::reset()
{
    std::fill(x_.begin(), x_.end(), 0);
}

std::size_t
FixedPointSsv::macsPerInvocation() const
{
    return (n_ + p_) * (n_ + m_);
}

std::size_t
FixedPointSsv::storageBytes() const
{
    // Matrices + state vector, 4 bytes per 32-bit word.
    std::size_t words =
        a_.size() + b_.size() + c_.size() + d_.size() + x_.size();
    return 4 * words;
}

}  // namespace yukta::controllers
