#include "platform/workload.h"

#include <stdexcept>

namespace yukta::platform {

double
AppModel::totalWork() const
{
    double total = 0.0;
    for (const AppPhase& p : phases) {
        total += p.work_per_thread * static_cast<double>(p.num_threads);
    }
    return total;
}

Workload::Workload(std::vector<AppModel> apps)
{
    if (apps.empty()) {
        throw std::invalid_argument("Workload: no applications");
    }
    for (AppModel& app : apps) {
        if (app.phases.empty()) {
            throw std::invalid_argument("Workload: app without phases");
        }
        Instance inst;
        inst.app = std::move(app);
        instances_.push_back(std::move(inst));
    }
    for (Instance& inst : instances_) {
        startPhase(inst);
    }
}

Workload::Workload(AppModel app) : Workload(std::vector<AppModel>{std::move(app)})
{
}

void
Workload::startPhase(Instance& inst)
{
    const AppPhase& phase = inst.app.phases[inst.phase];
    inst.threads.assign(phase.num_threads, ThreadState{});
    for (ThreadState& t : inst.threads) {
        t.remaining = phase.work_per_thread;
        t.at_barrier = false;
    }
    ++version_;
}

void
Workload::maybeAdvancePhase(Instance& inst)
{
    if (inst.finished) {
        return;
    }
    const AppPhase& phase = inst.app.phases[inst.phase];
    bool all_done = true;
    for (const ThreadState& t : inst.threads) {
        if (t.remaining > 0.0) {
            all_done = false;
            break;
        }
    }
    if (!phase.barrier) {
        // Independent copies: a finished thread simply disappears
        // (version bump happens in retire()).
        if (!all_done) {
            return;
        }
    } else if (!all_done) {
        return;
    }
    if (inst.phase + 1 < inst.app.phases.size()) {
        ++inst.phase;
        startPhase(inst);
    } else {
        inst.finished = true;
        inst.threads.clear();
        ++version_;
    }
}

std::size_t
Workload::numRunnableThreads() const
{
    std::size_t n = 0;
    for (const Instance& inst : instances_) {
        for (const ThreadState& t : inst.threads) {
            if (t.remaining > 0.0) {
                ++n;
            }
        }
    }
    return n;
}

std::pair<std::size_t, std::size_t>
Workload::locate(std::size_t i) const
{
    std::size_t idx = 0;
    for (std::size_t ii = 0; ii < instances_.size(); ++ii) {
        const Instance& inst = instances_[ii];
        for (std::size_t ti = 0; ti < inst.threads.size(); ++ti) {
            if (inst.threads[ti].remaining > 0.0) {
                if (idx == i) {
                    return {ii, ti};
                }
                ++idx;
            }
        }
    }
    throw std::out_of_range("Workload: bad runnable thread index");
}

ThreadInfo
Workload::threadInfo(std::size_t i) const
{
    auto [ii, ti] = locate(i);
    (void)ti;
    const Instance& inst = instances_[ii];
    const AppPhase& phase = inst.app.phases[inst.phase];
    ThreadInfo info;
    info.ipc_big = inst.app.ipc_big;
    info.ipc_little = inst.app.ipc_little;
    info.mem_boundness = phase.mem_boundness;
    info.activity = phase.activity;
    info.barrier_coupling = phase.barrier ? phase.barrier_coupling : 0.0;
    info.instance = ii;
    return info;
}

void
Workload::retire(std::size_t i, double giga_instr)
{
    if (giga_instr < 0.0) {
        throw std::invalid_argument("Workload::retire: negative work");
    }
    auto [ii, ti] = locate(i);
    Instance& inst = instances_[ii];
    ThreadState& t = inst.threads[ti];
    t.remaining -= giga_instr;
    if (t.remaining <= 0.0) {
        t.remaining = 0.0;
        t.at_barrier = true;
        ++version_;  // runnable set changed
        maybeAdvancePhase(inst);
    }
}

bool
Workload::done() const
{
    for (const Instance& inst : instances_) {
        if (!inst.finished) {
            return false;
        }
    }
    return true;
}

double
Workload::workRemaining() const
{
    double total = 0.0;
    for (const Instance& inst : instances_) {
        for (const ThreadState& t : inst.threads) {
            total += t.remaining;
        }
        // Future phases.
        for (std::size_t p = inst.phase + 1; p < inst.app.phases.size();
             ++p) {
            if (!inst.finished) {
                const AppPhase& ph = inst.app.phases[p];
                total += ph.work_per_thread *
                         static_cast<double>(ph.num_threads);
            }
        }
    }
    return total;
}

std::string
Workload::name() const
{
    std::string out;
    for (const Instance& inst : instances_) {
        if (!out.empty()) {
            out += "+";
        }
        out += inst.app.name;
    }
    return out;
}

void
Workload::save(obs::StateWriter& w) const
{
    w.u64("workload.instances", instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        const Instance& inst = instances_[i];
        const std::string p = "workload.i" + std::to_string(i);
        w.u64(p + ".phase", inst.phase);
        w.boolean(p + ".finished", inst.finished);
        w.u64(p + ".threads", inst.threads.size());
        for (std::size_t t = 0; t < inst.threads.size(); ++t) {
            const std::string tp = p + ".t" + std::to_string(t);
            w.f64(tp + ".remaining", inst.threads[t].remaining);
            w.boolean(tp + ".at_barrier", inst.threads[t].at_barrier);
        }
    }
    w.u64("workload.version", version_);
}

void
Workload::load(obs::StateReader& r)
{
    if (r.u64("workload.instances") != instances_.size()) {
        throw std::runtime_error(
            "Workload::load: instance count mismatch");
    }
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        Instance& inst = instances_[i];
        const std::string p = "workload.i" + std::to_string(i);
        inst.phase = r.u64(p + ".phase");
        inst.finished = r.boolean(p + ".finished");
        inst.threads.resize(r.u64(p + ".threads"));
        for (std::size_t t = 0; t < inst.threads.size(); ++t) {
            const std::string tp = p + ".t" + std::to_string(t);
            inst.threads[t].remaining = r.f64(tp + ".remaining");
            inst.threads[t].at_barrier = r.boolean(tp + ".at_barrier");
        }
    }
    version_ = r.u64("workload.version");
}

}  // namespace yukta::platform
