#include "platform/board.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace yukta::platform {

namespace {

/** Per-thread execution rate in giga-instructions per second. */
double
threadRate(const ThreadInfo& info, ClusterId cluster, double freq,
           std::size_t sharers)
{
    // Roofline-ish: time per (normalized) instruction is a core part
    // scaling with 1/f plus a memory part pinned to the 1 GHz-
    // equivalent memory subsystem.
    double m = std::clamp(info.mem_boundness, 0.0, 0.95);
    double rate_ghz = 1.0 / ((1.0 - m) / freq + m / 1.0);
    double ipc =
        cluster == ClusterId::kBig ? info.ipc_big : info.ipc_little;
    double share =
        sharers > 0 ? 1.0 / static_cast<double>(sharers) : 0.0;
    // Small multiplexing overhead per extra thread on the core.
    double mux = std::pow(0.97, static_cast<double>(sharers - 1));
    return ipc * rate_ghz * share * mux;
}

}  // namespace

Board::Board(BoardConfig cfg, Workload workload, std::uint32_t seed)
    : cfg_(cfg), dvfs_big_(cfg.big), dvfs_little_(cfg.little),
      power_big_(cfg.big, dvfs_big_), power_little_(cfg.little, dvfs_little_),
      thermal_(cfg.thermal), sensors_(cfg.sensors, cfg.thermal.ambient, seed),
      tmu_(cfg.tmu, cfg_, dvfs_big_, dvfs_little_),
      workload_(std::move(workload))
{
    requested_.big_cores = cfg_.big.num_cores;
    requested_.little_cores = cfg_.little.num_cores;
    requested_.freq_big = dvfs_big_.maxFreq();
    requested_.freq_little = dvfs_little_.maxFreq();
    refreshApplied();
    refreshPlacement(true);
}

void
Board::applyHardwareInputs(const HardwareInputs& in)
{
    // A non-finite frequency request is rejected field-wise and the
    // previous setting kept, the way a sysfs write of garbage fails
    // with -EINVAL and leaves the governor untouched. This keeps the
    // platform NaN-free even when an (unsupervised) controller was
    // poisoned by corrupted telemetry.
    HardwareInputs want = in;
    if (!std::isfinite(want.freq_big)) {
        want.freq_big = requested_.freq_big;
        ++rejected_inputs_;
    }
    if (!std::isfinite(want.freq_little)) {
        want.freq_little = requested_.freq_little;
        ++rejected_inputs_;
    }
    requested_ = want;
    // Quantize/clamp like cpufreq + hotplug would.
    requested_.big_cores =
        std::clamp<std::size_t>(want.big_cores, 1, cfg_.big.num_cores);
    requested_.little_cores =
        std::clamp<std::size_t>(want.little_cores, 1,
                                cfg_.little.num_cores);
    requested_.freq_big = dvfs_big_.quantize(want.freq_big);
    requested_.freq_little = dvfs_little_.quantize(want.freq_little);
    refreshApplied();
    refreshPlacement(true);
    migration_stall_left_ = cfg_.migration_stall;
}

void
Board::applyPlacementPolicy(const PlacementPolicy& policy)
{
    // Same rejection rule as applyHardwareInputs: placeThreads rounds
    // and casts the policy knobs, so letting a NaN through would be
    // undefined behavior, not just a bad placement.
    PlacementPolicy want = policy;
    if (!std::isfinite(want.threads_big)) {
        want.threads_big = policy_.threads_big;
        ++rejected_inputs_;
    }
    if (!std::isfinite(want.tpc_big)) {
        want.tpc_big = policy_.tpc_big;
        ++rejected_inputs_;
    }
    if (!std::isfinite(want.tpc_little)) {
        want.tpc_little = policy_.tpc_little;
        ++rejected_inputs_;
    }
    policy_ = want;
    refreshPlacement(true);
    migration_stall_left_ = cfg_.migration_stall;
}

SensorReadings
Board::readings() const
{
    SensorReadings r;
    r.p_big = sensors_.powerBig();
    r.p_little = sensors_.powerLittle();
    r.temp = sensors_.temperature();
    r.instr_big = counters_.instr_big;
    r.instr_little = counters_.instr_little;
    return r;
}

void
Board::refreshApplied()
{
    const EmergencyCaps& caps = tmu_.caps();
    applied_ = requested_;
    applied_.big_cores = std::min(applied_.big_cores, caps.max_big_cores);
    applied_.big_cores = std::max<std::size_t>(applied_.big_cores, 1);
    applied_.freq_big = dvfs_big_.quantize(
        std::min(requested_.freq_big, caps.freq_cap_big));
    applied_.freq_little = dvfs_little_.quantize(
        std::min(requested_.freq_little, caps.freq_cap_little));
}

void
Board::refreshPlacement(bool force)
{
    std::size_t version = workload_.placementVersion();
    if (!force && version == placement_version_) {
        return;
    }
    placement_version_ = version;
    std::size_t threads = workload_.numRunnableThreads();
    placement_ = placeThreads(policy_, threads, applied_.big_cores,
                              applied_.little_cores);
}

double
Board::spareCompute(ClusterId c) const
{
    std::size_t on = c == ClusterId::kBig ? applied_.big_cores
                                          : applied_.little_cores;
    return platform::spareCompute(placement_, c, on);
}

void
Board::enableTrace(double interval)
{
    if (interval <= 0.0) {
        throw std::invalid_argument("Board::enableTrace: bad interval");
    }
    trace_interval_ = interval;
    trace_timer_ = 0.0;
    trace_instr_mark_ = counters_.total();
}

void
Board::run(double seconds)
{
    long steps = std::lround(seconds / cfg_.time_step);
    for (long i = 0; i < steps && !done(); ++i) {
        stepOnce();
    }
}

void
Board::stepOnce()
{
    double dt = cfg_.time_step;
    refreshPlacement(false);

    // --- Execute threads for dt. ---
    std::size_t threads = workload_.numRunnableThreads();
    double stall_factor = migration_stall_left_ > 0.0 ? 0.2 : 1.0;
    migration_stall_left_ = std::max(0.0, migration_stall_left_ - dt);

    // Pass 1: natural execution rate per thread from its core
    // assignment.
    std::size_t nmap = std::min(threads, placement_.thread_cluster.size());
    rate_scratch_.assign(nmap, 0.0);
    info_scratch_.clear();
    double min_rate_per_instance[16];
    for (int i = 0; i < 16; ++i) {
        min_rate_per_instance[i] = 1e300;
    }
    for (std::size_t t = 0; t < nmap; ++t) {
        ClusterId c = placement_.thread_cluster[t];
        std::size_t core = placement_.thread_core[t];
        std::size_t sharers =
            c == ClusterId::kBig
                ? placement_.big_core_threads[core]
                : placement_.little_core_threads[core];
        double f = c == ClusterId::kBig ? applied_.freq_big
                                        : applied_.freq_little;
        ThreadInfo info = workload_.threadInfo(t);
        double rate = threadRate(info, c, f, sharers) * stall_factor;
        rate_scratch_[t] = rate;
        info_scratch_.push_back(info);
        std::size_t inst = info.instance < 16 ? info.instance : 15;
        if (info.barrier_coupling > 0.0) {
            min_rate_per_instance[inst] =
                std::min(min_rate_per_instance[inst], rate);
        }
    }

    // Pass 2: iteration-level barriers drag coupled threads toward
    // their slowest sibling, then retire the work.
    double instr_big = 0.0;
    double instr_little = 0.0;
    for (std::size_t t = 0; t < nmap; ++t) {
        const ThreadInfo& info = info_scratch_[t];
        double rate = rate_scratch_[t];
        if (info.barrier_coupling > 0.0) {
            std::size_t inst = info.instance < 16 ? info.instance : 15;
            double slowest = min_rate_per_instance[inst];
            if (slowest < rate) {
                rate = (1.0 - info.barrier_coupling) * rate +
                       info.barrier_coupling * slowest;
            }
        }
        double work = rate * dt;  // giga-instructions this step
        if (placement_.thread_cluster[t] == ClusterId::kBig) {
            instr_big += work;
        } else {
            instr_little += work;
        }
        workload_.retire(t, work);
        if (workload_.placementVersion() != placement_version_) {
            // Phase change mid-step: stop executing with a stale map.
            refreshPlacement(false);
            break;
        }
    }
    counters_.instr_big += instr_big;
    counters_.instr_little += instr_little;

    // --- Power. ---
    auto clusterUtil = [](const std::vector<std::size_t>& per_core) {
        if (per_core.empty()) {
            return 0.0;
        }
        double u = 0.0;
        for (std::size_t n : per_core) {
            u += n > 0 ? 1.0 : 0.05;  // idle-but-on cores sip power
        }
        return u / static_cast<double>(per_core.size());
    };
    auto clusterActivity = [&](ClusterId c) {
        // Average workload activity over threads on the cluster.
        double sum = 0.0;
        std::size_t n = 0;
        for (std::size_t t = 0; t < threads &&
                                t < placement_.thread_cluster.size();
             ++t) {
            if (placement_.thread_cluster[t] == c) {
                sum += workload_.threadInfo(t).activity;
                ++n;
            }
        }
        return n > 0 ? sum / static_cast<double>(n) : 1.0;
    };

    ClusterActivity act_big;
    act_big.cores_on = applied_.big_cores;
    act_big.freq = applied_.freq_big;
    act_big.avg_utilization = clusterUtil(placement_.big_core_threads);
    act_big.activity = clusterActivity(ClusterId::kBig);

    ClusterActivity act_little;
    act_little.cores_on = applied_.little_cores;
    act_little.freq = applied_.freq_little;
    act_little.avg_utilization =
        clusterUtil(placement_.little_core_threads);
    act_little.activity = clusterActivity(ClusterId::kLittle);

    double temp = thermal_.hotspot();
    true_p_big_ = power_big_.clusterPower(act_big, temp);
    true_p_little_ = power_little_.clusterPower(act_little, temp);
    if (drift_active_) {
        // Plant drift: the silicon draws more (or less) than the
        // nominal model for the same operating point. Applied before
        // energy/thermal/TMU/sensing so the whole physical chain --
        // and only the physical chain -- sees it.
        true_p_big_ *= drift_scale_;
        true_p_little_ *= drift_scale_;
    }
    energy_ += (true_p_big_ + true_p_little_) * dt;

    // --- Thermal. ---
    double weighted = true_p_big_ * cfg_.big.thermal_weight +
                      true_p_little_ * cfg_.little.thermal_weight;
    thermal_.step(weighted, dt);

    // --- Emergency heuristics (TMU). ---
    EmergencyCaps before = tmu_.caps();
    EmergencyCaps caps =
        tmu_.step(dt, thermal_.hotspot(), true_p_big_, true_p_little_,
                  applied_.freq_big, applied_.freq_little);
    if (caps.freq_cap_big != before.freq_cap_big ||
        caps.freq_cap_little != before.freq_cap_little ||
        caps.max_big_cores != before.max_big_cores) {
        refreshApplied();
        refreshPlacement(true);
        if (event_trace_ != nullptr) {
            obs::TraceEvent ev = event_trace_->makeEvent("platform", "tmu");
            ev.integer("active", caps.active ? 1 : 0)
                .num("freq_cap_big", caps.freq_cap_big)
                .num("freq_cap_little", caps.freq_cap_little)
                .integer("max_big_cores",
                         static_cast<long long>(caps.max_big_cores))
                .num("temp", thermal_.hotspot())
                .num("p_big", true_p_big_);
            event_trace_->record(std::move(ev));
        }
    }

    // --- Sensors. ---
    sensors_.step(dt, true_p_big_, true_p_little_, thermal_.hotspot());

    // --- Constraint-violation accounting (true state, not sensed).
    if (true_p_big_ > cfg_.power_limit_big ||
        true_p_little_ > cfg_.power_limit_little ||
        thermal_.hotspot() > cfg_.temp_limit) {
        violation_time_ += dt;
    }

    time_ += dt;

    // --- Trace. ---
    if (trace_interval_ > 0.0) {
        trace_timer_ += dt;
        if (trace_timer_ >= trace_interval_) {
            TraceSample s;
            s.time = time_;
            s.p_big = true_p_big_;
            s.p_little = true_p_little_;
            s.temp = thermal_.hotspot();
            s.bips = (counters_.total() - trace_instr_mark_) / trace_timer_;
            s.f_big = applied_.freq_big;
            s.f_little = applied_.freq_little;
            s.big_cores = applied_.big_cores;
            s.little_cores = applied_.little_cores;
            s.threads = workload_.numRunnableThreads();
            s.emergency = caps.active;
            trace_.push_back(s);
            trace_timer_ = 0.0;
            trace_instr_mark_ = counters_.total();
        }
    }
}

namespace {

std::vector<std::uint64_t> toU64(const std::vector<std::size_t>& v)
{
    return {v.begin(), v.end()};
}

std::vector<std::size_t> fromU64(const std::vector<std::uint64_t>& v)
{
    return {v.begin(), v.end()};
}

}  // namespace

void
Board::setPowerDriftScale(double scale)
{
    if (!(scale > 0.0)) {
        throw std::invalid_argument(
            "Board::setPowerDriftScale: scale must be positive");
    }
    // Exactly 1.0 means "no drift configured" -- a deliberate exact
    // sentinel, not a numeric comparison.
    drift_active_ = scale != 1.0;  // yukta-lint: allow(float-eq)
    drift_scale_ = scale;
}

void
Board::save(obs::StateWriter& w) const
{
    thermal_.save(w);
    sensors_.save(w);
    tmu_.save(w);
    workload_.save(w);

    w.u64("board.req.big_cores", requested_.big_cores);
    w.u64("board.req.little_cores", requested_.little_cores);
    w.f64("board.req.freq_big", requested_.freq_big);
    w.f64("board.req.freq_little", requested_.freq_little);
    w.u64("board.app.big_cores", applied_.big_cores);
    w.u64("board.app.little_cores", applied_.little_cores);
    w.f64("board.app.freq_big", applied_.freq_big);
    w.f64("board.app.freq_little", applied_.freq_little);

    w.f64("board.policy.threads_big", policy_.threads_big);
    w.f64("board.policy.tpc_big", policy_.tpc_big);
    w.f64("board.policy.tpc_little", policy_.tpc_little);

    w.u64vec("board.place.big", toU64(placement_.big_core_threads));
    w.u64vec("board.place.little", toU64(placement_.little_core_threads));
    std::vector<std::uint64_t> clusters;
    clusters.reserve(placement_.thread_cluster.size());
    for (ClusterId c : placement_.thread_cluster) {
        clusters.push_back(c == ClusterId::kBig ? 1 : 0);
    }
    w.u64vec("board.place.cluster", clusters);
    w.u64vec("board.place.core", toU64(placement_.thread_core));
    w.u64("board.place.version", placement_version_);

    w.f64("board.time", time_);
    w.f64("board.energy", energy_);
    w.f64("board.true_p_big", true_p_big_);
    w.f64("board.true_p_little", true_p_little_);
    w.f64("board.migration_stall", migration_stall_left_);
    w.f64("board.violation_time", violation_time_);
    w.u64("board.rejected_inputs", rejected_inputs_);
    w.f64("board.instr_big", counters_.instr_big);
    w.f64("board.instr_little", counters_.instr_little);
    w.boolean("board.drift_active", drift_active_);
    w.f64("board.drift_scale", drift_scale_);
}

void
Board::load(obs::StateReader& r)
{
    thermal_.load(r);
    sensors_.load(r);
    tmu_.load(r);
    workload_.load(r);

    requested_.big_cores = r.u64("board.req.big_cores");
    requested_.little_cores = r.u64("board.req.little_cores");
    requested_.freq_big = r.f64("board.req.freq_big");
    requested_.freq_little = r.f64("board.req.freq_little");
    applied_.big_cores = r.u64("board.app.big_cores");
    applied_.little_cores = r.u64("board.app.little_cores");
    applied_.freq_big = r.f64("board.app.freq_big");
    applied_.freq_little = r.f64("board.app.freq_little");

    policy_.threads_big = r.f64("board.policy.threads_big");
    policy_.tpc_big = r.f64("board.policy.tpc_big");
    policy_.tpc_little = r.f64("board.policy.tpc_little");

    placement_.big_core_threads = fromU64(r.u64vec("board.place.big"));
    placement_.little_core_threads =
        fromU64(r.u64vec("board.place.little"));
    const auto clusters = r.u64vec("board.place.cluster");
    placement_.thread_cluster.clear();
    placement_.thread_cluster.reserve(clusters.size());
    for (const std::uint64_t c : clusters) {
        placement_.thread_cluster.push_back(c != 0 ? ClusterId::kBig
                                                   : ClusterId::kLittle);
    }
    placement_.thread_core = fromU64(r.u64vec("board.place.core"));
    placement_version_ = r.u64("board.place.version");

    time_ = r.f64("board.time");
    energy_ = r.f64("board.energy");
    true_p_big_ = r.f64("board.true_p_big");
    true_p_little_ = r.f64("board.true_p_little");
    migration_stall_left_ = r.f64("board.migration_stall");
    violation_time_ = r.f64("board.violation_time");
    rejected_inputs_ = r.u64("board.rejected_inputs");
    counters_.instr_big = r.f64("board.instr_big");
    counters_.instr_little = r.f64("board.instr_little");
    drift_active_ = r.boolean("board.drift_active");
    drift_scale_ = r.f64("board.drift_scale");
}

}  // namespace yukta::platform
